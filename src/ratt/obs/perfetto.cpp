#include "ratt/obs/perfetto.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <map>
#include <vector>

namespace ratt::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_json_string(std::string& out, const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

constexpr int kTidProver = 1;
constexpr int kTidVerifier = 2;
constexpr int kTidDos = 3;
constexpr int kTidAlerts = 4;

int tid_for(const TraceRecord& rec) {
  if (rec.kind == "verifier.round") return kTidVerifier;
  if (rec.kind == "dos.request") return kTidDos;
  return kTidProver;
}

// Span duration: prover-side spans cost prover time, verifier rounds
// verifier time.
double duration_ms(const TraceRecord& rec) {
  return tid_for(rec) == kTidVerifier ? rec.verifier_ms : rec.prover_ms;
}

void append_metadata(std::string& out, std::uint64_t pid, int tid,
                     const char* what, const char* name) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":";
  append_u64(out, pid);
  if (tid >= 0) {
    out += ",\"tid\":";
    append_u64(out, static_cast<std::uint64_t>(tid));
  }
  out += ",\"args\":{\"name\":\"";
  out += name;
  out += "\"}}";
}

// 64-bit ids would lose precision as JS numbers past 2^53, so flow ids
// and round args are emitted as hex strings.
void append_hex_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  buf[0] = '0';
  buf[1] = 'x';
  const auto res = std::to_chars(buf + 2, buf + sizeof(buf), v, 16);
  out.append(buf, res.ptr);
}

void append_span(std::string& out, const TraceRecord& rec) {
  const double dur_ms = std::max(0.0, duration_ms(rec));
  const double start_ms = std::max(0.0, rec.sim_time_ms - dur_ms);
  out += "{\"name\":";
  append_json_string(out, rec.kind);
  out += ",\"cat\":\"ratt\",\"ph\":\"X\",\"ts\":";
  append_double(out, start_ms * 1000.0);
  out += ",\"dur\":";
  append_double(out, dur_ms * 1000.0);
  out += ",\"pid\":";
  append_u64(out, rec.device_id);
  out += ",\"tid\":";
  append_u64(out, static_cast<std::uint64_t>(tid_for(rec)));
  out += ",\"args\":{\"outcome\":";
  append_json_string(out, rec.outcome);
  out += ",\"bytes\":";
  append_u64(out, rec.bytes);
  out += ",\"prover_ms\":";
  append_double(out, rec.prover_ms);
  out += ",\"verifier_ms\":";
  append_double(out, rec.verifier_ms);
  out += ",\"energy_mj\":";
  append_double(out, rec.energy_mj);
  out += ",\"power_mw\":";
  append_double(out, rec.power_mw);
  if (rec.round_id != 0) {
    out += ",\"round_id\":\"";
    append_hex_u64(out, rec.round_id);
    out += "\",\"attempt\":";
    append_u64(out, rec.attempt);
  }
  out += "}}";
}

// Flow event binding one span of a round to the next: ph "s" on the
// round's first span, "t" on intermediate ones, "f" (bp "e": bind to the
// enclosing slice) on the last. The viewer draws them as one connected
// chain — a retransmit storm reads as a single causal thread.
void append_flow(std::string& out, const TraceRecord& rec, char phase) {
  const double dur_ms = std::max(0.0, duration_ms(rec));
  const double start_ms = std::max(0.0, rec.sim_time_ms - dur_ms);
  out += "{\"name\":\"round\",\"cat\":\"round\",\"ph\":\"";
  out += phase;
  out += "\",\"id\":\"";
  append_hex_u64(out, rec.round_id);
  out += '"';
  if (phase == 'f') out += ",\"bp\":\"e\"";
  out += ",\"ts\":";
  append_double(out, start_ms * 1000.0);
  out += ",\"pid\":";
  append_u64(out, rec.device_id);
  out += ",\"tid\":";
  append_u64(out, static_cast<std::uint64_t>(tid_for(rec)));
  out += "}";
}

void append_alert(std::string& out, const ts::AlertEvent& event) {
  out += "{\"name\":";
  append_json_string(out, event.rule);
  // Process-scoped instant marker ("s":"p") at the window close time.
  out += ",\"cat\":\"alert\",\"ph\":\"i\",\"s\":\"p\",\"ts\":";
  append_double(out, event.sim_time_ms * 1000.0);
  out += ",\"pid\":";
  append_u64(out, event.device_id);
  out += ",\"tid\":";
  append_u64(out, static_cast<std::uint64_t>(kTidAlerts));
  out += ",\"args\":{\"observed\":";
  append_double(out, event.observed);
  out += ",\"threshold\":";
  append_double(out, event.threshold);
  out += ",\"window\":";
  append_u64(out, event.window_index);
  out += "}}";
}

// One counter sample: Perfetto draws "ph":"C" series as stepped plots,
// so emitting each waveform sample at its midpoint time reproduces the
// piecewise-constant power shape.
void append_counter(std::string& out, std::uint64_t pid, double t_ms,
                    double mw) {
  out += "{\"name\":\"power_mw\",\"cat\":\"power\",\"ph\":\"C\",\"ts\":";
  append_double(out, t_ms * 1000.0);
  out += ",\"pid\":";
  append_u64(out, pid);
  out += ",\"args\":{\"mW\":";
  append_double(out, mw);
  out += "}}";
}

void write(std::ostream& out, std::span<const TraceRecord> records,
           std::span<const ts::AlertEvent> alerts,
           std::span<const power::RoundTrace> power_traces,
           const power::PowerTraceConfig& power_config) {
  // Name every device "process" and its role tracks up front, in device
  // order, so the file layout is stable regardless of record order.
  std::vector<std::uint64_t> devices;
  for (const auto& rec : records) devices.push_back(rec.device_id);
  for (const auto& event : alerts) devices.push_back(event.device_id);
  for (const auto& trace : power_traces) devices.push_back(trace.device_id);
  std::sort(devices.begin(), devices.end());
  devices.erase(std::unique(devices.begin(), devices.end()), devices.end());

  std::string buf;
  buf.reserve(256);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event_json) {
    if (!first) out << ',';
    first = false;
    out << '\n' << event_json;
  };
  char name[48];
  for (const std::uint64_t pid : devices) {
    std::snprintf(name, sizeof(name), "device-%llu",
                  static_cast<unsigned long long>(pid));
    buf.clear();
    append_metadata(buf, pid, -1, "process_name", name);
    emit(buf);
    const struct {
      int tid;
      const char* label;
    } tracks[] = {{kTidProver, "prover"},
                  {kTidVerifier, "verifier"},
                  {kTidDos, "dos"},
                  {kTidAlerts, "alerts"}};
    for (const auto& track : tracks) {
      buf.clear();
      append_metadata(buf, pid, track.tid, "thread_name", track.label);
      emit(buf);
    }
  }
  // Two passes over the records: count each round's spans first, so the
  // emitter knows which span starts ("s"), continues ("t") and ends ("f")
  // its round's flow chain. Rounds with a single span get no flow events
  // (nothing to connect).
  std::map<std::uint64_t, std::uint64_t> round_spans;
  for (const auto& rec : records) {
    if (rec.round_id != 0) ++round_spans[rec.round_id];
  }
  std::map<std::uint64_t, std::uint64_t> round_seen;
  for (const auto& rec : records) {
    buf.clear();
    append_span(buf, rec);
    emit(buf);
    if (rec.round_id == 0) continue;
    const std::uint64_t total = round_spans[rec.round_id];
    if (total < 2) continue;
    const std::uint64_t seen = ++round_seen[rec.round_id];
    const char phase = seen == 1 ? 's' : (seen == total ? 'f' : 't');
    buf.clear();
    append_flow(buf, rec, phase);
    emit(buf);
  }
  for (const auto& event : alerts) {
    buf.clear();
    append_alert(buf, event);
    emit(buf);
  }
  // Power counter tracks: each round's sampled waveform, closed with a
  // drop back to the sleep floor at the round's end so idle gaps between
  // rounds read as sleep, not as the last phase's level held forever.
  for (const auto& trace : power_traces) {
    const std::vector<double> samples =
        power::sample_waveform(trace, power_config);
    const double period = power::effective_period_ms(trace, power_config);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const double t =
          trace.start_ms + (static_cast<double>(i) + 0.5) * period;
      buf.clear();
      append_counter(buf, trace.device_id, t, samples[i]);
      emit(buf);
    }
    if (!samples.empty()) {
      buf.clear();
      append_counter(buf, trace.device_id, trace.end_ms,
                     power_config.model.sleep_mw);
      emit(buf);
    }
  }
  out << "\n]}\n";
}

}  // namespace

void write_perfetto(std::ostream& out,
                    std::span<const TraceRecord> records) {
  write(out, records, {}, {}, power::PowerTraceConfig{});
}

void write_perfetto(std::ostream& out, std::span<const TraceRecord> records,
                    std::span<const ts::AlertEvent> alerts) {
  write(out, records, alerts, {}, power::PowerTraceConfig{});
}

void write_perfetto(std::ostream& out, std::span<const TraceRecord> records,
                    std::span<const ts::AlertEvent> alerts,
                    std::span<const power::RoundTrace> power_traces,
                    const power::PowerTraceConfig& power_config) {
  write(out, records, alerts, power_traces, power_config);
}

}  // namespace ratt::obs
