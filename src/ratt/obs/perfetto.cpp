#include "ratt/obs/perfetto.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <vector>

namespace ratt::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

constexpr int kTidProver = 1;
constexpr int kTidVerifier = 2;
constexpr int kTidDos = 3;
constexpr int kTidAlerts = 4;

int tid_for(const TraceRecord& rec) {
  if (rec.kind == "verifier.round") return kTidVerifier;
  if (rec.kind == "dos.request") return kTidDos;
  return kTidProver;
}

// Span duration: prover-side spans cost prover time, verifier rounds
// verifier time.
double duration_ms(const TraceRecord& rec) {
  return tid_for(rec) == kTidVerifier ? rec.verifier_ms : rec.prover_ms;
}

void append_metadata(std::string& out, std::uint64_t pid, int tid,
                     const char* what, const char* name) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":";
  append_u64(out, pid);
  if (tid >= 0) {
    out += ",\"tid\":";
    append_u64(out, static_cast<std::uint64_t>(tid));
  }
  out += ",\"args\":{\"name\":\"";
  out += name;
  out += "\"}}";
}

void append_span(std::string& out, const TraceRecord& rec) {
  const double dur_ms = std::max(0.0, duration_ms(rec));
  const double start_ms = std::max(0.0, rec.sim_time_ms - dur_ms);
  out += "{\"name\":";
  append_json_string(out, rec.kind);
  out += ",\"cat\":\"ratt\",\"ph\":\"X\",\"ts\":";
  append_double(out, start_ms * 1000.0);
  out += ",\"dur\":";
  append_double(out, dur_ms * 1000.0);
  out += ",\"pid\":";
  append_u64(out, rec.device_id);
  out += ",\"tid\":";
  append_u64(out, static_cast<std::uint64_t>(tid_for(rec)));
  out += ",\"args\":{\"outcome\":";
  append_json_string(out, rec.outcome);
  out += ",\"bytes\":";
  append_u64(out, rec.bytes);
  out += ",\"prover_ms\":";
  append_double(out, rec.prover_ms);
  out += ",\"verifier_ms\":";
  append_double(out, rec.verifier_ms);
  out += ",\"energy_mj\":";
  append_double(out, rec.energy_mj);
  out += "}}";
}

void append_alert(std::string& out, const ts::AlertEvent& event) {
  out += "{\"name\":";
  append_json_string(out, event.rule);
  // Process-scoped instant marker ("s":"p") at the window close time.
  out += ",\"cat\":\"alert\",\"ph\":\"i\",\"s\":\"p\",\"ts\":";
  append_double(out, event.sim_time_ms * 1000.0);
  out += ",\"pid\":";
  append_u64(out, event.device_id);
  out += ",\"tid\":";
  append_u64(out, static_cast<std::uint64_t>(kTidAlerts));
  out += ",\"args\":{\"observed\":";
  append_double(out, event.observed);
  out += ",\"threshold\":";
  append_double(out, event.threshold);
  out += ",\"window\":";
  append_u64(out, event.window_index);
  out += "}}";
}

void write(std::ostream& out, std::span<const TraceRecord> records,
           std::span<const ts::AlertEvent> alerts) {
  // Name every device "process" and its role tracks up front, in device
  // order, so the file layout is stable regardless of record order.
  std::vector<std::uint64_t> devices;
  for (const auto& rec : records) devices.push_back(rec.device_id);
  for (const auto& event : alerts) devices.push_back(event.device_id);
  std::sort(devices.begin(), devices.end());
  devices.erase(std::unique(devices.begin(), devices.end()), devices.end());

  std::string buf;
  buf.reserve(256);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event_json) {
    if (!first) out << ',';
    first = false;
    out << '\n' << event_json;
  };
  char name[48];
  for (const std::uint64_t pid : devices) {
    std::snprintf(name, sizeof(name), "device-%llu",
                  static_cast<unsigned long long>(pid));
    buf.clear();
    append_metadata(buf, pid, -1, "process_name", name);
    emit(buf);
    const struct {
      int tid;
      const char* label;
    } tracks[] = {{kTidProver, "prover"},
                  {kTidVerifier, "verifier"},
                  {kTidDos, "dos"},
                  {kTidAlerts, "alerts"}};
    for (const auto& track : tracks) {
      buf.clear();
      append_metadata(buf, pid, track.tid, "thread_name", track.label);
      emit(buf);
    }
  }
  for (const auto& rec : records) {
    buf.clear();
    append_span(buf, rec);
    emit(buf);
  }
  for (const auto& event : alerts) {
    buf.clear();
    append_alert(buf, event);
    emit(buf);
  }
  out << "\n]}\n";
}

}  // namespace

void write_perfetto(std::ostream& out,
                    std::span<const TraceRecord> records) {
  write(out, records, {});
}

void write_perfetto(std::ostream& out, std::span<const TraceRecord> records,
                    std::span<const ts::AlertEvent> alerts) {
  write(out, records, alerts);
}

}  // namespace ratt::obs
