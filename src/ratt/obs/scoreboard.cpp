#include "ratt/obs/scoreboard.hpp"

#include <limits>

namespace ratt::obs {

void DosScoreboard::record(std::string_view request_class, double prover_ms,
                           double attacker_ms) {
  auto it = classes_.find(request_class);
  if (it == classes_.end()) {
    it = classes_.emplace(std::string(request_class), Entry{}).first;
  }
  Entry& e = it->second;
  ++e.requests;
  e.prover_ms += prover_ms;
  e.attacker_ms += attacker_ms;
  e.prover_mj += prover_power_.active_mj(prover_ms);
  e.attacker_mj += attacker_power_.active_mj(attacker_ms);
}

const DosScoreboard::Entry* DosScoreboard::find(
    std::string_view request_class) const {
  const auto it = classes_.find(request_class);
  return it == classes_.end() ? nullptr : &it->second;
}

DosScoreboard::Entry DosScoreboard::totals() const {
  Entry t;
  for (const auto& [name, e] : classes_) {
    t.requests += e.requests;
    t.prover_ms += e.prover_ms;
    t.attacker_ms += e.attacker_ms;
    t.prover_mj += e.prover_mj;
    t.attacker_mj += e.attacker_mj;
  }
  return t;
}

double DosScoreboard::asymmetry() const {
  const Entry t = totals();
  if (t.attacker_ms <= 0.0) {
    return t.prover_ms > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return t.prover_ms / t.attacker_ms;
}

void DosScoreboard::print(std::FILE* out) const {
  std::fprintf(out, "    %-28s %-9s %-12s %-12s %-12s %-12s %-9s\n",
               "request class", "requests", "prover-ms", "prover-mJ",
               "attacker-ms", "attacker-mJ", "asym");
  const auto row = [out](const char* name, const Entry& e) {
    const double asym =
        e.attacker_ms > 0.0 ? e.prover_ms / e.attacker_ms : 0.0;
    char asym_text[16];
    if (e.attacker_ms > 0.0) {
      std::snprintf(asym_text, sizeof(asym_text), "%.0fx", asym);
    } else {
      std::snprintf(asym_text, sizeof(asym_text), "%s",
                    e.prover_ms > 0.0 ? "inf" : "-");
    }
    std::fprintf(out, "    %-28s %-9llu %-12.3f %-12.4f %-12.3f %-12.4f %-9s\n",
                 name, static_cast<unsigned long long>(e.requests),
                 e.prover_ms, e.prover_mj, e.attacker_ms, e.attacker_mj,
                 asym_text);
  };
  for (const auto& [name, e] : classes_) {
    row(name.c_str(), e);
  }
  row("TOTAL", totals());
}

}  // namespace ratt::obs
