// ratt::obs — structured tracing: one TraceRecord per interesting unit of
// work (a prover handling a request, a verifier closing a round, a DoS
// request landing). Records flow into an injected TraceSink; the bundled
// RingRecorder keeps the last N in a fixed ring, and the exporters write
// JSONL / CSV with deterministic number formatting (shortest round-trip
// via std::to_chars), so same-seed runs produce byte-identical traces.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace ratt::obs {

class Counter;

/// One span/event. String fields are short labels (SSO-sized in practice);
/// see docs/OBSERVABILITY.md for the kind/outcome vocabulary.
struct TraceRecord {
  double sim_time_ms = 0.0;     // when the unit of work completed
  std::uint64_t device_id = 0;  // which prover (0 for single-device runs)
  std::string kind;             // e.g. "prover.handle", "verifier.round"
  std::string outcome;          // e.g. "ok", "not-fresh", "missing"
  double prover_ms = 0.0;       // device time the prover spent
  double verifier_ms = 0.0;     // modeled verifier-side time
  std::uint64_t bytes = 0;      // wire bytes that triggered the work
  double energy_mj = 0.0;       // prover energy, from the power model
  double power_mw = 0.0;        // mean power over the span (0 = not
                                // power-scoped); "power.battery" records
                                // carry the burn estimate here instead
  std::uint64_t round_id = 0;   // causal round id (prof::make_round_id);
                                // 0 = not part of any round
  std::uint32_t attempt = 0;    // wire attempt within the round (1-based);
                                // 0 = not attempt-scoped

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& rec) = 0;

  /// Records this sink (or its downstream chain) has irrecoverably lost —
  /// ring evictions, mostly. Flight-recorder dumps consult this to state
  /// whether their window is complete.
  virtual std::uint64_t dropped_total() const { return 0; }
};

/// Fixed-capacity ring recorder: the last `capacity` records survive;
/// older ones are overwritten (dropped() tells how many).
class RingRecorder : public TraceSink {
 public:
  explicit RingRecorder(std::size_t capacity = 4096);

  void record(const TraceRecord& rec) override;

  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const;
  std::uint64_t dropped_total() const override { return dropped(); }

  /// Optional metrics hook: inc()'d once per evicted record (the
  /// "obs.trace.dropped" counter by convention).
  void set_dropped_counter(Counter* counter) { dropped_counter_ = counter; }

  /// Surviving records, oldest first.
  std::vector<TraceRecord> snapshot() const;

 private:
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;     // next write slot
  std::size_t size_ = 0;     // live records
  std::uint64_t total_ = 0;  // ever recorded
  Counter* dropped_counter_ = nullptr;
};

/// A sink that forwards to two others (e.g. a ring for post-processing
/// plus a streaming exporter).
class TeeSink : public TraceSink {
 public:
  TeeSink(TraceSink& a, TraceSink& b) : a_(&a), b_(&b) {}
  void record(const TraceRecord& rec) override {
    a_->record(rec);
    b_->record(rec);
  }
  /// Sum of both branches' losses: an upper bound on records a reader of
  /// either branch may be missing.
  std::uint64_t dropped_total() const override {
    return a_->dropped_total() + b_->dropped_total();
  }

 private:
  TraceSink* a_;
  TraceSink* b_;
};

/// Deterministically merge per-shard trace streams (the sharded Swarm's
/// per-shard RingRecorder snapshots) into one canonical stream, ordered
/// by (sim_time_ms, device_id) with ties within one device keeping their
/// shard-stream order. Each device lives in exactly one shard and each
/// shard's stream is independent of scheduling, so the merged stream is
/// byte-identical (once exported) at any thread count — and, as long as
/// no ring dropped records, at any shard count, including the legacy
/// single-queue layout.
std::vector<TraceRecord> merge_traces(
    std::vector<std::vector<TraceRecord>> shards);

/// One JSON object per line, keys in schema order. Deterministic: shortest
/// round-trip doubles, no locale dependence.
void write_jsonl(std::ostream& out, std::span<const TraceRecord> records);

/// CSV with a header row, same columns as the JSONL keys.
void write_csv(std::ostream& out, std::span<const TraceRecord> records);

/// Single-record JSONL line (no trailing newline) — also the golden-file
/// format tests pin down.
std::string to_jsonl(const TraceRecord& rec);

}  // namespace ratt::obs
