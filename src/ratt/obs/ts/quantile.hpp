// ratt::obs::ts — streaming quantiles via the P² algorithm (Jain &
// Chlamtac, CACM 1985): five markers track min, the target quantile, two
// flanking quantiles and max, adjusted per observation with parabolic
// interpolation. O(1) memory and O(1) per observation — the profile a
// prover-side or edge telemetry agent can afford — and fully
// deterministic (pure arithmetic, no sampling), so same-seed runs report
// identical p50/p95/p99 for prover_ms and energy_mj.
#pragma once

#include <cstdint>

namespace ratt::obs::ts {

/// One-quantile P² sketch. Exact until five observations have arrived
/// (nearest-rank on the stored five), estimated thereafter.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void observe(double x);
  /// Current estimate; 0.0 before any observation.
  double value() const;
  double quantile() const { return q_; }
  std::uint64_t count() const { return count_; }

 private:
  double q_;
  std::uint64_t count_ = 0;
  double height_[5] = {};   // marker heights (sorted)
  double pos_[5] = {};      // actual marker positions (1-based ranks)
  double desired_[5] = {};  // desired positions
  double incr_[5] = {};     // desired-position increment per observation
};

/// The dashboard triplet: p50/p95/p99 of one stream.
class QuantileTriplet {
 public:
  QuantileTriplet() : p50_(0.5), p95_(0.95), p99_(0.99) {}

  void observe(double x) {
    p50_.observe(x);
    p95_.observe(x);
    p99_.observe(x);
  }
  double p50() const { return p50_.value(); }
  double p95() const { return p95_.value(); }
  double p99() const { return p99_.value(); }
  std::uint64_t count() const { return p50_.count(); }

 private:
  P2Quantile p50_;
  P2Quantile p95_;
  P2Quantile p99_;
};

}  // namespace ratt::obs::ts
