// ratt::obs::ts — windowed time-series rollups and rate estimators over
// *simulated* time. The collection plane (Registry / TraceSink) answers
// "how much, total"; this layer answers "how much, per window, lately" —
// the shape a fleet operator needs to spot an energy-depletion or replay
// campaign while it is happening rather than in the post-mortem.
//
// Design constraints (same contract as the rest of ratt::obs):
//   * fixed capacity, zero hot-path allocation — the window ring is sized
//     at construction; observe() touches plain members only,
//   * deterministic — windows are addressed by floor(t / window_ms), so
//     the same trace always produces the same rollup, byte for byte,
//   * sim-time driven — no wall clocks; callers pass the simulation
//     timestamp that produced the sample.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace ratt::obs::ts {

/// Aggregate of one time window [start_ms, start_ms + window_ms).
struct WindowStats {
  std::uint64_t index = 0;  // window number: floor(start_ms / window_ms)
  double start_ms = 0.0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min_raw = std::numeric_limits<double>::infinity();
  double max_raw = -std::numeric_limits<double>::infinity();

  double mean() const { return count == 0 ? 0.0 : sum / count; }
  double min() const { return count == 0 ? 0.0 : min_raw; }
  double max() const { return count == 0 ? 0.0 : max_raw; }
  /// Events per second of sim time, given the owning rollup's window.
  double rate_per_s(double window_ms) const {
    return window_ms <= 0.0 ? 0.0
                            : static_cast<double>(count) * 1000.0 / window_ms;
  }
  /// sum per second — e.g. mJ/s burn slope when the samples are energies.
  double sum_per_s(double window_ms) const {
    return window_ms <= 0.0 ? 0.0 : sum * 1000.0 / window_ms;
  }
};

/// Complete serializable state of a WindowedRollup — everything needed
/// to resume the rollup mid-stream as if it had never stopped. Windows
/// are oldest first (the snapshot() order); restore() rebuilds the ring
/// from them. Used by the power layer's battery checkpoints.
struct RollupState {
  double window_ms = 0.0;
  std::size_t capacity = 0;
  std::vector<WindowStats> windows;  // live windows, oldest first
  std::uint64_t evicted = 0;
  std::uint64_t late = 0;
  std::uint64_t total_count = 0;
  double total_sum = 0.0;
  bool started = false;
};

/// Fixed-capacity ring of per-window sum/count/min/max aggregates.
/// observe(t, v) files v under window floor(t / window_ms); moving into a
/// later window closes the current one (empty gap windows are material —
/// they are what lets rates read zero during quiet spells). Out-of-order
/// samples older than the open window are counted in `late()` and
/// dropped, keeping the closed history immutable.
class WindowedRollup {
 public:
  explicit WindowedRollup(double window_ms = 250.0,
                          std::size_t capacity = 64);

  void observe(double t_ms, double v = 1.0);
  /// Close every window up to (excluding) the one containing `t_ms`, so
  /// trailing quiet time is represented before a snapshot or report.
  void advance_to(double t_ms);

  double window_ms() const { return window_ms_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Live windows (closed + the open one), oldest first via at().
  std::size_t size() const { return size_; }
  const WindowStats& at(std::size_t i) const;  // 0 = oldest live window
  /// The open (most recent) window; nullptr before the first observe().
  const WindowStats* current() const;
  /// Windows that fell off the ring.
  std::uint64_t evicted() const { return evicted_; }
  /// Samples older than the open window, dropped to keep history stable.
  std::uint64_t late() const { return late_; }
  std::uint64_t total_count() const { return total_count_; }
  double total_sum() const { return total_sum_; }

  /// Copy of the live windows, oldest first (report path; allocates).
  std::vector<WindowStats> snapshot() const;

  /// Full state for checkpointing; restore() resumes exactly there —
  /// a restored rollup's subsequent observations match a never-stopped
  /// one byte for byte. restore() re-sizes to the state's capacity.
  RollupState state() const;
  void restore(const RollupState& st);

 private:
  WindowStats& slot(std::size_t i);  // i = logical index, 0 = oldest
  void open_window(std::uint64_t index);

  double window_ms_;
  std::vector<WindowStats> ring_;
  std::size_t head_ = 0;  // ring slot of the oldest live window
  std::size_t size_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t late_ = 0;
  std::uint64_t total_count_ = 0;
  double total_sum_ = 0.0;
  bool started_ = false;
};

/// Plain exponentially weighted moving average of per-window values —
/// the alert engine's baseline estimator. alpha is the weight of the
/// newest sample; the first sample initializes the average directly.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {}

  void update(double v) {
    value_ = initialized_ ? alpha_ * v + (1.0 - alpha_) * value_ : v;
    initialized_ = true;
  }
  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void reset() {
    value_ = 0.0;
    initialized_ = false;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Continuous-time event-rate estimator: an exponentially decayed event
/// counter with time constant tau. Each event adds `weight`; mass decays
/// as exp(-dt/tau). rate_per_s(now) = decayed mass / tau — the steady
/// state for a periodic source converges to its true rate, and the
/// estimate halves every tau*ln(2) of silence.
class EwmaRate {
 public:
  explicit EwmaRate(double tau_ms = 1000.0) : tau_ms_(tau_ms) {}

  void on_event(double t_ms, double weight = 1.0);
  double rate_per_s(double now_ms) const;
  double tau_ms() const { return tau_ms_; }
  std::uint64_t events() const { return events_; }

 private:
  double tau_ms_;
  double mass_ = 0.0;
  double last_ms_ = 0.0;
  std::uint64_t events_ = 0;
};

}  // namespace ratt::obs::ts
