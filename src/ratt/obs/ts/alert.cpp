#include "ratt/obs/ts/alert.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

namespace ratt::obs::ts {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

bool is_request_span(const TraceRecord& rec) {
  return rec.kind == "prover.handle" || rec.kind == "dos.request";
}

bool is_rejected(const TraceRecord& rec) {
  // "ok" for prover.handle spans; dos.request files "<label>:<status>".
  if (rec.outcome == "ok") return false;
  const std::string_view out = rec.outcome;
  return !(out.size() >= 3 && out.substr(out.size() - 3) == ":ok");
}

bool is_witness_violation(const TraceRecord& rec) {
  // "power.witness" outcomes: "ok" or "violation:<dimension>".
  const std::string_view out = rec.outcome;
  return out.size() >= 9 && out.substr(0, 9) == "violation";
}

}  // namespace

std::string to_log_line(const AlertEvent& event) {
  std::string out;
  out.reserve(96);
  out += "[t=";
  append_double(out, event.sim_time_ms);
  out += "ms] device ";
  append_u64(out, event.device_id);
  out += ' ';
  out += event.rule;
  out += " observed=";
  append_double(out, event.observed);
  out += " threshold=";
  append_double(out, event.threshold);
  out += " window=";
  append_u64(out, event.window_index);
  return out;
}

std::string to_log(std::span<const AlertEvent> alerts) {
  std::string out;
  for (const auto& event : alerts) {
    out += to_log_line(event);
    out += '\n';
  }
  return out;
}

AlertEngine::DeviceState::DeviceState(const AlertConfig& config)
    : requests(config.window_ms, config.history),
      rejects(config.window_ms, config.history),
      prover_ms(config.window_ms, config.history),
      energy_mj(config.window_ms, config.history),
      timeouts(config.window_ms, config.history),
      witness(config.window_ms, config.history),
      battery(config.window_ms, config.history),
      rate_baseline(config.baseline_alpha) {}

AlertEngine::AlertEngine(AlertConfig config) : config_(std::move(config)) {
  if (config_.window_ms <= 0.0) config_.window_ms = 1.0;
  devices_.reserve(std::max<std::size_t>(config_.device_count, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(config_.device_count, 1);
       ++i) {
    devices_.emplace_back(config_);
  }
  alerts_.reserve(config_.max_alerts);
}

AlertEngine::DeviceState& AlertEngine::state_for(std::uint64_t device_id) {
  // Growing past the preallocated fleet allocates; config.device_count
  // exists so steady-state record() never does.
  while (device_id >= devices_.size()) devices_.emplace_back(config_);
  return devices_[static_cast<std::size_t>(device_id)];
}

void AlertEngine::record(const TraceRecord& rec) {
  DeviceState& dev = state_for(rec.device_id);
  // The timeout ring wakes on the first "net.timeout" span and from then
  // on tracks the clock like the request rings do; streams without such
  // spans never touch it, so existing alert logs are unchanged.
  if (rec.kind == "net.timeout") {
    dev.timeouts.observe(rec.sim_time_ms, 1.0);
  } else if (dev.timeouts.current() != nullptr) {
    dev.timeouts.advance_to(rec.sim_time_ms);
  }
  if (dev.timeouts.current() != nullptr) {
    evaluate_timeouts(rec.device_id, dev, dev.timeouts.current()->index);
  }
  // Power streams follow the same wake-on-first pattern: traces without
  // power records never touch these rings, so legacy logs are unchanged.
  if (rec.kind == "power.witness") {
    dev.witness.observe(rec.sim_time_ms,
                        is_witness_violation(rec) ? 1.0 : 0.0);
  } else if (dev.witness.current() != nullptr) {
    dev.witness.advance_to(rec.sim_time_ms);
  }
  if (dev.witness.current() != nullptr) {
    evaluate_witness(rec.device_id, dev, dev.witness.current()->index);
  }
  if (rec.kind == "power.battery") {
    // Gauge records carry state of charge in energy_mj (a fraction).
    dev.battery.observe(rec.sim_time_ms, rec.energy_mj);
  } else if (dev.battery.current() != nullptr) {
    dev.battery.advance_to(rec.sim_time_ms);
  }
  if (dev.battery.current() != nullptr) {
    evaluate_battery(rec.device_id, dev, dev.battery.current()->index);
  }
  if (is_request_span(rec)) {
    const double rejected = is_rejected(rec) ? 1.0 : 0.0;
    dev.requests.observe(rec.sim_time_ms, 1.0);
    dev.rejects.observe(rec.sim_time_ms, rejected);
    dev.prover_ms.observe(rec.sim_time_ms, rec.prover_ms);
    dev.energy_mj.observe(rec.sim_time_ms, rec.energy_mj);
  } else if (dev.requests.current() != nullptr) {
    // Non-request spans (verifier rounds) only move the clock forward so
    // quiet windows close promptly.
    dev.requests.advance_to(rec.sim_time_ms);
    dev.rejects.advance_to(rec.sim_time_ms);
    dev.prover_ms.advance_to(rec.sim_time_ms);
    dev.energy_mj.advance_to(rec.sim_time_ms);
  } else {
    return;
  }
  evaluate_until(rec.device_id, dev, dev.requests.current()->index);
}

void AlertEngine::finish(double now_ms) {
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    DeviceState& dev = devices_[d];
    const auto closed = static_cast<std::uint64_t>(
        std::floor(now_ms / config_.window_ms));
    if (dev.timeouts.current() != nullptr) {
      dev.timeouts.advance_to(now_ms);
      evaluate_timeouts(d, dev, closed);
    }
    if (dev.witness.current() != nullptr) {
      dev.witness.advance_to(now_ms);
      evaluate_witness(d, dev, closed);
    }
    if (dev.battery.current() != nullptr) {
      dev.battery.advance_to(now_ms);
      evaluate_battery(d, dev, closed);
    }
    if (dev.requests.current() == nullptr) continue;
    dev.requests.advance_to(now_ms);
    dev.rejects.advance_to(now_ms);
    dev.prover_ms.advance_to(now_ms);
    dev.energy_mj.advance_to(now_ms);
    evaluate_until(d, dev, closed);
  }
}

void AlertEngine::replay(std::span<const TraceRecord> records,
                         double finish_ms) {
  for (const TraceRecord& rec : records) record(rec);
  finish(finish_ms);
}

void AlertEngine::evaluate_until(std::uint64_t device_id, DeviceState& dev,
                                 std::uint64_t window_index) {
  // The four rollups saw the same timestamps, so their rings line up
  // index-for-index; grade every retained window that closed.
  for (std::size_t i = 0; i < dev.requests.size(); ++i) {
    const WindowStats& req = dev.requests.at(i);
    if (req.index < dev.next_grade_index) continue;
    if (req.index >= window_index) break;

    const double rate = req.rate_per_s(config_.window_ms);
    const double baseline =
        dev.rate_baseline.initialized() ? dev.rate_baseline.value() : 0.0;
    const double spike_threshold = std::max(
        config_.spike_min_rate_per_s, config_.spike_factor * baseline);
    if (req.count > 0 && rate >= spike_threshold) {
      fire(device_id, dev, req, "dos.rate_spike", rate, spike_threshold);
    }
    dev.rate_baseline.update(rate);

    const double burn = dev.energy_mj.at(i).sum_per_s(config_.window_ms);
    if (burn >= config_.energy_burn_mj_per_s) {
      fire(device_id, dev, req, "dos.energy_burn", burn,
           config_.energy_burn_mj_per_s);
    }

    if (req.count >= config_.reject_min_requests && req.count > 0) {
      const double ratio =
          dev.rejects.at(i).sum / static_cast<double>(req.count);
      if (ratio >= config_.reject_ratio) {
        fire(device_id, dev, req, "dos.reject_ratio", ratio,
             config_.reject_ratio);
      }
    }

    const double duty = dev.prover_ms.at(i).sum / config_.window_ms;
    if (duty >= config_.duty_fraction) {
      fire(device_id, dev, req, "dos.duty_cycle", duty,
           config_.duty_fraction);
    }
  }
  if (window_index > dev.next_grade_index) {
    dev.next_grade_index = window_index;
  }
}

void AlertEngine::evaluate_timeouts(std::uint64_t device_id,
                                    DeviceState& dev,
                                    std::uint64_t window_index) {
  if (config_.loss_burst_min_timeouts == 0) return;  // rule disabled
  for (std::size_t i = 0; i < dev.timeouts.size(); ++i) {
    const WindowStats& w = dev.timeouts.at(i);
    if (w.index < dev.next_timeout_grade) continue;
    if (w.index >= window_index) break;
    if (w.count >= config_.loss_burst_min_timeouts) {
      fire(device_id, dev, w, "net.loss_burst",
           static_cast<double>(w.count),
           static_cast<double>(config_.loss_burst_min_timeouts));
    }
  }
  if (window_index > dev.next_timeout_grade) {
    dev.next_timeout_grade = window_index;
  }
}

void AlertEngine::evaluate_witness(std::uint64_t device_id,
                                   DeviceState& dev,
                                   std::uint64_t window_index) {
  if (config_.power_violation_min == 0) return;  // rule disabled
  for (std::size_t i = 0; i < dev.witness.size(); ++i) {
    const WindowStats& w = dev.witness.at(i);
    if (w.index < dev.next_witness_grade) continue;
    if (w.index >= window_index) break;
    // sum counts the window's violation verdicts (ok verdicts add 0).
    if (w.count > 0 &&
        w.sum >= static_cast<double>(config_.power_violation_min)) {
      fire(device_id, dev, w, "power.envelope_violation", w.sum,
           static_cast<double>(config_.power_violation_min));
    }
  }
  if (window_index > dev.next_witness_grade) {
    dev.next_witness_grade = window_index;
  }
}

void AlertEngine::evaluate_battery(std::uint64_t device_id,
                                   DeviceState& dev,
                                   std::uint64_t window_index) {
  if (config_.battery_alert_soc <= 0.0) return;  // rule disabled
  for (std::size_t i = 0; i < dev.battery.size(); ++i) {
    const WindowStats& w = dev.battery.at(i);
    if (w.index < dev.next_battery_grade) continue;
    if (w.index >= window_index) break;
    if (w.count == 0) continue;  // no gauge reports: latch state unknown
    if (w.min() <= config_.battery_alert_soc) {
      if (!dev.battery_low) {
        dev.battery_low = true;
        fire(device_id, dev, w, "power.battery_depletion", w.min(),
             config_.battery_alert_soc);
      }
    } else {
      dev.battery_low = false;  // SoC recovered: re-arm the latch
    }
  }
  if (window_index > dev.next_battery_grade) {
    dev.next_battery_grade = window_index;
  }
}

void AlertEngine::fire(std::uint64_t device_id, DeviceState& dev,
                       const WindowStats& window, const char* rule,
                       double observed, double threshold) {
  ++dev.alert_count;
  AlertEvent event;
  event.sim_time_ms = window.start_ms + config_.window_ms;
  event.device_id = device_id;
  event.window_index = window.index;
  event.rule = rule;
  event.observed = observed;
  event.threshold = threshold;
  // The hook sees every fired alert, even ones the bounded log below has
  // no room for — flight recorders must not go blind when the log fills.
  if (hook_) hook_(event);
  if (alerts_.size() >= config_.max_alerts) {
    ++dropped_;
    return;
  }
  alerts_.push_back(std::move(event));
}

const AlertEvent* AlertEngine::first_alert() const {
  return alerts_.empty() ? nullptr : &alerts_.front();
}

const AlertEvent* AlertEngine::first_alert(std::uint64_t device_id) const {
  for (const auto& event : alerts_) {
    if (event.device_id == device_id) return &event;
  }
  return nullptr;
}

std::uint64_t AlertEngine::alert_count(std::uint64_t device_id) const {
  return device_id < devices_.size()
             ? devices_[static_cast<std::size_t>(device_id)].alert_count
             : 0;
}

const WindowedRollup* AlertEngine::requests(std::uint64_t device_id) const {
  return device_id < devices_.size()
             ? &devices_[static_cast<std::size_t>(device_id)].requests
             : nullptr;
}

}  // namespace ratt::obs::ts
