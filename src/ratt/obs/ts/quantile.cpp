#include "ratt/obs/ts/quantile.hpp"

#include <algorithm>
#include <cmath>

namespace ratt::obs::ts {

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.0, 1.0)) {}

void P2Quantile::observe(double x) {
  if (count_ < 5) {
    height_[count_++] = x;
    if (count_ == 5) {
      std::sort(height_, height_ + 5);
      for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * q_;
      desired_[2] = 1.0 + 4.0 * q_;
      desired_[3] = 3.0 + 2.0 * q_;
      desired_[4] = 5.0;
      incr_[0] = 0.0;
      incr_[1] = q_ / 2.0;
      incr_[2] = q_;
      incr_[3] = (1.0 + q_) / 2.0;
      incr_[4] = 1.0;
    }
    return;
  }
  ++count_;

  // Locate the cell containing x, stretching the extremes if needed.
  int k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x >= height_[4]) {
    height_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= height_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += incr_[i];

  // Nudge the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) height update.
      const double qp =
          height_[i] +
          s / (pos_[i + 1] - pos_[i - 1]) *
              ((pos_[i] - pos_[i - 1] + s) * (height_[i + 1] - height_[i]) /
                   (pos_[i + 1] - pos_[i]) +
               (pos_[i + 1] - pos_[i] - s) * (height_[i] - height_[i - 1]) /
                   (pos_[i] - pos_[i - 1]));
      if (height_[i - 1] < qp && qp < height_[i + 1]) {
        height_[i] = qp;
      } else {  // parabola left the bracket: fall back to linear
        const int j = i + static_cast<int>(s);
        height_[i] += s * (height_[j] - height_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact nearest-rank on the (small) stored prefix.
    double sorted[5];
    std::copy(height_, height_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double rank = q_ * static_cast<double>(count_);
    auto idx = static_cast<std::uint64_t>(std::ceil(rank));
    if (idx == 0) idx = 1;
    if (idx > count_) idx = count_;
    return sorted[idx - 1];
  }
  return height_[2];
}

}  // namespace ratt::obs::ts
