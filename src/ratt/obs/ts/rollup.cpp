#include "ratt/obs/ts/rollup.hpp"

#include <cmath>

namespace ratt::obs::ts {

WindowedRollup::WindowedRollup(double window_ms, std::size_t capacity)
    : window_ms_(window_ms <= 0.0 ? 1.0 : window_ms),
      ring_(capacity == 0 ? 1 : capacity) {}

WindowStats& WindowedRollup::slot(std::size_t i) {
  return ring_[(head_ + i) % ring_.size()];
}

const WindowStats& WindowedRollup::at(std::size_t i) const {
  return ring_[(head_ + i) % ring_.size()];
}

const WindowStats* WindowedRollup::current() const {
  return size_ == 0 ? nullptr : &at(size_ - 1);
}

void WindowedRollup::open_window(std::uint64_t index) {
  WindowStats fresh;
  fresh.index = index;
  fresh.start_ms = static_cast<double>(index) * window_ms_;
  if (size_ < ring_.size()) {
    slot(size_) = fresh;
    ++size_;
  } else {
    // Ring full: the oldest closed window falls off.
    ring_[head_] = fresh;
    head_ = (head_ + 1) % ring_.size();
    ++evicted_;
  }
}

void WindowedRollup::advance_to(double t_ms) {
  if (!started_) return;
  const auto target =
      static_cast<std::uint64_t>(std::floor(t_ms / window_ms_));
  std::uint64_t open = slot(size_ - 1).index;
  if (target <= open) return;
  // Open (and immediately leave behind) every gap window. When the gap
  // outruns the ring there is no point materializing windows that would
  // be evicted unseen — jump straight to the last `capacity` windows.
  if (target - open > ring_.size()) {
    evicted_ += target - open - ring_.size();
    open = target - ring_.size();
  }
  while (open < target) open_window(++open);
}

void WindowedRollup::observe(double t_ms, double v) {
  const auto index =
      static_cast<std::uint64_t>(std::floor(t_ms / window_ms_));
  if (!started_) {
    started_ = true;
    open_window(index);
  } else {
    const std::uint64_t open = slot(size_ - 1).index;
    if (index < open) {  // older than the open window: history is closed
      ++late_;
      return;
    }
    if (index > open) advance_to(t_ms);
  }
  WindowStats& w = slot(size_ - 1);
  ++w.count;
  w.sum += v;
  if (v < w.min_raw) w.min_raw = v;
  if (v > w.max_raw) w.max_raw = v;
  ++total_count_;
  total_sum_ += v;
}

RollupState WindowedRollup::state() const {
  RollupState st;
  st.window_ms = window_ms_;
  st.capacity = ring_.size();
  st.windows = snapshot();
  st.evicted = evicted_;
  st.late = late_;
  st.total_count = total_count_;
  st.total_sum = total_sum_;
  st.started = started_;
  return st;
}

void WindowedRollup::restore(const RollupState& st) {
  window_ms_ = st.window_ms <= 0.0 ? 1.0 : st.window_ms;
  ring_.assign(st.capacity == 0 ? 1 : st.capacity, WindowStats{});
  head_ = 0;
  size_ = st.windows.size() < ring_.size() ? st.windows.size() : ring_.size();
  // Keep the newest windows if the state somehow exceeds capacity.
  const std::size_t skip = st.windows.size() - size_;
  for (std::size_t i = 0; i < size_; ++i) ring_[i] = st.windows[skip + i];
  evicted_ = st.evicted;
  late_ = st.late;
  total_count_ = st.total_count;
  total_sum_ = st.total_sum;
  started_ = st.started;
}

std::vector<WindowStats> WindowedRollup::snapshot() const {
  std::vector<WindowStats> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
  return out;
}

void EwmaRate::on_event(double t_ms, double weight) {
  if (events_ > 0 && t_ms > last_ms_) {
    mass_ *= std::exp(-(t_ms - last_ms_) / tau_ms_);
  }
  if (t_ms >= last_ms_) last_ms_ = t_ms;
  mass_ += weight;
  ++events_;
}

double EwmaRate::rate_per_s(double now_ms) const {
  if (events_ == 0 || tau_ms_ <= 0.0) return 0.0;
  double mass = mass_;
  if (now_ms > last_ms_) mass *= std::exp(-(now_ms - last_ms_) / tau_ms_);
  return mass / (tau_ms_ / 1000.0);
}

}  // namespace ratt::obs::ts
