// ratt::obs::ts — online DoS alert engine. Consumes the same TraceRecord
// stream the recorders see (it *is* a TraceSink, so it composes with
// RingRecorder via TeeSink), maintains per-device windowed aggregates,
// and evaluates four declarative rules every time a device's window
// closes:
//
//   dos.rate_spike    request rate above max(floor, factor × EWMA
//                     baseline of earlier windows) — the Adv_ext flood
//                     signature: many requests, whatever their outcome,
//   dos.energy_burn   energy burn slope (mJ/s) above the device's budget
//                     burn-down rate — catches the unprotected prover
//                     that *performs* every gratuitous measurement,
//   dos.reject_ratio  rejected/handled above a threshold with a minimum
//                     request count — the hardened prover's view of a
//                     replay/forgery campaign (cheap rejects, many),
//   dos.duty_cycle    prover-busy fraction of the window above threshold
//                     — the paper's Sec. 3.1 disruption, detected online
//                     instead of post-hoc,
//   net.loss_burst    "net.timeout" spans (reliable-exchange attempt
//                     timers expiring, see ratt::net) clustering inside
//                     one window — a burst outage / jamming signature
//                     distinct from a request flood,
//   power.envelope_violation
//                     "power.witness" verdicts (the power-trace grader,
//                     see ratt::obs::power) flagging rounds whose power
//                     shape left the clean envelope — the MAC-passing
//                     tamper signature,
//   power.battery_depletion
//                     "power.battery" gauge reports showing state of
//                     charge at/below the floor — fires once per
//                     excursion (latched until SoC recovers).
//
// Determinism contract: alerts depend only on the record stream, so a
// same-seed run produces a byte-identical alert log (see to_log_line and
// tests/obs/alert_test.cpp). Zero hot-path allocation: device slots and
// the alert log are preallocated; rule names are literal SSO strings.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ratt/obs/trace.hpp"
#include "ratt/obs/ts/rollup.hpp"

namespace ratt::obs::ts {

struct AlertConfig {
  /// Evaluation window. Rules run when a window closes.
  double window_ms = 500.0;
  /// Windows retained per device stream (ring capacity).
  std::size_t history = 64;
  /// Device slots preallocated up front (records with a larger device_id
  /// grow the table — an allocation, so size this for the fleet).
  std::size_t device_count = 1;
  /// Fired-alert log capacity; overflow is counted, not stored.
  std::size_t max_alerts = 1024;

  // dos.rate_spike
  double spike_factor = 4.0;         // vs. the EWMA baseline
  double spike_min_rate_per_s = 8.0; // absolute floor (quiet baselines)
  double baseline_alpha = 0.3;       // EWMA weight per closed window

  // dos.energy_burn
  double energy_burn_mj_per_s = 2.0;  // ≈28% duty at the 7.2 mW model

  // dos.reject_ratio
  double reject_ratio = 0.5;
  std::uint64_t reject_min_requests = 3;

  // dos.duty_cycle
  double duty_fraction = 0.5;

  // net.loss_burst: timeouts in one window at or above this fire (0
  // disables the rule).
  std::uint64_t loss_burst_min_timeouts = 3;

  // power.envelope_violation: "power.witness" violation verdicts in one
  // window at or above this fire (0 disables the rule).
  std::uint64_t power_violation_min = 1;

  // power.battery_depletion: fires when a closed window's minimum
  // reported state of charge is at/below this fraction (0 disables);
  // latched until a closed window's minimum recovers above it.
  double battery_alert_soc = 0.2;
};

struct AlertEvent {
  double sim_time_ms = 0.0;  // close time of the window that fired
  std::uint64_t device_id = 0;
  std::uint64_t window_index = 0;
  std::string rule;        // "dos.rate_spike", ... (SSO-sized)
  double observed = 0.0;   // the value that crossed
  double threshold = 0.0;  // the configured/derived limit it crossed

  friend bool operator==(const AlertEvent&, const AlertEvent&) = default;
};

/// Deterministic one-line rendering, e.g.
///   [t=1500ms] device 3 dos.rate_spike observed=10 threshold=8 window=2
/// (shortest round-trip doubles — same formatting as the trace export).
std::string to_log_line(const AlertEvent& event);

/// Render the whole log, one line each (golden-file format).
std::string to_log(std::span<const AlertEvent> alerts);

class AlertEngine : public TraceSink {
 public:
  explicit AlertEngine(AlertConfig config = AlertConfig{});

  /// Feed one span. Request-shaped records ("prover.handle" and
  /// "dos.request") drive the dos.* rules, "net.timeout" spans drive
  /// net.loss_burst, "power.witness" verdicts drive
  /// power.envelope_violation and "power.battery" gauges drive
  /// power.battery_depletion; other kinds only advance time.
  void record(const TraceRecord& rec) override;

  /// Close windows up to `now_ms` on every device and evaluate them —
  /// call once at end of run so trailing windows are graded.
  void finish(double now_ms);

  /// Offline grading of a pre-merged stream (Swarm::merged_trace): feed
  /// every record in order, then finish() at `finish_ms`. Produces the
  /// same alert log the engine would have produced online, because alerts
  /// depend only on the record stream.
  void replay(std::span<const TraceRecord> records, double finish_ms);

  const AlertConfig& config() const { return config_; }
  std::span<const AlertEvent> alerts() const { return alerts_; }
  std::uint64_t alerts_dropped() const { return dropped_; }

  /// Called synchronously for EVERY fired alert — including ones the
  /// bounded alert log dropped — before fire() returns. Wire a
  /// prof::FlightRecorder's on_alert here to freeze forensic windows.
  void set_alert_hook(std::function<void(const AlertEvent&)> hook) {
    hook_ = std::move(hook);
  }

  /// First fired alert overall / for one device (nullptr if none) — the
  /// time-to-detect probe the DoS benches report.
  const AlertEvent* first_alert() const;
  const AlertEvent* first_alert(std::uint64_t device_id) const;
  /// Alerts attributed to one device.
  std::uint64_t alert_count(std::uint64_t device_id) const;

  /// Per-device read access for dashboards (requests-per-window rollup).
  const WindowedRollup* requests(std::uint64_t device_id) const;

 private:
  struct DeviceState {
    explicit DeviceState(const AlertConfig& config);
    WindowedRollup requests;   // value = 1 per request
    WindowedRollup rejects;    // value = 1 per rejected request
    WindowedRollup prover_ms;  // value = span prover time
    WindowedRollup energy_mj;  // value = span energy
    /// "net.timeout" spans get their own ring (separate grading cursor):
    /// folding them into `requests` would inflate its count and corrupt
    /// dos.rate_spike, and their windows need not line up with request
    /// windows anyway.
    WindowedRollup timeouts;
    /// "power.witness" verdicts (1 per violation, 0 per ok) and
    /// "power.battery" SoC gauges — wake-on-first rings like `timeouts`,
    /// so streams without power records leave alert logs unchanged.
    WindowedRollup witness;
    WindowedRollup battery;
    Ewma rate_baseline;        // EWMA of closed-window request rates
    std::uint64_t next_grade_index = 0;  // windows below this are graded
    std::uint64_t next_timeout_grade = 0;
    std::uint64_t next_witness_grade = 0;
    std::uint64_t next_battery_grade = 0;
    bool battery_low = false;  // depletion latch (one alert per excursion)
    std::uint64_t alert_count = 0;
  };

  DeviceState& state_for(std::uint64_t device_id);
  /// Grade every window of `dev` that closed before `window_index`.
  void evaluate_until(std::uint64_t device_id, DeviceState& dev,
                      std::uint64_t window_index);
  /// Grade closed timeout windows (net.loss_burst).
  void evaluate_timeouts(std::uint64_t device_id, DeviceState& dev,
                         std::uint64_t window_index);
  /// Grade closed witness windows (power.envelope_violation).
  void evaluate_witness(std::uint64_t device_id, DeviceState& dev,
                        std::uint64_t window_index);
  /// Grade closed battery windows (power.battery_depletion).
  void evaluate_battery(std::uint64_t device_id, DeviceState& dev,
                        std::uint64_t window_index);
  void fire(std::uint64_t device_id, DeviceState& dev,
            const WindowStats& window, const char* rule, double observed,
            double threshold);

  AlertConfig config_;
  std::vector<DeviceState> devices_;
  std::vector<AlertEvent> alerts_;
  std::uint64_t dropped_ = 0;
  std::function<void(const AlertEvent&)> hook_;
};

}  // namespace ratt::obs::ts
