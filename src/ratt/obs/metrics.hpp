// ratt::obs — metrics registry: counters, gauges and fixed-bucket
// histograms for the simulation's observability layer.
//
// Design constraints (mirrored from what a real prover-side telemetry
// agent could afford):
//   * zero-alloc on the hot path — instruments are registered once (the
//     only allocating step) and callers cache the returned reference;
//     inc()/set()/observe() touch plain members only,
//   * no global state — a Registry is an injected instance, so two swarms
//     (or two test cases) never share instruments,
//   * header-mostly — only the export/snapshot helpers live in a .cpp.
//
// Naming convention (docs/OBSERVABILITY.md): dot-separated lowercase
// "<layer>.<subject>[.<detail>]", e.g. "prover.outcome.not-fresh",
// "queue.backlog", "session.round_trip_ms".
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ratt::obs {

/// Monotonically accumulating value. `value()` is the sum of all inc()
/// arguments (so fractional quantities — milliseconds, millijoules —
/// accumulate exactly as given); `count()` is the number of inc() calls.
class Counter {
 public:
  void inc(double v = 1.0) {
    value_ += v;
    ++count_;
  }

  double value() const { return value_; }
  std::uint64_t count() const { return count_; }

 private:
  double value_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Last-write-wins value with a high-water mark (useful for backlogs and
/// queue depths, where the peak matters as much as the final value).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (++sets_ == 1 || v > max_) max_ = v;
  }

  double value() const { return value_; }
  /// High-water mark; 0.0 before the first set() (never -inf), matching
  /// Histogram::min/max on an empty instrument.
  double max() const { return sets_ == 0 ? 0.0 : max_; }
  std::uint64_t sets() const { return sets_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  std::uint64_t sets_ = 0;
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]
/// (first matching bound); observations above the last bound land in the
/// overflow bucket, so buckets().size() == bounds().size() + 1.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

  void observe(double v) {
    // First bound >= v keeps the documented inclusive-upper-bound
    // semantics (v == bound lands in that bucket); binary search instead
    // of a linear scan, since bounds_ is sorted by construction.
    const std::size_t i = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    ++buckets_[i];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Default histogram bounds for prover-side latencies: spans the one-block
/// MAC check (~0.017 ms Speck) through a full 512 KB measurement (~754 ms)
/// and the long tail beyond.
std::vector<double> default_latency_bounds_ms();

/// Instrument registry. Instruments live as long as the registry; the
/// node-based containers guarantee stable addresses, so cached references
/// survive later registrations.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. Registration is the only allocating step.
  Counter& counter(std::string_view name) {
    return counters_[std::string(name)];
  }
  Gauge& gauge(std::string_view name) { return gauges_[std::string(name)]; }
  Histogram& histogram(std::string_view name) {
    // Build the default bounds vector only on the miss path — the common
    // repeated lookup must not allocate.
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histogram(name, default_latency_bounds_ms());
  }
  Histogram& histogram(std::string_view name, std::vector<double> bounds) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
        .first->second;
  }

  /// Lookup without creation (nullptr if absent) — for report writers.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Human-readable dump, one instrument per line, name-sorted (stable —
  /// suitable for golden comparisons in tests).
  std::string to_text() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace ratt::obs
