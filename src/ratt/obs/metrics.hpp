// ratt::obs — metrics registry: counters, gauges and fixed-bucket
// histograms for the simulation's observability layer.
//
// Design constraints (mirrored from what a real prover-side telemetry
// agent could afford):
//   * zero-alloc on the hot path — instruments are registered once (the
//     only allocating step) and callers cache the returned reference;
//     inc()/set()/observe() touch plain members only,
//   * no global state — a Registry is an injected instance, so two swarms
//     (or two test cases) never share instruments,
//   * header-mostly — only the export/snapshot helpers live in a .cpp.
//
// Concurrency contract (the sharded Swarm relies on this): registration
// (Registry::counter/gauge/histogram, get-or-create) is serialized by a
// mutex, so shard workers may register lazily — the lazily-materialized
// fleet attaches a device's instruments on whichever worker thread first
// touches the device. It stays a cold path: callers cache the returned
// reference and never take the lock again. The instruments themselves
// ARE thread-safe: inc()/set()/observe() use relaxed atomics, so shards
// sharing one Registry never race. All
// aggregate readouts (counter sums, gauge high-water marks, histogram
// bucket counts) are order-independent, so they are deterministic for a
// given workload at any thread count; only the last-write value() of a
// concurrently-set gauge depends on scheduling.
//
// Naming convention (docs/OBSERVABILITY.md): dot-separated lowercase
// "<layer>.<subject>[.<detail>]", e.g. "prover.outcome.not-fresh",
// "queue.backlog", "session.round_trip_ms".
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ratt::obs {

namespace detail {

/// Relaxed fetch-max for doubles (no fetch_max in the standard): CAS loop
/// that only writes when `v` actually raises the stored value.
inline void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonically accumulating value. `value()` is the sum of all inc()
/// arguments (so fractional quantities — milliseconds, millijoules —
/// accumulate exactly as given); `count()` is the number of inc() calls.
/// Thread-safe: concurrent inc() from shard workers never lose updates.
class Counter {
 public:
  void inc(double v = 1.0) {
    value_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Last-write-wins value with a high-water mark (useful for backlogs and
/// queue depths, where the peak matters as much as the final value).
/// Thread-safe; max() — a max over all set values — is deterministic even
/// under concurrent setters, while value() is whichever write landed last.
class Gauge {
 public:
  void set(double v) {
    value_.store(v, std::memory_order_relaxed);
    sets_.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_max(max_, v);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  /// High-water mark; 0.0 before the first set() (never -inf), matching
  /// Histogram::min/max on an empty instrument.
  double max() const {
    return sets_.load(std::memory_order_relaxed) == 0
               ? 0.0
               : max_.load(std::memory_order_relaxed);
  }
  std::uint64_t sets() const {
    return sets_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<std::uint64_t> sets_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]
/// (first matching bound); observations above the last bound land in the
/// overflow bucket, so buckets().size() == bounds().size() + 1.
/// observe() is thread-safe; bucket counts, count and sum are exact under
/// concurrency (sum's floating-point rounding can vary with interleaving
/// in the last bits — bucket counts and min/max cannot).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

  /// Move is a registration-time convenience only (Registry::histogram
  /// moves the freshly-built instrument into its map). NOT thread-safe:
  /// never move a histogram concurrent writers hold a reference to.
  Histogram(Histogram&& other) noexcept
      : bounds_(std::move(other.bounds_)),
        buckets_(std::move(other.buckets_)) {
    count_.store(other.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    min_.store(other.min_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(other.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  Histogram& operator=(Histogram&&) = delete;

  void observe(double v) {
    // First bound >= v keeps the documented inclusive-upper-bound
    // semantics (v == bound lands in that bucket); binary search instead
    // of a linear scan, since bounds_ is sorted by construction.
    const std::size_t i = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    detail::atomic_min(min_, v);
    detail::atomic_max(max_, v);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  double min() const {
    return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  }
  double max() const {
    return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Snapshot of the bucket counts (a copy: the live array is atomic).
  std::vector<std::uint64_t> buckets() const {
    std::vector<std::uint64_t> out(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Default histogram bounds for prover-side latencies: spans the one-block
/// MAC check (~0.017 ms Speck) through a full 512 KB measurement (~754 ms)
/// and the long tail beyond.
std::vector<double> default_latency_bounds_ms();

/// Instrument registry. Instruments live as long as the registry; the
/// node-based containers guarantee stable addresses, so cached references
/// survive later registrations. Registration and name lookup are
/// mutex-serialized (lazy fleet materialization registers from shard
/// worker threads); the returned instruments are safe to update from any
/// thread without the lock. The whole-map accessors and to_text() are
/// for post-join export — do not call them while workers may register.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. Registration is the only allocating step.
  Counter& counter(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_[std::string(name)];
  }
  Gauge& gauge(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return gauges_[std::string(name)];
  }
  Histogram& histogram(std::string_view name) {
    // Build the default bounds vector only on the miss path — the common
    // repeated lookup must not allocate.
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histograms_.emplace(std::string(name),
                               Histogram(default_latency_bounds_ms()))
        .first->second;
  }
  Histogram& histogram(std::string_view name, std::vector<double> bounds) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
        .first->second;
  }

  /// Lookup without creation (nullptr if absent) — for report writers.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Human-readable dump, one instrument per line, name-sorted (stable —
  /// suitable for golden comparisons in tests).
  std::string to_text() const;

 private:
  // Guards the maps' structure only; the instruments inside stay
  // lock-free. mutable so the const find_* lookups can serialize against
  // concurrent registration.
  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace ratt::obs
