// ratt::obs — DoS scoreboard: the paper's asymmetry argument as a data
// structure. Every adversarial request is filed under a request class
// (e.g. "replay:ok", "forged:bad-request-mac") with the prover time it
// extracted and the attacker time it cost; both sides' energy follows
// from their power models. The headline number is asymmetry():
// prover-spent over attacker-spent — ~754 ms of uninterruptible MAC time
// against a near-free replay on the unprotected baseline, collapsing to
// one cheap MAC check once Sec. 4's mitigations are on.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <string_view>

#include "ratt/obs/observer.hpp"

namespace ratt::obs {

class DosScoreboard {
 public:
  struct Entry {
    std::uint64_t requests = 0;
    double prover_ms = 0.0;
    double attacker_ms = 0.0;
    double prover_mj = 0.0;
    double attacker_mj = 0.0;
  };

  DosScoreboard() = default;
  /// `attacker_power` models the adversary's radio/CPU — typically a much
  /// beefier device, which is exactly why energy asymmetry matters less
  /// to it.
  DosScoreboard(PowerModel prover_power, PowerModel attacker_power)
      : prover_power_(prover_power), attacker_power_(attacker_power) {}

  void record(std::string_view request_class, double prover_ms,
              double attacker_ms);

  const std::map<std::string, Entry, std::less<>>& classes() const {
    return classes_;
  }
  const Entry* find(std::string_view request_class) const;

  Entry totals() const;
  /// prover_ms / attacker_ms over all classes (inf-safe: 0 attacker time
  /// with nonzero prover time reports infinity as a very large number).
  double asymmetry() const;

  /// Formatted table, one row per request class plus a totals row.
  void print(std::FILE* out) const;

 private:
  PowerModel prover_power_{};
  PowerModel attacker_power_{};
  std::map<std::string, Entry, std::less<>> classes_;
};

}  // namespace ratt::obs
