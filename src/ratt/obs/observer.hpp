// ratt::obs — the injection point: a nullable bundle of registry + trace
// sink + identity + power model that instrumented layers accept. A
// default-constructed Observer is inert; every hook checks enabled()
// first, so the zero-observer configuration is behaviorally identical to
// an uninstrumented build.
#pragma once

#include <cstdint>

#include "ratt/obs/metrics.hpp"
#include "ratt/obs/trace.hpp"

namespace ratt::obs {

namespace prof {
class ShardProfile;
}  // namespace prof

/// Causal context of the wire request being served: which logical round
/// it belongs to (prof::make_round_id) and which attempt within that
/// round. Flows verifier → session → prover so every TraceRecord and
/// PhaseSample of one round carries the same id. Default = "no round"
/// (injected floods, bare-prover benches).
struct RoundContext {
  std::uint64_t round_id = 0;
  std::uint32_t attempt = 0;
};

/// Converts prover-side time into energy (the DoS currency's second
/// axis). Defaults approximate a low-end MCU: ~0.3 mW/MHz active at
/// 24 MHz, 3 uW sleep — the same reference point as timing::EnergyModel.
struct PowerModel {
  double active_mw = 7.2;
  double sleep_mw = 0.003;

  double active_mj(double ms) const { return active_mw * ms / 1000.0; }
  double sleep_mj(double ms) const { return sleep_mw * ms / 1000.0; }
};

struct Observer {
  Registry* registry = nullptr;
  TraceSink* sink = nullptr;
  std::uint64_t device_id = 0;
  PowerModel power{};
  /// Per-phase cost accumulator (shard-local, like the trace ring).
  prof::ShardProfile* profile = nullptr;

  bool enabled() const {
    return registry != nullptr || sink != nullptr || profile != nullptr;
  }
};

}  // namespace ratt::obs
