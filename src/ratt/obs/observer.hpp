// ratt::obs — the injection point: a nullable bundle of registry + trace
// sink + identity + power model that instrumented layers accept. A
// default-constructed Observer is inert; every hook checks enabled()
// first, so the zero-observer configuration is behaviorally identical to
// an uninstrumented build.
#pragma once

#include <cstdint>

#include "ratt/obs/metrics.hpp"
#include "ratt/obs/trace.hpp"

namespace ratt::obs {

/// Converts prover-side time into energy (the DoS currency's second
/// axis). Defaults approximate a low-end MCU: ~0.3 mW/MHz active at
/// 24 MHz, 3 uW sleep — the same reference point as timing::EnergyModel.
struct PowerModel {
  double active_mw = 7.2;
  double sleep_mw = 0.003;

  double active_mj(double ms) const { return active_mw * ms / 1000.0; }
  double sleep_mj(double ms) const { return sleep_mw * ms / 1000.0; }
};

struct Observer {
  Registry* registry = nullptr;
  TraceSink* sink = nullptr;
  std::uint64_t device_id = 0;
  PowerModel power{};

  bool enabled() const { return registry != nullptr || sink != nullptr; }
};

}  // namespace ratt::obs
