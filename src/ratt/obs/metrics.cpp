#include "ratt/obs/metrics.hpp"

#include <charconv>

namespace ratt::obs {

namespace {

// Shortest round-trip double — deterministic across runs and locales.
void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

std::vector<double> default_latency_bounds_ms() {
  return {0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0};
}

const Counter* Registry::find_counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string Registry::to_text() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "counter ";
    out += name;
    out += " value=";
    append_double(out, c.value());
    out += " count=";
    append_double(out, static_cast<double>(c.count()));
    out += '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out += "gauge ";
    out += name;
    out += " value=";
    append_double(out, g.value());
    out += " max=";
    append_double(out, g.max());
    out += '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out += "histogram ";
    out += name;
    out += " count=";
    append_double(out, static_cast<double>(h.count()));
    out += " sum=";
    append_double(out, h.sum());
    out += " min=";
    append_double(out, h.min());
    out += " max=";
    append_double(out, h.max());
    out += " buckets=[";
    const std::vector<std::uint64_t> buckets = h.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (i != 0) out += ',';
      append_double(out, static_cast<double>(buckets[i]));
    }
    out += "]\n";
  }
  return out;
}

}  // namespace ratt::obs
