// ratt::obs — Perfetto / Chrome trace_event JSON export. TraceRecord
// spans become complete ("ph":"X") events on one track per device and
// role, AlertEvents become instant ("ph":"i") markers, and metadata
// events name the tracks, so a same-seed run drops a byte-identical file
// that opens directly in ui.perfetto.dev or chrome://tracing.
//
// Mapping:
//   pid  = device_id (one "process" per prover)
//   tid  = 1 prover spans, 2 verifier spans, 3 DoS-harness spans,
//          4 alert markers
//   ts   = span start in µs (sim_time_ms is the span *end*, so the start
//          is end − duration); dur = prover/verifier time in µs
//   args = outcome, bytes, prover_ms, verifier_ms, energy_mj, power_mw,
//          plus round_id (hex string — 64-bit ids overflow JS numbers)
//          and attempt when the span belongs to a round
//
// Spans sharing a nonzero round_id are additionally linked by flow
// events ("ph":"s"/"t"/"f", cat "round", hex-string id), so one logical
// round — verifier send, every retry, the prover's handling, the close —
// renders as a connected chain in the viewer.
//
// Power traces (ratt::obs::power::RoundTrace) add one counter track per
// device ("ph":"C", name "power_mw"): the sampled waveform renders as a
// stepped power plot under the device's span tracks, the visual analog
// of an oscilloscope capture.
#pragma once

#include <ostream>
#include <span>

#include "ratt/obs/power/trace.hpp"
#include "ratt/obs/trace.hpp"
#include "ratt/obs/ts/alert.hpp"

namespace ratt::obs {

/// Spans only.
void write_perfetto(std::ostream& out, std::span<const TraceRecord> records);

/// Spans plus alert instant markers on each device's alert track.
void write_perfetto(std::ostream& out, std::span<const TraceRecord> records,
                    std::span<const ts::AlertEvent> alerts);

/// Spans, alert markers and per-device power counter tracks sampled from
/// the round power traces.
void write_perfetto(std::ostream& out, std::span<const TraceRecord> records,
                    std::span<const ts::AlertEvent> alerts,
                    std::span<const power::RoundTrace> power_traces,
                    const power::PowerTraceConfig& power_config);

}  // namespace ratt::obs
