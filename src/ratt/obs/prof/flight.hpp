// ratt::obs::prof — flight recorder: the DoS post-mortem the scoreboard
// cannot produce. A bounded ring keeps the last `pre` TraceRecords; when
// an obs::ts AlertEngine rule fires (wire its alert hook to on_alert),
// the recorder freezes that pre-window and keeps capturing until `post`
// more records arrived — one deterministic forensic dump per alert, with
// drop accounting so the dump can state whether its window is complete.
//
// Deployment mirrors the per-shard trace rings: one FlightRecorder per
// shard, placed UPSTREAM of the alert engine in the sink chain
// (TeeSink(flight, engine)), so the record that closes the alerting
// window is already in the ring when the hook fires. merge_dumps()
// produces the canonical cross-shard order — same seed => byte-identical
// dump file at any thread/shard count.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <vector>

#include "ratt/obs/trace.hpp"
#include "ratt/obs/ts/alert.hpp"

namespace ratt::obs::prof {

struct FlightConfig {
  std::size_t pre = 64;        // records kept before the alert
  std::size_t post = 64;       // records captured after the alert
  std::size_t max_dumps = 16;  // overflow is counted, not stored
};

struct FlightDump {
  ts::AlertEvent alert;
  /// Pre-window (oldest first) followed by post-window, stream order.
  std::vector<TraceRecord> records;
  /// How many of `records` precede the alert (<= config.pre).
  std::size_t pre_count = 0;
  /// Records evicted from the flight ring before the freeze — nonzero
  /// simply means the stream outgrew the pre-window (expected).
  std::uint64_t ring_evicted = 0;
  /// dropped_total() of the upstream sink chain at freeze time (see
  /// set_upstream): nonzero means records never reached this recorder
  /// and the window may have gaps.
  std::uint64_t upstream_dropped = 0;
  /// Post-window still filling when the run ended?
  bool post_truncated = false;

  /// The dump's window is complete: nothing was dropped on the way here
  /// and the post-window filled up.
  bool complete() const { return upstream_dropped == 0 && !post_truncated; }

  friend bool operator==(const FlightDump&, const FlightDump&) = default;
};

class FlightRecorder : public TraceSink {
 public:
  explicit FlightRecorder(FlightConfig config = FlightConfig{});

  void record(const TraceRecord& rec) override;

  /// Freeze the pre-window for this alert and arm the post-window. Wire
  /// as AlertEngine::set_alert_hook — fires for every rule evaluation
  /// that crossed a threshold, even ones the engine's own bounded log
  /// dropped.
  void on_alert(const ts::AlertEvent& event);

  /// A sink whose dropped_total() is consulted at freeze time (e.g. the
  /// shard's RingRecorder when the flight recorder tees off it).
  void set_upstream(const TraceSink* upstream) { upstream_ = upstream; }

  /// Close still-filling post-windows (end of run); marks them truncated.
  void finish();

  const FlightConfig& config() const { return config_; }
  std::span<const FlightDump> dumps() const { return dumps_; }
  std::uint64_t dumps_dropped() const { return dumps_dropped_; }

 private:
  FlightConfig config_;
  const TraceSink* upstream_ = nullptr;
  std::vector<TraceRecord> ring_;  // last `pre` records
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::vector<FlightDump> dumps_;
  std::vector<std::size_t> open_;  // indices into dumps_ still filling
  std::uint64_t dumps_dropped_ = 0;
};

/// Canonical cross-shard merge: dumps ordered by (alert time, device,
/// rule, window) — deterministic at any shard plan, because each device's
/// alerts all come from one shard.
std::vector<FlightDump> merge_dumps(std::vector<std::vector<FlightDump>> shards);

/// Deterministic text rendering: the alert log line, the window
/// completeness verdict, then one trace JSONL line per record with a
/// pre/post marker. Golden-file format (tests pin it).
void write_dump(std::ostream& out, const FlightDump& dump);
void write_dumps(std::ostream& out, std::span<const FlightDump> dumps);

}  // namespace ratt::obs::prof
