#include "ratt/obs/prof/flight.hpp"

#include <algorithm>

namespace ratt::obs::prof {

FlightRecorder::FlightRecorder(FlightConfig config) : config_(config) {
  ring_.resize(config_.pre == 0 ? 1 : config_.pre);
}

void FlightRecorder::record(const TraceRecord& rec) {
  // Feed still-open post-windows first: the record arriving after the
  // alert belongs to the post-window, not the (already frozen) pre-ring.
  if (!open_.empty()) {
    for (std::size_t i = 0; i < open_.size();) {
      FlightDump& dump = dumps_[open_[i]];
      dump.records.push_back(rec);
      const std::size_t post = dump.records.size() - dump.pre_count;
      if (post >= config_.post) {
        open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  ring_[head_] = rec;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++total_;
}

void FlightRecorder::on_alert(const ts::AlertEvent& event) {
  if (dumps_.size() >= config_.max_dumps) {
    ++dumps_dropped_;
    return;
  }
  FlightDump dump;
  dump.alert = event;
  dump.ring_evicted = total_ - size_;
  dump.upstream_dropped =
      upstream_ == nullptr ? 0 : upstream_->dropped_total();
  dump.records.reserve(size_ + config_.post);
  const std::size_t start = (size_ == ring_.size()) ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    dump.records.push_back(ring_[(start + i) % ring_.size()]);
  }
  dump.pre_count = dump.records.size();
  dumps_.push_back(std::move(dump));
  if (config_.post > 0) {
    open_.push_back(dumps_.size() - 1);
  }
}

void FlightRecorder::finish() {
  for (const std::size_t i : open_) {
    dumps_[i].post_truncated = true;
  }
  open_.clear();
}

std::vector<FlightDump> merge_dumps(
    std::vector<std::vector<FlightDump>> shards) {
  std::vector<FlightDump> out;
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  out.reserve(total);
  for (auto& shard : shards) {
    for (auto& dump : shard) out.push_back(std::move(dump));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightDump& a, const FlightDump& b) {
                     if (a.alert.sim_time_ms != b.alert.sim_time_ms) {
                       return a.alert.sim_time_ms < b.alert.sim_time_ms;
                     }
                     if (a.alert.device_id != b.alert.device_id) {
                       return a.alert.device_id < b.alert.device_id;
                     }
                     if (a.alert.rule != b.alert.rule) {
                       return a.alert.rule < b.alert.rule;
                     }
                     return a.alert.window_index < b.alert.window_index;
                   });
  return out;
}

void write_dump(std::ostream& out, const FlightDump& dump) {
  out << "=== flight dump: " << ts::to_log_line(dump.alert) << '\n';
  out << "window: pre=" << dump.pre_count << " post="
      << (dump.records.size() - dump.pre_count)
      << (dump.post_truncated ? " (post truncated)" : "")
      << " upstream_dropped=" << dump.upstream_dropped
      << (dump.complete() ? " [complete]" : " [INCOMPLETE]") << '\n';
  for (std::size_t i = 0; i < dump.records.size(); ++i) {
    out << (i < dump.pre_count ? "pre  " : "post ")
        << to_jsonl(dump.records[i]) << '\n';
  }
}

void write_dumps(std::ostream& out, std::span<const FlightDump> dumps) {
  for (const auto& dump : dumps) write_dump(out, dump);
}

}  // namespace ratt::obs::prof
