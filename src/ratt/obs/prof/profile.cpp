#include "ratt/obs/prof/profile.hpp"

#include <charconv>
#include <cstdio>

namespace ratt::obs::prof {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

std::string_view to_string(Phase phase) {
  switch (phase) {
    case Phase::kReqAuth:
      return "req_auth";
    case Phase::kFreshness:
      return "freshness";
    case Phase::kMemMac:
      return "mem_mac";
    case Phase::kRespMac:
      return "resp_mac";
    case Phase::kNetWait:
      return "net_wait";
    case Phase::kRetryOverhead:
      return "retry_overhead";
    case Phase::kOther:
      return "other";
  }
  return "unknown";
}

Phase phase_from_string(std::string_view name) {
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    if (to_string(static_cast<Phase>(p)) == name) {
      return static_cast<Phase>(p);
    }
  }
  return static_cast<Phase>(kPhaseCount);
}

void ShardProfile::record(const PhaseSample& sample) {
  if (last_slot_ == nullptr || last_device_ != sample.device_id) {
    last_device_ = sample.device_id;
    last_slot_ = &devices_[sample.device_id];
  }
  PhaseCost& cell = (*last_slot_)[static_cast<std::size_t>(sample.phase)];
  cell.cycles += sample.cycles;
  cell.energy_mj += sample.energy_mj;
  cell.bus_bytes += sample.bus_bytes;
  cell.mac_bytes += sample.mac_bytes;
  ++cell.count;
  ++samples_;
  if (hook_ != nullptr) hook_->on_phase(sample);
}

ProfileTable ProfileTable::merge(
    std::span<const ShardProfile* const> shards) {
  ProfileTable table;
  for (const ShardProfile* shard : shards) {
    if (shard == nullptr) continue;
    for (const auto& [device, phases] : shard->devices()) {
      DevicePhases& dst = table.devices_[device];
      for (std::size_t p = 0; p < kPhaseCount; ++p) {
        dst[p].add(phases[p]);
      }
    }
  }
  return table;
}

PhaseCost ProfileTable::total(Phase phase) const {
  PhaseCost total;
  for (const auto& [device, phases] : devices_) {
    total.add(phases[static_cast<std::size_t>(phase)]);
  }
  return total;
}

std::uint64_t ProfileTable::total_cycles() const {
  std::uint64_t cycles = 0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    cycles += total(static_cast<Phase>(p)).cycles;
  }
  return cycles;
}

void ProfileTable::write_jsonl(std::ostream& out) const {
  std::string line;
  for (const auto& [device, phases] : devices_) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      const PhaseCost& cell = phases[p];
      if (cell.count == 0) continue;
      line.clear();
      line += "{\"device_id\":";
      append_u64(line, device);
      line += ",\"phase\":\"";
      line += to_string(static_cast<Phase>(p));
      line += "\",\"count\":";
      append_u64(line, cell.count);
      line += ",\"cycles\":";
      append_u64(line, cell.cycles);
      line += ",\"energy_mj\":";
      append_double(line, cell.energy_mj);
      line += ",\"bus_bytes\":";
      append_u64(line, cell.bus_bytes);
      line += ",\"mac_bytes\":";
      append_u64(line, cell.mac_bytes);
      line += '}';
      out << line << '\n';
    }
  }
}

void ProfileTable::write_report(std::ostream& out, double clock_hz) const {
  const std::uint64_t all_cycles = total_cycles();
  char buf[160];
  std::snprintf(buf, sizeof buf, "  %-15s %10s %14s %12s %12s %12s %12s %7s\n",
                "phase", "count", "cycles", "ms", "energy_mj", "bus_bytes",
                "mac_bytes", "share");
  out << buf;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const PhaseCost cell = total(static_cast<Phase>(p));
    const double ms =
        clock_hz > 0.0 ? 1000.0 * static_cast<double>(cell.cycles) / clock_hz
                       : 0.0;
    const double share =
        all_cycles == 0 ? 0.0
                        : 100.0 * static_cast<double>(cell.cycles) /
                              static_cast<double>(all_cycles);
    std::snprintf(buf, sizeof buf,
                  "  %-15s %10llu %14llu %12.3f %12.4f %12llu %12llu %6.2f%%\n",
                  std::string(to_string(static_cast<Phase>(p))).c_str(),
                  static_cast<unsigned long long>(cell.count),
                  static_cast<unsigned long long>(cell.cycles), ms,
                  cell.energy_mj,
                  static_cast<unsigned long long>(cell.bus_bytes),
                  static_cast<unsigned long long>(cell.mac_bytes), share);
    out << buf;
  }
  const PhaseCost other = total(Phase::kOther);
  const double other_share =
      all_cycles == 0 ? 0.0
                      : 100.0 * static_cast<double>(other.cycles) /
                            static_cast<double>(all_cycles);
  std::snprintf(buf, sizeof buf,
                "  coverage: %.2f%% of %llu total cycles attributed to named "
                "phases (other %.2f%%)\n",
                100.0 - other_share,
                static_cast<unsigned long long>(all_cycles), other_share);
  out << buf;
}

}  // namespace ratt::obs::prof
