// ratt::obs::prof — per-phase cost attribution for attestation rounds.
//
// The paper's whole argument is a cost breakdown: Table 1 prices each
// primitive, Sec. 3.1/4.1 turn those prices into the DoS asymmetry. This
// layer attributes every simulated cycle of a round to one of a small,
// closed set of phases, so regressions ("requests/s dropped") decompose
// into "which phase ate the cycles":
//
//   req_auth        authenticating the request MAC (Sec. 4.1) — also
//                   where every rejected request's cycles land, since
//                   authentication is all a reject costs,
//   freshness       the freshness-policy check (Sec. 4.2; a few memory
//                   words — charged 0 cycles by the timing model, but
//                   counted, so the report can show it is *not* where
//                   time goes),
//   mem_mac         streaming the measured memory through the MAC — the
//                   headline ~754 ms at 512 KB / 24 MHz,
//   resp_mac        MAC setup, header absorption and finalization (the
//                   response side of the measurement),
//   net_wait        wire + queueing time of the attempt that completed a
//                   round (verifier-side, device idle — sleep power),
//   retry_overhead  prover cycles extracted by wire attempts beyond a
//                   round's first (each retry is a fresh request the
//                   prover fully serves — the PR-4 amplification),
//   other           residual cycles no phase claims (the report's
//                   coverage check keeps this under 5%).
//
// Determinism contract (same as traces): one ShardProfile per shard,
// never shared across worker threads; each device lives in exactly one
// shard, so merging is collation, not floating-point re-association —
// same seed => byte-identical ProfileTable JSONL at any thread/shard
// count.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ratt::obs::prof {

enum class Phase : std::uint8_t {
  kReqAuth = 0,
  kFreshness,
  kMemMac,
  kRespMac,
  kNetWait,
  kRetryOverhead,
  kOther,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kOther) + 1;

std::string_view to_string(Phase phase);

/// Deterministic round id from (device_id, session_seq): a splitmix64
/// finalizer over the pair, so ids are unique in practice and NEVER come
/// from a global atomic — sharded run_parallel stays byte-identical at
/// any thread count. 0 is reserved as the "no round" sentinel.
constexpr std::uint64_t make_round_id(std::uint64_t device_id,
                                      std::uint64_t session_seq) {
  std::uint64_t x =
      (device_id + 1) * 0x9E3779B97F4A7C15ull ^ (session_seq + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

/// Accumulated cost of one (device, phase) cell.
struct PhaseCost {
  std::uint64_t cycles = 0;    // simulated device cycles
  double energy_mj = 0.0;      // from the attached PowerModel
  std::uint64_t bus_bytes = 0; // bytes moved over the simulated bus
  std::uint64_t mac_bytes = 0; // bytes fed through a MAC
  std::uint64_t count = 0;     // samples

  void add(const PhaseCost& other) {
    cycles += other.cycles;
    energy_mj += other.energy_mj;
    bus_bytes += other.bus_bytes;
    mac_bytes += other.mac_bytes;
    count += other.count;
  }

  friend bool operator==(const PhaseCost&, const PhaseCost&) = default;
};

/// One attributed cost sample (an instrumentation site emits these).
struct PhaseSample {
  Phase phase = Phase::kOther;
  std::uint64_t device_id = 0;
  std::uint64_t round_id = 0;  // 0 = unattributed (e.g. injected flood)
  std::uint64_t cycles = 0;
  double energy_mj = 0.0;
  std::uint64_t bus_bytes = 0;
  std::uint64_t mac_bytes = 0;
  /// When the work containing this phase ended (device clock for prover
  /// phases, queue clock for net_wait). Samples of one batch share the
  /// anchor; downstream waveform builders lay them out back to back
  /// ending there. 0 when the emitting site predates the power layer.
  double sim_time_ms = 0.0;
  /// The phase's own duration in ms (cycles / clock for device phases,
  /// the wire round trip for net_wait).
  double duration_ms = 0.0;
};

using DevicePhases = std::array<PhaseCost, kPhaseCount>;

/// Tap on the sample stream of one ShardProfile — the hook the power
/// layer (obs::power::ShardPowerRecorder) uses to turn the exact phase
/// partition into per-round power waveforms. Shard-local like the
/// profile itself: never shared across worker threads.
class PhaseHook {
 public:
  virtual ~PhaseHook() = default;
  virtual void on_phase(const PhaseSample& sample) = 0;
};

/// Shard-local accumulator: one per shard (like the per-shard trace
/// rings), so worker threads never share one. record() is the only hot
/// call; a one-slot device cache keeps the steady state off the map.
class ShardProfile {
 public:
  void record(const PhaseSample& sample);

  const std::map<std::uint64_t, DevicePhases>& devices() const {
    return devices_;
  }
  std::uint64_t samples_total() const { return samples_; }

  /// Forward every recorded sample (after accumulation) to `hook`.
  /// nullptr detaches. The hook must live in the same shard as this
  /// profile — it runs on the shard's worker thread.
  void set_hook(PhaseHook* hook) { hook_ = hook; }
  PhaseHook* hook() const { return hook_; }

 private:
  std::map<std::uint64_t, DevicePhases> devices_;
  std::uint64_t last_device_ = 0;
  DevicePhases* last_slot_ = nullptr;
  std::uint64_t samples_ = 0;
  PhaseHook* hook_ = nullptr;
};

/// Canonical merged profile: per-device rows in device order, plus fleet
/// totals. Built by merging shard profiles (pure collation — each device
/// lives in exactly one shard) or from a single ShardProfile.
class ProfileTable {
 public:
  ProfileTable() = default;

  /// Merge shard-local profiles. Devices recorded by several profiles
  /// (single-sink setups) sum cell-wise — still deterministic, because
  /// profiles are merged in the order given.
  static ProfileTable merge(
      std::span<const ShardProfile* const> shards);

  const std::map<std::uint64_t, DevicePhases>& devices() const {
    return devices_;
  }

  /// Fleet-wide total of one phase (device order, deterministic).
  PhaseCost total(Phase phase) const;
  /// Sum of cycles over every phase (the coverage denominator).
  std::uint64_t total_cycles() const;

  /// One JSON object per (device, phase) cell with count > 0, devices
  /// ascending, phases in enum order — byte-identical for the same seed
  /// at any thread/shard count. Schema: docs/PROFILING.md.
  void write_jsonl(std::ostream& out) const;

  /// Table-3-style console report: fleet totals per phase (cycles, ms at
  /// the given clock, energy, bytes, share of total cycles) plus the
  /// coverage line the CI gate checks.
  void write_report(std::ostream& out, double clock_hz) const;

  friend bool operator==(const ProfileTable&, const ProfileTable&) = default;

 private:
  std::map<std::uint64_t, DevicePhases> devices_;
};

/// Phase-name lookup for parsers/gates (kPhaseCount on miss).
Phase phase_from_string(std::string_view name);

}  // namespace ratt::obs::prof
