#include "ratt/obs/trace.hpp"

#include <algorithm>
#include <charconv>

#include "ratt/obs/metrics.hpp"

namespace ratt::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

// Labels are controlled vocabulary, but escape anyway so arbitrary
// outcomes can't break the framing. Full RFC-8259 coverage: every control
// character (< 0x20) must be escaped, not just newline.
void append_json_string(std::string& out, const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// RFC-4180: quote a field whenever it holds a comma, a quote or a line
// break; embedded quotes double. Plain labels pass through unquoted, so
// existing goldens keep their byte-exact shape.
void append_csv_field(std::string& out, const std::string& s) {
  const bool needs_quoting =
      s.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quoting) {
    out += s;
    return;
  }
  out += '"';
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

RingRecorder::RingRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void RingRecorder::record(const TraceRecord& rec) {
  if (size_ == ring_.size() && dropped_counter_ != nullptr) {
    dropped_counter_->inc();
  }
  ring_[head_] = rec;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++total_;
}

std::uint64_t RingRecorder::dropped() const { return total_ - size_; }

std::vector<TraceRecord> RingRecorder::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(size_);
  // Oldest record sits at head_ once the ring has wrapped.
  const std::size_t start = (size_ == ring_.size()) ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceRecord> merge_traces(
    std::vector<std::vector<TraceRecord>> shards) {
  std::vector<TraceRecord> out;
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  out.reserve(total);
  for (auto& shard : shards) {
    for (auto& rec : shard) out.push_back(std::move(rec));
  }
  // Stable sort: same-(time, device) records keep their shard-stream
  // order, and a device's records all come from one shard — so the
  // result is one canonical interleaving, independent of the shard plan.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.sim_time_ms != b.sim_time_ms) {
                       return a.sim_time_ms < b.sim_time_ms;
                     }
                     return a.device_id < b.device_id;
                   });
  return out;
}

std::string to_jsonl(const TraceRecord& rec) {
  std::string out;
  out.reserve(160);
  out += "{\"sim_time_ms\":";
  append_double(out, rec.sim_time_ms);
  out += ",\"device_id\":";
  append_u64(out, rec.device_id);
  out += ",\"kind\":";
  append_json_string(out, rec.kind);
  out += ",\"outcome\":";
  append_json_string(out, rec.outcome);
  out += ",\"prover_ms\":";
  append_double(out, rec.prover_ms);
  out += ",\"verifier_ms\":";
  append_double(out, rec.verifier_ms);
  out += ",\"bytes\":";
  append_u64(out, rec.bytes);
  out += ",\"energy_mj\":";
  append_double(out, rec.energy_mj);
  out += ",\"power_mw\":";
  append_double(out, rec.power_mw);
  out += ",\"round_id\":";
  append_u64(out, rec.round_id);
  out += ",\"attempt\":";
  append_u64(out, rec.attempt);
  out += '}';
  return out;
}

void write_jsonl(std::ostream& out, std::span<const TraceRecord> records) {
  for (const auto& rec : records) {
    out << to_jsonl(rec) << '\n';
  }
}

void write_csv(std::ostream& out, std::span<const TraceRecord> records) {
  out << "sim_time_ms,device_id,kind,outcome,prover_ms,verifier_ms,bytes,"
         "energy_mj,power_mw,round_id,attempt\n";
  std::string line;
  for (const auto& rec : records) {
    line.clear();
    append_double(line, rec.sim_time_ms);
    line += ',';
    append_u64(line, rec.device_id);
    line += ',';
    append_csv_field(line, rec.kind);
    line += ',';
    append_csv_field(line, rec.outcome);
    line += ',';
    append_double(line, rec.prover_ms);
    line += ',';
    append_double(line, rec.verifier_ms);
    line += ',';
    append_u64(line, rec.bytes);
    line += ',';
    append_double(line, rec.energy_mj);
    line += ',';
    append_double(line, rec.power_mw);
    line += ',';
    append_u64(line, rec.round_id);
    line += ',';
    append_u64(line, rec.attempt);
    out << line << '\n';
  }
}

}  // namespace ratt::obs
