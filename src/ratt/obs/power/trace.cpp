#include "ratt/obs/power/trace.hpp"

#include <algorithm>
#include <charconv>

namespace ratt::obs::power {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_json_string(std::string& out, const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

double RoundTrace::energy_mj() const {
  double mj = 0.0;
  for (const auto& seg : segments) mj += seg.energy_mj;
  return mj;
}

double RoundTrace::duration_ms() const {
  double ms = 0.0;
  for (const auto& seg : segments) ms += seg.duration_ms;
  return ms;
}

double RoundTrace::mean_power_mw() const {
  const double ms = duration_ms();
  return ms > 0.0 ? energy_mj() / ms * 1000.0 : 0.0;
}

double effective_period_ms(const RoundTrace& trace,
                           const PowerTraceConfig& config) {
  double period = config.sample_period_ms > 0.0 ? config.sample_period_ms : 1.0;
  const double span = trace.end_ms - trace.start_ms;
  if (span <= 0.0) return period;
  const std::size_t cap = config.max_samples == 0 ? 1 : config.max_samples;
  while (span / period > static_cast<double>(cap)) period *= 2.0;
  return period;
}

std::vector<double> sample_waveform(const RoundTrace& trace,
                                    const PowerTraceConfig& config) {
  std::vector<double> out;
  const double span = trace.end_ms - trace.start_ms;
  if (span <= 0.0) return out;
  const double period = effective_period_ms(trace, config);
  const auto n = static_cast<std::size_t>(span / period) +
                 (span / period > static_cast<double>(
                                      static_cast<std::size_t>(span / period))
                      ? 1
                      : 0);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = trace.start_ms + (static_cast<double>(i) + 0.5) * period;
    if (t >= trace.end_ms) break;
    double mw = config.model.sleep_mw;
    // Last covering segment wins: overlapping layouts resolve to the most
    // recently recorded phase, deterministically.
    for (const auto& seg : trace.segments) {
      if (t >= seg.start_ms && t < seg.start_ms + seg.duration_ms) {
        mw = seg.power_mw;
      }
    }
    out.push_back(mw);
  }
  return out;
}

std::string to_jsonl(const RoundTrace& trace,
                     const PowerTraceConfig& config) {
  std::string out;
  out.reserve(512);
  out += "{\"device_id\":";
  append_u64(out, trace.device_id);
  out += ",\"round_id\":";
  append_u64(out, trace.round_id);
  out += ",\"outcome\":";
  append_json_string(out, trace.outcome);
  out += ",\"attempts\":";
  append_u64(out, trace.attempts);
  out += ",\"start_ms\":";
  append_double(out, trace.start_ms);
  out += ",\"end_ms\":";
  append_double(out, trace.end_ms);
  out += ",\"duration_ms\":";
  append_double(out, trace.duration_ms());
  out += ",\"energy_mj\":";
  append_double(out, trace.energy_mj());
  out += ",\"mean_power_mw\":";
  append_double(out, trace.mean_power_mw());
  out += ",\"segments\":[";
  for (std::size_t i = 0; i < trace.segments.size(); ++i) {
    const PhaseSegment& seg = trace.segments[i];
    if (i != 0) out += ',';
    out += "{\"phase\":\"";
    out += prof::to_string(seg.phase);
    out += "\",\"start_ms\":";
    append_double(out, seg.start_ms);
    out += ",\"duration_ms\":";
    append_double(out, seg.duration_ms);
    out += ",\"power_mw\":";
    append_double(out, seg.power_mw);
    out += ",\"energy_mj\":";
    append_double(out, seg.energy_mj);
    out += '}';
  }
  out += "],\"sample_period_ms\":";
  append_double(out, effective_period_ms(trace, config));
  out += ",\"samples_mw\":[";
  const std::vector<double> samples = sample_waveform(trace, config);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i != 0) out += ',';
    append_double(out, samples[i]);
  }
  out += "]}";
  return out;
}

void write_jsonl(std::ostream& out, std::span<const RoundTrace> traces,
                 const PowerTraceConfig& config) {
  for (const auto& trace : traces) {
    out << to_jsonl(trace, config) << '\n';
  }
}

std::vector<RoundTrace> merge_round_traces(
    std::vector<std::vector<RoundTrace>> shards) {
  std::vector<RoundTrace> out;
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  out.reserve(total);
  for (auto& shard : shards) {
    for (auto& trace : shard) out.push_back(std::move(trace));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RoundTrace& a, const RoundTrace& b) {
                     if (a.end_ms != b.end_ms) return a.end_ms < b.end_ms;
                     if (a.device_id != b.device_id) {
                       return a.device_id < b.device_id;
                     }
                     return a.round_id < b.round_id;
                   });
  return out;
}

ShardPowerRecorder::ShardPowerRecorder(PowerTraceConfig config)
    : config_(config) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  if (config_.max_open_rounds == 0) config_.max_open_rounds = 1;
  if (config_.sample_period_ms <= 0.0) config_.sample_period_ms = 1.0;
  if (config_.max_samples == 0) config_.max_samples = 1;
}

void ShardPowerRecorder::on_phase(const prof::PhaseSample& sample) {
  if (sample.round_id == 0) {
    ++samples_orphaned_;
    return;
  }
  DeviceState& dev = devices_[sample.device_id];
  OpenRound* open = nullptr;
  for (auto& candidate : dev.open) {
    if (candidate.trace.round_id == sample.round_id) {
      open = &candidate;
      break;
    }
  }
  if (open == nullptr) {
    if (dev.open.size() >= config_.max_open_rounds) {
      // Oldest in-flight round never saw its close — honest drop.
      dev.open.erase(dev.open.begin());
      ++rounds_abandoned_;
    }
    dev.open.emplace_back();
    open = &dev.open.back();
    open->trace.device_id = sample.device_id;
    open->trace.round_id = sample.round_id;
  }
  PhaseSegment seg;
  seg.phase = sample.phase;
  seg.duration_ms = sample.duration_ms;
  seg.energy_mj = sample.energy_mj;
  seg.power_mw = sample.duration_ms > 0.0
                     ? sample.energy_mj / sample.duration_ms * 1000.0
                     : 0.0;
  open->trace.segments.push_back(seg);
  open->anchors.push_back(sample.sim_time_ms);
}

void ShardPowerRecorder::record(const TraceRecord& rec) {
  if (rec.round_id == 0 || rec.kind != "verifier.round") return;
  const auto it = devices_.find(rec.device_id);
  if (it == devices_.end()) return;
  DeviceState& dev = it->second;
  for (std::size_t i = 0; i < dev.open.size(); ++i) {
    if (dev.open[i].trace.round_id == rec.round_id) {
      finalize(dev, i, rec);
      return;
    }
  }
}

void ShardPowerRecorder::finalize(DeviceState& dev, std::size_t open_index,
                                  const TraceRecord& close) {
  OpenRound open = std::move(dev.open[open_index]);
  dev.open.erase(dev.open.begin() + static_cast<std::ptrdiff_t>(open_index));
  RoundTrace& trace = open.trace;
  trace.outcome = close.outcome;
  trace.end_ms = close.sim_time_ms;
  trace.attempts = close.attempt;

  // Lay the segments out: consecutive segments sharing one anchor form a
  // batch that ends AT the anchor — start times follow by subtraction, so
  // the layout is exact and independent of when the batch was recorded.
  std::size_t i = 0;
  while (i < trace.segments.size()) {
    std::size_t j = i;
    double batch_ms = 0.0;
    while (j < trace.segments.size() && open.anchors[j] == open.anchors[i]) {
      batch_ms += trace.segments[j].duration_ms;
      ++j;
    }
    double t = open.anchors[i] - batch_ms;
    for (std::size_t k = i; k < j; ++k) {
      trace.segments[k].start_ms = t;
      t += trace.segments[k].duration_ms;
    }
    i = j;
  }
  trace.start_ms = trace.end_ms;
  for (const auto& seg : trace.segments) {
    if (seg.start_ms < trace.start_ms) trace.start_ms = seg.start_ms;
  }

  // Completed ring: overwrite the oldest once full, with honest counting.
  if (dev.ring.size() < config_.ring_capacity) {
    dev.ring.push_back(std::move(trace));
  } else {
    dev.ring[dev.head] = std::move(trace);
    dev.head = (dev.head + 1) % dev.ring.size();
    ++rounds_dropped_;
  }
  ++dev.total;
  ++rounds_completed_;
}

std::vector<RoundTrace> ShardPowerRecorder::completed() const {
  std::vector<RoundTrace> out;
  for (const auto& [device, dev] : devices_) {
    const bool wrapped = dev.ring.size() == config_.ring_capacity &&
                         dev.total > dev.ring.size();
    const std::size_t start = wrapped ? dev.head : 0;
    for (std::size_t i = 0; i < dev.ring.size(); ++i) {
      out.push_back(dev.ring[(start + i) % dev.ring.size()]);
    }
  }
  return out;
}

}  // namespace ratt::obs::power
