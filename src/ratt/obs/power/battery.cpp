#include "ratt/obs/power/battery.hpp"

#include <charconv>
#include <sstream>

namespace ratt::obs::power {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

// Token scanner over one checkpoint line: whitespace-separated fields,
// doubles via from_chars (which round-trips to_chars exactly, including
// inf for never-touched window min/max).
class LineScanner {
 public:
  explicit LineScanner(const std::string& line) : line_(line) {}

  bool next(std::string& out) {
    while (pos_ < line_.size() && line_[pos_] == ' ') ++pos_;
    if (pos_ >= line_.size()) return false;
    const std::size_t start = pos_;
    while (pos_ < line_.size() && line_[pos_] != ' ') ++pos_;
    out = line_.substr(start, pos_ - start);
    return true;
  }
  bool next_double(double& out) {
    std::string tok;
    if (!next(tok)) return false;
    const auto res =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    return res.ec == std::errc{} && res.ptr == tok.data() + tok.size();
  }
  bool next_u64(std::uint64_t& out) {
    std::string tok;
    if (!next(tok)) return false;
    const auto res =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    return res.ec == std::errc{} && res.ptr == tok.data() + tok.size();
  }

 private:
  const std::string& line_;
  std::size_t pos_ = 0;
};

}  // namespace

PowerMeter::PowerMeter(BatteryConfig config) : config_(config) {
  if (config_.capacity_mj <= 0.0) config_.capacity_mj = 1.0;
  if (config_.report_period_ms <= 0.0) config_.report_period_ms = 1.0;
  if (config_.burn_window_ms <= 0.0) config_.burn_window_ms = 1.0;
  if (config_.burn_history == 0) config_.burn_history = 1;
  if (config_.sleep_mw < 0.0) config_.sleep_mw = 0.0;
}

PowerMeter::DeviceState& PowerMeter::device(std::uint64_t device_id) {
  const auto it = devices_.find(device_id);
  if (it != devices_.end()) return it->second;
  return devices_.emplace(device_id, DeviceState(config_)).first->second;
}

double PowerMeter::device_soc(const DeviceState& dev) const {
  const double soc = 1.0 - dev.used_mj / config_.capacity_mj;
  return soc < 0.0 ? 0.0 : soc;
}

double PowerMeter::device_burn_mw(const DeviceState& dev) const {
  // Prefer the last CLOSED burn window (the open one is partial); mJ per
  // second over a window is exactly mW.
  const std::size_t n = dev.burn.size();
  double active = 0.0;
  if (n >= 2) {
    active = dev.burn.at(n - 2).sum_per_s(dev.burn.window_ms());
  } else if (n == 1) {
    active = dev.burn.at(0).sum_per_s(dev.burn.window_ms());
  }
  return config_.sleep_mw + active;
}

void PowerMeter::emit_report(std::uint64_t device_id, DeviceState& dev,
                             double t_ms) {
  ++reports_;
  if (sink_ == nullptr) return;
  const double soc = device_soc(dev);
  TraceRecord rec;
  rec.sim_time_ms = t_ms;
  rec.device_id = device_id;
  rec.kind = "power.battery";
  rec.outcome = soc <= 0.0 ? "depleted"
              : (config_.alert_soc > 0.0 && soc <= config_.alert_soc)
                  ? "low"
                  : "ok";
  rec.energy_mj = soc;  // gauge: state of charge as a fraction
  rec.power_mw = device_burn_mw(dev);
  sink_->record(rec);
}

void PowerMeter::sleep_to(DeviceState& dev, double t_ms) {
  if (t_ms > dev.last_ms) {
    const double mj = config_.sleep_mw * (t_ms - dev.last_ms) / 1000.0;
    dev.used_mj += mj;
    if (dev.used_mj > config_.capacity_mj) dev.used_mj = config_.capacity_mj;
    dev.last_ms = t_ms;
  }
}

void PowerMeter::advance(double t_ms) {
  // Walk the due boundaries in ascending (boundary, device_id) order —
  // one canonical interleaving no matter which device's record (or which
  // finish/checkpoint seam) triggered the drain. Sleep cuts land only on
  // boundaries and a device's own record times, so a segmented replay
  // accumulates the exact same float pieces as the straight run.
  for (;;) {
    double boundary = 0.0;
    bool due = false;
    for (const auto& [device_id, dev] : devices_) {
      if (dev.next_report_ms <= t_ms &&
          (!due || dev.next_report_ms < boundary)) {
        boundary = dev.next_report_ms;
        due = true;
      }
    }
    if (!due) return;
    for (auto& [device_id, dev] : devices_) {
      if (dev.next_report_ms != boundary) continue;
      sleep_to(dev, boundary);
      dev.burn.observe(boundary, 0.0);  // close quiet burn windows
      emit_report(device_id, dev, boundary);
      dev.next_report_ms += config_.report_period_ms;
    }
  }
}

void PowerMeter::record(const TraceRecord& rec) {
  // Active energy sources only: the prover's own work. verifier.round
  // carries the round's aggregate and would double-count; power.* gauge
  // records carry fractions, not energy.
  const bool active =
      rec.kind == "prover.handle" || rec.kind == "dos.request";
  if (!active) return;
  DeviceState& dev = device(rec.device_id);
  advance(rec.sim_time_ms);
  sleep_to(dev, rec.sim_time_ms);
  if (rec.energy_mj > 0.0) {
    dev.used_mj += rec.energy_mj;
    if (dev.used_mj > config_.capacity_mj) dev.used_mj = config_.capacity_mj;
    dev.burn.observe(rec.sim_time_ms, rec.energy_mj);
  }
}

void PowerMeter::finish(double now_ms) {
  advance(now_ms);
  for (auto& [device_id, dev] : devices_) {
    sleep_to(dev, now_ms);
  }
}

double PowerMeter::soc(std::uint64_t device_id) const {
  const auto it = devices_.find(device_id);
  return it == devices_.end() ? 1.0 : device_soc(it->second);
}

double PowerMeter::remaining_mj(std::uint64_t device_id) const {
  const auto it = devices_.find(device_id);
  if (it == devices_.end()) return config_.capacity_mj;
  const double left = config_.capacity_mj - it->second.used_mj;
  return left < 0.0 ? 0.0 : left;
}

double PowerMeter::burn_mw(std::uint64_t device_id) const {
  const auto it = devices_.find(device_id);
  return it == devices_.end() ? config_.sleep_mw
                              : device_burn_mw(it->second);
}

bool PowerMeter::depleted(std::uint64_t device_id) const {
  const auto it = devices_.find(device_id);
  return it != devices_.end() && device_soc(it->second) <= 0.0;
}

double PowerMeter::min_soc() const {
  double lo = 1.0;
  for (const auto& [device_id, dev] : devices_) {
    const double soc = device_soc(dev);
    if (soc < lo) lo = soc;
  }
  return lo;
}

std::size_t PowerMeter::depleted_count() const {
  std::size_t n = 0;
  for (const auto& [device_id, dev] : devices_) {
    if (device_soc(dev) <= 0.0) ++n;
  }
  return n;
}

void PowerMeter::checkpoint(std::ostream& out) const {
  std::string line;
  out << "ratt-power-checkpoint v1\n";
  line = "config ";
  append_double(line, config_.capacity_mj);
  line += ' ';
  append_double(line, config_.alert_soc);
  line += ' ';
  append_double(line, config_.report_period_ms);
  line += ' ';
  append_double(line, config_.sleep_mw);
  line += ' ';
  append_double(line, config_.burn_window_ms);
  line += ' ';
  append_u64(line, config_.burn_history);
  out << line << '\n';
  line = "reports ";
  append_u64(line, reports_);
  out << line << '\n';
  for (const auto& [device_id, dev] : devices_) {
    line = "device ";
    append_u64(line, device_id);
    line += ' ';
    append_double(line, dev.used_mj);
    line += ' ';
    append_double(line, dev.last_ms);
    line += ' ';
    append_double(line, dev.next_report_ms);
    out << line << '\n';
    const ts::RollupState st = dev.burn.state();
    line = "burn ";
    append_u64(line, st.evicted);
    line += ' ';
    append_u64(line, st.late);
    line += ' ';
    append_u64(line, st.total_count);
    line += ' ';
    append_double(line, st.total_sum);
    line += ' ';
    append_u64(line, st.started ? 1 : 0);
    line += ' ';
    append_u64(line, st.windows.size());
    out << line << '\n';
    for (const ts::WindowStats& w : st.windows) {
      line = "w ";
      append_u64(line, w.index);
      line += ' ';
      append_double(line, w.start_ms);
      line += ' ';
      append_u64(line, w.count);
      line += ' ';
      append_double(line, w.sum);
      line += ' ';
      append_double(line, w.min_raw);
      line += ' ';
      append_double(line, w.max_raw);
      out << line << '\n';
    }
  }
  out << "end\n";
}

bool PowerMeter::restore(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "ratt-power-checkpoint v1") {
    return false;
  }
  if (!std::getline(in, line)) return false;
  {
    LineScanner sc(line);
    std::string tag;
    BatteryConfig cfg;
    if (!sc.next(tag) || tag != "config") return false;
    if (!sc.next_double(cfg.capacity_mj) || !sc.next_double(cfg.alert_soc) ||
        !sc.next_double(cfg.report_period_ms) ||
        !sc.next_double(cfg.sleep_mw) || !sc.next_double(cfg.burn_window_ms)) {
      return false;
    }
    std::uint64_t history = 0;
    if (!sc.next_u64(history)) return false;
    cfg.burn_history = static_cast<std::size_t>(history);
    // A checkpoint resumes only into the meter it came from.
    if (cfg.capacity_mj != config_.capacity_mj ||
        cfg.alert_soc != config_.alert_soc ||
        cfg.report_period_ms != config_.report_period_ms ||
        cfg.sleep_mw != config_.sleep_mw ||
        cfg.burn_window_ms != config_.burn_window_ms ||
        cfg.burn_history != config_.burn_history) {
      return false;
    }
  }
  if (!std::getline(in, line)) return false;
  {
    LineScanner sc(line);
    std::string tag;
    if (!sc.next(tag) || tag != "reports" || !sc.next_u64(reports_)) {
      return false;
    }
  }
  devices_.clear();
  while (std::getline(in, line)) {
    if (line == "end") return true;
    LineScanner sc(line);
    std::string tag;
    if (!sc.next(tag) || tag != "device") return false;
    std::uint64_t device_id = 0;
    if (!sc.next_u64(device_id)) return false;
    DeviceState& dev = device(device_id);
    if (!sc.next_double(dev.used_mj) || !sc.next_double(dev.last_ms) ||
        !sc.next_double(dev.next_report_ms)) {
      return false;
    }
    if (!std::getline(in, line)) return false;
    LineScanner burn_sc(line);
    ts::RollupState st;
    st.window_ms = config_.burn_window_ms;
    st.capacity = config_.burn_history;
    std::uint64_t started = 0;
    std::uint64_t windows = 0;
    if (!burn_sc.next(tag) || tag != "burn" || !burn_sc.next_u64(st.evicted) ||
        !burn_sc.next_u64(st.late) || !burn_sc.next_u64(st.total_count) ||
        !burn_sc.next_double(st.total_sum) || !burn_sc.next_u64(started) ||
        !burn_sc.next_u64(windows)) {
      return false;
    }
    st.started = started != 0;
    if (windows > st.capacity) return false;
    st.windows.reserve(windows);
    for (std::uint64_t i = 0; i < windows; ++i) {
      if (!std::getline(in, line)) return false;
      LineScanner wsc(line);
      ts::WindowStats w;
      if (!wsc.next(tag) || tag != "w" || !wsc.next_u64(w.index) ||
          !wsc.next_double(w.start_ms) || !wsc.next_u64(w.count) ||
          !wsc.next_double(w.sum) || !wsc.next_double(w.min_raw) ||
          !wsc.next_double(w.max_raw)) {
        return false;
      }
      st.windows.push_back(w);
    }
    dev.burn.restore(st);
  }
  return false;  // no trailing "end": truncated checkpoint
}

}  // namespace ratt::obs::power
