// ratt::obs::power — deterministic per-round power-trace synthesis.
//
// "Attestation Waves: Platform Trust via Remote Power Analysis"
// (PAPERS.md) shows a prover's power waveform is itself an attestation
// signal: the measurement routine has a characteristic power shape, and a
// tampered prover whose memory MACs still pass can be exposed by the
// waveform alone. This layer reconstructs that waveform from what the
// simulation already knows exactly — the profiler's per-phase partition
// of every round (req_auth/freshness/mem_mac/resp_mac/net_wait/
// retry_overhead) and the PowerModel's state currents — instead of
// sampling an oscilloscope.
//
// Model: a round's trace is the sequence of its phase segments, each a
// constant-power interval (active power for device phases, sleep power
// for net_wait), laid out back to back so each batch of samples ends at
// its anchor time (the PhaseSample's sim_time_ms). The waveform is the
// piecewise-constant power over that span, with the sleep floor filling
// gaps. It is a canonical rearrangement of the round's energy — segment
// energies are the profiler's exact per-phase energies — not a wall-clock
// oscilloscope capture.
//
// Determinism contract (same as traces/profiles): one ShardPowerRecorder
// per shard, never shared across worker threads; each device lives in
// exactly one shard; merge_round_traces is pure collation ordered by
// (end_ms, device_id, round_id) — same seed => byte-identical power
// JSONL at any thread/shard count. Bounded everywhere, with honest drop
// accounting: completed-round rings evict (rounds_dropped), in-flight
// builders are capped (rounds_abandoned), and phase samples that belong
// to no round are counted (samples_orphaned), never silently lost.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "ratt/obs/observer.hpp"
#include "ratt/obs/prof/profile.hpp"
#include "ratt/obs/trace.hpp"

namespace ratt::obs::power {

struct PowerTraceConfig {
  /// State currents the waveform is synthesized from.
  PowerModel model{};
  /// Waveform sampling grid. Doubled (coarsened) until a round fits in
  /// max_samples — long net waits must not explode the export.
  double sample_period_ms = 25.0;
  std::size_t max_samples = 64;
  /// Completed rounds retained per device (ring; evictions counted).
  std::size_t ring_capacity = 256;
  /// In-flight round builders per device. Rounds that never see their
  /// closing "verifier.round" span (rejects without timeout grading,
  /// lost responses on plain sessions) are evicted oldest-first once a
  /// device exceeds this, and counted in rounds_abandoned().
  std::size_t max_open_rounds = 8;
};

/// One constant-power interval of a round's waveform.
struct PhaseSegment {
  prof::Phase phase = prof::Phase::kOther;
  double start_ms = 0.0;
  double duration_ms = 0.0;
  double power_mw = 0.0;
  double energy_mj = 0.0;

  friend bool operator==(const PhaseSegment&, const PhaseSegment&) = default;
};

/// The power trace of one attestation round, finalized when the round's
/// closing "verifier.round" span arrives.
struct RoundTrace {
  std::uint64_t device_id = 0;
  std::uint64_t round_id = 0;
  std::uint32_t attempts = 0;   // wire attempts the round took (0 = unknown)
  std::string outcome;          // closing span's outcome ("valid", ...)
  double start_ms = 0.0;        // earliest segment start
  double end_ms = 0.0;          // close time (the finalizing span's time)
  std::vector<PhaseSegment> segments;  // execution order

  double energy_mj() const;
  /// Sum of segment durations (busy + modeled wait), not end - start.
  double duration_ms() const;
  double mean_power_mw() const;

  friend bool operator==(const RoundTrace&, const RoundTrace&) = default;
};

/// Sample the piecewise-constant waveform over [start_ms, end_ms] on the
/// config grid (midpoint sampling; sleep floor where no segment covers
/// the instant; the LAST covering segment wins where segments overlap).
/// The period doubles until the round fits in max_samples.
std::vector<double> sample_waveform(const RoundTrace& trace,
                                    const PowerTraceConfig& config);
/// The (possibly coarsened) period sample_waveform used for this trace.
double effective_period_ms(const RoundTrace& trace,
                           const PowerTraceConfig& config);

/// One JSON object per round: identity, totals, the segment list and the
/// bounded sampled waveform. Deterministic shortest round-trip doubles —
/// the golden-file format tests/power/power_trace_test.cpp pins.
std::string to_jsonl(const RoundTrace& trace, const PowerTraceConfig& config);
void write_jsonl(std::ostream& out, std::span<const RoundTrace> traces,
                 const PowerTraceConfig& config);

/// Canonical merge of per-shard completed-round streams, ordered by
/// (end_ms, device_id, round_id) with ties keeping stream order. Each
/// device lives in exactly one shard, so this is pure collation.
std::vector<RoundTrace> merge_round_traces(
    std::vector<std::vector<RoundTrace>> shards);

/// Shard-local power recorder: consumes the profiler's PhaseSample
/// stream (as its PhaseHook) to build per-round segment lists, and the
/// trace stream (as a TraceSink, tee'd off the shard ring) to learn when
/// a round closed. One per shard, like the ring and the profile.
class ShardPowerRecorder : public TraceSink, public prof::PhaseHook {
 public:
  explicit ShardPowerRecorder(PowerTraceConfig config = PowerTraceConfig{});

  /// Phase stream: accumulate the sample into its round's builder.
  void on_phase(const prof::PhaseSample& sample) override;
  /// Trace stream: a "verifier.round" span with a round id finalizes
  /// that round's builder. Other spans are ignored.
  void record(const TraceRecord& rec) override;
  /// This recorder is a derived view tee'd off the shard ring, not a
  /// lossy branch of the trace stream itself — its own bounded-state
  /// drops are reported via rounds_dropped()/rounds_abandoned().
  std::uint64_t dropped_total() const override { return 0; }

  /// Completed rounds, devices ascending, each device oldest-first (the
  /// canonical per-shard order merge_round_traces collates).
  std::vector<RoundTrace> completed() const;

  std::uint64_t rounds_completed() const { return rounds_completed_; }
  /// Completed rounds evicted from a full device ring.
  std::uint64_t rounds_dropped() const { return rounds_dropped_; }
  /// In-flight builders evicted before their round closed.
  std::uint64_t rounds_abandoned() const { return rounds_abandoned_; }
  /// Phase samples carrying no round id (injected floods, bare benches).
  std::uint64_t samples_orphaned() const { return samples_orphaned_; }

  const PowerTraceConfig& config() const { return config_; }

 private:
  struct OpenRound {
    RoundTrace trace;
    std::vector<double> anchors;  // per-segment batch anchor (sim_time_ms)
  };
  struct DeviceState {
    std::vector<OpenRound> open;    // in-flight, oldest first
    std::vector<RoundTrace> ring;   // completed ring
    std::size_t head = 0;           // next write slot once full
    std::uint64_t total = 0;        // ever completed
  };

  void finalize(DeviceState& dev, std::size_t open_index,
                const TraceRecord& close);

  PowerTraceConfig config_;
  std::map<std::uint64_t, DeviceState> devices_;
  std::uint64_t rounds_completed_ = 0;
  std::uint64_t rounds_dropped_ = 0;
  std::uint64_t rounds_abandoned_ = 0;
  std::uint64_t samples_orphaned_ = 0;
};

}  // namespace ratt::obs::power
