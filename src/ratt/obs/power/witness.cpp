#include "ratt/obs/power/witness.hpp"

namespace ratt::obs::power {

RoundFeatures featurize(const RoundTrace& trace) {
  RoundFeatures f;
  std::size_t nibble = 0;
  for (const auto& seg : trace.segments) {
    const auto p = static_cast<std::size_t>(seg.phase);
    f.phase_energy_mj[p] += seg.energy_mj;
    f.phase_duration_ms[p] += seg.duration_ms;
    f.total_energy_mj += seg.energy_mj;
    f.total_duration_ms += seg.duration_ms;
    if (nibble < 16) {
      f.transition_signature |=
          static_cast<std::uint64_t>(p + 1) << (4 * nibble);
      ++nibble;
    }
  }
  return f;
}

void Envelope::learn(const RoundFeatures& f) {
  if (frozen_) return;
  for (std::size_t p = 0; p < prof::kPhaseCount; ++p) {
    energy_[p].fold(f.phase_energy_mj[p]);
    duration_[p].fold(f.phase_duration_ms[p]);
  }
  total_energy_.fold(f.total_energy_mj);
  total_duration_.fold(f.total_duration_ms);
  signatures_.insert(f.transition_signature);
  ++learned_;
}

std::vector<std::string> Envelope::grade(const RoundFeatures& f) const {
  std::vector<std::string> violated;
  if (learned_ == 0) {
    violated.emplace_back("untrained");
    return violated;
  }
  if (!signatures_.contains(f.transition_signature)) {
    violated.emplace_back("signature");
  }
  const double rel = config_.rel_tolerance;
  for (std::size_t p = 0; p < prof::kPhaseCount; ++p) {
    if (!energy_[p].holds(f.phase_energy_mj[p], rel, config_.abs_energy_mj)) {
      violated.push_back(
          "energy:" + std::string(to_string(static_cast<prof::Phase>(p))));
    }
  }
  for (std::size_t p = 0; p < prof::kPhaseCount; ++p) {
    if (!duration_[p].holds(f.phase_duration_ms[p], rel,
                            config_.abs_duration_ms)) {
      violated.push_back(
          "duration:" + std::string(to_string(static_cast<prof::Phase>(p))));
    }
  }
  if (!total_energy_.holds(f.total_energy_mj, rel, config_.abs_energy_mj)) {
    violated.emplace_back("energy:total");
  }
  if (!total_duration_.holds(f.total_duration_ms, rel,
                             config_.abs_duration_ms)) {
    violated.emplace_back("duration:total");
  }
  return violated;
}

void PowerWitness::learn(const RoundTrace& trace,
                         const std::string& class_key) {
  auto [it, inserted] = envelopes_.try_emplace(class_key, config_);
  it->second.learn(featurize(trace));
  ++rounds_learned_;
}

void PowerWitness::freeze() {
  for (auto& [key, envelope] : envelopes_) envelope.freeze();
}

std::vector<std::string> PowerWitness::grade(
    const RoundTrace& trace, const std::string& class_key) const {
  const auto it = envelopes_.find(class_key);
  if (it == envelopes_.end()) return {"untrained"};
  return it->second.grade(featurize(trace));
}

std::vector<std::string> PowerWitness::grade_to(const RoundTrace& trace,
                                                TraceSink& sink,
                                                const std::string& class_key) {
  std::vector<std::string> violated = grade(trace, class_key);
  ++rounds_graded_;
  if (!violated.empty()) ++violations_;

  TraceRecord rec;
  rec.sim_time_ms = trace.end_ms;
  rec.device_id = trace.device_id;
  rec.kind = "power.witness";
  rec.outcome = violated.empty() ? "ok" : "violation:" + violated.front();
  rec.prover_ms = trace.duration_ms();
  rec.energy_mj = trace.energy_mj();
  rec.power_mw = trace.mean_power_mw();
  rec.round_id = trace.round_id;
  rec.attempt = trace.attempts;
  sink.record(rec);
  return violated;
}

const Envelope* PowerWitness::envelope(const std::string& class_key) const {
  const auto it = envelopes_.find(class_key);
  return it == envelopes_.end() ? nullptr : &it->second;
}

}  // namespace ratt::obs::power
