// ratt::obs::power — verifier-side power-witness grading.
//
// The insight from power-analysis attestation (PAPERS.md, "Attestation
// Waves"): a tampered prover can keep its memory MACs valid — Adv_roam
// restores the pristine image before measurement; a shortcut prover skips
// the measurement loop and replays a cached MAC — but it cannot keep its
// POWER SHAPE valid. The restore burns extra energy before mem_mac; the
// shortcut removes mem_mac's energy entirely. A verifier that learned
// what a clean round's per-phase energy partition looks like catches
// both, even though every byte on the wire checks out.
//
// Pipeline: featurize(RoundTrace) -> RoundFeatures (per-phase energy and
// duration, plus the phase-transition signature); an Envelope learns
// [min, max] bands per feature from clean warm-up rounds, then freeze()s;
// grade() reports every dimension outside its (tolerance-widened) band.
// PowerWitness keys envelopes by device class so heterogeneous fleets
// don't smear each other's bands, and grade_to() emits "power.witness"
// trace records the AlertEngine turns into power.envelope_violation
// alerts.
//
// Determinism: learning and grading are pure folds over trace features —
// no clocks, no randomness — so the same rounds in the same order give
// identical envelopes and verdicts on every run.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ratt/obs/power/trace.hpp"
#include "ratt/obs/prof/profile.hpp"
#include "ratt/obs/trace.hpp"

namespace ratt::obs::power {

/// The feature vector one round grades on.
struct RoundFeatures {
  std::array<double, prof::kPhaseCount> phase_energy_mj{};
  std::array<double, prof::kPhaseCount> phase_duration_ms{};
  /// Packed phase-transition signature: each segment's phase id in 4 bits,
  /// execution order, first segment in the low nibble. Rounds with more
  /// than 16 segments keep the first 16 — enough to distinguish every
  /// protocol shape the simulator produces.
  std::uint64_t transition_signature = 0;
  double total_energy_mj = 0.0;
  double total_duration_ms = 0.0;

  friend bool operator==(const RoundFeatures&, const RoundFeatures&) = default;
};

RoundFeatures featurize(const RoundTrace& trace);

struct EnvelopeConfig {
  /// Bands widen by rel_tolerance * max(|lo|, |hi|) on each side.
  double rel_tolerance = 0.15;
  /// Absolute floors so near-zero bands don't degenerate to a point.
  double abs_energy_mj = 0.01;
  double abs_duration_ms = 1.0;
};

/// Min/max band per feature dimension plus the set of transition
/// signatures seen clean. learn() folds warm-up rounds in; freeze() stops
/// learning; grade() lists violated dimensions ("signature",
/// "energy:mem_mac", "duration:total", ...) — empty means in-envelope.
class Envelope {
 public:
  explicit Envelope(EnvelopeConfig config = EnvelopeConfig{})
      : config_(config) {}

  void learn(const RoundFeatures& f);
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }
  std::uint64_t learned() const { return learned_; }

  /// Violated dimension names, deterministic order (signature first, then
  /// energy by phase, duration by phase, totals). Empty => in-envelope.
  /// An envelope that never learned flags "untrained".
  std::vector<std::string> grade(const RoundFeatures& f) const;

  const EnvelopeConfig& config() const { return config_; }

 private:
  struct Band {
    double lo = 0.0;
    double hi = 0.0;
    bool seen = false;
    void fold(double v) {
      if (!seen) {
        lo = hi = v;
        seen = true;
        return;
      }
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    bool holds(double v, double rel, double abs_floor) const {
      if (!seen) return false;
      const double mag = hi > -lo ? hi : -lo;
      double pad = rel * (mag > 0.0 ? mag : -mag);
      if (pad < abs_floor) pad = abs_floor;
      return v >= lo - pad && v <= hi + pad;
    }
  };

  EnvelopeConfig config_;
  std::array<Band, prof::kPhaseCount> energy_{};
  std::array<Band, prof::kPhaseCount> duration_{};
  Band total_energy_{};
  Band total_duration_{};
  std::set<std::uint64_t> signatures_;
  std::uint64_t learned_ = 0;
  bool frozen_ = false;
};

/// Per-device-class envelope registry the verifier grades through.
/// class_key defaults to "fleet" (one homogeneous class); heterogeneous
/// fleets key by hardware class so each learns its own bands.
class PowerWitness {
 public:
  explicit PowerWitness(EnvelopeConfig config = EnvelopeConfig{})
      : config_(config) {}

  /// Fold a clean warm-up round into its class envelope (no-op once that
  /// envelope froze).
  void learn(const RoundTrace& trace, const std::string& class_key = "fleet");
  /// Freeze every envelope (end of warm-up).
  void freeze();

  /// Grade one round against its class envelope; returns the violated
  /// dimensions (empty = in-envelope; "untrained" if no envelope learned).
  std::vector<std::string> grade(const RoundTrace& trace,
                                 const std::string& class_key = "fleet") const;

  /// Grade and emit a "power.witness" TraceRecord to `sink`: outcome "ok"
  /// or "violation:<first-dim>", energy/power/duration from the trace,
  /// the round's id and attempts, timed at the round's end. Returns the
  /// violated dimensions.
  std::vector<std::string> grade_to(const RoundTrace& trace, TraceSink& sink,
                                    const std::string& class_key = "fleet");

  std::uint64_t rounds_learned() const { return rounds_learned_; }
  std::uint64_t rounds_graded() const { return rounds_graded_; }
  std::uint64_t violations() const { return violations_; }

  const Envelope* envelope(const std::string& class_key = "fleet") const;

 private:
  EnvelopeConfig config_;
  std::map<std::string, Envelope> envelopes_;
  std::uint64_t rounds_learned_ = 0;
  std::uint64_t rounds_graded_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace ratt::obs::power
