// ratt::obs::power — checkpointable battery observability.
//
// The paper's provers are battery-powered sensors: a CR2032 holds about
// 2430 J, and the whole point of the prover's-perspective analysis is
// that attestation cost is measured in that budget. PowerMeter closes
// the loop: it sits on the trace stream, integrates every unit of work's
// energy (plus the sleep-floor drain between them) into a per-device
// battery gauge, and emits periodic "power.battery" records carrying
// state-of-charge and a windowed burn-rate estimate — which the
// AlertEngine grades into power.battery_depletion alerts.
//
// Checkpointing: multi-day depletion campaigns don't fit one process
// run. checkpoint()/restore() serialize the complete meter state —
// per-device used energy, timeline cursors, and the burn rollup rings —
// as line-based text with shortest-round-trip doubles, so a campaign
// split into N segments produces byte-identical records and gauges to
// the straight run. Reports fire at fixed boundaries (multiples of
// report_period_ms per device), independent of how records batch.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>

#include "ratt/obs/trace.hpp"
#include "ratt/obs/ts/rollup.hpp"

namespace ratt::obs::power {

struct BatteryConfig {
  /// Usable energy per device. Default: CR2032 coin cell, ~2430 J.
  double capacity_mj = 2.43e6;
  /// State-of-charge at/below which reports say "low" (0 disables).
  double alert_soc = 0.2;
  /// "power.battery" report cadence per device, in sim time.
  double report_period_ms = 250.0;
  /// Baseline drain between units of work (sleep-state power).
  double sleep_mw = 0.003;
  /// Burn-rate estimator: active energy folded into windows this wide...
  double burn_window_ms = 1000.0;
  /// ...kept in a ring this deep.
  std::size_t burn_history = 64;
};

/// Trace-stream battery integrator. Feed it the same stream the ring
/// sees (TeeSink); it drains active energy from "prover.handle" and
/// "dos.request" records, sleep power for the time in between, and emits
/// "power.battery" gauge records to the report sink (which must not loop
/// back into this meter). One per shard when sharded — merge is the
/// usual trace collation.
class PowerMeter : public TraceSink {
 public:
  explicit PowerMeter(BatteryConfig config = BatteryConfig{});

  /// Destination for "power.battery" reports (nullptr = don't emit).
  void set_sink(TraceSink* sink) { sink_ = sink; }

  void record(const TraceRecord& rec) override;
  /// Advance every device's timeline to `now_ms` (sleep drain + due
  /// reports) — call at end of horizon or before a checkpoint.
  void finish(double now_ms);

  double soc(std::uint64_t device_id) const;
  double remaining_mj(std::uint64_t device_id) const;
  /// Sleep baseline + windowed active burn estimate, in mW.
  double burn_mw(std::uint64_t device_id) const;
  bool depleted(std::uint64_t device_id) const;

  /// Fleet rollups (devices the meter has seen).
  std::size_t devices() const { return devices_.size(); }
  double min_soc() const;
  std::size_t depleted_count() const;
  std::uint64_t reports_emitted() const { return reports_; }

  const BatteryConfig& config() const { return config_; }

  /// Serialize the complete meter state as line-based text (shortest
  /// round-trip doubles). restore() fails (returns false) on a header or
  /// config mismatch — a checkpoint only resumes into a meter built with
  /// the same BatteryConfig.
  void checkpoint(std::ostream& out) const;
  bool restore(std::istream& in);

 private:
  struct DeviceState {
    double used_mj = 0.0;
    double last_ms = 0.0;        // timeline cursor (sleep drained to here)
    double next_report_ms = 0.0; // next gauge boundary
    ts::WindowedRollup burn;     // active energy per window

    explicit DeviceState(const BatteryConfig& config)
        : next_report_ms(config.report_period_ms),
          burn(config.burn_window_ms, config.burn_history) {}
  };

  DeviceState& device(std::uint64_t device_id);
  /// Emit every report boundary due at or before t, across all devices,
  /// in (boundary, device_id) order — the canonical interleaving, so a
  /// segmented replay reproduces the straight run's report stream.
  void advance(double t_ms);
  /// Sleep-drain one device's timeline cursor forward to t.
  void sleep_to(DeviceState& dev, double t_ms);
  void emit_report(std::uint64_t device_id, DeviceState& dev, double t_ms);
  double device_soc(const DeviceState& dev) const;
  double device_burn_mw(const DeviceState& dev) const;

  BatteryConfig config_;
  std::map<std::uint64_t, DeviceState> devices_;
  TraceSink* sink_ = nullptr;
  std::uint64_t reports_ = 0;
};

}  // namespace ratt::obs::power
