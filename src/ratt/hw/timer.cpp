#include "ratt/hw/timer.hpp"

#include <stdexcept>

namespace ratt::hw {

namespace {

std::uint64_t width_mask(unsigned width_bits) {
  return width_bits >= 64 ? ~std::uint64_t{0}
                          : ((std::uint64_t{1} << width_bits) - 1);
}

}  // namespace

HwCounterPort::HwCounterPort(unsigned width_bits, std::uint64_t divider)
    : width_bits_(width_bits), divider_(divider) {
  if (width_bits == 0 || width_bits > 64 || width_bits % 8 != 0) {
    throw std::invalid_argument(
        "HwCounterPort: width must be a multiple of 8 in [8, 64]");
  }
  if (divider == 0) {
    throw std::invalid_argument("HwCounterPort: divider must be non-zero");
  }
}

std::uint64_t HwCounterPort::value() const {
  return (cycles_ / divider_) & width_mask(width_bits_);
}

std::uint8_t HwCounterPort::read(Addr offset) {
  if (offset >= window_size()) return 0;
  return static_cast<std::uint8_t>(value() >> (8 * offset));
}

bool HwCounterPort::write(Addr /*offset*/, std::uint8_t /*value*/) {
  return false;  // wired read-only
}

WrapCounter::WrapCounter(InterruptController& irq, std::size_t irq_vector,
                         unsigned width_bits, std::uint64_t divider)
    : irq_(irq),
      irq_vector_(irq_vector),
      width_bits_(width_bits),
      divider_(divider) {
  if (width_bits == 0 || width_bits > 32) {
    throw std::invalid_argument("WrapCounter: width must be in [1, 32]");
  }
  if (divider == 0) {
    throw std::invalid_argument("WrapCounter: divider must be non-zero");
  }
}

std::uint32_t WrapCounter::value() const {
  return static_cast<std::uint32_t>((cycles_ / divider_) &
                                    width_mask(width_bits_));
}

void WrapCounter::on_cycles(std::uint64_t cycles) {
  cycles_ = cycles;
  const std::uint64_t ticks = cycles / divider_;
  const std::uint64_t period = width_mask(width_bits_) + 1;
  const std::uint64_t new_wraps = ticks / period;
  while (wraps_ < new_wraps) {
    ++wraps_;
    irq_.raise(irq_vector_);
  }
  last_ticks_ = ticks;
}

std::uint8_t WrapCounter::read(Addr offset) {
  if (offset >= window_size()) return 0;
  return static_cast<std::uint8_t>(value() >> (8 * offset));
}

bool WrapCounter::write(Addr /*offset*/, std::uint8_t /*value*/) {
  return false;  // wired read-only
}

WritableClockPort::WritableClockPort(std::uint64_t divider)
    : divider_(divider) {
  if (divider == 0) {
    throw std::invalid_argument(
        "WritableClockPort: divider must be non-zero");
  }
}

std::uint64_t WritableClockPort::value() const {
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(cycles_ / divider_) + offset_ticks_);
}

void WritableClockPort::set_value(std::uint64_t v) {
  offset_ticks_ = static_cast<std::int64_t>(v) -
                  static_cast<std::int64_t>(cycles_ / divider_);
}

std::uint8_t WritableClockPort::read(Addr offset) {
  if (offset >= window_size()) return 0;
  return static_cast<std::uint8_t>(value() >> (8 * offset));
}

bool WritableClockPort::write(Addr offset, std::uint8_t value) {
  if (offset >= window_size()) return false;
  pending_[offset] = value;
  pending_mask_ |= static_cast<std::uint8_t>(1u << offset);
  if (pending_mask_ == 0xff) {  // full 64-bit value staged: commit
    set_value(crypto::load_le64(pending_));
    pending_mask_ = 0;
  }
  return true;
}

}  // namespace ratt::hw
