// Address-space primitives for the simulated MCU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ratt::hw {

using Addr = std::uint32_t;

/// Half-open address interval [begin, end).
struct AddrRange {
  Addr begin = 0;
  Addr end = 0;

  constexpr std::size_t size() const { return end - begin; }
  constexpr bool empty() const { return begin >= end; }

  constexpr bool contains(Addr a) const { return a >= begin && a < end; }

  constexpr bool contains(const AddrRange& other) const {
    return other.begin >= begin && other.end <= end && !other.empty();
  }

  constexpr bool overlaps(const AddrRange& other) const {
    return begin < other.end && other.begin < end && !empty() &&
           !other.empty();
  }

  friend constexpr bool operator==(const AddrRange&, const AddrRange&) =
      default;
};

/// "0x00001000-0x00002000" for diagnostics.
std::string to_string(const AddrRange& r);

}  // namespace ratt::hw
