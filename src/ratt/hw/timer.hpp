// Timer / counter devices backing the three clock designs of Sec. 6.2-6.3:
//
//   * HwCounterPort — a dedicated read-only counter register of configurable
//     width and clock divider. 64-bit/divider-1 is Fig. 1a ("does not wrap
//     around within the lifetime of the prover"); 32-bit/2^20 is the
//     cheaper variant with 42 ms resolution and ~6 year wrap-around.
//   * WrapCounter — Fig. 1b's Clock_LSB: a short free-running counter that
//     raises an interrupt at each wrap-around, to be served by Code_Clock.
//   * WritableClockPort — a *software-settable* clock register, modeling
//     the unprotected clock that Adv_roam resets in the Sec. 5 timestamp
//     attack.
//
// All are driven from the MCU cycle counter via on_cycles().
#pragma once

#include <cstdint>
#include <string>

#include "ratt/hw/bus.hpp"
#include "ratt/hw/irq.hpp"

namespace ratt::hw {

/// Anything advanced by the MCU cycle counter.
class TickListener {
 public:
  virtual ~TickListener() = default;

  /// Called whenever simulated time advances; `cycles` is the new absolute
  /// cycle count (monotone).
  virtual void on_cycles(std::uint64_t cycles) = 0;
};

/// Read-only hardware counter register: value = (cycles / divider),
/// truncated to `width_bits`. Mapped as width_bits/8 little-endian bytes.
/// Writes always fail — the register is wired read-only (Sec. 6.2:
/// "the hardware counter must be read-only").
class HwCounterPort final : public MmioDevice, public TickListener {
 public:
  HwCounterPort(unsigned width_bits, std::uint64_t divider);

  Addr window_size() const { return width_bits_ / 8; }
  unsigned width_bits() const { return width_bits_; }
  std::uint64_t divider() const { return divider_; }

  std::uint64_t value() const;

  void on_cycles(std::uint64_t cycles) override { cycles_ = cycles; }

  std::string name() const override { return "hw-counter"; }
  std::uint8_t read(Addr offset) override;
  bool write(Addr offset, std::uint8_t value) override;

 private:
  unsigned width_bits_;
  std::uint64_t divider_;
  std::uint64_t cycles_ = 0;
};

/// Fig. 1b's Clock_LSB: a `width_bits`-wide counter incremented every
/// `divider` cycles; each wrap-around raises `irq_vector`. The counter
/// register itself is read-only like HwCounterPort.
class WrapCounter final : public MmioDevice, public TickListener {
 public:
  WrapCounter(InterruptController& irq, std::size_t irq_vector,
              unsigned width_bits, std::uint64_t divider);

  Addr window_size() const { return 4; }
  unsigned width_bits() const { return width_bits_; }

  /// Current LSB value (truncated counter).
  std::uint32_t value() const;

  /// Total wraps that have occurred (ground truth; software cannot read
  /// this — it must count interrupts, which is the whole point).
  std::uint64_t wraps() const { return wraps_; }

  void on_cycles(std::uint64_t cycles) override;

  std::string name() const override { return "wrap-counter"; }
  std::uint8_t read(Addr offset) override;
  bool write(Addr offset, std::uint8_t value) override;

 private:
  InterruptController& irq_;
  std::size_t irq_vector_;
  unsigned width_bits_;
  std::uint64_t divider_;
  std::uint64_t cycles_ = 0;
  std::uint64_t last_ticks_ = 0;
  std::uint64_t wraps_ = 0;
};

/// A clock register that software can set — the unprotected design that
/// the Sec. 5 roaming attack exploits ("Adv_roam re-sets the prover's
/// clock to t_i - delta"). Reads return base + elapsed ticks; a 64-bit
/// write replaces the base.
class WritableClockPort final : public MmioDevice, public TickListener {
 public:
  explicit WritableClockPort(std::uint64_t divider);

  Addr window_size() const { return 8; }

  std::uint64_t value() const;
  void set_value(std::uint64_t v);

  void on_cycles(std::uint64_t cycles) override { cycles_ = cycles; }

  std::string name() const override { return "writable-clock"; }
  std::uint8_t read(Addr offset) override;
  bool write(Addr offset, std::uint8_t value) override;

 private:
  std::uint64_t divider_;
  std::uint64_t cycles_ = 0;
  std::int64_t offset_ticks_ = 0;  // set via writes
  std::uint8_t pending_[8] = {};   // byte-wise write staging
  std::uint8_t pending_mask_ = 0;
};

}  // namespace ratt::hw
