// Watchdog timer: the standard embedded defense against a wedged main
// loop — and the mechanism that turns a DoS'd prover into a *rebooting*
// prover. If application code fails to kick the watchdog within its
// period (because uninterruptible attestation is hogging the CPU,
// Sec. 3.1), the watchdog fires a system reset. Each reset costs a
// reboot (secure boot re-runs) and loses volatile state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ratt/hw/timer.hpp"

namespace ratt::hw {

class Watchdog final : public MmioDevice, public TickListener {
 public:
  /// `timeout_cycles`: cycles of silence before the dog bites.
  /// `on_reset`: invoked at each expiry (the MCU reset line).
  Watchdog(std::uint64_t timeout_cycles, std::function<void()> on_reset);

  static constexpr Addr kWindowSize = 4;  // the kick register

  std::uint64_t timeout_cycles() const { return timeout_cycles_; }
  std::uint64_t resets() const { return resets_; }
  std::uint64_t kicks() const { return kicks_; }

  /// Software kick (also reachable via the MMIO register).
  void kick();

  void on_cycles(std::uint64_t cycles) override;

  std::string name() const override { return "watchdog"; }
  std::uint8_t read(Addr offset) override;
  bool write(Addr offset, std::uint8_t value) override;

 private:
  std::uint64_t timeout_cycles_;
  std::function<void()> on_reset_;
  std::uint64_t cycles_ = 0;
  std::uint64_t last_kick_cycles_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t kicks_ = 0;
};

}  // namespace ratt::hw
