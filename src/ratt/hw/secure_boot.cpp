#include "ratt/hw/secure_boot.hpp"

#include <algorithm>
#include <cstring>

namespace ratt::hw {

std::vector<SharedSegmentPage> make_shared_segment_pages(
    const Mcu::Layout& layout, const BootImage& image) {
  struct RegionDesc {
    AddrRange range;
    std::uint8_t fill;
  };
  // The same map Mcu's constructor hands to the bus: flash powers up
  // erased (0xff), ROM and RAM zeroed.
  const RegionDesc regions[3] = {
      {layout.rom, 0x00}, {layout.flash, 0xff}, {layout.ram, 0x00}};
  constexpr auto kPage =
      static_cast<std::size_t>(MemoryBus::kFlashBlockSize);
  std::vector<SharedSegmentPage> out;
  for (const auto& seg : image.segments) {
    std::size_t done = 0;
    while (done < seg.data.size()) {
      const Addr a = seg.base + static_cast<Addr>(done);
      const RegionDesc* rd = nullptr;
      for (const auto& r : regions) {
        if (r.range.contains(a)) {
          rd = &r;
          break;
        }
      }
      // A segment byte outside rom/flash/ram is not page-shareable;
      // give up on sharing entirely and let the plain load_initial path
      // deal with it (it faults exactly as it always did).
      if (rd == nullptr) return {};
      const std::size_t offset = a - rd->range.begin;
      const std::size_t p = offset / kPage;
      const Addr page_base = rd->range.begin + static_cast<Addr>(p * kPage);
      const std::size_t page_len =
          std::min(kPage, rd->range.size() - p * kPage);
      SharedSegmentPage* sp = nullptr;
      for (auto& existing : out) {
        if (existing.page_base == page_base) {
          sp = &existing;
          break;
        }
      }
      if (sp == nullptr) {
        out.push_back(SharedSegmentPage{
            page_base, std::make_shared<Bytes>(page_len, rd->fill)});
        sp = &out.back();
      }
      const std::size_t in_page = offset % kPage;
      const std::size_t chunk =
          std::min(seg.data.size() - done, page_len - in_page);
      std::memcpy(sp->page->data() + in_page, seg.data.data() + done, chunk);
      done += chunk;
    }
  }
  return out;
}

crypto::Sha256::Digest boot_image_digest(const BootImage& image) {
  crypto::Sha256 h;
  for (const auto& seg : image.segments) {
    std::uint8_t header[8];
    crypto::store_be32(header, seg.base);
    crypto::store_be32(header + 4, static_cast<std::uint32_t>(seg.data.size()));
    h.update(ByteView(header, sizeof(header)));
    h.update(seg.data);
  }
  return h.finish();
}

RomReference make_rom_reference(const BootImage& image,
                                const crypto::EcdsaKeyPair& vendor) {
  RomReference ref;
  ref.expected_hash = boot_image_digest(image);
  ref.signature = crypto::ecdsa_sign(
      vendor.private_key,
      ByteView(ref.expected_hash.data(), ref.expected_hash.size()));
  ref.vendor_key = vendor.public_key;
  return ref;
}

std::string to_string(BootStatus status) {
  switch (status) {
    case BootStatus::kOk:
      return "ok";
    case BootStatus::kBadSignature:
      return "bad-signature";
    case BootStatus::kHashMismatch:
      return "hash-mismatch";
    case BootStatus::kLoadFault:
      return "load-fault";
    case BootStatus::kConfigFault:
      return "config-fault";
  }
  return "unknown";
}

BootStatus secure_boot(
    Mcu& mcu, const BootImage& image, const RomReference& reference,
    const std::function<bool(Mcu&)>& configure_protection) {
  return secure_boot(mcu, image, reference, configure_protection,
                     BootFastPath{});
}

BootStatus secure_boot(
    Mcu& mcu, const BootImage& image, const RomReference& reference,
    const std::function<bool(Mcu&)>& configure_protection,
    const BootFastPath& fast) {
  // 1. Authenticate the reference hash (it sits in ROM, but verifying the
  //    vendor signature also covers provisioning errors). Skipped when a
  //    template build already verified this exact reference.
  if (!fast.signature_preverified &&
      !crypto::ecdsa_verify(
          reference.vendor_key,
          ByteView(reference.expected_hash.data(),
                   reference.expected_hash.size()),
          reference.signature)) {
    return BootStatus::kBadSignature;
  }

  // 2. Measure the image and compare against the signed reference (the
  //    measurement may be memoized from the template build).
  const crypto::Sha256::Digest digest = fast.image_digest != nullptr
                                            ? *fast.image_digest
                                            : boot_image_digest(image);
  if (digest != reference.expected_hash) {
    return BootStatus::kHashMismatch;
  }

  // 3. Load segments. load_initial models the boot ROM's privileged
  //    copy. The fleet fast path aliases the template's prepared pages
  //    into this bus instead of copying; if any target page already
  //    exists the whole image falls back to the copy loop, which
  //    produces identical final contents (pages installed before the
  //    refusal are simply rewritten with the same bytes, copy-on-write).
  bool aliased = false;
  if (fast.shared_pages != nullptr && !fast.shared_pages->empty()) {
    aliased = true;
    for (const auto& sp : *fast.shared_pages) {
      if (!mcu.bus().load_initial_shared(sp.page_base, sp.page)) {
        aliased = false;
        break;
      }
    }
  }
  if (!aliased) {
    for (const auto& seg : image.segments) {
      try {
        mcu.bus().load_initial(seg.base, seg.data);
      } catch (const std::invalid_argument&) {
        return BootStatus::kLoadFault;
      }
    }
  }

  // 4. Trusted first-stage code programs the protection rules, then the
  //    EA-MPU is locked down — also on failure, so a botched configuration
  //    fails closed rather than leaving the MPU programmable.
  const bool configured = configure_protection(mcu);
  mcu.mpu().lock();
  return configured ? BootStatus::kOk : BootStatus::kConfigFault;
}

}  // namespace ratt::hw
