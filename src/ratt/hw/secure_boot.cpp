#include "ratt/hw/secure_boot.hpp"

namespace ratt::hw {

crypto::Sha256::Digest boot_image_digest(const BootImage& image) {
  crypto::Sha256 h;
  for (const auto& seg : image.segments) {
    std::uint8_t header[8];
    crypto::store_be32(header, seg.base);
    crypto::store_be32(header + 4, static_cast<std::uint32_t>(seg.data.size()));
    h.update(ByteView(header, sizeof(header)));
    h.update(seg.data);
  }
  return h.finish();
}

RomReference make_rom_reference(const BootImage& image,
                                const crypto::EcdsaKeyPair& vendor) {
  RomReference ref;
  ref.expected_hash = boot_image_digest(image);
  ref.signature = crypto::ecdsa_sign(
      vendor.private_key,
      ByteView(ref.expected_hash.data(), ref.expected_hash.size()));
  ref.vendor_key = vendor.public_key;
  return ref;
}

std::string to_string(BootStatus status) {
  switch (status) {
    case BootStatus::kOk:
      return "ok";
    case BootStatus::kBadSignature:
      return "bad-signature";
    case BootStatus::kHashMismatch:
      return "hash-mismatch";
    case BootStatus::kLoadFault:
      return "load-fault";
    case BootStatus::kConfigFault:
      return "config-fault";
  }
  return "unknown";
}

BootStatus secure_boot(
    Mcu& mcu, const BootImage& image, const RomReference& reference,
    const std::function<bool(Mcu&)>& configure_protection) {
  return secure_boot(mcu, image, reference, configure_protection,
                     BootFastPath{});
}

BootStatus secure_boot(
    Mcu& mcu, const BootImage& image, const RomReference& reference,
    const std::function<bool(Mcu&)>& configure_protection,
    const BootFastPath& fast) {
  // 1. Authenticate the reference hash (it sits in ROM, but verifying the
  //    vendor signature also covers provisioning errors). Skipped when a
  //    template build already verified this exact reference.
  if (!fast.signature_preverified &&
      !crypto::ecdsa_verify(
          reference.vendor_key,
          ByteView(reference.expected_hash.data(),
                   reference.expected_hash.size()),
          reference.signature)) {
    return BootStatus::kBadSignature;
  }

  // 2. Measure the image and compare against the signed reference (the
  //    measurement may be memoized from the template build).
  const crypto::Sha256::Digest digest = fast.image_digest != nullptr
                                            ? *fast.image_digest
                                            : boot_image_digest(image);
  if (digest != reference.expected_hash) {
    return BootStatus::kHashMismatch;
  }

  // 3. Load segments. load_initial models the boot ROM's privileged copy.
  for (const auto& seg : image.segments) {
    try {
      mcu.bus().load_initial(seg.base, seg.data);
    } catch (const std::invalid_argument&) {
      return BootStatus::kLoadFault;
    }
  }

  // 4. Trusted first-stage code programs the protection rules, then the
  //    EA-MPU is locked down — also on failure, so a botched configuration
  //    fails closed rather than leaving the MPU programmable.
  const bool configured = configure_protection(mcu);
  mcu.mpu().lock();
  return configured ? BootStatus::kOk : BootStatus::kConfigFault;
}

}  // namespace ratt::hw
