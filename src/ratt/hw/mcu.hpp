// The simulated low-end MCU: memory map, EA-MPU, interrupt controller and
// cycle counter, assembled after the Intel Siskiyou Peak / openMSP430
// class of devices the paper evaluates on (24 MHz, 512 KB RAM).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ratt/hw/bus.hpp"
#include "ratt/hw/eampu.hpp"
#include "ratt/hw/irq.hpp"
#include "ratt/hw/timer.hpp"

namespace ratt::hw {

class Mcu {
 public:
  struct Layout {
    AddrRange rom{0x00000000, 0x00008000};      // 32 KB: Code_Attest, boot
    AddrRange flash{0x00010000, 0x00090000};    // 512 KB: application image
    AddrRange ram{0x00100000, 0x00180000};      // 512 KB: paper's RAM size
    Addr idt_base = 0x00100000;                 // IDT at start of RAM
    std::size_t irq_vectors = 8;
    Addr mpu_port_base = 0x00200000;
    /// TrustLite exposes the EA-MPU through memory-mapped configuration
    /// registers; SMART's EA-MAC is hard-wired with no runtime interface
    /// (Sec. 6.1). false omits the config port entirely.
    bool map_mpu_port = true;
    Addr irq_mask_base = 0x00201000;
    std::size_t mpu_capacity = 8;
    std::uint64_t clock_hz = 24'000'000;        // 24 MHz (Table 1)
  };

  Mcu() : Mcu(Layout{}) {}
  explicit Mcu(const Layout& layout);

  Mcu(const Mcu&) = delete;
  Mcu& operator=(const Mcu&) = delete;

  const Layout& layout() const { return layout_; }
  MemoryBus& bus() { return bus_; }
  EaMpu& mpu() { return mpu_; }
  InterruptController& irq() { return irq_; }

  /// Map an additional MMIO device and, if it is also a TickListener,
  /// drive it from the cycle counter.
  void map_device(std::string name, Addr base, Addr size, MmioDevice& dev);
  void add_tick_listener(TickListener& listener);

  /// Advance simulated time. Timers tick and interrupts fire inside.
  void advance_cycles(std::uint64_t n);
  void advance_ms(double ms);

  std::uint64_t cycles() const { return cycles_; }
  double now_ms() const {
    return static_cast<double>(cycles_) * 1000.0 /
           static_cast<double>(layout_.clock_hz);
  }

 private:
  Layout layout_;
  MemoryBus bus_;
  EaMpu mpu_;
  EaMpuConfigPort mpu_port_;
  InterruptController irq_;
  IrqMaskPort irq_mask_port_;
  std::vector<TickListener*> tick_listeners_;
  std::uint64_t cycles_ = 0;
};

/// A piece of simulated software: a named code region plus convenience
/// bus accessors that tag every access with this component's PC. The
/// trusted attestation code, the OS/application, and injected malware are
/// all SoftwareComponents — the EA-MPU tells them apart only by PC, which
/// is the paper's point.
class SoftwareComponent {
 public:
  SoftwareComponent(Mcu& mcu, std::string name, AddrRange code)
      : mcu_(&mcu), name_(std::move(name)), code_(code) {}

  const std::string& name() const { return name_; }
  const AddrRange& code_region() const { return code_; }
  AccessContext ctx() const { return AccessContext{code_.begin}; }
  Mcu& mcu() const { return *mcu_; }

  BusStatus read8(Addr addr, std::uint8_t& out) const {
    return mcu_->bus().read8(ctx(), addr, out);
  }
  BusStatus write8(Addr addr, std::uint8_t value) const {
    return mcu_->bus().write8(ctx(), addr, value);
  }
  BusStatus read32(Addr addr, std::uint32_t& out) const {
    return mcu_->bus().read32(ctx(), addr, out);
  }
  BusStatus write32(Addr addr, std::uint32_t value) const {
    return mcu_->bus().write32(ctx(), addr, value);
  }
  BusStatus read64(Addr addr, std::uint64_t& out) const {
    return mcu_->bus().read64(ctx(), addr, out);
  }
  BusStatus write64(Addr addr, std::uint64_t value) const {
    return mcu_->bus().write64(ctx(), addr, value);
  }
  BusStatus read_block(Addr addr, std::span<std::uint8_t> out) const {
    return mcu_->bus().read_block(ctx(), addr, out);
  }
  BusStatus write_block(Addr addr, ByteView data) const {
    return mcu_->bus().write_block(ctx(), addr, data);
  }

 private:
  Mcu* mcu_;
  std::string name_;
  AddrRange code_;
};

}  // namespace ratt::hw
