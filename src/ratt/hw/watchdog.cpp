#include "ratt/hw/watchdog.hpp"

#include <stdexcept>

namespace ratt::hw {

Watchdog::Watchdog(std::uint64_t timeout_cycles,
                   std::function<void()> on_reset)
    : timeout_cycles_(timeout_cycles), on_reset_(std::move(on_reset)) {
  if (timeout_cycles == 0) {
    throw std::invalid_argument("Watchdog: timeout must be non-zero");
  }
}

void Watchdog::kick() {
  last_kick_cycles_ = cycles_;
  ++kicks_;
}

void Watchdog::on_cycles(std::uint64_t cycles) {
  cycles_ = cycles;
  // Fire once per elapsed timeout without a kick; re-arm from the expiry
  // point so a long starvation causes repeated resets, as on hardware.
  while (cycles_ - last_kick_cycles_ >= timeout_cycles_) {
    last_kick_cycles_ += timeout_cycles_;
    ++resets_;
    if (on_reset_) on_reset_();
  }
}

std::uint8_t Watchdog::read(Addr offset) {
  // Status register: low byte of the reset count.
  if (offset == 0) return static_cast<std::uint8_t>(resets_);
  return 0;
}

bool Watchdog::write(Addr offset, std::uint8_t /*value*/) {
  if (offset >= kWindowSize) return false;
  kick();  // any write is a kick
  return true;
}

}  // namespace ratt::hw
