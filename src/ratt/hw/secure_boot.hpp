// Secure boot (Sec. 2 "Secure Boot", Sec. 6.2): at reset, a ROM-resident
// bootloader hashes the software image, checks it against a vendor-signed
// reference hash stored in ROM, loads the image, lets trusted first-stage
// code program the EA-MPU protection rules, and locks the EA-MPU down.
// Only after a successful boot does any untrusted code run — which is why
// the adversary cannot simply reprogram the protection rules.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ratt/crypto/ecdsa.hpp"
#include "ratt/crypto/sha256.hpp"
#include "ratt/hw/mcu.hpp"

namespace ratt::hw {

struct BootSegment {
  Addr base = 0;
  Bytes data;
};

struct BootImage {
  std::string name;
  std::vector<BootSegment> segments;
};

/// SHA-256 over every segment's (base || length || data), order-sensitive.
crypto::Sha256::Digest boot_image_digest(const BootImage& image);

/// What the vendor burns into ROM: the expected image hash, a signature
/// over it, and the vendor's public key.
struct RomReference {
  crypto::Sha256::Digest expected_hash{};
  crypto::EcdsaSignature signature;
  crypto::EcPoint vendor_key;
};

/// Vendor-side: produce the ROM reference for `image`.
RomReference make_rom_reference(const BootImage& image,
                                const crypto::EcdsaKeyPair& vendor);

enum class BootStatus : std::uint8_t {
  kOk,
  kBadSignature,   // reference hash signature does not verify
  kHashMismatch,   // image does not match the signed reference
  kLoadFault,      // a segment targets unmapped / device memory
  kConfigFault,    // protection configuration reported failure
};

std::string to_string(BootStatus status);

/// One page-aligned image of (part of) a boot segment, padded to the
/// page's power-up fill: the unit the fleet fast path installs into a
/// device bus by shared reference instead of copying.
struct SharedSegmentPage {
  Addr page_base = 0;
  std::shared_ptr<Bytes> page;
};

/// Build the page-aligned shared images of `image`'s segments for a
/// device with memory map `layout`: every byte of every segment lands in
/// exactly one page, bytes of a page no segment covers hold the owning
/// region's power-up fill (0xff for flash, 0x00 for ROM/RAM) — i.e. the
/// exact contents load_initial would leave in a freshly-mapped bus.
/// Segments targeting unmapped or device-backed memory are skipped (the
/// boot's own load_initial surfaces those as kLoadFault).
std::vector<SharedSegmentPage> make_shared_segment_pages(
    const Mcu::Layout& layout, const BootImage& image);

/// Fast path for fleet-templated boots: when thousands of identical
/// devices boot the very same vendor image (attest::ProverTemplate), the
/// signature verification and the image hash can be computed once at
/// template build and reused per device. Behaviorally identical — the
/// shortcuts only apply to the exact objects they were computed from.
struct BootFastPath {
  /// The reference signature was already verified (or produced) against
  /// reference.vendor_key for this exact RomReference; skips step 1.
  bool signature_preverified = false;
  /// Precomputed boot_image_digest(image) for this exact image; skips
  /// the per-boot rehash (the compare against expected_hash remains).
  const crypto::Sha256::Digest* image_digest = nullptr;
  /// Precomputed make_shared_segment_pages(...) for this exact image and
  /// this device's layout. When every page installs (fresh bus, all
  /// target pages absent), the segment copy loop is skipped entirely and
  /// the device aliases the template's pages copy-on-write; if any page
  /// refuses (already-materialized target), the boot falls back to the
  /// plain load_initial path for all segments, which produces identical
  /// final contents either way.
  const std::vector<SharedSegmentPage>* shared_pages = nullptr;
};

/// Runs the boot sequence on `mcu`. `configure_protection` is the trusted
/// first-stage code that programs EA-MPU rules; it runs pre-lockdown and
/// must return true on success. The EA-MPU is locked before this function
/// returns kOk, and is also locked on kConfigFault (fail-closed).
BootStatus secure_boot(Mcu& mcu, const BootImage& image,
                       const RomReference& reference,
                       const std::function<bool(Mcu&)>& configure_protection);

/// As above, with the fleet-template fast path.
BootStatus secure_boot(Mcu& mcu, const BootImage& image,
                       const RomReference& reference,
                       const std::function<bool(Mcu&)>& configure_protection,
                       const BootFastPath& fast);

}  // namespace ratt::hw
