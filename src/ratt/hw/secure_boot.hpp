// Secure boot (Sec. 2 "Secure Boot", Sec. 6.2): at reset, a ROM-resident
// bootloader hashes the software image, checks it against a vendor-signed
// reference hash stored in ROM, loads the image, lets trusted first-stage
// code program the EA-MPU protection rules, and locks the EA-MPU down.
// Only after a successful boot does any untrusted code run — which is why
// the adversary cannot simply reprogram the protection rules.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ratt/crypto/ecdsa.hpp"
#include "ratt/crypto/sha256.hpp"
#include "ratt/hw/mcu.hpp"

namespace ratt::hw {

struct BootSegment {
  Addr base = 0;
  Bytes data;
};

struct BootImage {
  std::string name;
  std::vector<BootSegment> segments;
};

/// SHA-256 over every segment's (base || length || data), order-sensitive.
crypto::Sha256::Digest boot_image_digest(const BootImage& image);

/// What the vendor burns into ROM: the expected image hash, a signature
/// over it, and the vendor's public key.
struct RomReference {
  crypto::Sha256::Digest expected_hash{};
  crypto::EcdsaSignature signature;
  crypto::EcPoint vendor_key;
};

/// Vendor-side: produce the ROM reference for `image`.
RomReference make_rom_reference(const BootImage& image,
                                const crypto::EcdsaKeyPair& vendor);

enum class BootStatus : std::uint8_t {
  kOk,
  kBadSignature,   // reference hash signature does not verify
  kHashMismatch,   // image does not match the signed reference
  kLoadFault,      // a segment targets unmapped / device memory
  kConfigFault,    // protection configuration reported failure
};

std::string to_string(BootStatus status);

/// Fast path for fleet-templated boots: when thousands of identical
/// devices boot the very same vendor image (attest::ProverTemplate), the
/// signature verification and the image hash can be computed once at
/// template build and reused per device. Behaviorally identical — the
/// shortcuts only apply to the exact objects they were computed from.
struct BootFastPath {
  /// The reference signature was already verified (or produced) against
  /// reference.vendor_key for this exact RomReference; skips step 1.
  bool signature_preverified = false;
  /// Precomputed boot_image_digest(image) for this exact image; skips
  /// the per-boot rehash (the compare against expected_hash remains).
  const crypto::Sha256::Digest* image_digest = nullptr;
};

/// Runs the boot sequence on `mcu`. `configure_protection` is the trusted
/// first-stage code that programs EA-MPU rules; it runs pre-lockdown and
/// must return true on success. The EA-MPU is locked before this function
/// returns kOk, and is also locked on kConfigFault (fail-closed).
BootStatus secure_boot(Mcu& mcu, const BootImage& image,
                       const RomReference& reference,
                       const std::function<bool(Mcu&)>& configure_protection);

/// As above, with the fleet-template fast path.
BootStatus secure_boot(Mcu& mcu, const BootImage& image,
                       const RomReference& reference,
                       const std::function<bool(Mcu&)>& configure_protection,
                       const BootFastPath& fast);

}  // namespace ratt::hw
