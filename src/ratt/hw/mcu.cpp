#include "ratt/hw/mcu.hpp"

namespace ratt::hw {

Mcu::Mcu(const Layout& layout)
    : layout_(layout),
      mpu_(layout.mpu_capacity),
      mpu_port_(mpu_),
      irq_(bus_, layout.idt_base, layout.irq_vectors),
      irq_mask_port_(irq_) {
  bus_.map_storage("rom", MemoryKind::kRom, layout.rom);
  bus_.map_storage("flash", MemoryKind::kFlash, layout.flash);
  bus_.map_storage("ram", MemoryKind::kRam, layout.ram);
  if (layout.map_mpu_port) {
    bus_.map_device(
        "eampu-config",
        AddrRange{layout.mpu_port_base,
                  layout.mpu_port_base + mpu_port_.window_size()},
        mpu_port_);
  }
  bus_.map_device(
      "irq-mask",
      AddrRange{layout.irq_mask_base,
                layout.irq_mask_base + IrqMaskPort::kWindowSize},
      irq_mask_port_);
  bus_.set_access_controller(&mpu_);
}

void Mcu::map_device(std::string name, Addr base, Addr size,
                     MmioDevice& dev) {
  bus_.map_device(std::move(name), AddrRange{base, base + size}, dev);
  if (auto* listener = dynamic_cast<TickListener*>(&dev)) {
    add_tick_listener(*listener);
  }
}

void Mcu::add_tick_listener(TickListener& listener) {
  tick_listeners_.push_back(&listener);
}

void Mcu::advance_cycles(std::uint64_t n) {
  cycles_ += n;
  for (auto* listener : tick_listeners_) {
    listener->on_cycles(cycles_);
  }
}

void Mcu::advance_ms(double ms) {
  advance_cycles(static_cast<std::uint64_t>(
      ms * static_cast<double>(layout_.clock_hz) / 1000.0));
}

}  // namespace ratt::hw
