#include "ratt/hw/eampu.hpp"

namespace ratt::hw {

EaMpu::EaMpu(std::size_t capacity) : rules_(capacity) {}

std::size_t EaMpu::active_rules() const {
  std::size_t n = 0;
  for (const auto& r : rules_) {
    if (r.active) ++n;
  }
  return n;
}

bool EaMpu::set_rule(std::size_t index, EampuRule rule) {
  if (locked_ || index >= rules_.size()) return false;
  rules_[index] = std::move(rule);
  return true;
}

bool EaMpu::clear_rule(std::size_t index) {
  if (locked_ || index >= rules_.size()) return false;
  rules_[index] = EampuRule{};
  return true;
}

bool EaMpu::covered(Addr addr) const {
  for (const auto& r : rules_) {
    if (r.active && r.data.contains(addr)) return true;
  }
  return false;
}

bool EaMpu::allows(const AccessContext& ctx, AccessType type,
                   Addr addr) const {
  bool any_rule_covers = false;
  for (const auto& r : rules_) {
    if (!r.active || !r.data.contains(addr)) continue;
    any_rule_covers = true;
    if (!r.code.contains(ctx.pc)) continue;
    if (type == AccessType::kRead && r.allow_read) return true;
    if (type == AccessType::kWrite && r.allow_write) return true;
  }
  return !any_rule_covers;
}

AccessWindow EaMpu::allows_window(const AccessContext& ctx, AccessType type,
                                  Addr addr, Addr limit) const {
  // One pass: compute the verdict at `addr` and, simultaneously, the
  // nearest rule boundary strictly above it. Within (addr, boundary) the
  // covering-rule set — and therefore the verdict — cannot change.
  bool any_rule_covers = false;
  bool granted = false;
  Addr end = limit;
  for (const auto& r : rules_) {
    if (!r.active || r.data.empty()) continue;
    if (r.data.begin > addr && r.data.begin < end) end = r.data.begin;
    if (r.data.end > addr && r.data.end < end) end = r.data.end;
    if (!r.data.contains(addr)) continue;
    any_rule_covers = true;
    if (!r.code.contains(ctx.pc)) continue;
    if ((type == AccessType::kRead && r.allow_read) ||
        (type == AccessType::kWrite && r.allow_write)) {
      granted = true;
    }
  }
  return AccessWindow{granted || !any_rule_covers, end};
}

EaMpuConfigPort::EaMpuConfigPort(EaMpu& mpu)
    : mpu_(mpu),
      shadow_(kRulesOffset + kRuleStride * mpu.capacity(), 0) {}

Addr EaMpuConfigPort::window_size() const {
  return static_cast<Addr>(shadow_.size());
}

std::uint8_t EaMpuConfigPort::read(Addr offset) {
  if (offset == kLockOffset) {
    return mpu_.locked() ? 1 : 0;
  }
  if (offset < shadow_.size()) {
    return shadow_[offset];
  }
  return 0;
}

bool EaMpuConfigPort::write(Addr offset, std::uint8_t value) {
  if (mpu_.locked()) return false;  // registers are read-only after lockdown
  if (offset >= shadow_.size()) return false;

  if (offset < kRulesOffset) {
    // Any non-zero byte written into LOCK engages lockdown.
    if (value != 0) {
      mpu_.lock();
    }
    return true;
  }

  shadow_[offset] = value;
  sync_rule_to_mpu((offset - kRulesOffset) / kRuleStride);
  return true;
}

void EaMpuConfigPort::sync_rule_to_mpu(std::size_t index) {
  const std::uint8_t* base = shadow_.data() + kRulesOffset +
                             index * kRuleStride;
  EampuRule rule;
  rule.code.begin = crypto::load_le32(base);
  rule.code.end = crypto::load_le32(base + 4);
  rule.data.begin = crypto::load_le32(base + 8);
  rule.data.end = crypto::load_le32(base + 12);
  const std::uint32_t flags = crypto::load_le32(base + 16);
  rule.allow_read = (flags & 0x1) != 0;
  rule.allow_write = (flags & 0x2) != 0;
  rule.active = (flags & 0x4) != 0;
  rule.label = "mmio-rule-" + std::to_string(index);
  mpu_.set_rule(index, std::move(rule));
}

}  // namespace ratt::hw
