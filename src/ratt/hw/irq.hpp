// Interrupt controller with an in-RAM interrupt descriptor table (IDT).
//
// The SW-clock design of Fig. 1b depends on interrupt integrity: Clock_LSB
// wraps, raises an interrupt, and the handler (Code_Clock) increments
// Clock_MSB. The paper's Adv_roam can stop the clock by (a) overwriting
// the IDT entry so Code_Clock is never invoked, or (b) masking the timer
// interrupt. Both attack surfaces are modeled here:
//   * the IDT lives in ordinary RAM, writable unless an EA-MPU rule locks
//     it down ("IDT can be locked down similar to the EA-MPU", Sec. 6.2);
//   * the mask register is a memory-mapped port (IrqMaskPort) that can
//     likewise be EA-MPU-protected.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "ratt/hw/bus.hpp"

namespace ratt::hw {

class InterruptController {
 public:
  /// The IDT occupies [idt_base, idt_base + 4*vector_count) in bus memory;
  /// each entry is a little-endian 32-bit handler entry address.
  InterruptController(MemoryBus& bus, Addr idt_base,
                      std::size_t vector_count);

  Addr idt_base() const { return idt_base_; }
  std::size_t vector_count() const { return vector_count_; }
  AddrRange idt_range() const {
    return AddrRange{idt_base_,
                     idt_base_ + static_cast<Addr>(4 * vector_count_)};
  }

  /// Associate simulated handler code (identified by its entry address,
  /// which is what the IDT stores) with native behavior. The simulation
  /// does not interpret an ISA; dispatch looks up the entry address
  /// written in the IDT and runs the registered callable.
  void register_native_handler(Addr entry, std::function<void()> handler);

  /// Write vector `vec`'s IDT entry. `ctx` is the writer's PC, so EA-MPU
  /// IDT protection applies to this exactly as to any other memory write.
  BusStatus install(const AccessContext& ctx, std::size_t vec, Addr entry);

  /// Raise interrupt `vec`. Returns true if a handler ran.
  /// Masked interrupts are dropped; IDT entries that do not name a
  /// registered handler lose the interrupt (models a clobbered IDT).
  bool raise(std::size_t vec);

  // Mask state (bit set = masked). Manipulated via IrqMaskPort or directly
  // by tests.
  std::uint32_t mask() const { return mask_; }
  void set_mask(std::uint32_t mask) { mask_ = mask; }

  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t dropped_masked = 0;
    std::uint64_t lost_bad_entry = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  MemoryBus& bus_;
  Addr idt_base_;
  std::size_t vector_count_;
  std::uint32_t mask_ = 0;
  std::map<Addr, std::function<void()>> native_handlers_;
  Stats stats_;
};

/// Memory-mapped interrupt mask register (32-bit at offset 0).
/// The paper notes "disabling the timer interrupt must also be prevented";
/// protecting this port with an EA-MPU rule models that.
class IrqMaskPort final : public MmioDevice {
 public:
  explicit IrqMaskPort(InterruptController& irq) : irq_(irq) {}

  static constexpr Addr kWindowSize = 4;

  std::string name() const override { return "irq-mask"; }

  std::uint8_t read(Addr offset) override {
    if (offset >= 4) return 0;
    return static_cast<std::uint8_t>(irq_.mask() >> (8 * offset));
  }

  bool write(Addr offset, std::uint8_t value) override {
    if (offset >= 4) return false;
    std::uint32_t mask = irq_.mask();
    mask &= ~(std::uint32_t{0xff} << (8 * offset));
    mask |= std::uint32_t{value} << (8 * offset);
    irq_.set_mask(mask);
    return true;
  }

 private:
  InterruptController& irq_;
};

}  // namespace ratt::hw
