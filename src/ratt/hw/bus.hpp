// The MCU memory bus: address decoding, region kinds, PC-aware access
// control, and a fault log.
//
// Every software component in the simulation (trusted attestation code,
// application, malware) touches memory exclusively through this bus,
// passing the program counter of its code region. The execution-aware
// memory protection unit (EA-MPU, eampu.hpp) is consulted on every access,
// which is exactly how the paper's protections for K_Attest, counter_R and
// the clock are enforced (Sec. 6.1-6.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ratt/crypto/bytes.hpp"
#include "ratt/hw/addr.hpp"

namespace ratt::hw {

using crypto::Bytes;
using crypto::ByteView;

enum class MemoryKind : std::uint8_t {
  kRom,    // write attempts always fail (hardware)
  kRam,
  kFlash,  // NOR semantics: program clears bits (AND), erase sets a whole
           // block to 0xff; erased state is 0xff
  kMmio,   // backed by a device, not by storage
};

std::string to_string(MemoryKind kind);

enum class AccessType : std::uint8_t { kRead, kWrite };

enum class BusStatus : std::uint8_t {
  kOk,
  kUnmapped,    // no region decodes this address
  kReadOnly,    // write to ROM (or a read-only MMIO register)
  kDenied,      // blocked by the access controller (EA-MPU)
};

std::string to_string(BusStatus status);

/// The bus tags every access with the program counter of the initiator.
/// kHardwarePc marks accesses made by hardware itself (interrupt dispatch,
/// timer update); the access controller always admits those.
inline constexpr Addr kHardwarePc = 0xffffffffu;

struct AccessContext {
  Addr pc = kHardwarePc;
};

/// A memory-mapped device: reads/writes at offsets within its region.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;

  virtual std::string name() const = 0;

  /// Byte read at `offset`; MMIO reads always succeed within the region.
  virtual std::uint8_t read(Addr offset) = 0;

  /// Byte write at `offset`; returns false if the register is read-only
  /// (surfaced to the initiator as BusStatus::kReadOnly).
  virtual bool write(Addr offset, std::uint8_t value) = 0;
};

/// Verdict for a contiguous window of addresses: `allowed` holds for
/// every address in [addr, end). Lets the bus resolve access control
/// once per window instead of once per byte on bulk transfers.
struct AccessWindow {
  bool allowed = false;
  Addr end = 0;  // exclusive; > the queried addr, <= the queried limit
};

/// PC-aware access policy; implemented by the EA-MPU.
class AccessController {
 public:
  virtual ~AccessController() = default;

  /// Whether `ctx.pc` may perform `type` at `addr`.
  virtual bool allows(const AccessContext& ctx, AccessType type,
                      Addr addr) const = 0;

  /// The verdict at `addr` plus the largest `end <= limit` such that the
  /// verdict is constant over [addr, end). The conservative default
  /// answers one byte at a time; the EA-MPU overrides it with a
  /// rule-boundary scan. Requires addr < limit.
  virtual AccessWindow allows_window(const AccessContext& ctx,
                                     AccessType type, Addr addr,
                                     Addr limit) const {
    (void)limit;
    return AccessWindow{allows(ctx, type, addr), addr + 1};
  }
};

/// One entry in the bus fault log.
struct BusFault {
  Addr pc = 0;
  Addr addr = 0;
  AccessType type = AccessType::kRead;
  BusStatus status = BusStatus::kOk;
};

/// Address decoder + storage + policy enforcement point.
class MemoryBus {
 public:
  /// Map a storage-backed region (ROM/RAM/Flash). Throws on overlap.
  void map_storage(std::string name, MemoryKind kind, AddrRange range);

  /// Map a device-backed region. The device must outlive the bus.
  void map_device(std::string name, AddrRange range, MmioDevice& device);

  /// Install (or clear) the access controller consulted on every access.
  void set_access_controller(const AccessController* controller) {
    controller_ = controller;
  }

  /// Bulk transfers normally run the window-coalesced fast path: the
  /// (region, EA-MPU verdict) pair is resolved once per maximal window
  /// and storage-backed bytes move by memcpy. `false` selects the
  /// per-byte reference path — same statuses, same storage mutations,
  /// same fault log, byte for byte — kept for differential testing and
  /// the CI perf-smoke trace comparison.
  void set_bulk_enabled(bool enabled) { bulk_enabled_ = enabled; }
  bool bulk_enabled() const { return bulk_enabled_; }

  // -- Byte and word accessors. Word accessors are little-endian and fail
  //    atomically: on any non-Ok status no bytes are transferred.
  BusStatus read8(const AccessContext& ctx, Addr addr, std::uint8_t& out);
  BusStatus write8(const AccessContext& ctx, Addr addr, std::uint8_t value);
  BusStatus read32(const AccessContext& ctx, Addr addr, std::uint32_t& out);
  BusStatus write32(const AccessContext& ctx, Addr addr, std::uint32_t value);
  BusStatus read64(const AccessContext& ctx, Addr addr, std::uint64_t& out);
  BusStatus write64(const AccessContext& ctx, Addr addr, std::uint64_t value);

  /// Bulk read of `out.size()` bytes starting at `addr`. Stops at the first
  /// failing byte and reports its status; `out` is only valid on kOk.
  BusStatus read_block(const AccessContext& ctx, Addr addr,
                       std::span<std::uint8_t> out);

  /// Bulk write; stops at the first failing byte (earlier bytes stay
  /// written, as on real hardware).
  BusStatus write_block(const AccessContext& ctx, Addr addr, ByteView data);

  /// NOR-flash erase granularity.
  static constexpr Addr kFlashBlockSize = 4096;

  /// Erase the flash block containing `addr` (all bytes to 0xff). Fails
  /// with kReadOnly on non-flash regions; the access controller must
  /// grant write access to every byte of the block.
  BusStatus erase_flash_block(const AccessContext& ctx, Addr addr);

  /// Load initial contents into a storage region, bypassing both the
  /// access controller and ROM read-only-ness. For ROM images and secure
  /// boot only — never reachable from simulated software.
  void load_initial(Addr addr, ByteView data);

  /// Install a prepared full page by shared reference instead of
  /// copying: the fleet's secure-boot fast path builds each segment page
  /// once per template and every identically-mapped device aliases it,
  /// so a thousand devices booting the same image share one physical
  /// copy until somebody writes it (copy-on-write — the first mutating
  /// access clones a private page). Returns false and installs nothing
  /// unless `page_base` starts a page of a storage region, that page is
  /// still absent, and `page->size()` equals the page's length; the
  /// caller falls back to load_initial.
  bool load_initial_shared(Addr page_base,
                           const std::shared_ptr<Bytes>& page);

  /// Region lookup for introspection; nullptr if unmapped.
  struct RegionInfo {
    std::string name;
    MemoryKind kind;
    AddrRange range;
  };
  const RegionInfo* region_at(Addr addr) const;
  std::vector<RegionInfo> regions() const;

  /// The fault log is a bounded ring of the most recent faults: a
  /// sustained adversary flood overwrites the oldest entries instead of
  /// growing the log without limit. Dropped (overwritten) entries are
  /// counted so observability can surface the flood's true size.
  static constexpr std::size_t kDefaultFaultCapacity = 256;

  /// Resize the ring (>= 1); existing entries and counters are cleared.
  void set_fault_capacity(std::size_t capacity);
  std::size_t fault_capacity() const { return fault_capacity_; }

  /// The retained faults, oldest first (at most fault_capacity()).
  std::vector<BusFault> faults() const;
  /// Faults ever logged, including overwritten ones.
  std::uint64_t faults_total() const { return faults_total_; }
  /// Faults lost to ring overwrite since the last clear_faults().
  std::uint64_t faults_dropped() const { return faults_dropped_; }
  void clear_faults();

  /// Bytes of backing store actually allocated: materialized pages summed
  /// over all storage regions. Mapped-but-untouched address space costs
  /// only its page table, which is what lets a mostly-idle million-device
  /// fleet map a megabyte of flash per device without buying the RAM.
  /// Pages aliased from a shared template count at full size here; see
  /// shared_resident_bytes() for the portion a fleet report should
  /// amortize across the devices referencing the same physical copy.
  std::size_t resident_bytes() const;

  /// The subset of resident_bytes() living in pages this bus shares with
  /// other owners (the fleet template and sibling devices). Zero once
  /// every shared page has been copy-on-write cloned.
  std::size_t shared_resident_bytes() const;

  /// Heap bytes of the paging metadata itself: page-index slots, dense
  /// store bookkeeping and dirty bitmaps. The honest remainder of a
  /// per-device footprint report — this is what a mapped-but-untouched
  /// region actually costs.
  std::size_t page_table_bytes() const;

  // -- Dirty-page tracking (incremental attestation, DESIGN.md §4i).
  //    Every successful storage mutation — byte write, bulk write, flash
  //    program or erase — marks its page dirty, including writes of the
  //    fill value to a not-yet-materialized page (the write *event* is
  //    what attestation cares about, not whether the stored bytes
  //    changed). load_initial() is manufacture/boot provisioning and does
  //    not mark. Dirty bits are cleared only through clear_dirty_page(),
  //    which the dirty authority restricts to the trust anchor's PC.

  /// Whether the page containing `addr` is dirty. False for unmapped or
  /// device-backed addresses (MMIO has no storage to track).
  bool page_dirty(Addr addr) const;

  /// Total dirty pages across all storage regions.
  std::size_t dirty_page_count() const;

  /// Monotone counter bumped on every clean->dirty page transition. A
  /// snapshot of it tells an observer whether *any* page dirtied since,
  /// without walking the bitmaps.
  std::uint64_t dirty_generation() const { return dirty_generation_; }

  /// Restrict clear_dirty_page() to initiators whose PC lies in `code`
  /// (the trust anchor's code region). kHardwarePc is always admitted.
  /// An empty range (the default) leaves clearing open to everyone —
  /// the naive configuration the rollback regression suite attacks.
  void set_dirty_authority(AddrRange code) { dirty_authority_ = code; }
  AddrRange dirty_authority() const { return dirty_authority_; }

  /// Clear the dirty bit of the page containing `addr`. kUnmapped for
  /// unmapped or MMIO addresses, kDenied when a non-empty authority does
  /// not cover `ctx.pc`; both are logged as write faults at `addr`.
  BusStatus clear_dirty_page(const AccessContext& ctx, Addr addr);

 private:
  /// Page granularity of the lazily-allocated backing store. Equal to the
  /// flash erase block, so an erase drops exactly one page.
  static constexpr std::size_t kPageSize = 4096;
  static_assert(kPageSize == static_cast<std::size_t>(kFlashBlockSize));

  struct Region {
    RegionInfo info;
    // Storage-backed regions are paged sparsely: `page_index` holds one
    // 32-bit slot per page of address space (kNoPage = absent) pointing
    // into the dense `store` of materialized pages, and `store_page`
    // maps each store entry back to its page number so an erase can
    // drop a page by swapping with the last entry. Absent pages read as
    // `fill` (0xff for erased flash, 0x00 for ROM/RAM — exactly the
    // power-up contents) and materialize on first non-fill write; the
    // last page is clamped to the region size. A mapped-but-untouched
    // 512 KB region therefore costs 4 bytes per page instead of a
    // vector header — the difference between ~19 KB and ~14 KB of
    // resident footprint per fleet device.
    static constexpr std::uint32_t kNoPage = 0xffffffffu;
    std::vector<std::uint32_t> page_index;  // one slot per page of space
    // Materialized pages, dense. shared_ptr so a fleet template can
    // alias one physical page into thousands of buses; use_count > 1
    // means somebody else also holds it and a write must clone first.
    std::vector<std::shared_ptr<Bytes>> store;
    std::vector<std::uint32_t> store_page;  // page number per store entry
    std::uint8_t fill = 0x00;
    MmioDevice* device = nullptr;  // device-backed regions
    // One bit per page, set on every successful write to the page and
    // cleared only via MemoryBus::clear_dirty_page.
    std::vector<std::uint64_t> dirty;

    bool page_is_dirty(std::size_t p) const {
      return ((dirty[p >> 6] >> (p & 63)) & 1) != 0;
    }

    std::size_t page_len(std::size_t p) const {
      return std::min<std::size_t>(kPageSize,
                                   info.range.size() - p * kPageSize);
    }
    bool page_absent(std::size_t p) const {
      return page_index[p] == kNoPage;
    }
    /// The materialized page holding slot `p`, or nullptr if absent.
    const Bytes* page_at(std::size_t p) const {
      const std::uint32_t idx = page_index[p];
      return idx == kNoPage ? nullptr : store[idx].get();
    }
    std::uint8_t read_byte(Addr offset) const {
      const Bytes* page = page_at(offset / kPageSize);
      return page == nullptr ? fill : (*page)[offset % kPageSize];
    }
    /// The page holding region offset p * kPageSize, materialized (and
    /// filled with `fill`) if absent, for WRITING: a page aliased from
    /// the fleet template is copy-on-write cloned here, so the caller
    /// always gets a privately-owned page it may mutate.
    Bytes& touch_page(std::size_t p) {
      std::uint32_t idx = page_index[p];
      if (idx == kNoPage) {
        idx = static_cast<std::uint32_t>(store.size());
        store.push_back(std::make_shared<Bytes>(page_len(p), fill));
        store_page.push_back(static_cast<std::uint32_t>(p));
        page_index[p] = idx;
      } else if (store[idx].use_count() > 1) {
        store[idx] = std::make_shared<Bytes>(*store[idx]);
      }
      return *store[idx];
    }
    std::uint8_t& byte_for_write(Addr offset) {
      return touch_page(offset / kPageSize)[offset % kPageSize];
    }
    /// Release page `p`'s backing store (flash erase): the last store
    /// entry swaps into the vacated slot so the store stays dense.
    void drop_page(std::size_t p) {
      const std::uint32_t idx = page_index[p];
      if (idx == kNoPage) return;
      const auto last = static_cast<std::uint32_t>(store.size() - 1);
      if (idx != last) {
        store[idx] = std::move(store[last]);
        store_page[idx] = store_page[last];
        page_index[store_page[idx]] = idx;
      }
      store.pop_back();
      store_page.pop_back();
      page_index[p] = kNoPage;
    }
  };

  Region* find(Addr addr);
  const Region* find(Addr addr) const;
  void check_overlap(const AddrRange& range, const std::string& name) const;
  BusStatus access8(const AccessContext& ctx, AccessType type, Addr addr,
                    std::uint8_t* read_out, std::uint8_t write_value);
  void record_fault(const AccessContext& ctx, Addr addr, AccessType type,
                    BusStatus status);
  BusStatus read_block_bytewise(const AccessContext& ctx, Addr addr,
                                std::span<std::uint8_t> out);
  BusStatus write_block_bytewise(const AccessContext& ctx, Addr addr,
                                 ByteView data);
  /// Resolves access control for [addr, limit): either the full span is
  /// admitted (hardware PC / no controller), or the controller's window
  /// verdict applies. Returns the allowed window end, or 0 on denial.
  Addr admitted_window_end(const AccessContext& ctx, AccessType type,
                           Addr addr, Addr limit) const;
  /// Set page `p`'s dirty bit; bumps dirty_generation_ on a clean->dirty
  /// transition.
  void mark_page_dirty(Region& region, std::size_t p);

  std::vector<std::unique_ptr<Region>> regions_;
  const AccessController* controller_ = nullptr;
  bool bulk_enabled_ = true;
  std::vector<BusFault> fault_ring_;
  std::size_t fault_capacity_ = kDefaultFaultCapacity;
  std::size_t fault_next_ = 0;  // ring write position once full
  std::uint64_t faults_total_ = 0;
  std::uint64_t faults_dropped_ = 0;
  std::uint64_t dirty_generation_ = 0;
  AddrRange dirty_authority_{};  // empty = clearing open to everyone
};

}  // namespace ratt::hw
