// Clock sources read by the trusted attestation code, covering the three
// designs the paper evaluates (Sec. 6.2-6.3, Fig. 1):
//
//   (a) MmioClockSource over a HwCounterPort — dedicated wide hardware
//       counter (64-bit, or 32-bit with a 2^20 divider);
//   (a') MmioClockSource over a WritableClockPort — the *unprotected*
//       clock that the roaming adversary can reset;
//   (b) SwClockSource — Clock_MSB (RAM word maintained by Code_Clock on
//       Clock_LSB wrap interrupts) combined with Clock_LSB (MMIO).
//
// CodeClock is the trusted software half of design (b).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ratt/hw/mcu.hpp"
#include "ratt/hw/timer.hpp"

namespace ratt::hw {

/// Something the prover can read the current time (in ticks) from.
/// Reads go through the bus with the *reader's* context, so EA-MPU
/// protections apply.
class ClockSource {
 public:
  virtual ~ClockSource() = default;

  virtual std::string describe() const = 0;

  /// Current tick count, or nullopt if the read faulted.
  virtual std::optional<std::uint64_t> read_ticks(
      const AccessContext& reader) = 0;
};

/// Reads a little-endian counter of `width_bytes` at `base` over the bus.
class MmioClockSource final : public ClockSource {
 public:
  MmioClockSource(Mcu& mcu, Addr base, unsigned width_bytes,
                  std::string label);

  std::string describe() const override { return label_; }
  std::optional<std::uint64_t> read_ticks(
      const AccessContext& reader) override;

 private:
  Mcu* mcu_;
  Addr base_;
  unsigned width_bytes_;
  std::string label_;
};

/// Code_Clock (Fig. 1b): trusted handler that increments Clock_MSB in RAM
/// each time Clock_LSB wraps. Its IDT entry must point at entry_point()
/// and Clock_MSB must be EA-MPU-protected to be writable only from this
/// component's code region.
class CodeClock final : public SoftwareComponent {
 public:
  CodeClock(Mcu& mcu, AddrRange code, Addr clock_msb_addr);

  Addr entry_point() const { return code_region().begin; }
  Addr clock_msb_addr() const { return msb_addr_; }

  /// The interrupt handler body (step 3 in Fig. 1b).
  void on_wrap_interrupt();

  /// Read Clock_MSB with *this component's* context — models a call into
  /// Code_Clock's read entry point, the TrustLite idiom that lets other
  /// trustlets obtain the value without a dedicated read rule.
  std::optional<std::uint32_t> read_msb() const;

  /// Handler invocations that failed to update Clock_MSB (e.g. the EA-MPU
  /// rule was mis-configured); should stay zero in a healthy system.
  std::uint64_t failed_updates() const { return failed_updates_; }

 private:
  Addr msb_addr_;
  std::uint64_t failed_updates_ = 0;
};

/// The composite SW-clock: now = (Clock_MSB << lsb_bits) | Clock_LSB.
class SwClockSource final : public ClockSource {
 public:
  SwClockSource(Mcu& mcu, CodeClock& code_clock, Addr lsb_base,
                unsigned lsb_bits);

  std::string describe() const override { return "sw-clock"; }
  std::optional<std::uint64_t> read_ticks(
      const AccessContext& reader) override;

 private:
  Mcu* mcu_;
  CodeClock* code_clock_;
  Addr lsb_base_;
  unsigned lsb_bits_;
};

}  // namespace ratt::hw
