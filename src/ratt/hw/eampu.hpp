// Execution-aware memory protection unit (EA-MPU), after TrustLite /
// SMART (Sec. 6.1).
//
// An EA-MPU rule grants a *code region* (identified by the current program
// counter) read and/or write access to a *data region*. Memory covered by
// at least one rule is accessible only through a matching rule; memory not
// covered by any rule is open to everyone. This is how the paper protects
//   * K_Attest   — readable only by Code_Attest (rule, R only),
//   * counter_R  — writable only by Code_Attest,
//   * Clock_MSB  — writable only by Code_Clock,
//   * the IDT    — writable by nobody after boot,
//   * the EA-MPU's own configuration registers (lockdown).
//
// Rules are programmed through a memory-mapped configuration port
// (EaMpuConfigPort) during secure boot, after which the lock register is
// set and all further configuration writes fail.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "ratt/hw/bus.hpp"

namespace ratt::hw {

struct EampuRule {
  AddrRange code;   // who may access (by PC)
  AddrRange data;   // what is protected
  bool allow_read = false;
  bool allow_write = false;
  bool active = false;
  std::string label;  // diagnostics only; not part of hardware state
};

/// The EA-MPU proper: rule store + access-decision logic.
class EaMpu final : public AccessController {
 public:
  /// `capacity` is #r in the paper's cost formulas (Table 3).
  explicit EaMpu(std::size_t capacity = 8);

  std::size_t capacity() const { return rules_.size(); }
  bool locked() const { return locked_; }

  /// Number of active rules.
  std::size_t active_rules() const;

  /// Program rule `index`. Fails (returns false) once locked.
  bool set_rule(std::size_t index, EampuRule rule);

  /// Deactivate rule `index`. Fails once locked.
  bool clear_rule(std::size_t index);

  /// Engage lockdown; irreversible (only a hardware reset would clear it,
  /// which re-runs secure boot).
  void lock() { locked_ = true; }

  const EampuRule& rule(std::size_t index) const { return rules_.at(index); }

  /// The EA-MPU decision (Sec. 6.1): an access to an address covered by at
  /// least one rule succeeds iff some covering rule names the caller's code
  /// region and grants the access type; uncovered addresses are open.
  bool allows(const AccessContext& ctx, AccessType type,
              Addr addr) const override;

  /// Window form of the decision: the verdict can only change where the
  /// set of covering rules changes, i.e. at a rule's data.begin or
  /// data.end — so the verdict at `addr` extends to the nearest active
  /// rule boundary above it (clamped to `limit`). One O(#rules) scan per
  /// window instead of per byte; this is what makes bulk bus transfers
  /// O(regions + rules) instead of O(bytes x rules).
  AccessWindow allows_window(const AccessContext& ctx, AccessType type,
                             Addr addr, Addr limit) const override;

  /// Whether any rule covers `addr` (i.e. the address is protected).
  bool covered(Addr addr) const;

 private:
  std::vector<EampuRule> rules_;
  bool locked_ = false;
};

/// Memory-mapped configuration registers for the EA-MPU.
///
/// Layout (all little-endian):
///   0x00  LOCK    (32-bit; write non-zero to lock, reads back 0/1)
///   0x04 + 20*i   rule i: CODE_BEGIN, CODE_END, DATA_BEGIN, DATA_END,
///                 FLAGS (bit0 = read, bit1 = write, bit2 = active)
///
/// All writes fail once the MPU is locked — "setting the EA-MPU's
/// configuration registers as read-only" (Sec. 6.2). A rule becomes
/// visible to the decision logic when its FLAGS byte 0 is written, so
/// software programs the ranges first and the flags last.
class EaMpuConfigPort final : public MmioDevice {
 public:
  static constexpr Addr kLockOffset = 0x00;
  static constexpr Addr kRuleStride = 20;
  static constexpr Addr kRulesOffset = 0x04;

  explicit EaMpuConfigPort(EaMpu& mpu);

  /// Size of the register file in bytes (for mapping).
  Addr window_size() const;

  std::string name() const override { return "eampu-config"; }
  std::uint8_t read(Addr offset) override;
  bool write(Addr offset, std::uint8_t value) override;

 private:
  void sync_rule_to_mpu(std::size_t index);

  EaMpu& mpu_;
  Bytes shadow_;  // raw register bytes
};

}  // namespace ratt::hw
