#include "ratt/hw/irq.hpp"

#include <stdexcept>

namespace ratt::hw {

InterruptController::InterruptController(MemoryBus& bus, Addr idt_base,
                                         std::size_t vector_count)
    : bus_(bus), idt_base_(idt_base), vector_count_(vector_count) {
  if (vector_count == 0 || vector_count > 32) {
    throw std::invalid_argument(
        "InterruptController: vector_count must be in [1, 32]");
  }
}

void InterruptController::register_native_handler(
    Addr entry, std::function<void()> handler) {
  native_handlers_[entry] = std::move(handler);
}

BusStatus InterruptController::install(const AccessContext& ctx,
                                       std::size_t vec, Addr entry) {
  if (vec >= vector_count_) return BusStatus::kUnmapped;
  return bus_.write32(ctx, idt_base_ + static_cast<Addr>(4 * vec), entry);
}

bool InterruptController::raise(std::size_t vec) {
  if (vec >= vector_count_) return false;
  if ((mask_ >> vec) & 1) {
    ++stats_.dropped_masked;
    return false;
  }
  // Hardware reads the IDT entry; the access controller admits kHardwarePc.
  std::uint32_t entry = 0;
  const BusStatus s = bus_.read32(AccessContext{kHardwarePc},
                                  idt_base_ + static_cast<Addr>(4 * vec),
                                  entry);
  if (s != BusStatus::kOk) {
    ++stats_.lost_bad_entry;
    return false;
  }
  const auto it = native_handlers_.find(entry);
  if (it == native_handlers_.end()) {
    // The IDT points somewhere that is not a registered handler entry —
    // e.g. malware clobbered it. The interrupt is effectively lost.
    ++stats_.lost_bad_entry;
    return false;
  }
  ++stats_.delivered;
  it->second();
  return true;
}

}  // namespace ratt::hw
