#include "ratt/hw/addr.hpp"

#include <cstdio>

namespace ratt::hw {

std::string to_string(const AddrRange& r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%08x-0x%08x", r.begin, r.end);
  return buf;
}

}  // namespace ratt::hw
