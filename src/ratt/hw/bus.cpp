#include "ratt/hw/bus.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

namespace ratt::hw {

std::string to_string(MemoryKind kind) {
  switch (kind) {
    case MemoryKind::kRom:
      return "ROM";
    case MemoryKind::kRam:
      return "RAM";
    case MemoryKind::kFlash:
      return "Flash";
    case MemoryKind::kMmio:
      return "MMIO";
  }
  return "unknown";
}

std::string to_string(BusStatus status) {
  switch (status) {
    case BusStatus::kOk:
      return "ok";
    case BusStatus::kUnmapped:
      return "unmapped";
    case BusStatus::kReadOnly:
      return "read-only";
    case BusStatus::kDenied:
      return "denied";
  }
  return "unknown";
}

void MemoryBus::check_overlap(const AddrRange& range,
                              const std::string& name) const {
  if (range.empty()) {
    throw std::invalid_argument("MemoryBus: empty range for region " + name);
  }
  for (const auto& r : regions_) {
    if (r->info.range.overlaps(range)) {
      throw std::invalid_argument("MemoryBus: region " + name +
                                  " overlaps " + r->info.name);
    }
  }
}

void MemoryBus::map_storage(std::string name, MemoryKind kind,
                            AddrRange range) {
  if (kind == MemoryKind::kMmio) {
    throw std::invalid_argument("MemoryBus: use map_device for MMIO");
  }
  check_overlap(range, name);
  auto region = std::make_unique<Region>();
  region->info = RegionInfo{std::move(name), kind, range};
  // Flash powers up erased (0xff); RAM and ROM are zeroed. No page is
  // allocated yet — untouched pages read as the fill byte directly.
  region->fill = kind == MemoryKind::kFlash ? 0xff : 0x00;
  const std::size_t pages = (range.size() + kPageSize - 1) / kPageSize;
  region->page_index.assign(pages, Region::kNoPage);
  region->dirty.assign((pages + 63) / 64, 0);
  regions_.push_back(std::move(region));
}

void MemoryBus::map_device(std::string name, AddrRange range,
                           MmioDevice& device) {
  check_overlap(range, name);
  auto region = std::make_unique<Region>();
  region->info = RegionInfo{std::move(name), MemoryKind::kMmio, range};
  region->device = &device;
  regions_.push_back(std::move(region));
}

MemoryBus::Region* MemoryBus::find(Addr addr) {
  for (auto& r : regions_) {
    if (r->info.range.contains(addr)) return r.get();
  }
  return nullptr;
}

const MemoryBus::Region* MemoryBus::find(Addr addr) const {
  for (const auto& r : regions_) {
    if (r->info.range.contains(addr)) return r.get();
  }
  return nullptr;
}

const MemoryBus::RegionInfo* MemoryBus::region_at(Addr addr) const {
  const Region* r = find(addr);
  return r != nullptr ? &r->info : nullptr;
}

std::vector<MemoryBus::RegionInfo> MemoryBus::regions() const {
  std::vector<RegionInfo> out;
  out.reserve(regions_.size());
  for (const auto& r : regions_) {
    out.push_back(r->info);
  }
  return out;
}

void MemoryBus::set_fault_capacity(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("MemoryBus: fault capacity must be >= 1");
  }
  fault_capacity_ = capacity;
  clear_faults();
}

std::vector<BusFault> MemoryBus::faults() const {
  std::vector<BusFault> out;
  out.reserve(fault_ring_.size());
  if (fault_ring_.size() < fault_capacity_) {
    out = fault_ring_;
  } else {
    // Full ring: fault_next_ points at the oldest entry.
    out.insert(out.end(), fault_ring_.begin() + fault_next_,
               fault_ring_.end());
    out.insert(out.end(), fault_ring_.begin(),
               fault_ring_.begin() + fault_next_);
  }
  return out;
}

void MemoryBus::clear_faults() {
  fault_ring_.clear();
  fault_next_ = 0;
  faults_total_ = 0;
  faults_dropped_ = 0;
}

void MemoryBus::record_fault(const AccessContext& ctx, Addr addr,
                             AccessType type, BusStatus status) {
  ++faults_total_;
  if (fault_ring_.size() < fault_capacity_) {
    fault_ring_.push_back(BusFault{ctx.pc, addr, type, status});
    return;
  }
  fault_ring_[fault_next_] = BusFault{ctx.pc, addr, type, status};
  fault_next_ = (fault_next_ + 1) % fault_capacity_;
  ++faults_dropped_;
}

BusStatus MemoryBus::access8(const AccessContext& ctx, AccessType type,
                             Addr addr, std::uint8_t* read_out,
                             std::uint8_t write_value) {
  Region* region = find(addr);
  BusStatus status = BusStatus::kOk;
  if (region == nullptr) {
    status = BusStatus::kUnmapped;
  } else if (type == AccessType::kWrite &&
             region->info.kind == MemoryKind::kRom) {
    status = BusStatus::kReadOnly;
  } else if (controller_ != nullptr && ctx.pc != kHardwarePc &&
             !controller_->allows(ctx, type, addr)) {
    status = BusStatus::kDenied;
  }

  if (status == BusStatus::kOk) {
    const Addr offset = addr - region->info.range.begin;
    if (region->device != nullptr) {
      if (type == AccessType::kRead) {
        *read_out = region->device->read(offset);
      } else if (!region->device->write(offset, write_value)) {
        status = BusStatus::kReadOnly;
      }
    } else {
      if (type == AccessType::kRead) {
        *read_out = region->read_byte(offset);
      } else {
        const std::size_t p = offset / kPageSize;
        // Fill-value writes to an absent page leave it unmaterialized —
        // the stored bytes would not change — but the page still dirties:
        // attestation tracks write events, not content diffs.
        const bool keeps_fill =
            region->page_absent(p) &&
            (region->info.kind == MemoryKind::kFlash
                 ? static_cast<std::uint8_t>(region->fill & write_value) ==
                       region->fill
                 : write_value == region->fill);
        if (!keeps_fill) {
          if (region->info.kind == MemoryKind::kFlash) {
            // NOR program: can only clear bits; setting bits needs an
            // erase.
            std::uint8_t& b = region->byte_for_write(offset);
            b = static_cast<std::uint8_t>(b & write_value);
          } else {
            region->byte_for_write(offset) = write_value;
          }
        }
        mark_page_dirty(*region, p);
      }
    }
  }

  if (status != BusStatus::kOk) {
    record_fault(ctx, addr, type, status);
  }
  return status;
}

BusStatus MemoryBus::read8(const AccessContext& ctx, Addr addr,
                           std::uint8_t& out) {
  return access8(ctx, AccessType::kRead, addr, &out, 0);
}

BusStatus MemoryBus::write8(const AccessContext& ctx, Addr addr,
                            std::uint8_t value) {
  return access8(ctx, AccessType::kWrite, addr, nullptr, value);
}

// Word accessors ride the block paths: one region lookup and one
// access-control window resolution per word instead of one of each per
// byte. Failure semantics are unchanged — the transfer stops at the
// first failing byte (reads deliver nothing, earlier written bytes stay
// written) and exactly one fault is logged at its address, which is
// precisely what the old per-byte loops produced.
BusStatus MemoryBus::read32(const AccessContext& ctx, Addr addr,
                            std::uint32_t& out) {
  std::uint8_t bytes[4];
  const BusStatus s = read_block(ctx, addr, bytes);
  if (s == BusStatus::kOk) out = crypto::load_le32(bytes);
  return s;
}

BusStatus MemoryBus::write32(const AccessContext& ctx, Addr addr,
                             std::uint32_t value) {
  std::uint8_t bytes[4];
  crypto::store_le32(bytes, value);
  return write_block(ctx, addr, bytes);
}

BusStatus MemoryBus::read64(const AccessContext& ctx, Addr addr,
                            std::uint64_t& out) {
  std::uint8_t bytes[8];
  const BusStatus s = read_block(ctx, addr, bytes);
  if (s == BusStatus::kOk) out = crypto::load_le64(bytes);
  return s;
}

BusStatus MemoryBus::write64(const AccessContext& ctx, Addr addr,
                             std::uint64_t value) {
  std::uint8_t bytes[8];
  crypto::store_le64(bytes, value);
  return write_block(ctx, addr, bytes);
}

BusStatus MemoryBus::read_block_bytewise(const AccessContext& ctx, Addr addr,
                                         std::span<std::uint8_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    const BusStatus s = read8(ctx, addr + static_cast<Addr>(i), out[i]);
    if (s != BusStatus::kOk) return s;
  }
  return BusStatus::kOk;
}

BusStatus MemoryBus::write_block_bytewise(const AccessContext& ctx,
                                          Addr addr, ByteView data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    const BusStatus s = write8(ctx, addr + static_cast<Addr>(i), data[i]);
    if (s != BusStatus::kOk) return s;
  }
  return BusStatus::kOk;
}

Addr MemoryBus::admitted_window_end(const AccessContext& ctx,
                                    AccessType type, Addr addr,
                                    Addr limit) const {
  if (controller_ == nullptr || ctx.pc == kHardwarePc) return limit;
  const AccessWindow w = controller_->allows_window(ctx, type, addr, limit);
  return w.allowed ? w.end : 0;
}

// The bulk fast path walks the request as a sequence of maximal windows:
// each window lies in one region and carries one access-control verdict,
// so the per-byte region find + EA-MPU rule scan collapses to one lookup
// per window and storage bytes move by memcpy. Semantics are identical
// to the per-byte reference path: the transfer stops at the first
// failing byte, exactly one fault is logged for it (with its address),
// and earlier bytes stay transferred.
BusStatus MemoryBus::read_block(const AccessContext& ctx, Addr addr,
                                std::span<std::uint8_t> out) {
  if (!bulk_enabled_) return read_block_bytewise(ctx, addr, out);
  std::size_t done = 0;
  while (done < out.size()) {
    const Addr a = addr + static_cast<Addr>(done);
    Region* region = find(a);
    if (region == nullptr) {
      record_fault(ctx, a, AccessType::kRead, BusStatus::kUnmapped);
      return BusStatus::kUnmapped;
    }
    // 64-bit arithmetic: a + remaining may pass the top of the address
    // space; the region end (<= 2^32 - 1) clamps it back into range.
    const Addr span_limit = static_cast<Addr>(std::min<std::uint64_t>(
        region->info.range.end,
        static_cast<std::uint64_t>(a) + (out.size() - done)));
    const Addr span_end =
        admitted_window_end(ctx, AccessType::kRead, a, span_limit);
    if (span_end == 0) {
      record_fault(ctx, a, AccessType::kRead, BusStatus::kDenied);
      return BusStatus::kDenied;
    }
    const std::size_t n = span_end - a;
    const Addr offset = a - region->info.range.begin;
    if (region->device != nullptr) {
      // MMIO reads stay per byte — device registers may be stateful.
      for (std::size_t i = 0; i < n; ++i) {
        out[done + i] = region->device->read(offset + static_cast<Addr>(i));
      }
    } else {
      // Copy page by page; absent pages deliver the fill byte without
      // being materialized (reads never allocate).
      std::size_t i = 0;
      while (i < n) {
        const std::size_t off = static_cast<std::size_t>(offset) + i;
        const std::size_t in_page = off % kPageSize;
        const std::size_t chunk =
            std::min<std::size_t>(n - i, kPageSize - in_page);
        const Bytes* page = region->page_at(off / kPageSize);
        if (page == nullptr) {
          std::memset(out.data() + done + i, region->fill, chunk);
        } else {
          std::memcpy(out.data() + done + i, page->data() + in_page, chunk);
        }
        i += chunk;
      }
    }
    done += n;
  }
  return BusStatus::kOk;
}

BusStatus MemoryBus::write_block(const AccessContext& ctx, Addr addr,
                                 ByteView data) {
  if (!bulk_enabled_) return write_block_bytewise(ctx, addr, data);
  std::size_t done = 0;
  while (done < data.size()) {
    const Addr a = addr + static_cast<Addr>(done);
    Region* region = find(a);
    if (region == nullptr) {
      record_fault(ctx, a, AccessType::kWrite, BusStatus::kUnmapped);
      return BusStatus::kUnmapped;
    }
    // ROM rejects before the access controller is consulted, exactly as
    // in access8.
    if (region->info.kind == MemoryKind::kRom) {
      record_fault(ctx, a, AccessType::kWrite, BusStatus::kReadOnly);
      return BusStatus::kReadOnly;
    }
    const Addr span_limit = static_cast<Addr>(std::min<std::uint64_t>(
        region->info.range.end,
        static_cast<std::uint64_t>(a) + (data.size() - done)));
    const Addr span_end =
        admitted_window_end(ctx, AccessType::kWrite, a, span_limit);
    if (span_end == 0) {
      record_fault(ctx, a, AccessType::kWrite, BusStatus::kDenied);
      return BusStatus::kDenied;
    }
    const std::size_t n = span_end - a;
    const Addr offset = a - region->info.range.begin;
    if (region->device != nullptr) {
      // MMIO writes stay per byte: a read-only register faults at its
      // own address, with the earlier bytes already delivered.
      for (std::size_t i = 0; i < n; ++i) {
        if (!region->device->write(offset + static_cast<Addr>(i),
                                   data[done + i])) {
          record_fault(ctx, a + static_cast<Addr>(i), AccessType::kWrite,
                       BusStatus::kReadOnly);
          return BusStatus::kReadOnly;
        }
      }
    } else if (region->info.kind == MemoryKind::kFlash) {
      // NOR program semantics per byte (clear bits only), without the
      // per-byte region/rule lookups.
      std::size_t i = 0;
      while (i < n) {
        const std::size_t off = static_cast<std::size_t>(offset) + i;
        const std::size_t in_page = off % kPageSize;
        const std::size_t chunk =
            std::min<std::size_t>(n - i, kPageSize - in_page);
        const std::size_t p = off / kPageSize;
        const std::uint8_t* src = data.data() + done + i;
        // Same fill-skip as access8: programming bytes that keep the
        // erased pattern leaves the page absent but still dirties it.
        const bool keeps_fill =
            region->page_absent(p) &&
            std::all_of(src, src + chunk, [&](std::uint8_t v) {
              return static_cast<std::uint8_t>(region->fill & v) ==
                     region->fill;
            });
        if (!keeps_fill) {
          std::uint8_t* dst = region->touch_page(p).data() + in_page;
          for (std::size_t j = 0; j < chunk; ++j) {
            dst[j] = static_cast<std::uint8_t>(dst[j] & src[j]);
          }
        }
        mark_page_dirty(*region, p);
        i += chunk;
      }
    } else {
      std::size_t i = 0;
      while (i < n) {
        const std::size_t off = static_cast<std::size_t>(offset) + i;
        const std::size_t in_page = off % kPageSize;
        const std::size_t chunk =
            std::min<std::size_t>(n - i, kPageSize - in_page);
        const std::size_t p = off / kPageSize;
        const std::uint8_t* src = data.data() + done + i;
        const bool keeps_fill =
            region->page_absent(p) &&
            std::all_of(src, src + chunk,
                        [&](std::uint8_t v) { return v == region->fill; });
        if (!keeps_fill) {
          std::memcpy(region->touch_page(p).data() + in_page, src, chunk);
        }
        mark_page_dirty(*region, p);
        i += chunk;
      }
    }
    done += n;
  }
  return BusStatus::kOk;
}

BusStatus MemoryBus::erase_flash_block(const AccessContext& ctx,
                                       Addr addr) {
  Region* region = find(addr);
  BusStatus status = BusStatus::kOk;
  if (region == nullptr) {
    status = BusStatus::kUnmapped;
  } else if (region->info.kind != MemoryKind::kFlash) {
    status = BusStatus::kReadOnly;
  }
  Addr block_begin = 0;
  Addr block_end = 0;
  if (status == BusStatus::kOk) {
    // Block boundaries are relative to the region base.
    const Addr offset = addr - region->info.range.begin;
    block_begin = region->info.range.begin +
                  (offset / kFlashBlockSize) * kFlashBlockSize;
    block_end = std::min(block_begin + kFlashBlockSize,
                         region->info.range.end);
    if (controller_ != nullptr && ctx.pc != kHardwarePc) {
      if (bulk_enabled_) {
        // Access control per verdict window: any denied byte lies at the
        // start of some denied window, so walking window ends finds it.
        for (Addr a = block_begin; a < block_end;) {
          const AccessWindow w = controller_->allows_window(
              ctx, AccessType::kWrite, a, block_end);
          if (!w.allowed) {
            status = BusStatus::kDenied;
            break;
          }
          a = w.end;
        }
      } else {
        for (Addr a = block_begin; a < block_end; ++a) {
          if (!controller_->allows(ctx, AccessType::kWrite, a)) {
            status = BusStatus::kDenied;
            break;
          }
        }
      }
    }
  }
  if (status != BusStatus::kOk) {
    record_fault(ctx, addr, AccessType::kWrite, status);
    return status;
  }
  // kPageSize == kFlashBlockSize and both are relative to the region
  // base, so the erased block is exactly one page: drop the page and let
  // the fill byte (0xff) stand in for the erased contents.
  const std::size_t p =
      (block_begin - region->info.range.begin) / kPageSize;
  region->drop_page(p);
  // An erase mutates storage like any write: the page dirties even when
  // it was already erased (absent).
  mark_page_dirty(*region, p);
  return BusStatus::kOk;
}

void MemoryBus::mark_page_dirty(Region& region, std::size_t p) {
  std::uint64_t& word = region.dirty[p >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (p & 63);
  if ((word & bit) == 0) {
    word |= bit;
    ++dirty_generation_;
  }
}

bool MemoryBus::page_dirty(Addr addr) const {
  const Region* region = find(addr);
  if (region == nullptr || region->device != nullptr) return false;
  return region->page_is_dirty((addr - region->info.range.begin) /
                               kPageSize);
}

std::size_t MemoryBus::dirty_page_count() const {
  std::size_t total = 0;
  for (const auto& r : regions_) {
    for (const std::uint64_t word : r->dirty) {
      total += static_cast<std::size_t>(std::popcount(word));
    }
  }
  return total;
}

BusStatus MemoryBus::clear_dirty_page(const AccessContext& ctx, Addr addr) {
  Region* region = find(addr);
  if (region == nullptr || region->device != nullptr) {
    record_fault(ctx, addr, AccessType::kWrite, BusStatus::kUnmapped);
    return BusStatus::kUnmapped;
  }
  if (ctx.pc != kHardwarePc && !dirty_authority_.empty() &&
      !dirty_authority_.contains(ctx.pc)) {
    record_fault(ctx, addr, AccessType::kWrite, BusStatus::kDenied);
    return BusStatus::kDenied;
  }
  const std::size_t p = (addr - region->info.range.begin) / kPageSize;
  region->dirty[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
  return BusStatus::kOk;
}

void MemoryBus::load_initial(Addr addr, ByteView data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const Addr a = addr + static_cast<Addr>(done);
    Region* region = find(a);
    if (region == nullptr || region->device != nullptr) {
      throw std::invalid_argument(
          "MemoryBus::load_initial: target not storage-backed");
    }
    const Addr offset = a - region->info.range.begin;
    const std::size_t n = std::min<std::size_t>(
        data.size() - done, region->info.range.size() - offset);
    std::size_t i = 0;
    while (i < n) {
      const std::size_t off = static_cast<std::size_t>(offset) + i;
      const std::size_t in_page = off % kPageSize;
      const std::size_t chunk =
          std::min<std::size_t>(n - i, kPageSize - in_page);
      std::memcpy(region->touch_page(off / kPageSize).data() + in_page,
                  data.data() + done + i, chunk);
      i += chunk;
    }
    done += n;
  }
}

bool MemoryBus::load_initial_shared(Addr page_base,
                                    const std::shared_ptr<Bytes>& page) {
  Region* region = find(page_base);
  if (region == nullptr || region->device != nullptr) return false;
  const Addr offset = page_base - region->info.range.begin;
  if (offset % kPageSize != 0) return false;
  const std::size_t p = offset / kPageSize;
  if (!region->page_absent(p)) return false;
  if (page == nullptr || page->size() != region->page_len(p)) return false;
  region->page_index[p] = static_cast<std::uint32_t>(region->store.size());
  region->store.push_back(page);
  region->store_page.push_back(static_cast<std::uint32_t>(p));
  return true;
}

std::size_t MemoryBus::resident_bytes() const {
  std::size_t total = 0;
  for (const auto& r : regions_) {
    for (const auto& page : r->store) total += page->size();
  }
  return total;
}

std::size_t MemoryBus::shared_resident_bytes() const {
  std::size_t total = 0;
  for (const auto& r : regions_) {
    for (const auto& page : r->store) {
      if (page.use_count() > 1) total += page->size();
    }
  }
  return total;
}

std::size_t MemoryBus::page_table_bytes() const {
  std::size_t total = 0;
  for (const auto& r : regions_) {
    total += r->page_index.capacity() * sizeof(std::uint32_t) +
             r->store.capacity() * sizeof(std::shared_ptr<Bytes>) +
             r->store_page.capacity() * sizeof(std::uint32_t) +
             r->dirty.capacity() * sizeof(std::uint64_t);
  }
  return total;
}

}  // namespace ratt::hw
