#include "ratt/hw/bus.hpp"

#include <algorithm>
#include <stdexcept>

namespace ratt::hw {

std::string to_string(MemoryKind kind) {
  switch (kind) {
    case MemoryKind::kRom:
      return "ROM";
    case MemoryKind::kRam:
      return "RAM";
    case MemoryKind::kFlash:
      return "Flash";
    case MemoryKind::kMmio:
      return "MMIO";
  }
  return "unknown";
}

std::string to_string(BusStatus status) {
  switch (status) {
    case BusStatus::kOk:
      return "ok";
    case BusStatus::kUnmapped:
      return "unmapped";
    case BusStatus::kReadOnly:
      return "read-only";
    case BusStatus::kDenied:
      return "denied";
  }
  return "unknown";
}

void MemoryBus::check_overlap(const AddrRange& range,
                              const std::string& name) const {
  if (range.empty()) {
    throw std::invalid_argument("MemoryBus: empty range for region " + name);
  }
  for (const auto& r : regions_) {
    if (r->info.range.overlaps(range)) {
      throw std::invalid_argument("MemoryBus: region " + name +
                                  " overlaps " + r->info.name);
    }
  }
}

void MemoryBus::map_storage(std::string name, MemoryKind kind,
                            AddrRange range) {
  if (kind == MemoryKind::kMmio) {
    throw std::invalid_argument("MemoryBus: use map_device for MMIO");
  }
  check_overlap(range, name);
  auto region = std::make_unique<Region>();
  region->info = RegionInfo{std::move(name), kind, range};
  // Flash powers up erased (0xff); RAM and ROM are zeroed.
  region->storage.assign(range.size(),
                         kind == MemoryKind::kFlash ? 0xff : 0x00);
  regions_.push_back(std::move(region));
}

void MemoryBus::map_device(std::string name, AddrRange range,
                           MmioDevice& device) {
  check_overlap(range, name);
  auto region = std::make_unique<Region>();
  region->info = RegionInfo{std::move(name), MemoryKind::kMmio, range};
  region->device = &device;
  regions_.push_back(std::move(region));
}

MemoryBus::Region* MemoryBus::find(Addr addr) {
  for (auto& r : regions_) {
    if (r->info.range.contains(addr)) return r.get();
  }
  return nullptr;
}

const MemoryBus::Region* MemoryBus::find(Addr addr) const {
  for (const auto& r : regions_) {
    if (r->info.range.contains(addr)) return r.get();
  }
  return nullptr;
}

const MemoryBus::RegionInfo* MemoryBus::region_at(Addr addr) const {
  const Region* r = find(addr);
  return r != nullptr ? &r->info : nullptr;
}

std::vector<MemoryBus::RegionInfo> MemoryBus::regions() const {
  std::vector<RegionInfo> out;
  out.reserve(regions_.size());
  for (const auto& r : regions_) {
    out.push_back(r->info);
  }
  return out;
}

BusStatus MemoryBus::access8(const AccessContext& ctx, AccessType type,
                             Addr addr, std::uint8_t* read_out,
                             std::uint8_t write_value) {
  Region* region = find(addr);
  BusStatus status = BusStatus::kOk;
  if (region == nullptr) {
    status = BusStatus::kUnmapped;
  } else if (type == AccessType::kWrite &&
             region->info.kind == MemoryKind::kRom) {
    status = BusStatus::kReadOnly;
  } else if (controller_ != nullptr && ctx.pc != kHardwarePc &&
             !controller_->allows(ctx, type, addr)) {
    status = BusStatus::kDenied;
  }

  if (status == BusStatus::kOk) {
    const Addr offset = addr - region->info.range.begin;
    if (region->device != nullptr) {
      if (type == AccessType::kRead) {
        *read_out = region->device->read(offset);
      } else if (!region->device->write(offset, write_value)) {
        status = BusStatus::kReadOnly;
      }
    } else {
      if (type == AccessType::kRead) {
        *read_out = region->storage[offset];
      } else if (region->info.kind == MemoryKind::kFlash) {
        // NOR program: can only clear bits; setting bits needs an erase.
        region->storage[offset] =
            static_cast<std::uint8_t>(region->storage[offset] & write_value);
      } else {
        region->storage[offset] = write_value;
      }
    }
  }

  if (status != BusStatus::kOk) {
    faults_.push_back(BusFault{ctx.pc, addr, type, status});
  }
  return status;
}

BusStatus MemoryBus::read8(const AccessContext& ctx, Addr addr,
                           std::uint8_t& out) {
  return access8(ctx, AccessType::kRead, addr, &out, 0);
}

BusStatus MemoryBus::write8(const AccessContext& ctx, Addr addr,
                            std::uint8_t value) {
  return access8(ctx, AccessType::kWrite, addr, nullptr, value);
}

BusStatus MemoryBus::read32(const AccessContext& ctx, Addr addr,
                            std::uint32_t& out) {
  std::uint8_t bytes[4];
  for (Addr i = 0; i < 4; ++i) {
    const BusStatus s = read8(ctx, addr + i, bytes[i]);
    if (s != BusStatus::kOk) return s;
  }
  out = crypto::load_le32(bytes);
  return BusStatus::kOk;
}

BusStatus MemoryBus::write32(const AccessContext& ctx, Addr addr,
                             std::uint32_t value) {
  std::uint8_t bytes[4];
  crypto::store_le32(bytes, value);
  for (Addr i = 0; i < 4; ++i) {
    const BusStatus s = write8(ctx, addr + i, bytes[i]);
    if (s != BusStatus::kOk) return s;
  }
  return BusStatus::kOk;
}

BusStatus MemoryBus::read64(const AccessContext& ctx, Addr addr,
                            std::uint64_t& out) {
  std::uint8_t bytes[8];
  for (Addr i = 0; i < 8; ++i) {
    const BusStatus s = read8(ctx, addr + i, bytes[i]);
    if (s != BusStatus::kOk) return s;
  }
  out = crypto::load_le64(bytes);
  return BusStatus::kOk;
}

BusStatus MemoryBus::write64(const AccessContext& ctx, Addr addr,
                             std::uint64_t value) {
  std::uint8_t bytes[8];
  crypto::store_le64(bytes, value);
  for (Addr i = 0; i < 8; ++i) {
    const BusStatus s = write8(ctx, addr + i, bytes[i]);
    if (s != BusStatus::kOk) return s;
  }
  return BusStatus::kOk;
}

BusStatus MemoryBus::read_block(const AccessContext& ctx, Addr addr,
                                std::span<std::uint8_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    const BusStatus s = read8(ctx, addr + static_cast<Addr>(i), out[i]);
    if (s != BusStatus::kOk) return s;
  }
  return BusStatus::kOk;
}

BusStatus MemoryBus::write_block(const AccessContext& ctx, Addr addr,
                                 ByteView data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    const BusStatus s = write8(ctx, addr + static_cast<Addr>(i), data[i]);
    if (s != BusStatus::kOk) return s;
  }
  return BusStatus::kOk;
}

BusStatus MemoryBus::erase_flash_block(const AccessContext& ctx,
                                       Addr addr) {
  Region* region = find(addr);
  BusStatus status = BusStatus::kOk;
  if (region == nullptr) {
    status = BusStatus::kUnmapped;
  } else if (region->info.kind != MemoryKind::kFlash) {
    status = BusStatus::kReadOnly;
  }
  Addr block_begin = 0;
  Addr block_end = 0;
  if (status == BusStatus::kOk) {
    // Block boundaries are relative to the region base.
    const Addr offset = addr - region->info.range.begin;
    block_begin = region->info.range.begin +
                  (offset / kFlashBlockSize) * kFlashBlockSize;
    block_end = std::min(block_begin + kFlashBlockSize,
                         region->info.range.end);
    if (controller_ != nullptr && ctx.pc != kHardwarePc) {
      for (Addr a = block_begin; a < block_end; ++a) {
        if (!controller_->allows(ctx, AccessType::kWrite, a)) {
          status = BusStatus::kDenied;
          break;
        }
      }
    }
  }
  if (status != BusStatus::kOk) {
    faults_.push_back(BusFault{ctx.pc, addr, AccessType::kWrite, status});
    return status;
  }
  for (Addr a = block_begin; a < block_end; ++a) {
    region->storage[a - region->info.range.begin] = 0xff;
  }
  return BusStatus::kOk;
}

void MemoryBus::load_initial(Addr addr, ByteView data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    Region* region = find(addr + static_cast<Addr>(i));
    if (region == nullptr || region->device != nullptr) {
      throw std::invalid_argument(
          "MemoryBus::load_initial: target not storage-backed");
    }
    region->storage[addr + i - region->info.range.begin] = data[i];
  }
}

}  // namespace ratt::hw
