#include "ratt/hw/clock.hpp"

namespace ratt::hw {

MmioClockSource::MmioClockSource(Mcu& mcu, Addr base, unsigned width_bytes,
                                 std::string label)
    : mcu_(&mcu), base_(base), width_bytes_(width_bytes),
      label_(std::move(label)) {}

std::optional<std::uint64_t> MmioClockSource::read_ticks(
    const AccessContext& reader) {
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width_bytes_; ++i) {
    std::uint8_t b = 0;
    if (mcu_->bus().read8(reader, base_ + i, b) != BusStatus::kOk) {
      return std::nullopt;
    }
    value |= std::uint64_t{b} << (8 * i);
  }
  return value;
}

CodeClock::CodeClock(Mcu& mcu, AddrRange code, Addr clock_msb_addr)
    : SoftwareComponent(mcu, "code-clock", code),
      msb_addr_(clock_msb_addr) {}

void CodeClock::on_wrap_interrupt() {
  std::uint32_t msb = 0;
  if (read32(msb_addr_, msb) != BusStatus::kOk) {
    ++failed_updates_;
    return;
  }
  if (write32(msb_addr_, msb + 1) != BusStatus::kOk) {
    ++failed_updates_;
  }
}

std::optional<std::uint32_t> CodeClock::read_msb() const {
  std::uint32_t msb = 0;
  if (read32(msb_addr_, msb) != BusStatus::kOk) {
    return std::nullopt;
  }
  return msb;
}

SwClockSource::SwClockSource(Mcu& mcu, CodeClock& code_clock, Addr lsb_base,
                             unsigned lsb_bits)
    : mcu_(&mcu),
      code_clock_(&code_clock),
      lsb_base_(lsb_base),
      lsb_bits_(lsb_bits) {}

std::optional<std::uint64_t> SwClockSource::read_ticks(
    const AccessContext& reader) {
  // Clock_LSB is an open MMIO register: read with the caller's context.
  std::uint32_t lsb = 0;
  std::uint64_t lsb_value = 0;
  for (unsigned i = 0; i < (lsb_bits_ + 7) / 8; ++i) {
    std::uint8_t b = 0;
    if (mcu_->bus().read8(reader, lsb_base_ + i, b) != BusStatus::kOk) {
      return std::nullopt;
    }
    lsb_value |= std::uint64_t{b} << (8 * i);
  }
  lsb = static_cast<std::uint32_t>(lsb_value);

  // Clock_MSB is EA-MPU-protected; obtain it through Code_Clock.
  const auto msb = code_clock_->read_msb();
  if (!msb.has_value()) return std::nullopt;
  return (std::uint64_t{*msb} << lsb_bits_) | lsb;
}

}  // namespace ratt::hw
