// Analytic hardware cost model reproducing Table 3 and the Sec. 6.3
// overhead evaluation.
//
// Units are the paper's: flip-flop registers and FPGA look-up tables
// (LUTs). The EA-MPU's cost is parametric in the number of configurable
// rules #r (278 + 116*#r registers, 417 + 182*#r LUTs); every protected
// asset adds rules, and the clock designs add direct register/LUT cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ratt::cost {

/// Cost contribution of one component (Table 3 row-set).
struct Component {
  std::string name;
  std::uint32_t eampu_rules = 0;  // rules the component consumes
  std::uint32_t registers = 0;    // direct register cost
  std::uint32_t luts = 0;         // direct LUT cost
};

// --- Table 3 component library -------------------------------------------
Component siskiyou_peak();       // the base core: 5528 regs, 14361 LUTs
Component attest_key();          // K_Attest protection: 1 rule
Component counter_r();           // counter_R protection: 1 rule
Component eampu_lockdown();      // the EA-MPU's own lockdown rule
Component clock_64bit();         // 64-bit counter: 64 regs, 64 LUTs
Component clock_32bit();         // 32-bit counter: 32 regs, 32 LUTs
/// SW-clock (Fig. 1b): no dedicated hardware; Sec. 6.3 charges three
/// EA-MPU rules (IDT lockdown, Clock_MSB protection, interrupt-mask
/// lockdown). Table 3's column prints 2 — the in-text evaluation, which
/// we follow, uses 3.
Component sw_clock();
/// The clock designs other than SW-clock also consume one EA-MPU rule in
/// the Sec. 6.3 accounting (write-lockdown of the clock register).
Component clock_protection_rule();

/// EA-MPU cost for a configuration with `rules` configurable rules
/// (TrustLite formula, Table 3).
std::uint32_t eampu_registers(std::uint32_t rules);
std::uint32_t eampu_luts(std::uint32_t rules);

/// Totals for a composed system.
struct SystemCost {
  std::string name;
  std::uint32_t rules = 0;       // total EA-MPU rules consumed
  std::uint32_t registers = 0;   // incl. EA-MPU(rules) + direct costs
  std::uint32_t luts = 0;
};

/// Sum the components, then add the EA-MPU sized for the rule total.
SystemCost compose(std::string name, const std::vector<Component>& parts);

// --- Prebuilt systems from Sec. 6.3 ---------------------------------------
/// Base-line: Siskiyou Peak + EA-MPU with 2 rules (lockdown + K_Attest):
/// 6038 registers, 15142 LUTs.
SystemCost baseline();
/// Baseline + counter_R rule + clock design.
SystemCost with_clock_64bit();
SystemCost with_clock_32bit();
SystemCost with_sw_clock();

/// Overhead of `system` relative to `base` (Sec. 6.3 percentages).
struct Overhead {
  std::uint32_t extra_registers = 0;
  std::uint32_t extra_luts = 0;
  double register_pct = 0.0;  // extra_registers / base.registers * 100
  double lut_pct = 0.0;
};
Overhead overhead_vs(const SystemCost& system, const SystemCost& base);

// --- Clock wrap-around arithmetic (Sec. 6.3) -------------------------------
/// Seconds until a `bits`-wide counter clocked at `hz`/`divider` wraps.
double wraparound_seconds(unsigned bits, double hz, std::uint64_t divider);
/// Clock resolution in milliseconds.
double resolution_ms(double hz, std::uint64_t divider);
/// Convenience: seconds -> years (Julian).
double seconds_to_years(double seconds);

}  // namespace ratt::cost
