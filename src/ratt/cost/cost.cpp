#include "ratt/cost/cost.hpp"

#include <cmath>

namespace ratt::cost {

Component siskiyou_peak() { return {"siskiyou-peak", 0, 5528, 14361}; }
Component attest_key() { return {"attest-key", 1, 0, 0}; }
Component counter_r() { return {"counter-r", 1, 0, 0}; }
Component eampu_lockdown() { return {"eampu-lockdown", 1, 0, 0}; }
Component clock_64bit() { return {"clock-64bit", 0, 64, 64}; }
Component clock_32bit() { return {"clock-32bit", 0, 32, 32}; }
Component sw_clock() { return {"sw-clock", 3, 0, 0}; }
Component clock_protection_rule() { return {"clock-rule", 1, 0, 0}; }

std::uint32_t eampu_registers(std::uint32_t rules) {
  return 278 + 116 * rules;
}

std::uint32_t eampu_luts(std::uint32_t rules) { return 417 + 182 * rules; }

SystemCost compose(std::string name, const std::vector<Component>& parts) {
  SystemCost cost;
  cost.name = std::move(name);
  for (const auto& part : parts) {
    cost.rules += part.eampu_rules;
    cost.registers += part.registers;
    cost.luts += part.luts;
  }
  cost.registers += eampu_registers(cost.rules);
  cost.luts += eampu_luts(cost.rules);
  return cost;
}

SystemCost baseline() {
  // Sec. 6.3: "the base-line needs an EA-MPU with at least two rules: one
  // to lock down the EA-MPU itself, and the other to protect K_Attest" —
  // 5528 + 278 + 116*2 = 6038 registers; 14361 + 417 + 182*2 = 15142 LUTs.
  return compose("baseline",
                 {siskiyou_peak(), eampu_lockdown(), attest_key()});
}

SystemCost with_clock_64bit() {
  // "we need an additional EA-MPU rule, plus the direct cost of the
  // clock: 116 + 64 = 180 registers and 182 + 64 = 246 LUTs".
  return compose("64-bit clock", {siskiyou_peak(), eampu_lockdown(),
                                  attest_key(), clock_protection_rule(),
                                  clock_64bit()});
}

SystemCost with_clock_32bit() {
  return compose("32-bit clock + divider",
                 {siskiyou_peak(), eampu_lockdown(), attest_key(),
                  clock_protection_rule(), clock_32bit()});
}

SystemCost with_sw_clock() {
  // "three new EA-MPU rules: 116*3 = 348 registers and 182*3 = 546 LUTs".
  return compose("SW-clock", {siskiyou_peak(), eampu_lockdown(),
                              attest_key(), sw_clock()});
}

Overhead overhead_vs(const SystemCost& system, const SystemCost& base) {
  Overhead o;
  o.extra_registers = system.registers - base.registers;
  o.extra_luts = system.luts - base.luts;
  o.register_pct =
      100.0 * static_cast<double>(o.extra_registers) / base.registers;
  o.lut_pct = 100.0 * static_cast<double>(o.extra_luts) / base.luts;
  return o;
}

double wraparound_seconds(unsigned bits, double hz, std::uint64_t divider) {
  // 2^bits ticks, one tick every divider cycles.
  return std::ldexp(1.0, static_cast<int>(bits)) *
         static_cast<double>(divider) / hz;
}

double resolution_ms(double hz, std::uint64_t divider) {
  return 1000.0 * static_cast<double>(divider) / hz;
}

double seconds_to_years(double seconds) {
  // 365-day years: this is what reproduces the paper's "24,372.6 years"
  // for 2^64 cycles at 24 MHz.
  return seconds / (365.0 * 24 * 3600);
}

}  // namespace ratt::cost
