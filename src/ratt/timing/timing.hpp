// Device timing model calibrated with Table 1 of the paper: measured
// per-primitive costs (milliseconds) on an Intel Siskiyou Peak at 24 MHz.
//
// The simulator executes crypto natively on the host; this model converts
// each protocol step into the *device* time it would have cost the prover,
// which is what every DoS argument in the paper is about. Times scale
// inversely with the configured clock rate relative to the 24 MHz
// reference.
#pragma once

#include <cstdint>

#include "ratt/crypto/mac.hpp"

namespace ratt::timing {

/// Table 1 constants, in milliseconds at the 24 MHz reference clock.
struct Table1 {
  static constexpr double kRefHz = 24e6;

  // SHA1-HMAC: fixed setup + per-64-byte-block cost.
  static constexpr double kHmacFixMs = 0.340;
  static constexpr double kHmacPerBlockMs = 0.092;
  static constexpr std::size_t kHmacBlockBytes = 64;

  // AES-128 (CBC): key expansion + per-16-byte-block encrypt/decrypt.
  static constexpr double kAesKeyExpMs = 0.074;
  static constexpr double kAesEncPerBlockMs = 0.288;
  static constexpr double kAesDecPerBlockMs = 0.570;
  static constexpr std::size_t kAesBlockBytes = 16;

  // Speck 64/128 (CBC): key expansion + per-8-byte-block costs.
  static constexpr double kSpeckKeyExpMs = 0.016;
  static constexpr double kSpeckEncPerBlockMs = 0.017;
  static constexpr double kSpeckDecPerBlockMs = 0.015;
  static constexpr std::size_t kSpeckBlockBytes = 8;

  // ECC (secp160r1) signatures.
  static constexpr double kEccSignMs = 183.464;
  static constexpr double kEccVerifyMs = 170.907;
};

/// Converts protocol steps into prover-side time at a configurable clock.
class DeviceTimingModel {
 public:
  explicit DeviceTimingModel(double clock_hz = Table1::kRefHz);

  double clock_hz() const { return clock_hz_; }

  /// MAC computation over `message_bytes` (fix/key-exp excluded unless
  /// `include_setup`; the paper assumes key expansion is precomputed for
  /// the block ciphers but always pays HMAC's fixed cost).
  double mac_ms(crypto::MacAlgorithm alg, std::size_t message_bytes,
                bool include_setup = true) const;

  /// Cost of authenticating one attestation request (Sec. 4.1): a MAC over
  /// a single block of the respective primitive.
  double request_auth_ms(crypto::MacAlgorithm alg) const;

  /// ECDSA request authentication (ruled out in Sec. 4.1 as itself a DoS).
  double ecdsa_sign_ms() const;
  double ecdsa_verify_ms() const;

  /// The headline prover cost (Sec. 3.1): MAC over the device's writable
  /// memory. 512 KB of RAM at 24 MHz gives ~754 ms with HMAC-SHA1.
  double memory_attestation_ms(crypto::MacAlgorithm alg,
                               std::size_t memory_bytes) const;

  /// ms -> device cycles at this model's clock.
  std::uint64_t cycles(double ms) const;

 private:
  double scaled(double ms_at_ref) const {
    return ms_at_ref * (Table1::kRefHz / clock_hz_);
  }

  double clock_hz_;
};

/// Energy accounting for the DoS-impact experiments: gratuitous
/// attestation "wastes energy (depletes batteries)" (Sec. 1, 3.1).
class EnergyModel {
 public:
  /// Defaults approximate a low-end MCU: ~0.3 mW/MHz active, 3 uW sleep.
  EnergyModel(double active_mw = 7.2, double sleep_mw = 0.003)
      : active_mw_(active_mw), sleep_mw_(sleep_mw) {}

  double active_mw() const { return active_mw_; }
  double sleep_mw() const { return sleep_mw_; }

  /// Energy (millijoules) for `ms` of active computation / sleep.
  double active_mj(double ms) const { return active_mw_ * ms / 1000.0; }
  double sleep_mj(double ms) const { return sleep_mw_ * ms / 1000.0; }

 private:
  double active_mw_;
  double sleep_mw_;
};

/// A coin-cell-style battery drained by prover activity.
class Battery {
 public:
  /// Default: CR2032-class, 225 mAh at 3 V ~ 2430 J = 2.43e6 mJ.
  explicit Battery(double capacity_mj = 2.43e6)
      : capacity_mj_(capacity_mj), remaining_mj_(capacity_mj) {}

  double capacity_mj() const { return capacity_mj_; }
  double remaining_mj() const { return remaining_mj_; }
  double remaining_fraction() const { return remaining_mj_ / capacity_mj_; }
  bool depleted() const { return remaining_mj_ <= 0.0; }

  /// Drain `mj`; clamps at zero.
  void drain(double mj);

 private:
  double capacity_mj_;
  double remaining_mj_;
};

}  // namespace ratt::timing
