#include "ratt/timing/timing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ratt::timing {

DeviceTimingModel::DeviceTimingModel(double clock_hz) : clock_hz_(clock_hz) {
  if (clock_hz <= 0) {
    throw std::invalid_argument("DeviceTimingModel: clock_hz must be > 0");
  }
}

namespace {

std::size_t blocks(std::size_t bytes, std::size_t block_size) {
  return (bytes + block_size - 1) / block_size;
}

}  // namespace

double DeviceTimingModel::mac_ms(crypto::MacAlgorithm alg,
                                 std::size_t message_bytes,
                                 bool include_setup) const {
  switch (alg) {
    case crypto::MacAlgorithm::kHmacSha1: {
      // HMAC's "Fix" covers padding/finalization and is always paid.
      const double fix = Table1::kHmacFixMs;
      return scaled(fix + static_cast<double>(blocks(
                              message_bytes, Table1::kHmacBlockBytes)) *
                              Table1::kHmacPerBlockMs);
    }
    case crypto::MacAlgorithm::kAesCbcMac:
    case crypto::MacAlgorithm::kAesCmac: {
      const double setup = include_setup ? Table1::kAesKeyExpMs : 0.0;
      return scaled(setup + static_cast<double>(blocks(
                                message_bytes, Table1::kAesBlockBytes)) *
                                Table1::kAesEncPerBlockMs);
    }
    case crypto::MacAlgorithm::kSpeckCbcMac:
    case crypto::MacAlgorithm::kSpeckCmac: {
      const double setup = include_setup ? Table1::kSpeckKeyExpMs : 0.0;
      return scaled(setup + static_cast<double>(blocks(
                                message_bytes, Table1::kSpeckBlockBytes)) *
                                Table1::kSpeckEncPerBlockMs);
    }
  }
  throw std::invalid_argument("mac_ms: unknown algorithm");
}

double DeviceTimingModel::request_auth_ms(crypto::MacAlgorithm alg) const {
  // Sec. 4.1: one block of the respective primitive, key schedule
  // precomputed for the block ciphers. HMAC: 0.340 + 0.092 = 0.432 ms
  // (the paper rounds to 0.430); Speck: 0.017 ms (the paper quotes
  // 0.015 ms, its per-block *decrypt* figure).
  switch (alg) {
    case crypto::MacAlgorithm::kHmacSha1:
      return scaled(Table1::kHmacFixMs + Table1::kHmacPerBlockMs);
    case crypto::MacAlgorithm::kAesCbcMac:
    case crypto::MacAlgorithm::kAesCmac:
      return scaled(Table1::kAesEncPerBlockMs);
    case crypto::MacAlgorithm::kSpeckCbcMac:
    case crypto::MacAlgorithm::kSpeckCmac:
      return scaled(Table1::kSpeckEncPerBlockMs);
  }
  throw std::invalid_argument("request_auth_ms: unknown algorithm");
}

double DeviceTimingModel::ecdsa_sign_ms() const {
  return scaled(Table1::kEccSignMs);
}

double DeviceTimingModel::ecdsa_verify_ms() const {
  return scaled(Table1::kEccVerifyMs);
}

double DeviceTimingModel::memory_attestation_ms(
    crypto::MacAlgorithm alg, std::size_t memory_bytes) const {
  // Sec. 3.1: (512 KB / 64 B) * per-block + fix = 754.004 ms for HMAC-SHA1
  // at the reference clock. Same formula as mac_ms with setup included.
  return mac_ms(alg, memory_bytes, /*include_setup=*/true);
}

std::uint64_t DeviceTimingModel::cycles(double ms) const {
  return static_cast<std::uint64_t>(std::llround(ms * clock_hz_ / 1000.0));
}

void Battery::drain(double mj) {
  remaining_mj_ = std::max(0.0, remaining_mj_ - mj);
}

}  // namespace ratt::timing
