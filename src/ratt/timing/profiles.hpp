// Named device profiles. The paper evaluates on Intel Siskiyou Peak at
// 24 MHz with 512 KB RAM and cites openMSP430 [11] as the other popular
// low-end platform with the same clock design; the profiles below let
// every timing-derived experiment be re-run for other device classes
// (costs scale with 1/clock; memory MAC scales with RAM size).
#pragma once

#include <string>
#include <vector>

#include "ratt/timing/timing.hpp"

namespace ratt::timing {

struct DeviceProfile {
  std::string name;
  double clock_hz = 0.0;
  std::size_t ram_bytes = 0;
  /// Typical active power at this clock (mW) for the energy model.
  double active_mw = 0.0;

  DeviceTimingModel timing_model() const {
    return DeviceTimingModel(clock_hz);
  }
  EnergyModel energy_model() const { return EnergyModel(active_mw); }
};

/// The paper's evaluation platform: 24 MHz, 512 KB RAM.
DeviceProfile siskiyou_peak();
/// openMSP430-class: 8 MHz, 16 KB RAM (the paper's "other popular
/// low-end MCU", Sec. 6.3 / [11]).
DeviceProfile msp430_class();
/// A modern Cortex-M0-class IoT node: 48 MHz, 64 KB RAM.
DeviceProfile cortex_m0_class();

std::vector<DeviceProfile> all_profiles();

}  // namespace ratt::timing
