#include "ratt/timing/profiles.hpp"

namespace ratt::timing {

DeviceProfile siskiyou_peak() {
  return DeviceProfile{"siskiyou-peak-24mhz", 24e6, 512 * 1024, 7.2};
}

DeviceProfile msp430_class() {
  return DeviceProfile{"msp430-class-8mhz", 8e6, 16 * 1024, 2.4};
}

DeviceProfile cortex_m0_class() {
  return DeviceProfile{"cortex-m0-class-48mhz", 48e6, 64 * 1024, 14.4};
}

std::vector<DeviceProfile> all_profiles() {
  return {siskiyou_peak(), msp430_class(), cortex_m0_class()};
}

}  // namespace ratt::timing
