#include "ratt/sim/dos.hpp"

#include <algorithm>

namespace ratt::sim {

void DosSimulator::observe_request(double now_ms,
                                   const attest::AttestOutcome& outcome) {
  if (!obs_.enabled()) return;
  const std::string klass =
      obs_.attack_label + ":" + attest::to_string(outcome.status);
  if (obs_.scoreboard != nullptr) {
    obs_.scoreboard->record(klass, outcome.device_ms, obs_.attacker_cost_ms);
  }
  if (obs_.registry != nullptr) {
    obs_.registry->counter("dos.requests").inc();
    obs_.registry->counter("dos.prover_ms").inc(outcome.device_ms);
    obs_.registry->counter("dos.attacker_ms").inc(obs_.attacker_cost_ms);
  }
  if (obs_.sink != nullptr) {
    obs::TraceRecord rec;
    rec.sim_time_ms = now_ms;
    rec.device_id = obs_.device_id;
    rec.kind = "dos.request";
    rec.outcome = klass;
    rec.prover_ms = outcome.device_ms;
    rec.energy_mj = obs_.power.active_mj(outcome.device_ms);
    rec.power_mw = outcome.device_ms > 0.0 ? obs_.power.active_mw : 0.0;
    obs_.sink->record(rec);
  }
}

DosReport DosSimulator::run(const std::vector<double>& request_times_ms,
                            const RequestSource& source,
                            double horizon_ms) {
  DosReport report;
  report.horizon_ms = horizon_ms;

  // busy_until: the device is occupied (task or attestation) before this.
  double busy_until = 0.0;
  double next_release = 0.0;
  std::size_t next_request = 0;
  // Device time accounted so far; the prover's clock must track the
  // simulation timeline (idle gaps included) or time-based policies
  // (timestamps, rate-limit windows) see a compressed clock.
  double device_time_ms = 0.0;
  const auto sync_device_time = [&](double now) {
    if (now > device_time_ms) {
      prover_->idle_ms(now - device_time_ms);
      device_time_ms = now;
    }
  };

  const auto account_energy = [&](double active_ms, double idle_ms) {
    const double mj =
        energy_.active_mj(active_ms) + energy_.sleep_mj(idle_ms);
    battery_.drain(mj);
    report.energy_mj += mj;
  };

  // Walk both timelines (task releases, request arrivals) in order.
  while (next_release < horizon_ms ||
         (next_request < request_times_ms.size() &&
          request_times_ms[next_request] < horizon_ms)) {
    const bool request_next =
        next_request < request_times_ms.size() &&
        request_times_ms[next_request] < horizon_ms &&
        (next_release >= horizon_ms ||
         request_times_ms[next_request] <= next_release);

    if (request_next) {
      const double arrival = request_times_ms[next_request++];
      ++report.requests_delivered;
      // The request is picked up once the device is free. Attestation is
      // uninterruptible from then on.
      const double start = std::max(arrival, busy_until);
      sync_device_time(start);
      const attest::AttestOutcome out = prover_->handle(source(start));
      device_time_ms += out.device_ms;  // handle() advanced the device
      observe_request(start, out);
      account_energy(out.device_ms, 0.0);
      report.attest_busy_ms += out.device_ms;
      if (out.status == attest::AttestStatus::kOk) {
        ++report.attestations_performed;
      } else {
        ++report.requests_rejected;
      }
      busy_until = start + out.device_ms;
      // Watchdog: an uninterruptible measurement longer than the timeout
      // means no task (and no kick) for that whole span — the device
      // resets, repeatedly if the span covers several timeouts, and pays
      // the reboot downtime on top.
      if (watchdog_.timeout_ms > 0.0 &&
          out.device_ms >= watchdog_.timeout_ms) {
        const auto resets = static_cast<std::uint64_t>(
            out.device_ms / watchdog_.timeout_ms);
        report.watchdog_resets += resets;
        const double downtime =
            static_cast<double>(resets) * watchdog_.reboot_ms;
        report.reboot_overhead_ms += downtime;
        busy_until += downtime;
        account_energy(downtime, 0.0);
      }
      continue;
    }

    // Task release.
    const double release = next_release;
    next_release += task_.period_ms;
    ++report.tasks_released;
    const double start = std::max(release, busy_until);
    // Implicit deadline: the instance must start before the next release.
    if (start >= release + task_.period_ms) {
      ++report.tasks_missed;
      continue;  // skipped entirely; device stays busy with whatever held it
    }
    ++report.tasks_completed;
    account_energy(task_.duration_ms, std::max(0.0, start - release));
    busy_until = start + task_.duration_ms;
    sync_device_time(busy_until);  // clock advances through the task
  }

  report.battery_fraction_used = 1.0 - battery_.remaining_fraction();
  return report;
}

DosReport DosSimulator::run_preemptive(
    const std::vector<double>& request_times_ms, const RequestSource& source,
    double horizon_ms, double chunk_ms) {
  DosReport report;
  report.horizon_ms = horizon_ms;

  double now = 0.0;
  double device_time_ms = 0.0;
  const auto sync_device_time = [&](double t) {
    if (t > device_time_ms) {
      prover_->idle_ms(t - device_time_ms);
      device_time_ms = t;
    }
  };
  const auto account_energy = [&](double active_ms, double idle_ms) {
    const double mj =
        energy_.active_mj(active_ms) + energy_.sleep_mj(idle_ms);
    battery_.drain(mj);
    report.energy_mj += mj;
  };

  double next_release = 0.0;
  std::size_t next_request = 0;
  std::vector<double> released_tasks;  // FIFO of release times
  double attest_remaining = 0.0;

  const auto release_tasks_until = [&](double t) {
    while (next_release <= t && next_release < horizon_ms) {
      released_tasks.push_back(next_release);
      ++report.tasks_released;
      next_release += task_.period_ms;
    }
  };

  for (;;) {
    release_tasks_until(now);
    const bool request_ready = next_request < request_times_ms.size() &&
                               request_times_ms[next_request] <= now;

    if (!released_tasks.empty()) {
      // Tasks preempt attestation at chunk boundaries.
      const double release = released_tasks.front();
      released_tasks.erase(released_tasks.begin());
      if (now >= release + task_.period_ms) {
        ++report.tasks_missed;
        continue;
      }
      ++report.tasks_completed;
      account_energy(task_.duration_ms, 0.0);
      now += task_.duration_ms;
      sync_device_time(now);
      continue;
    }

    if (attest_remaining > 0.0) {
      const double slice = (chunk_ms > 0.0)
                               ? std::min(chunk_ms, attest_remaining)
                               : attest_remaining;
      account_energy(slice, 0.0);
      now += slice;
      attest_remaining -= slice;
      continue;
    }

    if (request_ready) {
      ++next_request;
      ++report.requests_delivered;
      sync_device_time(now);
      const attest::AttestOutcome out = prover_->handle(source(now));
      device_time_ms += out.device_ms;
      observe_request(now, out);
      report.attest_busy_ms += out.device_ms;
      if (out.status == attest::AttestStatus::kOk) {
        ++report.attestations_performed;
        attest_remaining = out.device_ms;  // consumed in slices above
      } else {
        ++report.requests_rejected;
        account_energy(out.device_ms, 0.0);
        now += out.device_ms;
      }
      continue;
    }

    // Idle until the next event.
    double next_event = horizon_ms;
    if (next_release < horizon_ms) next_event = std::min(next_event, next_release);
    if (next_request < request_times_ms.size() &&
        request_times_ms[next_request] < horizon_ms) {
      next_event = std::min(next_event, request_times_ms[next_request]);
    }
    if (next_event <= now) break;  // nothing left before the horizon
    account_energy(0.0, next_event - now);
    now = next_event;
    sync_device_time(now);
    if (next_event >= horizon_ms) break;
  }

  report.battery_fraction_used = 1.0 - battery_.remaining_fraction();
  return report;
}

std::vector<double> uniform_arrivals(double rate_per_s, double horizon_ms) {
  std::vector<double> times;
  if (rate_per_s <= 0.0) return times;
  const double interval_ms = 1000.0 / rate_per_s;
  for (double t = interval_ms / 2; t < horizon_ms; t += interval_ms) {
    times.push_back(t);
  }
  return times;
}

}  // namespace ratt::sim
