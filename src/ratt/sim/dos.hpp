// DoS impact model (Sec. 1, 3.1): the prover has a primary real-time duty
// (control / sensing / actuation) executed periodically. Low-end
// attestation runs uninterruptibly, so every gratuitous invocation blocks
// task slots and burns battery. This simulator quantifies both.
#pragma once

#include <cstdint>
#include <vector>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"
#include "ratt/obs/observer.hpp"
#include "ratt/obs/scoreboard.hpp"
#include "ratt/timing/timing.hpp"

namespace ratt::sim {

/// The prover's primary periodic task.
struct TaskProfile {
  double period_ms = 10.0;    // one task instance per period
  double duration_ms = 2.0;   // execution time per instance
  // A task instance is missed if it cannot *start* within its period
  // (implicit deadline = next release).
};

struct DosReport {
  double horizon_ms = 0.0;
  std::uint64_t watchdog_resets = 0;
  double reboot_overhead_ms = 0.0;
  std::uint64_t tasks_released = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_missed = 0;
  std::uint64_t requests_delivered = 0;
  std::uint64_t attestations_performed = 0;
  std::uint64_t requests_rejected = 0;
  double attest_busy_ms = 0.0;   // prover time consumed by attestation
  double energy_mj = 0.0;        // total drawn from the battery
  double battery_fraction_used = 0.0;

  double miss_rate() const {
    return tasks_released == 0
               ? 0.0
               : static_cast<double>(tasks_missed) /
                     static_cast<double>(tasks_released);
  }
};

/// Optional watchdog model: each completed task kicks the dog; if more
/// than `timeout_ms` passes without a completed task (the attestation is
/// hogging the CPU), the device resets and pays `reboot_ms` of downtime.
struct WatchdogProfile {
  double timeout_ms = 0.0;  // 0 disables the watchdog
  double reboot_ms = 50.0;  // secure boot + re-init cost per reset
};

/// Simulates `horizon_ms` of device time during which attestation
/// requests arrive at the given times. Requests are produced by `forge`
/// (the attacker's generator — e.g. replayed or bogus requests) and run
/// on the prover; the task schedule fills the gaps.
class DosSimulator {
 public:
  DosSimulator(attest::ProverDevice& prover, TaskProfile task,
               timing::EnergyModel energy, timing::Battery battery,
               WatchdogProfile watchdog = WatchdogProfile{})
      : prover_(&prover),
        task_(task),
        energy_(energy),
        battery_(battery),
        watchdog_(watchdog) {}

  using RequestSource = std::function<attest::AttestRequest(double now_ms)>;

  /// Telemetry for adversarial runs. Each delivered request emits a
  /// "dos.request" span and a scoreboard entry filed under
  /// "<attack_label>:<outcome>", charging the attacker `attacker_cost_ms`
  /// of its own time per request — the two sides of the paper's
  /// asymmetry argument, recorded per request class.
  struct Observer {
    obs::Registry* registry = nullptr;
    obs::TraceSink* sink = nullptr;
    obs::DosScoreboard* scoreboard = nullptr;
    std::string attack_label = "attack";
    double attacker_cost_ms = 0.0;
    obs::PowerModel power{};
    std::uint64_t device_id = 0;

    bool enabled() const {
      return registry != nullptr || sink != nullptr || scoreboard != nullptr;
    }
  };
  void set_observer(Observer observer) { obs_ = std::move(observer); }

  /// Run with attestation requests arriving at `request_times_ms`
  /// (sorted ascending). Attestation is uninterruptible, per the paper's
  /// Sec. 3.1 assumption for low-end devices.
  DosReport run(const std::vector<double>& request_times_ms,
                const RequestSource& source, double horizon_ms);

  /// Ablation of the uninterruptibility assumption: the measurement runs
  /// in `chunk_ms` slices and released tasks preempt it at chunk
  /// boundaries (the TyTAN-style "real-time compliant" mode the paper
  /// says needs a managing software layer). chunk_ms <= 0 degenerates to
  /// one uninterruptible slice. NB: chunking re-opens the TOCTOU window
  /// the paper's footnote 1 warns about — memory measured early in a
  /// chunked pass can be changed before the pass ends.
  DosReport run_preemptive(const std::vector<double>& request_times_ms,
                           const RequestSource& source, double horizon_ms,
                           double chunk_ms);

 private:
  void observe_request(double now_ms, const attest::AttestOutcome& outcome);

  attest::ProverDevice* prover_;
  TaskProfile task_;
  timing::EnergyModel energy_;
  timing::Battery battery_;
  WatchdogProfile watchdog_;
  Observer obs_{};
};

/// Evenly spaced arrival times: `rate_per_s` requests over `horizon_ms`.
std::vector<double> uniform_arrivals(double rate_per_s, double horizon_ms);

}  // namespace ratt::sim
