// AttestationSession: binds a Verifier and a ProverDevice to the
// Dolev-Yao channel and the event queue, so whole protocol runs execute
// under simulated network conditions (and under an adversary tap).
//
// Timeline discipline: the event queue is the master clock; before the
// prover processes a delivery, its device time is advanced to the event
// time, so device clocks, timestamps, and the verifier's clock all agree
// on one timeline — up to the device time the prover spends computing.
#pragma once

#include <cstdint>

#include <memory>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"
#include "ratt/net/retransmitter.hpp"
#include "ratt/obs/observer.hpp"
#include "ratt/sim/channel.hpp"
#include "ratt/sim/event.hpp"

namespace ratt::sim {

class AttestationSession {
 public:
  struct Stats {
    std::uint64_t requests_sent = 0;
    std::uint64_t requests_delivered = 0;
    std::uint64_t responses_received = 0;
    std::uint64_t responses_valid = 0;
    std::uint64_t responses_invalid = 0;
    std::uint64_t prover_rejects = 0;  // freshness / MAC rejections
    std::uint64_t responses_missing = 0;  // timed out without a response
    // Reject-reason breakdown (sums to prover_rejects) — the per-device
    // request mix an operator needs to tell a replay flood (not-fresh)
    // from a forgery flood (bad-request-mac) from budget exhaustion.
    std::uint64_t rejects_bad_mac = 0;
    std::uint64_t rejects_not_fresh = 0;
    std::uint64_t rejects_rate_limited = 0;
    std::uint64_t rejects_other = 0;
    /// Device time the prover spent on this session's deliveries (ms) —
    /// with the horizon, the duty-cycle fraction lost to attestation.
    double prover_attest_ms = 0.0;
    /// Frames that failed to parse (bit corruption on the wire).
    std::uint64_t requests_malformed = 0;
    std::uint64_t responses_malformed = 0;
    // Reliable-exchange accounting (all zero unless enable_reliable()).
    std::uint64_t rounds_started = 0;
    std::uint64_t retransmits = 0;          // attempts beyond a round's first
    std::uint64_t timeouts = 0;             // attempt timers that expired
    std::uint64_t duplicate_responses = 0;  // late copies after round close
    std::uint64_t rounds_unreachable = 0;   // retry budget exhausted
    // Incremental accounting (all zero unless set_incremental(true)).
    std::uint64_t inc_rounds = 0;           // incremental responses checked
    std::uint64_t inc_full_fallbacks = 0;   // valid rounds that re-MACed all
    std::uint64_t inc_pages_refreshed = 0;  // pages re-MACed in valid rounds

    friend bool operator==(const Stats&, const Stats&) = default;
  };

  /// Wires the channel sinks. The session must outlive queue execution.
  AttestationSession(EventQueue& queue, Channel& channel,
                     attest::ProverDevice& prover,
                     attest::Verifier& verifier);

  /// Attach telemetry. Publishes session.* counters, a
  /// session.round_trip_ms histogram and a session.pending gauge, and
  /// emits one "verifier.round" span per closed round (valid / invalid /
  /// unmatched / missing). The verifier-side check cost in those spans is
  /// modeled with the reference-clock timing model (the operator
  /// recomputes the same MAC over its reference memory copy).
  void set_observer(const obs::Observer& observer);

  /// Schedule verifier-initiated attestation rounds every `period_ms`
  /// until `horizon_ms`.
  void schedule_rounds(double period_ms, double horizon_ms);

  /// Send one request now. In reliable mode this opens a retransmitting
  /// round instead of a fire-and-forget send.
  void send_request();

  /// Reliable exchange over a lossy link (net::Retransmitter): every
  /// send_request() becomes a round with per-attempt timeouts, bounded
  /// retries (each retry re-MACs a FRESH request — a legitimate replay
  /// the prover must accept exactly once), duplicate-response
  /// suppression, and a terminal unreachable outcome. A policy with
  /// base_timeout_ms <= 0 gets one derived from the prover's timing
  /// model and the channel latency (net::derive_timeout_ms). Requires a
  /// freshness scheme with distinct per-request elements to attribute
  /// responses (nonce/counter/timestamp; kNone matches newest-first).
  void enable_reliable(const net::RetryPolicy& policy,
                       crypto::ByteView jitter_seed);
  bool reliable() const { return rtx_ != nullptr; }

  /// Incremental rounds (DESIGN.md §4i): send_request() issues
  /// "changed-since generation" requests and validates the folded
  /// per-page evidence instead of the full-measurement MAC. Mutually
  /// exclusive with reliable mode (the retransmitter's rounds only know
  /// the full message pair).
  void set_incremental(bool on);
  bool incremental() const { return incremental_; }

  /// Expire pending requests older than `timeout_ms` (counted in
  /// responses_missing); lets an operator alarm on silent provers or
  /// adversarial drops. Returns how many expired in this call. In
  /// reliable mode rounds own their timers — this is then a no-op.
  std::size_t check_timeouts(double timeout_ms);

  const Stats& stats() const { return stats_; }

 private:
  void on_prover_receives(const crypto::Bytes& wire);
  void on_verifier_receives(const crypto::Bytes& wire);
  void on_reliable_response(const attest::AttestResponse& response,
                            std::size_t wire_bytes);
  std::uint64_t send_attempt(std::uint64_t round, std::uint32_t attempt);
  void on_round_closed(std::uint64_t round, net::RoundOutcome outcome,
                       std::uint32_t attempts);
  void sync_prover_time();
  void observe_round(const char* outcome, double round_trip_ms,
                     double verifier_ms, std::size_t wire_bytes,
                     std::uint64_t round_id = 0, std::uint32_t attempt = 0);
  void observe_net(const char* kind, const char* outcome,
                   std::size_t wire_bytes, std::uint64_t round_id = 0,
                   std::uint32_t attempt = 0);
  void profile_net_wait(double round_trip_ms, std::uint64_t round_id);
  void cache_net_instruments();
  double verifier_check_ms() const;
  /// Causal id of a reliable-mode round: the Retransmitter's monotonic
  /// per-session round number is the session_seq.
  std::uint64_t reliable_round_id(std::uint64_t rtx_round) const;

  EventQueue* queue_;
  Channel* channel_;
  attest::ProverDevice* prover_;
  attest::Verifier* verifier_;
  Stats stats_;
  double prover_time_ms_ = 0.0;  // device time already accounted
  // Requests awaiting a response, with their send time (and, in reliable
  // mode, the round the attempt belongs to).
  struct Pending {
    attest::AttestRequest request;
    double sent_ms;
    std::uint64_t round = 0;     // Retransmitter round (reliable mode)
    std::uint64_t round_id = 0;  // causal id (prof::make_round_id)
    std::uint32_t attempt = 1;   // wire attempt within the round
    // Incremental mode: the request lives here instead (inc == true).
    bool inc = false;
    attest::IncAttestRequest inc_request;
  };
  std::vector<Pending> pending_;
  std::unique_ptr<net::Retransmitter> rtx_;
  bool incremental_ = false;
  /// Plain-mode logical-round counter: the session_seq feeding
  /// prof::make_round_id. Reliable mode uses the Retransmitter's round
  /// number instead — both are per-session monotonic values, never a
  /// global atomic, so sharded runs stay byte-identical.
  std::uint64_t round_seq_ = 0;

  obs::Observer obs_{};
  obs::Histogram* obs_round_trip_ = nullptr;
  obs::Gauge* obs_pending_ = nullptr;
  obs::Counter* obs_rounds_valid_ = nullptr;
  obs::Counter* obs_rounds_invalid_ = nullptr;
  obs::Counter* obs_rounds_missing_ = nullptr;
  obs::Counter* obs_retransmits_ = nullptr;
  obs::Counter* obs_timeouts_ = nullptr;
  obs::Counter* obs_duplicates_ = nullptr;
  obs::Counter* obs_unreachable_ = nullptr;
};

}  // namespace ratt::sim
