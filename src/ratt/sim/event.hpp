// Minimal discrete-event scheduler driving the network simulation.
// Time is in simulated milliseconds.
//
// One EventQueue is single-threaded; the sharded Swarm scales out by
// giving every shard its own queue (devices never interact cross-shard),
// so no locking lives here — only the observability instruments the
// queues share are thread-safe (see obs/metrics.hpp).
//
// Two interchangeable scheduling structures live behind the same API:
//
//  * A hierarchical timing wheel (default) — 4 levels x 64 slots at a
//    1 ms tick. Insertion is O(1); popping amortizes to O(1) because a
//    level-k slot redistributes at most once per event per level. Events
//    landing beyond the wheel span (~2^24 ticks) go to a small overflow
//    heap, and events inside the current tick go straight to a "current"
//    mini-heap that preserves exact (at_ms, seq) order. This is what
//    lets a fleet-scale Swarm keep O(devices) pending events cheap.
//  * The legacy binary heap (set_wheel_enabled(false)) — retained as the
//    reference implementation for differential testing.
//
// Execution order is identical on both structures: globally sorted by
// (at_ms, seq), FIFO among same-time events. Same seed => byte-identical
// traces on wheel and heap; the differential suite in
// tests/sim/event_wheel_test.cpp enforces it.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "ratt/obs/metrics.hpp"

namespace ratt::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  double now_ms() const { return now_ms_; }

  /// Attach a metrics registry (nullable; nullptr detaches). Publishes
  ///   gauge     queue.backlog           — pending events (with high-water)
  ///   histogram queue.event_latency_ms  — schedule-to-execution delay
  ///   counter   queue.events_run
  ///   gauge     queue.runaway_leftover  — events stranded by run_all's bound
  void set_observer(obs::Registry* registry);

  /// Schedule `action` at absolute time `at_ms` (>= now). Non-finite
  /// times (NaN, ±inf) are rejected with std::invalid_argument: NaN
  /// compares false against every bound, so it would slip past the
  /// past-scheduling check and then corrupt the strict weak ordering
  /// both the heap and the wheel's mini-heaps rely on.
  void schedule_at(double at_ms, Action action);

  /// Schedule `action` `delay_ms` from now.
  void schedule_in(double delay_ms, Action action);

  /// Switch between the timing wheel (default, true) and the reference
  /// binary heap. Only allowed while the queue is empty — the two
  /// structures cannot exchange pending events; throws std::logic_error
  /// otherwise.
  void set_wheel_enabled(bool enabled);
  bool wheel_enabled() const { return wheel_enabled_; }

  bool empty() const { return pending() == 0; }
  std::size_t pending() const {
    return wheel_enabled_ ? wheel_size_ : heap_.size();
  }

  /// Pop and run the earliest event; returns false when none remain.
  /// The action is moved out of the queue (no copy, no extra allocation
  /// on the hot path), and the queue commits its state — event popped,
  /// now_ms advanced, backlog/latency instruments updated — *before* the
  /// action runs, so a throwing action leaves the queue fully consistent
  /// and the next run_next() continues with the following event.
  bool run_next();

  /// Run events until the queue empties or `until_ms` is reached; time
  /// advances to min(until_ms, last event). Events scheduled during
  /// execution are honored.
  void run_until(double until_ms);

  /// Drain everything, bounded by `max_events` as a runaway guard.
  /// Returns the number of events still pending when the bound was hit
  /// (0 = fully drained) — the stranded backlog is reported, not silently
  /// dropped, and is also surfaced on the queue.runaway_leftover gauge.
  std::size_t run_all(std::size_t max_events = 1'000'000);

 private:
  struct Event {
    double at_ms;
    std::uint64_t seq;  // FIFO among same-time events
    double scheduled_ms;  // when schedule_* was called (for latency)
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_ms != b.at_ms) return a.at_ms > b.at_ms;
      return a.seq > b.seq;
    }
  };

  // ---- timing wheel ----
  static constexpr double kTickMs = 1.0;
  static constexpr int kLevels = 4;
  static constexpr std::uint64_t kSlotBits = 6;
  static constexpr std::uint64_t kSlotsPerLevel = 1ull << kSlotBits;  // 64
  // Ticks reachable from the cursor without the overflow heap: 64^4.
  static constexpr std::uint64_t kWheelSpan = 1ull << (kSlotBits * kLevels);

  struct Slot {
    std::vector<Event> events;
    // Smallest tick currently stored in the slot. On levels >= 1 all
    // events in a slot share the same level coordinate (tick >> 6k), so
    // min_tick is enough to (a) find the level's earliest slot and (b)
    // detect whether an advance actually landed on this slot's epoch.
    std::uint64_t min_tick = 0;
  };

  static std::uint64_t tick_of(double at_ms);
  /// Route an event to current_/slot/overflow relative to cursor_
  /// (does not touch wheel_size_ — shared by insert and redistribution).
  void wheel_place(Event&& ev);
  /// Earliest pending tick across L0..L3 and the overflow heap.
  /// Pre: current_ empty, wheel_size_ > 0.
  std::uint64_t wheel_next_tick() const;
  /// Advance the cursor to `tick`: pull overflow events now within the
  /// span, cascade outer-level slots the cursor landed on down the
  /// hierarchy, and load the landed L0 slot into current_.
  void wheel_advance_to(std::uint64_t tick);
  /// Ensure current_ holds the next event (loads the next tick if
  /// needed). Pre: wheel_size_ > 0.
  void wheel_load_current();
  bool wheel_pop(Event& out);

  /// Earliest pending event time. Pre: !empty(). Non-const on the wheel
  /// path (it may load a tick into current_), but observable behavior is
  /// unchanged: now_ms_ only advances in run_next()/run_until().
  double next_time();

  void schedule_event(Event&& ev);

  // Binary heap over a plain vector (std::push_heap / std::pop_heap)
  // instead of std::priority_queue: priority_queue::top() is const&, so
  // popping an event forced a copy of its std::function (a heap
  // allocation per event on the hot path). pop_heap moves the earliest
  // event to the back, where it can be moved out. Used as the reference
  // structure when the wheel is disabled.
  std::vector<Event> heap_;

  bool wheel_enabled_ = true;
  // Slot array, level-major: slots_[level * 64 + index].
  std::vector<Slot> slots_ = std::vector<Slot>(kLevels * kSlotsPerLevel);
  // Per-level occupancy bitmaps: bit i set <=> slots_[level*64+i] holds
  // events. Finding a level's earliest slot is one rotate + countr_zero.
  std::array<std::uint64_t, kLevels> occupied_{};
  // Events at ticks <= cursor_ (the "now" tick), ordered by (at_ms, seq)
  // via a mini-heap — sub-tick ordering the wheel's 1 ms buckets cannot
  // provide on their own.
  std::vector<Event> current_;
  // Events beyond the wheel span (min-heap by Later, like heap_).
  std::vector<Event> overflow_;
  std::uint64_t cursor_ = 0;
  std::size_t wheel_size_ = 0;

  double now_ms_ = 0.0;
  std::uint64_t next_seq_ = 0;
  obs::Gauge* obs_backlog_ = nullptr;
  obs::Histogram* obs_latency_ = nullptr;
  obs::Counter* obs_events_run_ = nullptr;
  obs::Gauge* obs_leftover_ = nullptr;
};

}  // namespace ratt::sim
