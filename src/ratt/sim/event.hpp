// Minimal discrete-event scheduler driving the network simulation.
// Time is in simulated milliseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ratt::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  double now_ms() const { return now_ms_; }

  /// Schedule `action` at absolute time `at_ms` (>= now).
  void schedule_at(double at_ms, Action action);

  /// Schedule `action` `delay_ms` from now.
  void schedule_in(double delay_ms, Action action);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Pop and run the earliest event; returns false when none remain.
  bool run_next();

  /// Run events until the queue empties or `until_ms` is reached; time
  /// advances to min(until_ms, last event). Events scheduled during
  /// execution are honored.
  void run_until(double until_ms);

  /// Drain everything (bounded by `max_events` as a runaway guard).
  void run_all(std::size_t max_events = 1'000'000);

 private:
  struct Event {
    double at_ms;
    std::uint64_t seq;  // FIFO among same-time events
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_ms != b.at_ms) return a.at_ms > b.at_ms;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ms_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ratt::sim
