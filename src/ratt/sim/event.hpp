// Minimal discrete-event scheduler driving the network simulation.
// Time is in simulated milliseconds.
//
// One EventQueue is single-threaded; the sharded Swarm scales out by
// giving every shard its own queue (devices never interact cross-shard),
// so no locking lives here — only the observability instruments the
// queues share are thread-safe (see obs/metrics.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ratt/obs/metrics.hpp"

namespace ratt::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  double now_ms() const { return now_ms_; }

  /// Attach a metrics registry (nullable; nullptr detaches). Publishes
  ///   gauge     queue.backlog           — pending events (with high-water)
  ///   histogram queue.event_latency_ms  — schedule-to-execution delay
  ///   counter   queue.events_run
  ///   gauge     queue.runaway_leftover  — events stranded by run_all's bound
  void set_observer(obs::Registry* registry);

  /// Schedule `action` at absolute time `at_ms` (>= now).
  void schedule_at(double at_ms, Action action);

  /// Schedule `action` `delay_ms` from now.
  void schedule_in(double delay_ms, Action action);

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Pop and run the earliest event; returns false when none remain.
  /// The action is moved out of the heap (no copy, no extra allocation on
  /// the hot path), and the queue commits its state — event popped,
  /// now_ms advanced, backlog/latency instruments updated — *before* the
  /// action runs, so a throwing action leaves the queue fully consistent
  /// and the next run_next() continues with the following event.
  bool run_next();

  /// Run events until the queue empties or `until_ms` is reached; time
  /// advances to min(until_ms, last event). Events scheduled during
  /// execution are honored.
  void run_until(double until_ms);

  /// Drain everything, bounded by `max_events` as a runaway guard.
  /// Returns the number of events still pending when the bound was hit
  /// (0 = fully drained) — the stranded backlog is reported, not silently
  /// dropped, and is also surfaced on the queue.runaway_leftover gauge.
  std::size_t run_all(std::size_t max_events = 1'000'000);

 private:
  struct Event {
    double at_ms;
    std::uint64_t seq;  // FIFO among same-time events
    double scheduled_ms;  // when schedule_* was called (for latency)
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_ms != b.at_ms) return a.at_ms > b.at_ms;
      return a.seq > b.seq;
    }
  };

  // Binary heap over a plain vector (std::push_heap / std::pop_heap)
  // instead of std::priority_queue: priority_queue::top() is const&, so
  // popping an event forced a copy of its std::function (a heap
  // allocation per event on the hot path). pop_heap moves the earliest
  // event to the back, where it can be moved out.
  std::vector<Event> heap_;
  double now_ms_ = 0.0;
  std::uint64_t next_seq_ = 0;
  obs::Gauge* obs_backlog_ = nullptr;
  obs::Histogram* obs_latency_ = nullptr;
  obs::Counter* obs_events_run_ = nullptr;
  obs::Gauge* obs_leftover_ = nullptr;
};

}  // namespace ratt::sim
