#include "ratt/sim/swarm.hpp"

#include <atomic>
#include <optional>
#include <stdexcept>
#include <thread>

#include "ratt/crypto/drbg.hpp"

namespace ratt::sim {

std::uint64_t SwarmReport::total_valid() const {
  std::uint64_t n = 0;
  for (const auto& d : devices) n += d.stats.responses_valid;
  return n;
}

std::uint64_t SwarmReport::total_sent() const {
  std::uint64_t n = 0;
  for (const auto& d : devices) n += d.stats.requests_sent;
  return n;
}

double SwarmReport::total_attest_ms() const {
  double ms = 0.0;
  for (const auto& d : devices) ms += d.attest_device_ms;
  return ms;
}

Swarm::Swarm(const SwarmConfig& config, crypto::ByteView fleet_seed)
    : config_(config) {
  // Shard plan: contiguous blocks, sized as evenly as possible.
  const std::size_t n = config.device_count;
  std::size_t shard_count = config.shard_count == 0 ? 1 : config.shard_count;
  if (n > 0 && shard_count > n) shard_count = n;
  const std::size_t base = n == 0 ? 0 : n / shard_count;
  const std::size_t rem = n == 0 ? 0 : n % shard_count;
  std::size_t next_device = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->begin = next_device;
    next_device += base + (s < rem ? 1 : 0);
    shard->end = next_device;
    shards_.push_back(std::move(shard));
  }

  // Device construction draws from the fleet DRBG in global device order,
  // so keys are independent of the shard plan (and identical to the
  // legacy single-queue layout).
  crypto::HmacDrbg fleet_drbg(fleet_seed);
  // ratt::net seeds come from a SEPARATE stream: enabling transport
  // faults or reliable rounds must not shift the key/app/verifier draws
  // above, or every clean-run golden would silently change.
  const bool net_mode = config.reliable || config.link_for != nullptr ||
                        !config.link.is_clean();
  std::optional<crypto::HmacDrbg> net_drbg;
  if (net_mode) {
    crypto::Bytes net_seed(fleet_seed.begin(), fleet_seed.end());
    crypto::append(net_seed, crypto::from_string("ratt::net"));
    net_drbg.emplace(net_seed);
  }
  std::size_t shard_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (i >= shards_[shard_idx]->end) ++shard_idx;
    auto device = std::make_unique<Device>();
    device->shard = shard_idx;
    device->key = fleet_drbg.generate(16);
    const crypto::Bytes app_seed = fleet_drbg.generate(16);

    device->prover = std::make_unique<attest::ProverDevice>(
        config.prover, device->key, app_seed);

    attest::Verifier::Config vc;
    vc.scheme = config.prover.scheme;
    vc.mac_alg = config.prover.mac_alg;
    vc.authenticate_requests = config.prover.authenticate_requests;
    attest::ProverDevice* prover_ptr = device->prover.get();
    vc.clock = [prover_ptr] { return prover_ptr->ground_truth_ticks(); };
    device->verifier = std::make_unique<attest::Verifier>(
        device->key, vc, fleet_drbg.generate(16));
    device->verifier->set_reference_memory(
        device->prover->reference_memory());

    EventQueue& shard_queue = shards_[shard_idx]->queue;
    device->channel =
        std::make_unique<Channel>(shard_queue, config.channel_latency_ms);
    device->session = std::make_unique<AttestationSession>(
        shard_queue, *device->channel, *device->prover, *device->verifier);
    if (net_drbg.has_value()) {
      // Both seeds are drawn for every device in global device order, so
      // the fault schedule of device i never depends on the profiles —
      // or reliable flag — chosen for the devices before it.
      const crypto::Bytes link_seed = net_drbg->generate(16);
      const crypto::Bytes jitter_seed = net_drbg->generate(16);
      const net::LinkProfile profile =
          config.link_for ? config.link_for(i) : config.link;
      device->link = std::make_unique<net::FaultyLink>(profile, link_seed);
      device->channel->set_tap(device->link.get());
      if (config.reliable) {
        device->session->enable_reliable(config.retry, jitter_seed);
      }
    }
    devices_.push_back(std::move(device));
  }
}

EventQueue& Swarm::queue() {
  if (shards_.size() > 1) {
    throw std::logic_error(
        "Swarm::queue(): sharded swarm has no single queue — use "
        "queue_of(device) or run()/run_all()/run_until()");
  }
  return shards_[0]->queue;
}

void Swarm::attach_observer(obs::Registry* registry, obs::TraceSink* sink,
                            obs::PowerModel power,
                            obs::prof::ShardProfile* profile) {
  for (auto& shard : shards_) shard->queue.set_observer(registry);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    obs::Observer o;
    o.registry = registry;
    o.sink = sink;
    o.device_id = i;
    o.power = power;
    o.profile = profile;
    devices_[i]->prover->set_observer(o);
    devices_[i]->verifier->set_observer(o);
    devices_[i]->session->set_observer(o);
  }
}

void Swarm::attach_sharded_observer(obs::Registry* registry,
                                    std::size_t ring_capacity,
                                    obs::PowerModel power) {
  attached_registry_ = registry;
  attached_power_ = power;
  for (auto& shard : shards_) {
    shard->ring = std::make_unique<obs::RingRecorder>(ring_capacity);
    if (registry != nullptr) {
      // One shared eviction counter: Counter::inc is thread-safe, and the
      // tally lets exports state whether the merged trace is complete.
      shard->ring->set_dropped_counter(&registry->counter("obs.trace.dropped"));
    }
    shard->profile = std::make_unique<obs::prof::ShardProfile>();
    shard->queue.set_observer(registry);
  }
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    obs::Observer o;
    o.registry = registry;
    o.sink = shards_[devices_[i]->shard]->ring.get();
    o.device_id = i;
    o.power = power;
    o.profile = shards_[devices_[i]->shard]->profile.get();
    devices_[i]->prover->set_observer(o);
    devices_[i]->verifier->set_observer(o);
    devices_[i]->session->set_observer(o);
  }
}

std::vector<obs::TraceRecord> Swarm::merged_trace() const {
  std::vector<std::vector<obs::TraceRecord>> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (shard->ring != nullptr) per_shard.push_back(shard->ring->snapshot());
  }
  return obs::merge_traces(std::move(per_shard));
}

obs::prof::ProfileTable Swarm::merged_profile() const {
  std::vector<const obs::prof::ShardProfile*> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (shard->profile != nullptr) per_shard.push_back(shard->profile.get());
  }
  return obs::prof::ProfileTable::merge(per_shard);
}

void Swarm::attach_power(const obs::power::PowerTraceConfig& config) {
  if (shards_.empty() || shards_[0]->ring == nullptr) {
    // Power synthesis needs the shard rings and profiles in place.
    attach_sharded_observer(attached_registry_);
  }
  for (auto& shard : shards_) {
    shard->power = std::make_unique<obs::power::ShardPowerRecorder>(config);
    // Ring first so the ring's view of the stream is untouched; the
    // recorder only reads round-close spans off the same stream.
    shard->power_tee =
        std::make_unique<obs::TeeSink>(*shard->ring, *shard->power);
    shard->profile->set_hook(shard->power.get());
  }
  // Re-point every device observer at its shard's tee; everything else
  // (registry, power model, profile) is exactly what was attached.
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    obs::Observer o;
    o.registry = attached_registry_;
    o.sink = shards_[devices_[i]->shard]->power_tee.get();
    o.device_id = i;
    o.power = attached_power_;
    o.profile = shards_[devices_[i]->shard]->profile.get();
    devices_[i]->prover->set_observer(o);
    devices_[i]->verifier->set_observer(o);
    devices_[i]->session->set_observer(o);
  }
}

std::vector<obs::power::RoundTrace> Swarm::merged_power_traces() const {
  std::vector<std::vector<obs::power::RoundTrace>> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (shard->power != nullptr) per_shard.push_back(shard->power->completed());
  }
  return obs::power::merge_round_traces(std::move(per_shard));
}

void Swarm::schedule(double horizon_ms) {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const double offset = config_.stagger_ms * static_cast<double>(i);
    EventQueue& shard_queue = shards_[devices_[i]->shard]->queue;
    for (double t = offset + config_.attest_period_ms; t <= horizon_ms;
         t += config_.attest_period_ms) {
      auto* session = devices_[i]->session.get();
      shard_queue.schedule_at(t, [session] { session->send_request(); });
    }
  }
}

void Swarm::run_until(double until_ms) {
  for (auto& shard : shards_) shard->queue.run_until(until_ms);
}

std::size_t Swarm::run_all() { return drain(1); }

std::size_t Swarm::drain(std::size_t threads) {
  const std::size_t workers = std::max<std::size_t>(
      1, std::min(threads, shards_.size()));
  if (workers == 1) {
    // run_all's bounded drain leaves any stranded backlog pending, which
    // report() picks up as events_leftover.
    std::size_t leftover = 0;
    for (auto& shard : shards_) leftover += shard->queue.run_all();
    return leftover;
  }
  // Shards are fully independent event streams; hand them out to the
  // workers by atomic ticket. All cross-thread state is the ticket, the
  // leftover tally and the registry's atomic instruments.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> leftover{0};
  const auto worker = [this, &next, &leftover] {
    for (std::size_t s;
         (s = next.fetch_add(1, std::memory_order_relaxed)) <
         shards_.size();) {
      leftover.fetch_add(shards_[s]->queue.run_all(),
                         std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
  return leftover.load(std::memory_order_relaxed);
}

SwarmReport Swarm::report(double horizon_ms) const {
  SwarmReport report;
  report.horizon_ms = horizon_ms;
  for (const auto& shard : shards_) {
    report.events_leftover += shard->queue.pending();
  }
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    SwarmDeviceReport dr;
    dr.device = i;
    dr.stats = devices_[i]->session->stats();
    dr.attest_device_ms = devices_[i]->prover->anchor().total_device_ms();
    dr.duty_fraction =
        horizon_ms > 0.0 ? dr.attest_device_ms / horizon_ms : 0.0;
    report.devices.push_back(dr);
  }
  return report;
}

SwarmReport Swarm::run(double horizon_ms) {
  return run_parallel(horizon_ms, 1);
}

SwarmReport Swarm::run_parallel(double horizon_ms, std::size_t threads) {
  schedule(horizon_ms);
  (void)drain(threads);
  return report(horizon_ms);
}

}  // namespace ratt::sim
