#include "ratt/sim/swarm.hpp"

#include "ratt/crypto/drbg.hpp"

namespace ratt::sim {

std::uint64_t SwarmReport::total_valid() const {
  std::uint64_t n = 0;
  for (const auto& d : devices) n += d.stats.responses_valid;
  return n;
}

std::uint64_t SwarmReport::total_sent() const {
  std::uint64_t n = 0;
  for (const auto& d : devices) n += d.stats.requests_sent;
  return n;
}

double SwarmReport::total_attest_ms() const {
  double ms = 0.0;
  for (const auto& d : devices) ms += d.attest_device_ms;
  return ms;
}

Swarm::Swarm(const SwarmConfig& config, crypto::ByteView fleet_seed)
    : config_(config) {
  crypto::HmacDrbg fleet_drbg(fleet_seed);
  for (std::size_t i = 0; i < config.device_count; ++i) {
    auto device = std::make_unique<Device>();
    device->key = fleet_drbg.generate(16);
    const crypto::Bytes app_seed = fleet_drbg.generate(16);

    device->prover = std::make_unique<attest::ProverDevice>(
        config.prover, device->key, app_seed);

    attest::Verifier::Config vc;
    vc.scheme = config.prover.scheme;
    vc.mac_alg = config.prover.mac_alg;
    vc.authenticate_requests = config.prover.authenticate_requests;
    attest::ProverDevice* prover_ptr = device->prover.get();
    vc.clock = [prover_ptr] { return prover_ptr->ground_truth_ticks(); };
    device->verifier = std::make_unique<attest::Verifier>(
        device->key, vc, fleet_drbg.generate(16));
    device->verifier->set_reference_memory(
        device->prover->reference_memory());

    device->channel =
        std::make_unique<Channel>(queue_, config.channel_latency_ms);
    device->session = std::make_unique<AttestationSession>(
        queue_, *device->channel, *device->prover, *device->verifier);
    devices_.push_back(std::move(device));
  }
}

void Swarm::attach_observer(obs::Registry* registry, obs::TraceSink* sink,
                            obs::PowerModel power) {
  queue_.set_observer(registry);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    obs::Observer o;
    o.registry = registry;
    o.sink = sink;
    o.device_id = i;
    o.power = power;
    devices_[i]->prover->set_observer(o);
    devices_[i]->verifier->set_observer(o);
    devices_[i]->session->set_observer(o);
  }
}

void Swarm::schedule(double horizon_ms) {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const double offset = config_.stagger_ms * static_cast<double>(i);
    for (double t = offset + config_.attest_period_ms; t <= horizon_ms;
         t += config_.attest_period_ms) {
      auto* session = devices_[i]->session.get();
      queue_.schedule_at(t, [session] { session->send_request(); });
    }
  }
}

SwarmReport Swarm::report(double horizon_ms) const {
  SwarmReport report;
  report.horizon_ms = horizon_ms;
  report.events_leftover = queue_.pending();
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    SwarmDeviceReport dr;
    dr.device = i;
    dr.stats = devices_[i]->session->stats();
    dr.attest_device_ms = devices_[i]->prover->anchor().total_device_ms();
    dr.duty_fraction =
        horizon_ms > 0.0 ? dr.attest_device_ms / horizon_ms : 0.0;
    report.devices.push_back(dr);
  }
  return report;
}

SwarmReport Swarm::run(double horizon_ms) {
  schedule(horizon_ms);
  // run_all's bounded drain leaves any stranded backlog pending, which
  // report() picks up as events_leftover.
  (void)queue_.run_all();
  return report(horizon_ms);
}

}  // namespace ratt::sim
