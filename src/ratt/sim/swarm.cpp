#include "ratt/sim/swarm.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <stdexcept>
#include <thread>

#include "ratt/crypto/drbg.hpp"

namespace ratt::sim {

std::uint64_t SwarmReport::total_valid() const {
  std::uint64_t n = 0;
  for (const auto& d : devices) n += d.stats.responses_valid;
  return n;
}

std::uint64_t SwarmReport::total_sent() const {
  std::uint64_t n = 0;
  for (const auto& d : devices) n += d.stats.requests_sent;
  return n;
}

double SwarmReport::total_attest_ms() const {
  double ms = 0.0;
  for (const auto& d : devices) ms += d.attest_device_ms;
  return ms;
}

Swarm::Swarm(const SwarmConfig& config, crypto::ByteView fleet_seed)
    : config_(config) {
  if (config.reliable && config.prover.enable_incremental) {
    // Fail at construction, not on the first materialization mid-drain:
    // the retransmitter owns reliable round state and the incremental
    // exchange cannot ride it (session.cpp rejects the combination), so
    // a fleet configured with both is a configuration error.
    throw std::invalid_argument(
        "SwarmConfig: `reliable` and prover.enable_incremental are "
        "mutually exclusive — incremental rounds cannot run over the "
        "retransmitter");
  }
  // Shard plan: contiguous blocks, sized as evenly as possible.
  const std::size_t n = config.device_count;
  std::size_t shard_count = config.shard_count == 0 ? 1 : config.shard_count;
  if (n > 0 && shard_count > n) shard_count = n;
  const std::size_t base = n == 0 ? 0 : n / shard_count;
  const std::size_t rem = n == 0 ? 0 : n % shard_count;
  std::size_t next_device = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>(config.soa_blocks);
    shard->begin = next_device;
    next_device += base + (s < rem ? 1 : 0);
    shard->end = next_device;
    shard->queue.set_wheel_enabled(config.use_wheel);
    shards_.push_back(std::move(shard));
  }

  // Seed pre-draw: every per-device draw the eager constructor made
  // happens here, in global device order, into one packed blob — so keys
  // are independent of the shard plan AND of which devices ever
  // materialize (and identical to the legacy eager layout).
  crypto::HmacDrbg fleet_drbg(fleet_seed);
  // ratt::net seeds come from a SEPARATE stream: enabling transport
  // faults or reliable rounds must not shift the key/app/verifier draws
  // above, or every clean-run golden would silently change.
  net_mode_ = config.reliable || config.link_for != nullptr ||
              !config.link.is_clean();
  std::optional<crypto::HmacDrbg> net_drbg;
  if (net_mode_) {
    crypto::Bytes net_seed(fleet_seed.begin(), fleet_seed.end());
    crypto::append(net_seed, crypto::from_string("ratt::net"));
    net_drbg.emplace(net_seed);
  }
  const std::size_t stride = seed_stride();
  seeds_.resize(n * stride);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t* out = seeds_.data() + i * stride;
    for (int draw = 0; draw < 3; ++draw) {
      const crypto::Bytes b = fleet_drbg.generate(16);
      std::memcpy(out + draw * 16, b.data(), 16);
    }
    if (net_drbg.has_value()) {
      // Both seeds are drawn for every device in global device order, so
      // the fault schedule of device i never depends on the profiles —
      // or reliable flag — chosen for the devices before it.
      for (int draw = 0; draw < 2; ++draw) {
        const crypto::Bytes b = net_drbg->generate(16);
        std::memcpy(out + 48 + draw * 16, b.data(), 16);
      }
    }
  }
  devices_.assign(n, nullptr);

  if (config.share_app_image) {
    // One image for the whole fleet, derived from a dedicated stream so
    // it neither consumes per-device draws nor depends on device count.
    crypto::Bytes image_seed(fleet_seed.begin(), fleet_seed.end());
    crypto::append(image_seed, crypto::from_string("ratt::app-image"));
    crypto::HmacDrbg image_drbg(image_seed);
    auto tmpl = std::make_shared<attest::ProverTemplate>(
        attest::ProverDevice::make_template(config.prover,
                                            image_drbg.generate(16)));
    shared_reference_ =
        std::make_shared<const crypto::Bytes>(tmpl->reference_memory);
    template_ = std::move(tmpl);
  }
}

std::size_t Swarm::shard_of(std::size_t i) const {
  // Inverts the constructor's contiguous plan: the first `rem` shards
  // hold base+1 devices, the rest hold base.
  const std::size_t n = devices_.size();
  const std::size_t shard_count = shards_.size();
  const std::size_t base = n / shard_count;
  const std::size_t rem = n % shard_count;
  const std::size_t big = rem * (base + 1);
  if (i < big) return i / (base + 1);
  return rem + (i - big) / base;
}

Swarm::Device& Swarm::materialize(std::size_t i) {
  if (devices_[i] != nullptr) return *devices_[i];
  const std::size_t shard_idx = shard_of(i);
  Shard& shard = *shards_[shard_idx];
  Device& d = shard.arena.emplace_back();
  d.index = i;
  d.shard = shard_idx;
  const std::uint8_t* seeds = seeds_.data() + i * seed_stride();
  d.key.assign(seeds, seeds + 16);
  const crypto::ByteView app_seed(seeds + 16, 16);
  const crypto::ByteView verifier_seed(seeds + 32, 16);

  if (template_ != nullptr) {
    d.prover = shard.components.make_prover(config_.prover, d.key,
                                            *template_);
  } else {
    d.prover = shard.components.make_prover(config_.prover, d.key,
                                            app_seed);
  }

  attest::Verifier::Config vc;
  vc.scheme = config_.prover.scheme;
  vc.mac_alg = config_.prover.mac_alg;
  vc.authenticate_requests = config_.prover.authenticate_requests;
  vc.bind_generation = config_.prover.bind_generation;
  attest::ProverDevice* prover_ptr = d.prover;
  vc.clock = [prover_ptr] { return prover_ptr->ground_truth_ticks(); };
  d.verifier = shard.components.make_verifier(d.key, vc, verifier_seed);
  if (shared_reference_ != nullptr) {
    d.verifier->set_reference_memory(shared_reference_);
  } else {
    d.verifier->set_reference_memory(d.prover->reference_memory());
  }
  if (config_.mac_batch) {
    d.verifier->set_batch_engine(&shard.batch);
  }

  d.channel = shard.components.make_channel(shard.queue,
                                            config_.channel_latency_ms);
  d.session = shard.components.make_session(shard.queue, *d.channel,
                                            *d.prover, *d.verifier);
  if (net_mode_) {
    const crypto::Bytes link_seed(seeds + 48, seeds + 64);
    const crypto::ByteView jitter_seed(seeds + 64, 16);
    const net::LinkProfile profile =
        config_.link_for ? config_.link_for(i) : config_.link;
    d.link = std::make_unique<net::FaultyLink>(profile, link_seed);
    d.channel->set_tap(d.link.get());
    if (config_.reliable) {
      d.session->enable_reliable(config_.retry, jitter_seed);
    }
  }
  if (config_.prover.enable_incremental) {
    d.session->set_incremental(true);
  }
  apply_observer(d);
  devices_[i] = &d;
  return d;
}

std::size_t Swarm::materialized_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->arena.size();
  return n;
}

EventQueue& Swarm::queue() {
  if (shards_.size() > 1) {
    throw std::logic_error(
        "Swarm::queue(): sharded swarm has no single queue — use "
        "queue_of(device) or run()/run_all()/run_until()");
  }
  return shards_[0]->queue;
}

void Swarm::apply_observer(Device& device) {
  if (obs_mode_ == ObsMode::kNone) return;
  obs::Observer o;
  o.registry = attached_registry_;
  o.device_id = device.index;
  o.power = attached_power_;
  Shard& shard = *shards_[device.shard];
  switch (obs_mode_) {
    case ObsMode::kPlain:
      o.sink = attached_sink_;
      o.profile = attached_profile_;
      break;
    case ObsMode::kSharded:
      o.sink = shard.ring.get();
      o.profile = shard.profile.get();
      break;
    case ObsMode::kPower:
      o.sink = shard.power_tee.get();
      o.profile = shard.profile.get();
      break;
    case ObsMode::kNone:
      break;
  }
  device.prover->set_observer(o);
  device.verifier->set_observer(o);
  device.session->set_observer(o);
  // The shard's batch engine shares the fleet registry; its counters
  // register lazily on the first batched wave, so scalar runs keep the
  // registry export byte-identical.
  if (config_.mac_batch) shard.batch.set_observer(o);
}

void Swarm::apply_observer_to_materialized() {
  for (Device* device : devices_) {
    if (device != nullptr) apply_observer(*device);
  }
}

void Swarm::attach_observer(obs::Registry* registry, obs::TraceSink* sink,
                            obs::PowerModel power,
                            obs::prof::ShardProfile* profile) {
  for (auto& shard : shards_) shard->queue.set_observer(registry);
  obs_mode_ = ObsMode::kPlain;
  attached_registry_ = registry;
  attached_sink_ = sink;
  attached_profile_ = profile;
  attached_power_ = power;
  apply_observer_to_materialized();
}

void Swarm::attach_sharded_observer(obs::Registry* registry,
                                    std::size_t ring_capacity,
                                    obs::PowerModel power) {
  attached_registry_ = registry;
  attached_power_ = power;
  for (auto& shard : shards_) {
    shard->ring = std::make_unique<obs::RingRecorder>(ring_capacity);
    if (registry != nullptr) {
      // One shared eviction counter: Counter::inc is thread-safe, and the
      // tally lets exports state whether the merged trace is complete.
      shard->ring->set_dropped_counter(&registry->counter("obs.trace.dropped"));
    }
    shard->profile = std::make_unique<obs::prof::ShardProfile>();
    shard->queue.set_observer(registry);
  }
  obs_mode_ = ObsMode::kSharded;
  apply_observer_to_materialized();
}

std::vector<obs::TraceRecord> Swarm::merged_trace() const {
  std::vector<std::vector<obs::TraceRecord>> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (shard->ring != nullptr) per_shard.push_back(shard->ring->snapshot());
  }
  return obs::merge_traces(std::move(per_shard));
}

obs::prof::ProfileTable Swarm::merged_profile() const {
  std::vector<const obs::prof::ShardProfile*> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (shard->profile != nullptr) per_shard.push_back(shard->profile.get());
  }
  return obs::prof::ProfileTable::merge(per_shard);
}

void Swarm::attach_power(const obs::power::PowerTraceConfig& config) {
  if (shards_.empty() || shards_[0]->ring == nullptr) {
    // Power synthesis needs the shard rings and profiles in place.
    attach_sharded_observer(attached_registry_);
  }
  for (auto& shard : shards_) {
    shard->power = std::make_unique<obs::power::ShardPowerRecorder>(config);
    // Ring first so the ring's view of the stream is untouched; the
    // recorder only reads round-close spans off the same stream.
    shard->power_tee =
        std::make_unique<obs::TeeSink>(*shard->ring, *shard->power);
    shard->profile->set_hook(shard->power.get());
  }
  // Re-point every device observer at its shard's tee; everything else
  // (registry, power model, profile) is exactly what was attached.
  obs_mode_ = ObsMode::kPower;
  apply_observer_to_materialized();
}

std::vector<obs::power::RoundTrace> Swarm::merged_power_traces() const {
  std::vector<std::vector<obs::power::RoundTrace>> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (shard->power != nullptr) per_shard.push_back(shard->power->completed());
  }
  return obs::power::merge_round_traces(std::move(per_shard));
}

double Swarm::stagger_offset(std::size_t i) const {
  const double raw = config_.stagger_ms * static_cast<double>(i);
  if (config_.attest_period_ms <= 0.0) return raw;
  // Wrap the offset into one period: device i's first round must land
  // inside (0, 2 * period] at ANY fleet size. raw >= 0, so fmod >= 0.
  return std::fmod(raw, config_.attest_period_ms);
}

void Swarm::arm_round(std::size_t i, std::uint64_t k) {
  // Round k's time is computed multiplicatively every firing — never
  // accumulated — so round 10^6 lands exactly on offset + 1e6 * period.
  const double t = stagger_offset(i) +
                   static_cast<double>(k) * config_.attest_period_ms;
  if (t > scheduled_horizon_ms_) return;
  // One 8-byte capture: (device << 32 | round) keeps the closure inside
  // std::function's small-buffer optimization — no per-event allocation.
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(i) << 32) | (k & 0xffffffffull);
  shards_[shard_of(i)]->queue.schedule_at(t, [this, packed] {
    const std::size_t device = static_cast<std::size_t>(packed >> 32);
    const std::uint64_t round = packed & 0xffffffffull;
    // Re-arm before the send so the next round's event takes the seq
    // slot right at its own firing — and a throwing send does not kill
    // the device's chain.
    arm_round(device, round + 1);
    materialize(device).session->send_request();
  });
}

void Swarm::schedule(double horizon_ms) {
  scheduled_horizon_ms_ = std::max(scheduled_horizon_ms_, horizon_ms);
  if (config_.attest_period_ms <= 0.0) return;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (config_.eager_schedule) {
      // Legacy reference path: every round of every device up front.
      AttestationSession* session = materialize(i).session;
      EventQueue& shard_queue = shards_[shard_of(i)]->queue;
      const double offset = stagger_offset(i);
      for (std::uint64_t k = 1;; ++k) {
        const double t =
            offset + static_cast<double>(k) * config_.attest_period_ms;
        if (t > horizon_ms) break;
        shard_queue.schedule_at(t, [session] { session->send_request(); });
      }
    } else {
      arm_round(i, 1);
    }
  }
}

void Swarm::run_until(double until_ms) {
  for (auto& shard : shards_) shard->queue.run_until(until_ms);
}

std::size_t Swarm::run_all() { return drain(1); }

std::size_t Swarm::shard_budget(const Shard& shard) const {
  const std::size_t devices = shard.end - shard.begin;
  double rounds = 0.0;
  if (config_.attest_period_ms > 0.0 && scheduled_horizon_ms_ > 0.0) {
    rounds = std::ceil(scheduled_horizon_ms_ / config_.attest_period_ms);
  }
  const double attempts =
      config_.reliable
          ? static_cast<double>(std::max<std::uint32_t>(
                1, config_.retry.max_attempts))
          : 1.0;
  // ~3 events per clean round (send + two channel deliveries); 8 x
  // attempts leaves headroom for retries, timeouts and taps. Whatever is
  // already pending (primed injections, dashboard slices) gets its own
  // allowance, and the legacy 1M floor keeps injection-heavy setups that
  // never call schedule() at their old budget.
  const double derived = 1024.0 +
                         static_cast<double>(devices) * rounds * 8.0 *
                             attempts +
                         static_cast<double>(shard.queue.pending()) * 4.0;
  const double budget = std::max(1.0e6, derived);
  if (budget >= 9.0e15) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(budget);
}

std::size_t Swarm::drain(std::size_t threads) {
  const std::size_t workers = std::max<std::size_t>(
      1, std::min(threads, shards_.size()));
  if (workers == 1) {
    // run_all's bounded drain leaves any stranded backlog pending, which
    // report() picks up as events_leftover.
    std::size_t leftover = 0;
    for (auto& shard : shards_) {
      leftover += shard->queue.run_all(shard_budget(*shard));
    }
    return leftover;
  }
  // Shards are fully independent event streams; hand them out to the
  // workers by atomic ticket. All cross-thread state is the ticket, the
  // leftover tally and the registry's thread-safe instruments (lazy
  // materialization only ever happens on a device's owning shard worker).
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> leftover{0};
  const auto worker = [this, &next, &leftover] {
    for (std::size_t s;
         (s = next.fetch_add(1, std::memory_order_relaxed)) <
         shards_.size();) {
      leftover.fetch_add(shards_[s]->queue.run_all(shard_budget(*shards_[s])),
                         std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
  return leftover.load(std::memory_order_relaxed);
}

SwarmReport Swarm::report(double horizon_ms) const {
  SwarmReport report;
  report.horizon_ms = horizon_ms;
  for (const auto& shard : shards_) {
    report.events_leftover += shard->queue.pending();
  }
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    SwarmDeviceReport dr;
    dr.device = i;
    if (devices_[i] != nullptr) {
      dr.stats = devices_[i]->session->stats();
      dr.attest_device_ms = devices_[i]->prover->anchor().total_device_ms();
      dr.duty_fraction =
          horizon_ms > 0.0 ? dr.attest_device_ms / horizon_ms : 0.0;
    }
    // Unmaterialized devices report default stats — identical to a
    // materialized device that never saw an event, so laziness never
    // shows up in a report.
    report.devices.push_back(dr);
  }
  return report;
}

Swarm::ResidentReport Swarm::resident() const {
  ResidentReport r;
  for (const auto& shard : shards_) {
    r.devices += shard->arena.size();
    r.arena_bytes += shard->components.arena_bytes();
    for (const Device& d : shard->arena) {
      const hw::MemoryBus& bus = d.prover->mcu().bus();
      // Pages aliased from the fleet template are physically one copy;
      // count them once below instead of once per device.
      r.bus_bytes += bus.resident_bytes() - bus.shared_resident_bytes();
      r.table_bytes += bus.page_table_bytes();
    }
  }
  if (template_ != nullptr) {
    for (const auto& sp : template_->shared_pages) {
      r.shared_bytes += sp.page->size();
    }
  }
  return r;
}

SwarmReport Swarm::run(double horizon_ms) {
  return run_parallel(horizon_ms, 1);
}

SwarmReport Swarm::run_parallel(double horizon_ms, std::size_t threads) {
  schedule(horizon_ms);
  (void)drain(threads);
  return report(horizon_ms);
}

}  // namespace ratt::sim
