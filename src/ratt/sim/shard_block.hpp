// Structure-of-arrays shard blocks: per-shard component slabs for the
// materialized fleet.
//
// The legacy layout gave every device its own heap objects — one malloc
// per prover, per verifier, and an arena Device struct fat enough to
// hold the channel/session inline. At fleet scale that is one allocator
// round-trip per component per device, and the components of one device
// land wherever the allocator happens to put them. The SoA layout
// instead gives each shard one ShardBlock arena with a slab per
// component *type*: all of a shard's provers sit contiguously in
// chunked blocks, all its verifiers in another, and so on — the
// structure-of-arrays transposition of the old array-of-structures
// arena. Slabs grow in fixed chunks and never move a constructed
// element, so component addresses stay stable while the shard
// materializes devices mid-drain (the same stability contract the old
// std::deque arena gave).
//
// Construction order (prover, verifier, channel, session — per device)
// and destruction order (sessions, channels, verifiers, provers — slab
// by slab, each in reverse construction order) bracket the reference
// lifetimes: a session only ever outlives none of the components it
// references. DeviceArena wraps a ShardBlock next to the legacy
// one-heap-object-per-component layout behind one interface, so
// SwarmConfig::soa_blocks toggles purely the storage plan — behavior,
// reports and traces are byte-identical either way (the SoA-vs-heap
// differential suite pins this).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "ratt/sim/session.hpp"

namespace ratt::sim {

/// One component slab: chunked uninitialized storage for T with
/// placement construction. Chunks never move, so a returned pointer is
/// stable for the slab's lifetime. Elements are destroyed in reverse
/// construction order when the slab dies.
template <class T>
class ComponentSlab {
 public:
  /// Devices per chunk. 64 keeps a chunk of the fattest component
  /// (AttestationSession, ~384 B) inside a handful of pages while
  /// amortizing the chunk allocation across a whole block of devices.
  static constexpr std::size_t kChunk = 64;

  ComponentSlab() = default;
  ComponentSlab(const ComponentSlab&) = delete;
  ComponentSlab& operator=(const ComponentSlab&) = delete;

  ~ComponentSlab() {
    for (std::size_t i = count_; i > 0; --i) ptr(i - 1)->~T();
  }

  template <class... Args>
  T* emplace(Args&&... args) {
    if (count_ == chunks_.size() * kChunk) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    T* slot = ptr(count_);
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++count_;
    return slot;
  }

  std::size_t size() const { return count_; }

  /// Heap bytes the slab's chunks occupy (the SoA side of the
  /// resident-bytes report).
  std::size_t slab_bytes() const { return chunks_.size() * sizeof(Chunk); }

 private:
  struct Chunk {
    alignas(T) unsigned char bytes[sizeof(T) * kChunk];
  };

  T* ptr(std::size_t i) {
    return std::launder(reinterpret_cast<T*>(
               chunks_[i / kChunk]->bytes) + i % kChunk);
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t count_ = 0;
};

/// The SoA arena proper: one slab per component type. Slab declaration
/// order is the reference order — sessions_ is declared last so it is
/// destroyed first, before the channels/verifiers/provers it points at.
class ShardBlock {
 public:
  template <class... Args>
  attest::ProverDevice* make_prover(Args&&... args) {
    return provers_.emplace(std::forward<Args>(args)...);
  }
  template <class... Args>
  attest::Verifier* make_verifier(Args&&... args) {
    return verifiers_.emplace(std::forward<Args>(args)...);
  }
  template <class... Args>
  Channel* make_channel(Args&&... args) {
    return channels_.emplace(std::forward<Args>(args)...);
  }
  template <class... Args>
  AttestationSession* make_session(Args&&... args) {
    return sessions_.emplace(std::forward<Args>(args)...);
  }

  std::size_t devices() const { return sessions_.size(); }

  /// Chunk bytes across all four slabs.
  std::size_t slab_bytes() const {
    return provers_.slab_bytes() + verifiers_.slab_bytes() +
           channels_.slab_bytes() + sessions_.slab_bytes();
  }

 private:
  ComponentSlab<attest::ProverDevice> provers_;
  ComponentSlab<attest::Verifier> verifiers_;
  ComponentSlab<Channel> channels_;
  ComponentSlab<AttestationSession> sessions_;
};

/// Storage-plan switch: the SoA ShardBlock or the legacy one heap
/// object per component, behind one make_* interface. Heap mode keeps
/// the per-component unique_ptr lists in the same declaration order as
/// the slabs, so destruction order is identical across the toggle.
class DeviceArena {
 public:
  explicit DeviceArena(bool soa) : soa_(soa) {}

  template <class... Args>
  attest::ProverDevice* make_prover(Args&&... args) {
    if (soa_) return block_.make_prover(std::forward<Args>(args)...);
    heap_provers_.push_back(std::make_unique<attest::ProverDevice>(
        std::forward<Args>(args)...));
    return heap_provers_.back().get();
  }
  template <class... Args>
  attest::Verifier* make_verifier(Args&&... args) {
    if (soa_) return block_.make_verifier(std::forward<Args>(args)...);
    heap_verifiers_.push_back(std::make_unique<attest::Verifier>(
        std::forward<Args>(args)...));
    return heap_verifiers_.back().get();
  }
  template <class... Args>
  Channel* make_channel(Args&&... args) {
    if (soa_) return block_.make_channel(std::forward<Args>(args)...);
    heap_channels_.push_back(
        std::make_unique<Channel>(std::forward<Args>(args)...));
    return heap_channels_.back().get();
  }
  template <class... Args>
  AttestationSession* make_session(Args&&... args) {
    if (soa_) return block_.make_session(std::forward<Args>(args)...);
    heap_sessions_.push_back(std::make_unique<AttestationSession>(
        std::forward<Args>(args)...));
    return heap_sessions_.back().get();
  }

  bool soa() const { return soa_; }
  std::size_t devices() const {
    return soa_ ? block_.devices() : heap_sessions_.size();
  }

  /// Arena heap bytes: slab chunks in SoA mode, per-object allocations
  /// (by sizeof) in heap mode. Component-internal heap (bus pages, MAC
  /// state) is counted by the components themselves, not here.
  std::size_t arena_bytes() const {
    if (soa_) return block_.slab_bytes();
    return heap_provers_.size() * sizeof(attest::ProverDevice) +
           heap_verifiers_.size() * sizeof(attest::Verifier) +
           heap_channels_.size() * sizeof(Channel) +
           heap_sessions_.size() * sizeof(AttestationSession);
  }

 private:
  bool soa_;
  ShardBlock block_;
  std::vector<std::unique_ptr<attest::ProverDevice>> heap_provers_;
  std::vector<std::unique_ptr<attest::Verifier>> heap_verifiers_;
  std::vector<std::unique_ptr<Channel>> heap_channels_;
  std::vector<std::unique_ptr<AttestationSession>> heap_sessions_;
};

}  // namespace ratt::sim
