// Dolev-Yao channel between verifier and prover (Sec. 3.2, Adv_ext):
// the adversary sits on the wire and can observe, drop, delay, reorder,
// replay and inject messages. Honest parties only see deliveries.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ratt/crypto/bytes.hpp"
#include "ratt/sim/event.hpp"

namespace ratt::sim {

using crypto::Bytes;
using crypto::ByteView;

/// A message in flight, as the adversary sees it.
struct TappedMessage {
  Bytes payload;
  double sent_ms = 0.0;
  std::uint64_t id = 0;  // monotonically increasing per channel
};

/// The adversary's wire vantage point. Default behavior: pass through.
class ChannelTap {
 public:
  virtual ~ChannelTap() = default;

  /// What happens to an honest message. Beyond drop + delay, a tap can
  /// corrupt the delivered bytes and duplicate the delivery — the full
  /// Dolev-Yao wire vocabulary (net::FaultyLink drives all of it).
  struct Disposition {
    bool deliver = true;      // false = drop
    double extra_delay_ms = 0.0;
    /// When set, this payload is delivered instead of the honest bytes
    /// (bit corruption). Applies to every copy of the send.
    std::optional<Bytes> mutated;
    /// Extra copies delivered (duplication), each with its own extra
    /// delay relative to the base latency.
    std::vector<double> duplicate_delays_ms;
  };

  virtual Disposition on_to_prover(const TappedMessage& msg) = 0;
  virtual Disposition on_to_verifier(const TappedMessage& msg) = 0;
};

/// Unidirectionally-tapped duplex channel with a base latency.
class Channel {
 public:
  Channel(EventQueue& queue, double latency_ms)
      : queue_(&queue), latency_ms_(latency_ms) {}

  double latency_ms() const { return latency_ms_; }

  void set_tap(ChannelTap* tap) { tap_ = tap; }

  using Sink = std::function<void(const Bytes&)>;
  void set_prover_sink(Sink sink) { prover_sink_ = std::move(sink); }
  void set_verifier_sink(Sink sink) { verifier_sink_ = std::move(sink); }

  /// Honest sends: pass through the tap.
  void verifier_send(Bytes payload);
  void prover_send(Bytes payload);

  /// Adversary injection: delivered directly (the adversary does not tap
  /// its own traffic).
  void inject_to_prover(Bytes payload, double delay_ms = 0.0);
  void inject_to_verifier(Bytes payload, double delay_ms = 0.0);

  /// Delivery counters: these count *deliveries scheduled* (a duplicated
  /// send contributes one per copy), not sends — dropped messages never
  /// count, and a tap's duplicate copies each do.
  std::uint64_t messages_to_prover() const { return to_prover_count_; }
  std::uint64_t messages_to_verifier() const { return to_verifier_count_; }

 private:
  void deliver(const Sink& sink, Bytes payload, double delay_ms);
  void dispatch(const Sink& sink, Bytes payload, ChannelTap::Disposition d,
                std::uint64_t& delivery_count);

  EventQueue* queue_;
  double latency_ms_;
  ChannelTap* tap_ = nullptr;
  Sink prover_sink_;
  Sink verifier_sink_;
  std::uint64_t next_id_ = 0;
  std::uint64_t to_prover_count_ = 0;
  std::uint64_t to_verifier_count_ = 0;
};

/// A tap that records everything and applies a scripted disposition —
/// sufficient to express all of Adv_ext's behaviors.
class RecordingTap : public ChannelTap {
 public:
  using Script = std::function<Disposition(const TappedMessage&)>;

  /// Default script: pass everything through.
  RecordingTap() = default;

  void set_to_prover_script(Script script) {
    to_prover_script_ = std::move(script);
  }
  void set_to_verifier_script(Script script) {
    to_verifier_script_ = std::move(script);
  }

  const std::vector<TappedMessage>& recorded_to_prover() const {
    return to_prover_;
  }
  const std::vector<TappedMessage>& recorded_to_verifier() const {
    return to_verifier_;
  }

  Disposition on_to_prover(const TappedMessage& msg) override {
    to_prover_.push_back(msg);
    return to_prover_script_ ? to_prover_script_(msg) : Disposition{};
  }

  Disposition on_to_verifier(const TappedMessage& msg) override {
    to_verifier_.push_back(msg);
    return to_verifier_script_ ? to_verifier_script_(msg) : Disposition{};
  }

 private:
  std::vector<TappedMessage> to_prover_;
  std::vector<TappedMessage> to_verifier_;
  Script to_prover_script_;
  Script to_verifier_script_;
};

}  // namespace ratt::sim
