// IoT fleet deployment — the paper's future-work item 1 ("trial-deploy
// proposed methods in the context of connected devices, such as IoT").
//
// One verifier-side operator attests a fleet of simulated provers over
// per-device Dolev-Yao channels sharing a single event queue. Each device
// holds its own K_Attest (derived from a fleet seed), so a request
// recorded on one device's link is useless against another — and the
// whole fleet can be driven under adversarial taps to measure aggregate
// DoS impact.
#pragma once

#include <memory>
#include <vector>

#include "ratt/sim/session.hpp"

namespace ratt::sim {

struct SwarmConfig {
  std::size_t device_count = 8;
  /// Template for every device (per-device key/app are derived).
  attest::ProverConfig prover;
  double attest_period_ms = 500.0;
  /// Device i's schedule is offset by i * stagger_ms (avoids thundering
  /// herd on the operator).
  double stagger_ms = 37.0;
  double channel_latency_ms = 2.0;
};

struct SwarmDeviceReport {
  std::size_t device = 0;
  AttestationSession::Stats stats;
  double attest_device_ms = 0.0;  // prover time spent on attestation
  /// Fraction of the horizon the device spent in (uninterruptible)
  /// attestation — the duty-cycle disruption signal fleet_health grades.
  double duty_fraction = 0.0;
};

struct SwarmReport {
  double horizon_ms = 0.0;
  std::vector<SwarmDeviceReport> devices;
  /// Events stranded when the run's event budget was exhausted (0 in a
  /// healthy run; nonzero means the horizon's tail was not simulated).
  std::size_t events_leftover = 0;

  std::uint64_t total_valid() const;
  std::uint64_t total_sent() const;
  double total_attest_ms() const;
};

class Swarm {
 public:
  Swarm(const SwarmConfig& config, crypto::ByteView fleet_seed);

  std::size_t size() const { return devices_.size(); }
  EventQueue& queue() { return queue_; }
  attest::ProverDevice& prover(std::size_t i) { return *devices_[i]->prover; }
  Channel& channel(std::size_t i) { return *devices_[i]->channel; }
  AttestationSession& session(std::size_t i) {
    return *devices_[i]->session;
  }
  const crypto::Bytes& device_key(std::size_t i) const {
    return devices_[i]->key;
  }

  /// Attach one registry/sink pair to the whole fleet: every prover,
  /// verifier and session gets an Observer carrying its device index, and
  /// the shared event queue publishes its backlog gauges. Metrics
  /// aggregate fleet-wide; traces stay per-device via device_id.
  void attach_observer(obs::Registry* registry, obs::TraceSink* sink,
                       obs::PowerModel power = obs::PowerModel{});

  /// Schedule periodic attestation for every device and run to `horizon`.
  SwarmReport run(double horizon_ms);

  // Stepped execution — the dashboard/analytics path. schedule() plants
  // the same periodic rounds run() would, run_until() advances the shared
  // queue one slice at a time (so a caller can read rollups, quantiles
  // and alerts between slices), and report() snapshots current state.
  void schedule(double horizon_ms);
  void run_until(double until_ms) { queue_.run_until(until_ms); }
  /// Report over [0, horizon_ms] from current state. events_leftover is
  /// the still-pending queue backlog (0 after a drained run).
  SwarmReport report(double horizon_ms) const;

 private:
  struct Device {
    crypto::Bytes key;
    std::unique_ptr<attest::ProverDevice> prover;
    std::unique_ptr<attest::Verifier> verifier;
    std::unique_ptr<Channel> channel;
    std::unique_ptr<AttestationSession> session;
  };

  SwarmConfig config_;
  EventQueue queue_;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace ratt::sim
