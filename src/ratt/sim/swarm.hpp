// IoT fleet deployment — the paper's future-work item 1 ("trial-deploy
// proposed methods in the context of connected devices, such as IoT").
//
// One verifier-side operator attests a fleet of simulated provers over
// per-device Dolev-Yao channels. Each device holds its own K_Attest
// (derived from a fleet seed), so a request recorded on one device's
// link is useless against another — and the whole fleet can be driven
// under adversarial taps to measure aggregate DoS impact.
//
// Sharded execution (fleet scale): devices never interact cross-device,
// so the fleet is partitioned into `shard_count` contiguous shards, each
// owning its own EventQueue and (optionally) its own trace ring. Shards
// are fully independent event streams, which makes them embarrassingly
// parallel: run_parallel() drains them on a thread pool, and the merge
// of reports and traces is deterministic — byte-identical for the same
// seed at ANY thread count, because per-shard behavior never depends on
// scheduling and the merge orders records by (sim_time, device_id)
// canonically. Metrics aggregate into one shared Registry whose
// instruments are thread-safe (obs/metrics.hpp).
//
// Million-device scale rests on three mechanisms:
//   * Lazy periodic scheduling (default): schedule() arms ONE
//     self-rescheduling event per device; each firing computes its round
//     time multiplicatively as offset + k * period (drift-free) and
//     re-arms round k+1 — pending events stay O(devices), not
//     O(devices x horizon/period). The eager legacy path is retained
//     behind SwarmConfig::eager_schedule for differential testing.
//   * Lazy device materialization: construction pre-draws every
//     per-device seed from the fleet DRBG in global device order (so
//     keys are bit-identical to the eager layout and independent of
//     which devices ever wake), but the ProverDevice/Verifier/Channel/
//     Session quad is built only when a device is first touched — in a
//     per-shard std::deque arena, so hot session state sits in
//     shard-local blocks and a mostly-idle fleet pays ~80 B/device.
//   * Shared templates (SwarmConfig::share_app_image): one vendor-signed
//     boot image + one verifier reference copy for the whole fleet, with
//     secure boot's signature check and image digest memoized
//     (attest::ProverTemplate) — per-device state that actually differs
//     (K_Attest, freshness words, RAM) stays per-device.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ratt/attest/verifier_batch.hpp"
#include "ratt/net/link.hpp"
#include "ratt/obs/power/trace.hpp"
#include "ratt/obs/prof/profile.hpp"
#include "ratt/sim/session.hpp"
#include "ratt/sim/shard_block.hpp"

namespace ratt::sim {

struct SwarmConfig {
  std::size_t device_count = 8;
  /// Template for every device (per-device key/app are derived).
  attest::ProverConfig prover;
  double attest_period_ms = 500.0;
  /// Device i's schedule is offset by (i * stagger_ms) mod
  /// attest_period_ms (avoids thundering herd on the operator). The
  /// modulo keeps every device's first round inside one period at any
  /// fleet size — without it, device offsets past the horizon silently
  /// starved high-index devices of attestation.
  double stagger_ms = 37.0;
  double channel_latency_ms = 2.0;
  /// Shards the fleet is partitioned into (contiguous device blocks,
  /// each with a private EventQueue). 1 — the default — is the legacy
  /// single-queue layout; values are clamped to [1, device_count].
  /// Per-device behavior is independent of the shard plan, so reports
  /// are identical at any shard count; merged traces additionally match
  /// across shard counts as long as no trace ring overflowed.
  std::size_t shard_count = 1;
  /// Transport faults: every device's channel gets a net::FaultyLink
  /// with this profile (clean = no tap at all unless `reliable`).
  /// `link_for` — when set — overrides the profile per device index, so
  /// a fleet can mix healthy and hostile links. Fault/jitter seeds are
  /// drawn from a DRBG stream separate from key derivation, so enabling
  /// ratt::net never changes the fleet's keys or clean-run goldens.
  net::LinkProfile link;
  std::function<net::LinkProfile(std::size_t)> link_for;
  /// Reliable rounds (net::Retransmitter) on every session. A `retry`
  /// with base_timeout_ms <= 0 gets one derived from the prover's timing
  /// model and the channel latency (see net::derive_timeout_ms).
  bool reliable = false;
  net::RetryPolicy retry;
  /// Timing wheel (default) vs the reference binary heap in every shard
  /// queue — the scheduler differential-testing knob; same seed gives
  /// byte-identical reports/traces on both.
  bool use_wheel = true;
  /// Legacy eager scheduling: plant every round of every device up front
  /// (O(devices x rounds) pending events, materializes the whole fleet).
  /// Retained as the reference path for differential tests.
  bool eager_schedule = false;
  /// Share one application image (and one verifier reference copy)
  /// across the fleet instead of deriving a per-device image from the
  /// app seed. Keys and freshness state stay per-device; the per-device
  /// seed draws still happen, so enabling this never changes the fleet's
  /// keys. Off by default — per-device images are the paper's model;
  /// fleet-scale benches turn it on.
  bool share_app_image = false;
  /// Multi-buffer MAC batching: every shard owns one attest::VerifierBatch
  /// and device verifiers precompute lookahead rounds through it in
  /// SHA-1xN waves (verifier.hpp set_batch_engine). Wire bytes, reports
  /// and traces are byte-identical with the toggle off — it is the
  /// batched-vs-scalar differential-testing knob (bench --no-batch).
  bool mac_batch = true;
  /// Structure-of-arrays shard blocks: materialize devices into per-shard
  /// component slabs (sim::ShardBlock) instead of one heap object per
  /// prover/verifier. Behavior and reports are identical with the toggle
  /// off — it is the SoA-vs-heap differential-testing knob (bench
  /// --no-soa).
  bool soa_blocks = true;
};

struct SwarmDeviceReport {
  std::size_t device = 0;
  AttestationSession::Stats stats;
  double attest_device_ms = 0.0;  // prover time spent on attestation
  /// Fraction of the horizon the device spent in (uninterruptible)
  /// attestation — the duty-cycle disruption signal fleet_health grades.
  double duty_fraction = 0.0;

  friend bool operator==(const SwarmDeviceReport&,
                         const SwarmDeviceReport&) = default;
};

struct SwarmReport {
  double horizon_ms = 0.0;
  std::vector<SwarmDeviceReport> devices;
  /// Events stranded when a shard's event budget was exhausted (0 in a
  /// healthy run; nonzero means some horizon tail was not simulated).
  std::size_t events_leftover = 0;

  std::uint64_t total_valid() const;
  std::uint64_t total_sent() const;
  double total_attest_ms() const;

  friend bool operator==(const SwarmReport&, const SwarmReport&) = default;
};

class Swarm {
 public:
  Swarm(const SwarmConfig& config, crypto::ByteView fleet_seed);

  std::size_t size() const { return devices_.size(); }
  std::size_t shard_count() const { return shards_.size(); }

  /// The fleet's queue in the legacy single-shard layout. Throws
  /// std::logic_error on a sharded swarm — use queue_of() there, or the
  /// run()/run_all()/run_until() drivers that cover every shard.
  EventQueue& queue();
  /// The event queue owning device i's channel and session.
  EventQueue& queue_of(std::size_t device) {
    return shards_[shard_of(device)]->queue;
  }

  // Device accessors materialize the device on first touch (see the lazy
  // materialization notes above) — cheap no-ops once it exists.
  attest::ProverDevice& prover(std::size_t i) {
    return *materialize(i).prover;
  }
  Channel& channel(std::size_t i) { return *materialize(i).channel; }
  AttestationSession& session(std::size_t i) {
    return *materialize(i).session;
  }
  const crypto::Bytes& device_key(std::size_t i) { return materialize(i).key; }
  /// Device i's fault tap — nullptr when the swarm runs without
  /// ratt::net (clean link, no link_for, not reliable).
  net::FaultyLink* faulty_link(std::size_t i) {
    return materialize(i).link.get();
  }

  /// Has device i been materialized yet? (Pure query — never triggers
  /// materialization; unmaterialized devices report default stats,
  /// identical to a materialized device that never saw an event.)
  bool is_materialized(std::size_t i) const { return devices_[i] != nullptr; }
  std::size_t materialized_count() const;

  /// Attach one registry/sink pair to the whole fleet: every prover,
  /// verifier and session gets an Observer carrying its device index, and
  /// every shard queue publishes its backlog gauges. Metrics aggregate
  /// fleet-wide; traces stay per-device via device_id. The single shared
  /// sink is NOT synchronized — use attach_sharded_observer() before
  /// run_parallel() with more than one thread. `profile` — when set —
  /// receives every device's per-phase samples (single-threaded runs
  /// only; it is not synchronized either). The attachment is a plan:
  /// devices materialized later get the same observer on creation.
  void attach_observer(obs::Registry* registry, obs::TraceSink* sink,
                       obs::PowerModel power = obs::PowerModel{},
                       obs::prof::ShardProfile* profile = nullptr);

  /// Sharded tracing + profiling for parallel runs: every shard records
  /// into its own private RingRecorder (`ring_capacity` records each) and
  /// its own prof::ShardProfile, so worker threads never share a sink or
  /// accumulator; the shared registry only needs its thread-safe
  /// instruments. Ring evictions feed the "obs.trace.dropped" counter.
  /// After a run, merged_trace() / merged_profile() return deterministic
  /// canonical merges of all shards.
  void attach_sharded_observer(obs::Registry* registry,
                               std::size_t ring_capacity = 1 << 16,
                               obs::PowerModel power = obs::PowerModel{});

  /// Deterministic merge of the per-shard trace rings (empty when
  /// attach_sharded_observer was not used).
  std::vector<obs::TraceRecord> merged_trace() const;

  /// Canonical merge of the per-shard phase profiles (empty table when
  /// attach_sharded_observer was not used). Byte-identical JSONL for the
  /// same seed at any thread/shard count.
  obs::prof::ProfileTable merged_profile() const;

  /// Power-trace synthesis on top of sharded observability: every shard
  /// gets its own obs::power::ShardPowerRecorder hooked to the shard's
  /// profile (phase stream) and tee'd off the shard's ring (round-close
  /// stream). Calls attach_sharded_observer() itself if the swarm has no
  /// shard rings yet (with its defaults); call it first to customize
  /// registry/capacity/power-model. One recorder per shard — the same
  /// no-shared-sinks contract as the rings, so run_parallel() stays
  /// deterministic at any thread count.
  void attach_power(const obs::power::PowerTraceConfig& config =
                        obs::power::PowerTraceConfig{});

  /// Canonical merge of the per-shard completed power traces, ordered by
  /// (end_ms, device_id, round_id) — empty unless attach_power() ran.
  std::vector<obs::power::RoundTrace> merged_power_traces() const;

  /// Shard s's power recorder (nullptr unless attach_power).
  const obs::power::ShardPowerRecorder* shard_power(std::size_t s) const {
    return shards_[s]->power.get();
  }

  /// Shard s's trace ring (nullptr unless attach_sharded_observer) — for
  /// flight-recorder style taps that need per-shard drop accounting.
  const obs::RingRecorder* shard_ring(std::size_t s) const {
    return shards_[s]->ring.get();
  }

  /// Schedule periodic attestation for every device and drain every
  /// shard on the calling thread.
  SwarmReport run(double horizon_ms);

  /// Schedule and drain the shards on `threads` workers (clamped to the
  /// shard count; 1 runs on the calling thread). The merged report and
  /// trace are byte-identical at any thread count for the same seed.
  SwarmReport run_parallel(double horizon_ms, std::size_t threads);

  // Stepped execution — the dashboard/analytics path. schedule() plants
  // the same periodic rounds run() would (lazily by default — one
  // self-rescheduling chain per device, capped at the horizon; calling
  // schedule() again with a larger horizon extends the cap and plants a
  // second chain, like the eager path planted a second full set),
  // run_until() advances every shard one slice at a time (so a caller
  // can read rollups, quantiles and alerts between slices), and report()
  // snapshots current state.
  void schedule(double horizon_ms);
  void run_until(double until_ms);
  /// Drain every shard on the calling thread without scheduling anything
  /// (setup phases: recording taps, priming injections). Returns the
  /// total stranded backlog (0 = fully drained).
  std::size_t run_all();
  /// Report over [0, horizon_ms] from current state. events_leftover is
  /// the still-pending backlog across shards (0 after a drained run).
  SwarmReport report(double horizon_ms) const;

  /// Footprint accounting for the materialized fleet: component-arena
  /// bytes (ShardBlock slabs in SoA mode, per-object heap otherwise),
  /// every materialized prover's exclusively-owned backing-store pages
  /// plus paging metadata, and — once, not once per device — the boot
  /// image pages the fleet aliases copy-on-write from the template.
  /// Unmaterialized devices cost nothing here — exactly the laziness
  /// the report is meant to audit.
  struct ResidentReport {
    std::size_t devices = 0;       // materialized device count
    std::size_t arena_bytes = 0;   // component storage
    std::size_t bus_bytes = 0;     // exclusively-owned MCU pages
    std::size_t table_bytes = 0;   // bus paging metadata
    std::size_t shared_bytes = 0;  // template pages, counted once
    std::size_t total_bytes() const {
      return arena_bytes + bus_bytes + table_bytes + shared_bytes;
    }
    double per_device_bytes() const {
      return devices == 0
                 ? 0.0
                 : static_cast<double>(total_bytes()) /
                       static_cast<double>(devices);
    }
  };
  ResidentReport resident() const;

 private:
  struct Device {
    std::size_t index = 0;
    std::size_t shard = 0;
    crypto::Bytes key;
    // Raw pointers into the owning shard's DeviceArena (ShardBlock
    // component slabs in SoA mode, one heap object each otherwise —
    // SwarmConfig::soa_blocks). The arena owns the components and
    // outlives every Device record; addresses are stable either way.
    attest::ProverDevice* prover = nullptr;
    attest::Verifier* verifier = nullptr;
    Channel* channel = nullptr;
    AttestationSession* session = nullptr;
    std::unique_ptr<net::FaultyLink> link;
  };
  struct Shard {
    explicit Shard(bool soa) : components(soa) {}
    EventQueue queue;
    std::size_t begin = 0;  // device index range [begin, end)
    std::size_t end = 0;
    // Device records (index, key, component pointers), in first-touch
    // order. A deque allocates in chunked blocks and never moves
    // elements, so Device addresses stay stable while the shard grows
    // mid-drain. The components themselves live in `components`.
    std::deque<Device> arena;
    // Per-device component storage — declared before any per-shard sinks
    // so sessions are destroyed (slab by slab, reverse construction
    // order) while the queue they reference is still alive.
    DeviceArena components;
    // One multi-buffer MAC engine per shard (SwarmConfig::mac_batch):
    // every verifier in the shard pipelines its lookahead waves through
    // it. Shards never share one — drains are per-shard threads.
    attest::VerifierBatch batch;
    std::unique_ptr<obs::RingRecorder> ring;  // sharded-tracing mode
    std::unique_ptr<obs::prof::ShardProfile> profile;  // sharded profiling
    std::unique_ptr<obs::power::ShardPowerRecorder> power;  // attach_power
    std::unique_ptr<obs::TeeSink> power_tee;  // ring + power recorder
  };

  // Which observer layout attach_* selected — replayed onto every device
  // materialized afterwards.
  enum class ObsMode : std::uint8_t { kNone, kPlain, kSharded, kPower };

  /// Shard owning device i (O(1) from the contiguous block plan).
  std::size_t shard_of(std::size_t i) const;
  /// Build device i (prover, verifier, channel, session, link) in its
  /// shard's arena, or return it if it already exists. During a parallel
  /// drain this is only ever called from the owning shard's worker.
  Device& materialize(std::size_t i);
  void apply_observer(Device& device);
  void apply_observer_to_materialized();
  double stagger_offset(std::size_t i) const;
  /// Arm round k (1-based) of device i's lazy chain; no-op beyond the
  /// scheduled horizon.
  void arm_round(std::size_t i, std::uint64_t k);
  std::size_t seed_stride() const { return net_mode_ ? 80 : 48; }
  /// Per-shard run_all budget derived from the scheduled work (devices x
  /// expected rounds x safety factor) — a flat constant strands healthy
  /// tails at fleet scale; runaway chains still exceed any finite value.
  std::size_t shard_budget(const Shard& shard) const;

  /// Drain every shard queue on up to `threads` workers; returns the
  /// total stranded backlog.
  std::size_t drain(std::size_t threads);

  SwarmConfig config_;
  bool net_mode_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Materialized devices by index (nullptr = still cold). Raw pointers
  /// into the owning shard's arena. Distinct elements are written by
  /// distinct shard workers — never the same element from two threads.
  std::vector<Device*> devices_;
  /// Every per-device DRBG draw, made eagerly at construction in global
  /// device order (key, app seed, verifier seed[, link seed, jitter
  /// seed] — seed_stride() bytes per device): materialization order can
  /// never change the fleet's keys.
  std::vector<std::uint8_t> seeds_;
  /// Shared boot image + verifier reference (share_app_image mode).
  std::shared_ptr<const attest::ProverTemplate> template_;
  std::shared_ptr<const crypto::Bytes> shared_reference_;
  /// Largest horizon schedule() has seen — caps the lazy chains and
  /// sizes the drain budget.
  double scheduled_horizon_ms_ = 0.0;
  // The observer plan (attach_* records it; materialize replays it).
  ObsMode obs_mode_ = ObsMode::kNone;
  obs::Registry* attached_registry_ = nullptr;
  obs::TraceSink* attached_sink_ = nullptr;  // kPlain
  obs::prof::ShardProfile* attached_profile_ = nullptr;  // kPlain
  obs::PowerModel attached_power_{};
};

}  // namespace ratt::sim
