#include "ratt/sim/session.hpp"

#include <algorithm>
#include <stdexcept>

#include "ratt/obs/prof/profile.hpp"

namespace ratt::sim {

AttestationSession::AttestationSession(EventQueue& queue, Channel& channel,
                                       attest::ProverDevice& prover,
                                       attest::Verifier& verifier)
    : queue_(&queue),
      channel_(&channel),
      prover_(&prover),
      verifier_(&verifier) {
  channel_->set_prover_sink(
      [this](const crypto::Bytes& wire) { on_prover_receives(wire); });
  channel_->set_verifier_sink(
      [this](const crypto::Bytes& wire) { on_verifier_receives(wire); });
}

void AttestationSession::set_observer(const obs::Observer& observer) {
  obs_ = observer;
  if (obs_.registry == nullptr) {
    obs_round_trip_ = nullptr;
    obs_pending_ = nullptr;
    obs_rounds_valid_ = nullptr;
    obs_rounds_invalid_ = nullptr;
    obs_rounds_missing_ = nullptr;
    obs_retransmits_ = nullptr;
    obs_timeouts_ = nullptr;
    obs_duplicates_ = nullptr;
    obs_unreachable_ = nullptr;
    return;
  }
  obs::Registry& reg = *obs_.registry;
  obs_round_trip_ = &reg.histogram("session.round_trip_ms");
  obs_pending_ = &reg.gauge("session.pending");
  obs_rounds_valid_ = &reg.counter("session.rounds.valid");
  obs_rounds_invalid_ = &reg.counter("session.rounds.invalid");
  obs_rounds_missing_ = &reg.counter("session.rounds.missing");
  cache_net_instruments();
}

void AttestationSession::cache_net_instruments() {
  // net.* instruments appear only for reliable sessions, so plain
  // sessions keep their registry export byte-identical to before.
  if (rtx_ == nullptr || obs_.registry == nullptr) return;
  obs::Registry& reg = *obs_.registry;
  obs_retransmits_ = &reg.counter("net.retransmits");
  obs_timeouts_ = &reg.counter("net.timeouts");
  obs_duplicates_ = &reg.counter("net.duplicate_responses");
  obs_unreachable_ = &reg.counter("net.rounds.unreachable");
}

void AttestationSession::observe_round(const char* outcome,
                                       double round_trip_ms,
                                       double verifier_ms,
                                       std::size_t wire_bytes,
                                       std::uint64_t round_id,
                                       std::uint32_t attempt) {
  if (obs_.sink != nullptr) {
    obs::TraceRecord rec;
    rec.sim_time_ms = queue_->now_ms();
    rec.device_id = obs_.device_id;
    rec.kind = "verifier.round";
    rec.outcome = outcome;
    rec.verifier_ms = verifier_ms;
    rec.bytes = wire_bytes;
    rec.round_id = round_id;
    rec.attempt = attempt;
    obs_.sink->record(rec);
  }
  if (obs_round_trip_ != nullptr && round_trip_ms >= 0.0) {
    obs_round_trip_->observe(round_trip_ms);
  }
}

void AttestationSession::observe_net(const char* kind, const char* outcome,
                                     std::size_t wire_bytes,
                                     std::uint64_t round_id,
                                     std::uint32_t attempt) {
  if (obs_.sink == nullptr) return;
  obs::TraceRecord rec;
  rec.sim_time_ms = queue_->now_ms();
  rec.device_id = obs_.device_id;
  rec.kind = kind;
  rec.outcome = outcome;
  rec.bytes = wire_bytes;
  rec.round_id = round_id;
  rec.attempt = attempt;
  obs_.sink->record(rec);
}

std::uint64_t AttestationSession::reliable_round_id(
    std::uint64_t rtx_round) const {
  return obs::prof::make_round_id(obs_.device_id, rtx_round);
}

void AttestationSession::profile_net_wait(double round_trip_ms,
                                          std::uint64_t round_id) {
  if (obs_.profile == nullptr || round_trip_ms < 0.0) return;
  // The whole round trip is wire + queueing time: prover compute never
  // advances the simulation clock (it accrues on the device's own
  // prover_time_ms_ ledger), so sim-time latency is what the verifier
  // waited on the network. The device idles through it — energy accrues
  // at sleep power.
  const timing::DeviceTimingModel& tm = prover_->timing_model();
  const double wait_ms = std::max(0.0, round_trip_ms);
  obs::prof::PhaseSample sample;
  sample.phase = obs::prof::Phase::kNetWait;
  sample.device_id = obs_.device_id;
  sample.round_id = round_id;
  sample.sim_time_ms = queue_->now_ms();  // the wait ends right now
  sample.cycles = tm.cycles(wait_ms);
  sample.duration_ms = wait_ms;
  sample.energy_mj = obs_.power.sleep_mj(wait_ms);
  obs_.profile->record(sample);
}

double AttestationSession::verifier_check_ms() const {
  // The operator's check recomputes the prover's MAC over its reference
  // memory copy — model its cost at the reference clock.
  return timing::DeviceTimingModel().memory_attestation_ms(
      prover_->config().mac_alg, 16 + prover_->config().measured_bytes);
}

void AttestationSession::sync_prover_time() {
  // Bring the device up to the simulation clock (it was idling / doing
  // its primary task since the last event).
  const double now = queue_->now_ms();
  if (now > prover_time_ms_) {
    prover_->idle_ms(now - prover_time_ms_);
    prover_time_ms_ = now;
  }
}

void AttestationSession::schedule_rounds(double period_ms,
                                         double horizon_ms) {
  if (period_ms <= 0.0) return;
  // Multiplicative round times: `t += period` accumulates floating-point
  // drift (after ~10^6 rounds the boundary alignment obs::power replay
  // depends on is gone); k * period reproduces every round time exactly.
  for (std::uint64_t k = 1;; ++k) {
    const double t = static_cast<double>(k) * period_ms;
    if (t > horizon_ms) break;
    queue_->schedule_at(t, [this] { send_request(); });
  }
}

void AttestationSession::set_incremental(bool on) {
  if (on && rtx_ != nullptr) {
    throw std::logic_error(
        "AttestationSession: incremental mode conflicts with reliable mode");
  }
  incremental_ = on;
}

void AttestationSession::enable_reliable(const net::RetryPolicy& policy,
                                         crypto::ByteView jitter_seed) {
  if (incremental_) {
    throw std::logic_error(
        "AttestationSession: reliable mode conflicts with incremental mode");
  }
  net::RetryPolicy effective = policy;
  if (effective.base_timeout_ms <= 0.0) {
    effective.base_timeout_ms = net::derive_timeout_ms(
        timing::DeviceTimingModel(), prover_->config().mac_alg,
        prover_->config().measured_bytes, 2.0 * channel_->latency_ms());
  }
  rtx_ = std::make_unique<net::Retransmitter>(effective, jitter_seed);
  rtx_->set_hooks(
      [this](double delay_ms, std::function<void()> fire) {
        queue_->schedule_in(delay_ms, std::move(fire));
      },
      [this](std::uint64_t round, std::uint32_t attempt) {
        return send_attempt(round, attempt);
      },
      [this](std::uint64_t round, net::RoundOutcome outcome,
             std::uint32_t attempts) {
        on_round_closed(round, outcome, attempts);
      },
      [this](std::uint64_t round, std::uint32_t attempt) {
        ++stats_.timeouts;
        if (obs_timeouts_ != nullptr) obs_timeouts_->inc();
        observe_net("net.timeout", "expired", 0, reliable_round_id(round),
                    attempt);
      });
  cache_net_instruments();
}

std::uint64_t AttestationSession::send_attempt(std::uint64_t round,
                                               std::uint32_t attempt) {
  sync_prover_time();
  // Every attempt is a FRESH request: re-MACed nonce/counter/timestamp,
  // so the prover's freshness policy sees a legitimate new element
  // instead of a replayed one.
  const attest::AttestRequest request = verifier_->make_request();
  const std::uint64_t round_id = reliable_round_id(round);
  pending_.push_back(
      Pending{request, queue_->now_ms(), round, round_id, attempt});
  ++stats_.requests_sent;
  if (attempt > 1) {
    ++stats_.retransmits;
    if (obs_retransmits_ != nullptr) obs_retransmits_->inc();
    observe_net("net.retry", "sent", request.wire_size(), round_id, attempt);
  }
  if (obs_pending_ != nullptr) {
    obs_pending_->set(static_cast<double>(pending_.size()));
  }
  channel_->verifier_send(request.to_bytes());
  return request.freshness;
}

void AttestationSession::on_round_closed(std::uint64_t round,
                                         net::RoundOutcome outcome,
                                         std::uint32_t attempts) {
  // Superseded attempts of this round no longer await a response.
  const auto removed = std::erase_if(
      pending_, [&](const Pending& p) { return p.round == round; });
  if (removed > 0 && obs_pending_ != nullptr) {
    obs_pending_->set(static_cast<double>(pending_.size()));
  }
  if (outcome == net::RoundOutcome::kUnreachable) {
    ++stats_.rounds_unreachable;
    if (obs_unreachable_ != nullptr) obs_unreachable_->inc();
    if (obs_rounds_missing_ != nullptr) obs_rounds_missing_->inc();
    observe_round("unreachable", -1.0, 0.0, 0, reliable_round_id(round),
                  attempts);
  }
}

void AttestationSession::send_request() {
  if (rtx_ != nullptr) {
    ++stats_.rounds_started;
    rtx_->start_round();
    return;
  }
  sync_prover_time();
  if (incremental_) {
    const attest::IncAttestRequest request =
        verifier_->make_incremental_request();
    Pending p{attest::AttestRequest{}, queue_->now_ms()};
    p.round_id = obs::prof::make_round_id(obs_.device_id, round_seq_++);
    p.inc = true;
    p.inc_request = request;
    pending_.push_back(std::move(p));
    ++stats_.requests_sent;
    if (obs_pending_ != nullptr) {
      obs_pending_->set(static_cast<double>(pending_.size()));
    }
    channel_->verifier_send(request.to_bytes());
    return;
  }
  const attest::AttestRequest request = verifier_->make_request();
  Pending p{request, queue_->now_ms()};
  p.round_id = obs::prof::make_round_id(obs_.device_id, round_seq_++);
  pending_.push_back(std::move(p));
  ++stats_.requests_sent;
  if (obs_pending_ != nullptr) {
    obs_pending_->set(static_cast<double>(pending_.size()));
  }
  channel_->verifier_send(request.to_bytes());
}

void AttestationSession::on_prover_receives(const crypto::Bytes& wire) {
  sync_prover_time();
  if (attest::is_inc_request_frame(wire)) {
    const auto request = attest::IncAttestRequest::from_bytes(wire);
    if (!request.has_value()) {
      ++stats_.requests_malformed;
      return;
    }
    ++stats_.requests_delivered;
    obs::RoundContext round;
    if (obs_.enabled()) {
      const auto pit = std::find_if(
          pending_.begin(), pending_.end(),
          [&](const Pending& p) { return p.inc && p.inc_request == *request; });
      if (pit != pending_.end()) {
        round.round_id = pit->round_id;
        round.attempt = pit->attempt;
      }
    }
    const attest::AttestOutcome outcome =
        prover_->handle_incremental(*request, round);
    prover_time_ms_ += outcome.device_ms;
    stats_.prover_attest_ms += outcome.device_ms;
    if (outcome.status != attest::AttestStatus::kOk) {
      ++stats_.prover_rejects;
      switch (outcome.status) {
        case attest::AttestStatus::kBadRequestMac:
          ++stats_.rejects_bad_mac;
          break;
        case attest::AttestStatus::kNotFresh:
          ++stats_.rejects_not_fresh;
          break;
        case attest::AttestStatus::kRateLimited:
          ++stats_.rejects_rate_limited;
          break;
        default:
          ++stats_.rejects_other;
          break;
      }
      return;
    }
    channel_->prover_send(outcome.inc_response.to_bytes());
    return;
  }
  const auto request = attest::AttestRequest::from_bytes(wire);
  if (!request.has_value()) {
    ++stats_.requests_malformed;  // bit corruption on the wire
    return;
  }
  ++stats_.requests_delivered;
  // Recover the causal round of this delivery: the request we sent (and
  // its round id / attempt) is still pending. A request the session never
  // sent — injected flood traffic, corrupted frames that happen to parse
  // — matches nothing and gets the "no round" context.
  obs::RoundContext round;
  if (obs_.enabled()) {
    const auto pit = std::find_if(
        pending_.begin(), pending_.end(),
        [&](const Pending& p) { return p.request == *request; });
    if (pit != pending_.end()) {
      round.round_id = pit->round_id;
      round.attempt = pit->attempt;
    }
  }
  const attest::AttestOutcome outcome = prover_->handle(*request, round);
  prover_time_ms_ += outcome.device_ms;  // handle() advanced device time
  stats_.prover_attest_ms += outcome.device_ms;
  if (outcome.status != attest::AttestStatus::kOk) {
    ++stats_.prover_rejects;
    switch (outcome.status) {
      case attest::AttestStatus::kBadRequestMac:
        ++stats_.rejects_bad_mac;
        break;
      case attest::AttestStatus::kNotFresh:
        ++stats_.rejects_not_fresh;
        break;
      case attest::AttestStatus::kRateLimited:
        ++stats_.rejects_rate_limited;
        break;
      default:
        ++stats_.rejects_other;
        break;
    }
    return;
  }
  channel_->prover_send(outcome.response.to_bytes());
}

void AttestationSession::on_verifier_receives(const crypto::Bytes& wire) {
  if (attest::is_inc_response_frame(wire)) {
    const auto response = attest::IncAttestResponse::from_bytes(wire);
    if (!response.has_value()) {
      ++stats_.responses_malformed;
      return;
    }
    ++stats_.responses_received;
    const auto it = std::find_if(
        pending_.begin(), pending_.end(), [&](const Pending& p) {
          return p.inc && p.inc_request.freshness == response->freshness;
        });
    if (it == pending_.end()) {
      ++stats_.responses_invalid;
      observe_round("unmatched", -1.0, 0.0, wire.size());
      return;
    }
    ++stats_.inc_rounds;
    const double verifier_ms = obs_.enabled() ? verifier_check_ms() : 0.0;
    const double round_trip_ms = queue_->now_ms() - it->sent_ms;
    if (verifier_->check_incremental(it->inc_request, *response)) {
      ++stats_.responses_valid;
      if (response->full_fallback()) ++stats_.inc_full_fallbacks;
      stats_.inc_pages_refreshed += response->changed_pages.size();
      if (obs_rounds_valid_ != nullptr) obs_rounds_valid_->inc();
      profile_net_wait(round_trip_ms, it->round_id);
      observe_round("valid", round_trip_ms, verifier_ms, wire.size(),
                    it->round_id, it->attempt);
    } else {
      ++stats_.responses_invalid;
      if (obs_rounds_invalid_ != nullptr) obs_rounds_invalid_->inc();
      observe_round("invalid", round_trip_ms, verifier_ms, wire.size(),
                    it->round_id, it->attempt);
    }
    pending_.erase(it);
    if (obs_pending_ != nullptr) {
      obs_pending_->set(static_cast<double>(pending_.size()));
    }
    return;
  }
  const auto response = attest::AttestResponse::from_bytes(wire);
  if (!response.has_value()) {
    ++stats_.responses_malformed;  // bit corruption on the wire
    return;
  }
  ++stats_.responses_received;
  if (rtx_ != nullptr) {
    on_reliable_response(*response, wire.size());
    return;
  }
  const auto it = std::find_if(
      pending_.begin(), pending_.end(), [&](const Pending& p) {
        return p.request.freshness == response->freshness;
      });
  if (it == pending_.end()) {
    ++stats_.responses_invalid;
    observe_round("unmatched", -1.0, 0.0, wire.size());
    return;
  }
  const double verifier_ms = obs_.enabled() ? verifier_check_ms() : 0.0;
  const double round_trip_ms = queue_->now_ms() - it->sent_ms;
  if (verifier_->check_response(it->request, *response)) {
    ++stats_.responses_valid;
    if (obs_rounds_valid_ != nullptr) obs_rounds_valid_->inc();
    // Profile before the trace record: the closing "verifier.round" span
    // finalizes the round's power trace, so its net_wait phase must land
    // first. The profile hook is not a trace sink — log bytes unchanged.
    profile_net_wait(round_trip_ms, it->round_id);
    observe_round("valid", round_trip_ms, verifier_ms, wire.size(),
                  it->round_id, it->attempt);
  } else {
    ++stats_.responses_invalid;
    if (obs_rounds_invalid_ != nullptr) obs_rounds_invalid_->inc();
    observe_round("invalid", round_trip_ms, verifier_ms, wire.size(),
                  it->round_id, it->attempt);
  }
  pending_.erase(it);
  if (obs_pending_ != nullptr) {
    obs_pending_->set(static_cast<double>(pending_.size()));
  }
}

void AttestationSession::on_reliable_response(
    const attest::AttestResponse& response, std::size_t wire_bytes) {
  const net::Retransmitter::Hit hit = rtx_->lookup(response.freshness);
  if (hit.match == net::Retransmitter::Match::kClosed) {
    // A late copy of an already-settled round: count it, drop it. The
    // round's verdict must never change.
    ++stats_.duplicate_responses;
    if (obs_duplicates_ != nullptr) obs_duplicates_->inc();
    observe_net("net.duplicate", "suppressed", wire_bytes,
                reliable_round_id(hit.round));
    return;
  }
  if (hit.match == net::Retransmitter::Match::kUnknown) {
    ++stats_.responses_invalid;
    observe_round("unmatched", -1.0, 0.0, wire_bytes);
    return;
  }
  const auto it = std::find_if(
      pending_.begin(), pending_.end(), [&](const Pending& p) {
        return p.request.freshness == response.freshness;
      });
  if (it == pending_.end()) {
    ++stats_.responses_invalid;
    observe_round("unmatched", -1.0, 0.0, wire_bytes);
    return;
  }
  // Copy before any erase: closing the round drops the round's pending
  // entries (including this one).
  const attest::AttestRequest request = it->request;
  const double sent_ms = it->sent_ms;
  const std::uint64_t round = it->round;
  const std::uint64_t round_id = it->round_id;
  const std::uint32_t attempt = it->attempt;
  const double verifier_ms = obs_.enabled() ? verifier_check_ms() : 0.0;
  const double round_trip_ms = queue_->now_ms() - sent_ms;
  if (verifier_->check_response(request, response)) {
    ++stats_.responses_valid;
    if (obs_rounds_valid_ != nullptr) obs_rounds_valid_->inc();
    // Same ordering as the plain path: the closing span finalizes the
    // round's power trace, so the net_wait phase must precede it.
    profile_net_wait(round_trip_ms, round_id);
    observe_round("valid", round_trip_ms, verifier_ms, wire_bytes, round_id,
                  attempt);
    rtx_->close_valid(round);
  } else {
    // Bad MAC on an open round (e.g. corrupted in flight): discard this
    // attempt but keep the round open — a pending retry can still
    // recover it.
    ++stats_.responses_invalid;
    if (obs_rounds_invalid_ != nullptr) obs_rounds_invalid_->inc();
    observe_round("invalid", round_trip_ms, verifier_ms, wire_bytes,
                  round_id, attempt);
    pending_.erase(it);
    if (obs_pending_ != nullptr) {
      obs_pending_->set(static_cast<double>(pending_.size()));
    }
  }
}

std::size_t AttestationSession::check_timeouts(double timeout_ms) {
  if (rtx_ != nullptr) return 0;  // rounds own their timers
  const double now = queue_->now_ms();
  std::size_t expired = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->sent_ms >= timeout_ms) {
      ++stats_.responses_missing;
      ++expired;
      if (obs_rounds_missing_ != nullptr) obs_rounds_missing_->inc();
      observe_round("missing", -1.0, 0.0, 0, it->round_id, it->attempt);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  if (expired > 0 && obs_pending_ != nullptr) {
    obs_pending_->set(static_cast<double>(pending_.size()));
  }
  return expired;
}

}  // namespace ratt::sim
