#include "ratt/sim/session.hpp"

#include <algorithm>

namespace ratt::sim {

AttestationSession::AttestationSession(EventQueue& queue, Channel& channel,
                                       attest::ProverDevice& prover,
                                       attest::Verifier& verifier)
    : queue_(&queue),
      channel_(&channel),
      prover_(&prover),
      verifier_(&verifier) {
  channel_->set_prover_sink(
      [this](const crypto::Bytes& wire) { on_prover_receives(wire); });
  channel_->set_verifier_sink(
      [this](const crypto::Bytes& wire) { on_verifier_receives(wire); });
}

void AttestationSession::set_observer(const obs::Observer& observer) {
  obs_ = observer;
  if (obs_.registry == nullptr) {
    obs_round_trip_ = nullptr;
    obs_pending_ = nullptr;
    obs_rounds_valid_ = nullptr;
    obs_rounds_invalid_ = nullptr;
    obs_rounds_missing_ = nullptr;
    return;
  }
  obs::Registry& reg = *obs_.registry;
  obs_round_trip_ = &reg.histogram("session.round_trip_ms");
  obs_pending_ = &reg.gauge("session.pending");
  obs_rounds_valid_ = &reg.counter("session.rounds.valid");
  obs_rounds_invalid_ = &reg.counter("session.rounds.invalid");
  obs_rounds_missing_ = &reg.counter("session.rounds.missing");
}

void AttestationSession::observe_round(const char* outcome,
                                       double round_trip_ms,
                                       double verifier_ms,
                                       std::size_t wire_bytes) {
  if (obs_.sink != nullptr) {
    obs::TraceRecord rec;
    rec.sim_time_ms = queue_->now_ms();
    rec.device_id = obs_.device_id;
    rec.kind = "verifier.round";
    rec.outcome = outcome;
    rec.verifier_ms = verifier_ms;
    rec.bytes = wire_bytes;
    obs_.sink->record(rec);
  }
  if (obs_round_trip_ != nullptr && round_trip_ms >= 0.0) {
    obs_round_trip_->observe(round_trip_ms);
  }
}

void AttestationSession::sync_prover_time() {
  // Bring the device up to the simulation clock (it was idling / doing
  // its primary task since the last event).
  const double now = queue_->now_ms();
  if (now > prover_time_ms_) {
    prover_->idle_ms(now - prover_time_ms_);
    prover_time_ms_ = now;
  }
}

void AttestationSession::schedule_rounds(double period_ms,
                                         double horizon_ms) {
  for (double t = period_ms; t <= horizon_ms; t += period_ms) {
    queue_->schedule_at(t, [this] { send_request(); });
  }
}

void AttestationSession::send_request() {
  sync_prover_time();
  const attest::AttestRequest request = verifier_->make_request();
  pending_.push_back(Pending{request, queue_->now_ms()});
  ++stats_.requests_sent;
  if (obs_pending_ != nullptr) {
    obs_pending_->set(static_cast<double>(pending_.size()));
  }
  channel_->verifier_send(request.to_bytes());
}

void AttestationSession::on_prover_receives(const crypto::Bytes& wire) {
  sync_prover_time();
  const auto request = attest::AttestRequest::from_bytes(wire);
  if (!request.has_value()) return;  // malformed: dropped silently
  ++stats_.requests_delivered;
  const attest::AttestOutcome outcome = prover_->handle(*request);
  prover_time_ms_ += outcome.device_ms;  // handle() advanced device time
  stats_.prover_attest_ms += outcome.device_ms;
  if (outcome.status != attest::AttestStatus::kOk) {
    ++stats_.prover_rejects;
    switch (outcome.status) {
      case attest::AttestStatus::kBadRequestMac:
        ++stats_.rejects_bad_mac;
        break;
      case attest::AttestStatus::kNotFresh:
        ++stats_.rejects_not_fresh;
        break;
      case attest::AttestStatus::kRateLimited:
        ++stats_.rejects_rate_limited;
        break;
      default:
        ++stats_.rejects_other;
        break;
    }
    return;
  }
  channel_->prover_send(outcome.response.to_bytes());
}

void AttestationSession::on_verifier_receives(const crypto::Bytes& wire) {
  const auto response = attest::AttestResponse::from_bytes(wire);
  if (!response.has_value()) return;
  ++stats_.responses_received;
  const auto it = std::find_if(
      pending_.begin(), pending_.end(), [&](const Pending& p) {
        return p.request.freshness == response->freshness;
      });
  if (it == pending_.end()) {
    ++stats_.responses_invalid;
    observe_round("unmatched", -1.0, 0.0, wire.size());
    return;
  }
  // The operator's check recomputes the prover's MAC over its reference
  // memory copy — model its cost at the reference clock.
  const double verifier_ms =
      obs_.enabled()
          ? timing::DeviceTimingModel().memory_attestation_ms(
                prover_->config().mac_alg,
                16 + prover_->config().measured_bytes)
          : 0.0;
  const double round_trip_ms = queue_->now_ms() - it->sent_ms;
  if (verifier_->check_response(it->request, *response)) {
    ++stats_.responses_valid;
    if (obs_rounds_valid_ != nullptr) obs_rounds_valid_->inc();
    observe_round("valid", round_trip_ms, verifier_ms, wire.size());
  } else {
    ++stats_.responses_invalid;
    if (obs_rounds_invalid_ != nullptr) obs_rounds_invalid_->inc();
    observe_round("invalid", round_trip_ms, verifier_ms, wire.size());
  }
  pending_.erase(it);
  if (obs_pending_ != nullptr) {
    obs_pending_->set(static_cast<double>(pending_.size()));
  }
}

std::size_t AttestationSession::check_timeouts(double timeout_ms) {
  const double now = queue_->now_ms();
  std::size_t expired = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->sent_ms >= timeout_ms) {
      ++stats_.responses_missing;
      ++expired;
      if (obs_rounds_missing_ != nullptr) obs_rounds_missing_->inc();
      observe_round("missing", -1.0, 0.0, 0);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  if (expired > 0 && obs_pending_ != nullptr) {
    obs_pending_->set(static_cast<double>(pending_.size()));
  }
  return expired;
}

}  // namespace ratt::sim
