#include "ratt/sim/session.hpp"

#include <algorithm>

namespace ratt::sim {

AttestationSession::AttestationSession(EventQueue& queue, Channel& channel,
                                       attest::ProverDevice& prover,
                                       attest::Verifier& verifier)
    : queue_(&queue),
      channel_(&channel),
      prover_(&prover),
      verifier_(&verifier) {
  channel_->set_prover_sink(
      [this](const crypto::Bytes& wire) { on_prover_receives(wire); });
  channel_->set_verifier_sink(
      [this](const crypto::Bytes& wire) { on_verifier_receives(wire); });
}

void AttestationSession::sync_prover_time() {
  // Bring the device up to the simulation clock (it was idling / doing
  // its primary task since the last event).
  const double now = queue_->now_ms();
  if (now > prover_time_ms_) {
    prover_->idle_ms(now - prover_time_ms_);
    prover_time_ms_ = now;
  }
}

void AttestationSession::schedule_rounds(double period_ms,
                                         double horizon_ms) {
  for (double t = period_ms; t <= horizon_ms; t += period_ms) {
    queue_->schedule_at(t, [this] { send_request(); });
  }
}

void AttestationSession::send_request() {
  sync_prover_time();
  const attest::AttestRequest request = verifier_->make_request();
  pending_.push_back(Pending{request, queue_->now_ms()});
  ++stats_.requests_sent;
  channel_->verifier_send(request.to_bytes());
}

void AttestationSession::on_prover_receives(const crypto::Bytes& wire) {
  sync_prover_time();
  const auto request = attest::AttestRequest::from_bytes(wire);
  if (!request.has_value()) return;  // malformed: dropped silently
  ++stats_.requests_delivered;
  const attest::AttestOutcome outcome = prover_->handle(*request);
  prover_time_ms_ += outcome.device_ms;  // handle() advanced device time
  if (outcome.status != attest::AttestStatus::kOk) {
    ++stats_.prover_rejects;
    return;
  }
  channel_->prover_send(outcome.response.to_bytes());
}

void AttestationSession::on_verifier_receives(const crypto::Bytes& wire) {
  const auto response = attest::AttestResponse::from_bytes(wire);
  if (!response.has_value()) return;
  ++stats_.responses_received;
  const auto it = std::find_if(
      pending_.begin(), pending_.end(), [&](const Pending& p) {
        return p.request.freshness == response->freshness;
      });
  if (it == pending_.end()) {
    ++stats_.responses_invalid;
    return;
  }
  if (verifier_->check_response(it->request, *response)) {
    ++stats_.responses_valid;
  } else {
    ++stats_.responses_invalid;
  }
  pending_.erase(it);
}

std::size_t AttestationSession::check_timeouts(double timeout_ms) {
  const double now = queue_->now_ms();
  std::size_t expired = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->sent_ms >= timeout_ms) {
      ++stats_.responses_missing;
      ++expired;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

}  // namespace ratt::sim
