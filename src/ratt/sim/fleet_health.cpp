#include "ratt/sim/fleet_health.hpp"

namespace ratt::sim {

std::string to_string(DeviceHealth health) {
  switch (health) {
    case DeviceHealth::kHealthy:
      return "healthy";
    case DeviceHealth::kSilent:
      return "silent";
    case DeviceHealth::kCompromised:
      return "compromised";
    case DeviceHealth::kDegraded:
      return "degraded";
    case DeviceHealth::kSuspect:
      return "suspect";
  }
  return "unknown";
}

DeviceVerdict assess_device(std::size_t device,
                            const AttestationSession::Stats& stats,
                            const HealthPolicy& policy,
                            double duty_fraction) {
  DeviceVerdict verdict;
  verdict.device = device;
  verdict.invalid_responses = stats.responses_invalid;
  verdict.duty_fraction = duty_fraction;

  const bool reliable = stats.rounds_started > 0;
  if (reliable) {
    // Per-round accounting: retries inflate requests_sent by design, so
    // the loss signal is rounds that never validated, and the terminal
    // kUnreachable fraction is its own (stronger) signal.
    const double started = static_cast<double>(stats.rounds_started);
    const std::uint64_t unanswered_rounds =
        stats.rounds_started -
        std::min(stats.rounds_started, stats.responses_valid);
    verdict.loss_fraction = static_cast<double>(unanswered_rounds) / started;
    verdict.unreachable_fraction =
        static_cast<double>(stats.rounds_unreachable) / started;
    verdict.retransmit_ratio =
        static_cast<double>(stats.retransmits) / started;
  } else {
    const std::uint64_t unanswered =
        stats.requests_sent -
        std::min(stats.requests_sent,
                 stats.responses_valid + stats.responses_invalid);
    verdict.loss_fraction =
        stats.requests_sent == 0
            ? 0.0
            : static_cast<double>(unanswered) /
                  static_cast<double>(stats.requests_sent);
  }

  // Order matters: invalid responses are the strongest signal (the
  // device is reachable but its memory does not match the reference).
  if (policy.invalid_is_compromise && stats.responses_invalid > 0) {
    verdict.health = DeviceHealth::kCompromised;
  } else if (verdict.loss_fraction >= policy.silent_threshold ||
             (reliable && verdict.unreachable_fraction >=
                              policy.unreachable_threshold)) {
    verdict.health = DeviceHealth::kSilent;
  } else if (duty_fraction > policy.degraded_duty_threshold) {
    // Responses still validate, but the device spends too much of its
    // life measuring memory — a DoS that never trips the other signals.
    verdict.health = DeviceHealth::kDegraded;
  } else if (verdict.loss_fraction > policy.suspect_threshold ||
             (reliable && verdict.retransmit_ratio >
                              policy.suspect_retransmit_ratio)) {
    verdict.health = DeviceHealth::kSuspect;
  } else {
    verdict.health = DeviceHealth::kHealthy;
  }
  return verdict;
}

std::vector<DeviceVerdict> assess_fleet(const SwarmReport& report,
                                        const HealthPolicy& policy) {
  std::vector<DeviceVerdict> verdicts;
  verdicts.reserve(report.devices.size());
  for (const auto& d : report.devices) {
    verdicts.push_back(
        assess_device(d.device, d.stats, policy, d.duty_fraction));
  }
  return verdicts;
}

void apply_alerts(DeviceVerdict& verdict,
                  std::span<const obs::ts::AlertEvent> alerts,
                  const HealthPolicy& policy) {
  bool degrading = false;  // energy burn / duty cycle: resource theft
  bool suspect = false;    // rate spike / reject ratio: campaign signature
  for (const auto& event : alerts) {
    if (event.device_id != verdict.device) continue;
    ++verdict.alerts;
    if (event.rule == "dos.energy_burn" || event.rule == "dos.duty_cycle") {
      degrading = true;
    } else {
      suspect = true;
    }
  }
  if (policy.quarantine_alerts > 0 &&
      verdict.alerts >= policy.quarantine_alerts) {
    verdict.quarantine_by_alerts = true;
  }
  if (!policy.alerts_escalate || verdict.alerts == 0) return;
  // Only escalate: alerts never soften a stronger session-level verdict.
  if (verdict.health == DeviceHealth::kHealthy ||
      verdict.health == DeviceHealth::kSuspect) {
    if (degrading) {
      verdict.health = DeviceHealth::kDegraded;
    } else if (suspect && verdict.health == DeviceHealth::kHealthy) {
      verdict.health = DeviceHealth::kSuspect;
    }
  }
}

std::vector<DeviceVerdict> assess_fleet(
    const SwarmReport& report, std::span<const obs::ts::AlertEvent> alerts,
    const HealthPolicy& policy) {
  std::vector<DeviceVerdict> verdicts = assess_fleet(report, policy);
  for (auto& verdict : verdicts) apply_alerts(verdict, alerts, policy);
  return verdicts;
}

std::vector<DeviceVerdict> assess_fleet(
    const SwarmReport& report, std::span<const obs::TraceRecord> merged,
    const obs::ts::AlertConfig& alert_config, const HealthPolicy& policy) {
  obs::ts::AlertConfig config = alert_config;
  if (config.device_count < report.devices.size()) {
    config.device_count = report.devices.size();
  }
  obs::ts::AlertEngine engine(config);
  engine.replay(merged, report.horizon_ms);
  return assess_fleet(report, engine.alerts(), policy);
}

std::vector<std::size_t> quarantine_list(
    const std::vector<DeviceVerdict>& verdicts) {
  std::vector<std::size_t> out;
  for (const auto& v : verdicts) {
    if (v.health == DeviceHealth::kCompromised ||
        v.health == DeviceHealth::kSilent || v.quarantine_by_alerts) {
      out.push_back(v.device);
    }
  }
  return out;
}

}  // namespace ratt::sim
