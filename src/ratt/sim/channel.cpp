#include "ratt/sim/channel.hpp"

#include <algorithm>

namespace ratt::sim {

void Channel::deliver(const Sink& sink, Bytes payload, double delay_ms) {
  if (!sink) return;
  // The sink is copied into the event: a delivery outlives any later
  // set_*_sink() call — and the Channel itself — without dangling. The
  // delay is clamped so no tap disposition (e.g. a negative extra delay)
  // can schedule a delivery into the past, which the queue rejects.
  queue_->schedule_in(std::max(delay_ms, 0.0),
                      [sink, payload = std::move(payload)] { sink(payload); });
}

void Channel::dispatch(const Sink& sink, Bytes payload,
                       ChannelTap::Disposition d,
                       std::uint64_t& delivery_count) {
  Bytes delivered =
      d.mutated.has_value() ? std::move(*d.mutated) : std::move(payload);
  for (const double dup_delay : d.duplicate_delays_ms) {
    ++delivery_count;
    deliver(sink, delivered, latency_ms_ + dup_delay);
  }
  ++delivery_count;
  deliver(sink, std::move(delivered), latency_ms_ + d.extra_delay_ms);
}

void Channel::verifier_send(Bytes payload) {
  TappedMessage msg{payload, queue_->now_ms(), next_id_++};
  ChannelTap::Disposition d;
  if (tap_ != nullptr) d = tap_->on_to_prover(msg);
  if (!d.deliver) return;
  dispatch(prover_sink_, std::move(payload), std::move(d),
           to_prover_count_);
}

void Channel::prover_send(Bytes payload) {
  TappedMessage msg{payload, queue_->now_ms(), next_id_++};
  ChannelTap::Disposition d;
  if (tap_ != nullptr) d = tap_->on_to_verifier(msg);
  if (!d.deliver) return;
  dispatch(verifier_sink_, std::move(payload), std::move(d),
           to_verifier_count_);
}

void Channel::inject_to_prover(Bytes payload, double delay_ms) {
  ++to_prover_count_;
  deliver(prover_sink_, std::move(payload), delay_ms);
}

void Channel::inject_to_verifier(Bytes payload, double delay_ms) {
  ++to_verifier_count_;
  deliver(verifier_sink_, std::move(payload), delay_ms);
}

}  // namespace ratt::sim
