#include "ratt/sim/channel.hpp"

namespace ratt::sim {

void Channel::deliver(const Sink& sink, Bytes payload, double delay_ms) {
  if (!sink) return;
  queue_->schedule_in(delay_ms,
                      [&sink, payload = std::move(payload)] { sink(payload); });
}

void Channel::verifier_send(Bytes payload) {
  TappedMessage msg{payload, queue_->now_ms(), next_id_++};
  ChannelTap::Disposition d;
  if (tap_ != nullptr) d = tap_->on_to_prover(msg);
  if (!d.deliver) return;
  ++to_prover_count_;
  deliver(prover_sink_, std::move(payload), latency_ms_ + d.extra_delay_ms);
}

void Channel::prover_send(Bytes payload) {
  TappedMessage msg{payload, queue_->now_ms(), next_id_++};
  ChannelTap::Disposition d;
  if (tap_ != nullptr) d = tap_->on_to_verifier(msg);
  if (!d.deliver) return;
  ++to_verifier_count_;
  deliver(verifier_sink_, std::move(payload), latency_ms_ + d.extra_delay_ms);
}

void Channel::inject_to_prover(Bytes payload, double delay_ms) {
  ++to_prover_count_;
  deliver(prover_sink_, std::move(payload), delay_ms);
}

void Channel::inject_to_verifier(Bytes payload, double delay_ms) {
  ++to_verifier_count_;
  deliver(verifier_sink_, std::move(payload), delay_ms);
}

}  // namespace ratt::sim
