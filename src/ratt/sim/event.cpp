#include "ratt/sim/event.hpp"

#include <stdexcept>

namespace ratt::sim {

void EventQueue::schedule_at(double at_ms, Action action) {
  if (at_ms < now_ms_) {
    throw std::invalid_argument("EventQueue: scheduling into the past");
  }
  queue_.push(Event{at_ms, next_seq_++, std::move(action)});
}

void EventQueue::schedule_in(double delay_ms, Action action) {
  schedule_at(now_ms_ + delay_ms, std::move(action));
}

bool EventQueue::run_next() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move via const_cast is UB-prone,
  // so copy the (small) action handle instead.
  Event ev = queue_.top();
  queue_.pop();
  now_ms_ = ev.at_ms;
  ev.action();
  return true;
}

void EventQueue::run_until(double until_ms) {
  while (!queue_.empty() && queue_.top().at_ms <= until_ms) {
    run_next();
  }
  now_ms_ = std::max(now_ms_, until_ms);
}

void EventQueue::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (run_next()) {
    if (++n >= max_events) {
      throw std::runtime_error("EventQueue: event cascade exceeded bound");
    }
  }
}

}  // namespace ratt::sim
