#include "ratt/sim/event.hpp"

#include <algorithm>
#include <stdexcept>

namespace ratt::sim {

void EventQueue::set_observer(obs::Registry* registry) {
  if (registry == nullptr) {
    obs_backlog_ = nullptr;
    obs_latency_ = nullptr;
    obs_events_run_ = nullptr;
    obs_leftover_ = nullptr;
    return;
  }
  obs_backlog_ = &registry->gauge("queue.backlog");
  obs_latency_ = &registry->histogram("queue.event_latency_ms");
  obs_events_run_ = &registry->counter("queue.events_run");
  obs_leftover_ = &registry->gauge("queue.runaway_leftover");
}

void EventQueue::schedule_at(double at_ms, Action action) {
  if (at_ms < now_ms_) {
    throw std::invalid_argument("EventQueue: scheduling into the past");
  }
  heap_.push_back(Event{at_ms, next_seq_++, now_ms_, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (obs_backlog_ != nullptr) {
    obs_backlog_->set(static_cast<double>(heap_.size()));
  }
}

void EventQueue::schedule_in(double delay_ms, Action action) {
  schedule_at(now_ms_ + delay_ms, std::move(action));
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // pop_heap moves the earliest event to the back; move it out — the
  // std::function changes hands without a copy (and without the per-event
  // allocation the old priority_queue::top() copy paid).
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  // Commit queue state before invoking the action: if it throws, the
  // event is consumed, now_ms has advanced and the instruments agree
  // with the heap — the caller can keep running the queue.
  now_ms_ = ev.at_ms;
  if (obs_backlog_ != nullptr) {
    obs_backlog_->set(static_cast<double>(heap_.size()));
    obs_latency_->observe(ev.at_ms - ev.scheduled_ms);
    obs_events_run_->inc();
  }
  ev.action();
  return true;
}

void EventQueue::run_until(double until_ms) {
  while (!heap_.empty() && heap_.front().at_ms <= until_ms) {
    run_next();
  }
  now_ms_ = std::max(now_ms_, until_ms);
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && run_next()) ++n;
  const std::size_t leftover = heap_.size();
  if (obs_leftover_ != nullptr) {
    obs_leftover_->set(static_cast<double>(leftover));
  }
  return leftover;
}

}  // namespace ratt::sim
