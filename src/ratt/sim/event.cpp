#include "ratt/sim/event.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace ratt::sim {

void EventQueue::set_observer(obs::Registry* registry) {
  if (registry == nullptr) {
    obs_backlog_ = nullptr;
    obs_latency_ = nullptr;
    obs_events_run_ = nullptr;
    obs_leftover_ = nullptr;
    return;
  }
  obs_backlog_ = &registry->gauge("queue.backlog");
  obs_latency_ = &registry->histogram("queue.event_latency_ms");
  obs_events_run_ = &registry->counter("queue.events_run");
  obs_leftover_ = &registry->gauge("queue.runaway_leftover");
}

void EventQueue::schedule_at(double at_ms, Action action) {
  if (!std::isfinite(at_ms)) {
    // NaN compares false against now_ms_ below AND against every other
    // event time, so it would both bypass the past-check and break the
    // strict weak ordering of the heaps. Infinities order but never run.
    throw std::invalid_argument("EventQueue: non-finite event time");
  }
  if (at_ms < now_ms_) {
    throw std::invalid_argument("EventQueue: scheduling into the past");
  }
  Event ev{at_ms, next_seq_++, now_ms_, std::move(action)};
  if (wheel_enabled_) {
    wheel_place(std::move(ev));
    ++wheel_size_;
  } else {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  if (obs_backlog_ != nullptr) {
    obs_backlog_->set(static_cast<double>(pending()));
  }
}

void EventQueue::schedule_in(double delay_ms, Action action) {
  schedule_at(now_ms_ + delay_ms, std::move(action));
}

void EventQueue::set_wheel_enabled(bool enabled) {
  if (enabled == wheel_enabled_) return;
  if (!empty()) {
    throw std::logic_error(
        "EventQueue::set_wheel_enabled: queue must be empty to switch "
        "scheduling structures");
  }
  wheel_enabled_ = enabled;
}

std::uint64_t EventQueue::tick_of(double at_ms) {
  // Saturate far-future times: they live in the overflow heap, which
  // orders by exact at_ms anyway, so a clamped tick only affects when
  // they re-enter the wheel — never their execution order.
  constexpr double kMaxTick = 9.0e15;  // < 2^53, exactly representable
  if (at_ms >= kMaxTick * kTickMs) return static_cast<std::uint64_t>(kMaxTick);
  return static_cast<std::uint64_t>(at_ms / kTickMs);
}

void EventQueue::wheel_place(Event&& ev) {
  const std::uint64_t t = tick_of(ev.at_ms);
  if (t <= cursor_) {
    // At or behind the cursor tick: the mini-heap gives exact
    // (at_ms, seq) order, including sub-tick interleavings.
    current_.push_back(std::move(ev));
    std::push_heap(current_.begin(), current_.end(), Later{});
    return;
  }
  const std::uint64_t d = t - cursor_;
  if (d >= kWheelSpan) {
    overflow_.push_back(std::move(ev));
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    return;
  }
  // Level k covers distances [64^k, 64^(k+1)).
  int level = 0;
  while ((d >> (kSlotBits * (level + 1))) != 0) ++level;
  const std::uint64_t idx = (t >> (kSlotBits * level)) & (kSlotsPerLevel - 1);
  Slot& slot = slots_[static_cast<std::size_t>(level) * kSlotsPerLevel + idx];
  if (slot.events.empty() || t < slot.min_tick) slot.min_tick = t;
  slot.events.push_back(std::move(ev));
  occupied_[static_cast<std::size_t>(level)] |= 1ull << idx;
}

std::uint64_t EventQueue::wheel_next_tick() const {
  std::uint64_t best = ~0ull;
  for (int level = 0; level < kLevels; ++level) {
    const std::uint64_t bits = occupied_[static_cast<std::size_t>(level)];
    if (bits == 0) continue;
    // Pending slots on level k hold coordinates (tick >> 6k) in
    // (u, u+64] where u is the cursor's coordinate; rotating the
    // occupancy bitmap so slot u+1 lands at bit 0 makes the first set
    // bit the level's earliest slot.
    const std::uint64_t u = cursor_ >> (kSlotBits * level);
    const int rot = static_cast<int>((u + 1) & (kSlotsPerLevel - 1));
    const std::uint64_t rolled = std::rotr(bits, rot);
    const int j = std::countr_zero(rolled);
    std::uint64_t candidate;
    if (level == 0) {
      // An L0 slot holds exactly one tick value, cursor_ + distance.
      candidate = cursor_ + static_cast<std::uint64_t>(j) + 1;
    } else {
      const std::uint64_t idx =
          static_cast<std::uint64_t>(rot + j) & (kSlotsPerLevel - 1);
      candidate =
          slots_[static_cast<std::size_t>(level) * kSlotsPerLevel + idx]
              .min_tick;
    }
    // The cross-level min matters: an outer-level event that has not
    // cascaded yet can still precede every inner-level candidate.
    best = std::min(best, candidate);
  }
  if (!overflow_.empty()) {
    best = std::min(best, tick_of(overflow_.front().at_ms));
  }
  return best;
}

void EventQueue::wheel_advance_to(std::uint64_t tick) {
  cursor_ = tick;
  // Overflow events now inside the wheel span re-enter the hierarchy.
  while (!overflow_.empty()) {
    const std::uint64_t t = tick_of(overflow_.front().at_ms);
    if (t - cursor_ >= kWheelSpan) break;
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Event ev = std::move(overflow_.back());
    overflow_.pop_back();
    wheel_place(std::move(ev));
  }
  // Cascade outer levels first: a slot spilled from L3 can land in
  // L2/L1/L0 slots that the lower iterations then visit.
  for (int level = kLevels - 1; level >= 1; --level) {
    const std::uint64_t idx =
        (tick >> (kSlotBits * level)) & (kSlotsPerLevel - 1);
    Slot& slot = slots_[static_cast<std::size_t>(level) * kSlotsPerLevel + idx];
    if (slot.events.empty()) continue;
    // Same slot index also serves ticks a whole level period later; the
    // slot only cascades when its stored epoch is the one landed on.
    if ((slot.min_tick >> (kSlotBits * level)) !=
        (tick >> (kSlotBits * level))) {
      continue;
    }
    std::vector<Event> moved;
    moved.swap(slot.events);
    occupied_[static_cast<std::size_t>(level)] &= ~(1ull << idx);
    for (auto& ev : moved) wheel_place(std::move(ev));
  }
  // The landed L0 slot holds exactly tick `tick`; the whole bucket moves
  // to the current mini-heap.
  const std::uint64_t idx0 = tick & (kSlotsPerLevel - 1);
  Slot& slot0 = slots_[idx0];
  if (!slot0.events.empty()) {
    for (auto& ev : slot0.events) {
      current_.push_back(std::move(ev));
      std::push_heap(current_.begin(), current_.end(), Later{});
    }
    slot0.events.clear();
    occupied_[0] &= ~(1ull << idx0);
  }
}

void EventQueue::wheel_load_current() {
  // The next tick always yields at least one event into current_: it is
  // the min over L0 candidates, level min_ticks and the overflow top,
  // and advancing to it drains the structure that produced it.
  wheel_advance_to(wheel_next_tick());
}

bool EventQueue::wheel_pop(Event& out) {
  if (wheel_size_ == 0) return false;
  if (current_.empty()) wheel_load_current();
  std::pop_heap(current_.begin(), current_.end(), Later{});
  out = std::move(current_.back());
  current_.pop_back();
  --wheel_size_;
  return true;
}

double EventQueue::next_time() {
  if (!wheel_enabled_) return heap_.front().at_ms;
  // May load a tick into current_; harmless — later insertions with a
  // tick at or behind the cursor route to current_ and still sort in
  // exact (at_ms, seq) order, and now_ms_ is untouched here.
  if (current_.empty()) wheel_load_current();
  return current_.front().at_ms;
}

bool EventQueue::run_next() {
  Event ev;
  if (wheel_enabled_) {
    if (!wheel_pop(ev)) return false;
  } else {
    if (heap_.empty()) return false;
    // pop_heap moves the earliest event to the back; move it out — the
    // std::function changes hands without a copy (and without the
    // per-event allocation the old priority_queue::top() copy paid).
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    ev = std::move(heap_.back());
    heap_.pop_back();
  }
  // Commit queue state before invoking the action: if it throws, the
  // event is consumed, now_ms has advanced and the instruments agree
  // with the pending set — the caller can keep running the queue.
  now_ms_ = ev.at_ms;
  if (obs_backlog_ != nullptr) {
    obs_backlog_->set(static_cast<double>(pending()));
    obs_latency_->observe(ev.at_ms - ev.scheduled_ms);
    obs_events_run_->inc();
  }
  ev.action();
  return true;
}

void EventQueue::run_until(double until_ms) {
  while (!empty() && next_time() <= until_ms) {
    run_next();
  }
  now_ms_ = std::max(now_ms_, until_ms);
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && run_next()) ++n;
  const std::size_t leftover = pending();
  if (obs_leftover_ != nullptr) {
    obs_leftover_->set(static_cast<double>(leftover));
  }
  return leftover;
}

}  // namespace ratt::sim
