// Operator-side fleet health policy: turns raw session statistics into
// per-device verdicts an operator can act on (future-work item 1).
//
// The verifier is the trusted party here, so this logic is free to be
// stateful and generous with memory — the asymmetry the paper builds on
// cuts the other way on this side of the protocol.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ratt/sim/swarm.hpp"

namespace ratt::sim {

enum class DeviceHealth : std::uint8_t {
  kHealthy,      // responses arriving and validating
  kSilent,       // requests time out — link loss or a DoS'd/bricked device
  kCompromised,  // responses arrive but fail validation — bad memory state
  kSuspect,      // mixed signals (some losses, some validations)
};

std::string to_string(DeviceHealth health);

struct HealthPolicy {
  /// Missing-response fraction above which a device is kSilent.
  double silent_threshold = 0.5;
  /// Any invalid response marks the device kCompromised.
  bool invalid_is_compromise = true;
  /// Loss fraction above which an otherwise-valid device is kSuspect.
  double suspect_threshold = 0.1;
};

struct DeviceVerdict {
  std::size_t device = 0;
  DeviceHealth health = DeviceHealth::kHealthy;
  double loss_fraction = 0.0;
  std::uint64_t invalid_responses = 0;
};

/// Classify one device from its session statistics.
DeviceVerdict assess_device(std::size_t device,
                            const AttestationSession::Stats& stats,
                            const HealthPolicy& policy = HealthPolicy{});

/// Classify a whole fleet report.
std::vector<DeviceVerdict> assess_fleet(
    const SwarmReport& report, const HealthPolicy& policy = HealthPolicy{});

/// Devices an operator should quarantine (kCompromised or kSilent).
std::vector<std::size_t> quarantine_list(
    const std::vector<DeviceVerdict>& verdicts);

}  // namespace ratt::sim
