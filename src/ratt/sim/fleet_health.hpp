// Operator-side fleet health policy: turns raw session statistics into
// per-device verdicts an operator can act on (future-work item 1).
//
// The verifier is the trusted party here, so this logic is free to be
// stateful and generous with memory — the asymmetry the paper builds on
// cuts the other way on this side of the protocol.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ratt/obs/ts/alert.hpp"
#include "ratt/sim/swarm.hpp"

namespace ratt::sim {

enum class DeviceHealth : std::uint8_t {
  kHealthy,      // responses arriving and validating
  kSilent,       // requests time out — link loss or a DoS'd/bricked device
  kCompromised,  // responses arrive but fail validation — bad memory state
  kDegraded,     // valid, but attestation is eating its real-time duty —
                 // the paper's Sec. 3.1 disruption, visible operator-side
  kSuspect,      // mixed signals (some losses, some validations)
};

std::string to_string(DeviceHealth health);

struct HealthPolicy {
  /// Missing-response fraction above which a device is kSilent.
  double silent_threshold = 0.5;
  /// Any invalid response marks the device kCompromised.
  bool invalid_is_compromise = true;
  /// Loss fraction above which an otherwise-valid device is kSuspect.
  double suspect_threshold = 0.1;
  /// Duty-cycle fraction spent in attestation above which a responsive,
  /// validating device is still kDegraded (its primary task is starving).
  double degraded_duty_threshold = 0.25;
  /// Alert-driven escalation (ratt::obs::ts): an otherwise-healthy device
  /// with a firing dos.energy_burn or dos.duty_cycle alert becomes
  /// kDegraded, one with dos.rate_spike or dos.reject_ratio becomes
  /// kSuspect — the device's own metrics flag the campaign even when the
  /// aggregate session statistics still look clean.
  bool alerts_escalate = true;
  /// A device that accumulated at least this many alerts over the window
  /// is quarantined outright (0 disables alert-based quarantine).
  std::uint64_t quarantine_alerts = 8;
  /// Reliable-exchange signals (inert unless the session ran with
  /// enable_reliable — rounds_started > 0). A device whose fraction of
  /// rounds ended kUnreachable reaches this bar is kSilent: the retry
  /// budget already absorbed ordinary loss, so exhaustion means the
  /// device (or its whole link) is gone.
  double unreachable_threshold = 0.5;
  /// Retransmits per started round above which an otherwise-healthy
  /// device is kSuspect — rounds still complete, but only because the
  /// retry engine is papering over a degrading link.
  double suspect_retransmit_ratio = 1.0;
};

struct DeviceVerdict {
  std::size_t device = 0;
  DeviceHealth health = DeviceHealth::kHealthy;
  double loss_fraction = 0.0;
  std::uint64_t invalid_responses = 0;
  /// Fraction of the observation window spent in attestation.
  double duty_fraction = 0.0;
  /// Reliable-exchange signals (0 when the session was not reliable).
  double unreachable_fraction = 0.0;
  double retransmit_ratio = 0.0;
  /// Alerts the obs::ts engine attributed to this device (0 when health
  /// was assessed without an alert feed).
  std::uint64_t alerts = 0;
  /// Set when the alert volume alone crossed the quarantine bar.
  bool quarantine_by_alerts = false;
};

/// Classify one device from its session statistics. `duty_fraction` is
/// the share of the observation window the device spent in attestation
/// (0 when unknown — duty grading is then skipped).
DeviceVerdict assess_device(std::size_t device,
                            const AttestationSession::Stats& stats,
                            const HealthPolicy& policy = HealthPolicy{},
                            double duty_fraction = 0.0);

/// Classify a whole fleet report.
std::vector<DeviceVerdict> assess_fleet(
    const SwarmReport& report, const HealthPolicy& policy = HealthPolicy{});

/// Classify a fleet report with the obs::ts alert stream folded in: each
/// device's verdict is escalated per the policy's alert rules, so a
/// device under Adv_ext flooding or Adv_roam replay transitions to
/// kDegraded / quarantine from its own metrics even while its session
/// statistics still validate.
std::vector<DeviceVerdict> assess_fleet(
    const SwarmReport& report, std::span<const obs::ts::AlertEvent> alerts,
    const HealthPolicy& policy = HealthPolicy{});

/// Classify a fleet report from a merged trace stream (Swarm::merged_trace
/// after a sharded run): builds an AlertEngine with `alert_config`, replays
/// the stream through it, then delegates to the alerts overload. Because
/// the merge is canonical and alerts depend only on the record stream, the
/// verdicts are identical at any thread/shard count.
std::vector<DeviceVerdict> assess_fleet(
    const SwarmReport& report, std::span<const obs::TraceRecord> merged,
    const obs::ts::AlertConfig& alert_config,
    const HealthPolicy& policy = HealthPolicy{});

/// Escalate one verdict given its device's alert stream (exposed for
/// single-device harnesses; assess_fleet calls this per device).
void apply_alerts(DeviceVerdict& verdict,
                  std::span<const obs::ts::AlertEvent> alerts,
                  const HealthPolicy& policy);

/// Devices an operator should quarantine: kCompromised or kSilent, plus
/// any verdict whose alert volume crossed the policy's quarantine bar.
std::vector<std::size_t> quarantine_list(
    const std::vector<DeviceVerdict>& verdicts);

}  // namespace ratt::sim
