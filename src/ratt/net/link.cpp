#include "ratt/net/link.hpp"

#include <charconv>
#include <cmath>

namespace ratt::net {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

bool LinkProfile::is_clean() const {
  return loss_to_prover == 0.0 && loss_to_verifier == 0.0 &&
         jitter_ms == 0.0 && dup_probability == 0.0 &&
         corrupt_probability == 0.0 && burst_probability == 0.0;
}

LinkProfile clean_link() { return LinkProfile{}; }

LinkProfile lossy10_link() {
  LinkProfile p;
  p.name = "lossy10";
  p.loss_to_prover = 0.10;
  p.loss_to_verifier = 0.10;
  p.jitter_ms = 10.0;
  return p;
}

LinkProfile bursty_link() {
  LinkProfile p;
  p.name = "bursty";
  p.loss_to_prover = 0.02;
  p.loss_to_verifier = 0.02;
  p.jitter_ms = 5.0;
  p.burst_probability = 0.05;
  p.burst_ms = 120.0;
  return p;
}

LinkProfile hostile_link() {
  LinkProfile p;
  p.name = "hostile";
  p.loss_to_prover = 0.25;
  p.loss_to_verifier = 0.25;
  p.jitter_ms = 25.0;
  p.dup_probability = 0.15;
  p.dup_delay_ms = 20.0;
  p.corrupt_probability = 0.10;
  p.corrupt_max_bits = 8;
  p.burst_probability = 0.08;
  p.burst_ms = 200.0;
  return p;
}

const std::vector<LinkProfile>& all_link_profiles() {
  static const std::vector<LinkProfile> profiles = {
      clean_link(), lossy10_link(), bursty_link(), hostile_link()};
  return profiles;
}

std::optional<LinkProfile> link_profile_by_name(std::string_view name) {
  for (const LinkProfile& p : all_link_profiles()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

crypto::Bytes corrupt_bytes(crypto::HmacDrbg& drbg, crypto::Bytes frame,
                            std::uint32_t max_bits) {
  if (frame.empty()) return frame;
  const std::uint64_t flips =
      max_bits <= 1 ? 1 : 1 + drbg.uniform(max_bits);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::uint64_t bit = drbg.uniform(frame.size() * 8);
    frame[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
  }
  return frame;
}

std::string to_log_line(const LinkEvent& event) {
  std::string out;
  out.reserve(96);
  out += "[t=";
  append_double(out, event.sim_time_ms);
  out += "ms] msg ";
  append_u64(out, event.msg_id);
  out += ' ';
  out += event.direction;
  out += ' ';
  out += event.action;
  out += " copies=";
  append_u64(out, event.copies);
  out += " corrupted=";
  out += event.corrupted ? '1' : '0';
  out += " delay=";
  append_double(out, event.extra_delay_ms);
  return out;
}

std::string to_log(std::span<const LinkEvent> events) {
  std::string out;
  for (const LinkEvent& event : events) {
    out += to_log_line(event);
    out += '\n';
  }
  return out;
}

FaultyLink::FaultyLink(LinkProfile profile, crypto::ByteView seed,
                       std::size_t event_capacity)
    : profile_(std::move(profile)),
      drbg_(seed),
      event_capacity_(event_capacity) {
  events_.reserve(std::min<std::size_t>(event_capacity_, 1024));
}

bool FaultyLink::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  // Fixed-point comparison keeps the draw deterministic across platforms.
  const auto threshold =
      static_cast<std::uint64_t>(std::llround(probability * 1e6));
  return drbg_.uniform(1'000'000) < threshold;
}

double FaultyLink::uniform_ms(double bound_ms) {
  if (bound_ms <= 0.0) return 0.0;
  // Microsecond resolution: uniform over [0, bound_ms).
  const auto bound_us =
      static_cast<std::uint64_t>(std::llround(bound_ms * 1000.0));
  if (bound_us == 0) return 0.0;
  return static_cast<double>(drbg_.uniform(bound_us)) / 1000.0;
}

void FaultyLink::log(LinkEvent event) {
  if (event_capacity_ == 0) return;
  if (events_.size() >= event_capacity_) {
    ++events_dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

FaultyLink::Disposition FaultyLink::apply(DirectionState& dir,
                                          LinkDirectionStats& stats,
                                          const sim::TappedMessage& msg,
                                          char tag, double loss,
                                          Disposition inner) {
  ++stats.seen;
  LinkEvent event;
  event.sim_time_ms = msg.sent_ms;
  event.msg_id = msg.id;
  event.direction = tag;

  if (!inner.deliver) {
    // The chained (adversary) tap already dropped it; record nothing —
    // the honest link never saw a deliverable message.
    return inner;
  }

  // 1. Burst outage window.
  if (msg.sent_ms < dir.outage_until_ms) {
    ++stats.outage_drops;
    event.action = "outage";
    log(std::move(event));
    inner.deliver = false;
    return inner;
  }
  if (chance(profile_.burst_probability)) {
    dir.outage_until_ms = msg.sent_ms + profile_.burst_ms;
    ++stats_.outages;
    ++stats.outage_drops;
    event.action = "outage";
    log(std::move(event));
    inner.deliver = false;
    return inner;
  }

  // 2. Random loss.
  if (chance(loss)) {
    ++stats.dropped;
    event.action = "drop";
    log(std::move(event));
    inner.deliver = false;
    return inner;
  }

  // 3. Jitter (the reordering mechanism).
  const double jitter = uniform_ms(profile_.jitter_ms);
  inner.extra_delay_ms += jitter;
  event.extra_delay_ms = jitter;
  event.copies = 1;

  // 4. Duplication.
  if (chance(profile_.dup_probability)) {
    inner.duplicate_delays_ms.push_back(inner.extra_delay_ms +
                                        uniform_ms(profile_.dup_delay_ms));
    ++stats.duplicates;
    ++event.copies;
  }

  // 5. Corruption (every copy of this send carries the same flips).
  if (chance(profile_.corrupt_probability)) {
    inner.mutated = corrupt_bytes(
        drbg_, inner.mutated.value_or(msg.payload), profile_.corrupt_max_bits);
    ++stats.corrupted;
    event.corrupted = true;
  }

  stats.delivered += event.copies;
  event.action = "deliver";
  log(std::move(event));
  return inner;
}

FaultyLink::Disposition FaultyLink::on_to_prover(
    const sim::TappedMessage& msg) {
  Disposition inner;
  if (inner_ != nullptr) inner = inner_->on_to_prover(msg);
  return apply(to_prover_, stats_.to_prover, msg, 'P',
               profile_.loss_to_prover, std::move(inner));
}

FaultyLink::Disposition FaultyLink::on_to_verifier(
    const sim::TappedMessage& msg) {
  Disposition inner;
  if (inner_ != nullptr) inner = inner_->on_to_verifier(msg);
  return apply(to_verifier_, stats_.to_verifier, msg, 'V',
               profile_.loss_to_verifier, std::move(inner));
}

}  // namespace ratt::net
