// ratt::net — transport fault model for the Dolev-Yao wire (Sec. 3.2).
//
// The paper's Adv_ext can drop, delay, reorder, duplicate and corrupt
// traffic; a real low-power radio does most of that for free. FaultyLink
// is a sim::ChannelTap that applies a declarative LinkProfile to every
// honest send, driven by a seeded crypto::HmacDrbg so the whole fault
// schedule is a pure function of (profile, seed, message arrival order):
// the same seed reproduces the same drops, delays, duplicates and bit
// flips byte-for-byte, which is what the seed-sweep property suite in
// tests/net/ relies on.
//
// Fault order per observed message (draws only happen for knobs that are
// enabled, so a clean profile consumes zero DRBG output):
//   1. burst outage  — messages inside an outage window are dropped;
//                      a fresh outage can start on any observed message,
//   2. random loss   — per-direction probability,
//   3. jitter        — uniform extra per-message latency (this is what
//                      reorders: a later send can overtake an earlier
//                      one whose jitter draw was larger),
//   4. duplication   — an extra copy delivered with its own delay,
//   5. corruption    — 1..N random bit flips on the delivered bytes
//                      (every copy of the send carries the same flips).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ratt/crypto/drbg.hpp"
#include "ratt/sim/channel.hpp"

namespace ratt::net {

/// Declarative fault model for one duplex link. All probabilities are in
/// [0, 1]; a default-constructed profile is the clean (fault-free) link.
struct LinkProfile {
  std::string name = "clean";
  /// Per-direction random loss (Adv_ext drops; radio fading).
  double loss_to_prover = 0.0;
  double loss_to_verifier = 0.0;
  /// Uniform extra per-message latency in [0, jitter_ms) — the reordering
  /// mechanism: messages overtake each other when their draws differ by
  /// more than the send gap.
  double jitter_ms = 0.0;
  /// Chance a delivered message is duplicated; the copy arrives with an
  /// extra uniform delay in [0, dup_delay_ms).
  double dup_probability = 0.0;
  double dup_delay_ms = 8.0;
  /// Chance the delivered bytes are bit-mangled (1..corrupt_max_bits
  /// flips). Parsers and MACs must reject; see tests/attest/wire_fuzz.
  double corrupt_probability = 0.0;
  std::uint32_t corrupt_max_bits = 8;
  /// Burst outages / partitions: on any observed message, with this
  /// probability the link goes dark for burst_ms (both the triggering
  /// message and everything sent before the outage ends is dropped).
  double burst_probability = 0.0;
  double burst_ms = 0.0;

  /// True when no fault can ever fire (FaultyLink is then pass-through
  /// and draws no DRBG output).
  bool is_clean() const;

  friend bool operator==(const LinkProfile&, const LinkProfile&) = default;
};

/// The four named profiles the benches and the seed-sweep suite use.
LinkProfile clean_link();
LinkProfile lossy10_link();   // 10% loss each way + 10 ms jitter
LinkProfile bursty_link();    // light loss, 120 ms outages
LinkProfile hostile_link();   // heavy loss + dup + corruption + outages
const std::vector<LinkProfile>& all_link_profiles();
/// Lookup by name ("clean", "lossy10", "bursty", "hostile").
std::optional<LinkProfile> link_profile_by_name(std::string_view name);

/// Flip 1..max_bits random bit positions of `frame` (no-op on an empty
/// frame). Exposed so the wire fuzzers can mangle frames exactly the way
/// FaultyLink does on the wire.
crypto::Bytes corrupt_bytes(crypto::HmacDrbg& drbg, crypto::Bytes frame,
                            std::uint32_t max_bits);

/// One fault decision, for the deterministic link event trace.
struct LinkEvent {
  double sim_time_ms = 0.0;
  std::uint64_t msg_id = 0;
  char direction = 'P';    // 'P' = to prover, 'V' = to verifier
  /// "deliver", "drop" (random loss), "outage" (burst window).
  std::string action;
  std::uint32_t copies = 0;    // deliveries scheduled (0 when dropped)
  bool corrupted = false;
  double extra_delay_ms = 0.0; // jitter applied to the primary copy

  friend bool operator==(const LinkEvent&, const LinkEvent&) = default;
};

/// Deterministic one-line rendering (seed-sweep byte-identity surface).
std::string to_log_line(const LinkEvent& event);
std::string to_log(std::span<const LinkEvent> events);

/// Per-direction delivery accounting. Note the distinction the channel
/// docs make: `delivered` counts *deliveries* (copies scheduled), so a
/// duplicated message contributes 2.
struct LinkDirectionStats {
  std::uint64_t seen = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;       // random loss
  std::uint64_t outage_drops = 0;  // dropped inside a burst window
  std::uint64_t duplicates = 0;
  std::uint64_t corrupted = 0;

  friend bool operator==(const LinkDirectionStats&,
                         const LinkDirectionStats&) = default;
};

struct LinkStats {
  LinkDirectionStats to_prover;
  LinkDirectionStats to_verifier;
  std::uint64_t outages = 0;  // burst windows entered (both directions)

  friend bool operator==(const LinkStats&, const LinkStats&) = default;
};

/// The fault-injecting tap. Chainable: set_inner() installs another tap
/// (e.g. a RecordingTap) that observes every honest send *before* faults
/// apply — its drop/delay verdict composes with the injected faults.
class FaultyLink : public sim::ChannelTap {
 public:
  /// `event_capacity` bounds the in-memory event trace; overflow is
  /// counted in events_dropped(), not stored. 0 disables the trace.
  FaultyLink(LinkProfile profile, crypto::ByteView seed,
             std::size_t event_capacity = 1024);

  void set_inner(sim::ChannelTap* tap) { inner_ = tap; }

  Disposition on_to_prover(const sim::TappedMessage& msg) override;
  Disposition on_to_verifier(const sim::TappedMessage& msg) override;

  const LinkProfile& profile() const { return profile_; }
  const LinkStats& stats() const { return stats_; }
  std::span<const LinkEvent> events() const { return events_; }
  std::uint64_t events_dropped() const { return events_dropped_; }

 private:
  struct DirectionState {
    double outage_until_ms = -1.0;
  };

  Disposition apply(DirectionState& dir, LinkDirectionStats& stats,
                    const sim::TappedMessage& msg, char tag, double loss,
                    Disposition inner);
  bool chance(double probability);
  double uniform_ms(double bound_ms);
  void log(LinkEvent event);

  LinkProfile profile_;
  crypto::HmacDrbg drbg_;
  sim::ChannelTap* inner_ = nullptr;
  DirectionState to_prover_;
  DirectionState to_verifier_;
  LinkStats stats_;
  std::vector<LinkEvent> events_;
  std::size_t event_capacity_;
  std::uint64_t events_dropped_ = 0;
};

}  // namespace ratt::net
