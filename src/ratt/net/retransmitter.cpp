#include "ratt/net/retransmitter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ratt::net {

namespace {

/// Closed rounds retained for duplicate-response matching. A response
/// older than this many rounds falls back to kUnknown — bounded memory
/// beats perfect attribution of arbitrarily ancient duplicates.
constexpr std::size_t kClosedHistory = 64;

}  // namespace

double RetryPolicy::timeout_for_attempt(std::uint32_t attempt) const {
  double timeout = base_timeout_ms;
  for (std::uint32_t i = 1; i < attempt; ++i) timeout *= backoff_factor;
  return std::min(timeout, max_timeout_ms);
}

double derive_timeout_ms(const timing::DeviceTimingModel& model,
                         crypto::MacAlgorithm alg,
                         std::size_t measured_bytes, double round_trip_ms,
                         double margin) {
  const double work =
      model.request_auth_ms(alg) +
      model.memory_attestation_ms(alg, 16 + measured_bytes);
  return round_trip_ms + margin * work;
}

std::string to_string(RoundOutcome outcome) {
  switch (outcome) {
    case RoundOutcome::kValid:
      return "valid";
    case RoundOutcome::kUnreachable:
      return "unreachable";
  }
  return "unknown";
}

Retransmitter::Retransmitter(const RetryPolicy& policy,
                             crypto::ByteView jitter_seed)
    : policy_(policy), drbg_(jitter_seed) {
  if (policy_.max_attempts == 0) policy_.max_attempts = 1;
  if (policy_.base_timeout_ms <= 0.0) {
    throw std::invalid_argument(
        "Retransmitter: base_timeout_ms must be positive (derive one "
        "with net::derive_timeout_ms)");
  }
}

void Retransmitter::set_hooks(ScheduleFn schedule, SendFn send,
                              CloseFn close, TimeoutFn on_timeout) {
  schedule_ = std::move(schedule);
  send_ = std::move(send);
  close_ = std::move(close);
  on_timeout_ = std::move(on_timeout);
}

Retransmitter::Round* Retransmitter::find(std::uint64_t round) {
  for (Round& r : rounds_) {
    if (r.id == round) return &r;
  }
  return nullptr;
}

std::uint64_t Retransmitter::start_round() {
  if (!schedule_ || !send_ || !close_) {
    throw std::logic_error("Retransmitter: hooks not set");
  }
  prune();
  Round round;
  round.id = next_round_++;
  rounds_.push_back(std::move(round));
  ++open_;
  ++stats_.rounds_started;
  send_attempt(rounds_.back());
  return rounds_.back().id;
}

void Retransmitter::send_attempt(Round& round) {
  const std::uint32_t attempt = ++round.attempts;
  if (attempt > 1) ++stats_.retransmits;
  const std::uint64_t key = send_(round.id, attempt);
  // `round` may dangle after send_ (a reentrant start_round would grow
  // rounds_); re-find defensively before touching it again.
  Round* self = find(round.id);
  if (self == nullptr || !self->open) return;
  self->keys.push_back(key);
  double timeout = policy_.timeout_for_attempt(attempt);
  if (policy_.jitter_ms > 0.0) {
    const auto bound_us =
        static_cast<std::uint64_t>(std::llround(policy_.jitter_ms * 1000.0));
    if (bound_us > 0) {
      timeout += static_cast<double>(drbg_.uniform(bound_us)) / 1000.0;
    }
  }
  const std::uint64_t round_id = self->id;
  schedule_(timeout,
            [this, round_id, attempt] { on_timer(round_id, attempt); });
}

void Retransmitter::on_timer(std::uint64_t round_id, std::uint32_t attempt) {
  Round* round = find(round_id);
  // Stale timer: the round already closed (valid response beat the
  // timeout) or was pruned. Not a timeout — nothing happened on the wire.
  if (round == nullptr || !round->open) return;
  if (round->attempts != attempt) return;  // a newer attempt owns the timer
  ++stats_.timeouts;
  if (on_timeout_) on_timeout_(round_id, attempt);
  if (round->attempts >= policy_.max_attempts) {
    close(*round, RoundOutcome::kUnreachable);
    return;
  }
  // `round` may be invalidated by the send hook; send_attempt re-finds.
  send_attempt(*round);
}

Retransmitter::Hit Retransmitter::lookup(std::uint64_t key) {
  // Scan newest-first: a key collision (e.g. FreshnessScheme::kNone,
  // where every request echoes 0) then resolves to the latest round.
  for (auto it = rounds_.rbegin(); it != rounds_.rend(); ++it) {
    if (std::find(it->keys.begin(), it->keys.end(), key) ==
        it->keys.end()) {
      continue;
    }
    if (!it->open) {
      ++stats_.duplicate_responses;
      return Hit{Match::kClosed, it->id};
    }
    return Hit{Match::kOpen, it->id};
  }
  return Hit{Match::kUnknown, 0};
}

void Retransmitter::close_valid(std::uint64_t round_id) {
  Round* round = find(round_id);
  if (round == nullptr || !round->open) return;
  close(*round, RoundOutcome::kValid);
}

void Retransmitter::close(Round& round, RoundOutcome outcome) {
  round.open = false;
  --open_;
  if (outcome == RoundOutcome::kValid) {
    ++stats_.rounds_valid;
  } else {
    ++stats_.rounds_unreachable;
  }
  close_(round.id, outcome, round.attempts);
}

bool Retransmitter::round_open(std::uint64_t round) const {
  for (const Round& r : rounds_) {
    if (r.id == round) return r.open;
  }
  return false;
}

void Retransmitter::prune() {
  // Drop closed rounds beyond the history bound, oldest first. Open
  // rounds are never pruned.
  std::size_t closed = rounds_.size() - open_;
  auto it = rounds_.begin();
  while (closed > kClosedHistory && it != rounds_.end()) {
    if (!it->open) {
      it = rounds_.erase(it);
      --closed;
    } else {
      ++it;
    }
  }
}

}  // namespace ratt::net
