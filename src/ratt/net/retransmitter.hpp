// ratt::net — reliable request/response engine over a lossy link.
//
// The attestation protocol is a single request/response exchange; on a
// faulty link (FaultyLink, or a future real socket backend) a lost
// packet must not silently kill the round. The Retransmitter manages the
// verifier-side round state machine:
//
//   * per-attempt timeout, derived from timing::Profiles (the prover's
//     full-memory MAC time plus the round trip — see derive_timeout_ms),
//   * bounded retries with exponential backoff plus DRBG jitter (so a
//     fleet of verifiers never synchronizes its retry storms),
//   * every retry sends a FRESH request — the verifier re-MACs a new
//     nonce/counter/timestamp instead of resending bytes, so a
//     retransmission is a *legitimate replay* the prover's freshness
//     policy must accept exactly once per distinct request,
//   * duplicate-response suppression: once a round closed, late copies
//     (network duplicates, or responses to superseded attempts) are
//     counted and ignored,
//   * a terminal kUnreachable outcome after the attempt budget is spent,
//     which feeds fleet_health's graceful degradation.
//
// The engine is transport-agnostic: it talks to the world through three
// injected hooks (schedule a timer, send a fresh attempt, close a
// round), so it carries no dependency on the discrete-event simulator —
// sim::AttestationSession wires the hooks onto its EventQueue/Channel,
// and a socket backend would wire them onto real timers.
//
// Lifetime: pending timers capture `this`; the owner must keep the
// Retransmitter alive until the scheduler can no longer fire them (the
// same contract AttestationSession already has with its EventQueue).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ratt/crypto/drbg.hpp"
#include "ratt/crypto/mac.hpp"
#include "ratt/timing/timing.hpp"

namespace ratt::net {

struct RetryPolicy {
  /// Total send attempts per round (1 = no retries).
  std::uint32_t max_attempts = 4;
  /// Attempt-1 timeout. <= 0 means the caller must derive one (see
  /// derive_timeout_ms) before handing the policy over.
  double base_timeout_ms = 250.0;
  /// Timeout of attempt n is base * backoff^(n-1), capped at max.
  double backoff_factor = 2.0;
  double max_timeout_ms = 10'000.0;
  /// Uniform DRBG jitter in [0, jitter_ms) added to every timeout so
  /// concurrent rounds decorrelate. 0 disables the draw entirely.
  double jitter_ms = 0.0;

  /// Backoff schedule without jitter (attempt is 1-based).
  double timeout_for_attempt(std::uint32_t attempt) const;

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

/// A per-request timeout grounded in the timing model: the request and
/// response wire time (`round_trip_ms`), plus `margin` times the prover's
/// actual work — request authentication plus the memory MAC over
/// 16 + measured_bytes (challenge || freshness || memory, the same
/// message the prover MACs). With the paper's 512 KB / 24 MHz reference
/// that is dominated by the ~754 ms measurement, which is why a fixed
/// small timeout would declare every healthy prover unreachable.
double derive_timeout_ms(const timing::DeviceTimingModel& model,
                         crypto::MacAlgorithm alg,
                         std::size_t measured_bytes, double round_trip_ms,
                         double margin = 1.5);

enum class RoundOutcome : std::uint8_t {
  kValid,        // a response matched an attempt and validated
  kUnreachable,  // attempt budget exhausted without a valid response
};

std::string to_string(RoundOutcome outcome);

class Retransmitter {
 public:
  struct Stats {
    std::uint64_t rounds_started = 0;
    std::uint64_t rounds_valid = 0;
    std::uint64_t rounds_unreachable = 0;
    std::uint64_t retransmits = 0;          // attempts beyond the first
    std::uint64_t timeouts = 0;             // attempt timers that expired
    std::uint64_t duplicate_responses = 0;  // lookups after round close

    friend bool operator==(const Stats&, const Stats&) = default;
  };

  /// Schedule `fire` to run `delay_ms` from now.
  using ScheduleFn =
      std::function<void(double delay_ms, std::function<void()> fire)>;
  /// Send a fresh attempt for `round`; returns the match key the
  /// response will echo (the request's freshness element). `attempt` is
  /// 1-based.
  using SendFn =
      std::function<std::uint64_t(std::uint64_t round, std::uint32_t attempt)>;
  /// A round closed; `attempts` is how many sends it consumed.
  using CloseFn = std::function<void(std::uint64_t round,
                                     RoundOutcome outcome,
                                     std::uint32_t attempts)>;
  /// An attempt timer expired on a still-open round (fires before the
  /// retransmission — or before the kUnreachable close — it triggers).
  using TimeoutFn =
      std::function<void(std::uint64_t round, std::uint32_t attempt)>;

  Retransmitter(const RetryPolicy& policy, crypto::ByteView jitter_seed);

  /// All hooks must be set before start_round(). `on_timeout` is
  /// optional.
  void set_hooks(ScheduleFn schedule, SendFn send, CloseFn close,
                 TimeoutFn on_timeout = nullptr);

  /// Open a round: sends attempt 1 and arms its timer. Returns the round
  /// id (monotonically increasing from 0).
  std::uint64_t start_round();

  enum class Match : std::uint8_t {
    kUnknown,  // key belongs to no tracked round (forged/ancient)
    kOpen,     // key belongs to an open round
    kClosed,   // key belongs to a closed round — a duplicate
  };
  struct Hit {
    Match match = Match::kUnknown;
    std::uint64_t round = 0;
  };

  /// Which round does a response with this key belong to? A kClosed hit
  /// increments the duplicate counter (suppression is the caller's only
  /// obligation: count it, drop it).
  Hit lookup(std::uint64_t key);

  /// The caller validated a response for this (open) round.
  void close_valid(std::uint64_t round);

  bool round_open(std::uint64_t round) const;
  std::size_t open_rounds() const { return open_; }
  const RetryPolicy& policy() const { return policy_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Round {
    std::uint64_t id = 0;
    std::vector<std::uint64_t> keys;  // one per attempt, in send order
    std::uint32_t attempts = 0;
    bool open = true;
  };

  Round* find(std::uint64_t round);
  void send_attempt(Round& round);
  void on_timer(std::uint64_t round_id, std::uint32_t attempt);
  void close(Round& round, RoundOutcome outcome);
  void prune();

  RetryPolicy policy_;
  crypto::HmacDrbg drbg_;
  ScheduleFn schedule_;
  SendFn send_;
  CloseFn close_;
  TimeoutFn on_timeout_;
  std::vector<Round> rounds_;  // open + a bounded tail of closed rounds
  std::uint64_t next_round_ = 0;
  std::size_t open_ = 0;
  Stats stats_;
};

}  // namespace ratt::net
