// The verifier (Vrf): issues authenticated attestation requests with a
// freshness element and validates the prover's measurement against its
// reference copy of the device memory.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "ratt/attest/message.hpp"
#include "ratt/crypto/drbg.hpp"
#include "ratt/obs/observer.hpp"
#include "ratt/obs/power/witness.hpp"

namespace ratt::attest {

class VerifierBatch;

class Verifier {
 public:
  struct Config {
    crypto::MacAlgorithm mac_alg = crypto::MacAlgorithm::kHmacSha1;
    FreshnessScheme scheme = FreshnessScheme::kCounter;
    /// Sign requests with K_Attest? (Sec. 4.1 mitigation.)
    bool authenticate_requests = true;
    /// Verifier-side clock (ticks) for timestamp requests; must be
    /// (nominally) synchronized with the prover's clock.
    std::function<std::uint64_t()> clock;
    /// Incremental attestation (DESIGN.md §4i): require generation-bound
    /// responses, track the prover's evidence generation, and reset the
    /// retained state (forcing a full fallback) after any invalid
    /// incremental response. false = the naive verifier of the rollback
    /// regression suite.
    bool bind_generation = true;
  };

  Verifier(Bytes k_attest, const Config& config, ByteView drbg_seed);

  /// Attach telemetry: verifier.requests / verifier.checks.* counters
  /// (registry only — round-level spans are the session's job).
  void set_observer(const obs::Observer& observer);

  /// Build the next request: fresh nonce / next counter / current time.
  AttestRequest make_request();

  /// What the verifier expects the prover's memory to contain.
  void set_reference_memory(Bytes memory) {
    reference_memory_ = std::make_shared<const Bytes>(std::move(memory));
  }

  /// Fleet path: thousands of verifiers checking the same application
  /// image (Swarm share_app_image) share one reference copy instead of
  /// holding measured_bytes each.
  void set_reference_memory(std::shared_ptr<const Bytes> memory) {
    reference_memory_ = std::move(memory);
  }

  /// Validate a response to `request` (the verifier recomputes the MAC
  /// over its reference memory).
  bool check_response(const AttestRequest& request,
                      const AttestResponse& response) const;

  /// Build the next incremental request: same freshness/challenge flow
  /// as make_request(), plus the retained evidence generation (0 on
  /// first contact or after an invalid response — both force the prover
  /// into a full fallback).
  IncAttestRequest make_incremental_request();

  /// Validate an incremental response: sanity-check the changed-page
  /// list, enforce the generation discipline (when bind_generation), and
  /// recompute the fold MAC over the verifier's own expected per-page
  /// tag table — the prover's claimed page list is absorbed, never
  /// trusted. On success the retained generation resyncs to new_gen; on
  /// failure (bind_generation) it resets to 0, forcing a full fallback.
  bool check_incremental(const IncAttestRequest& request,
                         const IncAttestResponse& response);

  /// The evidence generation retained from the last valid incremental
  /// response (0 = none; the next request demands a full fallback).
  std::uint64_t retained_generation() const { return retained_gen_; }

  /// Arm the power-trace side channel: once a PowerWitness is attached,
  /// grade_power_trace() runs each round's synthesized waveform against
  /// the witness's clean envelope — the check that catches MAC-passing
  /// tampers (Adv_roam restore, skipped measurement). The witness is
  /// NOT owned; pass nullptr to detach.
  void set_power_witness(obs::power::PowerWitness* witness) {
    power_witness_ = witness;
  }

  /// Grade one completed round's power trace (no-op empty verdict when
  /// no witness is attached). When a trace sink was attached via
  /// set_observer, the verdict is also emitted as a "power.witness"
  /// record for the alert engine. Returns the violated dimensions.
  std::vector<std::string> grade_power_trace(
      const obs::power::RoundTrace& trace,
      const std::string& class_key = "fleet");

  std::uint64_t counter() const { return counter_; }

  /// Attach (or detach, with nullptr) a shared multi-buffer MAC engine.
  /// When attached — and the configuration is batchable (HMAC-SHA1,
  /// freshness that does not read a live clock) — make_request() and
  /// check_response() are served from a precomputed lookahead pipeline
  /// of up to VerifierBatch::kLanes future rounds whose request and
  /// expected-response MACs were computed in one multi-buffer wave.
  /// Every observable output (wire bytes, counter(), DRBG draw order,
  /// telemetry) is byte-identical to the scalar path; non-batchable
  /// calls fall back to it transparently.
  void set_batch_engine(VerifierBatch* batch) { batch_ = batch; }

 private:
  /// Next 64-bit word from the buffered DRBG stream (nonces and
  /// challenges). Drawing a 256-byte block per DRBG call instead of 8
  /// bytes per round amortizes HMAC-DRBG's per-call state update — the
  /// dominant crypto cost of a fleet round after the MACs themselves.
  std::uint64_t next_word();

  /// Freshness/challenge prefix shared by both request builders.
  void fill_freshness(std::uint64_t& freshness, std::uint64_t& challenge);

  /// (Re)build page_macs_ over the current reference memory.
  void ensure_page_macs();

  /// One precomputed future round. Lives in pend_ (drawn but not yet
  /// issued; FIFO — the entries ARE the next draws of the freshness /
  /// challenge stream, in order) and then in issued_ (awaiting its
  /// response; matched by freshness+challenge). `ref_src` records which
  /// reference memory the expected tag was computed over — a stale
  /// pointer downgrades that check to the scalar path.
  struct PipeEntry {
    std::uint64_t freshness;
    std::uint64_t challenge;
    std::uint8_t req_mac[20];
    std::uint8_t expected[20];
    const Bytes* ref_src;
  };

  /// True when the attached engine can serve this configuration.
  bool batchable() const;

  /// Precompute up to kLanes future rounds in one multi-buffer wave.
  void fill_pipeline();

  Bytes key_;
  Config config_;
  crypto::HmacDrbg drbg_;
  std::array<std::uint8_t, 256> rand_buf_{};
  std::size_t rand_pos_ = rand_buf_.size();  // empty until first draw
  std::unique_ptr<crypto::Mac> mac_;
  std::uint64_t counter_ = 0;
  std::shared_ptr<const Bytes> reference_memory_ =
      std::make_shared<const Bytes>();
  // Incremental state: the retained evidence generation and the lazily
  // built per-page tag table over the reference memory (invalidated when
  // the reference pointer changes).
  std::uint64_t retained_gen_ = 0;
  Bytes page_macs_;
  const Bytes* page_macs_src_ = nullptr;
  // Cached instruments (nullable); pointees are mutated from the const
  // check path, which is fine — they live in the injected registry.
  obs::Counter* obs_requests_ = nullptr;
  obs::Counter* obs_valid_ = nullptr;
  obs::Counter* obs_invalid_ = nullptr;
  // Power-witness plumbing: the registry/sink are remembered so the
  // verifier.power.* counters register lazily, on the first graded trace
  // — fleets that never arm the witness keep their registry export
  // byte-identical to before.
  obs::Registry* obs_registry_ = nullptr;
  obs::TraceSink* obs_sink_ = nullptr;
  obs::power::PowerWitness* power_witness_ = nullptr;
  obs::Counter* obs_power_rounds_ = nullptr;
  obs::Counter* obs_power_violations_ = nullptr;
  // Lookahead pipeline (see set_batch_engine). pend_ is a FIFO ring;
  // issued_ is a small unordered set (erase-swap) because responses can
  // complete out of order under loss/retransmission. Mutable: the
  // const check_response() consumes matched entries.
  VerifierBatch* batch_ = nullptr;
  mutable std::array<PipeEntry, 8> pend_{};
  mutable std::uint8_t pend_head_ = 0;
  mutable std::uint8_t pend_count_ = 0;
  mutable std::array<PipeEntry, 8> issued_{};
  mutable std::uint8_t issued_count_ = 0;
};

}  // namespace ratt::attest
