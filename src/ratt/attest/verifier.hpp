// The verifier (Vrf): issues authenticated attestation requests with a
// freshness element and validates the prover's measurement against its
// reference copy of the device memory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "ratt/attest/message.hpp"
#include "ratt/crypto/drbg.hpp"
#include "ratt/obs/observer.hpp"

namespace ratt::attest {

class Verifier {
 public:
  struct Config {
    crypto::MacAlgorithm mac_alg = crypto::MacAlgorithm::kHmacSha1;
    FreshnessScheme scheme = FreshnessScheme::kCounter;
    /// Sign requests with K_Attest? (Sec. 4.1 mitigation.)
    bool authenticate_requests = true;
    /// Verifier-side clock (ticks) for timestamp requests; must be
    /// (nominally) synchronized with the prover's clock.
    std::function<std::uint64_t()> clock;
  };

  Verifier(Bytes k_attest, const Config& config, ByteView drbg_seed);

  /// Attach telemetry: verifier.requests / verifier.checks.* counters
  /// (registry only — round-level spans are the session's job).
  void set_observer(const obs::Observer& observer);

  /// Build the next request: fresh nonce / next counter / current time.
  AttestRequest make_request();

  /// What the verifier expects the prover's memory to contain.
  void set_reference_memory(Bytes memory) {
    reference_memory_ = std::move(memory);
  }

  /// Validate a response to `request` (the verifier recomputes the MAC
  /// over its reference memory).
  bool check_response(const AttestRequest& request,
                      const AttestResponse& response) const;

  std::uint64_t counter() const { return counter_; }

 private:
  Bytes key_;
  Config config_;
  crypto::HmacDrbg drbg_;
  std::unique_ptr<crypto::Mac> mac_;
  std::uint64_t counter_ = 0;
  Bytes reference_memory_;
  // Cached instruments (nullable); pointees are mutated from the const
  // check path, which is fine — they live in the injected registry.
  obs::Counter* obs_requests_ = nullptr;
  obs::Counter* obs_valid_ = nullptr;
  obs::Counter* obs_invalid_ = nullptr;
};

}  // namespace ratt::attest
