#include "ratt/attest/verifier_batch.hpp"

namespace ratt::attest {

void VerifierBatch::ensure_counters() {
  if (registry_ == nullptr || fills_ != nullptr) return;
  fills_ = &registry_->counter("verifier.batch.fills");
  lanes_ = &registry_->counter("verifier.batch.lanes");
  hits_ = &registry_->counter("verifier.batch.hits");
  misses_ = &registry_->counter("verifier.batch.misses");
}

void VerifierBatch::note_fill(std::size_t lanes) {
  ensure_counters();
  if (fills_ == nullptr) return;
  fills_->inc();
  lanes_->inc(static_cast<double>(lanes));
}

void VerifierBatch::note_hit() {
  if (hits_ != nullptr) hits_->inc();
}

void VerifierBatch::note_miss() {
  // Misses can precede the first fill (e.g. a response arriving for a
  // request issued before the engine was attached); they only count
  // once the batch counters exist, keeping never-batched runs clean.
  if (misses_ != nullptr) misses_->inc();
}

}  // namespace ratt::attest
