// Shared per-shard batch engine for verifier-side MAC work.
//
// The swarm's verifier hot path computes two HMAC-SHA1 tags per round
// (request authentication + the expected response measurement). One
// VerifierBatch per shard gives every Verifier in the shard a shared
// multi-buffer MacBatch scratch plus batch-occupancy telemetry; the
// Verifier itself decides what to batch (it precomputes an 8-round
// lookahead pipeline — see Verifier::fill_pipeline — because a
// lazily-materialized fleet rarely has 8 devices on the same tick, but
// every device always has 8 future rounds whose challenges come from
// its own deterministic DRBG stream in order).
//
// Counters (verifier.batch.fills / lanes / hits / misses) register
// lazily on the first actual batch fill, so scalar runs (--no-batch,
// non-HMAC algorithms, timestamp freshness) keep their registry export
// byte-identical to the pre-batching code.
//
// Not thread-safe; shards are single-threaded.
#pragma once

#include <cstddef>

#include "ratt/crypto/mac_batch.hpp"
#include "ratt/obs/observer.hpp"

namespace ratt::attest {

class VerifierBatch {
 public:
  static constexpr std::size_t kLanes = crypto::MacBatch::kMaxLanes;

  VerifierBatch() = default;

  /// Attach telemetry (registry only). Counters appear on first fill.
  void set_observer(const obs::Observer& observer) {
    registry_ = observer.registry;
    fills_ = lanes_ = hits_ = misses_ = nullptr;
  }

  /// Shared multi-buffer scratch; callers re-key per fill.
  crypto::MacBatch& engine() { return engine_; }

  void note_fill(std::size_t lanes);
  void note_hit();
  void note_miss();

 private:
  void ensure_counters();

  crypto::MacBatch engine_;
  obs::Registry* registry_ = nullptr;
  obs::Counter* fills_ = nullptr;
  obs::Counter* lanes_ = nullptr;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
};

}  // namespace ratt::attest
