#include "ratt/attest/message.hpp"

namespace ratt::attest {

namespace {

constexpr std::uint8_t kRequestMagic = 0xA1;
constexpr std::uint8_t kResponseMagic = 0xA2;
constexpr std::uint8_t kIncRequestMagic = 0xA3;
constexpr std::uint8_t kIncResponseMagic = 0xA4;

}  // namespace

std::string to_string(FreshnessScheme scheme) {
  switch (scheme) {
    case FreshnessScheme::kNone:
      return "none";
    case FreshnessScheme::kNonce:
      return "nonce";
    case FreshnessScheme::kCounter:
      return "counter";
    case FreshnessScheme::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

void AttestRequest::header_into(std::uint8_t* out) const {
  out[0] = kRequestMagic;
  out[1] = static_cast<std::uint8_t>(scheme);
  out[2] = static_cast<std::uint8_t>(mac_alg);
  crypto::store_le64(out + 3, freshness);
  crypto::store_le64(out + 11, challenge);
}

Bytes AttestRequest::header_bytes() const {
  Bytes out(kHeaderSize);
  header_into(out.data());
  return out;
}

Bytes AttestRequest::to_bytes() const {
  Bytes out = header_bytes();
  out.push_back(static_cast<std::uint8_t>(mac.size()));
  crypto::append(out, mac);
  return out;
}

std::optional<AttestRequest> AttestRequest::from_bytes(ByteView wire) {
  if (wire.size() < 20 || wire[0] != kRequestMagic) return std::nullopt;
  AttestRequest req;
  if (wire[1] > static_cast<std::uint8_t>(FreshnessScheme::kTimestamp)) {
    return std::nullopt;
  }
  req.scheme = static_cast<FreshnessScheme>(wire[1]);
  if (wire[2] > static_cast<std::uint8_t>(crypto::MacAlgorithm::kSpeckCmac)) {
    return std::nullopt;
  }
  req.mac_alg = static_cast<crypto::MacAlgorithm>(wire[2]);
  req.freshness = crypto::load_le64(wire.data() + 3);
  req.challenge = crypto::load_le64(wire.data() + 11);
  const std::size_t mac_len = wire[19];
  if (wire.size() != 20 + mac_len) return std::nullopt;
  req.mac.assign(wire.begin() + 20, wire.end());
  return req;
}

Bytes AttestResponse::to_bytes() const {
  Bytes out;
  out.reserve(10 + measurement.size());
  out.push_back(kResponseMagic);
  std::uint8_t word[8];
  crypto::store_le64(word, freshness);
  crypto::append(out, ByteView(word, 8));
  out.push_back(static_cast<std::uint8_t>(measurement.size()));
  crypto::append(out, measurement);
  return out;
}

std::optional<AttestResponse> AttestResponse::from_bytes(ByteView wire) {
  if (wire.size() < 10 || wire[0] != kResponseMagic) return std::nullopt;
  AttestResponse resp;
  resp.freshness = crypto::load_le64(wire.data() + 1);
  const std::size_t len = wire[9];
  if (wire.size() != 10 + len) return std::nullopt;
  resp.measurement.assign(wire.begin() + 10, wire.end());
  return resp;
}

void IncAttestRequest::header_into(std::uint8_t* out) const {
  out[0] = kIncRequestMagic;
  out[1] = kVersion;
  out[2] = static_cast<std::uint8_t>(scheme);
  out[3] = static_cast<std::uint8_t>(mac_alg);
  crypto::store_le64(out + 4, freshness);
  crypto::store_le64(out + 12, challenge);
  crypto::store_le64(out + 20, since_gen);
}

Bytes IncAttestRequest::header_bytes() const {
  Bytes out(kHeaderSize);
  header_into(out.data());
  return out;
}

Bytes IncAttestRequest::to_bytes() const {
  Bytes out = header_bytes();
  out.push_back(static_cast<std::uint8_t>(mac.size()));
  crypto::append(out, mac);
  return out;
}

std::optional<IncAttestRequest> IncAttestRequest::from_bytes(ByteView wire) {
  if (wire.size() < 29 || wire[0] != kIncRequestMagic) return std::nullopt;
  if (wire[1] != kVersion) return std::nullopt;
  IncAttestRequest req;
  if (wire[2] > static_cast<std::uint8_t>(FreshnessScheme::kTimestamp)) {
    return std::nullopt;
  }
  req.scheme = static_cast<FreshnessScheme>(wire[2]);
  if (wire[3] > static_cast<std::uint8_t>(crypto::MacAlgorithm::kSpeckCmac)) {
    return std::nullopt;
  }
  req.mac_alg = static_cast<crypto::MacAlgorithm>(wire[3]);
  req.freshness = crypto::load_le64(wire.data() + 4);
  req.challenge = crypto::load_le64(wire.data() + 12);
  req.since_gen = crypto::load_le64(wire.data() + 20);
  const std::size_t mac_len = wire[28];
  if (wire.size() != 29 + mac_len) return std::nullopt;
  req.mac.assign(wire.begin() + 29, wire.end());
  return req;
}

Bytes IncAttestResponse::to_bytes() const {
  Bytes out;
  out.reserve(wire_size());
  out.push_back(kIncResponseMagic);
  out.push_back(kVersion);
  out.push_back(flags);
  std::uint8_t word[8];
  crypto::store_le64(word, freshness);
  crypto::append(out, ByteView(word, 8));
  crypto::store_le64(word, base_gen);
  crypto::append(out, ByteView(word, 8));
  crypto::store_le64(word, new_gen);
  crypto::append(out, ByteView(word, 8));
  std::uint8_t count[4];
  crypto::store_le32(count,
                     static_cast<std::uint32_t>(changed_pages.size()));
  crypto::append(out, ByteView(count, 4));
  for (const std::uint32_t page : changed_pages) {
    std::uint8_t idx[4];
    crypto::store_le32(idx, page);
    crypto::append(out, ByteView(idx, 4));
  }
  out.push_back(static_cast<std::uint8_t>(measurement.size()));
  crypto::append(out, measurement);
  return out;
}

std::optional<IncAttestResponse> IncAttestResponse::from_bytes(
    ByteView wire) {
  // Fixed head (31 B) + at least the MAC length byte: anything shorter
  // cannot carry even a zero-page, zero-MAC frame.
  if (wire.size() < 32 || wire[0] != kIncResponseMagic) return std::nullopt;
  if (wire[1] != kVersion) return std::nullopt;
  IncAttestResponse resp;
  resp.flags = wire[2];
  if ((resp.flags &
       static_cast<std::uint8_t>(~(kFlagFullFallback |
                                   kFlagGenerationBound))) != 0) {
    return std::nullopt;
  }
  resp.freshness = crypto::load_le64(wire.data() + 3);
  resp.base_gen = crypto::load_le64(wire.data() + 11);
  resp.new_gen = crypto::load_le64(wire.data() + 19);
  const std::uint32_t count = crypto::load_le32(wire.data() + 27);
  if (count > kMaxChangedPages) return std::nullopt;
  // 64-bit arithmetic: a hostile count must not wrap the expected size.
  const std::uint64_t indices_end =
      31 + 4 * static_cast<std::uint64_t>(count);
  if (wire.size() < indices_end + 1) return std::nullopt;
  const std::size_t mac_len = wire[static_cast<std::size_t>(indices_end)];
  if (wire.size() != indices_end + 1 + mac_len) return std::nullopt;
  resp.changed_pages.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    resp.changed_pages[i] = crypto::load_le32(wire.data() + 31 + 4 * i);
  }
  resp.measurement.assign(wire.begin() + static_cast<std::ptrdiff_t>(
                                             indices_end + 1),
                          wire.end());
  return resp;
}

bool is_inc_request_frame(ByteView wire) {
  return !wire.empty() && wire[0] == kIncRequestMagic;
}

bool is_inc_response_frame(ByteView wire) {
  return !wire.empty() && wire[0] == kIncResponseMagic;
}

}  // namespace ratt::attest
