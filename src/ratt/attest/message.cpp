#include "ratt/attest/message.hpp"

namespace ratt::attest {

namespace {

constexpr std::uint8_t kRequestMagic = 0xA1;
constexpr std::uint8_t kResponseMagic = 0xA2;

}  // namespace

std::string to_string(FreshnessScheme scheme) {
  switch (scheme) {
    case FreshnessScheme::kNone:
      return "none";
    case FreshnessScheme::kNonce:
      return "nonce";
    case FreshnessScheme::kCounter:
      return "counter";
    case FreshnessScheme::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

Bytes AttestRequest::header_bytes() const {
  Bytes out;
  out.reserve(19);
  out.push_back(kRequestMagic);
  out.push_back(static_cast<std::uint8_t>(scheme));
  out.push_back(static_cast<std::uint8_t>(mac_alg));
  std::uint8_t word[8];
  crypto::store_le64(word, freshness);
  crypto::append(out, ByteView(word, 8));
  crypto::store_le64(word, challenge);
  crypto::append(out, ByteView(word, 8));
  return out;
}

Bytes AttestRequest::to_bytes() const {
  Bytes out = header_bytes();
  out.push_back(static_cast<std::uint8_t>(mac.size()));
  crypto::append(out, mac);
  return out;
}

std::optional<AttestRequest> AttestRequest::from_bytes(ByteView wire) {
  if (wire.size() < 20 || wire[0] != kRequestMagic) return std::nullopt;
  AttestRequest req;
  if (wire[1] > static_cast<std::uint8_t>(FreshnessScheme::kTimestamp)) {
    return std::nullopt;
  }
  req.scheme = static_cast<FreshnessScheme>(wire[1]);
  if (wire[2] > static_cast<std::uint8_t>(crypto::MacAlgorithm::kSpeckCmac)) {
    return std::nullopt;
  }
  req.mac_alg = static_cast<crypto::MacAlgorithm>(wire[2]);
  req.freshness = crypto::load_le64(wire.data() + 3);
  req.challenge = crypto::load_le64(wire.data() + 11);
  const std::size_t mac_len = wire[19];
  if (wire.size() != 20 + mac_len) return std::nullopt;
  req.mac.assign(wire.begin() + 20, wire.end());
  return req;
}

Bytes AttestResponse::to_bytes() const {
  Bytes out;
  out.reserve(10 + measurement.size());
  out.push_back(kResponseMagic);
  std::uint8_t word[8];
  crypto::store_le64(word, freshness);
  crypto::append(out, ByteView(word, 8));
  out.push_back(static_cast<std::uint8_t>(measurement.size()));
  crypto::append(out, measurement);
  return out;
}

std::optional<AttestResponse> AttestResponse::from_bytes(ByteView wire) {
  if (wire.size() < 10 || wire[0] != kResponseMagic) return std::nullopt;
  AttestResponse resp;
  resp.freshness = crypto::load_le64(wire.data() + 1);
  const std::size_t len = wire[9];
  if (wire.size() != 10 + len) return std::nullopt;
  resp.measurement.assign(wire.begin() + 10, wire.end());
  return resp;
}

}  // namespace ratt::attest
