#include "ratt/attest/prover.hpp"

#include "ratt/crypto/drbg.hpp"
#include "ratt/obs/prof/profile.hpp"

namespace ratt::attest {

namespace {

// Fixed internal memory map (within the Mcu default layout).
constexpr hw::AddrRange kCodeAttestRegion{0x00000000, 0x00001000};  // ROM
constexpr hw::AddrRange kCodeClockRegion{0x00001000, 0x00001100};   // ROM
constexpr hw::Addr kKeyRomAddr = 0x00007000;   // ROM (inherently W-protected)
constexpr hw::Addr kKeyRamAddr = 0x00100180;   // RAM variant (Sec. 6.2)
constexpr hw::AddrRange kAppCodeRegion{0x00010000, 0x00020000};   // Flash
constexpr hw::AddrRange kMalwareRegion{0x00020000, 0x00021000};   // Flash
constexpr hw::Addr kCounterAddr = 0x00100100;   // RAM (after IDT)
constexpr hw::Addr kLastSeenAddr = 0x00100108;  // RAM
constexpr hw::Addr kClockMsbAddr = 0x00100110;  // RAM
constexpr hw::Addr kServicesStateAddr = 0x00100120;  // RAM (2 x u64)
constexpr hw::Addr kSyncStateAddr = 0x00100140;       // RAM (2 x u64)
constexpr hw::AddrRange kErasableRegion{0x00150000, 0x00160000};  // RAM
constexpr hw::Addr kNonceStoreAddr = 0x00100200;  // RAM
constexpr hw::Addr kAuditLogAddr = 0x00102000;    // RAM (after nonce ring)
constexpr hw::Addr kPageMacCacheAddr = 0x00104000;  // RAM (after audit log)
constexpr hw::Addr kMeasuredBase = 0x00110000;    // RAM
constexpr hw::Addr kClockPortAddr = 0x00210000;   // MMIO
constexpr std::size_t kWrapIrqVector = 0;
constexpr unsigned kSwClockLsbBits = 16;

// One process-wide vendor keypair: the derivation seed is a constant, so
// every device always got the exact same keypair — generating it once
// (thread-safe magic static) removes an EC scalar multiplication from
// every device construction, which matters when a fleet materializes
// devices by the hundred thousand.
const crypto::EcdsaKeyPair& vendor_keypair() {
  static const crypto::EcdsaKeyPair kVendor =
      crypto::ecdsa_generate_key(crypto::from_string("prover-vendor-key"));
  return kVendor;
}

// The application image the secure boot loads: a small code stub plus the
// measured range, both derived from the app seed (one DRBG, draw order
// fixed — this is the byte stream every existing golden depends on).
hw::BootImage make_boot_image(ByteView app_seed, std::size_t measured_bytes) {
  crypto::HmacDrbg app_drbg(app_seed);
  hw::BootImage image;
  image.name = "prover-firmware";
  image.segments.push_back(
      hw::BootSegment{kAppCodeRegion.begin, app_drbg.generate(256)});
  image.segments.push_back(
      hw::BootSegment{kMeasuredBase, app_drbg.generate(measured_bytes)});
  return image;
}

}  // namespace

std::string to_string(ClockDesign design) {
  switch (design) {
    case ClockDesign::kNone:
      return "none";
    case ClockDesign::kWritable:
      return "writable";
    case ClockDesign::kHw64:
      return "hw-64";
    case ClockDesign::kHw32Div:
      return "hw-32-div";
    case ClockDesign::kSwClock:
      return "sw-clock";
  }
  return "unknown";
}

std::string to_string(MpuFlavor flavor) {
  switch (flavor) {
    case MpuFlavor::kTrustLite:
      return "trustlite";
    case MpuFlavor::kSmart:
      return "smart";
  }
  return "unknown";
}

ProverDevice::ProverDevice(const ProverConfig& config, Bytes k_attest,
                           ByteView app_seed)
    : ProverDevice(config, std::move(k_attest), app_seed, nullptr) {}

ProverDevice::ProverDevice(const ProverConfig& config, Bytes k_attest,
                           const ProverTemplate& tmpl)
    : ProverDevice(config, std::move(k_attest), ByteView{}, &tmpl) {}

ProverTemplate ProverDevice::make_template(const ProverConfig& config,
                                           ByteView app_seed) {
  ProverTemplate tmpl;
  tmpl.image = make_boot_image(app_seed, config.measured_bytes);
  // make_rom_reference signs boot_image_digest(image) with the vendor
  // key right here, which is what justifies signature_preverified in the
  // per-device boot; expected_hash doubles as the memoized digest.
  tmpl.reference = hw::make_rom_reference(tmpl.image, vendor_keypair());
  tmpl.digest = tmpl.reference.expected_hash;
  tmpl.reference_memory = tmpl.image.segments[1].data;
  // Segment pages for the copy-on-write boot alias. The prover always
  // uses the default memory map (only clock_hz varies per config), so
  // the default layout is the right page geometry for every device.
  tmpl.shared_pages =
      hw::make_shared_segment_pages(hw::Mcu::Layout{}, tmpl.image);
  return tmpl;
}

ProverDevice::ProverDevice(const ProverConfig& config, Bytes k_attest,
                           ByteView app_seed, const ProverTemplate* tmpl)
    : config_(config), timing_(config.clock_hz) {
  hw::Mcu::Layout layout;
  layout.clock_hz = static_cast<std::uint64_t>(config.clock_hz);
  // SMART (Sec. 6.1): the EA-MAC is hard-wired, so the device exposes no
  // configuration registers — the rules are burned in before any
  // untrusted code runs and there is nothing to reprogram or lock.
  layout.map_mpu_port = config.mpu_flavor != MpuFlavor::kSmart;
  mcu_ = std::make_unique<hw::Mcu>(layout);
  mcu_->bus().set_bulk_enabled(config_.bulk_bus);

  // --- Manufacture: provision K_Attest (ROM, or the RAM variant whose
  //     write-protection must come from an EA-MAC rule — Sec. 6.2). ---
  const hw::Addr key_addr = config_.key_in_rom ? kKeyRomAddr : kKeyRamAddr;
  mcu_->bus().load_initial(key_addr, k_attest);

  // --- Clock design. ---
  switch (config_.clock) {
    case ClockDesign::kNone:
      break;
    case ClockDesign::kWritable:
      writable_clock_ = std::make_unique<hw::WritableClockPort>(1);
      mcu_->map_device("clock", kClockPortAddr,
                       writable_clock_->window_size(), *writable_clock_);
      clock_source_ = std::make_unique<hw::MmioClockSource>(
          *mcu_, kClockPortAddr, 8, "writable-clock");
      clock_divider_ = 1;
      break;
    case ClockDesign::kHw64:
      hw_counter_ = std::make_unique<hw::HwCounterPort>(64, 1);
      mcu_->map_device("clock", kClockPortAddr, hw_counter_->window_size(),
                       *hw_counter_);
      clock_source_ = std::make_unique<hw::MmioClockSource>(
          *mcu_, kClockPortAddr, 8, "hw-clock-64");
      clock_divider_ = 1;
      break;
    case ClockDesign::kHw32Div:
      hw_counter_ =
          std::make_unique<hw::HwCounterPort>(32, std::uint64_t{1} << 20);
      mcu_->map_device("clock", kClockPortAddr, hw_counter_->window_size(),
                       *hw_counter_);
      clock_source_ = std::make_unique<hw::MmioClockSource>(
          *mcu_, kClockPortAddr, 4, "hw-clock-32-div");
      clock_divider_ = std::uint64_t{1} << 20;
      break;
    case ClockDesign::kSwClock:
      wrap_counter_ = std::make_unique<hw::WrapCounter>(
          mcu_->irq(), kWrapIrqVector, kSwClockLsbBits, 1);
      mcu_->map_device("clock-lsb", kClockPortAddr,
                       wrap_counter_->window_size(), *wrap_counter_);
      code_clock_ = std::make_unique<hw::CodeClock>(*mcu_, kCodeClockRegion,
                                                    kClockMsbAddr);
      mcu_->irq().register_native_handler(
          code_clock_->entry_point(),
          [cc = code_clock_.get()] { cc->on_wrap_interrupt(); });
      clock_source_ = std::make_unique<hw::SwClockSource>(
          *mcu_, *code_clock_, kClockPortAddr, kSwClockLsbBits);
      clock_divider_ = 1;
      break;
  }

  // --- Freshness policy. ---
  switch (config_.scheme) {
    case FreshnessScheme::kNone:
      policy_ = make_no_freshness();
      break;
    case FreshnessScheme::kNonce:
      policy_ = make_nonce_history(*mcu_, kNonceStoreAddr,
                                   config_.nonce_capacity);
      break;
    case FreshnessScheme::kCounter:
      policy_ = make_counter_policy(*mcu_, kCounterAddr);
      break;
    case FreshnessScheme::kTimestamp:
      if (clock_source_ == nullptr) {
        throw std::invalid_argument(
            "ProverDevice: timestamp scheme requires a clock design");
      }
      policy_ = make_timestamp_policy(
          *mcu_, *clock_source_, kLastSeenAddr,
          config_.timestamp_window_ticks, config_.timestamp_skew_ticks);
      break;
  }

  // --- Trust anchor. ---
  CodeAttest::Config anchor_config;
  anchor_config.code = kCodeAttestRegion;
  anchor_config.key_addr = key_addr;
  anchor_config.key_size = k_attest.size();
  anchor_config.mac_alg = config_.mac_alg;
  anchor_config.measured_memory = hw::AddrRange{
      kMeasuredBase,
      kMeasuredBase + static_cast<hw::Addr>(config_.measured_bytes)};
  anchor_config.authenticate_requests = config_.authenticate_requests;
  anchor_config.rate_limit_max = config_.rate_limit_max;
  anchor_config.rate_limit_window_ms = config_.rate_limit_window_ms;
  anchor_config.enable_incremental = config_.enable_incremental;
  anchor_config.cache_addr =
      config_.enable_incremental ? kPageMacCacheAddr : 0;
  anchor_config.bind_generation = config_.bind_generation;
  anchor_ = std::make_unique<CodeAttest>(*mcu_, anchor_config, *policy_,
                                         timing_);

  // --- Optional attestation-derived services (future-work item 3). ---
  if (config_.enable_services) {
    DeviceServices::Config sc;
    sc.state_addr = kServicesStateAddr;
    sc.updatable = kAppCodeRegion;
    sc.erasable = kErasableRegion;
    sc.mac_alg = config_.mac_alg;
    services_ = std::make_unique<DeviceServices>(*anchor_, sc, k_attest,
                                                 timing_);
  }

  // --- Optional tamper-evident audit log (extension). ---
  if (config_.enable_audit_log) {
    AuditLog::Config ac;
    ac.base = kAuditLogAddr;
    ac.capacity = config_.audit_capacity;
    audit_log_ = std::make_unique<AuditLog>(*anchor_, ac);
  }

  // --- Optional secure clock synchronizer (future-work item 2). ---
  if (config_.enable_clock_sync) {
    if (clock_source_ == nullptr) {
      throw std::invalid_argument(
          "ProverDevice: clock sync requires a clock design");
    }
    ClockSynchronizer::Config cc;
    cc.state_addr = kSyncStateAddr;
    cc.max_step_ticks = config_.sync_max_step_ticks;
    cc.max_backward_ticks = config_.sync_max_backward_ticks;
    clock_sync_ = std::make_unique<ClockSynchronizer>(
        *anchor_, *clock_source_, cc, k_attest, config_.mac_alg);
  }

  // --- Attack surface bookkeeping. ---
  surface_.key_addr = key_addr;
  surface_.key_size = k_attest.size();
  surface_.counter_addr = kCounterAddr;
  surface_.last_seen_addr = kLastSeenAddr;
  surface_.nonce_store_addr = kNonceStoreAddr;
  surface_.nonce_capacity = config_.nonce_capacity;
  surface_.clock_port_addr =
      (config_.clock == ClockDesign::kNone) ? 0 : kClockPortAddr;
  surface_.clock_msb_addr =
      (config_.clock == ClockDesign::kSwClock) ? kClockMsbAddr : 0;
  surface_.idt_base = mcu_->layout().idt_base;
  surface_.irq_mask_addr = mcu_->layout().irq_mask_base;
  surface_.malware_region = kMalwareRegion;
  surface_.measured_memory = anchor_config.measured_memory;
  surface_.services_state_addr =
      config_.enable_services ? kServicesStateAddr : 0;
  surface_.sync_state_addr = config_.enable_clock_sync ? kSyncStateAddr : 0;
  surface_.erasable = config_.enable_services ? kErasableRegion
                                              : hw::AddrRange{};
  surface_.audit_log_addr = config_.enable_audit_log ? kAuditLogAddr : 0;
  if (config_.enable_incremental) {
    surface_.cache_addr = kPageMacCacheAddr;
    surface_.cache_size = CodeAttest::cache_window_size(
        CodeAttest::page_count(config_.measured_bytes),
        crypto::tag_size(config_.mac_alg));
  }

  // --- Secure boot: application image + IDT + protection rules. ---
  if (tmpl != nullptr) {
    // Fleet-templated boot: the shared image with the signature check
    // and digest memoized at template build (hw::BootFastPath).
    boot_status_ = hw::secure_boot(
        *mcu_, tmpl->image, tmpl->reference,
        [this](hw::Mcu& mcu) { return configure_protection(mcu); },
        hw::BootFastPath{/*signature_preverified=*/true, &tmpl->digest,
                         &tmpl->shared_pages});
  } else {
    const hw::BootImage image =
        make_boot_image(app_seed, config_.measured_bytes);
    const auto reference = hw::make_rom_reference(image, vendor_keypair());
    boot_status_ = hw::secure_boot(
        *mcu_, image, reference,
        [this](hw::Mcu& mcu) { return configure_protection(mcu); });
  }
}

bool ProverDevice::configure_protection(hw::Mcu& mcu) {
  // Runs as trusted first-stage boot code, pre-lockdown. Install the IDT
  // first, then the EA-MPU rules per configuration.
  const hw::AccessContext boot_ctx{kCodeAttestRegion.begin};
  if (config_.clock == ClockDesign::kSwClock) {
    if (mcu.irq().install(boot_ctx, kWrapIrqVector,
                          code_clock_->entry_point()) !=
        hw::BusStatus::kOk) {
      return false;
    }
  }

  std::size_t next_rule = 0;
  const auto add_rule = [&](hw::AddrRange code, hw::AddrRange data, bool r,
                            bool w, const char* label) {
    hw::EampuRule rule;
    rule.code = code;
    rule.data = data;
    rule.allow_read = r;
    rule.allow_write = w;
    rule.active = true;
    rule.label = label;
    return mcu.mpu().set_rule(next_rule++, rule);
  };

  bool ok = true;
  if (config_.protect_key) {
    // K_Attest: readable only by Code_Attest, writable by nobody. For the
    // ROM placement the write bit is redundant (hardware write-protect);
    // for the RAM placement this rule is what makes the key non-malleable.
    ok = ok && add_rule(kCodeAttestRegion,
                        hw::AddrRange{surface_.key_addr,
                                      surface_.key_addr +
                                          static_cast<hw::Addr>(
                                              surface_.key_size)},
                        /*r=*/true, /*w=*/false, "k-attest");
  }
  if (config_.protect_counter) {
    // counter_R and the timestamp last-seen word: R/W by Code_Attest only.
    ok = ok && add_rule(kCodeAttestRegion,
                        hw::AddrRange{kCounterAddr, kLastSeenAddr + 8},
                        /*r=*/true, /*w=*/true, "counter-r");
  }
  if (config_.protect_counter && config_.scheme == FreshnessScheme::kNonce) {
    // The nonce history is anti-replay state like counter_R: wiping or
    // rewinding it re-opens replays (Sec. 5 applies to it verbatim).
    ok = ok && add_rule(
                   kCodeAttestRegion,
                   hw::AddrRange{kNonceStoreAddr,
                                 kNonceStoreAddr +
                                     static_cast<hw::Addr>(
                                         8 + 8 * config_.nonce_capacity)},
                   /*r=*/true, /*w=*/true, "nonce-store");
  }
  if (config_.enable_services) {
    // The update version / erase sequence words are anti-replay state of
    // the same class as counter_R.
    ok = ok && add_rule(kCodeAttestRegion,
                        hw::AddrRange{kServicesStateAddr,
                                      kServicesStateAddr + 16},
                        /*r=*/true, /*w=*/true, "services-state");
  }
  if (config_.enable_audit_log) {
    // The audit log is evidence: writable only by Code_Attest, readable
    // by everyone would leak nothing sensitive, but a single R/W rule for
    // the anchor keeps the accounting identical to counter_R (log
    // read-out goes through the anchor's context).
    ok = ok && add_rule(kCodeAttestRegion,
                        hw::AddrRange{kAuditLogAddr,
                                      kAuditLogAddr +
                                          AuditLog::window_size(
                                              config_.audit_capacity)},
                        /*r=*/true, /*w=*/true, "audit-log");
  }
  if (config_.enable_clock_sync) {
    // Sync sequence + clock offset: writable only by Code_Attest, or the
    // synchronizer is itself a clock-reset vector.
    ok = ok && add_rule(kCodeAttestRegion,
                        hw::AddrRange{kSyncStateAddr, kSyncStateAddr + 16},
                        /*r=*/true, /*w=*/true, "sync-state");
  }
  if (config_.enable_incremental && config_.protect_cache) {
    // The per-page MAC cache is evidence, like the audit log: R/W by
    // Code_Attest only. The paired dirty authority makes the bus's
    // dirty bitmap clearable only from the anchor's code region — the
    // two halves of the cache protection model (DESIGN.md §4i).
    ok = ok && add_rule(kCodeAttestRegion,
                        hw::AddrRange{kPageMacCacheAddr,
                                      kPageMacCacheAddr +
                                          static_cast<hw::Addr>(
                                              surface_.cache_size)},
                        /*r=*/true, /*w=*/true, "page-mac-cache");
    mcu.bus().set_dirty_authority(kCodeAttestRegion);
  }
  if (config_.protect_clock && config_.clock == ClockDesign::kWritable) {
    // A software-settable clock register can itself be EA-MPU-protected:
    // everyone may read it, nobody may write it (Sec. 6.2: "the clock
    // must be write-protected").
    ok = ok && add_rule(hw::AddrRange{0x00000000, 0xffffffff},
                        hw::AddrRange{kClockPortAddr, kClockPortAddr + 8},
                        /*r=*/true, /*w=*/false, "clock-port-lockdown");
  }
  if (config_.protect_clock && config_.clock == ClockDesign::kSwClock) {
    // Clock_MSB writable only by Code_Clock; IDT and interrupt-mask port
    // locked down for everyone (Sec. 6.2).
    ok = ok && add_rule(kCodeClockRegion,
                        hw::AddrRange{kClockMsbAddr, kClockMsbAddr + 4},
                        /*r=*/true, /*w=*/true, "clock-msb");
    ok = ok && add_rule(hw::AddrRange{}, mcu.irq().idt_range(),
                        /*r=*/false, /*w=*/false, "idt-lockdown");
    ok = ok && add_rule(
                   hw::AddrRange{},
                   hw::AddrRange{mcu.layout().irq_mask_base,
                                 mcu.layout().irq_mask_base +
                                     hw::IrqMaskPort::kWindowSize},
                   /*r=*/false, /*w=*/false, "irq-mask-lockdown");
  }
  // The EA-MPU lock register is engaged by secure_boot() right after this
  // callback returns (the "EA-MPU lockdown rule" of the baseline system).
  return ok;
}

void ProverDevice::set_observer(const obs::Observer& observer) {
  obs_ = observer;
  if (obs_.registry == nullptr) {
    obs_requests_ = nullptr;
    obs_busy_ms_ = nullptr;
    obs_energy_mj_ = nullptr;
    obs_faults_dropped_ = nullptr;
    obs_handle_ms_ = nullptr;
    obs_outcome_.fill(nullptr);
    obs_inc_requests_ = nullptr;
    obs_inc_pages_ = nullptr;
    obs_inc_fallbacks_ = nullptr;
    return;
  }
  obs_inc_requests_ = nullptr;
  obs_inc_pages_ = nullptr;
  obs_inc_fallbacks_ = nullptr;
  obs::Registry& reg = *obs_.registry;
  obs_requests_ = &reg.counter("prover.requests");
  obs_busy_ms_ = &reg.counter("prover.busy_ms");
  obs_energy_mj_ = &reg.counter("prover.energy_mj");
  obs_faults_dropped_ = &reg.counter("prover.bus.faults_dropped");
  seen_faults_dropped_ = mcu_->bus().faults_dropped();
  obs_handle_ms_ = &reg.histogram("prover.handle_ms");
  // The outcome-counter names are identical for every device; build them
  // once per process instead of concatenating per materialization (a
  // fleet calls set_observer a hundred thousand times).
  static const auto kOutcomeNames = [] {
    std::array<std::string, kAttestStatusCount> names;
    for (std::size_t s = 0; s < kAttestStatusCount; ++s) {
      names[s] = "prover.outcome." + to_string(static_cast<AttestStatus>(s));
    }
    return names;
  }();
  for (std::size_t s = 0; s < kAttestStatusCount; ++s) {
    obs_outcome_[s] = &reg.counter(kOutcomeNames[s]);
  }
}

void ProverDevice::observe_request(std::size_t wire_bytes,
                                   const AttestOutcome& outcome,
                                   const obs::RoundContext& round) {
  const double energy_mj = obs_.power.active_mj(outcome.device_ms);
  if (obs_.registry != nullptr) {
    obs_requests_->inc();
    obs_busy_ms_->inc(outcome.device_ms);
    obs_energy_mj_->inc(energy_mj);
    obs_handle_ms_->observe(outcome.device_ms);
    obs_outcome_[static_cast<std::size_t>(outcome.status)]->inc();
    // Fault-ring overflow is reported as a delta so the counter tracks
    // the bus's cumulative tally no matter when the observer attached.
    const std::uint64_t dropped = mcu_->bus().faults_dropped();
    if (dropped != seen_faults_dropped_) {
      obs_faults_dropped_->inc(
          static_cast<double>(dropped - seen_faults_dropped_));
      seen_faults_dropped_ = dropped;
    }
  }
  if (obs_.sink != nullptr) {
    obs::TraceRecord rec;
    rec.sim_time_ms = mcu_->now_ms();
    rec.device_id = obs_.device_id;
    rec.kind = "prover.handle";
    static const auto kStatusStrings = [] {
      std::array<std::string, kAttestStatusCount> names;
      for (std::size_t s = 0; s < kAttestStatusCount; ++s) {
        names[s] = to_string(static_cast<AttestStatus>(s));
      }
      return names;
    }();
    rec.outcome = kStatusStrings[static_cast<std::size_t>(outcome.status)];
    rec.prover_ms = outcome.device_ms;
    rec.bytes = wire_bytes;
    rec.energy_mj = energy_mj;
    rec.power_mw = outcome.device_ms > 0.0 ? obs_.power.active_mw : 0.0;
    rec.round_id = round.round_id;
    rec.attempt = round.attempt;
    obs_.sink->record(rec);
  }
  if (obs_.profile != nullptr) profile_request(outcome, round);
}

void ProverDevice::profile_request(const AttestOutcome& outcome,
                                   const obs::RoundContext& round) {
  namespace prof = obs::prof;
  // handle() advanced the clock past the work before observing, so "now"
  // is where this request's whole phase batch ends — the anchor the
  // power layer lays the segments back from.
  const double end_ms = mcu_->now_ms();
  prof::PhaseSample sample;
  sample.device_id = obs_.device_id;
  sample.round_id = round.round_id;
  sample.sim_time_ms = end_ms;
  const std::uint64_t total_cycles = timing_.cycles(outcome.device_ms);
  // Incremental rounds only stream the refreshed pages through the MAC;
  // the byte columns must reflect that or the Table-3 diff overstates
  // the bus/MAC traffic by the full measured range.
  const std::size_t measured_bytes =
      outcome.incremental ? outcome.inc_pages_refreshed * CodeAttest::kPageBytes
                          : config_.measured_bytes;

  // Wire attempts beyond a round's first extract the prover's whole
  // handling cost gratuitously — that is the PR-4 retry amplification,
  // and the profiler charges all of it to one phase so the Table-3 diff
  // shows the overhead instead of diluting it across mem_mac/resp_mac.
  if (round.attempt > 1) {
    sample.phase = prof::Phase::kRetryOverhead;
    sample.cycles = total_cycles;
    sample.duration_ms = outcome.device_ms;
    sample.energy_mj = obs_.power.active_mj(outcome.device_ms);
    sample.bus_bytes = measured_bytes + surface_.key_size;
    sample.mac_bytes =
        outcome.status == AttestStatus::kOk ? 16 + measured_bytes : 19;
    obs_.profile->record(sample);
    return;
  }

  // First attempt: carve the phase partition out of the anchor's exact
  // PhaseMs decomposition. Cycle counts are derived by subtraction for
  // the last phase, so the per-round partition always sums to
  // cycles(device_ms) despite per-phase rounding.
  const std::uint64_t req_cycles = timing_.cycles(outcome.phases.req_auth);
  sample.phase = prof::Phase::kReqAuth;
  sample.cycles = req_cycles;
  sample.duration_ms = outcome.phases.req_auth;
  sample.energy_mj = obs_.power.active_mj(outcome.phases.req_auth);
  sample.bus_bytes = surface_.key_size;
  sample.mac_bytes = 19;  // the authenticated request header
  obs_.profile->record(sample);

  if (outcome.status != AttestStatus::kOk) {
    // Rejects never reached the measurement; whatever device_ms exceeds
    // the authentication charge (nothing, today) stays visible as other.
    if (total_cycles > req_cycles) {
      sample = {};
      sample.device_id = obs_.device_id;
      sample.round_id = round.round_id;
      sample.sim_time_ms = end_ms;
      sample.phase = prof::Phase::kOther;
      sample.cycles = total_cycles - req_cycles;
      sample.duration_ms = outcome.device_ms - outcome.phases.req_auth;
      sample.energy_mj =
          obs_.power.active_mj(outcome.device_ms - outcome.phases.req_auth);
      obs_.profile->record(sample);
    }
    return;
  }

  sample = {};
  sample.device_id = obs_.device_id;
  sample.round_id = round.round_id;
  sample.sim_time_ms = end_ms;
  sample.phase = prof::Phase::kFreshness;
  sample.cycles = timing_.cycles(outcome.phases.freshness);
  sample.duration_ms = outcome.phases.freshness;
  sample.energy_mj = obs_.power.active_mj(outcome.phases.freshness);
  obs_.profile->record(sample);

  const std::uint64_t mem_cycles = timing_.cycles(outcome.phases.mem_mac);
  sample.phase = prof::Phase::kMemMac;
  sample.cycles = mem_cycles;
  sample.duration_ms = outcome.phases.mem_mac;
  sample.energy_mj = obs_.power.active_mj(outcome.phases.mem_mac);
  sample.bus_bytes = measured_bytes;
  sample.mac_bytes = measured_bytes;
  obs_.profile->record(sample);

  const std::uint64_t fresh_cycles = timing_.cycles(outcome.phases.freshness);
  const std::uint64_t attributed = req_cycles + fresh_cycles + mem_cycles;
  sample = {};
  sample.device_id = obs_.device_id;
  sample.round_id = round.round_id;
  sample.sim_time_ms = end_ms;
  sample.phase = prof::Phase::kRespMac;
  sample.cycles = total_cycles > attributed ? total_cycles - attributed : 0;
  sample.duration_ms = outcome.phases.resp_mac;
  sample.energy_mj = obs_.power.active_mj(outcome.phases.resp_mac);
  sample.mac_bytes = 16;  // challenge || freshness header absorbed
  obs_.profile->record(sample);
}

AttestOutcome ProverDevice::handle(const AttestRequest& request,
                                   const obs::RoundContext& round) {
  const AttestOutcome out = anchor_->handle_request(request);
  if (audit_log_ != nullptr) {
    (void)audit_log_->append(out, request.freshness);
  }
  // The prover is busy for the duration; simulated time moves on.
  mcu_->advance_ms(out.device_ms);
  if (obs_.enabled()) observe_request(request.wire_size(), out, round);
  return out;
}

AttestOutcome ProverDevice::handle_incremental(
    const IncAttestRequest& request, const obs::RoundContext& round) {
  const AttestOutcome out = anchor_->handle_incremental(request);
  if (audit_log_ != nullptr) {
    (void)audit_log_->append(out, request.freshness);
  }
  mcu_->advance_ms(out.device_ms);
  if (obs_.enabled()) observe_request(request.wire_size(), out, round);
  if (obs_.registry != nullptr) {
    if (obs_inc_requests_ == nullptr) {
      obs::Registry& reg = *obs_.registry;
      obs_inc_requests_ = &reg.counter("prover.inc.requests");
      obs_inc_pages_ = &reg.counter("prover.inc.pages_refreshed");
      obs_inc_fallbacks_ = &reg.counter("prover.inc.full_fallbacks");
    }
    obs_inc_requests_->inc();
    obs_inc_pages_->inc(static_cast<double>(out.inc_pages_refreshed));
    if (out.status == AttestStatus::kOk && out.inc_response.full_fallback()) {
      obs_inc_fallbacks_->inc();
    }
  }
  return out;
}

Bytes ProverDevice::reference_memory() {
  Bytes out(config_.measured_bytes);
  // Hardware-context read: this models the verifier's out-of-band
  // knowledge of the expected image, not a runtime access.
  mcu_->bus().read_block(hw::AccessContext{hw::kHardwarePc}, kMeasuredBase,
                         out);
  return out;
}

std::uint64_t ProverDevice::ground_truth_ticks() const {
  return mcu_->cycles() / clock_divider_;
}

std::optional<std::uint64_t> ProverDevice::prover_clock_ticks() {
  if (clock_source_ == nullptr) return std::nullopt;
  return clock_source_->read_ticks(anchor_->ctx());
}

double ProverDevice::ticks_per_ms() const {
  return config_.clock_hz / 1000.0 / static_cast<double>(clock_divider_);
}

}  // namespace ratt::attest
