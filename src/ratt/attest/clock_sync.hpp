// Secure verifier->prover clock synchronization — the paper's future-work
// item 2 ("develop mechanisms for secure and reliable synchronization of
// verifier's and prover's clocks").
//
// The hazard: a sync mechanism is itself a clock-reset vector — exactly
// the Sec. 5 roaming attack, but offered as a service. The design here
// therefore applies the paper's own discipline to the synchronizer:
//
//   * sync messages are MAC'd under K_Attest and carry a monotonic
//     sequence number, checked against a protected state word (replay /
//     reorder of sync messages is rejected just like attestation
//     requests);
//   * the clock is never adjusted directly: the prover keeps a software
//     *offset* word, applied on top of the read-only hardware counter.
//     The offset word lives in EA-MPU-protected memory, writable only by
//     Code_Attest;
//   * each adjustment is slew-limited (|step| <= max_step) and backward
//     steps beyond a small epsilon are refused — so even a verifier key
//     compromise cannot instantly rewind the prover to replay-vulnerable
//     territory; an attacker needs many rounds, each bounded.
#pragma once

#include <cstdint>
#include <optional>

#include "ratt/attest/message.hpp"
#include "ratt/hw/clock.hpp"
#include "ratt/hw/mcu.hpp"

namespace ratt::attest {

/// Wire format of a clock-sync request.
struct SyncRequest {
  std::uint64_t sequence = 0;       // strictly increasing per verifier
  std::uint64_t verifier_time = 0;  // verifier clock, in prover ticks
  Bytes mac;                        // over header_bytes() under K_Attest

  Bytes header_bytes() const;
  Bytes to_bytes() const;
  static std::optional<SyncRequest> from_bytes(ByteView wire);

  friend bool operator==(const SyncRequest&, const SyncRequest&) = default;
};

enum class SyncStatus : std::uint8_t {
  kApplied,          // offset adjusted by the full requested step
  kClamped,          // step exceeded the slew limit; partial adjustment
  kRefusedBackward,  // backward step beyond epsilon refused
  kBadMac,
  kNotFresh,         // sequence number not strictly increasing
  kStorageFault,
};

std::string to_string(SyncStatus status);

struct SyncOutcome {
  SyncStatus status = SyncStatus::kApplied;
  std::int64_t requested_step = 0;  // verifier_time - local synced time
  std::int64_t applied_step = 0;
};

/// Prover-side synchronizer. Belongs to the Code_Attest trust domain: its
/// two state words (sequence, offset) should be covered by the same
/// EA-MPU rule class as counter_R.
class ClockSynchronizer {
 public:
  struct Config {
    hw::Addr state_addr = 0;    // 16 bytes: [sequence u64][offset i64]
    std::uint64_t max_step_ticks = 0;      // slew limit per sync message
    std::uint64_t max_backward_ticks = 0;  // epsilon for backward steps
  };

  /// `component` supplies the trusted bus context (Code_Attest);
  /// `clock` is the device's raw (hardware) clock source.
  ClockSynchronizer(hw::SoftwareComponent& component, hw::ClockSource& clock,
                    const Config& config, ByteView k_attest,
                    crypto::MacAlgorithm mac_alg);

  /// Synchronized time: raw clock + protected offset. nullopt on fault.
  std::optional<std::uint64_t> now();

  /// Process one sync message.
  SyncOutcome handle(const SyncRequest& request);

 private:
  std::optional<std::int64_t> read_offset();
  bool write_offset(std::int64_t offset);

  hw::SoftwareComponent* component_;
  hw::ClockSource* clock_;
  Config config_;
  std::unique_ptr<crypto::Mac> mac_;
};

/// Verifier-side helper: builds authenticated sync requests from its own
/// clock.
class SyncMaster {
 public:
  SyncMaster(ByteView k_attest, crypto::MacAlgorithm mac_alg);

  SyncRequest make_request(std::uint64_t verifier_time);

 private:
  std::unique_ptr<crypto::Mac> mac_;
  std::uint64_t sequence_ = 0;
};

}  // namespace ratt::attest
