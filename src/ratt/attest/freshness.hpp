// Prover-side freshness policies (Sec. 4.2, Table 2).
//
// Each policy's mutable state lives in *device memory* and is manipulated
// through the bus with Code_Attest's program counter — so the EA-MPU
// protections of Sec. 5/6 (and the roaming adversary's attacks on
// unprotected state) apply to it exactly as in the paper:
//
//   * NonceHistoryPolicy — bounded nonce store in RAM. Detects replays of
//     remembered nonces only; reordering/delay pass (Table 2 row 2-3),
//     and once the store overflows, evicted nonces replay successfully —
//     the paper's "a lot of non-volatile memory" objection made concrete.
//   * CounterPolicy — counter_R word in memory; detects replay + reorder,
//     not delay.
//   * TimestampPolicy — compares the request timestamp against the
//     device clock (any ClockSource design) within an acceptance window,
//     detecting replay, reorder and delay.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ratt/attest/message.hpp"
#include "ratt/hw/clock.hpp"
#include "ratt/hw/mcu.hpp"

namespace ratt::attest {

enum class FreshnessVerdict : std::uint8_t {
  kAccept,
  kReplay,        // freshness element seen before
  kNotMonotonic,  // counter/timestamp not strictly increasing (reorder)
  kTooOld,        // timestamp outside the acceptance window (delay)
  kStorageFault,  // policy state unreachable (bus fault)
};

std::string to_string(FreshnessVerdict verdict);

/// Checks a request's freshness element and, on acceptance, commits the
/// updated state. Runs with the trust anchor's bus context.
class FreshnessPolicy {
 public:
  virtual ~FreshnessPolicy() = default;

  virtual FreshnessScheme scheme() const = 0;

  /// Evaluate `value` as seen by code with context `ctx` and update state
  /// on acceptance.
  virtual FreshnessVerdict check_and_update(const hw::AccessContext& ctx,
                                            std::uint64_t value) = 0;
};

/// Accepts everything — the unprotected baseline of Sec. 3.1.
std::unique_ptr<FreshnessPolicy> make_no_freshness();

/// Nonce history in device RAM at [base, base + 8 + 8*capacity):
/// a count word followed by a ring of 64-bit nonces. The scan covers one
/// slot past the count (the next write target), so an update torn by a
/// transient bus fault — slot committed, count not — still rejects the
/// replay instead of failing open; the flip side is that a literal nonce
/// of 0 can collide with an empty slot and be rejected conservatively.
std::unique_ptr<FreshnessPolicy> make_nonce_history(hw::Mcu& mcu,
                                                    hw::Addr base,
                                                    std::size_t capacity);

/// Monotonic counter_R: a 64-bit word at `counter_addr` (Fig. 1a).
std::unique_ptr<FreshnessPolicy> make_counter_policy(hw::Mcu& mcu,
                                                     hw::Addr counter_addr);

/// Timestamp check against `clock`, accepting requests whose timestamp t
/// satisfies  last_seen < t  and  now - t <= window_ticks  and
/// t <= now + skew_ticks. The word at `last_seen_addr` stores
/// last_seen + 1 (0 = no timestamp seen yet), so zero-initialized RAM is
/// the virgin state and a genuine t = 0 request is remembered — and its
/// replays rejected — like any other timestamp.
std::unique_ptr<FreshnessPolicy> make_timestamp_policy(
    hw::Mcu& mcu, hw::ClockSource& clock, hw::Addr last_seen_addr,
    std::uint64_t window_ticks, std::uint64_t skew_ticks = 0);

}  // namespace ratt::attest
