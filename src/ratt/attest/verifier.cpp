#include "ratt/attest/verifier.hpp"

#include <algorithm>
#include <stdexcept>

#include "ratt/crypto/ct.hpp"

namespace ratt::attest {

Verifier::Verifier(Bytes k_attest, const Config& config, ByteView drbg_seed)
    : key_(std::move(k_attest)),
      config_(config),
      drbg_(drbg_seed),
      mac_(crypto::make_mac(config.mac_alg, key_)) {
  if (config_.scheme == FreshnessScheme::kTimestamp && !config_.clock) {
    throw std::invalid_argument(
        "Verifier: timestamp scheme requires a clock");
  }
}

void Verifier::set_observer(const obs::Observer& observer) {
  obs_registry_ = observer.registry;
  obs_sink_ = observer.sink;
  if (observer.registry == nullptr) {
    obs_requests_ = nullptr;
    obs_valid_ = nullptr;
    obs_invalid_ = nullptr;
    obs_power_rounds_ = nullptr;
    obs_power_violations_ = nullptr;
    return;
  }
  obs_requests_ = &observer.registry->counter("verifier.requests");
  obs_valid_ = &observer.registry->counter("verifier.checks.valid");
  obs_invalid_ = &observer.registry->counter("verifier.checks.invalid");
}

std::vector<std::string> Verifier::grade_power_trace(
    const obs::power::RoundTrace& trace, const std::string& class_key) {
  if (power_witness_ == nullptr) return {};
  std::vector<std::string> violated;
  if (obs_sink_ != nullptr) {
    violated = power_witness_->grade_to(trace, *obs_sink_, class_key);
  } else {
    violated = power_witness_->grade(trace, class_key);
  }
  if (obs_registry_ != nullptr) {
    // Lazy registration: verifier.power.* appears only once a trace is
    // actually graded, keeping witness-free registry exports unchanged.
    if (obs_power_rounds_ == nullptr) {
      obs_power_rounds_ = &obs_registry_->counter("verifier.power.rounds");
      obs_power_violations_ =
          &obs_registry_->counter("verifier.power.violations");
    }
    obs_power_rounds_->inc();
    if (!violated.empty()) obs_power_violations_->inc();
  }
  return violated;
}

std::uint64_t Verifier::next_word() {
  if (rand_pos_ + 8 > rand_buf_.size()) {
    const Bytes block = drbg_.generate(rand_buf_.size());
    std::copy(block.begin(), block.end(), rand_buf_.begin());
    rand_pos_ = 0;
  }
  const std::uint64_t word = crypto::load_le64(rand_buf_.data() + rand_pos_);
  rand_pos_ += 8;
  return word;
}

AttestRequest Verifier::make_request() {
  if (obs_requests_ != nullptr) obs_requests_->inc();
  AttestRequest req;
  req.scheme = config_.scheme;
  req.mac_alg = config_.mac_alg;
  switch (config_.scheme) {
    case FreshnessScheme::kNone:
      req.freshness = 0;
      break;
    case FreshnessScheme::kNonce:
      req.freshness = next_word();
      break;
    case FreshnessScheme::kCounter:
      req.freshness = ++counter_;
      break;
    case FreshnessScheme::kTimestamp:
      req.freshness = config_.clock();
      break;
  }
  req.challenge = next_word();
  if (config_.authenticate_requests) {
    req.mac = mac_->compute(req.header_bytes());
  }
  return req;
}

bool Verifier::check_response(const AttestRequest& request,
                              const AttestResponse& response) const {
  const auto tally = [this](bool ok) {
    if (obs_valid_ != nullptr) (ok ? obs_valid_ : obs_invalid_)->inc();
    return ok;
  };
  if (response.freshness != request.freshness) return tally(false);
  // Recompute the expected measurement over the reference memory,
  // streamed — no challenge||freshness||memory copy per check.
  mac_->init(16 + reference_memory_->size());
  std::uint8_t head[16];
  crypto::store_le64(head, request.challenge);
  crypto::store_le64(head + 8, request.freshness);
  mac_->update(ByteView(head, 16));
  mac_->update(*reference_memory_);
  return tally(crypto::ct_equal(mac_->finish(), response.measurement));
}

}  // namespace ratt::attest
