#include "ratt/attest/verifier.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "ratt/attest/verifier_batch.hpp"
#include "ratt/crypto/ct.hpp"

namespace ratt::attest {

Verifier::Verifier(Bytes k_attest, const Config& config, ByteView drbg_seed)
    : key_(std::move(k_attest)),
      config_(config),
      drbg_(drbg_seed),
      mac_(crypto::make_mac(config.mac_alg, key_)) {
  if (config_.scheme == FreshnessScheme::kTimestamp && !config_.clock) {
    throw std::invalid_argument(
        "Verifier: timestamp scheme requires a clock");
  }
}

void Verifier::set_observer(const obs::Observer& observer) {
  obs_registry_ = observer.registry;
  obs_sink_ = observer.sink;
  if (observer.registry == nullptr) {
    obs_requests_ = nullptr;
    obs_valid_ = nullptr;
    obs_invalid_ = nullptr;
    obs_power_rounds_ = nullptr;
    obs_power_violations_ = nullptr;
    return;
  }
  obs_requests_ = &observer.registry->counter("verifier.requests");
  obs_valid_ = &observer.registry->counter("verifier.checks.valid");
  obs_invalid_ = &observer.registry->counter("verifier.checks.invalid");
}

std::vector<std::string> Verifier::grade_power_trace(
    const obs::power::RoundTrace& trace, const std::string& class_key) {
  if (power_witness_ == nullptr) return {};
  std::vector<std::string> violated;
  if (obs_sink_ != nullptr) {
    violated = power_witness_->grade_to(trace, *obs_sink_, class_key);
  } else {
    violated = power_witness_->grade(trace, class_key);
  }
  if (obs_registry_ != nullptr) {
    // Lazy registration: verifier.power.* appears only once a trace is
    // actually graded, keeping witness-free registry exports unchanged.
    if (obs_power_rounds_ == nullptr) {
      obs_power_rounds_ = &obs_registry_->counter("verifier.power.rounds");
      obs_power_violations_ =
          &obs_registry_->counter("verifier.power.violations");
    }
    obs_power_rounds_->inc();
    if (!violated.empty()) obs_power_violations_->inc();
  }
  return violated;
}

std::uint64_t Verifier::next_word() {
  if (rand_pos_ + 8 > rand_buf_.size()) {
    const Bytes block = drbg_.generate(rand_buf_.size());
    std::copy(block.begin(), block.end(), rand_buf_.begin());
    rand_pos_ = 0;
  }
  const std::uint64_t word = crypto::load_le64(rand_buf_.data() + rand_pos_);
  rand_pos_ += 8;
  return word;
}

void Verifier::fill_freshness(std::uint64_t& freshness,
                              std::uint64_t& challenge) {
  switch (config_.scheme) {
    case FreshnessScheme::kNone:
      freshness = 0;
      break;
    case FreshnessScheme::kNonce:
      freshness = next_word();
      break;
    case FreshnessScheme::kCounter:
      freshness = ++counter_;
      break;
    case FreshnessScheme::kTimestamp:
      freshness = config_.clock();
      break;
  }
  challenge = next_word();
}

bool Verifier::batchable() const {
  // Timestamp freshness reads a live clock at make_request time, so a
  // precomputed round would freeze it — observable. Everything else
  // (none/nonce/counter) draws values the scalar path would produce in
  // the same order.
  return batch_ != nullptr && crypto::MacBatch::supports(config_.mac_alg) &&
         config_.scheme != FreshnessScheme::kTimestamp;
}

void Verifier::fill_pipeline() {
  const std::size_t lanes =
      static_cast<std::size_t>(VerifierBatch::kLanes) - issued_count_;
  if (lanes == 0) return;
  // Draw each future round's freshness/challenge exactly as the scalar
  // fill_freshness would, in order; counter_ itself advances only when
  // an entry is actually popped, so counter() never runs ahead.
  PipeEntry* fresh[VerifierBatch::kLanes];
  std::uint64_t ctr = counter_;
  for (std::size_t k = 0; k < lanes; ++k) {
    PipeEntry& e = pend_[(pend_head_ + pend_count_) & 7];
    switch (config_.scheme) {
      case FreshnessScheme::kNone:
        e.freshness = 0;
        break;
      case FreshnessScheme::kNonce:
        e.freshness = next_word();
        break;
      case FreshnessScheme::kCounter:
        e.freshness = ++ctr;
        break;
      case FreshnessScheme::kTimestamp:
        e.freshness = 0;  // unreachable: batchable() excludes timestamps
        break;
    }
    e.challenge = next_word();
    e.ref_src = nullptr;
    fresh[k] = &e;
    ++pend_count_;
  }

  crypto::MacBatch& mb = batch_->engine();
  mb.set_key_all(key_);

  // Wave 1: request-authentication MACs over the 19-byte headers.
  if (config_.authenticate_requests) {
    std::uint8_t headers[VerifierBatch::kLanes][AttestRequest::kHeaderSize];
    crypto::MacBatch::LaneMsg msgs[VerifierBatch::kLanes];
    std::uint8_t tags[VerifierBatch::kLanes][crypto::MacBatch::kTagSize];
    AttestRequest proto;
    proto.scheme = config_.scheme;
    proto.mac_alg = config_.mac_alg;
    for (std::size_t k = 0; k < lanes; ++k) {
      proto.freshness = fresh[k]->freshness;
      proto.challenge = fresh[k]->challenge;
      proto.header_into(headers[k]);
      msgs[k] = {ByteView(headers[k], AttestRequest::kHeaderSize),
                 ByteView()};
    }
    mb.compute_many(msgs, lanes, tags);
    for (std::size_t k = 0; k < lanes; ++k) {
      std::memcpy(fresh[k]->req_mac, tags[k], crypto::MacBatch::kTagSize);
    }
  }

  // Wave 2: expected response measurements over challenge || freshness
  // || reference memory. Every lane streams the shared reference as its
  // tail — no concatenated copies.
  const Bytes* ref = reference_memory_.get();
  std::uint8_t heads[VerifierBatch::kLanes][16];
  crypto::MacBatch::LaneMsg msgs[VerifierBatch::kLanes];
  std::uint8_t tags[VerifierBatch::kLanes][crypto::MacBatch::kTagSize];
  for (std::size_t k = 0; k < lanes; ++k) {
    crypto::store_le64(heads[k], fresh[k]->challenge);
    crypto::store_le64(heads[k] + 8, fresh[k]->freshness);
    msgs[k] = {ByteView(heads[k], 16), ByteView(*ref)};
  }
  mb.compute_many(msgs, lanes, tags);
  for (std::size_t k = 0; k < lanes; ++k) {
    std::memcpy(fresh[k]->expected, tags[k], crypto::MacBatch::kTagSize);
    fresh[k]->ref_src = ref;
  }
  batch_->note_fill(lanes);
}

AttestRequest Verifier::make_request() {
  if (obs_requests_ != nullptr) obs_requests_->inc();
  AttestRequest req;
  req.scheme = config_.scheme;
  req.mac_alg = config_.mac_alg;
  if (batchable()) {
    if (pend_count_ == 0) fill_pipeline();
    if (pend_count_ > 0) {
      const PipeEntry& e = pend_[pend_head_];
      pend_head_ = (pend_head_ + 1) & 7;
      --pend_count_;
      if (config_.scheme == FreshnessScheme::kCounter) ++counter_;
      req.freshness = e.freshness;
      req.challenge = e.challenge;
      if (config_.authenticate_requests) {
        req.mac.assign(e.req_mac, e.req_mac + crypto::MacBatch::kTagSize);
      }
      issued_[issued_count_++] = e;
      return req;
    }
  }
  fill_freshness(req.freshness, req.challenge);
  if (config_.authenticate_requests) {
    req.mac = mac_->compute(req.header_bytes());
  }
  return req;
}

IncAttestRequest Verifier::make_incremental_request() {
  if (obs_requests_ != nullptr) obs_requests_->inc();
  IncAttestRequest req;
  req.scheme = config_.scheme;
  req.mac_alg = config_.mac_alg;
  req.since_gen = retained_gen_;
  if (batchable() && pend_count_ > 0) {
    // Consume the oldest precomputed draw so the freshness/challenge
    // stream stays in scalar order; the 28-byte incremental header MACs
    // scalar (its since_gen is not known at fill time).
    const PipeEntry& e = pend_[pend_head_];
    pend_head_ = (pend_head_ + 1) & 7;
    --pend_count_;
    if (config_.scheme == FreshnessScheme::kCounter) ++counter_;
    req.freshness = e.freshness;
    req.challenge = e.challenge;
  } else {
    fill_freshness(req.freshness, req.challenge);
  }
  if (config_.authenticate_requests) {
    req.mac = mac_->compute(req.header_bytes());
  }
  return req;
}

bool Verifier::check_response(const AttestRequest& request,
                              const AttestResponse& response) const {
  const auto tally = [this](bool ok) {
    if (obs_valid_ != nullptr) (ok ? obs_valid_ : obs_invalid_)->inc();
    return ok;
  };
  if (response.freshness != request.freshness) return tally(false);
  if (batch_ != nullptr) {
    for (std::uint8_t i = 0; i < issued_count_; ++i) {
      const PipeEntry& e = issued_[i];
      if (e.freshness != request.freshness ||
          e.challenge != request.challenge) {
        continue;
      }
      std::uint8_t expected[crypto::MacBatch::kTagSize];
      std::memcpy(expected, e.expected, sizeof(expected));
      const bool fresh_ref = e.ref_src == reference_memory_.get();
      issued_[i] = issued_[--issued_count_];
      if (fresh_ref) {
        batch_->note_hit();
        return tally(crypto::ct_equal(ByteView(expected, sizeof(expected)),
                                      response.measurement));
      }
      // The reference changed after this round was precomputed; its
      // expected tag is stale — recompute scalar below.
      batch_->note_miss();
      break;
    }
  }
  // Recompute the expected measurement over the reference memory,
  // streamed — no challenge||freshness||memory copy per check.
  mac_->init(16 + reference_memory_->size());
  std::uint8_t head[16];
  crypto::store_le64(head, request.challenge);
  crypto::store_le64(head + 8, request.freshness);
  mac_->update(ByteView(head, 16));
  mac_->update(*reference_memory_);
  return tally(crypto::ct_equal(mac_->finish(), response.measurement));
}

void Verifier::ensure_page_macs() {
  if (page_macs_src_ == reference_memory_.get()) return;
  const Bytes& ref = *reference_memory_;
  constexpr std::size_t kPage = 4096;
  const std::size_t pages = (ref.size() + kPage - 1) / kPage;
  const std::size_t tag_size = mac_->tag_size();
  page_macs_.assign(pages * tag_size, 0);
  for (std::size_t p = 0; p < pages; ++p) {
    const std::size_t off = p * kPage;
    const std::size_t len = std::min(kPage, ref.size() - off);
    std::uint8_t head[9];
    head[0] = 'P';
    crypto::store_le32(head + 1, static_cast<std::uint32_t>(p));
    crypto::store_le32(head + 5, static_cast<std::uint32_t>(len));
    mac_->init(9 + len);
    mac_->update(ByteView(head, 9));
    mac_->update(ByteView(ref.data() + off, len));
    const Bytes tag = mac_->finish();
    std::copy(tag.begin(), tag.end(), page_macs_.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              p * tag_size));
  }
  page_macs_src_ = reference_memory_.get();
}

bool Verifier::check_incremental(const IncAttestRequest& request,
                                 const IncAttestResponse& response) {
  const auto tally = [this](bool ok) {
    if (obs_valid_ != nullptr) (ok ? obs_valid_ : obs_invalid_)->inc();
    return ok;
  };
  // Any invalid incremental response destroys trust in the retained
  // state: reset it so the next request demands a full fallback. The
  // naive (unbound) verifier keeps trusting — that is exactly the gap
  // the rollback regression suite demonstrates.
  const auto fail = [&] {
    if (config_.bind_generation) retained_gen_ = 0;
    return tally(false);
  };

  if (response.freshness != request.freshness) return fail();
  if (response.generation_bound() != config_.bind_generation) return fail();
  if (response.new_gen == 0) return fail();

  constexpr std::size_t kPage = 4096;
  const std::size_t pages_total =
      (reference_memory_->size() + kPage - 1) / kPage;
  // Changed-page list sanity: bounded, in range, strictly increasing —
  // the absorb below assumes a canonical list, and a hostile frame must
  // not smuggle duplicates or out-of-range indices past it.
  if (response.changed_pages.size() > pages_total) return fail();
  for (std::size_t i = 0; i < response.changed_pages.size(); ++i) {
    if (response.changed_pages[i] >= pages_total) return fail();
    if (i > 0 &&
        response.changed_pages[i] <= response.changed_pages[i - 1]) {
      return fail();
    }
  }

  if (response.full_fallback()) {
    // A fallback re-MACs everything: its page list must say so.
    if (response.changed_pages.size() != pages_total) return fail();
  } else {
    // A delta is only acceptable against state we actually retain.
    if (request.since_gen == 0) return fail();
    if (config_.bind_generation) {
      if (response.base_gen != request.since_gen) return fail();
      if (response.new_gen < response.base_gen) return fail();
      // The generation advances iff evidence was refreshed.
      if ((response.new_gen == response.base_gen) !=
          response.changed_pages.empty()) {
        return fail();
      }
    }
  }

  // Recompute the fold MAC over the verifier's own expected tag table
  // (built from the reference memory): the prover's pages must MAC to
  // exactly what an untampered image would, whether cached or refreshed.
  ensure_page_macs();
  const bool bound = config_.bind_generation;
  const std::size_t fold_len = 22 + (bound ? 16 : 0) +
                               4 * response.changed_pages.size() +
                               page_macs_.size();
  mac_->init(fold_len);
  std::uint8_t fold_head[38];
  fold_head[0] = 'I';
  fold_head[1] = response.flags;
  crypto::store_le64(fold_head + 2, request.challenge);
  crypto::store_le64(fold_head + 10, request.freshness);
  std::size_t head_len = 18;
  if (bound) {
    crypto::store_le64(fold_head + 18, response.base_gen);
    crypto::store_le64(fold_head + 26, response.new_gen);
    head_len = 34;
  }
  crypto::store_le32(fold_head + head_len,
                     static_cast<std::uint32_t>(
                         response.changed_pages.size()));
  head_len += 4;
  mac_->update(ByteView(fold_head, head_len));
  for (const std::uint32_t p : response.changed_pages) {
    std::uint8_t idx[4];
    crypto::store_le32(idx, p);
    mac_->update(ByteView(idx, 4));
  }
  mac_->update(page_macs_);
  if (!crypto::ct_equal(mac_->finish(), response.measurement)) {
    return fail();
  }
  retained_gen_ = response.new_gen;
  return tally(true);
}

}  // namespace ratt::attest
