// Attestation protocol messages (Sec. 3): the verifier's request attreq
// and the prover's response.
//
// A request carries a freshness element (nonce, counter or timestamp —
// Sec. 4.2), a challenge bound into the memory measurement, and — when
// request authentication is enabled (Sec. 4.1) — a MAC over the header
// under K_Attest.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ratt/crypto/mac.hpp"

namespace ratt::attest {

using crypto::Bytes;
using crypto::ByteView;

/// How the request proves freshness (Table 2 columns).
enum class FreshnessScheme : std::uint8_t {
  kNone = 0,       // unprotected baseline
  kNonce = 1,      // verifier-chosen unique value; prover keeps history
  kCounter = 2,    // monotonically increasing sequence number
  kTimestamp = 3,  // verifier clock reading; prover checks its own clock
};

std::string to_string(FreshnessScheme scheme);

struct AttestRequest {
  FreshnessScheme scheme = FreshnessScheme::kNone;
  crypto::MacAlgorithm mac_alg = crypto::MacAlgorithm::kHmacSha1;
  /// Nonce, counter value, or timestamp ticks, depending on `scheme`.
  std::uint64_t freshness = 0;
  /// Verifier challenge, bound into the response MAC.
  std::uint64_t challenge = 0;
  /// MAC over header_bytes() under K_Attest; empty when the deployment
  /// does not authenticate requests (the Sec. 3.1 baseline).
  Bytes mac;

  /// The authenticated portion: everything except the MAC itself.
  Bytes header_bytes() const;

  Bytes to_bytes() const;
  /// to_bytes().size() without serializing: 19-byte header, MAC length
  /// byte, MAC.
  std::size_t wire_size() const { return 19 + 1 + mac.size(); }
  static std::optional<AttestRequest> from_bytes(ByteView wire);

  friend bool operator==(const AttestRequest&, const AttestRequest&) =
      default;
};

struct AttestResponse {
  /// Echo of the request's freshness element (lets the verifier match
  /// responses to requests).
  std::uint64_t freshness = 0;
  /// MAC under K_Attest over challenge || freshness || measured memory.
  Bytes measurement;

  Bytes to_bytes() const;
  static std::optional<AttestResponse> from_bytes(ByteView wire);

  friend bool operator==(const AttestResponse&, const AttestResponse&) =
      default;
};

}  // namespace ratt::attest
