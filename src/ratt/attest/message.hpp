// Attestation protocol messages (Sec. 3): the verifier's request attreq
// and the prover's response.
//
// A request carries a freshness element (nonce, counter or timestamp —
// Sec. 4.2), a challenge bound into the memory measurement, and — when
// request authentication is enabled (Sec. 4.1) — a MAC over the header
// under K_Attest.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ratt/crypto/mac.hpp"

namespace ratt::attest {

using crypto::Bytes;
using crypto::ByteView;

/// How the request proves freshness (Table 2 columns).
enum class FreshnessScheme : std::uint8_t {
  kNone = 0,       // unprotected baseline
  kNonce = 1,      // verifier-chosen unique value; prover keeps history
  kCounter = 2,    // monotonically increasing sequence number
  kTimestamp = 3,  // verifier clock reading; prover checks its own clock
};

std::string to_string(FreshnessScheme scheme);

struct AttestRequest {
  FreshnessScheme scheme = FreshnessScheme::kNone;
  crypto::MacAlgorithm mac_alg = crypto::MacAlgorithm::kHmacSha1;
  /// Nonce, counter value, or timestamp ticks, depending on `scheme`.
  std::uint64_t freshness = 0;
  /// Verifier challenge, bound into the response MAC.
  std::uint64_t challenge = 0;
  /// MAC over header_bytes() under K_Attest; empty when the deployment
  /// does not authenticate requests (the Sec. 3.1 baseline).
  Bytes mac;

  /// Serialized header length.
  static constexpr std::size_t kHeaderSize = 19;

  /// The authenticated portion: everything except the MAC itself.
  Bytes header_bytes() const;

  /// Alloc-free form: serialize the header into `out[kHeaderSize]`.
  /// The hot paths (request pipelining, per-round MACs) use this.
  void header_into(std::uint8_t* out) const;

  Bytes to_bytes() const;
  /// to_bytes().size() without serializing: 19-byte header, MAC length
  /// byte, MAC.
  std::size_t wire_size() const { return kHeaderSize + 1 + mac.size(); }
  static std::optional<AttestRequest> from_bytes(ByteView wire);

  friend bool operator==(const AttestRequest&, const AttestRequest&) =
      default;
};

struct AttestResponse {
  /// Echo of the request's freshness element (lets the verifier match
  /// responses to requests).
  std::uint64_t freshness = 0;
  /// MAC under K_Attest over challenge || freshness || measured memory.
  Bytes measurement;

  Bytes to_bytes() const;
  static std::optional<AttestResponse> from_bytes(ByteView wire);

  friend bool operator==(const AttestResponse&, const AttestResponse&) =
      default;
};

/// Versioned incremental-attestation request (DESIGN.md §4i): the
/// verifier asks for "changed since generation `since_gen`" evidence.
/// since_gen == 0 means first contact / no retained state — the prover
/// must answer with a full fallback.
struct IncAttestRequest {
  /// Wire version this implementation speaks; parsers reject others.
  static constexpr std::uint8_t kVersion = 1;

  FreshnessScheme scheme = FreshnessScheme::kNone;
  crypto::MacAlgorithm mac_alg = crypto::MacAlgorithm::kHmacSha1;
  std::uint64_t freshness = 0;
  std::uint64_t challenge = 0;
  /// The evidence generation the verifier retains page digests for.
  std::uint64_t since_gen = 0;
  /// MAC over header_bytes() under K_Attest (empty when the deployment
  /// does not authenticate requests).
  Bytes mac;

  /// Serialized header length.
  static constexpr std::size_t kHeaderSize = 28;

  /// The authenticated portion: magic, version, scheme, mac_alg,
  /// freshness, challenge, since_gen — 28 bytes.
  Bytes header_bytes() const;

  /// Alloc-free form: serialize the header into `out[kHeaderSize]`.
  void header_into(std::uint8_t* out) const;

  Bytes to_bytes() const;
  std::size_t wire_size() const { return kHeaderSize + 1 + mac.size(); }
  static std::optional<IncAttestRequest> from_bytes(ByteView wire);

  friend bool operator==(const IncAttestRequest&, const IncAttestRequest&) =
      default;
};

/// Incremental evidence: which pages were re-MACed, under which cache
/// generations, plus the fold MAC over the whole per-page tag table.
struct IncAttestResponse {
  static constexpr std::uint8_t kVersion = 1;
  /// The prover could not serve the delta and re-MACed everything
  /// (first contact, unseeded cache, or generation mismatch).
  static constexpr std::uint8_t kFlagFullFallback = 0x01;
  /// The fold MAC absorbs base_gen/new_gen (generation-bound cache).
  static constexpr std::uint8_t kFlagGenerationBound = 0x02;
  /// Parser cap on changed_pages: bounds the allocation a hostile frame
  /// can demand (2^16 pages = 256 MB of 4 KB pages, far past any device).
  static constexpr std::uint32_t kMaxChangedPages = 65536;

  std::uint8_t flags = 0;
  std::uint64_t freshness = 0;
  /// Cache generation the delta starts from (== request.since_gen on a
  /// non-fallback response).
  std::uint64_t base_gen = 0;
  /// Cache generation after this evidence refresh.
  std::uint64_t new_gen = 0;
  /// Indices (within the measured range) of the pages re-MACed for this
  /// response, strictly increasing.
  std::vector<std::uint32_t> changed_pages;
  /// Fold MAC under K_Attest over the response header fields and the
  /// complete per-page tag table (trust_anchor.hpp documents the exact
  /// absorb order).
  Bytes measurement;

  bool full_fallback() const { return (flags & kFlagFullFallback) != 0; }
  bool generation_bound() const {
    return (flags & kFlagGenerationBound) != 0;
  }

  Bytes to_bytes() const;
  std::size_t wire_size() const {
    return 31 + 4 * changed_pages.size() + 1 + measurement.size();
  }
  static std::optional<IncAttestResponse> from_bytes(ByteView wire);

  friend bool operator==(const IncAttestResponse&,
                         const IncAttestResponse&) = default;
};

/// Wire-dispatch helpers: the first byte of every frame is its magic.
bool is_inc_request_frame(ByteView wire);
bool is_inc_response_frame(ByteView wire);

}  // namespace ratt::attest
