// ProverDevice: a complete simulated prover in every configuration the
// paper discusses — MAC algorithm (Table 1), freshness scheme (Table 2),
// clock design (Fig. 1a/1b, Sec. 6.3), and per-asset EA-MPU protection
// toggles (protected vs. unprotected counter/clock/key), so the Sec. 5
// roaming attacks can be run against both vulnerable and hardened
// configurations.
//
// Construction provisions K_Attest, runs secure boot (loading the
// application image and programming + locking the EA-MPU), and wires the
// clock design. The resulting object is what adversaries in ratt::adv
// attack.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "ratt/attest/audit_log.hpp"
#include "ratt/attest/clock_sync.hpp"
#include "ratt/attest/services.hpp"
#include "ratt/attest/trust_anchor.hpp"
#include "ratt/hw/secure_boot.hpp"
#include "ratt/obs/observer.hpp"
#include "ratt/timing/timing.hpp"

namespace ratt::attest {

/// Clock designs evaluated in Sec. 6.3 / Fig. 1, plus the unprotected
/// software-settable clock the Sec. 5 attack assumes.
enum class ClockDesign : std::uint8_t {
  kNone,       // no clock (counter/nonce/none freshness schemes)
  kWritable,   // software-settable clock register — unprotected baseline
  kHw64,       // 64-bit hardware counter, divider 1 (Fig. 1a)
  kHw32Div,    // 32-bit hardware counter, divider 2^20 (Sec. 6.3)
  kSwClock,    // Clock_LSB wrap interrupt + Code_Clock + Clock_MSB (Fig. 1b)
};

std::string to_string(ClockDesign design);

/// Which prior architecture's EA-MAC style the device uses (Sec. 6.1):
/// TrustLite programs rules at boot through memory-mapped registers and
/// locks them; SMART's rules are hard-wired — there is no configuration
/// interface to attack at all.
enum class MpuFlavor : std::uint8_t { kTrustLite, kSmart };

std::string to_string(MpuFlavor flavor);

struct ProverConfig {
  crypto::MacAlgorithm mac_alg = crypto::MacAlgorithm::kHmacSha1;
  FreshnessScheme scheme = FreshnessScheme::kCounter;
  ClockDesign clock = ClockDesign::kNone;
  MpuFlavor mpu_flavor = MpuFlavor::kTrustLite;
  bool authenticate_requests = true;

  // Per-asset EA-MPU protection toggles (Sec. 5 "Protecting Keys,
  // Counters & Clocks"). All false = the vulnerable pre-paper baseline.
  bool protect_key = true;
  /// Sec. 6.2: "In ROM, it is inherently write-protected. Otherwise ...
  /// it must be write-protected by a dedicated EA-MAC rule." false puts
  /// K_Attest in RAM, exposing it to overwrite when protect_key is off.
  bool key_in_rom = true;
  bool protect_counter = true;
  bool protect_clock = true;  // SW-clock: MSB rule + IDT lockdown + mask
                              // port rule; HW designs are read-only wired

  /// Size of the measured memory range (the paper's headline uses the
  /// full 512 KB RAM; tests use smaller regions for speed).
  std::size_t measured_bytes = 4096;
  /// Nonce-history ring capacity (Sec. 4.2 memory objection).
  std::size_t nonce_capacity = 16;
  /// Timestamp acceptance window, in ticks of the configured clock.
  std::uint64_t timestamp_window_ticks = 0;
  std::uint64_t timestamp_skew_ticks = 0;

  /// Enable the attestation-derived device services (secure code update
  /// + secure erase, services.hpp); their state words get an EA-MPU rule
  /// alongside counter_R.
  bool enable_services = false;
  /// Enable the secure clock synchronizer (clock_sync.hpp); requires a
  /// clock design. Its state words get an EA-MPU rule too.
  bool enable_clock_sync = false;
  /// Slew limits for the synchronizer (ticks of the configured clock).
  std::uint64_t sync_max_step_ticks = 24'000'000;
  std::uint64_t sync_max_backward_ticks = 24'000;
  /// Prover-side attestation budget (extension); 0 = unlimited.
  std::uint32_t rate_limit_max = 0;
  double rate_limit_window_ms = 1000.0;
  /// Tamper-evident audit log (extension): hash-chained decision records
  /// in EA-MPU-protected RAM — makes Sec. 5's "undetectable after the
  /// fact" rollback attacks forensically detectable.
  bool enable_audit_log = false;
  std::size_t audit_capacity = 32;

  /// Window-coalesced bulk bus transfers (docs/PERFORMANCE.md). false
  /// selects the per-byte reference path — semantically identical, kept
  /// for differential testing and the CI byte-compare.
  bool bulk_bus = true;

  /// Incremental paged attestation (DESIGN.md §4i): maintain a per-page
  /// MAC cache and serve "changed-since generation" requests by
  /// re-MACing only dirty pages.
  bool enable_incremental = false;
  /// Protect the cache with an EA-MPU rule and restrict dirty-bitmap
  /// clearing to Code_Attest. false = the naive cache the rollback
  /// regression suite defeats (anyone can restore tags / clear bits).
  bool protect_cache = true;
  /// Bind responses to the evidence generation (full fallback on
  /// mismatch). false = the replayable naive variant.
  bool bind_generation = true;

  double clock_hz = timing::Table1::kRefHz;
};

/// Fleet template (Swarm share_app_image): one vendor-signed application
/// image shared by every device in a fleet. Built once with
/// ProverDevice::make_template(); each materialized device then boots the
/// shared image through the secure-boot fast path (vendor signature
/// verified once, image digest precomputed), while K_Attest, freshness
/// state and every RAM/flash mutation stay fully per-device.
struct ProverTemplate {
  hw::BootImage image;
  hw::RomReference reference;
  crypto::Sha256::Digest digest{};
  /// The measured-range bytes the verifier expects — what secure boot
  /// loads at the measured base (share via Verifier's shared_ptr
  /// set_reference_memory overload).
  Bytes reference_memory;
  /// Page-aligned images of the boot segments, built once here and
  /// aliased copy-on-write into every device booting this template
  /// (hw::BootFastPath::shared_pages): a fleet stores the application
  /// image once, not once per device.
  std::vector<hw::SharedSegmentPage> shared_pages;
};

/// Addresses an in-device adversary (Adv_roam phase II) can aim at.
struct AttackSurface {
  hw::Addr key_addr = 0;
  std::size_t key_size = 0;
  hw::Addr counter_addr = 0;      // counter_R (also timestamp last-seen)
  hw::Addr last_seen_addr = 0;    // timestamp policy state
  hw::Addr nonce_store_addr = 0;
  std::size_t nonce_capacity = 0;
  hw::Addr clock_port_addr = 0;   // MMIO clock register (design-dependent)
  hw::Addr clock_msb_addr = 0;    // SW-clock high word (0 if n/a)
  hw::Addr idt_base = 0;
  hw::Addr irq_mask_addr = 0;
  hw::AddrRange malware_region;   // free flash range malware "executes" from
  hw::AddrRange measured_memory;
  hw::Addr services_state_addr = 0;   // update version + erase sequence
  hw::Addr sync_state_addr = 0;       // sync sequence + clock offset
  hw::AddrRange erasable;             // secure-erase service window
  hw::Addr audit_log_addr = 0;        // hash-chained decision log
  hw::Addr cache_addr = 0;            // per-page MAC cache (generation +
  std::size_t cache_size = 0;         // tag table; 0/0 if not incremental)
};

class ProverDevice {
 public:
  /// Builds, provisions and securely boots the device. `k_attest` is the
  /// shared attestation key; `app_seed` determinizes the application
  /// image filling the measured memory.
  ProverDevice(const ProverConfig& config, Bytes k_attest,
               ByteView app_seed);

  /// Fleet-template variant: boots `tmpl`'s shared image instead of
  /// deriving a per-device one from an app seed. The template must
  /// outlive the device (the Swarm holds it for the fleet's lifetime).
  ProverDevice(const ProverConfig& config, Bytes k_attest,
               const ProverTemplate& tmpl);

  /// Build the shared image + signed reference a fleet's devices boot
  /// from. `app_seed` determinizes the image exactly the way the
  /// per-device constructor would (same DRBG, same segment layout).
  static ProverTemplate make_template(const ProverConfig& config,
                                      ByteView app_seed);

  ProverDevice(const ProverDevice&) = delete;
  ProverDevice& operator=(const ProverDevice&) = delete;

  const ProverConfig& config() const { return config_; }
  hw::BootStatus boot_status() const { return boot_status_; }

  hw::Mcu& mcu() { return *mcu_; }
  CodeAttest& anchor() { return *anchor_; }
  const timing::DeviceTimingModel& timing_model() const { return timing_; }
  const AttackSurface& surface() const { return surface_; }

  /// Attach telemetry (a default-constructed Observer detaches). Emits
  /// one "prover.handle" span per request plus prover.* counters and a
  /// prover.handle_ms histogram; energy is derived from the observer's
  /// power model. With no observer, handle() behaves bit-identically to
  /// the uninstrumented device.
  void set_observer(const obs::Observer& observer);

  /// Process one request; simulated device time advances by the prover
  /// time the request consumed (so the clock moves with the workload).
  /// `round` is the causal context of the wire request (round id +
  /// attempt) — it only feeds telemetry (trace round ids, per-phase
  /// samples) and never changes device behavior; the default means "not
  /// part of any tracked round" (floods, bare benches).
  AttestOutcome handle(const AttestRequest& request,
                       const obs::RoundContext& round = {});

  /// Process one incremental request (enable_incremental; DESIGN.md §4i).
  /// Same time-advance and telemetry contract as handle(); additionally
  /// tallies the lazily registered prover.inc.* counters, so fleets that
  /// never go incremental keep their registry export unchanged.
  AttestOutcome handle_incremental(const IncAttestRequest& request,
                                   const obs::RoundContext& round = {});

  /// Let simulated wall-clock time pass (the device idles / does its
  /// primary task); clocks advance.
  void idle_ms(double ms) { mcu_->advance_ms(ms); }

  /// Reference copy of the measured memory (the verifier's view).
  Bytes reference_memory();

  /// What an untampered clock of this design would read now — the ground
  /// truth the verifier's synchronized clock returns (Sec. 4.2 assumes
  /// synchronized clocks).
  std::uint64_t ground_truth_ticks() const;

  /// The prover's actual clock reading (differs from ground truth after a
  /// roaming adversary reset it). nullopt if no clock or read fault.
  std::optional<std::uint64_t> prover_clock_ticks();

  /// Ticks per millisecond for this clock design (for window sizing).
  double ticks_per_ms() const;

  /// The device services endpoint (enable_services). nullptr otherwise.
  DeviceServices* services() { return services_.get(); }
  /// The clock synchronizer (enable_clock_sync). nullptr otherwise.
  ClockSynchronizer* clock_sync() { return clock_sync_.get(); }
  /// The audit log (enable_audit_log). nullptr otherwise.
  AuditLog* audit_log() { return audit_log_.get(); }

 private:
  ProverDevice(const ProverConfig& config, Bytes k_attest, ByteView app_seed,
               const ProverTemplate* tmpl);

  bool configure_protection(hw::Mcu& mcu);
  void observe_request(std::size_t wire_bytes, const AttestOutcome& outcome,
                       const obs::RoundContext& round);
  void profile_request(const AttestOutcome& outcome,
                       const obs::RoundContext& round);

  ProverConfig config_;
  timing::DeviceTimingModel timing_;
  std::unique_ptr<hw::Mcu> mcu_;

  // Clock machinery (subset used, per design).
  std::unique_ptr<hw::HwCounterPort> hw_counter_;
  std::unique_ptr<hw::WritableClockPort> writable_clock_;
  std::unique_ptr<hw::WrapCounter> wrap_counter_;
  std::unique_ptr<hw::CodeClock> code_clock_;
  std::unique_ptr<hw::ClockSource> clock_source_;
  std::uint64_t clock_divider_ = 1;

  std::unique_ptr<FreshnessPolicy> policy_;
  std::unique_ptr<CodeAttest> anchor_;
  std::unique_ptr<DeviceServices> services_;
  std::unique_ptr<ClockSynchronizer> clock_sync_;
  std::unique_ptr<AuditLog> audit_log_;
  AttackSurface surface_;
  hw::BootStatus boot_status_ = hw::BootStatus::kOk;

  // Telemetry (all nullable; instruments cached at set_observer so the
  // hot path never touches the registry's name map).
  obs::Observer obs_{};
  obs::Counter* obs_requests_ = nullptr;
  obs::Counter* obs_busy_ms_ = nullptr;
  obs::Counter* obs_energy_mj_ = nullptr;
  obs::Counter* obs_faults_dropped_ = nullptr;
  std::uint64_t seen_faults_dropped_ = 0;
  obs::Histogram* obs_handle_ms_ = nullptr;
  std::array<obs::Counter*, kAttestStatusCount> obs_outcome_{};
  // Lazily registered on the first incremental request (like the
  // verifier's power counters): full-only fleets keep their registry
  // export byte-identical to before the extension existed.
  obs::Counter* obs_inc_requests_ = nullptr;
  obs::Counter* obs_inc_pages_ = nullptr;
  obs::Counter* obs_inc_fallbacks_ = nullptr;
};

}  // namespace ratt::attest
