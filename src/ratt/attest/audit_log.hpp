// Tamper-evident attestation audit log — an extension aimed squarely at
// the paper's Sec. 5 observation that the counter-rollback DoS is
// "undetectable after the fact".
//
// Code_Attest appends a record for every attestation decision to a ring
// buffer in EA-MPU-protected RAM, hash-chained so that truncation or
// in-place editing is detectable:
//
//   head_0 = 0
//   head_i = SHA-256(head_{i-1} || record_i)
//
// The roaming adversary can roll back counter_R only if that word is
// unprotected — but the *log* lives behind its own EA-MPU rule, so even a
// successful rollback+replay leaves two accepted records with the same
// freshness value chained into the head. An auditor who fetches the log
// (authenticated by a MAC over the head hash) detects the attack that the
// protocol state alone can no longer show.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ratt/attest/trust_anchor.hpp"
#include "ratt/crypto/sha256.hpp"

namespace ratt::attest {

/// One audit record (fixed 24-byte wire layout in device RAM).
struct AuditRecord {
  std::uint64_t sequence = 0;   // log position (monotone)
  std::uint64_t freshness = 0;  // the request's freshness element
  std::uint8_t status = 0;      // AttestStatus
  std::uint8_t verdict = 0;     // FreshnessVerdict

  static constexpr std::size_t kWireSize = 24;
  Bytes to_bytes() const;
  static AuditRecord from_bytes(ByteView wire);

  friend bool operator==(const AuditRecord&, const AuditRecord&) = default;
};

/// Prover-side log in device memory. Layout at `base`:
///   [count u64][head hash 32B][ring of kWireSize records].
/// All accesses run with the owning component's context, so an EA-MPU
/// rule over the window makes the log writable only by Code_Attest.
class AuditLog {
 public:
  struct Config {
    hw::Addr base = 0;
    std::size_t capacity = 32;  // ring slots
  };

  AuditLog(hw::SoftwareComponent& component, const Config& config);

  /// Bytes of device memory the log occupies (for EA-MPU sizing).
  static hw::Addr window_size(std::size_t capacity) {
    return static_cast<hw::Addr>(8 + 32 +
                                 capacity * AuditRecord::kWireSize);
  }

  /// Append a record; assigns its sequence number. False on bus fault.
  bool append(const AttestOutcome& outcome, std::uint64_t freshness);

  /// Total records ever appended (ring may have evicted early ones).
  std::optional<std::uint64_t> count();

  /// Current chain head.
  std::optional<crypto::Sha256::Digest> head();

  /// The retained (up to `capacity`) records, oldest first.
  std::optional<std::vector<AuditRecord>> records();

 private:
  hw::Addr slot_addr(std::uint64_t index) const;

  hw::SoftwareComponent* component_;
  Config config_;
};

/// Verifier-side audit: recompute the chain over the full record history
/// and check it reaches the reported head. Returns false on any break.
bool verify_chain(const std::vector<AuditRecord>& full_history,
                  const crypto::Sha256::Digest& head);

/// Forensics: freshness values that were *accepted* more than once — the
/// smoking gun of a rollback/replay (Sec. 5's "undetectable" attack,
/// made detectable).
std::vector<std::uint64_t> duplicate_accepted_freshness(
    const std::vector<AuditRecord>& records);

}  // namespace ratt::attest
