// Code_Attest: the prover's trust anchor (Sec. 3, Sec. 6.2).
//
// A SoftwareComponent whose code region the EA-MPU rules name. It
//   1. reads K_Attest over the bus (only its PC may — the EA-MPU rule),
//   2. authenticates the request MAC (Sec. 4.1),
//   3. runs the freshness policy (Sec. 4.2),
//   4. measures the configured memory range (MAC over challenge ||
//      freshness || memory, read over the bus), and
//   5. emits the authenticated response.
//
// Every step is priced with the device timing model, so callers can
// account the prover time (and thus energy) an adversary extracts — the
// paper's DoS currency.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ratt/attest/freshness.hpp"
#include "ratt/attest/message.hpp"
#include "ratt/hw/mcu.hpp"
#include "ratt/timing/timing.hpp"

namespace ratt::attest {

/// Outcome of one attestation invocation on the prover.
enum class AttestStatus : std::uint8_t {
  kOk,               // full attestation performed, response produced
  kBadRequestMac,    // request failed authentication (Sec. 4.1)
  kNotFresh,         // freshness policy rejected (Sec. 4.2)
  kWrongAlgorithm,   // request names a MAC other than the deployment's
  kKeyUnreadable,    // K_Attest not accessible (mis-configured EA-MPU)
  kMeasurementFault, // measured memory not fully readable
  kRateLimited,      // attestation budget exhausted (extension)
};

std::string to_string(AttestStatus status);

/// Number of AttestStatus values (sized for per-outcome instrument
/// arrays; keep in sync with the enum).
inline constexpr std::size_t kAttestStatusCount =
    static_cast<std::size_t>(AttestStatus::kRateLimited) + 1;

/// Per-phase decomposition of one invocation's device_ms. The fields sum
/// to device_ms exactly (the profiler's partition invariant): phases are
/// carved out of the same timing-model charges that build device_ms, not
/// measured separately.
struct PhaseMs {
  double req_auth = 0.0;   // request-MAC verification (Sec. 4.1)
  double freshness = 0.0;  // freshness policy (Sec. 4.2; free in Table 1)
  double mem_mac = 0.0;    // MAC body over the measured memory bytes
  double resp_mac = 0.0;   // MAC setup + header absorb + finalization
};

struct AttestOutcome {
  AttestStatus status = AttestStatus::kOk;
  FreshnessVerdict freshness = FreshnessVerdict::kAccept;
  AttestResponse response;  // valid when status == kOk
  /// Prover time consumed by this invocation (device ms), incl. rejected
  /// requests' authentication cost.
  double device_ms = 0.0;
  /// Where device_ms went (sums to device_ms).
  PhaseMs phases;
};

class CodeAttest : public hw::SoftwareComponent {
 public:
  struct Config {
    hw::AddrRange code;            // Code_Attest's own (ROM) region
    hw::Addr key_addr = 0;         // K_Attest location
    std::size_t key_size = 16;
    crypto::MacAlgorithm mac_alg = crypto::MacAlgorithm::kHmacSha1;
    hw::AddrRange measured_memory; // what attestation MACs (Sec. 3.1)
    /// Authenticate requests? Off = the vulnerable Sec. 3.1 baseline.
    bool authenticate_requests = true;
    /// Extension (defense in depth beyond the paper): cap the number of
    /// full attestations per window of device time. Bounds the damage of
    /// an adversary that defeats authentication outright (e.g. after key
    /// extraction): it can still waste at most max/window of the prover.
    /// 0 disables the limiter.
    std::uint32_t rate_limit_max = 0;
    double rate_limit_window_ms = 1000.0;
  };

  CodeAttest(hw::Mcu& mcu, const Config& config, FreshnessPolicy& policy,
             const timing::DeviceTimingModel& timing);

  const Config& config() const { return config_; }

  /// Process one attestation request end to end.
  AttestOutcome handle_request(const AttestRequest& request);

  /// Cumulative prover time spent in handle_request (device ms).
  double total_device_ms() const { return total_device_ms_; }

  /// Number of *full* attestations performed (the DoS success metric:
  /// each one is ~754 ms of stolen prover time on the reference device).
  std::uint64_t attestations_performed() const { return performed_; }
  std::uint64_t requests_rejected() const { return rejected_; }
  std::uint64_t requests_rate_limited() const { return rate_limited_; }

  /// Chunk size of the streaming memory measurement: the measured range
  /// is MAC'd through a reusable scratch buffer this large, so a 512 KB
  /// measurement allocates nothing per request.
  static constexpr std::size_t kMeasureChunkBytes = 4096;

 private:
  /// Read K_Attest through the bus (EA-MPU applies). nullopt on fault.
  std::optional<Bytes> read_key() const;

  /// The MAC keyed with `key`, rebuilt (key schedule + HMAC midstates)
  /// only when the key bytes read from the bus changed — so an Adv_roam
  /// key overwrite takes effect on the very next request, while the
  /// steady state pays the schedule once.
  crypto::Mac& mac_for_key(const Bytes& key);

  Config config_;
  FreshnessPolicy* policy_;
  const timing::DeviceTimingModel* timing_;
  std::unique_ptr<crypto::Mac> cached_mac_;
  Bytes cached_key_;
  Bytes scratch_;  // measurement chunk buffer, lazily sized
  double total_device_ms_ = 0.0;
  std::uint64_t performed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t rate_limited_ = 0;
  double window_start_ms_ = 0.0;
  std::uint32_t window_count_ = 0;
};

}  // namespace ratt::attest
