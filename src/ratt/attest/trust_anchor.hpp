// Code_Attest: the prover's trust anchor (Sec. 3, Sec. 6.2).
//
// A SoftwareComponent whose code region the EA-MPU rules name. It
//   1. reads K_Attest over the bus (only its PC may — the EA-MPU rule),
//   2. authenticates the request MAC (Sec. 4.1),
//   3. runs the freshness policy (Sec. 4.2),
//   4. measures the configured memory range (MAC over challenge ||
//      freshness || memory, read over the bus), and
//   5. emits the authenticated response.
//
// Every step is priced with the device timing model, so callers can
// account the prover time (and thus energy) an adversary extracts — the
// paper's DoS currency.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ratt/attest/freshness.hpp"
#include "ratt/attest/message.hpp"
#include "ratt/hw/mcu.hpp"
#include "ratt/timing/timing.hpp"

namespace ratt::attest {

/// Outcome of one attestation invocation on the prover.
enum class AttestStatus : std::uint8_t {
  kOk,               // full attestation performed, response produced
  kBadRequestMac,    // request failed authentication (Sec. 4.1)
  kNotFresh,         // freshness policy rejected (Sec. 4.2)
  kWrongAlgorithm,   // request names a MAC other than the deployment's
  kKeyUnreadable,    // K_Attest not accessible (mis-configured EA-MPU)
  kMeasurementFault, // measured memory not fully readable
  kRateLimited,      // attestation budget exhausted (extension)
  kUnsupported,      // incremental request to a prover without the
                     // extension enabled (DESIGN.md §4i)
};

std::string to_string(AttestStatus status);

/// Number of AttestStatus values (sized for per-outcome instrument
/// arrays; keep in sync with the enum).
inline constexpr std::size_t kAttestStatusCount =
    static_cast<std::size_t>(AttestStatus::kUnsupported) + 1;

/// Per-phase decomposition of one invocation's device_ms. The fields sum
/// to device_ms exactly (the profiler's partition invariant): phases are
/// carved out of the same timing-model charges that build device_ms, not
/// measured separately.
struct PhaseMs {
  double req_auth = 0.0;   // request-MAC verification (Sec. 4.1)
  double freshness = 0.0;  // freshness policy (Sec. 4.2; free in Table 1)
  double mem_mac = 0.0;    // MAC body over the measured memory bytes
  double resp_mac = 0.0;   // MAC setup + header absorb + finalization
};

struct AttestOutcome {
  AttestStatus status = AttestStatus::kOk;
  FreshnessVerdict freshness = FreshnessVerdict::kAccept;
  AttestResponse response;  // valid when status == kOk (full path)
  /// Prover time consumed by this invocation (device ms), incl. rejected
  /// requests' authentication cost.
  double device_ms = 0.0;
  /// Where device_ms went (sums to device_ms).
  PhaseMs phases;
  // -- Incremental path (handle_incremental; DESIGN.md §4i). --
  bool incremental = false;
  IncAttestResponse inc_response;  // valid when incremental && kOk
  /// Pages in the measured range / pages actually re-MACed this request.
  std::size_t inc_pages_total = 0;
  std::size_t inc_pages_refreshed = 0;
};

class CodeAttest : public hw::SoftwareComponent {
 public:
  struct Config {
    hw::AddrRange code;            // Code_Attest's own (ROM) region
    hw::Addr key_addr = 0;         // K_Attest location
    std::size_t key_size = 16;
    crypto::MacAlgorithm mac_alg = crypto::MacAlgorithm::kHmacSha1;
    hw::AddrRange measured_memory; // what attestation MACs (Sec. 3.1)
    /// Authenticate requests? Off = the vulnerable Sec. 3.1 baseline.
    bool authenticate_requests = true;
    /// Extension (defense in depth beyond the paper): cap the number of
    /// full attestations per window of device time. Bounds the damage of
    /// an adversary that defeats authentication outright (e.g. after key
    /// extraction): it can still waste at most max/window of the prover.
    /// 0 disables the limiter.
    std::uint32_t rate_limit_max = 0;
    double rate_limit_window_ms = 1000.0;
    /// Incremental paged attestation (DESIGN.md §4i): keep a per-page
    /// MAC cache at `cache_addr` and serve "changed-since generation"
    /// requests by re-MACing only dirty pages. Off = incremental
    /// requests are rejected with kUnsupported.
    bool enable_incremental = false;
    /// Cache layout: u64 evidence generation, then one tag per measured
    /// page. Lives in RAM; the prover's EA-MPU rule (protect_cache) is
    /// what makes it trustworthy.
    hw::Addr cache_addr = 0;
    /// Absorb base/new generation into the fold MAC and force a full
    /// fallback on a since_gen mismatch. Off = the naive cache the
    /// rollback regression suite defeats.
    bool bind_generation = true;
  };

  CodeAttest(hw::Mcu& mcu, const Config& config, FreshnessPolicy& policy,
             const timing::DeviceTimingModel& timing);

  const Config& config() const { return config_; }

  /// Process one attestation request end to end.
  AttestOutcome handle_request(const AttestRequest& request);

  /// Process one incremental ("changed-since generation") request:
  /// admit it exactly like a full request, re-MAC only the dirty pages
  /// of the measured range (all pages on a generation mismatch / first
  /// contact / unseeded cache — the full fallback), refresh the
  /// protected per-page MAC cache, and fold the complete tag table into
  /// the response MAC:
  ///   page tag p = MAC(K, 'P' || u32 p || u32 page_len || page bytes)
  ///   fold       = MAC(K, 'I' || flags || challenge || freshness ||
  ///                    [base_gen || new_gen when generation-bound] ||
  ///                    u32 count || indices || tag_0 .. tag_{N-1})
  AttestOutcome handle_incremental(const IncAttestRequest& request);

  /// Cumulative prover time spent in handle_request (device ms).
  double total_device_ms() const { return total_device_ms_; }

  /// Number of *full* attestations performed (the DoS success metric:
  /// each one is ~754 ms of stolen prover time on the reference device).
  std::uint64_t attestations_performed() const { return performed_; }
  std::uint64_t requests_rejected() const { return rejected_; }
  std::uint64_t requests_rate_limited() const { return rate_limited_; }
  /// Incremental requests served / those that fell back to a full
  /// re-MAC (first contact, unseeded or generation-mismatched cache).
  std::uint64_t incremental_performed() const { return inc_performed_; }
  std::uint64_t full_fallbacks() const { return full_fallbacks_; }

  /// Chunk size of the streaming memory measurement: the measured range
  /// is MAC'd through a reusable scratch buffer this large, so a 512 KB
  /// measurement allocates nothing per request.
  static constexpr std::size_t kMeasureChunkBytes = 4096;

  /// Attestation page granularity — equal to the bus backing page and
  /// the flash erase block, so one dirty bit covers exactly one tag.
  static constexpr std::size_t kPageBytes = 4096;

  /// Pages covering `measured_bytes`.
  static constexpr std::size_t page_count(std::size_t measured_bytes) {
    return (measured_bytes + kPageBytes - 1) / kPageBytes;
  }

  /// Bytes of protected RAM the cache occupies: the u64 generation plus
  /// one `tag_size` tag per page.
  static constexpr std::size_t cache_window_size(std::size_t pages,
                                                 std::size_t tag_size) {
    return 8 + pages * tag_size;
  }

 private:
  /// Shared admission prefix of both request paths: algorithm check, key
  /// read, request authentication (charged), freshness, rate limit.
  /// Returns the keyed MAC on admission, nullptr with `out.status` set
  /// on rejection.
  crypto::Mac* admit(crypto::MacAlgorithm alg, const Bytes& header,
                     const Bytes& request_mac, std::uint64_t freshness,
                     AttestOutcome& out);

  /// Read K_Attest through the bus (EA-MPU applies). nullopt on fault.
  std::optional<Bytes> read_key() const;

  /// The MAC keyed with `key`, rebuilt (key schedule + HMAC midstates)
  /// only when the key bytes read from the bus changed — so an Adv_roam
  /// key overwrite takes effect on the very next request, while the
  /// steady state pays the schedule once.
  crypto::Mac& mac_for_key(const Bytes& key);

  Config config_;
  FreshnessPolicy* policy_;
  const timing::DeviceTimingModel* timing_;
  std::unique_ptr<crypto::Mac> cached_mac_;
  Bytes cached_key_;
  Bytes scratch_;  // measurement chunk buffer, lazily sized
  double total_device_ms_ = 0.0;
  std::uint64_t performed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t rate_limited_ = 0;
  std::uint64_t inc_performed_ = 0;
  std::uint64_t full_fallbacks_ = 0;
  double window_start_ms_ = 0.0;
  std::uint32_t window_count_ = 0;
};

}  // namespace ratt::attest
