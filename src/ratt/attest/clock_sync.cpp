#include "ratt/attest/clock_sync.hpp"

#include "ratt/crypto/hkdf.hpp"

namespace ratt::attest {

namespace {

constexpr std::uint8_t kSyncMagic = 0xA3;

}  // namespace

Bytes SyncRequest::header_bytes() const {
  Bytes out;
  out.reserve(17);
  out.push_back(kSyncMagic);
  std::uint8_t word[8];
  crypto::store_le64(word, sequence);
  crypto::append(out, ByteView(word, 8));
  crypto::store_le64(word, verifier_time);
  crypto::append(out, ByteView(word, 8));
  return out;
}

Bytes SyncRequest::to_bytes() const {
  Bytes out = header_bytes();
  out.push_back(static_cast<std::uint8_t>(mac.size()));
  crypto::append(out, mac);
  return out;
}

std::optional<SyncRequest> SyncRequest::from_bytes(ByteView wire) {
  if (wire.size() < 18 || wire[0] != kSyncMagic) return std::nullopt;
  SyncRequest req;
  req.sequence = crypto::load_le64(wire.data() + 1);
  req.verifier_time = crypto::load_le64(wire.data() + 9);
  const std::size_t mac_len = wire[17];
  if (wire.size() != 18 + mac_len) return std::nullopt;
  req.mac.assign(wire.begin() + 18, wire.end());
  return req;
}

std::string to_string(SyncStatus status) {
  switch (status) {
    case SyncStatus::kApplied:
      return "applied";
    case SyncStatus::kClamped:
      return "clamped";
    case SyncStatus::kRefusedBackward:
      return "refused-backward";
    case SyncStatus::kBadMac:
      return "bad-mac";
    case SyncStatus::kNotFresh:
      return "not-fresh";
    case SyncStatus::kStorageFault:
      return "storage-fault";
  }
  return "unknown";
}

ClockSynchronizer::ClockSynchronizer(hw::SoftwareComponent& component,
                                     hw::ClockSource& clock,
                                     const Config& config, ByteView k_attest,
                                     crypto::MacAlgorithm mac_alg)
    : component_(&component),
      clock_(&clock),
      config_(config),
      mac_(crypto::make_mac(
          mac_alg, crypto::derive_purpose_key(k_attest, "clock-sync"))) {}

std::optional<std::int64_t> ClockSynchronizer::read_offset() {
  std::uint64_t raw = 0;
  if (component_->read64(config_.state_addr + 8, raw) !=
      hw::BusStatus::kOk) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(raw);
}

bool ClockSynchronizer::write_offset(std::int64_t offset) {
  return component_->write64(config_.state_addr + 8,
                             static_cast<std::uint64_t>(offset)) ==
         hw::BusStatus::kOk;
}

std::optional<std::uint64_t> ClockSynchronizer::now() {
  const auto raw = clock_->read_ticks(component_->ctx());
  const auto offset = read_offset();
  if (!raw.has_value() || !offset.has_value()) return std::nullopt;
  const std::int64_t synced = static_cast<std::int64_t>(*raw) + *offset;
  return synced < 0 ? 0 : static_cast<std::uint64_t>(synced);
}

SyncOutcome ClockSynchronizer::handle(const SyncRequest& request) {
  SyncOutcome out;

  // 1. Authenticate (Sec. 4.1 applied to the sync protocol).
  if (!mac_->verify(request.header_bytes(), request.mac)) {
    out.status = SyncStatus::kBadMac;
    return out;
  }

  // 2. Freshness: strictly increasing sequence number in protected state.
  std::uint64_t last_sequence = 0;
  if (component_->read64(config_.state_addr, last_sequence) !=
      hw::BusStatus::kOk) {
    out.status = SyncStatus::kStorageFault;
    return out;
  }
  if (request.sequence <= last_sequence) {
    out.status = SyncStatus::kNotFresh;
    return out;
  }

  // 3. Compute the requested step relative to *synchronized* time.
  const auto local = now();
  const auto offset = read_offset();
  if (!local.has_value() || !offset.has_value()) {
    out.status = SyncStatus::kStorageFault;
    return out;
  }
  out.requested_step = static_cast<std::int64_t>(request.verifier_time) -
                       static_cast<std::int64_t>(*local);

  // 4. Policy: refuse large rewinds, clamp large steps.
  std::int64_t step = out.requested_step;
  if (step < -static_cast<std::int64_t>(config_.max_backward_ticks)) {
    out.status = SyncStatus::kRefusedBackward;
    // The sequence number still advances: a refused message must not be
    // replayable later.
    (void)component_->write64(config_.state_addr, request.sequence);
    return out;
  }
  out.status = SyncStatus::kApplied;
  const auto limit = static_cast<std::int64_t>(config_.max_step_ticks);
  if (step > limit) {
    step = limit;
    out.status = SyncStatus::kClamped;
  }

  // 5. Commit sequence then offset (both in protected state).
  if (component_->write64(config_.state_addr, request.sequence) !=
          hw::BusStatus::kOk ||
      !write_offset(*offset + step)) {
    out.status = SyncStatus::kStorageFault;
    return out;
  }
  out.applied_step = step;
  return out;
}

SyncMaster::SyncMaster(ByteView k_attest, crypto::MacAlgorithm mac_alg)
    : mac_(crypto::make_mac(
          mac_alg, crypto::derive_purpose_key(k_attest, "clock-sync"))) {}

SyncRequest SyncMaster::make_request(std::uint64_t verifier_time) {
  SyncRequest req;
  req.sequence = ++sequence_;
  req.verifier_time = verifier_time;
  req.mac = mac_->compute(req.header_bytes());
  return req;
}

}  // namespace ratt::attest
