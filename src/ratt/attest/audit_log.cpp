#include "ratt/attest/audit_log.hpp"

#include <map>

namespace ratt::attest {

Bytes AuditRecord::to_bytes() const {
  Bytes out;
  out.reserve(kWireSize);
  std::uint8_t word[8];
  crypto::store_le64(word, sequence);
  crypto::append(out, ByteView(word, 8));
  crypto::store_le64(word, freshness);
  crypto::append(out, ByteView(word, 8));
  out.push_back(status);
  out.push_back(verdict);
  out.resize(kWireSize, 0);  // reserved padding
  return out;
}

AuditRecord AuditRecord::from_bytes(ByteView wire) {
  AuditRecord rec;
  rec.sequence = crypto::load_le64(wire.data());
  rec.freshness = crypto::load_le64(wire.data() + 8);
  rec.status = wire[16];
  rec.verdict = wire[17];
  return rec;
}

AuditLog::AuditLog(hw::SoftwareComponent& component, const Config& config)
    : component_(&component), config_(config) {}

hw::Addr AuditLog::slot_addr(std::uint64_t index) const {
  return config_.base + 8 + 32 +
         static_cast<hw::Addr>((index % config_.capacity) *
                               AuditRecord::kWireSize);
}

std::optional<std::uint64_t> AuditLog::count() {
  std::uint64_t n = 0;
  if (component_->read64(config_.base, n) != hw::BusStatus::kOk) {
    return std::nullopt;
  }
  return n;
}

std::optional<crypto::Sha256::Digest> AuditLog::head() {
  crypto::Sha256::Digest digest{};
  if (component_->read_block(config_.base + 8, digest) !=
      hw::BusStatus::kOk) {
    return std::nullopt;
  }
  return digest;
}

bool AuditLog::append(const AttestOutcome& outcome,
                      std::uint64_t freshness) {
  const auto n = count();
  const auto current_head = head();
  if (!n.has_value() || !current_head.has_value()) return false;

  AuditRecord rec;
  rec.sequence = *n;
  rec.freshness = freshness;
  rec.status = static_cast<std::uint8_t>(outcome.status);
  rec.verdict = static_cast<std::uint8_t>(outcome.freshness);
  const Bytes wire = rec.to_bytes();

  // head_{i} = SHA-256(head_{i-1} || record_i)
  crypto::Sha256 h;
  h.update(*current_head);
  h.update(wire);
  const auto new_head = h.finish();

  if (component_->write_block(slot_addr(*n), wire) != hw::BusStatus::kOk) {
    return false;
  }
  if (component_->write_block(config_.base + 8, new_head) !=
      hw::BusStatus::kOk) {
    return false;
  }
  return component_->write64(config_.base, *n + 1) == hw::BusStatus::kOk;
}

std::optional<std::vector<AuditRecord>> AuditLog::records() {
  const auto n = count();
  if (!n.has_value()) return std::nullopt;
  const std::uint64_t stored = std::min<std::uint64_t>(*n, config_.capacity);
  const std::uint64_t first = *n - stored;
  std::vector<AuditRecord> out;
  out.reserve(stored);
  for (std::uint64_t i = first; i < *n; ++i) {
    Bytes wire(AuditRecord::kWireSize);
    if (component_->read_block(slot_addr(i), wire) != hw::BusStatus::kOk) {
      return std::nullopt;
    }
    out.push_back(AuditRecord::from_bytes(wire));
  }
  return out;
}

bool verify_chain(const std::vector<AuditRecord>& full_history,
                  const crypto::Sha256::Digest& head) {
  crypto::Sha256::Digest running{};
  std::uint64_t expected_sequence = 0;
  for (const auto& rec : full_history) {
    if (rec.sequence != expected_sequence++) return false;
    crypto::Sha256 h;
    h.update(running);
    h.update(rec.to_bytes());
    running = h.finish();
  }
  return running == head;
}

std::vector<std::uint64_t> duplicate_accepted_freshness(
    const std::vector<AuditRecord>& records) {
  std::map<std::uint64_t, int> accepted;
  for (const auto& rec : records) {
    if (rec.status == static_cast<std::uint8_t>(AttestStatus::kOk)) {
      ++accepted[rec.freshness];
    }
  }
  std::vector<std::uint64_t> duplicates;
  for (const auto& [freshness, count] : accepted) {
    if (count > 1) duplicates.push_back(freshness);
  }
  return duplicates;
}

}  // namespace ratt::attest
