#include "ratt/attest/freshness.hpp"

#include <algorithm>
#include <limits>

namespace ratt::attest {

std::string to_string(FreshnessVerdict verdict) {
  switch (verdict) {
    case FreshnessVerdict::kAccept:
      return "accept";
    case FreshnessVerdict::kReplay:
      return "replay";
    case FreshnessVerdict::kNotMonotonic:
      return "not-monotonic";
    case FreshnessVerdict::kTooOld:
      return "too-old";
    case FreshnessVerdict::kStorageFault:
      return "storage-fault";
  }
  return "unknown";
}

namespace {

class NoFreshness final : public FreshnessPolicy {
 public:
  FreshnessScheme scheme() const override { return FreshnessScheme::kNone; }
  FreshnessVerdict check_and_update(const hw::AccessContext&,
                                    std::uint64_t) override {
    return FreshnessVerdict::kAccept;
  }
};

// RAM layout: [count: u64][slot 0: u64][slot 1: u64]...[slot cap-1].
// `count` only ever grows; the slot index wraps (ring buffer), so after
// `capacity` distinct nonces the oldest entries are forgotten — and their
// replays accepted. That memory/security trade-off is the paper's reason
// for ruling nonce histories out (Sec. 4.2).
class NonceHistory final : public FreshnessPolicy {
 public:
  NonceHistory(hw::Mcu& mcu, hw::Addr base, std::size_t capacity)
      : mcu_(&mcu), base_(base), capacity_(capacity) {}

  FreshnessScheme scheme() const override { return FreshnessScheme::kNonce; }

  FreshnessVerdict check_and_update(const hw::AccessContext& ctx,
                                    std::uint64_t value) override {
    auto& bus = mcu_->bus();
    std::uint64_t count = 0;
    if (bus.read64(ctx, base_, count) != hw::BusStatus::kOk) {
      return FreshnessVerdict::kStorageFault;
    }
    // Scan one slot past `count` (the write target below): an accept that
    // faulted between the slot write and the count write leaves the nonce
    // stored but uncounted in exactly that slot, and the scan must still
    // see it — otherwise a transient bus fault re-opens the replay. The
    // extra slot reads as 0 while empty, so a literal nonce of 0 is
    // conservatively rejected (fail closed; verifier nonces are random
    // 64-bit values, so the collision is negligible).
    const std::uint64_t stored =
        std::min<std::uint64_t>(count + 1, capacity_);
    for (std::uint64_t i = 0; i < stored; ++i) {
      std::uint64_t nonce = 0;
      if (bus.read64(ctx, slot_addr(i), nonce) != hw::BusStatus::kOk) {
        return FreshnessVerdict::kStorageFault;
      }
      if (nonce == value) return FreshnessVerdict::kReplay;
    }
    // Remember the nonce (evicting the oldest once full). The slot is
    // committed before the count so a fault between the two fails closed:
    // the nonce stays scan-visible (slot count % capacity is inside the
    // count + 1 scan window) until a later accept overwrites it.
    if (bus.write64(ctx, slot_addr(count % capacity_), value) !=
        hw::BusStatus::kOk) {
      return FreshnessVerdict::kStorageFault;
    }
    if (bus.write64(ctx, base_, count + 1) != hw::BusStatus::kOk) {
      return FreshnessVerdict::kStorageFault;
    }
    return FreshnessVerdict::kAccept;
  }

 private:
  hw::Addr slot_addr(std::uint64_t index) const {
    return base_ + 8 + static_cast<hw::Addr>(8 * index);
  }

  hw::Mcu* mcu_;
  hw::Addr base_;
  std::size_t capacity_;
};

class CounterPolicy final : public FreshnessPolicy {
 public:
  CounterPolicy(hw::Mcu& mcu, hw::Addr counter_addr)
      : mcu_(&mcu), counter_addr_(counter_addr) {}

  FreshnessScheme scheme() const override {
    return FreshnessScheme::kCounter;
  }

  FreshnessVerdict check_and_update(const hw::AccessContext& ctx,
                                    std::uint64_t value) override {
    auto& bus = mcu_->bus();
    std::uint64_t stored = 0;
    if (bus.read64(ctx, counter_addr_, stored) != hw::BusStatus::kOk) {
      return FreshnessVerdict::kStorageFault;
    }
    // Sec. 4.2: accept only strictly greater counters; duplicates are
    // replays, smaller values are reordered/stale requests.
    if (value == stored) return FreshnessVerdict::kReplay;
    if (value < stored) return FreshnessVerdict::kNotMonotonic;
    if (bus.write64(ctx, counter_addr_, value) != hw::BusStatus::kOk) {
      return FreshnessVerdict::kStorageFault;
    }
    return FreshnessVerdict::kAccept;
  }

 private:
  hw::Mcu* mcu_;
  hw::Addr counter_addr_;
};

class TimestampPolicy final : public FreshnessPolicy {
 public:
  TimestampPolicy(hw::Mcu& mcu, hw::ClockSource& clock,
                  hw::Addr last_seen_addr, std::uint64_t window_ticks,
                  std::uint64_t skew_ticks)
      : mcu_(&mcu),
        clock_(&clock),
        last_seen_addr_(last_seen_addr),
        window_ticks_(window_ticks),
        skew_ticks_(skew_ticks) {}

  FreshnessScheme scheme() const override {
    return FreshnessScheme::kTimestamp;
  }

  FreshnessVerdict check_and_update(const hw::AccessContext& ctx,
                                    std::uint64_t value) override {
    auto& bus = mcu_->bus();
    const auto now = clock_->read_ticks(ctx);
    if (!now.has_value()) return FreshnessVerdict::kStorageFault;

    // The state word is biased by one: 0 means "no timestamp seen yet",
    // w > 0 means last_seen == w - 1. Zero-initialized RAM therefore
    // decodes to the virgin state, and a genuine t = 0 request is
    // remembered like any other — the old `last_seen != 0` special case
    // let a recorded t = 0 request replay freely for the whole window.
    std::uint64_t word = 0;
    if (bus.read64(ctx, last_seen_addr_, word) != hw::BusStatus::kOk) {
      return FreshnessVerdict::kStorageFault;
    }
    if (word != 0) {
      const std::uint64_t last_seen = word - 1;
      if (value == last_seen) return FreshnessVerdict::kReplay;
      if (value < last_seen) return FreshnessVerdict::kNotMonotonic;
    }
    // Delay detection: the request must be recent by the prover's clock.
    // (Subtraction form — `*now > value + window` would wrap for
    // timestamps near the 64-bit limit and misclassify them.)
    if (*now > value && *now - value > window_ticks_) {
      return FreshnessVerdict::kTooOld;
    }
    // Clock-skew guard: reject timestamps from the "future".
    if (value > *now && value - *now > skew_ticks_) {
      return FreshnessVerdict::kNotMonotonic;
    }
    // UINT64_MAX is unrepresentable in the biased word (value + 1 would
    // wrap to "unseen"); a clock anywhere near the 64-bit limit is broken,
    // so reject rather than forget.
    if (value == std::numeric_limits<std::uint64_t>::max()) {
      return FreshnessVerdict::kNotMonotonic;
    }

    if (bus.write64(ctx, last_seen_addr_, value + 1) !=
        hw::BusStatus::kOk) {
      return FreshnessVerdict::kStorageFault;
    }
    return FreshnessVerdict::kAccept;
  }

 private:
  hw::Mcu* mcu_;
  hw::ClockSource* clock_;
  hw::Addr last_seen_addr_;
  std::uint64_t window_ticks_;
  std::uint64_t skew_ticks_;
};

}  // namespace

std::unique_ptr<FreshnessPolicy> make_no_freshness() {
  return std::make_unique<NoFreshness>();
}

std::unique_ptr<FreshnessPolicy> make_nonce_history(hw::Mcu& mcu,
                                                    hw::Addr base,
                                                    std::size_t capacity) {
  return std::make_unique<NonceHistory>(mcu, base, capacity);
}

std::unique_ptr<FreshnessPolicy> make_counter_policy(hw::Mcu& mcu,
                                                     hw::Addr counter_addr) {
  return std::make_unique<CounterPolicy>(mcu, counter_addr);
}

std::unique_ptr<FreshnessPolicy> make_timestamp_policy(
    hw::Mcu& mcu, hw::ClockSource& clock, hw::Addr last_seen_addr,
    std::uint64_t window_ticks, std::uint64_t skew_ticks) {
  return std::make_unique<TimestampPolicy>(mcu, clock, last_seen_addr,
                                           window_ticks, skew_ticks);
}

}  // namespace ratt::attest
