// Attestation-derived device services — the paper's future-work item 3
// ("generalize proposed techniques to other network protocols ... to
// mitigate DoS attacks on other security services").
//
// The paper's introduction names secure code update and secure memory
// erasure as services built on attestation (SCUBA-style). Both share the
// attestation protocol's prover-side DoS profile: an unauthenticated or
// replayed request makes the device rewrite flash or wipe RAM — far worse
// than a wasted MAC. The services below therefore apply the full
// discipline of Secs. 4-5:
//
//   * requests are MAC'd under K_Attest,
//   * a monotonic version / sequence word in EA-MPU-protected memory
//     rejects replays and downgrades (rollback protection),
//   * every mutation is bounds-checked against a fixed service region,
//   * the response is a *proof*: a MAC over the resulting memory bound to
//     the request challenge, so the verifier learns the operation really
//     happened on the device (this is where attestation is the building
//     block).
#pragma once

#include <cstdint>
#include <optional>

#include "ratt/attest/message.hpp"
#include "ratt/hw/mcu.hpp"
#include "ratt/timing/timing.hpp"

namespace ratt::attest {

/// Authenticated firmware-update request. With `encrypted`, `payload` is
/// IV || AES-128-CBC(PKCS#7(plaintext)) under HKDF(K_Attest,
/// "update-confidentiality") — encrypt-then-MAC, so the MAC still covers
/// the ciphertext.
struct UpdateRequest {
  std::uint64_t version = 0;    // must exceed the installed version
  std::uint64_t challenge = 0;  // bound into the proof
  hw::Addr target = 0;          // where the payload lands
  bool encrypted = false;
  Bytes payload;
  Bytes mac;  // over header_bytes() (which covers the payload)

  Bytes header_bytes() const;
  Bytes to_bytes() const;
  static std::optional<UpdateRequest> from_bytes(ByteView wire);
};

/// Authenticated memory-erasure request.
struct EraseRequest {
  std::uint64_t sequence = 0;   // strictly increasing
  std::uint64_t challenge = 0;  // bound into the proof
  hw::AddrRange region;
  Bytes mac;

  Bytes header_bytes() const;
  Bytes to_bytes() const;
  static std::optional<EraseRequest> from_bytes(ByteView wire);
};

enum class ServiceStatus : std::uint8_t {
  kOk,
  kBadMac,        // request authentication failed
  kBadPayload,    // encrypted payload failed to decrypt/unpad
  kNotFresh,      // version/sequence not strictly increasing (replay or
                  // downgrade)
  kOutOfBounds,   // target outside the service region
  kWriteFault,    // bus fault during the mutation
  kStorageFault,  // service state unreachable
};

std::string to_string(ServiceStatus status);

struct ServiceOutcome {
  ServiceStatus status = ServiceStatus::kOk;
  /// MAC(challenge || version-or-sequence || resulting region bytes):
  /// the attestation-style proof of execution. Valid when status == kOk.
  Bytes proof;
  /// Prover time consumed (device ms) — the DoS currency.
  double device_ms = 0.0;
};

/// Prover-side service endpoint, in the Code_Attest trust domain.
class DeviceServices {
 public:
  struct Config {
    /// Two protected u64 state words: [installed version][erase sequence].
    hw::Addr state_addr = 0;
    /// The only memory an update may touch.
    hw::AddrRange updatable;
    /// The only memory an erase may touch.
    hw::AddrRange erasable;
    crypto::MacAlgorithm mac_alg = crypto::MacAlgorithm::kHmacSha1;
  };

  DeviceServices(hw::SoftwareComponent& component, const Config& config,
                 ByteView k_attest,
                 const timing::DeviceTimingModel& timing);

  ServiceOutcome handle_update(const UpdateRequest& request);
  ServiceOutcome handle_erase(const EraseRequest& request);

  std::optional<std::uint64_t> installed_version();

  /// Chunk size for streamed proofs and the chunked secure-erase wipe.
  static constexpr std::size_t kProofChunkBytes = 4096;

 private:
  Bytes region_proof(std::uint64_t challenge, std::uint64_t counter,
                     const hw::AddrRange& region, bool& fault);

  hw::SoftwareComponent* component_;
  Config config_;
  std::unique_ptr<crypto::Mac> mac_;
  Bytes enc_key_;
  const timing::DeviceTimingModel* timing_;
};

/// Verifier-side counterpart: builds requests, validates proofs.
class ServiceMaster {
 public:
  ServiceMaster(ByteView k_attest, crypto::MacAlgorithm mac_alg);

  UpdateRequest make_update(std::uint64_t version, hw::Addr target,
                            Bytes payload, std::uint64_t challenge);
  /// Confidential variant: the firmware image travels encrypted.
  UpdateRequest make_encrypted_update(std::uint64_t version, hw::Addr target,
                                      ByteView plaintext,
                                      std::uint64_t challenge);
  EraseRequest make_erase(const hw::AddrRange& region,
                          std::uint64_t challenge);

  /// The proof must equal MAC(challenge || version || expected payload
  /// image of the whole updatable region).
  bool check_update_proof(const UpdateRequest& request,
                          ByteView expected_region, ByteView proof) const;
  /// Erase proof: MAC(challenge || sequence || zeros of region size).
  bool check_erase_proof(const EraseRequest& request, ByteView proof) const;

 private:
  std::unique_ptr<crypto::Mac> mac_;
  Bytes enc_key_;
  std::uint64_t erase_sequence_ = 0;
};

}  // namespace ratt::attest
