#include "ratt/attest/services.hpp"

#include <algorithm>
#include <span>

#include "ratt/crypto/aes128.hpp"
#include "ratt/crypto/block_modes.hpp"
#include "ratt/crypto/ct.hpp"
#include "ratt/crypto/hkdf.hpp"
#include "ratt/crypto/hmac.hpp"
#include "ratt/crypto/sha256.hpp"

namespace ratt::attest {

namespace {

constexpr std::uint8_t kUpdateMagic = 0xA4;
constexpr std::uint8_t kEraseMagic = 0xA5;

void append_u64(Bytes& out, std::uint64_t v) {
  std::uint8_t word[8];
  crypto::store_le64(word, v);
  crypto::append(out, ByteView(word, 8));
}

void append_u32(Bytes& out, std::uint32_t v) {
  std::uint8_t word[4];
  crypto::store_le32(word, v);
  crypto::append(out, ByteView(word, 4));
}

}  // namespace

Bytes UpdateRequest::header_bytes() const {
  Bytes out;
  out.reserve(26 + payload.size());
  out.push_back(kUpdateMagic);
  out.push_back(encrypted ? 1 : 0);
  append_u64(out, version);
  append_u64(out, challenge);
  append_u32(out, target);
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  crypto::append(out, payload);
  return out;
}

Bytes UpdateRequest::to_bytes() const {
  Bytes out = header_bytes();
  out.push_back(static_cast<std::uint8_t>(mac.size()));
  crypto::append(out, mac);
  return out;
}

std::optional<UpdateRequest> UpdateRequest::from_bytes(ByteView wire) {
  if (wire.size() < 27 || wire[0] != kUpdateMagic) return std::nullopt;
  if (wire[1] > 1) return std::nullopt;
  UpdateRequest req;
  req.encrypted = wire[1] == 1;
  req.version = crypto::load_le64(wire.data() + 2);
  req.challenge = crypto::load_le64(wire.data() + 10);
  req.target = crypto::load_le32(wire.data() + 18);
  const std::size_t payload_len = crypto::load_le32(wire.data() + 22);
  if (wire.size() < 26 + payload_len + 1) return std::nullopt;
  req.payload.assign(wire.begin() + 26, wire.begin() + 26 + payload_len);
  const std::size_t mac_len = wire[26 + payload_len];
  if (wire.size() != 27 + payload_len + mac_len) return std::nullopt;
  req.mac.assign(wire.begin() + 27 + payload_len, wire.end());
  return req;
}

Bytes EraseRequest::header_bytes() const {
  Bytes out;
  out.reserve(25);
  out.push_back(kEraseMagic);
  append_u64(out, sequence);
  append_u64(out, challenge);
  append_u32(out, region.begin);
  append_u32(out, region.end);
  return out;
}

Bytes EraseRequest::to_bytes() const {
  Bytes out = header_bytes();
  out.push_back(static_cast<std::uint8_t>(mac.size()));
  crypto::append(out, mac);
  return out;
}

std::optional<EraseRequest> EraseRequest::from_bytes(ByteView wire) {
  if (wire.size() < 26 || wire[0] != kEraseMagic) return std::nullopt;
  EraseRequest req;
  req.sequence = crypto::load_le64(wire.data() + 1);
  req.challenge = crypto::load_le64(wire.data() + 9);
  req.region.begin = crypto::load_le32(wire.data() + 17);
  req.region.end = crypto::load_le32(wire.data() + 21);
  const std::size_t mac_len = wire[25];
  if (wire.size() != 26 + mac_len) return std::nullopt;
  req.mac.assign(wire.begin() + 26, wire.end());
  return req;
}

std::string to_string(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kOk:
      return "ok";
    case ServiceStatus::kBadMac:
      return "bad-mac";
    case ServiceStatus::kBadPayload:
      return "bad-payload";
    case ServiceStatus::kNotFresh:
      return "not-fresh";
    case ServiceStatus::kOutOfBounds:
      return "out-of-bounds";
    case ServiceStatus::kWriteFault:
      return "write-fault";
    case ServiceStatus::kStorageFault:
      return "storage-fault";
  }
  return "unknown";
}

DeviceServices::DeviceServices(hw::SoftwareComponent& component,
                               const Config& config, ByteView k_attest,
                               const timing::DeviceTimingModel& timing)
    : component_(&component),
      config_(config),
      mac_(crypto::make_mac(
          config.mac_alg,
          crypto::derive_purpose_key(k_attest, "device-services"))),
      enc_key_(crypto::derive_purpose_key(k_attest,
                                          "update-confidentiality")),
      timing_(&timing) {}

std::optional<std::uint64_t> DeviceServices::installed_version() {
  std::uint64_t version = 0;
  if (component_->read64(config_.state_addr, version) != hw::BusStatus::kOk) {
    return std::nullopt;
  }
  return version;
}

Bytes DeviceServices::region_proof(std::uint64_t challenge,
                                   std::uint64_t counter,
                                   const hw::AddrRange& region,
                                   bool& fault) {
  // Streamed like the trust anchor's measurement: the proof MAC absorbs
  // the region in chunks read over the bus, so proving a large update
  // or erase never materializes a region-sized copy.
  mac_->init(16 + region.size());
  std::uint8_t head[16];
  crypto::store_le64(head, challenge);
  crypto::store_le64(head + 8, counter);
  mac_->update(ByteView(head, 16));
  Bytes chunk(kProofChunkBytes);
  for (std::size_t off = 0; off < region.size();) {
    const std::size_t n = std::min(kProofChunkBytes, region.size() - off);
    if (component_->read_block(region.begin + static_cast<hw::Addr>(off),
                               std::span<std::uint8_t>(chunk.data(), n)) !=
        hw::BusStatus::kOk) {
      fault = true;
      return {};
    }
    mac_->update(ByteView(chunk.data(), n));
    off += n;
  }
  fault = false;
  return mac_->finish();
}

ServiceOutcome DeviceServices::handle_update(const UpdateRequest& request) {
  ServiceOutcome out;
  // Request authentication: the MAC covers the payload, so the prover
  // pays per payload byte even to reject — still far cheaper than an
  // unauthenticated flash write + re-measure.
  const Bytes header = request.header_bytes();
  out.device_ms += timing_->mac_ms(config_.mac_alg, header.size());
  if (!mac_->verify(header, request.mac)) {
    out.status = ServiceStatus::kBadMac;
    return out;
  }

  // Rollback protection: strictly increasing version in protected state.
  const auto installed = installed_version();
  if (!installed.has_value()) {
    out.status = ServiceStatus::kStorageFault;
    return out;
  }
  if (request.version <= *installed) {
    out.status = ServiceStatus::kNotFresh;
    return out;
  }

  // Confidential payloads: IV || AES-128-CBC(PKCS#7(plaintext)),
  // decrypted only after authentication (encrypt-then-MAC).
  Bytes plaintext = request.payload;
  if (request.encrypted) {
    if (request.payload.size() < 32 ||
        (request.payload.size() - 16) % 16 != 0) {
      out.status = ServiceStatus::kBadPayload;
      return out;
    }
    crypto::Aes128::Block iv{};
    std::copy(request.payload.begin(), request.payload.begin() + 16,
              iv.begin());
    const crypto::Aes128 cipher(enc_key_);
    const Bytes padded = crypto::cbc_decrypt(
        cipher, iv, ByteView(request.payload).subspan(16));
    const auto unpadded = crypto::pkcs7_unpad(padded, 16);
    if (!unpadded.has_value()) {
      out.status = ServiceStatus::kBadPayload;
      return out;
    }
    plaintext = *unpadded;
    // Decryption costs the prover per ciphertext block (Table 1 dec).
    out.device_ms += timing_->mac_ms(crypto::MacAlgorithm::kAesCbcMac,
                                     request.payload.size(),
                                     /*include_setup=*/true);
  }

  // Bounds check against the updatable window.
  const hw::AddrRange landing{
      request.target,
      request.target + static_cast<hw::Addr>(plaintext.size())};
  if (!config_.updatable.contains(landing)) {
    out.status = ServiceStatus::kOutOfBounds;
    return out;
  }

  // Commit: version first (a torn update must not be replayable), then
  // erase the covered flash blocks (NOR: programming can only clear
  // bits), then program the payload.
  if (component_->write64(config_.state_addr, request.version) !=
      hw::BusStatus::kOk) {
    out.status = ServiceStatus::kStorageFault;
    return out;
  }
  auto& bus = component_->mcu().bus();
  for (hw::Addr block = landing.begin; block < landing.end;
       block += hw::MemoryBus::kFlashBlockSize) {
    if (bus.erase_flash_block(component_->ctx(), block) !=
        hw::BusStatus::kOk) {
      out.status = ServiceStatus::kWriteFault;
      return out;
    }
  }
  if (component_->write_block(request.target, plaintext) !=
      hw::BusStatus::kOk) {
    out.status = ServiceStatus::kWriteFault;
    return out;
  }

  // Proof of installation: attestation over the landing region.
  bool fault = false;
  out.proof = region_proof(request.challenge, request.version, landing,
                           fault);
  if (fault) {
    out.status = ServiceStatus::kWriteFault;
    return out;
  }
  out.device_ms +=
      timing_->memory_attestation_ms(config_.mac_alg, landing.size());
  out.status = ServiceStatus::kOk;
  return out;
}

ServiceOutcome DeviceServices::handle_erase(const EraseRequest& request) {
  ServiceOutcome out;
  const Bytes header = request.header_bytes();
  out.device_ms += timing_->mac_ms(config_.mac_alg, header.size());
  if (!mac_->verify(header, request.mac)) {
    out.status = ServiceStatus::kBadMac;
    return out;
  }

  std::uint64_t last_sequence = 0;
  if (component_->read64(config_.state_addr + 8, last_sequence) !=
      hw::BusStatus::kOk) {
    out.status = ServiceStatus::kStorageFault;
    return out;
  }
  if (request.sequence <= last_sequence) {
    out.status = ServiceStatus::kNotFresh;
    return out;
  }

  if (!config_.erasable.contains(request.region)) {
    out.status = ServiceStatus::kOutOfBounds;
    return out;
  }

  if (component_->write64(config_.state_addr + 8, request.sequence) !=
      hw::BusStatus::kOk) {
    out.status = ServiceStatus::kStorageFault;
    return out;
  }
  // Wipe through the bulk write path in fixed chunks — the fault
  // behavior (earlier bytes stay zeroed, first failing byte logged) is
  // identical to one region-sized write, without the allocation.
  const Bytes zeros(std::min(kProofChunkBytes, request.region.size()), 0);
  for (std::size_t off = 0; off < request.region.size();) {
    const std::size_t n =
        std::min(kProofChunkBytes, request.region.size() - off);
    if (component_->write_block(
            request.region.begin + static_cast<hw::Addr>(off),
            ByteView(zeros.data(), n)) != hw::BusStatus::kOk) {
      out.status = ServiceStatus::kWriteFault;
      return out;
    }
    off += n;
  }

  bool fault = false;
  out.proof = region_proof(request.challenge, request.sequence,
                           request.region, fault);
  if (fault) {
    out.status = ServiceStatus::kWriteFault;
    return out;
  }
  out.device_ms += timing_->memory_attestation_ms(config_.mac_alg,
                                                  request.region.size());
  out.status = ServiceStatus::kOk;
  return out;
}

ServiceMaster::ServiceMaster(ByteView k_attest, crypto::MacAlgorithm mac_alg)
    : mac_(crypto::make_mac(
          mac_alg,
          crypto::derive_purpose_key(k_attest, "device-services"))),
      enc_key_(crypto::derive_purpose_key(k_attest,
                                          "update-confidentiality")) {}

UpdateRequest ServiceMaster::make_update(std::uint64_t version,
                                         hw::Addr target, Bytes payload,
                                         std::uint64_t challenge) {
  UpdateRequest req;
  req.version = version;
  req.target = target;
  req.payload = std::move(payload);
  req.challenge = challenge;
  req.mac = mac_->compute(req.header_bytes());
  return req;
}

UpdateRequest ServiceMaster::make_encrypted_update(std::uint64_t version,
                                                   hw::Addr target,
                                                   ByteView plaintext,
                                                   std::uint64_t challenge) {
  UpdateRequest req;
  req.version = version;
  req.target = target;
  req.challenge = challenge;
  req.encrypted = true;
  // Deterministic IV bound to (version, challenge): unique per accepted
  // update because versions are strictly increasing.
  Bytes iv_seed;
  append_u64(iv_seed, version);
  append_u64(iv_seed, challenge);
  const auto iv_full = crypto::Hmac<crypto::Sha256>::mac(enc_key_, iv_seed);
  crypto::Aes128::Block iv{};
  std::copy(iv_full.begin(), iv_full.begin() + 16, iv.begin());
  const crypto::Aes128 cipher(enc_key_);
  req.payload.assign(iv.begin(), iv.end());
  crypto::append(req.payload,
                 crypto::cbc_encrypt(cipher, iv,
                                     crypto::pkcs7_pad(plaintext, 16)));
  req.mac = mac_->compute(req.header_bytes());
  return req;
}

EraseRequest ServiceMaster::make_erase(const hw::AddrRange& region,
                                       std::uint64_t challenge) {
  EraseRequest req;
  req.sequence = ++erase_sequence_;
  req.region = region;
  req.challenge = challenge;
  req.mac = mac_->compute(req.header_bytes());
  return req;
}

bool ServiceMaster::check_update_proof(const UpdateRequest& request,
                                       ByteView expected_region,
                                       ByteView proof) const {
  mac_->init(16 + expected_region.size());
  std::uint8_t head[16];
  crypto::store_le64(head, request.challenge);
  crypto::store_le64(head + 8, request.version);
  mac_->update(ByteView(head, 16));
  mac_->update(expected_region);
  return crypto::ct_equal(mac_->finish(), proof);
}

bool ServiceMaster::check_erase_proof(const EraseRequest& request,
                                      ByteView proof) const {
  mac_->init(16 + request.region.size());
  std::uint8_t head[16];
  crypto::store_le64(head, request.challenge);
  crypto::store_le64(head + 8, request.sequence);
  mac_->update(ByteView(head, 16));
  // The expected post-erase image is all zeros: absorb a fixed zero
  // chunk repeatedly instead of materializing a region-sized buffer.
  const Bytes zeros(std::min(DeviceServices::kProofChunkBytes,
                             request.region.size()),
                    0);
  for (std::size_t off = 0; off < request.region.size();) {
    const std::size_t n = std::min(DeviceServices::kProofChunkBytes,
                                   request.region.size() - off);
    mac_->update(ByteView(zeros.data(), n));
    off += n;
  }
  return crypto::ct_equal(mac_->finish(), proof);
}

}  // namespace ratt::attest
