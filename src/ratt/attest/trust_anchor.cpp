#include "ratt/attest/trust_anchor.hpp"

namespace ratt::attest {

std::string to_string(AttestStatus status) {
  switch (status) {
    case AttestStatus::kOk:
      return "ok";
    case AttestStatus::kBadRequestMac:
      return "bad-request-mac";
    case AttestStatus::kNotFresh:
      return "not-fresh";
    case AttestStatus::kWrongAlgorithm:
      return "wrong-algorithm";
    case AttestStatus::kKeyUnreadable:
      return "key-unreadable";
    case AttestStatus::kMeasurementFault:
      return "measurement-fault";
    case AttestStatus::kRateLimited:
      return "rate-limited";
  }
  return "unknown";
}

CodeAttest::CodeAttest(hw::Mcu& mcu, const Config& config,
                       FreshnessPolicy& policy,
                       const timing::DeviceTimingModel& timing)
    : hw::SoftwareComponent(mcu, "code-attest", config.code),
      config_(config),
      policy_(&policy),
      timing_(&timing) {}

std::optional<Bytes> CodeAttest::read_key() const {
  Bytes key(config_.key_size);
  if (read_block(config_.key_addr, key) != hw::BusStatus::kOk) {
    return std::nullopt;
  }
  return key;
}

AttestOutcome CodeAttest::handle_request(const AttestRequest& request) {
  AttestOutcome out;
  const auto account = [&](double ms) {
    out.device_ms += ms;
    total_device_ms_ += ms;
  };

  if (request.mac_alg != config_.mac_alg) {
    ++rejected_;
    out.status = AttestStatus::kWrongAlgorithm;
    return out;
  }

  const auto key = read_key();
  if (!key.has_value()) {
    ++rejected_;
    out.status = AttestStatus::kKeyUnreadable;
    return out;
  }
  const auto mac = crypto::make_mac(config_.mac_alg, *key);

  // 1. Request authentication (Sec. 4.1). The prover pays the one-block
  //    verification cost whether or not the MAC checks out — that residual
  //    cost is what the Sec. 4.1 ECC discussion is about.
  if (config_.authenticate_requests) {
    account(timing_->request_auth_ms(config_.mac_alg));
    if (!mac->verify(request.header_bytes(), request.mac)) {
      ++rejected_;
      out.status = AttestStatus::kBadRequestMac;
      return out;
    }
  }

  // 2. Freshness (Sec. 4.2). Cheap: a few memory words.
  out.freshness = policy_->check_and_update(ctx(), request.freshness);
  if (out.freshness != FreshnessVerdict::kAccept) {
    ++rejected_;
    out.status = AttestStatus::kNotFresh;
    return out;
  }

  // 3. Attestation budget (extension): the request is authentic and
  //    fresh, but the prover refuses to be driven above its configured
  //    duty share. Uses the hardware cycle counter, which no software can
  //    rewind.
  if (config_.rate_limit_max > 0) {
    const double now_ms = mcu().now_ms();
    if (now_ms - window_start_ms_ >= config_.rate_limit_window_ms) {
      window_start_ms_ = now_ms;
      window_count_ = 0;
    }
    if (window_count_ >= config_.rate_limit_max) {
      ++rejected_;
      ++rate_limited_;
      out.status = AttestStatus::kRateLimited;
      return out;
    }
    ++window_count_;
  }

  // 4. Memory measurement (Sec. 3.1): MAC over challenge || freshness ||
  //    the measured memory range, read over the bus (EA-MPU applies).
  Bytes measured(config_.measured_memory.size());
  if (read_block(config_.measured_memory.begin, measured) !=
      hw::BusStatus::kOk) {
    ++rejected_;
    out.status = AttestStatus::kMeasurementFault;
    return out;
  }
  Bytes message;
  message.reserve(16 + measured.size());
  std::uint8_t word[8];
  crypto::store_le64(word, request.challenge);
  crypto::append(message, ByteView(word, 8));
  crypto::store_le64(word, request.freshness);
  crypto::append(message, ByteView(word, 8));
  crypto::append(message, measured);
  account(timing_->memory_attestation_ms(config_.mac_alg, message.size()));

  out.response.freshness = request.freshness;
  out.response.measurement = mac->compute(message);
  out.status = AttestStatus::kOk;
  ++performed_;
  return out;
}

}  // namespace ratt::attest
