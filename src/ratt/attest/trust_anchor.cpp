#include "ratt/attest/trust_anchor.hpp"

#include <algorithm>
#include <span>

namespace ratt::attest {

std::string to_string(AttestStatus status) {
  switch (status) {
    case AttestStatus::kOk:
      return "ok";
    case AttestStatus::kBadRequestMac:
      return "bad-request-mac";
    case AttestStatus::kNotFresh:
      return "not-fresh";
    case AttestStatus::kWrongAlgorithm:
      return "wrong-algorithm";
    case AttestStatus::kKeyUnreadable:
      return "key-unreadable";
    case AttestStatus::kMeasurementFault:
      return "measurement-fault";
    case AttestStatus::kRateLimited:
      return "rate-limited";
  }
  return "unknown";
}

CodeAttest::CodeAttest(hw::Mcu& mcu, const Config& config,
                       FreshnessPolicy& policy,
                       const timing::DeviceTimingModel& timing)
    : hw::SoftwareComponent(mcu, "code-attest", config.code),
      config_(config),
      policy_(&policy),
      timing_(&timing) {}

std::optional<Bytes> CodeAttest::read_key() const {
  Bytes key(config_.key_size);
  if (read_block(config_.key_addr, key) != hw::BusStatus::kOk) {
    return std::nullopt;
  }
  return key;
}

crypto::Mac& CodeAttest::mac_for_key(const Bytes& key) {
  if (cached_mac_ == nullptr || cached_key_ != key) {
    cached_mac_ = crypto::make_mac(config_.mac_alg, key);
    cached_key_ = key;
  }
  return *cached_mac_;
}

AttestOutcome CodeAttest::handle_request(const AttestRequest& request) {
  AttestOutcome out;
  const auto account = [&](double ms) {
    out.device_ms += ms;
    total_device_ms_ += ms;
  };

  if (request.mac_alg != config_.mac_alg) {
    ++rejected_;
    out.status = AttestStatus::kWrongAlgorithm;
    return out;
  }

  const auto key = read_key();
  if (!key.has_value()) {
    ++rejected_;
    out.status = AttestStatus::kKeyUnreadable;
    return out;
  }
  // The key schedule is cached across requests; the key bytes were just
  // re-read over the bus, so an overwritten K_Attest re-keys immediately.
  crypto::Mac& mac = mac_for_key(*key);

  // 1. Request authentication (Sec. 4.1). The prover pays the one-block
  //    verification cost whether or not the MAC checks out — that residual
  //    cost is what the Sec. 4.1 ECC discussion is about.
  if (config_.authenticate_requests) {
    const double auth_ms = timing_->request_auth_ms(config_.mac_alg);
    account(auth_ms);
    out.phases.req_auth += auth_ms;
    if (!mac.verify(request.header_bytes(), request.mac)) {
      ++rejected_;
      out.status = AttestStatus::kBadRequestMac;
      return out;
    }
  }

  // 2. Freshness (Sec. 4.2). Cheap: a few memory words.
  out.freshness = policy_->check_and_update(ctx(), request.freshness);
  if (out.freshness != FreshnessVerdict::kAccept) {
    ++rejected_;
    out.status = AttestStatus::kNotFresh;
    return out;
  }

  // 3. Attestation budget (extension): the request is authentic and
  //    fresh, but the prover refuses to be driven above its configured
  //    duty share. Uses the hardware cycle counter, which no software can
  //    rewind.
  if (config_.rate_limit_max > 0) {
    const double now_ms = mcu().now_ms();
    if (now_ms - window_start_ms_ >= config_.rate_limit_window_ms) {
      window_start_ms_ = now_ms;
      window_count_ = 0;
    }
    if (window_count_ >= config_.rate_limit_max) {
      ++rejected_;
      ++rate_limited_;
      out.status = AttestStatus::kRateLimited;
      return out;
    }
    ++window_count_;
  }

  // 4. Memory measurement (Sec. 3.1): MAC over challenge || freshness ||
  //    the measured memory range, streamed in kMeasureChunkBytes pieces
  //    read over the bus (EA-MPU applies) — no full-size copy of the
  //    measured memory is ever materialized.
  const std::size_t memory_size = config_.measured_memory.size();
  mac.init(16 + memory_size);
  std::uint8_t head[16];
  crypto::store_le64(head, request.challenge);
  crypto::store_le64(head + 8, request.freshness);
  mac.update(ByteView(head, 16));
  if (scratch_.size() != kMeasureChunkBytes) {
    scratch_.resize(kMeasureChunkBytes);
  }
  for (std::size_t off = 0; off < memory_size;) {
    const std::size_t n = std::min(kMeasureChunkBytes, memory_size - off);
    if (read_block(config_.measured_memory.begin + static_cast<hw::Addr>(off),
                   std::span<std::uint8_t>(scratch_.data(), n)) !=
        hw::BusStatus::kOk) {
      ++rejected_;
      out.status = AttestStatus::kMeasurementFault;
      return out;
    }
    mac.update(ByteView(scratch_.data(), n));
    off += n;
  }
  // Phase split of the measurement charge: mem_mac is the MAC body cost
  // of the memory bytes alone (no setup); resp_mac is everything else —
  // setup, the 16-byte header, finalization/block rounding. The two sum
  // to the full charge, keeping phases an exact partition of device_ms.
  const double measure_ms =
      timing_->memory_attestation_ms(config_.mac_alg, 16 + memory_size);
  const double mem_mac_ms =
      timing_->mac_ms(config_.mac_alg, memory_size, /*include_setup=*/false);
  out.phases.mem_mac += mem_mac_ms;
  out.phases.resp_mac += measure_ms - mem_mac_ms;
  account(measure_ms);

  out.response.freshness = request.freshness;
  out.response.measurement = mac.finish();
  out.status = AttestStatus::kOk;
  ++performed_;
  return out;
}

}  // namespace ratt::attest
