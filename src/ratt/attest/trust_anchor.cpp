#include "ratt/attest/trust_anchor.hpp"

#include <algorithm>
#include <span>

namespace ratt::attest {

std::string to_string(AttestStatus status) {
  switch (status) {
    case AttestStatus::kOk:
      return "ok";
    case AttestStatus::kBadRequestMac:
      return "bad-request-mac";
    case AttestStatus::kNotFresh:
      return "not-fresh";
    case AttestStatus::kWrongAlgorithm:
      return "wrong-algorithm";
    case AttestStatus::kKeyUnreadable:
      return "key-unreadable";
    case AttestStatus::kMeasurementFault:
      return "measurement-fault";
    case AttestStatus::kRateLimited:
      return "rate-limited";
    case AttestStatus::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

CodeAttest::CodeAttest(hw::Mcu& mcu, const Config& config,
                       FreshnessPolicy& policy,
                       const timing::DeviceTimingModel& timing)
    : hw::SoftwareComponent(mcu, "code-attest", config.code),
      config_(config),
      policy_(&policy),
      timing_(&timing) {}

std::optional<Bytes> CodeAttest::read_key() const {
  Bytes key(config_.key_size);
  if (read_block(config_.key_addr, key) != hw::BusStatus::kOk) {
    return std::nullopt;
  }
  return key;
}

crypto::Mac& CodeAttest::mac_for_key(const Bytes& key) {
  if (cached_mac_ == nullptr || cached_key_ != key) {
    cached_mac_ = crypto::make_mac(config_.mac_alg, key);
    cached_key_ = key;
  }
  return *cached_mac_;
}

crypto::Mac* CodeAttest::admit(crypto::MacAlgorithm alg, const Bytes& header,
                               const Bytes& request_mac,
                               std::uint64_t freshness, AttestOutcome& out) {
  if (alg != config_.mac_alg) {
    ++rejected_;
    out.status = AttestStatus::kWrongAlgorithm;
    return nullptr;
  }

  const auto key = read_key();
  if (!key.has_value()) {
    ++rejected_;
    out.status = AttestStatus::kKeyUnreadable;
    return nullptr;
  }
  // The key schedule is cached across requests; the key bytes were just
  // re-read over the bus, so an overwritten K_Attest re-keys immediately.
  crypto::Mac& mac = mac_for_key(*key);

  // 1. Request authentication (Sec. 4.1). The prover pays the one-block
  //    verification cost whether or not the MAC checks out — that residual
  //    cost is what the Sec. 4.1 ECC discussion is about.
  if (config_.authenticate_requests) {
    const double auth_ms = timing_->request_auth_ms(config_.mac_alg);
    out.device_ms += auth_ms;
    total_device_ms_ += auth_ms;
    out.phases.req_auth += auth_ms;
    if (!mac.verify(header, request_mac)) {
      ++rejected_;
      out.status = AttestStatus::kBadRequestMac;
      return nullptr;
    }
  }

  // 2. Freshness (Sec. 4.2). Cheap: a few memory words.
  out.freshness = policy_->check_and_update(ctx(), freshness);
  if (out.freshness != FreshnessVerdict::kAccept) {
    ++rejected_;
    out.status = AttestStatus::kNotFresh;
    return nullptr;
  }

  // 3. Attestation budget (extension): the request is authentic and
  //    fresh, but the prover refuses to be driven above its configured
  //    duty share. Uses the hardware cycle counter, which no software can
  //    rewind.
  if (config_.rate_limit_max > 0) {
    const double now_ms = mcu().now_ms();
    if (now_ms - window_start_ms_ >= config_.rate_limit_window_ms) {
      window_start_ms_ = now_ms;
      window_count_ = 0;
    }
    if (window_count_ >= config_.rate_limit_max) {
      ++rejected_;
      ++rate_limited_;
      out.status = AttestStatus::kRateLimited;
      return nullptr;
    }
    ++window_count_;
  }
  return &mac;
}

AttestOutcome CodeAttest::handle_request(const AttestRequest& request) {
  AttestOutcome out;
  const auto account = [&](double ms) {
    out.device_ms += ms;
    total_device_ms_ += ms;
  };

  crypto::Mac* admitted = admit(request.mac_alg, request.header_bytes(),
                                request.mac, request.freshness, out);
  if (admitted == nullptr) return out;
  crypto::Mac& mac = *admitted;

  // 4. Memory measurement (Sec. 3.1): MAC over challenge || freshness ||
  //    the measured memory range, streamed in kMeasureChunkBytes pieces
  //    read over the bus (EA-MPU applies) — no full-size copy of the
  //    measured memory is ever materialized.
  const std::size_t memory_size = config_.measured_memory.size();
  mac.init(16 + memory_size);
  std::uint8_t head[16];
  crypto::store_le64(head, request.challenge);
  crypto::store_le64(head + 8, request.freshness);
  mac.update(ByteView(head, 16));
  if (scratch_.size() != kMeasureChunkBytes) {
    scratch_.resize(kMeasureChunkBytes);
  }
  for (std::size_t off = 0; off < memory_size;) {
    const std::size_t n = std::min(kMeasureChunkBytes, memory_size - off);
    if (read_block(config_.measured_memory.begin + static_cast<hw::Addr>(off),
                   std::span<std::uint8_t>(scratch_.data(), n)) !=
        hw::BusStatus::kOk) {
      ++rejected_;
      out.status = AttestStatus::kMeasurementFault;
      return out;
    }
    mac.update(ByteView(scratch_.data(), n));
    off += n;
  }
  // Phase split of the measurement charge: mem_mac is the MAC body cost
  // of the memory bytes alone (no setup); resp_mac is everything else —
  // setup, the 16-byte header, finalization/block rounding. The two sum
  // to the full charge, keeping phases an exact partition of device_ms.
  const double measure_ms =
      timing_->memory_attestation_ms(config_.mac_alg, 16 + memory_size);
  const double mem_mac_ms =
      timing_->mac_ms(config_.mac_alg, memory_size, /*include_setup=*/false);
  out.phases.mem_mac += mem_mac_ms;
  out.phases.resp_mac += measure_ms - mem_mac_ms;
  account(measure_ms);

  out.response.freshness = request.freshness;
  out.response.measurement = mac.finish();
  out.status = AttestStatus::kOk;
  ++performed_;
  return out;
}

AttestOutcome CodeAttest::handle_incremental(const IncAttestRequest& request) {
  AttestOutcome out;
  out.incremental = true;
  const auto account = [&](double ms) {
    out.device_ms += ms;
    total_device_ms_ += ms;
  };

  if (!config_.enable_incremental) {
    ++rejected_;
    out.status = AttestStatus::kUnsupported;
    return out;
  }

  crypto::Mac* admitted = admit(request.mac_alg, request.header_bytes(),
                                request.mac, request.freshness, out);
  if (admitted == nullptr) return out;
  crypto::Mac& mac = *admitted;

  const std::size_t memory_size = config_.measured_memory.size();
  const std::size_t pages_total = page_count(memory_size);
  const std::size_t tag_size = mac.tag_size();
  out.inc_pages_total = pages_total;

  // The cache generation (u64 at cache_addr), read through the bus with
  // the anchor's PC — the EA-MPU cache rule admits exactly this access.
  std::uint64_t gen = 0;
  if (read64(config_.cache_addr, gen) != hw::BusStatus::kOk) {
    ++rejected_;
    out.status = AttestStatus::kMeasurementFault;
    return out;
  }

  // Full fallback when there is nothing sound to serve a delta from:
  // first contact (since_gen 0), an unseeded cache (gen 0), or — when
  // generations are bound — a retained generation the cache does not
  // match (stale or rolled-back cache, rebooted prover).
  const bool fallback =
      gen == 0 || request.since_gen == 0 ||
      (config_.bind_generation && request.since_gen != gen);

  hw::MemoryBus& bus = mcu().bus();
  const hw::Addr base = config_.measured_memory.begin;
  std::vector<std::uint32_t> changed;
  if (fallback) {
    changed.resize(pages_total);
    for (std::size_t p = 0; p < pages_total; ++p) {
      changed[p] = static_cast<std::uint32_t>(p);
    }
  } else {
    for (std::size_t p = 0; p < pages_total; ++p) {
      if (bus.page_dirty(base + static_cast<hw::Addr>(p * kPageBytes))) {
        changed.push_back(static_cast<std::uint32_t>(p));
      }
    }
  }
  out.inc_pages_refreshed = changed.size();

  // Re-MAC every page to refresh; store its tag into the cache and clear
  // its dirty bit (the anchor's PC is the dirty authority). Each page
  // costs one standalone MAC: setup + 9-byte header + page bytes.
  if (scratch_.size() != kMeasureChunkBytes) {
    scratch_.resize(kMeasureChunkBytes);
  }
  for (const std::uint32_t p : changed) {
    const std::size_t off = static_cast<std::size_t>(p) * kPageBytes;
    const std::size_t len = std::min(kPageBytes, memory_size - off);
    const hw::Addr page_addr = base + static_cast<hw::Addr>(off);
    if (read_block(page_addr,
                   std::span<std::uint8_t>(scratch_.data(), len)) !=
        hw::BusStatus::kOk) {
      ++rejected_;
      out.status = AttestStatus::kMeasurementFault;
      return out;
    }
    std::uint8_t head[9];
    head[0] = 'P';
    crypto::store_le32(head + 1, p);
    crypto::store_le32(head + 5, static_cast<std::uint32_t>(len));
    mac.init(9 + len);
    mac.update(ByteView(head, 9));
    mac.update(ByteView(scratch_.data(), len));
    const Bytes tag = mac.finish();
    if (write_block(config_.cache_addr + 8 +
                        static_cast<hw::Addr>(p * tag_size),
                    tag) != hw::BusStatus::kOk) {
      ++rejected_;
      out.status = AttestStatus::kMeasurementFault;
      return out;
    }
    (void)bus.clear_dirty_page(ctx(), page_addr);
    const double page_ms =
        timing_->mac_ms(config_.mac_alg, 9 + len, /*include_setup=*/true);
    out.phases.mem_mac += page_ms;
    account(page_ms);
  }

  // The evidence generation advances whenever the cache content changed;
  // idle rounds (no dirty pages) keep it, so the cache word is written
  // only when there is new evidence to bind.
  const std::uint64_t new_gen =
      (fallback || !changed.empty()) ? gen + 1 : gen;
  if (new_gen != gen &&
      write64(config_.cache_addr, new_gen) != hw::BusStatus::kOk) {
    ++rejected_;
    out.status = AttestStatus::kMeasurementFault;
    return out;
  }

  // Fold the complete tag table — cached tags for clean pages, the tags
  // just refreshed for dirty ones — into one response MAC. Reading the
  // table back from the cache is what the rollback adversary attacks:
  // with an unprotected cache, restored stale tags fold undetected.
  IncAttestResponse& resp = out.inc_response;
  resp.flags = (fallback ? IncAttestResponse::kFlagFullFallback : 0) |
               (config_.bind_generation
                    ? IncAttestResponse::kFlagGenerationBound
                    : 0);
  resp.freshness = request.freshness;
  resp.base_gen = fallback ? 0 : gen;
  resp.new_gen = new_gen;
  resp.changed_pages = std::move(changed);

  Bytes table(pages_total * tag_size);
  if (read_block(config_.cache_addr + 8, table) != hw::BusStatus::kOk) {
    ++rejected_;
    out.status = AttestStatus::kMeasurementFault;
    return out;
  }
  const bool bound = config_.bind_generation;
  const std::size_t fold_len =
      22 + (bound ? 16 : 0) + 4 * resp.changed_pages.size() + table.size();
  mac.init(fold_len);
  std::uint8_t fold_head[38];
  fold_head[0] = 'I';
  fold_head[1] = resp.flags;
  crypto::store_le64(fold_head + 2, request.challenge);
  crypto::store_le64(fold_head + 10, request.freshness);
  std::size_t head_len = 18;
  if (bound) {
    crypto::store_le64(fold_head + 18, resp.base_gen);
    crypto::store_le64(fold_head + 26, resp.new_gen);
    head_len = 34;
  }
  crypto::store_le32(fold_head + head_len,
                     static_cast<std::uint32_t>(resp.changed_pages.size()));
  head_len += 4;
  mac.update(ByteView(fold_head, head_len));
  for (const std::uint32_t p : resp.changed_pages) {
    std::uint8_t idx[4];
    crypto::store_le32(idx, p);
    mac.update(ByteView(idx, 4));
  }
  mac.update(table);
  resp.measurement = mac.finish();
  const double fold_ms =
      timing_->mac_ms(config_.mac_alg, fold_len, /*include_setup=*/true);
  out.phases.resp_mac += fold_ms;
  account(fold_ms);

  out.status = AttestStatus::kOk;
  ++inc_performed_;
  if (fallback) ++full_fallbacks_;
  return out;
}

}  // namespace ratt::attest
