// The secp160r1 elliptic-curve group (SEC 2):
//   y^2 = x^3 + ax + b over GF(p), p = 2^160 - 2^31 - 1, cofactor 1.
//
// This is the curve the paper prices in Table 1 ("ECC (secp160r1)") when
// arguing that public-key request authentication is itself a DoS vector on
// a 24 MHz prover.
#pragma once

#include <optional>

#include "ratt/crypto/fp160.hpp"

namespace ratt::crypto {

/// Affine point; the default-constructed value is the point at infinity.
struct EcPoint {
  Fp160 x;
  Fp160 y;
  bool infinity = true;

  static EcPoint make(const Fp160& x, const Fp160& y) {
    return EcPoint{x, y, false};
  }

  /// SEC1 encoding: 0x00 (infinity, 1 byte), 0x04||x||y (uncompressed,
  /// 41 bytes) or 0x02/0x03||x (compressed, 21 bytes).
  Bytes encode(bool compressed = true) const;
  /// Decode + on-curve validation; nullopt for malformed or off-curve
  /// input.
  static std::optional<EcPoint> decode(ByteView wire);

  friend bool operator==(const EcPoint& a, const EcPoint& b) {
    if (a.infinity || b.infinity) return a.infinity == b.infinity;
    return a.x == b.x && a.y == b.y;
  }
};

/// Group operations on secp160r1. All entry points validate nothing beyond
/// their stated preconditions; use on_curve() to vet untrusted points.
class Secp160r1 {
 public:
  /// Curve coefficient a = p - 3.
  static const Fp160& a();
  /// Curve coefficient b.
  static const Fp160& b();
  /// Base point G.
  static const EcPoint& generator();
  /// Group order n (161 bits).
  static const U192& order();

  /// Whether `pt` satisfies the curve equation (infinity counts as on-curve).
  static bool on_curve(const EcPoint& pt);

  static EcPoint add(const EcPoint& p, const EcPoint& q);
  static EcPoint double_point(const EcPoint& p);

  /// Scalar multiplication k·P, double-and-add over the bits of k.
  static EcPoint scalar_mul(const U192& k, const EcPoint& p);

  /// k·G.
  static EcPoint scalar_mul_base(const U192& k);
};

}  // namespace ratt::crypto
