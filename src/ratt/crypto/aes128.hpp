// AES-128 (FIPS 197): key expansion and single-block encrypt/decrypt.
//
// The paper prices AES-128 key expansion, encryption and decryption
// separately (Table 1) because on a low-end MCU the key schedule can be
// precomputed once; this API mirrors that split.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "ratt/crypto/bytes.hpp"

namespace ratt::crypto {

/// AES-128 block cipher. Satisfies the BlockCipher concept in
/// block_modes.hpp (16-byte block, 16-byte key).
class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;
  using Block = std::array<std::uint8_t, kBlockSize>;

  /// Runs key expansion (the "Key exp." column of Table 1).
  explicit Aes128(ByteView key);

  Block encrypt_block(const Block& plaintext) const;
  Block decrypt_block(const Block& ciphertext) const;

 private:
  // Round keys for encryption; decryption uses the same schedule with the
  // equivalent-inverse-cipher transform applied on the fly.
  std::array<std::uint32_t, 4 * (kRounds + 1)> round_keys_{};
};

}  // namespace ratt::crypto
