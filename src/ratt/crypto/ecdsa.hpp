// ECDSA over secp160r1 with SHA-1 message digests.
//
// Used in two places:
//   * Table 1 / Sec. 4.1 — pricing public-key request authentication on the
//     prover ("ECC (secp160r1)" sign/verify columns), which the paper rules
//     out because a single verification (~170 ms at 24 MHz) is itself DoS.
//   * Secure boot — the reference image hash stored in ROM is signed by the
//     device vendor (Sec. 2, "Secure Boot").
//
// Per-signature secrets are derived deterministically from the key and
// message (RFC 6979 in spirit, via HMAC-DRBG), so no ambient randomness is
// needed and all experiments are reproducible.
#pragma once

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/ec.hpp"

namespace ratt::crypto {

struct EcdsaSignature {
  U192 r;
  U192 s;

  friend bool operator==(const EcdsaSignature&, const EcdsaSignature&) =
      default;

  /// Fixed-width serialization: r || s, 24 bytes each, big-endian.
  Bytes to_bytes() const;
  static EcdsaSignature from_bytes(ByteView bytes);
};

struct EcdsaKeyPair {
  U192 private_key;  // d in [1, n-1]
  EcPoint public_key;  // Q = d·G
};

/// Derive a key pair from seed material (deterministic).
EcdsaKeyPair ecdsa_generate_key(ByteView seed);

/// Sign SHA-1(message) with private key d.
EcdsaSignature ecdsa_sign(const U192& d, ByteView message);

/// Verify a signature on SHA-1(message) against public key Q.
/// Rejects out-of-range (r, s) and off-curve / infinity public keys.
bool ecdsa_verify(const EcPoint& q, ByteView message,
                  const EcdsaSignature& sig);

}  // namespace ratt::crypto
