// Fixed-width unsigned big integers for the elliptic-curve substrate.
//
// UInt<W> holds W 32-bit limbs, little-endian limb order. 32-bit limbs are
// chosen deliberately: secp160r1's field prime is exactly 5 limbs wide,
// which keeps the pseudo-Mersenne reduction in fp160.cpp limb-aligned.
// All arithmetic is value-based and allocation-free.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "ratt/crypto/bytes.hpp"

namespace ratt::crypto {

template <std::size_t W>
class UInt {
 public:
  static constexpr std::size_t kLimbs = W;
  static constexpr std::size_t kBits = W * 32;
  static constexpr std::size_t kBytes = W * 4;

  constexpr UInt() = default;

  constexpr explicit UInt(std::uint64_t v) {
    limbs_[0] = static_cast<std::uint32_t>(v);
    if constexpr (W > 1) limbs_[1] = static_cast<std::uint32_t>(v >> 32);
  }

  /// Parse big-endian hex (at most kBytes*2 digits, shorter is allowed).
  static UInt from_hex(std::string_view hex) {
    if (hex.size() > kBytes * 2) {
      throw std::invalid_argument("UInt::from_hex: literal too wide");
    }
    // Left-pad to full width, then decode.
    std::string padded(kBytes * 2 - hex.size(), '0');
    padded.append(hex);
    return from_bytes_be(crypto::from_hex(padded));
  }

  /// Parse a big-endian byte string of exactly kBytes.
  static UInt from_bytes_be(ByteView bytes) {
    if (bytes.size() != kBytes) {
      throw std::invalid_argument("UInt::from_bytes_be: wrong length");
    }
    UInt out;
    for (std::size_t i = 0; i < W; ++i) {
      out.limbs_[i] = load_be32(bytes.data() + (W - 1 - i) * 4);
    }
    return out;
  }

  /// Big-endian byte serialization (kBytes long, zero-padded).
  Bytes to_bytes_be() const {
    Bytes out(kBytes);
    for (std::size_t i = 0; i < W; ++i) {
      store_be32(out.data() + (W - 1 - i) * 4, limbs_[i]);
    }
    return out;
  }

  std::string to_hex() const { return crypto::to_hex(to_bytes_be()); }

  constexpr std::uint32_t limb(std::size_t i) const { return limbs_[i]; }
  constexpr void set_limb(std::size_t i, std::uint32_t v) { limbs_[i] = v; }

  constexpr bool is_zero() const {
    for (auto l : limbs_) {
      if (l != 0) return false;
    }
    return true;
  }

  constexpr bool is_odd() const { return (limbs_[0] & 1) != 0; }

  constexpr bool bit(std::size_t i) const {
    return ((limbs_[i / 32] >> (i % 32)) & 1) != 0;
  }

  /// Index of the highest set bit, or -1 for zero.
  constexpr int bit_length() const {
    for (std::size_t i = W; i-- > 0;) {
      if (limbs_[i] != 0) {
        std::uint32_t v = limbs_[i];
        int hi = 0;
        while (v != 0) {
          v >>= 1;
          ++hi;
        }
        return static_cast<int>(i * 32) + hi;
      }
    }
    return 0;
  }

  friend constexpr bool operator==(const UInt& a, const UInt& b) = default;

  friend constexpr std::strong_ordering operator<=>(const UInt& a,
                                                    const UInt& b) {
    for (std::size_t i = W; i-- > 0;) {
      if (a.limbs_[i] != b.limbs_[i]) {
        return a.limbs_[i] <=> b.limbs_[i];
      }
    }
    return std::strong_ordering::equal;
  }

  /// a + b; returns the carry-out (0 or 1).
  static constexpr std::uint32_t add(const UInt& a, const UInt& b, UInt& out) {
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < W; ++i) {
      const std::uint64_t sum =
          std::uint64_t{a.limbs_[i]} + b.limbs_[i] + carry;
      out.limbs_[i] = static_cast<std::uint32_t>(sum);
      carry = sum >> 32;
    }
    return static_cast<std::uint32_t>(carry);
  }

  /// a - b; returns the borrow-out (0 or 1).
  static constexpr std::uint32_t sub(const UInt& a, const UInt& b, UInt& out) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < W; ++i) {
      const std::uint64_t diff =
          std::uint64_t{a.limbs_[i]} - b.limbs_[i] - borrow;
      out.limbs_[i] = static_cast<std::uint32_t>(diff);
      borrow = (diff >> 32) & 1;
    }
    return static_cast<std::uint32_t>(borrow);
  }

  friend constexpr UInt operator+(const UInt& a, const UInt& b) {
    UInt out;
    add(a, b, out);
    return out;
  }

  friend constexpr UInt operator-(const UInt& a, const UInt& b) {
    UInt out;
    sub(a, b, out);
    return out;
  }

  /// Widening schoolbook multiplication.
  friend constexpr UInt<2 * W> mul_wide(const UInt& a, const UInt& b) {
    UInt<2 * W> out;
    for (std::size_t i = 0; i < W; ++i) {
      std::uint64_t carry = 0;
      for (std::size_t j = 0; j < W; ++j) {
        const std::uint64_t cur = std::uint64_t{out.limb(i + j)} +
                                  std::uint64_t{a.limbs_[i]} * b.limbs_[j] +
                                  carry;
        out.set_limb(i + j, static_cast<std::uint32_t>(cur));
        carry = cur >> 32;
      }
      out.set_limb(i + W, static_cast<std::uint32_t>(
                              std::uint64_t{out.limb(i + W)} + carry));
    }
    return out;
  }

  constexpr UInt shifted_left(unsigned n) const {
    UInt out;
    const std::size_t limb_shift = n / 32;
    const unsigned bit_shift = n % 32;
    for (std::size_t i = W; i-- > 0;) {
      std::uint32_t v = 0;
      if (i >= limb_shift) {
        v = limbs_[i - limb_shift] << bit_shift;
        if (bit_shift != 0 && i > limb_shift) {
          v |= limbs_[i - limb_shift - 1] >> (32 - bit_shift);
        }
      }
      out.limbs_[i] = v;
    }
    return out;
  }

  constexpr UInt shifted_right(unsigned n) const {
    UInt out;
    const std::size_t limb_shift = n / 32;
    const unsigned bit_shift = n % 32;
    for (std::size_t i = 0; i < W; ++i) {
      std::uint32_t v = 0;
      if (i + limb_shift < W) {
        v = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < W) {
          v |= limbs_[i + limb_shift + 1] << (32 - bit_shift);
        }
      }
      out.limbs_[i] = v;
    }
    return out;
  }

  /// Truncate (or zero-extend) to a different width.
  template <std::size_t W2>
  constexpr UInt<W2> resized() const {
    UInt<W2> out;
    for (std::size_t i = 0; i < std::min(W, W2); ++i) {
      out.set_limb(i, limbs_[i]);
    }
    return out;
  }

 private:
  std::array<std::uint32_t, W> limbs_{};
};

/// Remainder of a (2W wide) modulo m (W wide), by binary long division.
/// Precondition: m != 0. Cost is O(bits) compare/subtract passes; fine for
/// the few per-signature order-n reductions, while field arithmetic uses
/// the dedicated pseudo-Mersenne path in fp160.cpp.
template <std::size_t W>
UInt<W> mod_wide(const UInt<2 * W>& a, const UInt<W>& m) {
  if (m.is_zero()) throw std::invalid_argument("mod_wide: zero modulus");
  const UInt<2 * W> m_wide = m.template resized<2 * W>();
  UInt<2 * W> rem;
  for (int i = a.bit_length(); i-- > 0;) {
    rem = rem.shifted_left(1);
    if (a.bit(static_cast<std::size_t>(i))) {
      rem.set_limb(0, rem.limb(0) | 1);
    }
    if (rem >= m_wide) {
      rem = rem - m_wide;
    }
  }
  return rem.template resized<W>();
}

using U160 = UInt<5>;   // field elements of secp160r1
using U192 = UInt<6>;   // scalars modulo the 161-bit group order
using U320 = UInt<10>;  // products of field elements
using U384 = UInt<12>;  // products of order-width scalars

}  // namespace ratt::crypto
