#include "ratt/crypto/speck.hpp"

#include <bit>
#include <stdexcept>

namespace ratt::crypto {

namespace {

// Speck2n round function with n = 32, alpha = 8, beta = 3.
constexpr int kAlpha = 8;
constexpr int kBeta = 3;

void round_enc(std::uint32_t& x, std::uint32_t& y, std::uint32_t k) {
  x = std::rotr(x, kAlpha);
  x += y;
  x ^= k;
  y = std::rotl(y, kBeta);
  y ^= x;
}

void round_dec(std::uint32_t& x, std::uint32_t& y, std::uint32_t k) {
  y ^= x;
  y = std::rotr(y, kBeta);
  x ^= k;
  x -= y;
  x = std::rotl(x, kAlpha);
}

}  // namespace

Speck64_128::Speck64_128(ByteView key) {
  if (key.size() != kKeySize) {
    throw std::invalid_argument("Speck64_128: key must be 16 bytes");
  }
  // Reference key schedule: key words (l2, l1, l0, k0) little-endian, i.e.
  // k0 = key[0..3], l0 = key[4..7], l1 = key[8..11], l2 = key[12..15].
  std::uint32_t l[kRounds + 2];
  round_keys_[0] = load_le32(key.data());
  l[0] = load_le32(key.data() + 4);
  l[1] = load_le32(key.data() + 8);
  l[2] = load_le32(key.data() + 12);
  for (int i = 0; i < kRounds - 1; ++i) {
    l[i + 3] = (round_keys_[i] + std::rotr(l[i], kAlpha)) ^
               static_cast<std::uint32_t>(i);
    round_keys_[i + 1] = std::rotl(round_keys_[i], kBeta) ^ l[i + 3];
  }
}

Speck64_128::Block Speck64_128::encrypt_block(const Block& plaintext) const {
  // Reference convention: plaintext words (x, y) with y first in memory.
  std::uint32_t y = load_le32(plaintext.data());
  std::uint32_t x = load_le32(plaintext.data() + 4);
  for (int i = 0; i < kRounds; ++i) {
    round_enc(x, y, round_keys_[i]);
  }
  Block out;
  store_le32(out.data(), y);
  store_le32(out.data() + 4, x);
  return out;
}

Speck64_128::Block Speck64_128::decrypt_block(const Block& ciphertext) const {
  std::uint32_t y = load_le32(ciphertext.data());
  std::uint32_t x = load_le32(ciphertext.data() + 4);
  for (int i = kRounds - 1; i >= 0; --i) {
    round_dec(x, y, round_keys_[i]);
  }
  Block out;
  store_le32(out.data(), y);
  store_le32(out.data() + 4, x);
  return out;
}

}  // namespace ratt::crypto
