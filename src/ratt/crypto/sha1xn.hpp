// Multi-buffer SHA-1: N independent messages hashed in lockstep.
//
// The verifier side of the swarm spends most of its cycles in HMAC-SHA1
// compressions over *independent* messages (request headers, expected
// response measurements). A single SHA-1 instance is a long dependency
// chain and cannot use data-level parallelism, but N independent hashes
// can: this engine keeps the five chaining words of W lanes in
// structure-of-arrays form (`uint32_t h[5][W]`) and runs the 80-round
// compression with fixed-trip per-lane inner loops, which GCC/Clang
// auto-vectorize to 4-wide (SSE2) or 8-wide (AVX2) integer ops at -O3.
// There is no hand-written intrinsic path; the portable transposed form
// *is* the SIMD path, and the scalar `Sha1` engine remains the
// differential oracle (tests/crypto/sha1xn_test.cpp runs both in
// lockstep).
//
// Lane widths 4 and 8 are instantiated; `hash_many` picks 4 for n <= 4
// and 8 otherwise. Ragged batches are handled by running every lane for
// max-blocks and snapshotting each lane's digest the moment its own
// padded stream ends (finished lanes keep compressing a dummy block;
// their columns become don't-care). The hot verifier batches are
// uniform-length, so no cycles are wasted there.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/sha1.hpp"

namespace ratt::crypto {

class Sha1xN {
 public:
  static constexpr std::size_t kMaxLanes = 8;

  /// One lane's message as a logical concatenation head || tail. The
  /// two-part shape exists for the verifier's measurement MACs (a
  /// 16-byte per-round head followed by the shared reference memory)
  /// without staging the concatenation. Either part may be empty.
  struct LaneMsg {
    ByteView head;
    ByteView tail;
  };

  /// Hash `n` (1..kMaxLanes) messages, lane i continuing from
  /// `mids[i]` (a block-aligned Sha1::Midstate, e.g. an HMAC ipad
  /// midstate). `digests[i]` receives lane i's 20-byte digest.
  /// `mids == nullptr` starts every lane from the SHA-1 IV.
  static void hash_many(const Sha1::Midstate* mids, const LaneMsg* msgs,
                        std::size_t n,
                        std::uint8_t (*digests)[Sha1::kDigestSize]);

  /// Fresh-IV, single-part convenience (known-answer tests).
  static void hash_many(const ByteView* msgs, std::size_t n,
                        std::uint8_t (*digests)[Sha1::kDigestSize]);
};

}  // namespace ratt::crypto
