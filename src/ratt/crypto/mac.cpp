#include "ratt/crypto/mac.hpp"

#include <algorithm>
#include <stdexcept>

#include "ratt/crypto/block_modes.hpp"
#include "ratt/crypto/cmac.hpp"
#include "ratt/crypto/ct.hpp"
#include "ratt/crypto/hmac.hpp"
#include "ratt/crypto/sha1.hpp"

namespace ratt::crypto {

std::string to_string(MacAlgorithm alg) {
  switch (alg) {
    case MacAlgorithm::kHmacSha1:
      return "HMAC-SHA1";
    case MacAlgorithm::kAesCbcMac:
      return "AES-128-CBC-MAC";
    case MacAlgorithm::kSpeckCbcMac:
      return "Speck-64/128-CBC-MAC";
    case MacAlgorithm::kAesCmac:
      return "AES-128-CMAC";
    case MacAlgorithm::kSpeckCmac:
      return "Speck-64/128-CMAC";
  }
  return "unknown";
}

std::size_t tag_size(MacAlgorithm alg) {
  switch (alg) {
    case MacAlgorithm::kHmacSha1:
      return 20;
    case MacAlgorithm::kAesCbcMac:
    case MacAlgorithm::kAesCmac:
      return 16;
    case MacAlgorithm::kSpeckCbcMac:
    case MacAlgorithm::kSpeckCmac:
      return 8;
  }
  return 0;
}

void Mac::init(std::uint64_t total_bytes) {
  declared_bytes_ = total_bytes;
  streamed_bytes_ = 0;
  streaming_ = true;
  do_init(total_bytes);
}

void Mac::update(ByteView chunk) {
  if (!streaming_) {
    throw std::logic_error("Mac::update: no init() pending");
  }
  if (chunk.size() > declared_bytes_ - streamed_bytes_) {
    throw std::logic_error("Mac::update: streaming past the declared " +
                           std::to_string(declared_bytes_) + " bytes");
  }
  streamed_bytes_ += chunk.size();
  do_update(chunk);
}

Bytes Mac::finish() {
  if (!streaming_) {
    throw std::logic_error("Mac::finish: no init() pending");
  }
  // Either way the computation ends here; a mismatch abandons it.
  streaming_ = false;
  if (streamed_bytes_ != declared_bytes_) {
    throw std::logic_error("Mac::finish: streamed " +
                           std::to_string(streamed_bytes_) +
                           " bytes, declared " +
                           std::to_string(declared_bytes_));
  }
  return do_finish();
}

Bytes Mac::compute(ByteView message) {
  init(message.size());
  update(message);
  return finish();
}

bool Mac::verify(ByteView message, ByteView tag) {
  const Bytes expected = compute(message);
  return ct_equal(expected, tag);
}

namespace {

class HmacSha1Mac final : public Mac {
 public:
  explicit HmacSha1Mac(ByteView key) : hmac_(key) {}

  MacAlgorithm algorithm() const override { return MacAlgorithm::kHmacSha1; }
  std::size_t tag_size() const override { return Sha1::kDigestSize; }

 protected:
  void do_init(std::uint64_t /*total_bytes*/) override { hmac_.reset(); }
  void do_update(ByteView chunk) override { hmac_.update(chunk); }
  Bytes do_finish() override {
    const auto digest = hmac_.finish();
    return Bytes(digest.begin(), digest.end());
  }

 private:
  Hmac<Sha1> hmac_;
};

/// Streaming length-prepended CBC-MAC with zero IV, identical to the
/// one-shot cbc_mac(): block 0 encodes the declared length (which is why
/// init() needs it), full blocks chain as they arrive, the tail block is
/// zero-padded at finish.
template <BlockCipher Cipher>
class CbcMac final : public Mac {
 public:
  CbcMac(MacAlgorithm alg, ByteView key) : alg_(alg), cipher_(key) {}

  MacAlgorithm algorithm() const override { return alg_; }
  std::size_t tag_size() const override { return Cipher::kBlockSize; }

 protected:
  void do_init(std::uint64_t total_bytes) override {
    typename Cipher::Block len_block{};
    for (std::size_t i = 0; i < sizeof(total_bytes) && i < Cipher::kBlockSize;
         ++i) {
      len_block[i] = static_cast<std::uint8_t>(total_bytes >> (8 * i));
    }
    chain_ = cipher_.encrypt_block(len_block);
    buffered_ = 0;
  }

  void do_update(ByteView chunk) override {
    std::size_t off = 0;
    while (off < chunk.size()) {
      const std::size_t take = std::min(Cipher::kBlockSize - buffered_,
                                        chunk.size() - off);
      for (std::size_t i = 0; i < take; ++i) {
        chain_[buffered_ + i] = static_cast<std::uint8_t>(
            chain_[buffered_ + i] ^ chunk[off + i]);
      }
      buffered_ += take;
      off += take;
      if (buffered_ == Cipher::kBlockSize) {
        chain_ = cipher_.encrypt_block(chain_);
        buffered_ = 0;
      }
    }
  }

  Bytes do_finish() override {
    // A partial tail is zero-padded: the padding bytes leave the chain
    // untouched, exactly as in the one-shot version.
    if (buffered_ > 0) {
      chain_ = cipher_.encrypt_block(chain_);
      buffered_ = 0;
    }
    return Bytes(chain_.begin(), chain_.end());
  }

 private:
  MacAlgorithm alg_;
  Cipher cipher_;
  typename Cipher::Block chain_{};
  std::size_t buffered_ = 0;
};

/// Streaming CMAC, identical to the one-shot cmac(): the final block gets
/// the K1/K2 subkey treatment, so one block is held back until finish()
/// decides whether it is complete (K1) or needs 10..0 padding (K2).
template <BlockCipher Cipher>
class CmacMac final : public Mac {
 public:
  CmacMac(MacAlgorithm alg, ByteView key)
      : alg_(alg), cipher_(key), subkeys_(cmac_subkeys(cipher_)) {}

  MacAlgorithm algorithm() const override { return alg_; }
  std::size_t tag_size() const override { return Cipher::kBlockSize; }

 protected:
  void do_init(std::uint64_t /*total_bytes*/) override {
    chain_ = typename Cipher::Block{};
    buffered_ = 0;
  }

  void do_update(ByteView chunk) override {
    std::size_t off = 0;
    while (off < chunk.size()) {
      // Only flush a full buffered block when more data follows — the
      // last block of the message must stay buffered for finish().
      if (buffered_ == Cipher::kBlockSize) {
        for (std::size_t i = 0; i < Cipher::kBlockSize; ++i) {
          chain_[i] = static_cast<std::uint8_t>(chain_[i] ^ buffer_[i]);
        }
        chain_ = cipher_.encrypt_block(chain_);
        buffered_ = 0;
      }
      const std::size_t take = std::min(Cipher::kBlockSize - buffered_,
                                        chunk.size() - off);
      std::copy(chunk.begin() + off, chunk.begin() + off + take,
                buffer_.begin() + buffered_);
      buffered_ += take;
      off += take;
    }
  }

  Bytes do_finish() override {
    typename Cipher::Block last{};
    const bool complete = buffered_ == Cipher::kBlockSize;
    std::copy(buffer_.begin(), buffer_.begin() + buffered_, last.begin());
    if (!complete) {
      last[buffered_] = 0x80;
    }
    const auto& subkey = complete ? subkeys_.k1 : subkeys_.k2;
    for (std::size_t i = 0; i < Cipher::kBlockSize; ++i) {
      chain_[i] =
          static_cast<std::uint8_t>(chain_[i] ^ last[i] ^ subkey[i]);
    }
    const auto tag = cipher_.encrypt_block(chain_);
    buffered_ = 0;
    return Bytes(tag.begin(), tag.end());
  }

 private:
  MacAlgorithm alg_;
  Cipher cipher_;
  CmacSubkeys<Cipher> subkeys_;
  typename Cipher::Block chain_{};
  typename Cipher::Block buffer_{};
  std::size_t buffered_ = 0;
};

}  // namespace

std::unique_ptr<Mac> make_hmac_sha1(ByteView key) {
  return std::make_unique<HmacSha1Mac>(key);
}

std::unique_ptr<Mac> make_aes_cbc_mac(ByteView key) {
  return std::make_unique<CbcMac<Aes128>>(MacAlgorithm::kAesCbcMac, key);
}

std::unique_ptr<Mac> make_speck_cbc_mac(ByteView key) {
  return std::make_unique<CbcMac<Speck64_128>>(MacAlgorithm::kSpeckCbcMac,
                                               key);
}

std::unique_ptr<Mac> make_aes_cmac(ByteView key) {
  return std::make_unique<CmacMac<Aes128>>(MacAlgorithm::kAesCmac, key);
}

std::unique_ptr<Mac> make_speck_cmac(ByteView key) {
  return std::make_unique<CmacMac<Speck64_128>>(MacAlgorithm::kSpeckCmac,
                                                key);
}

std::unique_ptr<Mac> make_mac(MacAlgorithm alg, ByteView key) {
  switch (alg) {
    case MacAlgorithm::kHmacSha1:
      return make_hmac_sha1(key);
    case MacAlgorithm::kAesCbcMac:
      return make_aes_cbc_mac(key);
    case MacAlgorithm::kSpeckCbcMac:
      return make_speck_cbc_mac(key);
    case MacAlgorithm::kAesCmac:
      return make_aes_cmac(key);
    case MacAlgorithm::kSpeckCmac:
      return make_speck_cmac(key);
  }
  throw std::invalid_argument("make_mac: unknown algorithm");
}

}  // namespace ratt::crypto
