#include "ratt/crypto/mac.hpp"

#include <stdexcept>

#include "ratt/crypto/block_modes.hpp"
#include "ratt/crypto/cmac.hpp"
#include "ratt/crypto/ct.hpp"
#include "ratt/crypto/hmac.hpp"
#include "ratt/crypto/sha1.hpp"

namespace ratt::crypto {

std::string to_string(MacAlgorithm alg) {
  switch (alg) {
    case MacAlgorithm::kHmacSha1:
      return "HMAC-SHA1";
    case MacAlgorithm::kAesCbcMac:
      return "AES-128-CBC-MAC";
    case MacAlgorithm::kSpeckCbcMac:
      return "Speck-64/128-CBC-MAC";
    case MacAlgorithm::kAesCmac:
      return "AES-128-CMAC";
    case MacAlgorithm::kSpeckCmac:
      return "Speck-64/128-CMAC";
  }
  return "unknown";
}

bool Mac::verify(ByteView message, ByteView tag) const {
  const Bytes expected = compute(message);
  return ct_equal(expected, tag);
}

namespace {

class HmacSha1Mac final : public Mac {
 public:
  explicit HmacSha1Mac(ByteView key) : key_(key.begin(), key.end()) {}

  MacAlgorithm algorithm() const override { return MacAlgorithm::kHmacSha1; }
  std::size_t tag_size() const override { return Sha1::kDigestSize; }

  Bytes compute(ByteView message) const override {
    const auto digest = Hmac<Sha1>::mac(key_, message);
    return Bytes(digest.begin(), digest.end());
  }

 private:
  Bytes key_;
};

template <BlockCipher Cipher>
class CbcMac final : public Mac {
 public:
  CbcMac(MacAlgorithm alg, ByteView key) : alg_(alg), cipher_(key) {}

  MacAlgorithm algorithm() const override { return alg_; }
  std::size_t tag_size() const override { return Cipher::kBlockSize; }

  Bytes compute(ByteView message) const override {
    const auto tag = cbc_mac(cipher_, message);
    return Bytes(tag.begin(), tag.end());
  }

 private:
  MacAlgorithm alg_;
  Cipher cipher_;
};

template <BlockCipher Cipher>
class CmacMac final : public Mac {
 public:
  CmacMac(MacAlgorithm alg, ByteView key) : alg_(alg), cipher_(key) {}

  MacAlgorithm algorithm() const override { return alg_; }
  std::size_t tag_size() const override { return Cipher::kBlockSize; }

  Bytes compute(ByteView message) const override {
    const auto tag = cmac(cipher_, message);
    return Bytes(tag.begin(), tag.end());
  }

 private:
  MacAlgorithm alg_;
  Cipher cipher_;
};

}  // namespace

std::unique_ptr<Mac> make_hmac_sha1(ByteView key) {
  return std::make_unique<HmacSha1Mac>(key);
}

std::unique_ptr<Mac> make_aes_cbc_mac(ByteView key) {
  return std::make_unique<CbcMac<Aes128>>(MacAlgorithm::kAesCbcMac, key);
}

std::unique_ptr<Mac> make_speck_cbc_mac(ByteView key) {
  return std::make_unique<CbcMac<Speck64_128>>(MacAlgorithm::kSpeckCbcMac,
                                               key);
}

std::unique_ptr<Mac> make_aes_cmac(ByteView key) {
  return std::make_unique<CmacMac<Aes128>>(MacAlgorithm::kAesCmac, key);
}

std::unique_ptr<Mac> make_speck_cmac(ByteView key) {
  return std::make_unique<CmacMac<Speck64_128>>(MacAlgorithm::kSpeckCmac,
                                                key);
}

std::unique_ptr<Mac> make_mac(MacAlgorithm alg, ByteView key) {
  switch (alg) {
    case MacAlgorithm::kHmacSha1:
      return make_hmac_sha1(key);
    case MacAlgorithm::kAesCbcMac:
      return make_aes_cbc_mac(key);
    case MacAlgorithm::kSpeckCbcMac:
      return make_speck_cbc_mac(key);
    case MacAlgorithm::kAesCmac:
      return make_aes_cmac(key);
    case MacAlgorithm::kSpeckCmac:
      return make_speck_cmac(key);
  }
  throw std::invalid_argument("make_mac: unknown algorithm");
}

}  // namespace ratt::crypto
