// Internal dispatch seam between the baseline and AVX2 builds of the
// multi-buffer SHA-1 kernel. Not part of the public API.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ratt/crypto/sha1.hpp"
#include "ratt/crypto/sha1xn.hpp"

namespace ratt::crypto::detail {

/// True iff the AVX2 kernel was compiled in AND the CPU supports it.
bool sha1xn_avx2_supported();

void hash_lanes4_avx2(const Sha1::Midstate* mids, const Sha1xN::LaneMsg* msgs,
                      std::size_t n,
                      std::uint8_t (*digests)[Sha1::kDigestSize]);
void hash_lanes8_avx2(const Sha1::Midstate* mids, const Sha1xN::LaneMsg* msgs,
                      std::size_t n,
                      std::uint8_t (*digests)[Sha1::kDigestSize]);

}  // namespace ratt::crypto::detail
