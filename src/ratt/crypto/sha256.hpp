// SHA-256 (FIPS 180-4).
//
// Used by secure boot (image digests compared against the signed reference
// hash in ROM) and by the HMAC-DRBG that generates nonces and ECDSA
// per-signature secrets.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "ratt/crypto/bytes.hpp"

namespace ratt::crypto {

/// Incremental SHA-256. Usable as `Hash` in Hmac<Hash>.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  Digest finish();

  static Digest hash(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace ratt::crypto
