#include "ratt/crypto/sha1xn.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "ratt/crypto/sha1xn_detail.hpp"
#include "ratt/crypto/sha_shani.hpp"

namespace ratt::crypto {

#define RATT_SHA1XN_NS sha1xn_base
#include "ratt/crypto/sha1xn_kernel.inc"
#undef RATT_SHA1XN_NS

void Sha1xN::hash_many(const Sha1::Midstate* mids, const LaneMsg* msgs,
                       std::size_t n,
                       std::uint8_t (*digests)[Sha1::kDigestSize]) {
  if (n == 0) {
    return;
  }
  if (n > kMaxLanes) {
    throw std::invalid_argument("Sha1xN::hash_many: too many lanes");
  }
  // Hardware SHA beats the 4/8-wide software lanes: one sha1rnds4-based
  // compression per lane is still ~3x faster than an AVX2 lane slot.
  static const bool use_ni = detail::sha_ni_supported();
  if (use_ni) {
    detail::hash_lanes_ni(mids, msgs, n, digests);
    return;
  }
  static const bool use_avx2 = detail::sha1xn_avx2_supported();
  if (n <= 4) {
    if (use_avx2) {
      detail::hash_lanes4_avx2(mids, msgs, n, digests);
    } else {
      sha1xn_base::hash_lanes<4>(mids, msgs, n, digests);
    }
  } else {
    if (use_avx2) {
      detail::hash_lanes8_avx2(mids, msgs, n, digests);
    } else {
      sha1xn_base::hash_lanes<8>(mids, msgs, n, digests);
    }
  }
}

void Sha1xN::hash_many(const ByteView* msgs, std::size_t n,
                       std::uint8_t (*digests)[Sha1::kDigestSize]) {
  LaneMsg lm[kMaxLanes];
  if (n > kMaxLanes) {
    throw std::invalid_argument("Sha1xN::hash_many: too many lanes");
  }
  for (std::size_t j = 0; j < n; ++j) {
    lm[j] = LaneMsg{msgs[j], ByteView()};
  }
  hash_many(nullptr, lm, n, digests);
}

}  // namespace ratt::crypto
