// Internal dispatch seam for the x86 SHA extension (SHA-NI) kernels.
// Not part of the public API: Sha1/Sha256 route their compression
// function here when the CPU has the instructions, and Sha1xN prefers
// the per-lane NI path over the multi-buffer AVX2 kernel (one hardware
// compression per lane beats eight software lanes in parallel). All
// paths are bit-identical to the portable implementations — the CAVP
// known-answer suite and the lockstep fuzz pin that.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ratt/crypto/sha1.hpp"
#include "ratt/crypto/sha1xn.hpp"

namespace ratt::crypto::detail {

/// True iff the SHA-NI kernels were compiled in AND the CPU has them.
bool sha_ni_supported();

/// One SHA-256 compression: state is the eight chaining words (host
/// order), block is 64 message bytes. Call only when sha_ni_supported().
void sha256_compress_ni(std::uint32_t* state, const std::uint8_t* block);

/// One SHA-1 compression: state is the five chaining words.
void sha1_compress_ni(std::uint32_t* state, const std::uint8_t* block);

/// Per-lane SHA-1 over (midstate, head || tail) with NI compressions —
/// the hardware-backed implementation of Sha1xN::hash_many.
void hash_lanes_ni(const Sha1::Midstate* mids, const Sha1xN::LaneMsg* msgs,
                   std::size_t n,
                   std::uint8_t (*digests)[Sha1::kDigestSize]);

}  // namespace ratt::crypto::detail
