// CBC mode and CBC-MAC, generic over a block cipher.
//
// Table 1 prices AES-128 and Speck 64/128 "(CBC)"; the paper's request
// authentication uses a CBC-MAC over the (single-block) attestation
// request. For multi-block inputs we length-prepend, which restores
// CBC-MAC security for variable-length messages.
#pragma once

#include <concepts>
#include <optional>
#include <cstddef>
#include <stdexcept>

#include "ratt/crypto/bytes.hpp"

namespace ratt::crypto {

/// Requirements on the cipher parameter of the CBC helpers.
template <typename C>
concept BlockCipher = requires(const C c, typename C::Block b) {
  { C::kBlockSize } -> std::convertible_to<std::size_t>;
  { C::kKeySize } -> std::convertible_to<std::size_t>;
  { c.encrypt_block(b) } -> std::convertible_to<typename C::Block>;
  { c.decrypt_block(b) } -> std::convertible_to<typename C::Block>;
};

/// CBC-encrypt `plaintext` (length must be a block multiple) under `iv`.
template <BlockCipher Cipher>
Bytes cbc_encrypt(const Cipher& cipher, const typename Cipher::Block& iv,
                  ByteView plaintext) {
  if (plaintext.size() % Cipher::kBlockSize != 0) {
    throw std::invalid_argument("cbc_encrypt: input not block-aligned");
  }
  Bytes out;
  out.reserve(plaintext.size());
  typename Cipher::Block chain = iv;
  for (std::size_t off = 0; off < plaintext.size();
       off += Cipher::kBlockSize) {
    typename Cipher::Block block;
    for (std::size_t i = 0; i < Cipher::kBlockSize; ++i) {
      block[i] = static_cast<std::uint8_t>(plaintext[off + i] ^ chain[i]);
    }
    chain = cipher.encrypt_block(block);
    out.insert(out.end(), chain.begin(), chain.end());
  }
  return out;
}

/// CBC-decrypt `ciphertext` (length must be a block multiple) under `iv`.
template <BlockCipher Cipher>
Bytes cbc_decrypt(const Cipher& cipher, const typename Cipher::Block& iv,
                  ByteView ciphertext) {
  if (ciphertext.size() % Cipher::kBlockSize != 0) {
    throw std::invalid_argument("cbc_decrypt: input not block-aligned");
  }
  Bytes out;
  out.reserve(ciphertext.size());
  typename Cipher::Block chain = iv;
  for (std::size_t off = 0; off < ciphertext.size();
       off += Cipher::kBlockSize) {
    typename Cipher::Block block;
    for (std::size_t i = 0; i < Cipher::kBlockSize; ++i) {
      block[i] = ciphertext[off + i];
    }
    const typename Cipher::Block decrypted = cipher.decrypt_block(block);
    for (std::size_t i = 0; i < Cipher::kBlockSize; ++i) {
      out.push_back(static_cast<std::uint8_t>(decrypted[i] ^ chain[i]));
    }
    chain = block;
  }
  return out;
}

/// PKCS#7 padding to a multiple of `block_size` (always adds 1..block_size
/// bytes, so the original length is recoverable).
inline Bytes pkcs7_pad(ByteView data, std::size_t block_size) {
  const std::size_t pad = block_size - (data.size() % block_size);
  Bytes out(data.begin(), data.end());
  out.insert(out.end(), pad, static_cast<std::uint8_t>(pad));
  return out;
}

/// Inverse of pkcs7_pad; nullopt on malformed padding. Not constant-time:
/// callers must authenticate before unpadding (encrypt-then-MAC).
inline std::optional<Bytes> pkcs7_unpad(ByteView data,
                                        std::size_t block_size) {
  if (data.empty() || data.size() % block_size != 0) return std::nullopt;
  const std::uint8_t pad = data.back();
  if (pad == 0 || pad > block_size || pad > data.size()) return std::nullopt;
  for (std::size_t i = data.size() - pad; i < data.size(); ++i) {
    if (data[i] != pad) return std::nullopt;
  }
  return Bytes(data.begin(), data.end() - pad);
}

/// Length-prepended CBC-MAC with zero IV. The message length is encoded in
/// the first block, which makes the MAC secure for variable-length
/// messages (plain CBC-MAC is only secure for fixed-length input).
/// The tail block is zero-padded.
template <BlockCipher Cipher>
typename Cipher::Block cbc_mac(const Cipher& cipher, ByteView message) {
  typename Cipher::Block chain{};  // zero IV

  // Block 0: message length in bytes, little-endian, zero-padded.
  typename Cipher::Block len_block{};
  std::uint64_t len = message.size();
  for (std::size_t i = 0; i < sizeof(len) && i < Cipher::kBlockSize; ++i) {
    len_block[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  chain = cipher.encrypt_block(len_block);

  for (std::size_t off = 0; off < message.size(); off += Cipher::kBlockSize) {
    typename Cipher::Block block{};
    const std::size_t take =
        std::min(Cipher::kBlockSize, message.size() - off);
    for (std::size_t i = 0; i < take; ++i) {
      block[i] = static_cast<std::uint8_t>(message[off + i] ^ chain[i]);
    }
    for (std::size_t i = take; i < Cipher::kBlockSize; ++i) {
      block[i] = chain[i];
    }
    chain = cipher.encrypt_block(block);
  }
  return chain;
}

}  // namespace ratt::crypto
