// Runtime-polymorphic MAC interface.
//
// The attestation layer is parameterized over the MAC used for request
// authentication and memory measurement, so every primitive the paper
// evaluates (HMAC-SHA1, AES-128 CBC-MAC, Speck 64/128 CBC-MAC) can be
// swapped in and priced (Table 1 / Sec. 4.1).
//
// All implementations are *streaming*: init()/update()/finish() absorb
// the message in chunks, so a 512 KB memory measurement never has to be
// materialized as one contiguous buffer. Key schedules (and, for HMAC,
// the ipad/opad midstates) are computed once at construction and reused
// across invocations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ratt/crypto/aes128.hpp"
#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/speck.hpp"

namespace ratt::crypto {

/// Identifies the MAC algorithm in protocol messages and timing models.
enum class MacAlgorithm : std::uint8_t {
  kHmacSha1 = 0,
  kAesCbcMac = 1,
  kSpeckCbcMac = 2,
  kAesCmac = 3,    // NIST SP 800-38B / RFC 4493
  kSpeckCmac = 4,  // CMAC over Speck 64/128 (Rb = 0x1B)
};

/// Human-readable algorithm name ("HMAC-SHA1", ...).
std::string to_string(MacAlgorithm alg);

/// Tag length in bytes, without constructing a Mac (layout planning:
/// e.g. sizing the incremental page-MAC cache before the key is read).
std::size_t tag_size(MacAlgorithm alg);

/// A keyed MAC. Implementations hold the (expanded) key; one object can
/// compute any number of tags, one at a time.
class Mac {
 public:
  virtual ~Mac() = default;

  virtual MacAlgorithm algorithm() const = 0;

  /// Tag length in bytes.
  virtual std::size_t tag_size() const = 0;

  /// Begin a streaming computation over a message of exactly
  /// `total_bytes`. The length must be declared up front because the
  /// length-prepended CBC-MAC folds it into its first cipher block;
  /// HMAC and CMAC ignore the value but finish() still checks it
  /// against the bytes actually streamed (a mismatch is a caller bug).
  /// Calling init() abandons any computation in flight.
  void init(std::uint64_t total_bytes);

  /// Absorb the next `chunk` of the message. Throws std::logic_error if
  /// it would push the stream past the declared total.
  void update(ByteView chunk);

  /// Finalize and return the tag. Throws std::logic_error if the bytes
  /// streamed since init() differ from the declared total, or if no
  /// init() is pending.
  Bytes finish();

  /// One-shot convenience: init(size) + update + finish.
  Bytes compute(ByteView message);

  /// Constant-time tag verification.
  bool verify(ByteView message, ByteView tag);

 protected:
  virtual void do_init(std::uint64_t total_bytes) = 0;
  virtual void do_update(ByteView chunk) = 0;
  virtual Bytes do_finish() = 0;

 private:
  std::uint64_t declared_bytes_ = 0;
  std::uint64_t streamed_bytes_ = 0;
  bool streaming_ = false;
};

/// HMAC-SHA1 (RFC 2104); 20-byte tags.
std::unique_ptr<Mac> make_hmac_sha1(ByteView key);

/// AES-128 CBC-MAC (length-prepended); 16-byte tags. Key expansion runs at
/// construction, matching the precomputed-schedule assumption of Sec. 4.1.
std::unique_ptr<Mac> make_aes_cbc_mac(ByteView key);

/// Speck 64/128 CBC-MAC (length-prepended); 8-byte tags.
std::unique_ptr<Mac> make_speck_cbc_mac(ByteView key);

/// AES-128 CMAC (RFC 4493); 16-byte tags.
std::unique_ptr<Mac> make_aes_cmac(ByteView key);

/// Speck 64/128 CMAC; 8-byte tags.
std::unique_ptr<Mac> make_speck_cmac(ByteView key);

/// Factory keyed by algorithm id.
std::unique_ptr<Mac> make_mac(MacAlgorithm alg, ByteView key);

}  // namespace ratt::crypto
