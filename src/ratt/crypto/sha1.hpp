// SHA-1 (FIPS 180-4).
//
// The paper's attestation measurement and request authentication use
// SHA1-HMAC (RFC 2104 over SHA-1), matching Table 1's "SHA1-HMAC" column.
// SHA-1 is cryptographically broken for collision resistance, but remains
// the primitive the paper evaluates; HMAC-SHA1 is unaffected by the known
// collision attacks. The library also provides SHA-256 for secure boot.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "ratt/crypto/bytes.hpp"

namespace ratt::crypto {

/// Incremental SHA-1. Usable as `Hash` in Hmac<Hash>.
class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1() { reset(); }

  /// Restore the initial state; the object can be reused after finish().
  void reset();

  /// Absorb `data`. May be called any number of times.
  void update(ByteView data);

  /// Finalize and return the digest. The object must be reset() before reuse.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(ByteView data);

  /// Block-aligned compression state: the five chaining words plus the
  /// byte count absorbed so far. Exportable only when no partial block
  /// is buffered (absorbed length a multiple of kBlockSize) — exactly
  /// the shape of HMAC ipad/opad midstates. Seeds the multi-buffer
  /// engine's lanes (Sha1xN / MacBatch).
  struct Midstate {
    std::array<std::uint32_t, 5> h;
    std::uint64_t total_len;
  };

  /// Export the current block-aligned state. Throws std::logic_error if
  /// a partial block is buffered.
  Midstate midstate() const;

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace ratt::crypto
