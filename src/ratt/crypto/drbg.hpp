// HMAC-DRBG (NIST SP 800-90A) over SHA-256.
//
// Deterministic randomness for the simulation: verifier nonces, key
// generation, and ECDSA per-signature secrets all come from seeded DRBG
// instances so every experiment in the repository is reproducible.
#pragma once

#include <array>
#include <cstdint>

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/hmac.hpp"
#include "ratt/crypto/sha256.hpp"

namespace ratt::crypto {

/// Deterministic random bit generator. Not thread-safe.
class HmacDrbg {
 public:
  /// Instantiate from seed material (entropy || nonce || personalization).
  explicit HmacDrbg(ByteView seed);

  /// Generate `n` pseudorandom bytes.
  Bytes generate(std::size_t n);

  /// Mix fresh seed material into the state.
  void reseed(ByteView seed);

  /// Uniform value in [0, bound) via rejection sampling. bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

 private:
  void update(ByteView provided);
  void rekey();

  std::array<std::uint8_t, Sha256::kDigestSize> key_{};
  std::array<std::uint8_t, Sha256::kDigestSize> value_{};
  // HMAC keyed on key_, rebuilt only when the key changes: every
  // HMAC(K, ...) inside generate()/update() then skips the two
  // key-padding compressions. Output bytes are unchanged.
  Hmac<Sha256> mac_;
};

}  // namespace ratt::crypto
