#include "ratt/crypto/ct.hpp"

namespace ratt::crypto {

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = static_cast<std::uint8_t>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

}  // namespace ratt::crypto
