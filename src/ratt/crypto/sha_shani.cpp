// x86 SHA extension (SHA-NI) kernels. This translation unit is compiled
// with -msha -msse4.1 when the compiler accepts the flags (see
// crypto/CMakeLists.txt); every entry point is guarded by a runtime
// __builtin_cpu_supports("sha") check in the dispatchers, so the binary
// stays safe on CPUs without the extension. The round sequences follow
// the canonical Intel formulation: four rounds per sha1rnds4/sha256rnds2
// pair with the message schedule interleaved through msg1/msg2.
#include "ratt/crypto/sha_shani.hpp"

#include <algorithm>
#include <cstring>

#if defined(__SHA__) && defined(__SSE4_1__) && \
    (defined(__GNUC__) || defined(__clang__))
#define RATT_HAVE_SHA_NI 1
#include <immintrin.h>
#endif

namespace ratt::crypto::detail {

bool sha_ni_supported() {
#if defined(RATT_HAVE_SHA_NI)
  return __builtin_cpu_supports("sha");
#else
  return false;
#endif
}

#if defined(RATT_HAVE_SHA_NI)

void sha256_compress_ni(std::uint32_t* state, const std::uint8_t* block) {
  __m128i state0, state1, msg, tmp;
  __m128i msg0, msg1, msg2, msg3;
  const __m128i mask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Load and swizzle the chaining value into the ABEF/CDGH form the
  // sha256rnds2 instruction consumes.
  tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 0));
  state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xb1);
  state1 = _mm_shuffle_epi32(state1, 0x1b);
  state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xf0);

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;

  // Rounds 0-3
  msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 0));
  msg0 = _mm_shuffle_epi8(msg, mask);
  msg = _mm_add_epi32(
      msg0, _mm_set_epi64x(0xe9b5dba5b5c0fbcfLL, 0x71374491428a2f98LL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0e);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 4-7
  msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16));
  msg1 = _mm_shuffle_epi8(msg1, mask);
  msg = _mm_add_epi32(
      msg1, _mm_set_epi64x(0xab1c5ed5923f82a4LL, 0x59f111f13956c25bLL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0e);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 8-11
  msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32));
  msg2 = _mm_shuffle_epi8(msg2, mask);
  msg = _mm_add_epi32(
      msg2, _mm_set_epi64x(0x550c7dc3243185beLL, 0x12835b01d807aa98LL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0e);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 12-15
  msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48));
  msg3 = _mm_shuffle_epi8(msg3, mask);
  msg = _mm_add_epi32(
      msg3, _mm_set_epi64x(0xc19bf1749bdc06a7LL, 0x80deb1fe72be5d74LL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0e);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // The steady-state pattern for rounds 16..51: consume msgA, extend
  // msgB via msg2, prime msgD via msg1.
#define RATT_SHA256_4ROUNDS(msga, msgb, msgc, msgd, k_hi, k_lo)       \
  msg = _mm_add_epi32(msga, _mm_set_epi64x(k_hi, k_lo));              \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);                \
  tmp = _mm_alignr_epi8(msga, msgd, 4);                               \
  msgb = _mm_add_epi32(msgb, tmp);                                    \
  msgb = _mm_sha256msg2_epu32(msgb, msga);                            \
  msg = _mm_shuffle_epi32(msg, 0x0e);                                 \
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);                \
  msgd = _mm_sha256msg1_epu32(msgd, msga)

  RATT_SHA256_4ROUNDS(msg0, msg1, msg2, msg3,  // rounds 16-19
                      0x240ca1cc0fc19dc6LL, 0xefbe4786e49b69c1LL);
  RATT_SHA256_4ROUNDS(msg1, msg2, msg3, msg0,  // rounds 20-23
                      0x76f988da5cb0a9dcLL, 0x4a7484aa2de92c6fLL);
  RATT_SHA256_4ROUNDS(msg2, msg3, msg0, msg1,  // rounds 24-27
                      0xbf597fc7b00327c8LL, 0xa831c66d983e5152LL);
  RATT_SHA256_4ROUNDS(msg3, msg0, msg1, msg2,  // rounds 28-31
                      0x1429296706ca6351LL, 0xd5a79147c6e00bf3LL);
  RATT_SHA256_4ROUNDS(msg0, msg1, msg2, msg3,  // rounds 32-35
                      0x53380d134d2c6dfcLL, 0x2e1b213827b70a85LL);
  RATT_SHA256_4ROUNDS(msg1, msg2, msg3, msg0,  // rounds 36-39
                      0x92722c8581c2c92eLL, 0x766a0abb650a7354LL);
  RATT_SHA256_4ROUNDS(msg2, msg3, msg0, msg1,  // rounds 40-43
                      0xc76c51a3c24b8b70LL, 0xa81a664ba2bfe8a1LL);
  RATT_SHA256_4ROUNDS(msg3, msg0, msg1, msg2,  // rounds 44-47
                      0x106aa070f40e3585LL, 0xd6990624d192e819LL);
  RATT_SHA256_4ROUNDS(msg0, msg1, msg2, msg3,  // rounds 48-51
                      0x34b0bcb52748774cLL, 0x1e376c0819a4c116LL);
#undef RATT_SHA256_4ROUNDS

  // Rounds 52-55 (the schedule tapers: only msg2 extensions remain)
  msg = _mm_add_epi32(
      msg1, _mm_set_epi64x(0x682e6ff35b9cca4fLL, 0x4ed8aa4a391c0cb3LL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0e);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 56-59
  msg = _mm_add_epi32(
      msg2, _mm_set_epi64x(0x8cc7020884c87814LL, 0x78a5636f748f82eeLL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0e);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 60-63
  msg = _mm_add_epi32(
      msg3, _mm_set_epi64x(0xc67178f2bef9a3f7LL, 0xa4506ceb90befffaLL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0e);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  // Un-swizzle ABEF/CDGH back to ABCD/EFGH.
  tmp = _mm_shuffle_epi32(state0, 0x1b);
  state1 = _mm_shuffle_epi32(state1, 0xb1);
  state0 = _mm_blend_epi16(tmp, state1, 0xf0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 0), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

void sha1_compress_ni(std::uint32_t* state, const std::uint8_t* block) {
  __m128i abcd, e0, e1;
  __m128i msg0, msg1, msg2, msg3;
  const __m128i mask =
      _mm_set_epi64x(0x0001020304050607LL, 0x08090a0b0c0d0e0fLL);

  abcd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  e0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  abcd = _mm_shuffle_epi32(abcd, 0x1b);

  const __m128i abcd_save = abcd;
  const __m128i e0_save = e0;

  // Rounds 0-3
  msg0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 0));
  msg0 = _mm_shuffle_epi8(msg0, mask);
  e0 = _mm_add_epi32(e0, msg0);
  e1 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

  // Rounds 4-7
  msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16));
  msg1 = _mm_shuffle_epi8(msg1, mask);
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);

  // Rounds 8-11
  msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32));
  msg2 = _mm_shuffle_epi8(msg2, mask);
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  // Rounds 12-15
  msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48));
  msg3 = _mm_shuffle_epi8(msg3, mask);
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  // Steady state for rounds 16..67: the E accumulator alternates, msgA
  // is consumed, msgB finishes via msg2, msgC primes via msg1, msgD
  // takes the xor. `sel` picks the round function (0..3 per 20 rounds).
#define RATT_SHA1_4ROUNDS(ein, eout, msga, msgb, msgc, msgd, sel) \
  ein = _mm_sha1nexte_epu32(ein, msga);                           \
  eout = abcd;                                                    \
  msgb = _mm_sha1msg2_epu32(msgb, msga);                          \
  abcd = _mm_sha1rnds4_epu32(abcd, ein, sel);                     \
  msgc = _mm_sha1msg1_epu32(msgc, msga);                          \
  msgd = _mm_xor_si128(msgd, msga)

  RATT_SHA1_4ROUNDS(e0, e1, msg0, msg1, msg3, msg2, 0);  // rounds 16-19
  RATT_SHA1_4ROUNDS(e1, e0, msg1, msg2, msg0, msg3, 1);  // rounds 20-23
  RATT_SHA1_4ROUNDS(e0, e1, msg2, msg3, msg1, msg0, 1);  // rounds 24-27
  RATT_SHA1_4ROUNDS(e1, e0, msg3, msg0, msg2, msg1, 1);  // rounds 28-31
  RATT_SHA1_4ROUNDS(e0, e1, msg0, msg1, msg3, msg2, 1);  // rounds 32-35
  RATT_SHA1_4ROUNDS(e1, e0, msg1, msg2, msg0, msg3, 1);  // rounds 36-39
  RATT_SHA1_4ROUNDS(e0, e1, msg2, msg3, msg1, msg0, 2);  // rounds 40-43
  RATT_SHA1_4ROUNDS(e1, e0, msg3, msg0, msg2, msg1, 2);  // rounds 44-47
  RATT_SHA1_4ROUNDS(e0, e1, msg0, msg1, msg3, msg2, 2);  // rounds 48-51
  RATT_SHA1_4ROUNDS(e1, e0, msg1, msg2, msg0, msg3, 2);  // rounds 52-55
  RATT_SHA1_4ROUNDS(e0, e1, msg2, msg3, msg1, msg0, 2);  // rounds 56-59
  RATT_SHA1_4ROUNDS(e1, e0, msg3, msg0, msg2, msg1, 3);  // rounds 60-63
  RATT_SHA1_4ROUNDS(e0, e1, msg0, msg1, msg3, msg2, 3);  // rounds 64-67
#undef RATT_SHA1_4ROUNDS

  // Rounds 68-71 (schedule tapers off)
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
  msg3 = _mm_xor_si128(msg3, msg1);

  // Rounds 72-75
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);

  // Rounds 76-79
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

  e0 = _mm_sha1nexte_epu32(e0, e0_save);
  abcd = _mm_add_epi32(abcd, abcd_save);

  abcd = _mm_shuffle_epi32(abcd, 0x1b);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abcd);
  state[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e0, 3));
}

namespace {

// One lane of hash_lanes_ni: stream head || tail through the NI
// compressor with the standard merkle-damgard buffering + padding.
// Mirrors Sha1::update/finish exactly (same padding, same length field).
void hash_one_lane(const Sha1::Midstate* mid, const Sha1xN::LaneMsg& msg,
                   std::uint8_t* digest) {
  std::uint32_t h[5];
  std::uint64_t total;
  if (mid != nullptr) {
    std::memcpy(h, mid->h.data(), sizeof(h));
    total = mid->total_len;
  } else {
    h[0] = 0x67452301u;
    h[1] = 0xefcdab89u;
    h[2] = 0x98badcfeu;
    h[3] = 0x10325476u;
    h[4] = 0xc3d2e1f0u;
    total = 0;
  }
  std::uint8_t buf[Sha1::kBlockSize];
  std::size_t buf_len = 0;
  const ByteView parts[2] = {msg.head, msg.tail};
  for (const ByteView part : parts) {
    std::size_t off = 0;
    total += part.size();
    if (buf_len > 0) {
      const std::size_t take =
          std::min(Sha1::kBlockSize - buf_len, part.size());
      std::memcpy(buf + buf_len, part.data(), take);
      buf_len += take;
      off += take;
      if (buf_len == Sha1::kBlockSize) {
        sha1_compress_ni(h, buf);
        buf_len = 0;
      }
    }
    while (off + Sha1::kBlockSize <= part.size()) {
      sha1_compress_ni(h, part.data() + off);
      off += Sha1::kBlockSize;
    }
    if (off < part.size()) {
      std::memcpy(buf, part.data() + off, part.size() - off);
      buf_len = part.size() - off;
    }
  }
  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  const std::uint64_t bit_len = total * 8;
  buf[buf_len++] = 0x80;
  if (buf_len > Sha1::kBlockSize - 8) {
    std::memset(buf + buf_len, 0, Sha1::kBlockSize - buf_len);
    sha1_compress_ni(h, buf);
    buf_len = 0;
  }
  std::memset(buf + buf_len, 0, Sha1::kBlockSize - 8 - buf_len);
  store_be64(buf + Sha1::kBlockSize - 8, bit_len);
  sha1_compress_ni(h, buf);
  for (int i = 0; i < 5; ++i) store_be32(digest + 4 * i, h[i]);
}

}  // namespace

void hash_lanes_ni(const Sha1::Midstate* mids, const Sha1xN::LaneMsg* msgs,
                   std::size_t n,
                   std::uint8_t (*digests)[Sha1::kDigestSize]) {
  for (std::size_t j = 0; j < n; ++j) {
    hash_one_lane(mids != nullptr ? &mids[j] : nullptr, msgs[j], digests[j]);
  }
}

#else  // !RATT_HAVE_SHA_NI

void sha256_compress_ni(std::uint32_t*, const std::uint8_t*) {}
void sha1_compress_ni(std::uint32_t*, const std::uint8_t*) {}
void hash_lanes_ni(const Sha1::Midstate*, const Sha1xN::LaneMsg*,
                   std::size_t, std::uint8_t (*)[Sha1::kDigestSize]) {}

#endif

}  // namespace ratt::crypto::detail
