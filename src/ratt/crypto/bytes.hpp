// Byte-buffer helpers shared by all crypto primitives.
//
// All protocol and crypto code in this library works on contiguous byte
// ranges. `Bytes` is the owning type, `std::span<const std::uint8_t>` the
// non-owning view taken by every primitive.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ratt::crypto {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Encode a byte range as lowercase hex.
std::string to_hex(ByteView data);

/// Decode a hex string (even length, upper or lower case).
/// Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Bytes from a string literal / std::string contents (no terminator).
Bytes from_string(std::string_view s);

// Big-endian and little-endian load/store used by the block primitives.
std::uint32_t load_be32(const std::uint8_t* p);
std::uint64_t load_be64(const std::uint8_t* p);
void store_be32(std::uint8_t* p, std::uint32_t v);
void store_be64(std::uint8_t* p, std::uint64_t v);
std::uint32_t load_le32(const std::uint8_t* p);
std::uint64_t load_le64(const std::uint8_t* p);
void store_le32(std::uint8_t* p, std::uint32_t v);
void store_le64(std::uint8_t* p, std::uint64_t v);

/// Append `data` to `out`.
void append(Bytes& out, ByteView data);

}  // namespace ratt::crypto
