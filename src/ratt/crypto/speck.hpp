// Speck 64/128 lightweight block cipher (Beaulieu et al., ePrint 2013/404).
//
// The paper (Sec. 4.1, Table 1) evaluates Speck 64/128 — 64-bit block,
// 128-bit key, 27 rounds — as the cheapest request-authentication
// primitive for a low-end prover: 0.015 ms per block once the key schedule
// is precomputed, versus 0.430 ms for an HMAC-SHA1 validation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "ratt/crypto/bytes.hpp"

namespace ratt::crypto {

/// Speck 64/128. Satisfies the BlockCipher concept in block_modes.hpp
/// (8-byte block, 16-byte key).
class Speck64_128 {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 27;
  using Block = std::array<std::uint8_t, kBlockSize>;

  /// Runs key expansion (the "Key exp." column of Table 1).
  explicit Speck64_128(ByteView key);

  Block encrypt_block(const Block& plaintext) const;
  Block decrypt_block(const Block& ciphertext) const;

 private:
  std::array<std::uint32_t, kRounds> round_keys_{};
};

}  // namespace ratt::crypto
