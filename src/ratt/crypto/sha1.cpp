#include "ratt/crypto/sha1.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "ratt/crypto/sha_shani.hpp"

namespace ratt::crypto {

void Sha1::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha1::update(ByteView data) {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Sha1::Digest Sha1::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(ByteView(&pad_byte, 1));
  static constexpr std::uint8_t kZero[kBlockSize] = {};
  while (buffer_len_ != kBlockSize - 8) {
    const std::size_t want = (buffer_len_ < kBlockSize - 8)
                                 ? (kBlockSize - 8 - buffer_len_)
                                 : (kBlockSize - buffer_len_);
    update(ByteView(kZero, want));
  }
  std::uint8_t len_bytes[8];
  store_be64(len_bytes, bit_len);
  update(ByteView(len_bytes, 8));

  Digest out{};
  for (std::size_t i = 0; i < 5; ++i) {
    store_be32(out.data() + 4 * i, state_[i]);
  }
  return out;
}

Sha1::Digest Sha1::hash(ByteView data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

Sha1::Midstate Sha1::midstate() const {
  if (buffer_len_ != 0) {
    throw std::logic_error("Sha1::midstate: partial block buffered");
  }
  return Midstate{state_, total_len_};
}

void Sha1::process_block(const std::uint8_t* block) {
  static const bool kUseNi = detail::sha_ni_supported();
  if (kUseNi) {
    detail::sha1_compress_ni(state_.data(), block);
    return;
  }
  std::uint32_t w[16];
  for (int i = 0; i < 16; ++i) {
    w[i] = load_be32(block + 4 * i);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];

  // Four unrolled 20-round quarters with a 16-word schedule ring: the
  // per-round f/k selection branches of the naive loop cost ~15% of the
  // whole compression once everything else is streamlined.
  const auto mix = [&](std::uint32_t f, std::uint32_t k, std::uint32_t wi) {
    const std::uint32_t tmp = std::rotl(a, 5) + f + e + k + wi;
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = tmp;
  };
  const auto sched = [&](int i) {
    const std::uint32_t x = std::rotl(
        w[(i - 3) & 15] ^ w[(i - 8) & 15] ^ w[(i - 14) & 15] ^ w[i & 15], 1);
    w[i & 15] = x;
    return x;
  };

  int i = 0;
  for (; i < 16; ++i) {
    mix((b & c) | (~b & d), 0x5a827999u, w[i]);
  }
  for (; i < 20; ++i) {
    mix((b & c) | (~b & d), 0x5a827999u, sched(i));
  }
  for (; i < 40; ++i) {
    mix(b ^ c ^ d, 0x6ed9eba1u, sched(i));
  }
  for (; i < 60; ++i) {
    mix((b & c) | (b & d) | (c & d), 0x8f1bbcdcu, sched(i));
  }
  for (; i < 80; ++i) {
    mix(b ^ c ^ d, 0xca62c1d6u, sched(i));
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

}  // namespace ratt::crypto
