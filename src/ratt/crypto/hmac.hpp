// HMAC (RFC 2104 / FIPS 198-1), generic over the underlying hash.
//
// HMAC-SHA1 is the paper's reference MAC for both request authentication
// (Sec. 4.1) and the prover's memory measurement (Sec. 3.1, Table 1).
#pragma once

#include <concepts>
#include <cstddef>

#include "ratt/crypto/bytes.hpp"

namespace ratt::crypto {

/// Requirements on the hash parameter of Hmac<Hash>.
template <typename H>
concept IncrementalHash = requires(H h, ByteView data) {
  { H::kDigestSize } -> std::convertible_to<std::size_t>;
  { H::kBlockSize } -> std::convertible_to<std::size_t>;
  h.reset();
  h.update(data);
  { h.finish() } -> std::convertible_to<typename H::Digest>;
};

/// Incremental HMAC keyed at construction. Reusable via reset().
///
/// The key-derived ipad/opad blocks are absorbed once at construction
/// into cached *midstates*; reset() and finish() restore them by copy,
/// so repeated MACs under one key skip both key-padding compressions —
/// the per-key amortization the attestation hot loop relies on.
template <IncrementalHash Hash>
class Hmac {
 public:
  static constexpr std::size_t kDigestSize = Hash::kDigestSize;
  using Digest = typename Hash::Digest;

  explicit Hmac(ByteView key) {
    std::array<std::uint8_t, Hash::kBlockSize> block_key{};
    if (key.size() > Hash::kBlockSize) {
      Hash h;
      h.update(key);
      const auto d = h.finish();
      std::copy(d.begin(), d.end(), block_key.begin());
    } else {
      std::copy(key.begin(), key.end(), block_key.begin());
    }
    std::array<std::uint8_t, Hash::kBlockSize> pad{};
    for (std::size_t i = 0; i < Hash::kBlockSize; ++i) {
      pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    }
    inner_mid_.update(ByteView(pad.data(), pad.size()));
    for (std::size_t i = 0; i < Hash::kBlockSize; ++i) {
      pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
    }
    outer_mid_.update(ByteView(pad.data(), pad.size()));
    reset();
  }

  void reset() { inner_ = inner_mid_; }

  void update(ByteView data) { inner_.update(data); }

  Digest finish() {
    const auto inner_digest = inner_.finish();
    Hash outer = outer_mid_;
    outer.update(ByteView(inner_digest.data(), inner_digest.size()));
    return outer.finish();
  }

  /// One-shot convenience.
  static Digest mac(ByteView key, ByteView data) {
    Hmac h(key);
    h.update(data);
    return h.finish();
  }

 private:
  Hash inner_;
  Hash inner_mid_;  // state after absorbing the ipad block
  Hash outer_mid_;  // state after absorbing the opad block
};

}  // namespace ratt::crypto
