#include "ratt/crypto/mac_batch.hpp"

#include <algorithm>
#include <stdexcept>

namespace ratt::crypto {

void MacBatch::key_midstates(ByteView key, Sha1::Midstate* inner,
                             Sha1::Midstate* outer) {
  // Mirrors Hmac<Sha1> keying bit-for-bit: over-long keys are hashed,
  // the block key is zero-padded, ipad/opad blocks absorbed once.
  std::array<std::uint8_t, Sha1::kBlockSize> block_key{};
  if (key.size() > Sha1::kBlockSize) {
    const auto d = Sha1::hash(key);
    std::copy(d.begin(), d.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }
  std::array<std::uint8_t, Sha1::kBlockSize> pad{};
  for (std::size_t i = 0; i < Sha1::kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
  }
  Sha1 hi;
  hi.update(ByteView(pad.data(), pad.size()));
  *inner = hi.midstate();
  for (std::size_t i = 0; i < Sha1::kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }
  Sha1 ho;
  ho.update(ByteView(pad.data(), pad.size()));
  *outer = ho.midstate();
}

void MacBatch::set_key(std::size_t lane, ByteView key) {
  if (lane >= kMaxLanes) {
    throw std::invalid_argument("MacBatch::set_key: lane out of range");
  }
  key_midstates(key, &inner_mid_[lane], &outer_mid_[lane]);
}

void MacBatch::set_key_all(ByteView key) {
  key_midstates(key, &inner_mid_[0], &outer_mid_[0]);
  for (std::size_t lane = 1; lane < kMaxLanes; ++lane) {
    inner_mid_[lane] = inner_mid_[0];
    outer_mid_[lane] = outer_mid_[0];
  }
}

void MacBatch::compute_many(const LaneMsg* msgs, std::size_t n,
                            std::uint8_t (*tags)[kTagSize]) {
  if (n == 0) {
    return;
  }
  if (n > kMaxLanes) {
    throw std::invalid_argument("MacBatch::compute_many: too many lanes");
  }
  std::uint8_t inner_digests[kMaxLanes][Sha1::kDigestSize];
  Sha1xN::hash_many(inner_mid_.data(), msgs, n, inner_digests);
  LaneMsg outer[kMaxLanes];
  for (std::size_t j = 0; j < n; ++j) {
    outer[j] = LaneMsg{ByteView(inner_digests[j], Sha1::kDigestSize),
                       ByteView()};
  }
  Sha1xN::hash_many(outer_mid_.data(), outer, n, tags);
}

}  // namespace ratt::crypto
