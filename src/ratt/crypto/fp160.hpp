// Prime-field arithmetic modulo the secp160r1 field prime
// p = 2^160 - 2^31 - 1.
//
// The prime is pseudo-Mersenne, so products are reduced with two rounds of
// "fold the high half down as hi*(2^31+1)" instead of generic division.
#pragma once

#include <optional>

#include "ratt/crypto/bigint.hpp"

namespace ratt::crypto {

/// An element of GF(p), p = 2^160 - 2^31 - 1, kept fully reduced.
class Fp160 {
 public:
  /// The field prime.
  static const U160& modulus();

  constexpr Fp160() = default;

  /// Reduces v modulo p.
  explicit Fp160(const U160& v);
  explicit Fp160(std::uint64_t v) : Fp160(U160(v)) {}

  static Fp160 from_hex(std::string_view hex) {
    return Fp160(U160::from_hex(hex));
  }

  const U160& value() const { return value_; }
  bool is_zero() const { return value_.is_zero(); }

  friend bool operator==(const Fp160&, const Fp160&) = default;

  friend Fp160 operator+(const Fp160& a, const Fp160& b);
  friend Fp160 operator-(const Fp160& a, const Fp160& b);
  friend Fp160 operator*(const Fp160& a, const Fp160& b);

  Fp160 negated() const;
  Fp160 squared() const { return *this * *this; }

  /// Multiplicative inverse; throws std::domain_error on zero.
  Fp160 inverse() const;

  /// Square root, if one exists (p = 3 mod 4, so a^((p+1)/4) works).
  /// Returns nullopt for quadratic non-residues.
  std::optional<Fp160> sqrt() const;

  /// this^e (mod p) by square-and-multiply.
  Fp160 pow(const U160& e) const;

 private:
  U160 value_{};  // invariant: value_ < p
};

}  // namespace ratt::crypto
