// HKDF (RFC 5869) over HMAC-SHA256.
//
// Domain separation for the device's single provisioned secret: the
// attestation protocol, the update/erase services, and the clock
// synchronizer each use a purpose-specific key derived from K_Attest, so
// a MAC computed for one protocol can never be replayed into another
// (cross-protocol confusion is otherwise easy to miss — all of them MAC
// short little-endian headers).
#pragma once

#include "ratt/crypto/bytes.hpp"

namespace ratt::crypto {

/// HKDF-Extract: PRK = HMAC-SHA256(salt, ikm).
Bytes hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: `length` bytes of output keyed by `prk`, bound to `info`.
/// length must be <= 255 * 32.
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// Extract-then-expand convenience.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length);

/// The library's standard purpose labels (used by attest::DeviceServices
/// and attest::ClockSynchronizer).
Bytes derive_purpose_key(ByteView master, std::string_view purpose,
                         std::size_t length = 16);

}  // namespace ratt::crypto
