#include "ratt/crypto/ec.hpp"

namespace ratt::crypto {

namespace {

// Lazily initialized (function-local statics) to stay immune to static
// initialization order across translation units.
const Fp160& coeff_a() {
  static const Fp160 v =
      Fp160::from_hex("ffffffffffffffffffffffffffffffff7ffffffc");
  return v;
}

const Fp160& coeff_b() {
  static const Fp160 v =
      Fp160::from_hex("1c97befc54bd7a8b65acf89f81d4d4adc565fa45");
  return v;
}

// Jacobian coordinates (X : Y : Z), affine (X/Z^2, Y/Z^3); Z == 0 is the
// point at infinity. Scalar multiplication works here so that only one
// field inversion is needed, at the final conversion back to affine.
struct Jacobian {
  Fp160 x;
  Fp160 y;
  Fp160 z;  // zero => infinity

  bool is_infinity() const { return z.is_zero(); }
};

Jacobian to_jacobian(const EcPoint& p) {
  if (p.infinity) return Jacobian{};
  return Jacobian{p.x, p.y, Fp160(std::uint64_t{1})};
}

EcPoint to_affine(const Jacobian& p) {
  if (p.is_infinity()) return EcPoint{};
  const Fp160 z_inv = p.z.inverse();
  const Fp160 z_inv2 = z_inv.squared();
  return EcPoint::make(p.x * z_inv2, p.y * z_inv2 * z_inv);
}

// dbl-2001-b (a = -3, which holds for secp160r1: a = p - 3).
Jacobian jacobian_double(const Jacobian& p) {
  if (p.is_infinity() || p.y.is_zero()) return Jacobian{};
  const Fp160 two(std::uint64_t{2});
  const Fp160 three(std::uint64_t{3});
  const Fp160 four(std::uint64_t{4});
  const Fp160 eight(std::uint64_t{8});

  const Fp160 delta = p.z.squared();
  const Fp160 gamma = p.y.squared();
  const Fp160 beta = p.x * gamma;
  const Fp160 alpha = three * (p.x - delta) * (p.x + delta);
  const Fp160 x3 = alpha.squared() - eight * beta;
  const Fp160 z3 = (p.y + p.z).squared() - gamma - delta;
  const Fp160 y3 = alpha * (four * beta - x3) - eight * gamma.squared();
  return Jacobian{x3, y3, z3};
}

// madd-2007-bl: mixed Jacobian + affine addition.
Jacobian jacobian_add_affine(const Jacobian& p, const EcPoint& q) {
  if (q.infinity) return p;
  if (p.is_infinity()) return to_jacobian(q);

  const Fp160 two(std::uint64_t{2});
  const Fp160 z1z1 = p.z.squared();
  const Fp160 u2 = q.x * z1z1;
  const Fp160 s2 = q.y * p.z * z1z1;
  const Fp160 h = u2 - p.x;
  const Fp160 r = two * (s2 - p.y);

  if (h.is_zero()) {
    if (r.is_zero()) return jacobian_double(p);
    return Jacobian{};  // P + (-P)
  }

  const Fp160 hh = h.squared();
  const Fp160 i = Fp160(std::uint64_t{4}) * hh;
  const Fp160 j = h * i;
  const Fp160 v = p.x * i;
  const Fp160 x3 = r.squared() - j - two * v;
  const Fp160 y3 = r * (v - x3) - two * p.y * j;
  const Fp160 z3 = (p.z + h).squared() - z1z1 - hh;
  return Jacobian{x3, y3, z3};
}

}  // namespace

Bytes EcPoint::encode(bool compressed) const {
  if (infinity) return Bytes{0x00};
  Bytes out;
  if (compressed) {
    out.reserve(21);
    out.push_back(y.value().is_odd() ? 0x03 : 0x02);
    crypto::append(out, x.value().to_bytes_be());
  } else {
    out.reserve(41);
    out.push_back(0x04);
    crypto::append(out, x.value().to_bytes_be());
    crypto::append(out, y.value().to_bytes_be());
  }
  return out;
}

std::optional<EcPoint> EcPoint::decode(ByteView wire) {
  if (wire.size() == 1 && wire[0] == 0x00) return EcPoint{};
  if (wire.size() == 41 && wire[0] == 0x04) {
    const U160 x_raw = U160::from_bytes_be(wire.subspan(1, 20));
    const U160 y_raw = U160::from_bytes_be(wire.subspan(21, 20));
    // Reject non-canonical coordinates (>= p).
    if (x_raw >= Fp160::modulus() || y_raw >= Fp160::modulus()) {
      return std::nullopt;
    }
    const EcPoint pt = EcPoint::make(Fp160(x_raw), Fp160(y_raw));
    if (!Secp160r1::on_curve(pt)) return std::nullopt;
    return pt;
  }
  if (wire.size() == 21 && (wire[0] == 0x02 || wire[0] == 0x03)) {
    const U160 x_raw = U160::from_bytes_be(wire.subspan(1, 20));
    if (x_raw >= Fp160::modulus()) return std::nullopt;
    const Fp160 x(x_raw);
    const Fp160 rhs =
        x.squared() * x + Secp160r1::a() * x + Secp160r1::b();
    const auto y = rhs.sqrt();
    if (!y.has_value()) return std::nullopt;  // x not on the curve
    const bool want_odd = wire[0] == 0x03;
    const Fp160 y_final =
        (y->value().is_odd() == want_odd) ? *y : y->negated();
    return EcPoint::make(x, y_final);
  }
  return std::nullopt;
}

const Fp160& Secp160r1::a() { return coeff_a(); }
const Fp160& Secp160r1::b() { return coeff_b(); }

const EcPoint& Secp160r1::generator() {
  static const EcPoint g = EcPoint::make(
      Fp160::from_hex("4a96b5688ef573284664698968c38bb913cbfc82"),
      Fp160::from_hex("23a628553168947d59dcc912042351377ac5fb32"));
  return g;
}

const U192& Secp160r1::order() {
  static const U192 n =
      U192::from_hex("0100000000000000000001f4c8f927aed3ca752257");
  return n;
}

bool Secp160r1::on_curve(const EcPoint& pt) {
  if (pt.infinity) return true;
  const Fp160 lhs = pt.y.squared();
  const Fp160 rhs = pt.x.squared() * pt.x + coeff_a() * pt.x + coeff_b();
  return lhs == rhs;
}

EcPoint Secp160r1::double_point(const EcPoint& p) {
  return to_affine(jacobian_double(to_jacobian(p)));
}

EcPoint Secp160r1::add(const EcPoint& p, const EcPoint& q) {
  if (p.infinity) return q;
  return to_affine(jacobian_add_affine(to_jacobian(p), q));
}

EcPoint Secp160r1::scalar_mul(const U192& k, const EcPoint& p) {
  // Left-to-right double-and-add. Not constant-time: the simulated prover's
  // timing model prices the operation analytically, and no secret-dependent
  // timing crosses a trust boundary in this codebase.
  Jacobian result{};
  for (int i = k.bit_length(); i-- > 0;) {
    result = jacobian_double(result);
    if (k.bit(static_cast<std::size_t>(i))) {
      result = jacobian_add_affine(result, p);
    }
  }
  return to_affine(result);
}

EcPoint Secp160r1::scalar_mul_base(const U192& k) {
  return scalar_mul(k, generator());
}

}  // namespace ratt::crypto
