// Constant-time comparison helpers.
//
// MAC verification on the prover must not leak, via early exit, how many
// prefix bytes of a forged tag were correct; all tag comparisons in this
// library go through ct_equal().
#pragma once

#include "ratt/crypto/bytes.hpp"

namespace ratt::crypto {

/// Compare two byte ranges in time independent of their contents.
/// Ranges of different length compare unequal (length itself is public).
bool ct_equal(ByteView a, ByteView b);

}  // namespace ratt::crypto
