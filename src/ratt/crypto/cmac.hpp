// CMAC / OMAC1 (NIST SP 800-38B, RFC 4493 for AES-128), generic over a
// block cipher.
//
// The paper's Sec. 4.1 uses plain CBC-MAC (priced in Table 1); CMAC is
// the standardized variant that is secure for variable-length messages
// without this library's length-prepending workaround, at the same
// per-block cost. Provided so deployments can choose the
// standards-compliant construction.
#pragma once

#include <array>
#include <cstdint>

#include "ratt/crypto/block_modes.hpp"
#include "ratt/crypto/bytes.hpp"

namespace ratt::crypto {

namespace detail {

/// The "doubling" operation in GF(2^b): left shift, conditionally XOR the
/// block-size-specific constant Rb (0x87 for 128-bit, 0x1B for 64-bit).
template <std::size_t BlockSize>
std::array<std::uint8_t, BlockSize> gf_double(
    const std::array<std::uint8_t, BlockSize>& in) {
  static_assert(BlockSize == 16 || BlockSize == 8,
                "CMAC: unsupported block size");
  constexpr std::uint8_t rb = (BlockSize == 16) ? 0x87 : 0x1b;
  std::array<std::uint8_t, BlockSize> out{};
  std::uint8_t carry = 0;
  for (std::size_t i = BlockSize; i-- > 0;) {
    const std::uint8_t b = in[i];
    out[i] = static_cast<std::uint8_t>((b << 1) | carry);
    carry = b >> 7;
  }
  if (carry != 0) {
    out[BlockSize - 1] = static_cast<std::uint8_t>(out[BlockSize - 1] ^ rb);
  }
  return out;
}

}  // namespace detail

/// Subkeys K1 (for complete final blocks) and K2 (for padded ones).
template <BlockCipher Cipher>
struct CmacSubkeys {
  typename Cipher::Block k1;
  typename Cipher::Block k2;
};

template <BlockCipher Cipher>
CmacSubkeys<Cipher> cmac_subkeys(const Cipher& cipher) {
  const typename Cipher::Block zero{};
  const auto l = cipher.encrypt_block(zero);
  CmacSubkeys<Cipher> keys;
  keys.k1 = detail::gf_double<Cipher::kBlockSize>(l);
  keys.k2 = detail::gf_double<Cipher::kBlockSize>(keys.k1);
  return keys;
}

/// One-shot CMAC over `message`.
template <BlockCipher Cipher>
typename Cipher::Block cmac(const Cipher& cipher, ByteView message) {
  const CmacSubkeys<Cipher> keys = cmac_subkeys(cipher);
  constexpr std::size_t kBlock = Cipher::kBlockSize;

  // Number of blocks, with the empty message occupying one padded block.
  const std::size_t n =
      message.empty() ? 1 : (message.size() + kBlock - 1) / kBlock;
  const bool last_complete =
      !message.empty() && message.size() % kBlock == 0;

  typename Cipher::Block chain{};
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = 0; j < kBlock; ++j) {
      chain[j] = static_cast<std::uint8_t>(chain[j] ^
                                           message[i * kBlock + j]);
    }
    chain = cipher.encrypt_block(chain);
  }

  // Final block: XOR with K1 (complete) or pad 10..0 and XOR with K2.
  typename Cipher::Block last{};
  const std::size_t tail_off = (n - 1) * kBlock;
  const std::size_t tail_len = message.size() - tail_off;
  for (std::size_t j = 0; j < tail_len; ++j) {
    last[j] = message[tail_off + j];
  }
  if (!last_complete) {
    last[tail_len] = 0x80;
  }
  const auto& subkey = last_complete ? keys.k1 : keys.k2;
  for (std::size_t j = 0; j < kBlock; ++j) {
    chain[j] = static_cast<std::uint8_t>(chain[j] ^ last[j] ^ subkey[j]);
  }
  return cipher.encrypt_block(chain);
}

}  // namespace ratt::crypto
