// HMAC batch API over the multi-buffer SHA-1 engine.
//
// Computes up to Sha1xN::kMaxLanes independent HMAC-SHA1 tags in
// lockstep: the per-lane ipad/opad midstates are cached at key-set time
// (the same amortization Hmac<Sha1> does scalar-side), the inner hashes
// run as one multi-buffer wave, and the fixed-size outer hashes as a
// second. Only HMAC-SHA1 batches — the paper's other MACs (CBC-MAC,
// CMAC) chain block-to-block within one message and gain nothing from
// lane transposition; callers gate on supports() and keep the scalar
// Mac path for everything else.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/mac.hpp"
#include "ratt/crypto/sha1xn.hpp"

namespace ratt::crypto {

class MacBatch {
 public:
  static constexpr std::size_t kMaxLanes = Sha1xN::kMaxLanes;
  static constexpr std::size_t kTagSize = Sha1::kDigestSize;
  using LaneMsg = Sha1xN::LaneMsg;

  /// True iff `alg` can be batched by this engine.
  static bool supports(MacAlgorithm alg) {
    return alg == MacAlgorithm::kHmacSha1;
  }

  MacBatch() = default;

  /// All lanes share one key (the verifier batches rounds of one
  /// device, so this is the hot constructor).
  explicit MacBatch(ByteView key) { set_key_all(key); }

  /// Key one lane (distinct-key batches, e.g. cross-device gathers).
  void set_key(std::size_t lane, ByteView key);

  /// Key every lane identically; one keying computation, copied out.
  void set_key_all(ByteView key);

  /// Compute n (1..kMaxLanes) HMAC-SHA1 tags in lockstep; `tags[i]`
  /// receives lane i's 20-byte tag.
  void compute_many(const LaneMsg* msgs, std::size_t n,
                    std::uint8_t (*tags)[kTagSize]);

 private:
  static void key_midstates(ByteView key, Sha1::Midstate* inner,
                            Sha1::Midstate* outer);

  std::array<Sha1::Midstate, kMaxLanes> inner_mid_{};
  std::array<Sha1::Midstate, kMaxLanes> outer_mid_{};
};

}  // namespace ratt::crypto
