// AVX2 build of the multi-buffer SHA-1 kernel. This translation unit
// is compiled with -mavx2 when the compiler accepts it (see
// crypto/CMakeLists.txt); every entry point is guarded by a runtime
// __builtin_cpu_supports("avx2") check in the dispatcher, so the
// binary stays safe on SSE2-only machines. With AVX2 the W=8 lane
// vectors become single 256-bit ops instead of split 128-bit pairs.
#include "ratt/crypto/sha1xn_detail.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace ratt::crypto {

#define RATT_SHA1XN_NS sha1xn_avx2
#include "ratt/crypto/sha1xn_kernel.inc"
#undef RATT_SHA1XN_NS

namespace detail {

bool sha1xn_avx2_supported() {
#if defined(__AVX2__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

void hash_lanes4_avx2(const Sha1::Midstate* mids, const Sha1xN::LaneMsg* msgs,
                      std::size_t n,
                      std::uint8_t (*digests)[Sha1::kDigestSize]) {
  sha1xn_avx2::hash_lanes<4>(mids, msgs, n, digests);
}

void hash_lanes8_avx2(const Sha1::Midstate* mids, const Sha1xN::LaneMsg* msgs,
                      std::size_t n,
                      std::uint8_t (*digests)[Sha1::kDigestSize]) {
  sha1xn_avx2::hash_lanes<8>(mids, msgs, n, digests);
}

}  // namespace detail
}  // namespace ratt::crypto
