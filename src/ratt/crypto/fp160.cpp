#include "ratt/crypto/fp160.hpp"

#include <stdexcept>

namespace ratt::crypto {

namespace {

// Function-local static: Fp160 constructors run during other translation
// units' static initialization (e.g. the curve constants in ec.cpp), so the
// modulus must be initialized lazily, not as a namespace-scope object.
const U160& prime() {
  static const U160 p =
      U160::from_hex("ffffffffffffffffffffffffffffffff7fffffff");
  return p;
}

// Reduce a 320-bit product modulo p using 2^160 ≡ 2^31 + 1 (mod p):
//   a = hi·2^160 + lo ≡ hi·2^31 + hi + lo.
// hi·2^31 of a 160-bit hi is at most 191 bits, so one fold shrinks the
// value below 2^192; a second fold brings it below 2·p, and a final
// conditional subtraction normalizes.
U160 reduce320(const U320& a) {
  auto split = [](const U320& v, U160& lo, U160& hi) {
    for (std::size_t i = 0; i < 5; ++i) {
      lo.set_limb(i, v.limb(i));
      hi.set_limb(i, v.limb(i + 5));
    }
  };

  U160 lo, hi;
  split(a, lo, hi);

  // acc = lo + hi + hi·2^31, computed in 320 bits (cannot overflow).
  U320 acc = lo.resized<10>();
  U320 hi_wide = hi.resized<10>();
  acc = acc + hi_wide + hi_wide.shifted_left(31);

  split(acc, lo, hi);  // hi is now at most 32 bits
  U320 acc2 = lo.resized<10>();
  hi_wide = hi.resized<10>();
  acc2 = acc2 + hi_wide + hi_wide.shifted_left(31);

  // acc2 < 2^161 + small, i.e. fits in 6 limbs; subtract p until < p.
  U192 r = acc2.resized<6>();
  const U192 p_wide = prime().resized<6>();
  while (r >= p_wide) {
    r = r - p_wide;
  }
  return r.resized<5>();
}

}  // namespace

const U160& Fp160::modulus() { return prime(); }

Fp160::Fp160(const U160& v) {
  value_ = v;
  while (value_ >= prime()) {
    value_ = value_ - prime();
  }
}

Fp160 operator+(const Fp160& a, const Fp160& b) {
  Fp160 out;
  const std::uint32_t carry = U160::add(a.value_, b.value_, out.value_);
  if (carry != 0 || out.value_ >= prime()) {
    out.value_ = out.value_ - prime();
  }
  return out;
}

Fp160 operator-(const Fp160& a, const Fp160& b) {
  Fp160 out;
  const std::uint32_t borrow = U160::sub(a.value_, b.value_, out.value_);
  if (borrow != 0) {
    U160::add(out.value_, prime(), out.value_);
  }
  return out;
}

Fp160 operator*(const Fp160& a, const Fp160& b) {
  Fp160 out;
  out.value_ = reduce320(mul_wide(a.value_, b.value_));
  return out;
}

Fp160 Fp160::negated() const {
  if (value_.is_zero()) return *this;
  Fp160 out;
  U160::sub(prime(), value_, out.value_);
  return out;
}

Fp160 Fp160::pow(const U160& e) const {
  Fp160 result(std::uint64_t{1});
  Fp160 base = *this;
  const int bits = e.bit_length();
  for (int i = 0; i < bits; ++i) {
    if (e.bit(static_cast<std::size_t>(i))) {
      result = result * base;
    }
    base = base.squared();
  }
  return result;
}

std::optional<Fp160> Fp160::sqrt() const {
  if (value_.is_zero()) return Fp160();
  // p = 3 (mod 4): candidate = a^((p+1)/4); verify by squaring, since
  // non-residues produce a wrong answer rather than an error.
  const U160 exponent = (prime() + U160(1)).shifted_right(2);
  const Fp160 candidate = pow(exponent);
  if (candidate.squared() == *this) return candidate;
  return std::nullopt;
}

Fp160 Fp160::inverse() const {
  if (value_.is_zero()) {
    throw std::domain_error("Fp160::inverse: zero has no inverse");
  }
  // Fermat: a^(p-2) mod p. p is prime, so this is exact.
  const U160 exponent = prime() - U160(2);
  return pow(exponent);
}

}  // namespace ratt::crypto
