#include "ratt/crypto/ecdsa.hpp"

#include <stdexcept>

#include "ratt/crypto/drbg.hpp"
#include "ratt/crypto/sha1.hpp"

namespace ratt::crypto {

namespace {

const U192& order() { return Secp160r1::order(); }

U192 modn(const U192& a) {
  // a < 2^192 and n > 2^160, so the quotient is small, but use the generic
  // reduction for clarity.
  return mod_wide(a.resized<12>(), order());
}

U192 modn_add(const U192& a, const U192& b) {
  // Inputs are < n, so a widened add then single reduce suffices.
  U192 sum;
  const std::uint32_t carry = U192::add(a, b, sum);
  if (carry != 0) {
    // 192-bit overflow cannot happen for inputs < n < 2^161.
    throw std::logic_error("modn_add: inputs out of range");
  }
  if (sum >= order()) sum = sum - order();
  return sum;
}

U192 modn_mul(const U192& a, const U192& b) {
  return mod_wide(mul_wide(a, b), order());
}

U192 modn_pow(const U192& base, const U192& e) {
  U192 result(1);
  U192 acc = base;
  const int bits = e.bit_length();
  for (int i = 0; i < bits; ++i) {
    if (e.bit(static_cast<std::size_t>(i))) {
      result = modn_mul(result, acc);
    }
    acc = modn_mul(acc, acc);
  }
  return result;
}

// n is prime (secp160r1 has cofactor 1), so Fermat inversion applies.
U192 modn_inv(const U192& a) {
  if (a.is_zero()) throw std::domain_error("modn_inv: zero");
  return modn_pow(a, order() - U192(2));
}

/// Message digest as an integer modulo n (SHA-1 is 160 bits < 161 = |n|,
/// so no truncation is needed).
U192 digest_to_scalar(ByteView message) {
  const auto digest = Sha1::hash(message);
  Bytes padded(U192::kBytes, 0);
  std::copy(digest.begin(), digest.end(),
            padded.begin() + (U192::kBytes - digest.size()));
  return modn(U192::from_bytes_be(padded));
}

/// Scalar in [1, n-1] from a DRBG, by rejection sampling.
U192 random_scalar(HmacDrbg& drbg) {
  for (;;) {
    const Bytes raw = drbg.generate(U192::kBytes);
    // Clear the top 31 bits so candidates are < 2^161; n is just above
    // 2^160, so acceptance probability is ~1/2.
    Bytes masked = raw;
    masked[0] = 0;
    masked[1] = 0;
    masked[2] = 0;
    masked[3] &= 0x01;
    const U192 candidate = U192::from_bytes_be(masked);
    if (!candidate.is_zero() && candidate < order()) return candidate;
  }
}

}  // namespace

Bytes EcdsaSignature::to_bytes() const {
  Bytes out = r.to_bytes_be();
  append(out, s.to_bytes_be());
  return out;
}

EcdsaSignature EcdsaSignature::from_bytes(ByteView bytes) {
  if (bytes.size() != 2 * U192::kBytes) {
    throw std::invalid_argument("EcdsaSignature::from_bytes: wrong length");
  }
  EcdsaSignature sig;
  sig.r = U192::from_bytes_be(bytes.subspan(0, U192::kBytes));
  sig.s = U192::from_bytes_be(bytes.subspan(U192::kBytes));
  return sig;
}

EcdsaKeyPair ecdsa_generate_key(ByteView seed) {
  HmacDrbg drbg(seed);
  EcdsaKeyPair kp;
  kp.private_key = random_scalar(drbg);
  kp.public_key = Secp160r1::scalar_mul_base(kp.private_key);
  return kp;
}

EcdsaSignature ecdsa_sign(const U192& d, ByteView message) {
  if (d.is_zero() || d >= order()) {
    throw std::invalid_argument("ecdsa_sign: private key out of range");
  }
  const U192 e = digest_to_scalar(message);

  // Deterministic per-signature secret: DRBG seeded with d || H(m).
  Bytes seed = d.to_bytes_be();
  const auto digest = Sha1::hash(message);
  append(seed, ByteView(digest.data(), digest.size()));
  HmacDrbg drbg(seed);

  for (;;) {
    const U192 k = random_scalar(drbg);
    const EcPoint big_r = Secp160r1::scalar_mul_base(k);
    // big_r cannot be infinity for k in [1, n-1].
    const U192 r = modn(big_r.x.value().resized<6>());
    if (r.is_zero()) continue;
    const U192 s = modn_mul(modn_inv(k), modn_add(e, modn_mul(r, d)));
    if (s.is_zero()) continue;
    return EcdsaSignature{r, s};
  }
}

bool ecdsa_verify(const EcPoint& q, ByteView message,
                  const EcdsaSignature& sig) {
  if (q.infinity || !Secp160r1::on_curve(q)) return false;
  if (sig.r.is_zero() || sig.r >= order()) return false;
  if (sig.s.is_zero() || sig.s >= order()) return false;

  const U192 e = digest_to_scalar(message);
  const U192 w = modn_inv(sig.s);
  const U192 u1 = modn_mul(e, w);
  const U192 u2 = modn_mul(sig.r, w);

  const EcPoint x = Secp160r1::add(Secp160r1::scalar_mul_base(u1),
                                   Secp160r1::scalar_mul(u2, q));
  if (x.infinity) return false;
  const U192 v = modn(x.x.value().resized<6>());
  return v == sig.r;
}

}  // namespace ratt::crypto
