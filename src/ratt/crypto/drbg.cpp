#include "ratt/crypto/drbg.hpp"

#include <bit>
#include <stdexcept>

namespace ratt::crypto {

HmacDrbg::HmacDrbg(ByteView seed)
    : mac_(ByteView(key_.data(), key_.size())) {
  key_.fill(0x00);
  value_.fill(0x01);
  update(seed);
}

void HmacDrbg::rekey() { mac_ = Hmac<Sha256>(ByteView(key_.data(), key_.size())); }

void HmacDrbg::update(ByteView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  const std::uint8_t zero = 0x00;
  mac_.reset();
  mac_.update(value_);
  mac_.update(ByteView(&zero, 1));
  mac_.update(provided);
  key_ = mac_.finish();
  rekey();
  mac_.reset();
  mac_.update(value_);
  value_ = mac_.finish();
  if (provided.empty()) return;
  // K = HMAC(K, V || 0x01 || provided); V = HMAC(K, V)
  const std::uint8_t one = 0x01;
  mac_.reset();
  mac_.update(value_);
  mac_.update(ByteView(&one, 1));
  mac_.update(provided);
  key_ = mac_.finish();
  rekey();
  mac_.reset();
  mac_.update(value_);
  value_ = mac_.finish();
}

Bytes HmacDrbg::generate(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    mac_.reset();
    mac_.update(value_);
    value_ = mac_.finish();
    const std::size_t take = std::min(value_.size(), n - out.size());
    out.insert(out.end(), value_.begin(), value_.begin() + take);
  }
  update({});
  return out;
}

void HmacDrbg::reseed(ByteView seed) { update(seed); }

std::uint64_t HmacDrbg::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("HmacDrbg::uniform: bound 0");
  // Rejection sampling over the smallest power-of-two superset of bound.
  const int bits = 64 - std::countl_zero(bound - 1);
  const std::uint64_t mask =
      (bits >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
  for (;;) {
    const Bytes raw = generate(8);
    const std::uint64_t v = load_be64(raw.data()) & mask;
    if (v < bound) return v;
  }
}

}  // namespace ratt::crypto
