#include "ratt/crypto/hkdf.hpp"

#include <stdexcept>

#include "ratt/crypto/hmac.hpp"
#include "ratt/crypto/sha256.hpp"

namespace ratt::crypto {

Bytes hkdf_extract(ByteView salt, ByteView ikm) {
  // RFC 5869: absent salt = a string of HashLen zeros.
  Bytes salt_buf(salt.begin(), salt.end());
  if (salt_buf.empty()) {
    salt_buf.assign(Sha256::kDigestSize, 0);
  }
  const auto prk = Hmac<Sha256>::mac(salt_buf, ikm);
  return Bytes(prk.begin(), prk.end());
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  if (length > 255 * Sha256::kDigestSize) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  Bytes okm;
  okm.reserve(length);
  Bytes t;  // T(0) = empty
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    Hmac<Sha256> h(prk);
    h.update(t);
    h.update(info);
    h.update(ByteView(&counter, 1));
    const auto block = h.finish();
    t.assign(block.begin(), block.end());
    const std::size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + take);
    ++counter;
  }
  return okm;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

Bytes derive_purpose_key(ByteView master, std::string_view purpose,
                         std::size_t length) {
  const Bytes info = from_string(purpose);
  return hkdf(from_string("ratt-purpose-key-v1"), master, info, length);
}

}  // namespace ratt::crypto
