// The roaming adversary Adv_roam (Sec. 3.2, Sec. 5): everything Adv_ext
// can do, plus a transient compromise of the prover. It operates in three
// phases:
//   Phase I   — eavesdrop / record genuine attestation requests,
//   Phase II  — run as malware on the prover, manipulate local state
//               (counter rollback, clock reset, key extraction, IDT /
//               interrupt-mask sabotage), then erase itself,
//   Phase III — from outside again, replay the recorded requests.
//
// Every Phase II manipulation goes through the simulated bus with the
// malware's program counter, so EA-MPU rules from the protected
// configurations block exactly the writes the paper says they block.
#pragma once

#include <string>
#include <vector>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::adv {

enum class RoamAttack : std::uint8_t {
  kCounterRollback,   // Sec. 5: counter i -> i-1, replay attreq(i)
  kClockReset,        // Sec. 5: clock -> t_i - delta, replay attreq(t_i)
  kIdtClobber,        // Sec. 6.2: overwrite IDT, SW-clock stops
  kIrqMaskDisable,    // Sec. 6.2: mask the timer interrupt, clock stops
  kKeyExtraction,     // read K_Attest, then forge authentic requests
  kKeyOverwrite,      // replace K_Attest with an adversary-chosen key
  kNonceWipe,         // zero the nonce-history count, replay old requests
};

std::string to_string(RoamAttack attack);

struct RoamScenarioConfig {
  attest::FreshnessScheme scheme = attest::FreshnessScheme::kCounter;
  attest::ClockDesign clock = attest::ClockDesign::kNone;
  /// Protection toggles: the experiment's independent variable.
  bool protect_key = true;
  bool key_in_rom = true;
  bool protect_counter = true;
  bool protect_clock = true;
  double window_ms = 50.0;
  /// Phase III wait between compromise and replay.
  double wait_ms = 500.0;
  std::size_t measured_bytes = 1024;
};

struct RoamAttackResult {
  RoamAttack attack{};
  bool protections_enabled = false;
  /// Phase II: did the state manipulation succeed (bus writes allowed)?
  bool manipulation_succeeded = false;
  /// Phase II: was K_Attest readable by malware?
  bool key_extracted = false;
  /// Phase III: was the replayed / forged request accepted — i.e. did the
  /// adversary extract a full gratuitous attestation?
  bool dos_succeeded = false;
  attest::AttestStatus final_status = attest::AttestStatus::kOk;
  attest::FreshnessVerdict freshness_verdict =
      attest::FreshnessVerdict::kAccept;
  /// Post-attack: no trace left? (Sec. 5 notes counter rollback is
  /// undetectable, while a reset clock "remains behind".)
  bool stealthy = false;
  /// Post-attack: does a *subsequent* genuine attestation round still
  /// validate at the verifier? (Adv_roam's self-erasure means yes — this
  /// is why standard attestation cannot catch it.)
  bool survives_standard_attestation = false;
};

/// Run one three-phase roaming attack from scratch.
RoamAttackResult run_roam_attack(RoamAttack attack,
                                 const RoamScenarioConfig& config);

/// Sec. 3.2, phase II: "Adv_roam only changes dynamic data on Prv. This
/// is not detectable by subsequent attestation." This study makes the
/// claim concrete: infect the *measured* memory (attestation catches it),
/// then restore it (attestation is blind again) — the window in between
/// is where the counter/clock manipulations happen.
struct TransientInfectionResult {
  bool infection_write_ok = false;
  bool detected_while_infected = false;  // genuine round fails validation
  bool restored_ok = false;
  bool undetected_after_erase = false;   // genuine round validates again
};
TransientInfectionResult run_transient_infection(
    const RoamScenarioConfig& config);

/// Run the attack with protections off and on; the paper's claim is
/// dos_succeeded flips from true to false.
struct RoamComparison {
  RoamAttackResult unprotected;
  RoamAttackResult protected_;
};
RoamComparison compare_roam_attack(RoamAttack attack,
                                   RoamScenarioConfig config);

}  // namespace ratt::adv
