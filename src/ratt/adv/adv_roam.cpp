#include "ratt/adv/adv_roam.hpp"

namespace ratt::adv {

namespace {

using attest::AttestOutcome;
using attest::AttestRequest;
using attest::AttestStatus;
using attest::ClockDesign;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;
using crypto::Bytes;

Bytes shared_key() {
  return crypto::from_hex("a0a1a2a3a4a5a6a7a8a9aaabacadaeaf");
}

struct Scenario {
  std::unique_ptr<ProverDevice> prover;
  std::unique_ptr<Verifier> verifier;
  hw::SoftwareComponent malware;  // Phase II vantage point

  explicit Scenario(std::unique_ptr<ProverDevice> p)
      : prover(std::move(p)),
        malware(prover->mcu(), "malware", prover->surface().malware_region) {}
};

Scenario build(const RoamScenarioConfig& config) {
  ProverConfig pc;
  pc.scheme = config.scheme;
  pc.clock = config.clock;
  pc.protect_key = config.protect_key;
  pc.key_in_rom = config.key_in_rom;
  pc.protect_counter = config.protect_counter;
  pc.protect_clock = config.protect_clock;
  pc.measured_bytes = config.measured_bytes;
  if (config.scheme == FreshnessScheme::kTimestamp) {
    // ticks_per_ms depends only on the design: divider 1 for all but
    // kHw32Div (2^20).
    const double ticks_per_ms =
        (config.clock == ClockDesign::kHw32Div)
            ? pc.clock_hz / 1000.0 / static_cast<double>(1u << 20)
            : pc.clock_hz / 1000.0;
    pc.timestamp_window_ticks =
        static_cast<std::uint64_t>(config.window_ms * ticks_per_ms);
    // Symmetric skew allowance: with the SW-clock the reading can lag by
    // up to one LSB wrap; real deployments tolerate bounded clock skew.
    pc.timestamp_skew_ticks = pc.timestamp_window_ticks;
  }
  Scenario s(std::make_unique<ProverDevice>(
      pc, shared_key(), crypto::from_string("roam-scenario-app")));

  Verifier::Config vc;
  vc.scheme = config.scheme;
  ProverDevice* prover_ptr = s.prover.get();
  vc.clock = [prover_ptr] { return prover_ptr->ground_truth_ticks(); };
  s.verifier = std::make_unique<Verifier>(
      shared_key(), vc, crypto::from_string("roam-scenario-vrf"));
  s.verifier->set_reference_memory(s.prover->reference_memory());
  return s;
}

/// Post-attack checks shared by all scenarios.
void assess_aftermath(Scenario& s, RoamAttackResult& result) {
  // Stealth: the prover's clock agrees with ground truth (a reset clock
  // "remains behind", Sec. 5) and the device looks nominal.
  const auto clock = s.prover->prover_clock_ticks();
  result.stealthy =
      result.dos_succeeded &&
      (!clock.has_value() || *clock == s.prover->ground_truth_ticks());

  // Standard attestation after the attack: a fresh genuine round.
  s.prover->idle_ms(1.0);
  const AttestRequest probe = s.verifier->make_request();
  const AttestOutcome out = s.prover->handle(probe);
  result.survives_standard_attestation =
      out.status == AttestStatus::kOk &&
      s.verifier->check_response(probe, out.response);
}

RoamAttackResult counter_rollback(const RoamScenarioConfig& config) {
  Scenario s = build(config);
  RoamAttackResult result;
  result.attack = RoamAttack::kCounterRollback;

  // Phase I: a genuine request attreq(i) is delivered and recorded.
  s.prover->idle_ms(1.0);
  const AttestRequest recorded = s.verifier->make_request();
  if (s.prover->handle(recorded).status != AttestStatus::kOk) return result;

  // Phase II: malware rolls the stored counter back to i-1 and leaves.
  const hw::Addr counter_addr = s.prover->surface().counter_addr;
  result.manipulation_succeeded =
      s.malware.write64(counter_addr, recorded.freshness - 1) ==
      hw::BusStatus::kOk;

  // Phase III: after an arbitrary wait, replay attreq(i).
  s.prover->idle_ms(config.wait_ms);
  const AttestOutcome replayed = s.prover->handle(recorded);
  result.dos_succeeded = replayed.status == AttestStatus::kOk;
  result.final_status = replayed.status;
  result.freshness_verdict = replayed.freshness;

  assess_aftermath(s, result);
  return result;
}

RoamAttackResult clock_reset(const RoamScenarioConfig& config) {
  Scenario s = build(config);
  RoamAttackResult result;
  result.attack = RoamAttack::kClockReset;

  // Phase I: genuine attreq(t_i) delivered and recorded. Run the device
  // long enough that t_i - delta is a representable (non-negative) clock
  // value.
  s.prover->idle_ms(config.wait_ms + 100.0);
  const AttestRequest recorded = s.verifier->make_request();
  if (s.prover->handle(recorded).status != AttestStatus::kOk) return result;
  const std::uint64_t t_i = recorded.freshness;

  // Phase II: reset the prover's clock to t_i - delta and roll back the
  // policy's last-seen word (local state, same protection domain as the
  // counter). delta = wait time before the Phase III replay.
  const std::uint64_t delta_ticks = static_cast<std::uint64_t>(
      config.wait_ms * s.prover->ticks_per_ms());
  const hw::Addr clock_port = s.prover->surface().clock_port_addr;
  const bool clock_reset_ok =
      s.prover->mcu().bus().write64(
          s.malware.ctx(), clock_port,
          t_i > delta_ticks ? t_i - delta_ticks : 0) == hw::BusStatus::kOk;
  const bool state_rollback_ok =
      s.malware.write64(s.prover->surface().last_seen_addr, 0) ==
      hw::BusStatus::kOk;
  result.manipulation_succeeded = clock_reset_ok && state_rollback_ok;

  // Phase III: wait delta, then replay attreq(t_i). If the clock was
  // reset, the prover now reads ~t_i and accepts the stale request.
  s.prover->idle_ms(config.wait_ms);
  const AttestOutcome replayed = s.prover->handle(recorded);
  result.dos_succeeded = replayed.status == AttestStatus::kOk;
  result.final_status = replayed.status;
  result.freshness_verdict = replayed.freshness;

  assess_aftermath(s, result);
  return result;
}

// Shared body for the two SW-clock sabotage attacks: stop Clock_MSB
// updates, so a recorded-but-undelivered request stays "fresh" forever.
RoamAttackResult sw_clock_stop(RoamAttack attack,
                               const RoamScenarioConfig& config) {
  Scenario s = build(config);
  RoamAttackResult result;
  result.attack = attack;

  // Baseline genuine round (establishes protocol state).
  s.prover->idle_ms(10.0);
  const AttestRequest baseline = s.verifier->make_request();
  if (s.prover->handle(baseline).status != AttestStatus::kOk) return result;

  // Phase I: intercept (drop) the next genuine request — the prover never
  // sees attreq(t_1).
  s.prover->idle_ms(5.0);
  const AttestRequest recorded = s.verifier->make_request();

  // Phase II: stop the SW-clock.
  if (attack == RoamAttack::kIdtClobber) {
    result.manipulation_succeeded =
        s.malware.write32(s.prover->surface().idt_base, 0xDEAD) ==
        hw::BusStatus::kOk;
  } else {
    result.manipulation_succeeded =
        s.malware.write32(s.prover->surface().irq_mask_addr, 0xffffffff) ==
        hw::BusStatus::kOk;
  }

  // Phase III: wait far beyond the window, then deliver the recorded
  // request. With the clock stopped it still looks fresh.
  s.prover->idle_ms(config.wait_ms);
  const AttestOutcome delivered = s.prover->handle(recorded);
  result.dos_succeeded = delivered.status == AttestStatus::kOk;
  result.final_status = delivered.status;
  result.freshness_verdict = delivered.freshness;

  assess_aftermath(s, result);
  return result;
}

RoamAttackResult key_extraction(const RoamScenarioConfig& config) {
  Scenario s = build(config);
  RoamAttackResult result;
  result.attack = RoamAttack::kKeyExtraction;

  // Phase II: read K_Attest.
  Bytes stolen(s.prover->surface().key_size);
  result.key_extracted =
      s.malware.read_block(s.prover->surface().key_addr, stolen) ==
          hw::BusStatus::kOk &&
      stolen == shared_key();
  result.manipulation_succeeded = result.key_extracted;

  // Phase III: with the key, Adv_roam forges a *valid, fresh* request —
  // no freshness scheme helps, because the request is genuinely new.
  s.prover->idle_ms(config.wait_ms);
  AttestRequest forged;
  forged.scheme = config.scheme;
  forged.mac_alg = s.prover->config().mac_alg;
  forged.challenge = 0x4141414141414141ull;
  switch (config.scheme) {
    case FreshnessScheme::kCounter:
      forged.freshness = 1'000'000;  // far ahead: strictly increasing
      break;
    case FreshnessScheme::kTimestamp:
      forged.freshness = s.prover->ground_truth_ticks();
      break;
    default:
      forged.freshness = 0xabcdef;
      break;
  }
  if (result.key_extracted) {
    const auto mac = crypto::make_mac(forged.mac_alg, stolen);
    forged.mac = mac->compute(forged.header_bytes());
  } else {
    forged.mac = Bytes(20, 0);  // no key: forgery is garbage
  }
  const AttestOutcome out = s.prover->handle(forged);
  result.dos_succeeded = out.status == AttestStatus::kOk;
  result.final_status = out.status;
  result.freshness_verdict = out.freshness;

  assess_aftermath(s, result);
  return result;
}

RoamAttackResult key_overwrite(const RoamScenarioConfig& config) {
  Scenario s = build(config);
  RoamAttackResult result;
  result.attack = RoamAttack::kKeyOverwrite;

  // Phase II: overwrite K_Attest with an adversary-chosen key. Blocked by
  // ROM placement (hardware) or by the EA-MPU rule (RAM placement).
  const Bytes evil_key = crypto::from_string("evil-key-16byte!");
  result.manipulation_succeeded =
      s.malware.write_block(s.prover->surface().key_addr, evil_key) ==
      hw::BusStatus::kOk;

  // Phase III: requests MAC'd under the adversary key.
  s.prover->idle_ms(config.wait_ms);
  AttestRequest forged;
  forged.scheme = config.scheme;
  forged.mac_alg = s.prover->config().mac_alg;
  forged.freshness = 999;
  forged.challenge = 0x42;
  const auto mac = crypto::make_mac(forged.mac_alg, evil_key);
  forged.mac = mac->compute(forged.header_bytes());
  const AttestOutcome out = s.prover->handle(forged);
  result.dos_succeeded = out.status == AttestStatus::kOk;
  result.final_status = out.status;
  result.freshness_verdict = out.freshness;

  // Note: a successful overwrite also breaks *genuine* attestation (the
  // verifier's key no longer matches) — assess_aftermath will show it.
  assess_aftermath(s, result);
  return result;
}

}  // namespace

std::string to_string(RoamAttack attack) {
  switch (attack) {
    case RoamAttack::kCounterRollback:
      return "counter-rollback";
    case RoamAttack::kClockReset:
      return "clock-reset";
    case RoamAttack::kIdtClobber:
      return "idt-clobber";
    case RoamAttack::kIrqMaskDisable:
      return "irq-mask-disable";
    case RoamAttack::kKeyExtraction:
      return "key-extraction";
    case RoamAttack::kKeyOverwrite:
      return "key-overwrite";
    case RoamAttack::kNonceWipe:
      return "nonce-wipe";
  }
  return "unknown";
}

RoamAttackResult nonce_wipe(const RoamScenarioConfig& config) {
  Scenario s = build(config);
  RoamAttackResult result;
  result.attack = RoamAttack::kNonceWipe;

  // Phase I: a genuine nonce request is delivered and recorded.
  s.prover->idle_ms(1.0);
  const AttestRequest recorded = s.verifier->make_request();
  if (s.prover->handle(recorded).status != AttestStatus::kOk) return result;

  // Phase II: zero the whole history — count word and ring slots. (The
  // count alone is not enough since the freshness scan covers the write
  // target slot too, so remembered nonces would stay visible.)
  const hw::Addr store = s.prover->surface().nonce_store_addr;
  bool wiped =
      s.malware.write64(store, 0) == hw::BusStatus::kOk;
  for (std::size_t i = 0; wiped && i < s.prover->surface().nonce_capacity;
       ++i) {
    wiped = s.malware.write64(store + 8 + 8 * static_cast<hw::Addr>(i),
                              0) == hw::BusStatus::kOk;
  }
  result.manipulation_succeeded = wiped;

  // Phase III: replay the recorded request.
  s.prover->idle_ms(config.wait_ms);
  const AttestOutcome replayed = s.prover->handle(recorded);
  result.dos_succeeded = replayed.status == AttestStatus::kOk;
  result.final_status = replayed.status;
  result.freshness_verdict = replayed.freshness;

  assess_aftermath(s, result);
  return result;
}

TransientInfectionResult run_transient_infection(
    const RoamScenarioConfig& config) {
  Scenario s = build(config);
  TransientInfectionResult result;

  const auto genuine_round_valid = [&s] {
    s.prover->idle_ms(1.0);
    const AttestRequest req = s.verifier->make_request();
    const AttestOutcome out = s.prover->handle(req);
    return out.status == AttestStatus::kOk &&
           s.verifier->check_response(req, out.response);
  };

  // Infect: flip bytes inside the measured region (the EA-MPU does not
  // cover application memory — attestation, not access control, is the
  // detector there).
  const hw::Addr target = s.prover->surface().measured_memory.begin + 16;
  std::uint32_t original = 0;
  if (s.malware.read32(target, original) != hw::BusStatus::kOk) {
    return result;
  }
  result.infection_write_ok =
      s.malware.write32(target, original ^ 0xdeadbeef) == hw::BusStatus::kOk;

  // While infected, genuine attestation flags the device.
  result.detected_while_infected = !genuine_round_valid();

  // Erase: restore the original bytes — "covers its tracks".
  result.restored_ok =
      s.malware.write32(target, original) == hw::BusStatus::kOk;

  // After erasure, the device attests cleanly; the compromise is gone
  // without a trace.
  result.undetected_after_erase = genuine_round_valid();
  return result;
}

RoamAttackResult run_roam_attack(RoamAttack attack,
                                 const RoamScenarioConfig& config) {
  RoamAttackResult result;
  switch (attack) {
    case RoamAttack::kCounterRollback:
      result = counter_rollback(config);
      break;
    case RoamAttack::kClockReset:
      result = clock_reset(config);
      break;
    case RoamAttack::kIdtClobber:
    case RoamAttack::kIrqMaskDisable:
      result = sw_clock_stop(attack, config);
      break;
    case RoamAttack::kKeyExtraction:
      result = key_extraction(config);
      break;
    case RoamAttack::kKeyOverwrite:
      result = key_overwrite(config);
      break;
    case RoamAttack::kNonceWipe:
      result = nonce_wipe(config);
      break;
  }
  result.protections_enabled = config.protect_key &&
                               config.protect_counter &&
                               config.protect_clock;
  return result;
}

RoamComparison compare_roam_attack(RoamAttack attack,
                                   RoamScenarioConfig config) {
  RoamComparison cmp;
  config.protect_key = false;
  config.protect_counter = false;
  config.protect_clock = false;
  cmp.unprotected = run_roam_attack(attack, config);
  config.protect_key = true;
  config.protect_counter = true;
  config.protect_clock = true;
  cmp.protected_ = run_roam_attack(attack, config);
  return cmp;
}

}  // namespace ratt::adv
