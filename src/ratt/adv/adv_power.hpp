// Power-trace tampers: what the MAC-passing adversaries do to the
// prover's power waveform.
//
// The attestation protocol grades bytes on the wire; these two attacks
// keep every byte valid and are therefore invisible to it:
//
//   kRoamRestore  — Adv_roam's phase-II exit: the malware restores the
//                   pristine memory image right before the measurement
//                   runs, so mem_mac passes. The restore is a bulk
//                   memory write the clean round never does — extra
//                   active-power time in front of the measurement.
//   kSkipMemMac   — a shortcut prover that skips the measurement loop
//                   and answers from a cached MAC (valid while the
//                   memory and freshness element still match). The
//                   mem_mac phase — the round's dominant energy cost —
//                   vanishes from the waveform.
//
// apply_power_tamper() rewrites a CLEAN synthesized RoundTrace into the
// waveform such a tampered prover would exhibit, keeping the wire
// response untouched — the fixture the witness tests and
// bench_power_trace grade detection against.
#pragma once

#include <cstdint>
#include <string>

#include "ratt/obs/observer.hpp"
#include "ratt/obs/power/trace.hpp"
#include "ratt/timing/timing.hpp"

namespace ratt::adv {

enum class PowerTamper : std::uint8_t {
  kRoamRestore,  // bulk restore write before mem_mac (extra energy)
  kSkipMemMac,   // measurement skipped (missing energy)
};

std::string to_string(PowerTamper tamper);

/// Time Adv_roam's restore write takes: a bulk store of the measured
/// image, modeled at 2 cycles/byte on the prover's clock.
double restore_ms(const timing::DeviceTimingModel& timing,
                  std::size_t measured_bytes);

/// Rewrite `clean` into the tampered round's waveform. The returned
/// trace keeps the clean round's identity and outcome (the wire response
/// still validates — that is the point); only the segment list and the
/// span end move.
ratt::obs::power::RoundTrace apply_power_tamper(
    const ratt::obs::power::RoundTrace& clean, PowerTamper tamper,
    const timing::DeviceTimingModel& timing,
    const ratt::obs::PowerModel& power, std::size_t measured_bytes);

}  // namespace ratt::adv
