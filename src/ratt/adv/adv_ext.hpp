// The external adversary Adv_ext (Sec. 3.2): a Dolev-Yao attacker who
// controls the Vrf-Prv channel but cannot touch the prover's internals.
// Implements the four attack behaviors of Sec. 3.1/4.2 — verifier
// impersonation, replay, reorder, and delay — as self-contained scenarios
// against a freshly built prover/verifier pair, and the Table 2 matrix
// runner.
#pragma once

#include <string>
#include <vector>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::adv {

enum class ExtAttack : std::uint8_t {
  kImpersonate,  // bogus request with no knowledge of K_Attest
  kReplay,       // re-deliver a recorded genuine request
  kReorder,      // deliver two intercepted genuine requests out of order
  kDelay,        // hold a genuine request and deliver it late
};

std::string to_string(ExtAttack attack);

struct ExtScenarioConfig {
  attest::FreshnessScheme scheme = attest::FreshnessScheme::kCounter;
  crypto::MacAlgorithm mac_alg = crypto::MacAlgorithm::kHmacSha1;
  /// Sec. 4.1 request authentication on/off.
  bool authenticate_requests = true;
  /// Clock design for timestamp schemes (ignored otherwise).
  attest::ClockDesign clock = attest::ClockDesign::kHw64;
  /// Timestamp acceptance window (ms of device time).
  double window_ms = 100.0;
  /// How long the delay attack holds the request (must exceed window_ms
  /// to be a meaningful delay).
  double delay_ms = 1000.0;
  /// Measured memory size; small keeps host-side MACs fast while the
  /// timing model still reports device cost.
  std::size_t measured_bytes = 1024;
};

struct ExtAttackResult {
  ExtAttack attack{};
  attest::FreshnessScheme scheme{};
  /// Did the adversary-delivered message trigger a full (gratuitous)
  /// attestation? true = DoS succeeded.
  bool gratuitous_attestation = false;
  /// Convenience inverse: the prover detected and rejected the attack.
  bool detected = false;
  attest::AttestStatus final_status = attest::AttestStatus::kOk;
  attest::FreshnessVerdict freshness_verdict =
      attest::FreshnessVerdict::kAccept;
  /// Device time the adversary extracted with its own deliveries (ms).
  double stolen_device_ms = 0.0;
};

/// Run one Adv_ext attack scenario from scratch.
ExtAttackResult run_ext_attack(ExtAttack attack,
                               const ExtScenarioConfig& config);

/// One cell of Table 2.
struct Table2Cell {
  attest::FreshnessScheme scheme;
  ExtAttack attack;
  bool detected;  // "check mark" in the paper's table
};

/// Reproduce Table 2: {replay, reorder, delay} x {nonce, counter,
/// timestamp}.
std::vector<Table2Cell> run_table2_matrix(
    const ExtScenarioConfig& base = ExtScenarioConfig{});

}  // namespace ratt::adv
