#include "ratt/adv/adv_power.hpp"

namespace ratt::adv {

namespace power = ratt::obs::power;
namespace prof = ratt::obs::prof;

std::string to_string(PowerTamper tamper) {
  switch (tamper) {
    case PowerTamper::kRoamRestore:
      return "roam-restore";
    case PowerTamper::kSkipMemMac:
      return "skip-mem-mac";
  }
  return "unknown";
}

double restore_ms(const timing::DeviceTimingModel& timing,
                  std::size_t measured_bytes) {
  const double cycles = 2.0 * static_cast<double>(measured_bytes);
  return cycles / timing.clock_hz() * 1000.0;
}

power::RoundTrace apply_power_tamper(const power::RoundTrace& clean,
                                     PowerTamper tamper,
                                     const timing::DeviceTimingModel& timing,
                                     const ratt::obs::PowerModel& power_model,
                                     std::size_t measured_bytes) {
  power::RoundTrace out = clean;
  // Find the measurement segment — the phase both tampers pivot on.
  std::size_t mem_index = out.segments.size();
  for (std::size_t i = 0; i < out.segments.size(); ++i) {
    if (out.segments[i].phase == prof::Phase::kMemMac) {
      mem_index = i;
      break;
    }
  }
  if (mem_index == out.segments.size()) return out;  // no measurement phase

  if (tamper == PowerTamper::kRoamRestore) {
    // Phase-II exit: a bulk restore write runs at active power right
    // before the measurement. Everything from mem_mac on slides later.
    const double extra_ms = restore_ms(timing, measured_bytes);
    power::PhaseSegment restore;
    restore.phase = prof::Phase::kOther;
    restore.start_ms = out.segments[mem_index].start_ms;
    restore.duration_ms = extra_ms;
    restore.power_mw = power_model.active_mw;
    restore.energy_mj = power_model.active_mj(extra_ms);
    for (std::size_t i = mem_index; i < out.segments.size(); ++i) {
      out.segments[i].start_ms += extra_ms;
    }
    out.segments.insert(
        out.segments.begin() + static_cast<std::ptrdiff_t>(mem_index),
        restore);
    out.end_ms += extra_ms;
    return out;
  }

  // kSkipMemMac: the measurement never runs — its segment vanishes and
  // everything after it pulls earlier.
  const double gone_ms = out.segments[mem_index].duration_ms;
  out.segments.erase(out.segments.begin() +
                     static_cast<std::ptrdiff_t>(mem_index));
  for (std::size_t i = mem_index; i < out.segments.size(); ++i) {
    out.segments[i].start_ms -= gone_ms;
  }
  out.end_ms -= gone_ms;
  if (out.end_ms < out.start_ms) out.end_ms = out.start_ms;
  return out;
}

}  // namespace ratt::adv
