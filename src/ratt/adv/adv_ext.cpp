#include "ratt/adv/adv_ext.hpp"

namespace ratt::adv {

namespace {

using attest::AttestOutcome;
using attest::AttestRequest;
using attest::AttestStatus;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;
using crypto::Bytes;

Bytes shared_key() {
  return crypto::from_hex("0f0e0d0c0b0a09080706050403020100");
}

struct Scenario {
  std::unique_ptr<ProverDevice> prover;
  std::unique_ptr<Verifier> verifier;
};

Scenario build(const ExtScenarioConfig& config) {
  ProverConfig pc;
  pc.scheme = config.scheme;
  pc.mac_alg = config.mac_alg;
  pc.authenticate_requests = config.authenticate_requests;
  pc.measured_bytes = config.measured_bytes;
  if (config.scheme == FreshnessScheme::kTimestamp) {
    pc.clock = config.clock;
  }
  Scenario s;
  s.prover = std::make_unique<ProverDevice>(
      pc, shared_key(), crypto::from_string("ext-scenario-app"));
  if (config.scheme == FreshnessScheme::kTimestamp) {
    pc.timestamp_window_ticks = 0;  // recomputed below via ticks_per_ms
  }
  // Rebuild with the window converted to ticks of the chosen clock.
  if (config.scheme == FreshnessScheme::kTimestamp) {
    pc.timestamp_window_ticks = static_cast<std::uint64_t>(
        config.window_ms * s.prover->ticks_per_ms());
    s.prover = std::make_unique<ProverDevice>(
        pc, shared_key(), crypto::from_string("ext-scenario-app"));
  }

  Verifier::Config vc;
  vc.mac_alg = config.mac_alg;
  vc.scheme = config.scheme;
  vc.authenticate_requests = config.authenticate_requests;
  ProverDevice* prover_ptr = s.prover.get();
  vc.clock = [prover_ptr] { return prover_ptr->ground_truth_ticks(); };
  s.verifier = std::make_unique<Verifier>(
      shared_key(), vc, crypto::from_string("ext-scenario-vrf"));
  s.verifier->set_reference_memory(s.prover->reference_memory());
  return s;
}

ExtAttackResult finish(ExtAttack attack, const ExtScenarioConfig& config,
                       const AttestOutcome& adversary_outcome) {
  ExtAttackResult result;
  result.attack = attack;
  result.scheme = config.scheme;
  result.gratuitous_attestation =
      adversary_outcome.status == AttestStatus::kOk;
  result.detected = !result.gratuitous_attestation;
  result.final_status = adversary_outcome.status;
  result.freshness_verdict = adversary_outcome.freshness;
  result.stolen_device_ms = adversary_outcome.device_ms;
  return result;
}

ExtAttackResult impersonate(const ExtScenarioConfig& config) {
  Scenario s = build(config);
  // Adv_ext forges a request without K_Attest: header is well-formed,
  // MAC is garbage (it has no key material).
  AttestRequest forged;
  forged.scheme = config.scheme;
  forged.mac_alg = config.mac_alg;
  forged.freshness = (config.scheme == FreshnessScheme::kTimestamp)
                         ? s.prover->ground_truth_ticks()
                         : 1;
  forged.challenge = 0xdeadbeef;
  if (config.authenticate_requests) {
    const auto mac = crypto::make_mac(config.mac_alg,
                                      crypto::from_string("wrong-key-16byte"));
    forged.mac = mac->compute(forged.header_bytes());
  }
  return finish(ExtAttack::kImpersonate, config, s.prover->handle(forged));
}

ExtAttackResult replay(const ExtScenarioConfig& config) {
  Scenario s = build(config);
  // Genuine round: request delivered and attested normally.
  s.prover->idle_ms(1.0);
  const AttestRequest genuine = s.verifier->make_request();
  const AttestOutcome first = s.prover->handle(genuine);
  if (first.status != AttestStatus::kOk) {
    // Scenario setup failure; report as detected (no gratuitous work).
    return finish(ExtAttack::kReplay, config, first);
  }
  // Some time later, Adv_ext re-delivers the identical wire bytes.
  s.prover->idle_ms(5.0);
  const auto replayed = AttestRequest::from_bytes(genuine.to_bytes());
  return finish(ExtAttack::kReplay, config, s.prover->handle(*replayed));
}

ExtAttackResult reorder(const ExtScenarioConfig& config) {
  Scenario s = build(config);
  // Adv_ext intercepts two genuine requests r1, r2 (prover sees neither),
  // then delivers r2 first and r1 second. The *second* delivery is the
  // gratuitous one if accepted.
  s.prover->idle_ms(1.0);
  const AttestRequest r1 = s.verifier->make_request();
  s.prover->idle_ms(5.0);
  const AttestRequest r2 = s.verifier->make_request();
  const AttestOutcome out2 = s.prover->handle(r2);
  if (out2.status != AttestStatus::kOk) {
    return finish(ExtAttack::kReorder, config, out2);
  }
  return finish(ExtAttack::kReorder, config, s.prover->handle(r1));
}

ExtAttackResult delay(const ExtScenarioConfig& config) {
  Scenario s = build(config);
  // Adv_ext holds a genuine request for delay_ms, then delivers it.
  s.prover->idle_ms(1.0);
  const AttestRequest held = s.verifier->make_request();
  s.prover->idle_ms(config.delay_ms);
  return finish(ExtAttack::kDelay, config, s.prover->handle(held));
}

}  // namespace

std::string to_string(ExtAttack attack) {
  switch (attack) {
    case ExtAttack::kImpersonate:
      return "impersonate";
    case ExtAttack::kReplay:
      return "replay";
    case ExtAttack::kReorder:
      return "reorder";
    case ExtAttack::kDelay:
      return "delay";
  }
  return "unknown";
}

ExtAttackResult run_ext_attack(ExtAttack attack,
                               const ExtScenarioConfig& config) {
  switch (attack) {
    case ExtAttack::kImpersonate:
      return impersonate(config);
    case ExtAttack::kReplay:
      return replay(config);
    case ExtAttack::kReorder:
      return reorder(config);
    case ExtAttack::kDelay:
      return delay(config);
  }
  throw std::invalid_argument("run_ext_attack: unknown attack");
}

std::vector<Table2Cell> run_table2_matrix(const ExtScenarioConfig& base) {
  std::vector<Table2Cell> cells;
  for (auto scheme : {FreshnessScheme::kNonce, FreshnessScheme::kCounter,
                      FreshnessScheme::kTimestamp}) {
    for (auto attack :
         {ExtAttack::kReplay, ExtAttack::kReorder, ExtAttack::kDelay}) {
      ExtScenarioConfig config = base;
      config.scheme = scheme;
      const ExtAttackResult r = run_ext_attack(attack, config);
      cells.push_back(Table2Cell{scheme, attack, r.detected});
    }
  }
  return cells;
}

}  // namespace ratt::adv
