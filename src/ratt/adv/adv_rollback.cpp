#include "ratt/adv/adv_rollback.hpp"

namespace ratt::adv {

namespace {

using attest::AttestOutcome;
using attest::AttestStatus;
using attest::IncAttestRequest;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;
using crypto::Bytes;

Bytes shared_key() {
  return crypto::from_hex("b0b1b2b3b4b5b6b7b8b9babbbcbdbebf");
}

struct Scenario {
  std::unique_ptr<ProverDevice> prover;
  std::unique_ptr<Verifier> verifier;
  hw::SoftwareComponent malware;  // transient-compromise vantage point

  explicit Scenario(std::unique_ptr<ProverDevice> p)
      : prover(std::move(p)),
        malware(prover->mcu(), "malware", prover->surface().malware_region) {}
};

Scenario build(const RollbackScenarioConfig& config) {
  ProverConfig pc;
  pc.mac_alg = config.mac_alg;
  pc.scheme = config.scheme;
  pc.measured_bytes = config.measured_bytes;
  pc.enable_incremental = true;
  pc.protect_cache = config.protect_cache;
  pc.bind_generation = config.bind_generation;
  Scenario s(std::make_unique<ProverDevice>(
      pc, shared_key(), crypto::from_string("rollback-scenario-app")));

  Verifier::Config vc;
  vc.mac_alg = config.mac_alg;
  vc.scheme = config.scheme;
  vc.bind_generation = config.bind_generation;
  s.verifier = std::make_unique<Verifier>(
      shared_key(), vc, crypto::from_string("rollback-scenario-vrf"));
  s.verifier->set_reference_memory(s.prover->reference_memory());
  return s;
}

struct RoundResult {
  AttestStatus status = AttestStatus::kOk;
  bool valid = false;
  bool fallback = false;
};

/// One verifier-initiated incremental round, end to end.
RoundResult incremental_round(Scenario& s) {
  s.prover->idle_ms(1.0);
  const IncAttestRequest req = s.verifier->make_incremental_request();
  const AttestOutcome out = s.prover->handle_incremental(req);
  RoundResult r;
  r.status = out.status;
  if (out.status != AttestStatus::kOk) return r;
  r.fallback = out.inc_response.full_fallback();
  r.valid = s.verifier->check_incremental(req, out.inc_response);
  return r;
}

/// Snapshot / restore the whole cache window (generation + tag table)
/// from the malware's PC. Both fail against the EA-MPU cache rule.
bool snapshot_cache(Scenario& s, Bytes& out) {
  out.assign(s.prover->surface().cache_size, 0);
  return s.malware.read_block(s.prover->surface().cache_addr, out) ==
         hw::BusStatus::kOk;
}

bool restore_cache(Scenario& s, const Bytes& snapshot) {
  return s.malware.write_block(s.prover->surface().cache_addr, snapshot) ==
         hw::BusStatus::kOk;
}

/// Flip one word inside a measured page (the infection the cache is
/// supposed to force back into evidence).
bool tamper_page(Scenario& s, hw::Addr target) {
  std::uint32_t original = 0;
  if (s.malware.read32(target, original) != hw::BusStatus::kOk) return false;
  return s.malware.write32(target, original ^ 0xdeadbeef) ==
         hw::BusStatus::kOk;
}

RollbackAttackResult cache_restore(const RollbackScenarioConfig& config) {
  Scenario s = build(config);
  RollbackAttackResult result;
  result.attack = RollbackAttack::kCacheRestore;

  // Seed round: first contact forces a full fallback that fills the
  // cache with clean per-page tags.
  if (!incremental_round(s).valid) return result;

  // Phase II: snapshot the clean cache, then infect a measured page.
  Bytes snapshot;
  const bool snap_ok = snapshot_cache(s, snapshot);
  const hw::Addr target = s.prover->surface().measured_memory.begin + 64;
  if (!tamper_page(s, target)) return result;

  // One round runs while infected: the dirty page is re-MACed, the tag
  // betrays the tamper, the verifier flags it (and, when generation-
  // bound, drops its retained state).
  (void)incremental_round(s);

  // The rollback: put the pre-tamper evidence back. The dirty bit was
  // cleared by the anchor's own re-MAC, so the restored cache claims a
  // clean device while the infection is still resident.
  result.manipulation_succeeded = snap_ok && restore_cache(s, snapshot);

  const RoundResult r = incremental_round(s);
  result.attack_round_valid = r.valid;
  result.forced_full_fallback = r.fallback;
  result.rollback_accepted =
      result.manipulation_succeeded && r.valid && !r.fallback;
  result.final_retained_gen = s.verifier->retained_generation();
  return result;
}

RollbackAttackResult bitmap_clear(const RollbackScenarioConfig& config) {
  Scenario s = build(config);
  RollbackAttackResult result;
  result.attack = RollbackAttack::kBitmapClear;

  if (!incremental_round(s).valid) return result;

  // Phase II: infect a measured page, then scrub the write's only trace
  // — the dirty bit — without involving the trust anchor. The cache
  // itself is never touched; its stale clean tag does the lying.
  const hw::Addr target = s.prover->surface().measured_memory.begin + 64;
  if (!tamper_page(s, target)) return result;
  result.manipulation_succeeded =
      s.prover->mcu().bus().clear_dirty_page(s.malware.ctx(), target) ==
      hw::BusStatus::kOk;

  const RoundResult r = incremental_round(s);
  result.attack_round_valid = r.valid;
  result.forced_full_fallback = r.fallback;
  result.rollback_accepted =
      result.manipulation_succeeded && r.valid && !r.fallback;
  result.final_retained_gen = s.verifier->retained_generation();
  return result;
}

RollbackAttackResult generation_replay(const RollbackScenarioConfig& config) {
  Scenario s = build(config);
  RollbackAttackResult result;
  result.attack = RollbackAttack::kGenerationReplay;

  if (!incremental_round(s).valid) return result;

  // Phase II part 1: record the cache at generation g1.
  Bytes snapshot;
  const bool snap_ok = snapshot_cache(s, snapshot);

  // Advance the evidence generation without changing content: a
  // write-then-revert marks the page dirty (write-event semantics), the
  // next round re-MACs it to the same tag and bumps the generation.
  const hw::Addr target = s.prover->surface().measured_memory.begin + 64;
  std::uint32_t original = 0;
  if (s.malware.read32(target, original) != hw::BusStatus::kOk) return result;
  if (s.malware.write32(target, original ^ 1) != hw::BusStatus::kOk) {
    return result;
  }
  if (s.malware.write32(target, original) != hw::BusStatus::kOk) {
    return result;
  }
  if (!incremental_round(s).valid) return result;

  // Phase II part 2: roll the generation back to the recorded g1.
  result.manipulation_succeeded = snap_ok && restore_cache(s, snapshot);

  // The replayed generation must not validate as a delta: the bound
  // configuration forces a full fallback (since_gen != cache gen); the
  // naive one accepts the rolled-back state as current.
  const RoundResult r = incremental_round(s);
  result.attack_round_valid = r.valid;
  result.forced_full_fallback = r.fallback;
  result.rollback_accepted =
      result.manipulation_succeeded && r.valid && !r.fallback;
  result.final_retained_gen = s.verifier->retained_generation();
  return result;
}

}  // namespace

std::string to_string(RollbackAttack attack) {
  switch (attack) {
    case RollbackAttack::kCacheRestore:
      return "cache-restore";
    case RollbackAttack::kBitmapClear:
      return "bitmap-clear";
    case RollbackAttack::kGenerationReplay:
      return "generation-replay";
  }
  return "unknown";
}

RollbackAttackResult run_rollback_attack(
    RollbackAttack attack, const RollbackScenarioConfig& config) {
  RollbackAttackResult result;
  switch (attack) {
    case RollbackAttack::kCacheRestore:
      result = cache_restore(config);
      break;
    case RollbackAttack::kBitmapClear:
      result = bitmap_clear(config);
      break;
    case RollbackAttack::kGenerationReplay:
      result = generation_replay(config);
      break;
  }
  result.protections_enabled =
      config.protect_cache && config.bind_generation;
  return result;
}

RollbackComparison compare_rollback_attack(RollbackAttack attack,
                                           RollbackScenarioConfig config) {
  RollbackComparison cmp;
  config.protect_cache = false;
  config.bind_generation = false;
  cmp.unprotected = run_rollback_attack(attack, config);
  config.protect_cache = true;
  config.bind_generation = true;
  cmp.protected_ = run_rollback_attack(attack, config);
  return cmp;
}

}  // namespace ratt::adv
