// The rollback adversary Adv_rollback (DESIGN.md §4i): a roaming-style
// transient compromise aimed at the incremental attestation state
// instead of the freshness state. The per-page MAC cache, the dirty
// bitmap and the evidence generation are exactly the kind of "dynamic
// data on Prv" Sec. 3.2 warns about — if any of them can be rolled back
// to a pre-tamper snapshot, the prover serves stale evidence and a
// tampered page attests clean without ever being re-MACed.
//
// Three attacks, each against the three-knob protection matrix
// (protect_cache = EA-MPU cache rule + bus dirty authority,
// bind_generation = generation-bound folds + verifier reset-on-invalid):
//   kCacheRestore     — snapshot the cache, tamper, let one round detect
//                       it, restore the snapshot: the next round claims
//                       the pre-tamper evidence.
//   kBitmapClear      — tamper a page, then clear its dirty bit from the
//                       malware's PC: the anchor never re-MACs it.
//   kGenerationReplay — roll the cache generation back to a recorded
//                       value: stale "changed-since" state replays.
// Every manipulation goes through the simulated bus with the malware's
// program counter, so the EA-MPU rule and the dirty authority block
// exactly the writes the protected configuration says they block.
#pragma once

#include <string>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::adv {

enum class RollbackAttack : std::uint8_t {
  kCacheRestore,
  kBitmapClear,
  kGenerationReplay,
};

std::string to_string(RollbackAttack attack);

struct RollbackScenarioConfig {
  crypto::MacAlgorithm mac_alg = crypto::MacAlgorithm::kHmacSha1;
  attest::FreshnessScheme scheme = attest::FreshnessScheme::kCounter;
  /// Protection toggles: the experiment's independent variables.
  bool protect_cache = true;
  bool bind_generation = true;
  std::size_t measured_bytes = 4 * 4096;
};

struct RollbackAttackResult {
  RollbackAttack attack{};
  bool protections_enabled = false;
  /// Did the rollback manipulation itself go through (cache writable /
  /// dirty bit clearable from the malware's PC)?
  bool manipulation_succeeded = false;
  /// Verdict of the post-rollback incremental round at the verifier.
  bool attack_round_valid = false;
  /// Did that round force a full re-attestation (fallback flag)?
  bool forced_full_fallback = false;
  /// The attack's actual win condition: stale evidence accepted — a
  /// tampered page attested clean (kCacheRestore / kBitmapClear), or a
  /// rolled-back generation validated without a forced full re-MAC
  /// (kGenerationReplay).
  bool rollback_accepted = false;
  std::uint64_t final_retained_gen = 0;
};

/// Run one rollback attack from scratch.
RollbackAttackResult run_rollback_attack(RollbackAttack attack,
                                         const RollbackScenarioConfig& config);

/// Run the attack with both protections off (the naive cache) and both
/// on; the claim is rollback_accepted flips from true to false.
struct RollbackComparison {
  RollbackAttackResult unprotected;
  RollbackAttackResult protected_;
};
RollbackComparison compare_rollback_attack(RollbackAttack attack,
                                           RollbackScenarioConfig config);

}  // namespace ratt::adv
