// Ablation X5 (extends Sec. 4.1): how much the request-authentication
// primitive matters once the prover is hardened.
//
// After Sec. 4's mitigations, the residual DoS surface is the per-request
// *rejection* cost — one MAC validation. Under a heavy forged-request
// flood, that residual cost times the rate is the prover duty the
// attacker still controls, and it is exactly where the paper's
// "lightweight block ciphers such as Speck reduce the cost even further"
// argument pays off.
//
// Accounting runs on the obs::DosScoreboard: every forged request is
// filed under "<primitive>:<outcome>" with the prover time it extracted
// and the attacker airtime it cost, so the final table reports the
// asymmetry per primitive rather than a hand-rolled busy sum.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"
#include "ratt/obs/scoreboard.hpp"
#include "ratt/timing/timing.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::AttestOutcome;
using attest::AttestRequest;
using attest::CodeAttest;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;
using crypto::MacAlgorithm;

AttestRequest make_forged(MacAlgorithm alg) {
  AttestRequest forged;
  forged.scheme = FreshnessScheme::kCounter;
  forged.mac_alg = alg;
  forged.freshness = 1;
  forged.mac = crypto::Bytes(crypto::make_mac(alg, crypto::Bytes(16, 0))
                                 ->tag_size(),
                             0);
  return forged;
}

// Run a forged-request flood at `flood_rate_per_s` for 10 simulated
// seconds, filing every rejection on `scoreboard`. Returns the prover
// busy fraction.
double flood(MacAlgorithm alg, double flood_rate_per_s,
             obs::DosScoreboard& scoreboard) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.mac_alg = alg;
  config.measured_bytes = 1024;
  ProverDevice prover(config,
                      crypto::from_hex("000102030405060708090a0b0c0d0e0f"),
                      crypto::from_string("reject-cost-app"));
  const AttestRequest forged = make_forged(alg);
  // Attacker cost per forged request: 250 kbit/s airtime.
  const double attacker_ms =
      static_cast<double>(forged.to_bytes().size()) * 8.0 / 250.0;
  const std::string request_class =
      crypto::to_string(alg) + ":" + attest::to_string(
                                         attest::AttestStatus::kBadRequestMac);
  const double horizon_ms = 10'000.0;
  const auto n = static_cast<std::uint64_t>(flood_rate_per_s * 10.0);
  double busy_ms = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double device_ms = prover.handle(forged).device_ms;
    scoreboard.record(request_class, device_ms, attacker_ms);
    busy_ms += device_ms;
  }
  return busy_ms / horizon_ms;
}

// Incremental-attestation prover costs (DESIGN.md §4i): one device, one
// verifier, three rounds — the seeding full fallback, a delta with one
// dirty page, and a no-change delta.
struct IncCost {
  double full_ms = 0.0;    // first contact: every page re-MACed
  double delta1_ms = 0.0;  // one dirty page re-MACed
  double delta0_ms = 0.0;  // nothing dirty: fold over cached tags only
};

IncCost measure_incremental(MacAlgorithm alg, std::size_t measured_bytes) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.mac_alg = alg;
  config.measured_bytes = measured_bytes;
  config.enable_incremental = true;
  const crypto::Bytes key =
      crypto::from_hex("000102030405060708090a0b0c0d0e0f");
  ProverDevice prover(config, key, crypto::from_string("reject-cost-app"));
  Verifier::Config vc;
  vc.mac_alg = alg;
  vc.scheme = FreshnessScheme::kCounter;
  Verifier verifier(key, vc, crypto::from_string("reject-cost-vrf"));
  verifier.set_reference_memory(prover.reference_memory());
  hw::SoftwareComponent writer(prover.mcu(), "writer",
                               prover.surface().malware_region);

  const auto round = [&]() {
    prover.idle_ms(1.0);
    const attest::IncAttestRequest req = verifier.make_incremental_request();
    const AttestOutcome out = prover.handle_incremental(req);
    if (!verifier.check_incremental(req, out.inc_response)) {
      std::fprintf(stderr, "incremental round failed to validate\n");
      std::exit(2);
    }
    return out.device_ms;
  };

  IncCost cost;
  cost.full_ms = round();
  const hw::Addr target = prover.surface().measured_memory.begin + 5;
  std::uint8_t b = 0;
  writer.read8(target, b);
  writer.write8(target, b);  // same-value write still dirties the page
  cost.delta1_ms = round();
  cost.delta0_ms = round();
  return cost;
}

int run_incremental(double check_against) {
  std::printf(
      "=== Incremental paged attestation: prover cost per round "
      "(DESIGN.md 4i) ===\n"
      "(full = seeding fallback; delta-1 = one dirty 4 KB page; delta-0 = "
      "no change)\n\n");
  std::printf("  %-22s %-10s %-12s %-12s %-12s %-10s\n", "primitive",
              "size", "full (ms)", "delta-1 (ms)", "delta-0 (ms)",
              "speedup");
  double gated_speedup = 0.0;
  for (auto alg : {MacAlgorithm::kHmacSha1, MacAlgorithm::kSpeckCmac}) {
    for (std::size_t pages : {16, 64}) {
      const std::size_t bytes = pages * CodeAttest::kPageBytes;
      const IncCost cost = measure_incremental(alg, bytes);
      const double speedup = cost.full_ms / cost.delta1_ms;
      char size[16];
      std::snprintf(size, sizeof(size), "%zu KB", bytes / 1024);
      std::printf("  %-22s %-10s %-12.3f %-12.3f %-12.3f %-10.1f\n",
                  crypto::to_string(alg).c_str(), size, cost.full_ms,
                  cost.delta1_ms, cost.delta0_ms, speedup);
      // The CI gate grades the headline configuration: 256 KB, HMAC-SHA1.
      if (alg == MacAlgorithm::kHmacSha1 && pages == 64) {
        gated_speedup = speedup;
      }
    }
  }
  std::printf(
      "\n  The delta round charges only the dirty pages' re-MAC plus the "
      "fold over the\n  cached tag table - the asymmetry that lets a duty-"
      "cycled prover attest often.\n");
  if (check_against > 0.0) {
    const bool ok = gated_speedup >= check_against;
    std::printf(
        "\ncheck: dirty-1-page speedup %.1fx %s required %.1fx at 256 KB "
        "(HMAC-SHA1)\n",
        gated_speedup, ok ? ">=" : "<", check_against);
    return ok ? 0 : 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool incremental = false;
  double check_against = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--incremental") == 0) {
      incremental = true;
    } else if (std::strncmp(argv[i], "--check-against=", 16) == 0) {
      check_against = std::strtod(argv[i] + 16, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--incremental] [--check-against=<ratio>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (incremental) {
    return run_incremental(check_against);
  }
  const timing::DeviceTimingModel model;
  std::printf(
      "=== X5: residual DoS surface vs. request-auth primitive "
      "(Sec. 4.1 ablation) ===\n"
      "(hardened prover; forged-request flood; prover busy fraction spent "
      "rejecting)\n\n");
  obs::DosScoreboard scoreboard;  // default 7.2 mW prover power model
  std::printf("  %-22s %-12s", "primitive", "reject (ms)");
  for (double rate : {100.0, 500.0, 2000.0}) {
    char head[24];
    std::snprintf(head, sizeof(head), "busy@%.0f/s", rate);
    std::printf(" %-12s", head);
  }
  std::printf("\n");
  for (auto alg : {MacAlgorithm::kHmacSha1, MacAlgorithm::kAesCbcMac,
                   MacAlgorithm::kAesCmac, MacAlgorithm::kSpeckCbcMac,
                   MacAlgorithm::kSpeckCmac}) {
    std::printf("  %-22s %-12.3f", crypto::to_string(alg).c_str(),
                model.request_auth_ms(alg));
    for (double rate : {100.0, 500.0, 2000.0}) {
      // A throwaway scoreboard for the lower rates; only the 2000/s
      // flood feeds the printed asymmetry table below.
      obs::DosScoreboard lower;
      obs::DosScoreboard& board = rate == 2000.0 ? scoreboard : lower;
      char cell[24];
      std::snprintf(cell, sizeof(cell), "%.1f%%",
                    100.0 * flood(alg, rate, board));
      std::printf(" %-12s", cell);
    }
    std::printf("\n");
  }
  std::printf(
      "\n  At 2000 forged requests/s an HMAC-SHA1 prover burns ~86%% of "
      "its time rejecting;\n  a Speck prover ~3%%. This is the paper's "
      "Sec. 4.1 point, quantified end to end:\n  the cheaper the "
      "validation, the higher the flood rate the prover shrugs off.\n");
  std::printf(
      "\n=== DoS scoreboard at 2000 forged requests/s (per primitive) "
      "===\n\n");
  scoreboard.print(stdout);
  return 0;
}
