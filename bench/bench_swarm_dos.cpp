// Extension experiment X2 (future-work item 1, IoT): attestation health
// of a device fleet under a replay-flooding adversary, as fleet size
// grows. Each device has its own K_Attest; the attacker records one
// genuine request per link and replays it continuously.
//
// Accounting runs on ratt::obs: the fleet observer is attached after the
// recording phase, so the registry's prover.busy_ms counter covers the
// measurement window only, and the reject breakdown comes straight from
// the prover.outcome.* counters instead of being re-derived by hand.
//
// Two modes:
//   (no args)       the original X2 sweep table, 1..16 devices, serial.
//   --devices=N [--threads=N] [--shards=N] [--trace=path]
//                   fleet-scale run on the sharded Swarm. Everything on
//                   stdout (and the --trace JSONL) is byte-identical for
//                   the same seed at ANY --threads value; wall-clock
//                   timing goes to stderr. The shard count defaults to
//                   min(devices, 16) and is deliberately independent of
//                   --threads, so the shard plan — and with it the trace
//                   ring contents — never varies with parallelism.
//   --link=PROFILE  (with the fleet-scale flags) swaps the replay flood
//                   for a net::FaultyLink on every channel + reliable
//                   rounds: the printed MACs/round is the fleet-wide DoS
//                   amplification the lossy wire extracts via verifier
//                   retransmissions (each retry is a fresh request the
//                   prover fully serves).
//   --fleet         periodic-attestation throughput bench on the timing
//                   wheel + lazy-materialization stack (no adversary):
//                   every device attests every --period=MS over
//                   --horizon=MS. --heap swaps in the reference binary
//                   heap and --eager the legacy up-front schedule, so CI
//                   can byte-compare the stdout/trace of both stacks.
//                   --check-against=BENCH_fleet.json re-runs the pinned
//                   configuration and fails on any deterministic-field
//                   mismatch or a >60% requests/s regression.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ratt/obs/metrics.hpp"
#include "ratt/sim/swarm.hpp"

namespace {

using namespace ratt;  // NOLINT

struct FleetRow {
  std::size_t devices;
  std::uint64_t genuine_valid;
  std::uint64_t genuine_sent;
  std::uint64_t replays_rejected;
  double attacker_extracted_ms;
  double attacker_extracted_mj;
  double peak_duty_fraction;
};

double counter_value(const obs::Registry& registry, const char* name) {
  const obs::Counter* c = registry.find_counter(name);
  return c == nullptr ? 0.0 : c->value();
}

FleetRow run_fleet(std::size_t device_count, bool hardened) {
  sim::SwarmConfig config;
  config.device_count = device_count;
  config.prover.scheme = hardened ? attest::FreshnessScheme::kCounter
                                  : attest::FreshnessScheme::kNone;
  config.prover.authenticate_requests = hardened;
  config.prover.measured_bytes = 16 * 1024;  // ~24 ms per attestation
  config.attest_period_ms = 250.0;

  sim::Swarm swarm(config, crypto::from_string("fleet-bench-seed"));

  // The attacker records the first genuine request on every link...
  std::vector<sim::RecordingTap> taps(device_count);
  for (std::size_t i = 0; i < device_count; ++i) {
    swarm.channel(i).set_tap(&taps[i]);
    swarm.session(i).send_request();
  }
  swarm.run_all();

  // ...then the observer starts the clock on the measurement window and
  // the attacker replays the recording 20x per device.
  obs::Registry registry;
  swarm.attach_observer(&registry, nullptr);
  for (std::size_t i = 0; i < device_count; ++i) {
    if (taps[i].recorded_to_prover().empty()) continue;
    const crypto::Bytes recorded = taps[i].recorded_to_prover()[0].payload;
    for (int k = 0; k < 20; ++k) {
      swarm.channel(i).inject_to_prover(recorded, 10.0 + 45.0 * k);
    }
  }
  const sim::SwarmReport report = swarm.run(1000.0);

  FleetRow row{};
  row.devices = device_count;
  row.genuine_valid = report.total_valid();
  row.genuine_sent = report.total_sent();
  row.replays_rejected += static_cast<std::uint64_t>(
      counter_value(registry, "prover.outcome.not-fresh") +
      counter_value(registry, "prover.outcome.bad-request-mac"));
  for (const auto& d : report.devices) {
    if (d.duty_fraction > row.peak_duty_fraction) {
      row.peak_duty_fraction = d.duty_fraction;
    }
  }
  // Window-only prover time minus the genuine rounds run in the window:
  // what's left is the time the attacker extracted.
  const timing::DeviceTimingModel model;
  const double genuine_round_ms = model.memory_attestation_ms(
      crypto::MacAlgorithm::kHmacSha1, 16 * 1024);
  const auto window_valid = static_cast<double>(
      report.total_valid() >= device_count
          ? report.total_valid() - device_count  // phase-I rounds
          : 0);
  row.attacker_extracted_ms =
      counter_value(registry, "prover.busy_ms") -
      window_valid * genuine_round_ms;
  if (row.attacker_extracted_ms < 0) row.attacker_extracted_ms = 0;
  row.attacker_extracted_mj =
      obs::PowerModel{}.active_mj(row.attacker_extracted_ms);
  return row;
}

int run_sweep_table() {
  std::printf(
      "=== X2: fleet-scale replay flood (20 replays/device/s window) "
      "===\n\n");
  for (const bool hardened : {false, true}) {
    std::printf("  %s fleet:\n",
                hardened ? "hardened (auth + counter)" : "unprotected");
    std::printf("    %-9s %-16s %-18s %-22s %-14s %-10s\n", "devices",
                "genuine valid", "replays rejected",
                "attacker-extracted ms", "stolen mJ", "peak duty");
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
      const FleetRow row = run_fleet(n, hardened);
      std::printf("    %-9zu %llu/%-14llu %-18llu %-22.1f %-14.3f %-10.3f\n",
                  row.devices,
                  static_cast<unsigned long long>(row.genuine_valid),
                  static_cast<unsigned long long>(row.genuine_sent),
                  static_cast<unsigned long long>(row.replays_rejected),
                  row.attacker_extracted_ms, row.attacker_extracted_mj,
                  row.peak_duty_fraction);
    }
  }
  std::printf(
      "\n  Shape: attacker-extracted prover time grows linearly with "
      "fleet size for the\n  unprotected fleet (~480 ms/device/s: the "
      "device is mostly the attacker's),\n  and stays near zero for the "
      "hardened fleet, whose rejects grow instead.\n");
  return 0;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct FleetScaleOptions {
  std::size_t devices = 1024;
  std::size_t threads = 1;
  std::size_t shards = 0;  // 0 = min(devices, 16)
  std::string trace_path;
  std::string link;  // faulty-link profile; enables reliable rounds
  std::string json_path;  // machine-readable summary (incl. wall-clock)
  bool slow_bus = false;  // per-byte reference bus path (CI byte-compare)
  // --fleet mode (periodic attestation, no adversary):
  bool fleet = false;
  std::size_t measured = 64;   // bytes measured per round
  double period_ms = 125.0;    // attestation period
  double horizon_ms = 1000.0;  // simulated horizon
  bool heap = false;           // reference binary heap instead of the wheel
  bool eager = false;          // legacy eager schedule instead of lazy
  bool no_share = false;       // per-device boot images (no template)
  bool no_trace = false;       // registry-only observability (1M smoke)
  bool incremental = false;    // incremental paged attestation rounds
  bool no_batch = false;       // scalar verifier MACs (byte-compare ref)
  bool no_soa = false;         // per-object heap components (byte-compare)
  std::string check_path;      // --check-against=BENCH_fleet.json
  // Perf floor as a multiple of the baseline's requests/s. The default
  // 0.4 is the anti-flake regression floor for same-generation
  // baselines; CI passes 2.0 against the previous generation's file to
  // pin the batching speedup itself.
  double min_speedup = 0.4;
};

int run_fleet_scale(const FleetScaleOptions& opt) {
  sim::SwarmConfig config;
  config.device_count = opt.devices;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.authenticate_requests = true;
  config.prover.measured_bytes = 16 * 1024;
  config.attest_period_ms = 250.0;
  config.prover.bulk_bus = !opt.slow_bus;
  config.prover.enable_incremental = opt.incremental;
  config.stagger_ms = 0.5;  // keep every device active inside the horizon
  config.shard_count =
      opt.shards != 0 ? opt.shards : std::min<std::size_t>(opt.devices, 16);
  if (!opt.link.empty()) {
    // --link=PROFILE: the whole fleet runs reliable rounds over this
    // faulty link; the replay flood is replaced by the link's own
    // retransmission amplification (every retry = one extra full MAC).
    const auto profile = net::link_profile_by_name(opt.link);
    if (!profile.has_value()) {
      std::fprintf(stderr, "unknown link profile '%s'\n", opt.link.c_str());
      return 2;
    }
    config.link = *profile;
    config.reliable = true;
    config.retry.max_attempts = 4;
    config.retry.base_timeout_ms = 0.0;  // derived per device
    config.retry.jitter_ms = 5.0;
  }

  sim::Swarm swarm(config, crypto::from_string("fleet-bench-seed"));

  obs::Registry registry;
  std::vector<sim::RecordingTap> taps(opt.devices);
  if (opt.link.empty()) {
    // Phase I (untraced, serial): record one genuine request per link.
    for (std::size_t i = 0; i < opt.devices; ++i) {
      swarm.channel(i).set_tap(&taps[i]);
      swarm.session(i).send_request();
    }
    swarm.run_all();

    // Phase II: per-shard trace rings + shared atomic registry, 20
    // replays per device, drained on the requested number of worker
    // threads.
    swarm.attach_sharded_observer(&registry);
    for (std::size_t i = 0; i < opt.devices; ++i) {
      if (taps[i].recorded_to_prover().empty()) continue;
      const crypto::Bytes recorded = taps[i].recorded_to_prover()[0].payload;
      for (int k = 0; k < 20; ++k) {
        swarm.channel(i).inject_to_prover(recorded, 10.0 + 45.0 * k);
      }
    }
  } else {
    swarm.attach_sharded_observer(&registry);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const sim::SwarmReport report = swarm.run_parallel(1000.0, opt.threads);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  const std::vector<obs::TraceRecord> merged = swarm.merged_trace();
  std::ostringstream jsonl;
  obs::write_jsonl(jsonl, merged);
  const std::string jsonl_text = jsonl.str();

  if (!opt.trace_path.empty()) {
    std::ofstream out(opt.trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open trace file: %s\n",
                   opt.trace_path.c_str());
      return 2;
    }
    out << jsonl_text;
  }

  // Deterministic surface: everything below is identical for the same
  // seed at any --threads value (thread count and wall clock go to
  // stderr, which the byte-identity comparison excludes).
  if (opt.link.empty()) {
    std::printf("=== X2 fleet-scale replay flood ===\n");
  } else {
    std::printf("=== X2 fleet-scale lossy-link amplification ===\n");
    std::printf("link profile:     %s\n", opt.link.c_str());
  }
  std::printf("devices:          %zu\n", opt.devices);
  std::printf("shards:           %zu\n", swarm.shard_count());
  std::printf("horizon_ms:       1000\n");
  std::printf("genuine valid:    %llu\n",
              static_cast<unsigned long long>(report.total_valid()));
  std::printf("genuine sent:     %llu\n",
              static_cast<unsigned long long>(report.total_sent()));
  std::printf("replays rejected: %llu\n",
              static_cast<unsigned long long>(
                  counter_value(registry, "prover.outcome.not-fresh") +
                  counter_value(registry, "prover.outcome.bad-request-mac")));
  if (!opt.link.empty()) {
    std::uint64_t started = 0, valid = 0, unreachable = 0, retransmits = 0;
    std::uint64_t timeouts = 0, duplicates = 0, macs = 0;
    for (std::size_t i = 0; i < swarm.size(); ++i) {
      const auto& s = report.devices[i].stats;
      started += s.rounds_started;
      valid += s.responses_valid;
      unreachable += s.rounds_unreachable;
      retransmits += s.retransmits;
      timeouts += s.timeouts;
      duplicates += s.duplicate_responses;
      macs += swarm.prover(i).anchor().attestations_performed();
    }
    std::printf("rounds started:   %llu\n",
                static_cast<unsigned long long>(started));
    std::printf("rounds unreach:   %llu\n",
                static_cast<unsigned long long>(unreachable));
    std::printf("retransmits:      %llu\n",
                static_cast<unsigned long long>(retransmits));
    std::printf("timeouts:         %llu\n",
                static_cast<unsigned long long>(timeouts));
    std::printf("dup responses:    %llu\n",
                static_cast<unsigned long long>(duplicates));
    std::printf("memory MACs:      %llu\n",
                static_cast<unsigned long long>(macs));
    std::printf("MACs/round:       %.3f\n",
                valid == 0 ? 0.0
                           : static_cast<double>(macs) /
                                 static_cast<double>(valid));
  }
  std::printf("events leftover:  %zu\n", report.events_leftover);
  std::printf("trace records:    %zu\n", merged.size());
  std::printf("trace jsonl fnv:  %016llx\n",
              static_cast<unsigned long long>(fnv1a(jsonl_text)));
  std::fprintf(stderr, "threads=%zu wall_ms=%.1f\n", opt.threads, wall_ms);

  if (!opt.json_path.empty()) {
    // Machine-readable summary. Wall-clock and thread count live here
    // (and on stderr) only — stdout stays byte-identical across runs.
    std::ofstream json(opt.json_path, std::ios::binary);
    if (!json) {
      std::fprintf(stderr, "cannot open json file: %s\n",
                   opt.json_path.c_str());
      return 2;
    }
    char fnv_hex[17];
    std::snprintf(fnv_hex, sizeof fnv_hex, "%016llx",
                  static_cast<unsigned long long>(fnv1a(jsonl_text)));
    json << "{\n"
         << "  \"bench\": \"bench_swarm_dos\",\n"
         << "  \"devices\": " << opt.devices << ",\n"
         << "  \"shards\": " << swarm.shard_count() << ",\n"
         << "  \"threads\": " << opt.threads << ",\n"
         << "  \"bulk_bus\": " << (opt.slow_bus ? "false" : "true") << ",\n"
         << "  \"genuine_valid\": " << report.total_valid() << ",\n"
         << "  \"genuine_sent\": " << report.total_sent() << ",\n"
         << "  \"replays_rejected\": "
         << static_cast<std::uint64_t>(
                counter_value(registry, "prover.outcome.not-fresh") +
                counter_value(registry, "prover.outcome.bad-request-mac"))
         << ",\n"
         << "  \"trace_records\": " << merged.size() << ",\n"
         << "  \"trace_jsonl_fnv\": \"" << fnv_hex << "\",\n"
         << "  \"requests_per_sec\": "
         << (wall_ms > 0.0 ? 1000.0 *
                                 static_cast<double>(report.total_sent()) /
                                 wall_ms
                           : 0.0)
         << ",\n"
         << "  \"wall_ms\": " << wall_ms << "\n"
         << "}\n";
  }
  return 0;
}

/// "key": value lookup in a flat JSON object (the string-search idiom
/// bench_profile uses for its baseline — no JSON library in the image).
bool find_json_number(const std::string& text, const char* key,
                      double* out) {
  const std::size_t at = text.find("\"" + std::string(key) + "\":");
  if (at == std::string::npos) return false;
  *out = std::strtod(text.c_str() + at + std::strlen(key) + 3, nullptr);
  return true;
}

bool find_json_string(const std::string& text, const char* key,
                      std::string* out) {
  const std::size_t at = text.find("\"" + std::string(key) + "\": \"");
  if (at == std::string::npos) return false;
  const std::size_t begin = at + std::strlen(key) + 5;
  const std::size_t end = text.find('"', begin);
  if (end == std::string::npos) return false;
  *out = text.substr(begin, end - begin);
  return true;
}

struct FleetResult {
  std::uint64_t rounds_valid = 0;
  std::uint64_t rounds_sent = 0;
  std::uint64_t events_run = 0;
  std::size_t materialized = 0;
  std::size_t trace_records = 0;
  std::string trace_fnv;
  double requests_per_sec = 0.0;
  double wall_ms = 0.0;
};

/// Gate a --fleet run against a pinned BENCH_fleet.json: deterministic
/// fields must match exactly; requests/s may not fall below 40% of the
/// recorded machine's rate (generous, so a loaded CI runner does not
/// flake, while a real scheduler regression — the wheel degrading to
/// heap-like behavior is several x — still trips it).
int check_fleet_against(const FleetScaleOptions& opt,
                        const FleetResult& result) {
  std::ifstream in(opt.check_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline: %s\n",
                 opt.check_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  int failures = 0;
  const auto expect_u64 = [&](const char* key, std::uint64_t now) {
    double base = 0.0;
    if (!find_json_number(text, key, &base)) {
      std::fprintf(stderr, "baseline is missing \"%s\"\n", key);
      ++failures;
      return;
    }
    if (static_cast<std::uint64_t>(base) != now) {
      std::fprintf(stderr,
                   "FLEET MISMATCH: %s baseline %llu vs now %llu\n", key,
                   static_cast<unsigned long long>(base),
                   static_cast<unsigned long long>(now));
      ++failures;
    }
  };
  expect_u64("devices", opt.devices);
  expect_u64("measured_bytes", opt.measured);
  expect_u64("rounds_sent", result.rounds_sent);
  expect_u64("rounds_valid", result.rounds_valid);
  expect_u64("events_run", result.events_run);
  expect_u64("materialized", result.materialized);
  if (!opt.no_trace) {
    expect_u64("trace_records", result.trace_records);
    std::string base_fnv;
    if (!find_json_string(text, "trace_jsonl_fnv", &base_fnv)) {
      std::fprintf(stderr, "baseline is missing \"trace_jsonl_fnv\"\n");
      ++failures;
    } else if (base_fnv != result.trace_fnv) {
      std::fprintf(stderr, "FLEET MISMATCH: trace_jsonl_fnv %s vs %s\n",
                   base_fnv.c_str(), result.trace_fnv.c_str());
      ++failures;
    }
  }
  double base_rps = 0.0;
  if (!find_json_number(text, "requests_per_sec", &base_rps)) {
    std::fprintf(stderr, "baseline is missing \"requests_per_sec\"\n");
    ++failures;
  } else if (result.requests_per_sec < opt.min_speedup * base_rps) {
    std::fprintf(stderr,
                 "FLEET PERF REGRESSION: %.0f requests/s vs baseline "
                 "%.0f (floor %.0f%%)\n",
                 result.requests_per_sec, base_rps, opt.min_speedup * 100.0);
    ++failures;
  } else {
    std::fprintf(stderr,
                 "perf gate ok: %.0f requests/s vs baseline %.0f "
                 "(floor %.0f%%)\n",
                 result.requests_per_sec, base_rps, opt.min_speedup * 100.0);
  }
  if (failures == 0) {
    std::fprintf(stderr, "fleet gate ok (vs %s)\n", opt.check_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

int run_fleet_periodic(const FleetScaleOptions& opt) {
  sim::SwarmConfig config;
  config.device_count = opt.devices;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.authenticate_requests = true;
  config.prover.measured_bytes = opt.measured;
  config.attest_period_ms = opt.period_ms;
  config.prover.enable_incremental = opt.incremental;
  config.shard_count =
      opt.shards != 0 ? opt.shards : std::min<std::size_t>(opt.devices, 16);
  config.use_wheel = !opt.heap;
  config.eager_schedule = opt.eager;
  config.share_app_image = !opt.no_share;
  config.mac_batch = !opt.no_batch;
  config.soa_blocks = !opt.no_soa;

  sim::Swarm swarm(config, crypto::from_string("fleet-bench-seed"));
  obs::Registry registry;
  if (opt.no_trace) {
    swarm.attach_observer(&registry, nullptr);
  } else {
    swarm.attach_sharded_observer(&registry);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const sim::SwarmReport report =
      swarm.run_parallel(opt.horizon_ms, opt.threads);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  FleetResult result;
  result.rounds_valid = report.total_valid();
  result.rounds_sent = report.total_sent();
  const obs::Counter* events_run = registry.find_counter("queue.events_run");
  result.events_run = events_run == nullptr ? 0 : events_run->count();
  result.materialized = swarm.materialized_count();
  result.wall_ms = wall_ms;
  result.requests_per_sec =
      wall_ms > 0.0
          ? 1000.0 * static_cast<double>(result.rounds_sent) / wall_ms
          : 0.0;

  std::string jsonl_text;
  if (!opt.no_trace) {
    std::ostringstream jsonl;
    obs::write_jsonl(jsonl, swarm.merged_trace());
    jsonl_text = jsonl.str();
    result.trace_records = swarm.merged_trace().size();
    char fnv_hex[17];
    std::snprintf(fnv_hex, sizeof fnv_hex, "%016llx",
                  static_cast<unsigned long long>(fnv1a(jsonl_text)));
    result.trace_fnv = fnv_hex;
    if (!opt.trace_path.empty()) {
      std::ofstream out(opt.trace_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot open trace file: %s\n",
                     opt.trace_path.c_str());
        return 2;
      }
      out << jsonl_text;
    }
  }

  // Deterministic surface (byte-identical for the same seed at any
  // --threads, and across --heap/--eager): wall clock goes to stderr.
  std::printf("=== fleet periodic attestation ===\n");
  std::printf("devices:          %zu\n", opt.devices);
  std::printf("shards:           %zu\n", swarm.shard_count());
  std::printf("scheduler:        %s%s\n", opt.heap ? "heap" : "wheel",
              opt.eager ? " (eager)" : " (lazy)");
  std::printf("shared image:     %s\n", opt.no_share ? "no" : "yes");
  std::printf("incremental:      %s\n", opt.incremental ? "yes" : "no");
  std::printf("measured bytes:   %zu\n", opt.measured);
  std::printf("period_ms:        %g\n", opt.period_ms);
  std::printf("horizon_ms:       %g\n", opt.horizon_ms);
  std::printf("rounds sent:      %llu\n",
              static_cast<unsigned long long>(result.rounds_sent));
  std::printf("rounds valid:     %llu\n",
              static_cast<unsigned long long>(result.rounds_valid));
  std::printf("events run:       %llu\n",
              static_cast<unsigned long long>(result.events_run));
  std::printf("materialized:     %zu\n", result.materialized);
  std::printf("events leftover:  %zu\n", report.events_leftover);
  if (!opt.no_trace) {
    std::printf("trace records:    %zu\n", result.trace_records);
    std::printf("trace jsonl fnv:  %s\n", result.trace_fnv.c_str());
  }
  // Footprint report (stderr — resident bytes depend on malloc behavior
  // no more than page/slab math, but they are not part of the pinned
  // deterministic stdout surface).
  const sim::Swarm::ResidentReport resident = swarm.resident();
  std::fprintf(stderr,
               "resident: devices=%zu arena_bytes=%zu bus_bytes=%zu "
               "table_bytes=%zu shared_bytes=%zu per_device_bytes=%.1f\n",
               resident.devices, resident.arena_bytes, resident.bus_bytes,
               resident.table_bytes, resident.shared_bytes,
               resident.per_device_bytes());
  std::fprintf(stderr, "threads=%zu wall_ms=%.1f requests_per_sec=%.0f\n",
               opt.threads, wall_ms, result.requests_per_sec);
  if (report.events_leftover != 0) {
    std::fprintf(stderr, "FLEET ERROR: %zu events stranded\n",
                 report.events_leftover);
    return 1;
  }
  if (result.rounds_valid != result.rounds_sent) {
    std::fprintf(stderr, "FLEET ERROR: %llu of %llu rounds invalid\n",
                 static_cast<unsigned long long>(result.rounds_sent -
                                                 result.rounds_valid),
                 static_cast<unsigned long long>(result.rounds_sent));
    return 1;
  }

  if (!opt.json_path.empty()) {
    std::ofstream json(opt.json_path, std::ios::binary);
    if (!json) {
      std::fprintf(stderr, "cannot open json file: %s\n",
                   opt.json_path.c_str());
      return 2;
    }
    json << "{\n"
         << "  \"bench\": \"bench_swarm_dos --fleet\",\n"
         << "  \"devices\": " << opt.devices << ",\n"
         << "  \"shards\": " << swarm.shard_count() << ",\n"
         << "  \"threads\": " << opt.threads << ",\n"
         << "  \"scheduler\": \"" << (opt.heap ? "heap" : "wheel") << "\",\n"
         << "  \"eager\": " << (opt.eager ? "true" : "false") << ",\n"
         << "  \"share_image\": " << (opt.no_share ? "false" : "true")
         << ",\n"
         << "  \"mac_batch\": " << (opt.no_batch ? "false" : "true") << ",\n"
         << "  \"soa_blocks\": " << (opt.no_soa ? "false" : "true") << ",\n"
         << "  \"resident_bytes_per_device\": " << resident.per_device_bytes()
         << ",\n"
         << "  \"measured_bytes\": " << opt.measured << ",\n"
         << "  \"period_ms\": " << opt.period_ms << ",\n"
         << "  \"horizon_ms\": " << opt.horizon_ms << ",\n"
         << "  \"rounds_sent\": " << result.rounds_sent << ",\n"
         << "  \"rounds_valid\": " << result.rounds_valid << ",\n"
         << "  \"events_run\": " << result.events_run << ",\n"
         << "  \"materialized\": " << result.materialized << ",\n"
         << "  \"trace_records\": " << result.trace_records << ",\n"
         << "  \"trace_jsonl_fnv\": \"" << result.trace_fnv << "\",\n"
         << "  \"requests_per_sec\": " << result.requests_per_sec << ",\n"
         << "  \"wall_ms\": " << wall_ms << "\n"
         << "}\n";
  }
  if (!opt.check_path.empty()) {
    return check_fleet_against(opt, result);
  }
  return 0;
}

bool parse_size(const char* arg, const char* prefix, std::size_t* out) {
  const std::size_t len = std::strlen(prefix);
  if (std::strncmp(arg, prefix, len) != 0) return false;
  *out = static_cast<std::size_t>(std::strtoull(arg + len, nullptr, 10));
  return true;
}

bool parse_double(const char* arg, const char* prefix, double* out) {
  const std::size_t len = std::strlen(prefix);
  if (std::strncmp(arg, prefix, len) != 0) return false;
  *out = std::strtod(arg + len, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return run_sweep_table();

  FleetScaleOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (parse_size(arg, "--devices=", &opt.devices)) continue;
    if (parse_size(arg, "--threads=", &opt.threads)) continue;
    if (parse_size(arg, "--shards=", &opt.shards)) continue;
    if (parse_size(arg, "--measured=", &opt.measured)) continue;
    if (parse_double(arg, "--period=", &opt.period_ms)) continue;
    if (parse_double(arg, "--horizon=", &opt.horizon_ms)) continue;
    if (std::strcmp(arg, "--fleet") == 0) {
      opt.fleet = true;
      continue;
    }
    if (std::strcmp(arg, "--incremental") == 0) {
      opt.incremental = true;
      continue;
    }
    if (std::strcmp(arg, "--heap") == 0) {
      opt.heap = true;
      continue;
    }
    if (std::strcmp(arg, "--eager") == 0) {
      opt.eager = true;
      continue;
    }
    if (std::strcmp(arg, "--no-share-image") == 0) {
      opt.no_share = true;
      continue;
    }
    if (std::strcmp(arg, "--no-trace") == 0) {
      opt.no_trace = true;
      continue;
    }
    if (std::strcmp(arg, "--no-batch") == 0) {
      opt.no_batch = true;
      continue;
    }
    if (std::strcmp(arg, "--no-soa") == 0) {
      opt.no_soa = true;
      continue;
    }
    if (std::strncmp(arg, "--check-against=", 16) == 0) {
      opt.check_path = arg + 16;
      continue;
    }
    if (std::strncmp(arg, "--min-speedup=", 14) == 0) {
      opt.min_speedup = std::atof(arg + 14);
      continue;
    }
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      opt.trace_path = arg + 8;
      continue;
    }
    if (std::strncmp(arg, "--json=", 7) == 0) {
      opt.json_path = arg + 7;
      continue;
    }
    if (std::strcmp(arg, "--slow-bus") == 0) {
      opt.slow_bus = true;
      continue;
    }
    if (std::strncmp(arg, "--link=", 7) == 0) {
      opt.link = arg + 7;
      continue;
    }
    if (std::strcmp(arg, "--link") == 0 && i + 1 < argc) {
      opt.link = argv[++i];
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [--devices=N] [--threads=N] [--shards=N] "
                 "[--trace=path] [--json=path] [--slow-bus] [--incremental] "
                 "[--link=clean|lossy10|bursty|hostile] | "
                 "--fleet [--measured=N] [--period=MS] [--horizon=MS] "
                 "[--heap] [--eager] [--no-share-image] [--no-trace] "
                 "[--no-batch] [--no-soa] "
                 "[--check-against=BENCH_fleet.json] [--min-speedup=X]\n",
                 argv[0]);
    return 2;
  }
  if (opt.devices == 0 || opt.threads == 0) {
    std::fprintf(stderr, "--devices and --threads must be nonzero\n");
    return 2;
  }
  if (opt.incremental && !opt.link.empty()) {
    // Incremental sessions and the reliable retransmitter are mutually
    // exclusive (session.cpp enforces it); fail before the Swarm throws.
    std::fprintf(stderr, "--incremental cannot combine with --link\n");
    return 2;
  }
  if (opt.fleet) return run_fleet_periodic(opt);
  return run_fleet_scale(opt);
}
