// Extension experiment X2 (future-work item 1, IoT): attestation health
// of a device fleet under a replay-flooding adversary, as fleet size
// grows. Each device has its own K_Attest; the attacker records one
// genuine request per link and replays it continuously.
#include <cstdio>

#include "ratt/sim/swarm.hpp"

namespace {

using namespace ratt;  // NOLINT

struct FleetRow {
  std::size_t devices;
  std::uint64_t genuine_valid;
  std::uint64_t genuine_sent;
  std::uint64_t replays_rejected;
  double attacker_extracted_ms;
};

FleetRow run_fleet(std::size_t device_count, bool hardened) {
  sim::SwarmConfig config;
  config.device_count = device_count;
  config.prover.scheme = hardened ? attest::FreshnessScheme::kCounter
                                  : attest::FreshnessScheme::kNone;
  config.prover.authenticate_requests = hardened;
  config.prover.measured_bytes = 16 * 1024;  // ~24 ms per attestation
  config.attest_period_ms = 250.0;

  sim::Swarm swarm(config, crypto::from_string("fleet-bench-seed"));

  // The attacker records the first genuine request on every link...
  std::vector<sim::RecordingTap> taps(device_count);
  for (std::size_t i = 0; i < device_count; ++i) {
    swarm.channel(i).set_tap(&taps[i]);
    swarm.session(i).send_request();
  }
  swarm.queue().run_all();

  // ...then replays it 20x per device during the measurement window.
  double genuine_ms = 0.0;
  for (std::size_t i = 0; i < device_count; ++i) {
    genuine_ms += swarm.prover(i).anchor().total_device_ms();
    if (taps[i].recorded_to_prover().empty()) continue;
    const crypto::Bytes recorded = taps[i].recorded_to_prover()[0].payload;
    for (int k = 0; k < 20; ++k) {
      swarm.channel(i).inject_to_prover(recorded, 10.0 + 45.0 * k);
    }
  }
  const sim::SwarmReport report = swarm.run(1000.0);

  FleetRow row{};
  row.devices = device_count;
  row.genuine_valid = report.total_valid();
  row.genuine_sent = report.total_sent();
  for (const auto& d : report.devices) {
    row.replays_rejected += d.stats.prover_rejects;
  }
  row.attacker_extracted_ms = report.total_attest_ms() - genuine_ms;
  // Subtract the genuine rounds run during the window (valid responses
  // each cost one measurement).
  const timing::DeviceTimingModel model;
  row.attacker_extracted_ms -=
      static_cast<double>(report.total_valid()) *
      model.memory_attestation_ms(crypto::MacAlgorithm::kHmacSha1,
                                  16 * 1024);
  if (row.attacker_extracted_ms < 0) row.attacker_extracted_ms = 0;
  return row;
}

}  // namespace

int main() {
  std::printf(
      "=== X2: fleet-scale replay flood (20 replays/device/s window) "
      "===\n\n");
  for (const bool hardened : {false, true}) {
    std::printf("  %s fleet:\n",
                hardened ? "hardened (auth + counter)" : "unprotected");
    std::printf("    %-9s %-16s %-18s %-22s\n", "devices",
                "genuine valid", "replays rejected",
                "attacker-extracted ms");
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
      const FleetRow row = run_fleet(n, hardened);
      std::printf("    %-9zu %llu/%-14llu %-18llu %-22.1f\n", row.devices,
                  static_cast<unsigned long long>(row.genuine_valid),
                  static_cast<unsigned long long>(row.genuine_sent),
                  static_cast<unsigned long long>(row.replays_rejected),
                  row.attacker_extracted_ms);
    }
  }
  std::printf(
      "\n  Shape: attacker-extracted prover time grows linearly with "
      "fleet size for the\n  unprotected fleet (~480 ms/device/s: the "
      "device is mostly the attacker's),\n  and stays near zero for the "
      "hardened fleet, whose rejects grow instead.\n");
  return 0;
}
