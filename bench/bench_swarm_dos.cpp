// Extension experiment X2 (future-work item 1, IoT): attestation health
// of a device fleet under a replay-flooding adversary, as fleet size
// grows. Each device has its own K_Attest; the attacker records one
// genuine request per link and replays it continuously.
//
// Accounting runs on ratt::obs: the fleet observer is attached after the
// recording phase, so the registry's prover.busy_ms counter covers the
// measurement window only, and the reject breakdown comes straight from
// the prover.outcome.* counters instead of being re-derived by hand.
#include <cstdio>

#include "ratt/obs/metrics.hpp"
#include "ratt/sim/swarm.hpp"

namespace {

using namespace ratt;  // NOLINT

struct FleetRow {
  std::size_t devices;
  std::uint64_t genuine_valid;
  std::uint64_t genuine_sent;
  std::uint64_t replays_rejected;
  double attacker_extracted_ms;
  double attacker_extracted_mj;
  double peak_duty_fraction;
};

double counter_value(const obs::Registry& registry, const char* name) {
  const obs::Counter* c = registry.find_counter(name);
  return c == nullptr ? 0.0 : c->value();
}

FleetRow run_fleet(std::size_t device_count, bool hardened) {
  sim::SwarmConfig config;
  config.device_count = device_count;
  config.prover.scheme = hardened ? attest::FreshnessScheme::kCounter
                                  : attest::FreshnessScheme::kNone;
  config.prover.authenticate_requests = hardened;
  config.prover.measured_bytes = 16 * 1024;  // ~24 ms per attestation
  config.attest_period_ms = 250.0;

  sim::Swarm swarm(config, crypto::from_string("fleet-bench-seed"));

  // The attacker records the first genuine request on every link...
  std::vector<sim::RecordingTap> taps(device_count);
  for (std::size_t i = 0; i < device_count; ++i) {
    swarm.channel(i).set_tap(&taps[i]);
    swarm.session(i).send_request();
  }
  swarm.queue().run_all();

  // ...then the observer starts the clock on the measurement window and
  // the attacker replays the recording 20x per device.
  obs::Registry registry;
  swarm.attach_observer(&registry, nullptr);
  for (std::size_t i = 0; i < device_count; ++i) {
    if (taps[i].recorded_to_prover().empty()) continue;
    const crypto::Bytes recorded = taps[i].recorded_to_prover()[0].payload;
    for (int k = 0; k < 20; ++k) {
      swarm.channel(i).inject_to_prover(recorded, 10.0 + 45.0 * k);
    }
  }
  const sim::SwarmReport report = swarm.run(1000.0);

  FleetRow row{};
  row.devices = device_count;
  row.genuine_valid = report.total_valid();
  row.genuine_sent = report.total_sent();
  row.replays_rejected += static_cast<std::uint64_t>(
      counter_value(registry, "prover.outcome.not-fresh") +
      counter_value(registry, "prover.outcome.bad-request-mac"));
  for (const auto& d : report.devices) {
    if (d.duty_fraction > row.peak_duty_fraction) {
      row.peak_duty_fraction = d.duty_fraction;
    }
  }
  // Window-only prover time minus the genuine rounds run in the window:
  // what's left is the time the attacker extracted.
  const timing::DeviceTimingModel model;
  const double genuine_round_ms = model.memory_attestation_ms(
      crypto::MacAlgorithm::kHmacSha1, 16 * 1024);
  const auto window_valid = static_cast<double>(
      report.total_valid() >= device_count
          ? report.total_valid() - device_count  // phase-I rounds
          : 0);
  row.attacker_extracted_ms =
      counter_value(registry, "prover.busy_ms") -
      window_valid * genuine_round_ms;
  if (row.attacker_extracted_ms < 0) row.attacker_extracted_ms = 0;
  row.attacker_extracted_mj =
      obs::PowerModel{}.active_mj(row.attacker_extracted_ms);
  return row;
}

}  // namespace

int main() {
  std::printf(
      "=== X2: fleet-scale replay flood (20 replays/device/s window) "
      "===\n\n");
  for (const bool hardened : {false, true}) {
    std::printf("  %s fleet:\n",
                hardened ? "hardened (auth + counter)" : "unprotected");
    std::printf("    %-9s %-16s %-18s %-22s %-14s %-10s\n", "devices",
                "genuine valid", "replays rejected",
                "attacker-extracted ms", "stolen mJ", "peak duty");
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
      const FleetRow row = run_fleet(n, hardened);
      std::printf("    %-9zu %llu/%-14llu %-18llu %-22.1f %-14.3f %-10.3f\n",
                  row.devices,
                  static_cast<unsigned long long>(row.genuine_valid),
                  static_cast<unsigned long long>(row.genuine_sent),
                  static_cast<unsigned long long>(row.replays_rejected),
                  row.attacker_extracted_ms, row.attacker_extracted_mj,
                  row.peak_duty_fraction);
    }
  }
  std::printf(
      "\n  Shape: attacker-extracted prover time grows linearly with "
      "fleet size for the\n  unprotected fleet (~480 ms/device/s: the "
      "device is mostly the attacker's),\n  and stays near zero for the "
      "hardened fleet, whose rejects grow instead.\n");
  return 0;
}
