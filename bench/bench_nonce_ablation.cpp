// Ablation: the nonce-history trade-off that makes the paper rule nonces
// out (Sec. 4.2) — "keeping a complete nonce history requires a lot of
// non-volatile memory".
//
// For each history capacity we run a long sequence of genuine requests
// followed by replays of every earlier request, and report (a) the RAM
// the history consumes and (b) how far back replays are still detected.
// A counter needs 8 bytes and detects everything; a bounded nonce history
// needs 8 bytes *per remembered request* and silently re-opens once a
// nonce is evicted.
#include <cstdio>
#include <memory>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::AttestRequest;
using attest::AttestStatus;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;

crypto::Bytes key() {
  return crypto::from_hex("a0a1a2a3a4a5a6a7a8a9aaabacadaeaf");
}

struct AblationRow {
  std::size_t capacity;
  std::size_t ram_bytes;
  int genuine_requests;
  int replays_detected;
  int replays_accepted;
};

AblationRow run_capacity(std::size_t capacity, int genuine_requests) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kNonce;
  config.nonce_capacity = capacity;
  config.measured_bytes = 256;
  ProverDevice prover(config, key(), crypto::from_string("nonce-abl-app"));

  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kNonce;
  Verifier verifier(key(), vc, crypto::from_string("nonce-abl-vrf"));
  verifier.set_reference_memory(prover.reference_memory());

  std::vector<AttestRequest> history;
  for (int i = 0; i < genuine_requests; ++i) {
    const AttestRequest req = verifier.make_request();
    history.push_back(req);
    (void)prover.handle(req);
  }

  AblationRow row{capacity, 8 + 8 * capacity, genuine_requests, 0, 0};
  for (const AttestRequest& old : history) {
    const auto out = prover.handle(old);
    if (out.status == AttestStatus::kOk) {
      ++row.replays_accepted;  // evicted nonce: replay slipped through
    } else {
      ++row.replays_detected;
    }
  }
  return row;
}

}  // namespace

int main() {
  constexpr int kGenuine = 64;
  std::printf(
      "=== Ablation: nonce-history capacity vs. replay protection ===\n"
      "(%d genuine requests, then every one of them replayed)\n\n",
      kGenuine);
  std::printf("  %-10s %-12s %-18s %-18s\n", "capacity", "RAM bytes",
              "replays detected", "replays ACCEPTED");
  for (std::size_t capacity : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const AblationRow row = run_capacity(capacity, kGenuine);
    std::printf("  %-10zu %-12zu %-18d %-18d%s\n", row.capacity,
                row.ram_bytes, row.replays_detected, row.replays_accepted,
                row.replays_accepted > 0 ? "  <-- protection hole" : "");
  }
  std::printf(
      "\n  A monotonic counter achieves full replay+reorder protection in "
      "8 bytes\n  (Sec. 4.2) — the nonce history needs 8 bytes per "
      "remembered request and\n  still cannot detect reordering or "
      "delay.\n");
  return 0;
}
