// Sec. 3.1 reproduction: the prover-side cost of a full-memory MAC.
//
// The paper's headline: hashing 512 KB of RAM at 24 MHz costs
// (512 KB / 64 B) * 0.092 ms + 0.340 ms = 754.004 ms. (The paper prints
// 754.032 via a typo'd formula; see EXPERIMENTS.md.) The sweep shows the
// linear growth and the verifier/prover asymmetry that makes attestation
// a DoS vector.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "ratt/crypto/hmac.hpp"
#include "ratt/crypto/mac.hpp"
#include "ratt/crypto/sha1.hpp"
#include "ratt/hw/mcu.hpp"
#include "ratt/timing/profiles.hpp"

namespace {

using namespace ratt;  // NOLINT
using crypto::Bytes;

void print_device_model_sweep() {
  const timing::DeviceTimingModel model;  // 24 MHz
  std::printf(
      "=== Sec. 3.1: full-memory MAC cost on the prover (device model, "
      "24 MHz) ===\n\n");
  std::printf("  %10s  %14s  %22s\n", "memory", "HMAC-SHA1 (ms)",
              "vs request auth (x)");
  const double request_ms =
      model.request_auth_ms(crypto::MacAlgorithm::kHmacSha1);
  for (std::size_t kb : {4, 16, 64, 128, 256, 512}) {
    const double ms = model.memory_attestation_ms(
        crypto::MacAlgorithm::kHmacSha1, kb * 1024);
    std::printf("  %8zu KB  %14.3f  %22.1f\n", kb, ms, ms / request_ms);
  }
  std::printf(
      "\n  512 KB -> %.3f ms: one gratuitous request steals ~3/4 s of "
      "prover time\n  (paper: 754.032 ms via a formula typo; constants "
      "give 754.004 ms).\n",
      model.memory_attestation_ms(crypto::MacAlgorithm::kHmacSha1,
                                  512 * 1024));
  std::printf(
      "  The verifier pays one 19-byte MAC (%.3f ms equivalent): a "
      "%.0fx asymmetry.\n\n",
      request_ms,
      model.memory_attestation_ms(crypto::MacAlgorithm::kHmacSha1,
                                  512 * 1024) /
          request_ms);
  std::printf(
      "=== Cross-platform: full-RAM MAC per device profile ===\n\n");
  std::printf("  %-24s %-10s %-10s %-18s\n", "profile", "clock",
              "RAM", "full-RAM MAC (ms)");
  for (const auto& profile : timing::all_profiles()) {
    const auto m = profile.timing_model();
    std::printf("  %-24s %-10.0f %-10zu %-18.3f\n", profile.name.c_str(),
                profile.clock_hz / 1e6, profile.ram_bytes / 1024,
                m.memory_attestation_ms(crypto::MacAlgorithm::kHmacSha1,
                                        profile.ram_bytes));
  }
  std::printf(
      "  (MHz / KB columns; the asymmetry vs one request MAC holds on "
      "every platform.)\n\n");

}

// --- Simulated-prover section: the measurement loop as Code_Attest runs
// it, i.e. every byte fetched through MemoryBus + EA-MPU. Compares the
// window-coalesced bulk path against the per-byte reference path
// (docs/PERFORMANCE.md); both stream the MAC in 4 KB chunks, so the
// delta isolates the bus. ---

struct SimResult {
  std::size_t bytes = 0;
  std::size_t rules = 0;
  double bus_bulk_ms = 0.0;     // bus transfer only
  double bus_perbyte_ms = 0.0;
  double bus_speedup = 0.0;     // what the window-coalescing buys
  double e2e_bulk_ms = 0.0;     // transfer + streaming HMAC-SHA1
  double e2e_perbyte_ms = 0.0;
  double e2e_speedup = 0.0;     // bounded by the MAC's share of the pass
};

// One full measurement pass: streaming HMAC-SHA1 over challenge ||
// freshness || `range`, read through the bus in 4 KB chunks from the
// trust anchor's PC. `mac == nullptr` times the bus transfer alone.
void measurement_pass(hw::Mcu& mcu, crypto::Mac* mac,
                      const hw::AddrRange& range, Bytes& scratch) {
  const hw::AccessContext ctx{0x00000000};  // Code_Attest's region
  if (mac != nullptr) {
    mac->init(16 + range.size());
    std::uint8_t head[16] = {0x42};
    mac->update(crypto::ByteView(head, 16));
  }
  for (std::size_t off = 0; off < range.size();) {
    const std::size_t n = std::min<std::size_t>(4096, range.size() - off);
    if (mcu.bus().read_block(ctx, range.begin + static_cast<hw::Addr>(off),
                             std::span<std::uint8_t>(scratch.data(), n)) !=
        hw::BusStatus::kOk) {
      std::fprintf(stderr, "measurement pass faulted\n");
      std::exit(1);
    }
    if (mac != nullptr) {
      mac->update(crypto::ByteView(scratch.data(), n));
    } else {
      benchmark::DoNotOptimize(scratch.data());
    }
    off += n;
  }
  if (mac != nullptr) benchmark::DoNotOptimize(mac->finish());
}

SimResult run_sim_section() {
  hw::Mcu mcu;
  const hw::AddrRange measured = mcu.layout().ram;  // the full 512 KB
  // A realistic rule set: key + counter + nonce store + services state,
  // so the per-byte path pays O(rules) on every one of the 512 Ki bytes.
  const hw::AddrRange anchor_code{0x00000000, 0x00001000};
  std::size_t next = 0;
  const auto add_rule = [&](hw::Addr begin, hw::Addr end, const char* label) {
    hw::EampuRule rule;
    rule.code = anchor_code;
    rule.data = hw::AddrRange{begin, end};
    rule.allow_read = true;
    rule.allow_write = true;
    rule.active = true;
    rule.label = label;
    mcu.mpu().set_rule(next++, rule);
  };
  add_rule(0x00007000, 0x00007010, "k-attest");
  add_rule(0x00100100, 0x00100110, "counter-r");
  add_rule(0x00100200, 0x00100290, "nonce-store");
  add_rule(0x00100120, 0x00100130, "services-state");
  mcu.mpu().lock();

  const Bytes key = crypto::from_hex("000102030405060708090a0b0c0d0e0f");
  const auto mac = crypto::make_mac(crypto::MacAlgorithm::kHmacSha1, key);
  Bytes scratch(4096);

  const auto time_passes = [&](bool bulk, crypto::Mac* m, int passes) {
    mcu.bus().set_bulk_enabled(bulk);
    measurement_pass(mcu, m, measured, scratch);  // warm-up
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < passes; ++i) {
      measurement_pass(mcu, m, measured, scratch);
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
               .count() /
           passes;
  };

  SimResult r;
  r.bytes = measured.size();
  r.rules = mcu.mpu().active_rules();
  r.bus_bulk_ms = time_passes(/*bulk=*/true, nullptr, 50);
  r.bus_perbyte_ms = time_passes(/*bulk=*/false, nullptr, 3);
  r.bus_speedup = r.bus_perbyte_ms / r.bus_bulk_ms;
  r.e2e_bulk_ms = time_passes(/*bulk=*/true, mac.get(), 20);
  r.e2e_perbyte_ms = time_passes(/*bulk=*/false, mac.get(), 3);
  r.e2e_speedup = r.e2e_perbyte_ms / r.e2e_bulk_ms;

  std::printf(
      "=== Simulated prover: 512 KB measurement through MemoryBus + "
      "EA-MPU ===\n\n");
  std::printf("  %-34s %14s %14s\n", "path (host ms/pass)", "bus only",
              "bus + HMAC");
  std::printf("  %-34s %14.3f %14.3f\n", "per-byte (reference)",
              r.bus_perbyte_ms, r.e2e_perbyte_ms);
  std::printf("  %-34s %14.3f %14.3f\n", "bulk (window-coalesced)",
              r.bus_bulk_ms, r.e2e_bulk_ms);
  std::printf("  %-34s %13.1fx %13.1fx\n", "speedup", r.bus_speedup,
              r.e2e_speedup);
  std::printf(
      "\n  (%zu active EA-MPU rules; both paths stream the MAC in 4 KB "
      "chunks. The\n  bus-only column is what window coalescing buys: "
      "O(regions) EA-MPU checks +\n  memcpy instead of O(bytes x rules). "
      "End-to-end is MAC-bound once the bus\n  is out of the way.)\n\n",
      r.rules);
  return r;
}

void write_json(const std::string& path, const SimResult& sim) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open json file: %s\n", path.c_str());
    std::exit(2);
  }
  const timing::DeviceTimingModel model;
  out << "{\n"
      << "  \"bench\": \"bench_memory_mac\",\n"
      << "  \"device_model\": {\n"
      << "    \"full_ram_hmac_sha1_ms\": "
      << model.memory_attestation_ms(crypto::MacAlgorithm::kHmacSha1,
                                     512 * 1024)
      << "\n  },\n"
      << "  \"sim\": {\n"
      << "    \"bytes\": " << sim.bytes << ",\n"
      << "    \"active_rules\": " << sim.rules << ",\n"
      << "    \"bus_bulk_ms\": " << sim.bus_bulk_ms << ",\n"
      << "    \"bus_perbyte_ms\": " << sim.bus_perbyte_ms << ",\n"
      << "    \"bus_speedup\": " << sim.bus_speedup << ",\n"
      << "    \"e2e_bulk_ms\": " << sim.e2e_bulk_ms << ",\n"
      << "    \"e2e_perbyte_ms\": " << sim.e2e_perbyte_ms << ",\n"
      << "    \"e2e_speedup\": " << sim.e2e_speedup << "\n"
      << "  }\n"
      << "}\n";
}

void BM_HmacSha1_OverMemory(benchmark::State& state) {
  const Bytes key = crypto::from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes memory(static_cast<std::size_t>(state.range(0)), 0x5a);
  crypto::Hmac<crypto::Sha1> hmac(key);
  for (auto _ : state) {
    hmac.reset();
    hmac.update(memory);
    benchmark::DoNotOptimize(hmac.finish());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha1_OverMemory)
    ->Arg(4 * 1024)
    ->Arg(16 * 1024)
    ->Arg(64 * 1024)
    ->Arg(128 * 1024)
    ->Arg(256 * 1024)
    ->Arg(512 * 1024);

}  // namespace

int main(int argc, char** argv) {
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::string json_path;
  double check_speedup = 0.0;
  bool sim_only = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--check-speedup=", 16) == 0) {
      check_speedup = std::strtod(argv[i] + 16, nullptr);
    } else if (std::strcmp(argv[i], "--sim-only") == 0) {
      sim_only = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());

  print_device_model_sweep();
  const SimResult sim = run_sim_section();
  if (!json_path.empty()) write_json(json_path, sim);
  if (check_speedup > 0.0 && sim.bus_speedup < check_speedup) {
    std::fprintf(stderr,
                 "FAIL: bulk-bus speedup %.1fx below required %.1fx\n",
                 sim.bus_speedup, check_speedup);
    return 1;
  }
  if (sim_only) return 0;

  std::printf("=== Host measurements of HMAC-SHA1 over memory follow ===\n\n");
  benchmark::Initialize(&bench_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
