// Sec. 3.1 reproduction: the prover-side cost of a full-memory MAC.
//
// The paper's headline: hashing 512 KB of RAM at 24 MHz costs
// (512 KB / 64 B) * 0.092 ms + 0.340 ms = 754.004 ms. (The paper prints
// 754.032 via a typo'd formula; see EXPERIMENTS.md.) The sweep shows the
// linear growth and the verifier/prover asymmetry that makes attestation
// a DoS vector.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ratt/crypto/hmac.hpp"
#include "ratt/crypto/sha1.hpp"
#include "ratt/timing/profiles.hpp"

namespace {

using namespace ratt;  // NOLINT
using crypto::Bytes;

void print_device_model_sweep() {
  const timing::DeviceTimingModel model;  // 24 MHz
  std::printf(
      "=== Sec. 3.1: full-memory MAC cost on the prover (device model, "
      "24 MHz) ===\n\n");
  std::printf("  %10s  %14s  %22s\n", "memory", "HMAC-SHA1 (ms)",
              "vs request auth (x)");
  const double request_ms =
      model.request_auth_ms(crypto::MacAlgorithm::kHmacSha1);
  for (std::size_t kb : {4, 16, 64, 128, 256, 512}) {
    const double ms = model.memory_attestation_ms(
        crypto::MacAlgorithm::kHmacSha1, kb * 1024);
    std::printf("  %8zu KB  %14.3f  %22.1f\n", kb, ms, ms / request_ms);
  }
  std::printf(
      "\n  512 KB -> %.3f ms: one gratuitous request steals ~3/4 s of "
      "prover time\n  (paper: 754.032 ms via a formula typo; constants "
      "give 754.004 ms).\n",
      model.memory_attestation_ms(crypto::MacAlgorithm::kHmacSha1,
                                  512 * 1024));
  std::printf(
      "  The verifier pays one 19-byte MAC (%.3f ms equivalent): a "
      "%.0fx asymmetry.\n\n",
      request_ms,
      model.memory_attestation_ms(crypto::MacAlgorithm::kHmacSha1,
                                  512 * 1024) /
          request_ms);
  std::printf(
      "=== Cross-platform: full-RAM MAC per device profile ===\n\n");
  std::printf("  %-24s %-10s %-10s %-18s\n", "profile", "clock",
              "RAM", "full-RAM MAC (ms)");
  for (const auto& profile : timing::all_profiles()) {
    const auto m = profile.timing_model();
    std::printf("  %-24s %-10.0f %-10zu %-18.3f\n", profile.name.c_str(),
                profile.clock_hz / 1e6, profile.ram_bytes / 1024,
                m.memory_attestation_ms(crypto::MacAlgorithm::kHmacSha1,
                                        profile.ram_bytes));
  }
  std::printf(
      "  (MHz / KB columns; the asymmetry vs one request MAC holds on "
      "every platform.)\n\n");

  std::printf("=== Host measurements of HMAC-SHA1 over memory follow ===\n\n");
}

void BM_HmacSha1_OverMemory(benchmark::State& state) {
  const Bytes key = crypto::from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes memory(static_cast<std::size_t>(state.range(0)), 0x5a);
  crypto::Hmac<crypto::Sha1> hmac(key);
  for (auto _ : state) {
    hmac.reset();
    hmac.update(memory);
    benchmark::DoNotOptimize(hmac.finish());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha1_OverMemory)
    ->Arg(4 * 1024)
    ->Arg(16 * 1024)
    ->Arg(64 * 1024)
    ->Arg(128 * 1024)
    ->Arg(256 * 1024)
    ->Arg(512 * 1024);

}  // namespace

int main(int argc, char** argv) {
  print_device_model_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
