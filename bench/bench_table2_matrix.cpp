// Table 2 reproduction: which freshness feature detects which Adv_ext
// attack. Runs live attack simulations against a fully simulated prover
// for every (attack, feature) pair and prints the paper's matrix.
#include <cstdio>
#include <map>

#include "ratt/adv/adv_ext.hpp"

int main() {
  using namespace ratt;  // NOLINT
  using adv::ExtAttack;
  using attest::FreshnessScheme;

  std::printf(
      "=== Table 2: summary of DoS attack mitigation features ===\n"
      "(each cell is a live attack simulation; 'Y' = attack detected)\n\n");

  const auto cells = adv::run_table2_matrix();
  std::map<std::pair<FreshnessScheme, ExtAttack>, bool> detected;
  for (const auto& cell : cells) {
    detected[{cell.scheme, cell.attack}] = cell.detected;
  }

  const FreshnessScheme schemes[] = {FreshnessScheme::kNonce,
                                     FreshnessScheme::kCounter,
                                     FreshnessScheme::kTimestamp};
  const ExtAttack attacks[] = {ExtAttack::kReplay, ExtAttack::kReorder,
                               ExtAttack::kDelay};
  // Paper's Table 2 for comparison.
  const std::map<std::pair<FreshnessScheme, ExtAttack>, bool> paper = {
      {{FreshnessScheme::kNonce, ExtAttack::kReplay}, true},
      {{FreshnessScheme::kNonce, ExtAttack::kReorder}, false},
      {{FreshnessScheme::kNonce, ExtAttack::kDelay}, false},
      {{FreshnessScheme::kCounter, ExtAttack::kReplay}, true},
      {{FreshnessScheme::kCounter, ExtAttack::kReorder}, true},
      {{FreshnessScheme::kCounter, ExtAttack::kDelay}, false},
      {{FreshnessScheme::kTimestamp, ExtAttack::kReplay}, true},
      {{FreshnessScheme::kTimestamp, ExtAttack::kReorder}, true},
      {{FreshnessScheme::kTimestamp, ExtAttack::kDelay}, true},
  };

  std::printf("  %-10s", "Attack:");
  for (auto scheme : schemes) {
    std::printf("  %-12s", attest::to_string(scheme).c_str());
  }
  std::printf("\n");
  bool all_match = true;
  for (auto attack : attacks) {
    std::printf("  %-10s", adv::to_string(attack).c_str());
    for (auto scheme : schemes) {
      const bool got = detected.at({scheme, attack});
      const bool expect = paper.at({scheme, attack});
      all_match = all_match && (got == expect);
      std::printf("  %-12s", got ? (expect ? "Y" : "Y (!)")
                                 : (expect ? "- (!)" : "-"));
    }
    std::printf("\n");
  }
  std::printf("\n  %s\n",
              all_match
                  ? "All 9 cells match the paper's Table 2."
                  : "MISMATCH against the paper's Table 2 (see '(!)')!");

  // Sec. 4.1 context row: impersonation with/without request auth.
  adv::ExtScenarioConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.authenticate_requests = true;
  const auto with_auth =
      adv::run_ext_attack(ExtAttack::kImpersonate, config);
  config.scheme = FreshnessScheme::kNone;
  config.authenticate_requests = false;
  const auto without_auth =
      adv::run_ext_attack(ExtAttack::kImpersonate, config);
  std::printf(
      "\n  Verifier impersonation (Sec. 4.1): unauthenticated prover "
      "performs the\n  full attestation (%.3f ms stolen); authenticated "
      "prover rejects after\n  %.3f ms.\n",
      without_auth.stolen_device_ms, with_auth.stolen_device_ms);
  return all_match ? 0 : 1;
}
