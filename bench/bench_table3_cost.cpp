// Table 3 reproduction: hardware cost per component (registers / LUTs /
// EA-MPU rules), re-derived from the component cost model, including the
// parametric EA-MPU cost sweep over the number of configurable rules #r.
#include <cstdio>

#include "ratt/cost/cost.hpp"

int main() {
  using namespace ratt::cost;  // NOLINT

  std::printf(
      "=== Table 3: hardware cost per component ===\n"
      "(#r = number of protection rules configurable in the EA-MPU)\n\n");
  std::printf("  %-22s %-12s %-18s %-18s\n", "component", "EA-MPU rules",
              "registers", "LUTs");
  std::printf("  %-22s %-12u %-18u %-18u\n", "Siskiyou Peak", 0u,
              siskiyou_peak().registers, siskiyou_peak().luts);
  std::printf("  %-22s %-12u %-18s %-18s\n", "EA-MPU (TrustLite)", 1u,
              "278 + 116*#r", "417 + 182*#r");
  std::printf("  %-22s %-12u %-18u %-18u\n", "Attest-Key",
              attest_key().eampu_rules, attest_key().registers,
              attest_key().luts);
  std::printf("  %-22s %-12u %-18u %-18u\n", "Counter",
              counter_r().eampu_rules, counter_r().registers,
              counter_r().luts);
  std::printf("  %-22s %-12u %-18u %-18u\n", "64 bit clock",
              clock_64bit().eampu_rules, clock_64bit().registers,
              clock_64bit().luts);
  std::printf("  %-22s %-12u %-18u %-18u\n", "32 bit clock",
              clock_32bit().eampu_rules, clock_32bit().registers,
              clock_32bit().luts);
  std::printf("  %-22s %-12u %-18u %-18u\n", "SW-clock",
              sw_clock().eampu_rules, sw_clock().registers,
              sw_clock().luts);
  std::printf(
      "  (SW-clock: Table 3 prints 2 rules; the Sec. 6.3 evaluation "
      "charges 3 — we follow Sec. 6.3.)\n\n");

  std::printf("=== EA-MPU cost sweep over #r (ablation) ===\n\n");
  std::printf("  %-6s %-12s %-12s\n", "#r", "registers", "LUTs");
  for (std::uint32_t r = 0; r <= 8; ++r) {
    std::printf("  %-6u %-12u %-12u\n", r, eampu_registers(r),
                eampu_luts(r));
  }

  std::printf("\n=== Composed systems ===\n\n");
  std::printf("  %-26s %-8s %-12s %-10s\n", "system", "rules", "registers",
              "LUTs");
  for (const auto& sys : {baseline(), with_clock_64bit(),
                          with_clock_32bit(), with_sw_clock()}) {
    std::printf("  %-26s %-8u %-12u %-10u\n", sys.name.c_str(), sys.rules,
                sys.registers, sys.luts);
  }

  const bool baseline_ok =
      baseline().registers == 6038 && baseline().luts == 15142;
  std::printf("\n  Baseline check vs paper (6038 regs / 15142 LUTs): %s\n",
              baseline_ok ? "match" : "MISMATCH");
  return baseline_ok ? 0 : 1;
}
