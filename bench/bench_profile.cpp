// Per-phase cost attribution for a reliable fleet over a lossy link —
// the ratt::obs::prof Table-3-style breakdown, plus the phase-aware
// regression gate CI runs against BENCH_baseline.json.
//
// The scenario exercises every phase: authenticated counter-mode rounds
// (req_auth, freshness, mem_mac, resp_mac), verifier-side wire waits
// (net_wait), and a lossy link with reliable rounds so retries amplify
// prover work (retry_overhead). All simulated quantities — cycles,
// energy, bytes — are deterministic: the same seed produces the same
// table on every machine at any --threads value, which is what makes an
// exact-value baseline diff meaningful.
//
//   (no args)              print the per-phase fleet report; exit 1 if
//                          phase coverage < 95% (the "other" residual
//                          claimed 5% or more of total cycles).
//   --threads=N            drain the sharded fleet on N workers.
//   --json=PATH            write the merged ProfileTable JSONL.
//   --perfetto=PATH        write the merged trace as Perfetto JSON
//                          (round-linked flow events included).
//   --check-against=PATH   read the "bench_profile" section of a
//                          BENCH_baseline.json and fail — naming the
//                          phase — if any phase's cycles or energy
//                          regressed more than 15% over the baseline.
//   --emit-baseline        print the JSON section to splice into
//                          BENCH_baseline.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "ratt/obs/metrics.hpp"
#include "ratt/obs/perfetto.hpp"
#include "ratt/obs/prof/profile.hpp"
#include "ratt/sim/swarm.hpp"
#include "ratt/timing/timing.hpp"

namespace {

using namespace ratt;  // NOLINT

constexpr std::size_t kDevices = 64;
constexpr std::size_t kShards = 16;
constexpr double kHorizonMs = 2000.0;
constexpr double kCoverageGate = 95.0;   // % of cycles in named phases
constexpr double kRegressionGate = 15.0; // % growth vs baseline that fails

struct Options {
  std::size_t threads = 1;
  std::string json_path;
  std::string perfetto_path;
  std::string baseline_path;
  bool emit_baseline = false;
};

sim::SwarmConfig fleet_config() {
  sim::SwarmConfig config;
  config.device_count = kDevices;
  config.shard_count = kShards;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.authenticate_requests = true;
  config.prover.measured_bytes = 16 * 1024;
  config.attest_period_ms = 250.0;
  config.stagger_ms = 3.0;
  // A lossy wire with reliable rounds: retries inject retry_overhead and
  // net_wait samples alongside the four crypto phases.
  config.link.name = "lossy10";
  config.link.loss_to_prover = 0.1;
  config.link.loss_to_verifier = 0.05;
  config.reliable = true;
  config.retry.max_attempts = 4;
  config.retry.base_timeout_ms = 0.0;  // derived per device
  config.retry.jitter_ms = 5.0;
  return config;
}

struct PhaseRow {
  std::uint64_t cycles = 0;
  double energy_mj = 0.0;
};

/// Minimal scanner for the "bench_profile" -> "phases" section of
/// BENCH_baseline.json: finds `"<phase>": {"cycles": N, "energy_mj": X}`
/// rows without a JSON dependency. Returns false when the section or a
/// phase row is missing.
bool read_baseline(const std::string& text, const char* phase,
                   PhaseRow* out) {
  const std::size_t section = text.find("\"bench_profile\"");
  if (section == std::string::npos) return false;
  const std::size_t at =
      text.find("\"" + std::string(phase) + "\"", section);
  if (at == std::string::npos) return false;
  const std::size_t cycles = text.find("\"cycles\":", at);
  const std::size_t energy = text.find("\"energy_mj\":", at);
  const std::size_t row_end = text.find('}', at);
  if (cycles == std::string::npos || energy == std::string::npos ||
      cycles > row_end || energy > row_end) {
    return false;
  }
  out->cycles = std::strtoull(text.c_str() + cycles + 9, nullptr, 10);
  out->energy_mj = std::strtod(text.c_str() + energy + 12, nullptr);
  return true;
}

/// Growth of `now` over `base` in percent (0 when the baseline is 0 —
/// a phase appearing from nothing is caught by the cycles row).
double growth_pct(double now, double base) {
  return base <= 0.0 ? 0.0 : 100.0 * (now - base) / base;
}

int check_against(const obs::prof::ProfileTable& table,
                  const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline: %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::printf("\n=== phase regression gate (vs %s, >%.0f%% fails) ===\n\n",
              path.c_str(), kRegressionGate);
  std::printf("  %-15s %14s %14s %8s %12s %12s %8s\n", "phase",
              "base cycles", "now cycles", "cyc %", "base mJ", "now mJ",
              "mJ %");
  int failures = 0;
  for (std::size_t p = 0; p < obs::prof::kPhaseCount; ++p) {
    const auto phase = static_cast<obs::prof::Phase>(p);
    const std::string name(obs::prof::to_string(phase));
    const obs::prof::PhaseCost now = table.total(phase);
    PhaseRow base;
    if (!read_baseline(text, name.c_str(), &base)) {
      std::fprintf(stderr,
                   "baseline has no bench_profile row for phase '%s'\n",
                   name.c_str());
      return 2;
    }
    const double cyc_pct =
        growth_pct(static_cast<double>(now.cycles),
                   static_cast<double>(base.cycles));
    const double mj_pct = growth_pct(now.energy_mj, base.energy_mj);
    const bool cyc_bad = cyc_pct > kRegressionGate;
    const bool mj_bad = mj_pct > kRegressionGate;
    std::printf("  %-15s %14llu %14llu %+7.2f%% %12.4f %12.4f %+7.2f%%%s\n",
                name.c_str(),
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(now.cycles), cyc_pct,
                base.energy_mj, now.energy_mj, mj_pct,
                (cyc_bad || mj_bad) ? "  <-- REGRESSED" : "");
    if (cyc_bad) {
      std::fprintf(stderr,
                   "PHASE REGRESSION: %s cycles grew %.2f%% "
                   "(%llu -> %llu, gate %.0f%%)\n",
                   name.c_str(), cyc_pct,
                   static_cast<unsigned long long>(base.cycles),
                   static_cast<unsigned long long>(now.cycles),
                   kRegressionGate);
      ++failures;
    }
    if (mj_bad) {
      std::fprintf(stderr,
                   "PHASE REGRESSION: %s energy grew %.2f%% "
                   "(%.4f -> %.4f mJ, gate %.0f%%)\n",
                   name.c_str(), mj_pct, base.energy_mj, now.energy_mj,
                   kRegressionGate);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("\n  all phases within the %.0f%% gate\n", kRegressionGate);
  }
  return failures == 0 ? 0 : 1;
}

void emit_baseline(const obs::prof::ProfileTable& table) {
  std::printf("  \"bench_profile\": {\n");
  std::printf("    \"bench\": \"bench_profile\",\n");
  std::printf("    \"devices\": %zu,\n", kDevices);
  std::printf("    \"shards\": %zu,\n", kShards);
  std::printf("    \"horizon_ms\": %.0f,\n", kHorizonMs);
  std::printf("    \"phases\": {\n");
  for (std::size_t p = 0; p < obs::prof::kPhaseCount; ++p) {
    const auto phase = static_cast<obs::prof::Phase>(p);
    const obs::prof::PhaseCost cost = table.total(phase);
    std::printf("      \"%s\": {\"cycles\": %llu, \"energy_mj\": %.6f}%s\n",
                std::string(obs::prof::to_string(phase)).c_str(),
                static_cast<unsigned long long>(cost.cycles), cost.energy_mj,
                p + 1 < obs::prof::kPhaseCount ? "," : "");
  }
  std::printf("    }\n  }\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      opt.threads = static_cast<std::size_t>(
          std::strtoull(arg + 10, nullptr, 10));
      continue;
    }
    if (std::strncmp(arg, "--json=", 7) == 0) {
      opt.json_path = arg + 7;
      continue;
    }
    if (std::strncmp(arg, "--perfetto=", 11) == 0) {
      opt.perfetto_path = arg + 11;
      continue;
    }
    if (std::strncmp(arg, "--check-against=", 16) == 0) {
      opt.baseline_path = arg + 16;
      continue;
    }
    if (std::strcmp(arg, "--emit-baseline") == 0) {
      opt.emit_baseline = true;
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [--threads=N] [--json=path] [--perfetto=path] "
                 "[--check-against=BENCH_baseline.json] [--emit-baseline]\n",
                 argv[0]);
    return 2;
  }
  if (opt.threads == 0) {
    std::fprintf(stderr, "--threads must be nonzero\n");
    return 2;
  }

  sim::Swarm swarm(fleet_config(), crypto::from_string("bench-profile-seed"));
  obs::Registry registry;
  swarm.attach_sharded_observer(&registry);
  const sim::SwarmReport report = swarm.run_parallel(kHorizonMs, opt.threads);
  const obs::prof::ProfileTable table = swarm.merged_profile();

  if (opt.emit_baseline) {
    emit_baseline(table);
    return 0;
  }

  const timing::DeviceTimingModel model;
  std::printf(
      "=== per-phase cost attribution: %zu-device reliable fleet over "
      "lossy10 ===\n\n", kDevices);
  std::printf("  rounds valid: %llu of %llu started, horizon %.0f ms\n\n",
              static_cast<unsigned long long>(report.total_valid()),
              static_cast<unsigned long long>(report.total_sent()),
              kHorizonMs);
  std::ostringstream report_text;
  table.write_report(report_text, model.clock_hz());
  std::fputs(report_text.str().c_str(), stdout);

  if (!opt.json_path.empty()) {
    std::ofstream json(opt.json_path, std::ios::binary);
    if (!json) {
      std::fprintf(stderr, "cannot open json file: %s\n",
                   opt.json_path.c_str());
      return 2;
    }
    table.write_jsonl(json);
  }
  if (!opt.perfetto_path.empty()) {
    std::ofstream perfetto(opt.perfetto_path, std::ios::binary);
    if (!perfetto) {
      std::fprintf(stderr, "cannot open perfetto file: %s\n",
                   opt.perfetto_path.c_str());
      return 2;
    }
    obs::write_perfetto(perfetto, swarm.merged_trace());
  }

  // Coverage gate: the named phases must explain >= 95% of every
  // simulated cycle, or the attribution itself has decayed.
  const std::uint64_t total = table.total_cycles();
  const std::uint64_t other =
      table.total(obs::prof::Phase::kOther).cycles;
  const double coverage =
      total == 0 ? 0.0
                 : 100.0 * static_cast<double>(total - other) /
                       static_cast<double>(total);
  const bool covered = coverage >= kCoverageGate;
  std::printf("\n  coverage gate: %.2f%% %s %.0f%% required — %s\n",
              coverage, covered ? ">=" : "<", kCoverageGate,
              covered ? "ok" : "FAIL");
  int rc = covered ? 0 : 1;

  if (!opt.baseline_path.empty()) {
    const int gate = check_against(table, opt.baseline_path);
    if (gate != 0) rc = gate;
  }
  return rc;
}
