// Power-trace telemetry gates: envelope detection of MAC-passing tampers
// and checkpointable battery depletion (DESIGN.md section 4g).
//
// Section 1 — witness gate. A clean sharded fleet runs with power
// tracing attached; the witness learns each device's first two rounds,
// freezes, and grades the rest. Gates: zero false positives on clean
// rounds, >= 95% detection when every graded round is rewritten by the
// two MAC-passing tampers (the Adv_roam restore exit and the skipped
// measurement), and the AlertEngine raises power.envelope_violation on
// the tampered verdict stream while staying silent on the clean one.
//
// Section 2 — depletion gate, once per freshness scheme. The fleet's
// merged trace replays through a PowerMeter sized so the cells visibly
// deplete; a checkpointed --segments=N replay (seams on report
// boundaries) must reproduce the straight run's report stream byte for
// byte, and the battery gauge stream must trip power.battery_depletion.
//
//   (no args)       run both sections; exit 1 if any gate fails.
//   --threads=N     drain the sharded fleet on N workers.
//   --horizon=MS    fleet horizon in sim ms (default 2000).
//   --segments=N    checkpoint segments for the replay gate (default 4).
//   --json=PATH     write the machine-readable BENCH_power.json.
//   --report        print the counter-scheme battery report JSONL.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ratt/adv/adv_power.hpp"
#include "ratt/obs/metrics.hpp"
#include "ratt/obs/power/battery.hpp"
#include "ratt/obs/power/witness.hpp"
#include "ratt/obs/trace.hpp"
#include "ratt/obs/ts/alert.hpp"
#include "ratt/sim/swarm.hpp"
#include "ratt/timing/timing.hpp"

namespace {

using namespace ratt;  // NOLINT
namespace ts = ratt::obs::ts;

constexpr std::size_t kDevices = 16;
constexpr std::size_t kShards = 8;
constexpr std::size_t kMeasuredBytes = 16 * 1024;
constexpr std::size_t kLearnRounds = 2;   // per device, then freeze
constexpr double kDetectionGate = 95.0;   // % of tampered rounds flagged

struct Options {
  std::size_t threads = 1;
  std::size_t segments = 4;
  double horizon_ms = 2000.0;
  std::string json_path;
  bool report = false;
};

sim::SwarmConfig fleet_config(attest::FreshnessScheme scheme) {
  sim::SwarmConfig config;
  config.device_count = kDevices;
  config.shard_count = kShards;
  config.prover.scheme = scheme;
  if (scheme == attest::FreshnessScheme::kTimestamp) {
    config.prover.clock = attest::ClockDesign::kSwClock;
    config.prover.timestamp_window_ticks = 24'000'000;  // 1 s at 24 MHz
    config.prover.timestamp_skew_ticks = 70'000;
  }
  config.prover.authenticate_requests = true;
  config.prover.measured_bytes = kMeasuredBytes;
  config.attest_period_ms = 250.0;
  config.stagger_ms = 7.0;
  return config;
}

struct WitnessResult {
  std::uint64_t rounds_graded = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t tampered_rounds = 0;
  std::uint64_t detections = 0;
  std::uint64_t violation_alerts = 0;
  std::uint64_t clean_alerts = 0;
  double detection_pct() const {
    return tampered_rounds == 0
               ? 0.0
               : 100.0 * static_cast<double>(detections) /
                     static_cast<double>(tampered_rounds);
  }
};

/// Section 1: learn a clean envelope, then grade the clean rounds (FP
/// count) and their tampered rewrites (detection count), and replay both
/// verdict streams through the AlertEngine.
WitnessResult run_witness(const Options& opt) {
  sim::Swarm swarm(fleet_config(attest::FreshnessScheme::kCounter),
                   crypto::from_string("bench-power-witness-seed"));
  obs::Registry registry;
  swarm.attach_sharded_observer(&registry);
  swarm.attach_power();
  (void)swarm.run_parallel(opt.horizon_ms, opt.threads);

  obs::power::PowerWitness witness;
  std::map<std::uint64_t, std::size_t> learned;
  std::vector<obs::power::RoundTrace> graded;
  for (const obs::power::RoundTrace& trace : swarm.merged_power_traces()) {
    if (learned[trace.device_id] < kLearnRounds) {
      witness.learn(trace);
      ++learned[trace.device_id];
    } else {
      graded.push_back(trace);
    }
  }
  witness.freeze();

  WitnessResult result;
  const timing::DeviceTimingModel timing;
  obs::RingRecorder clean_verdicts(4096);
  obs::RingRecorder tampered_verdicts(4096);
  for (const obs::power::RoundTrace& trace : graded) {
    if (!witness.grade_to(trace, clean_verdicts).empty()) {
      ++result.false_positives;
    }
    ++result.rounds_graded;
    for (const adv::PowerTamper tamper :
         {adv::PowerTamper::kRoamRestore, adv::PowerTamper::kSkipMemMac}) {
      const obs::power::RoundTrace tampered = adv::apply_power_tamper(
          trace, tamper, timing, obs::PowerModel{}, kMeasuredBytes);
      ++result.tampered_rounds;
      if (!witness.grade_to(tampered, tampered_verdicts).empty()) {
        ++result.detections;
      }
    }
  }

  ts::AlertConfig alert_config;
  alert_config.window_ms = 500.0;
  alert_config.device_count = kDevices;
  ts::AlertEngine tampered_engine(alert_config);
  tampered_engine.replay(tampered_verdicts.snapshot(),
                         opt.horizon_ms + 1000.0);
  for (const auto& alert : tampered_engine.alerts()) {
    if (alert.rule == "power.envelope_violation") ++result.violation_alerts;
  }
  ts::AlertEngine clean_engine(alert_config);
  clean_engine.replay(clean_verdicts.snapshot(), opt.horizon_ms + 1000.0);
  result.clean_alerts = clean_engine.alerts().size();
  return result;
}

struct DepletionResult {
  double capacity_mj = 0.0;
  double min_soc = 0.0;
  std::uint64_t valid = 0;
  std::uint64_t sent = 0;
  std::uint64_t depleted = 0;
  std::uint64_t reports = 0;
  std::uint64_t depletion_alerts = 0;
  bool checkpoint_match = false;
};

std::string reports_jsonl(const obs::RingRecorder& ring) {
  std::ostringstream out;
  obs::write_jsonl(out, ring.snapshot());
  return out.str();
}

/// Section 2: replay one scheme's merged trace through a PowerMeter
/// sized so the fleet visibly depletes, straight and in checkpointed
/// segments with seams on report boundaries, and byte-compare.
DepletionResult run_depletion(const Options& opt,
                              attest::FreshnessScheme scheme,
                              bool print_reports) {
  sim::Swarm swarm(fleet_config(scheme),
                   crypto::from_string("bench-power-battery-" +
                                       attest::to_string(scheme)));
  obs::Registry registry;
  swarm.attach_sharded_observer(&registry);
  const sim::SwarmReport report =
      swarm.run_parallel(opt.horizon_ms, opt.threads);
  const std::vector<obs::TraceRecord> merged = swarm.merged_trace();

  // Size the cell at 80% of the mean per-device active energy, so most
  // devices run their battery flat inside the horizon — deterministic
  // for a fixed seed/horizon, and identical for both replays below.
  double active_mj = 0.0;
  for (const auto& rec : merged) {
    if (rec.kind == "prover.handle") active_mj += rec.energy_mj;
  }
  obs::power::BatteryConfig battery;
  battery.capacity_mj = 0.8 * active_mj / kDevices;
  battery.report_period_ms = 250.0;
  battery.burn_window_ms = 250.0;

  // One report per device per period plus the finish() boundary; an
  // undersized ring would evict the straight run's early reports while
  // each segment's fresh ring keeps its own, faking a replay mismatch.
  const std::size_t ring_capacity =
      kDevices *
      (static_cast<std::size_t>(opt.horizon_ms / battery.report_period_ms) +
       2);

  obs::power::PowerMeter straight(battery);
  obs::RingRecorder straight_ring(ring_capacity);
  straight.set_sink(&straight_ring);
  for (const auto& rec : merged) straight.record(rec);
  straight.finish(opt.horizon_ms);

  // Segmented replay: seams snapped to report boundaries, state carried
  // across segments as checkpoint text.
  std::string segmented;
  std::stringstream carry;
  double prev_seam = 0.0;
  bool restore_ok = true;
  for (std::size_t s = 0; s < opt.segments; ++s) {
    double seam = opt.horizon_ms * static_cast<double>(s + 1) /
                  static_cast<double>(opt.segments);
    if (s + 1 < opt.segments) {
      seam = static_cast<double>(
                 static_cast<std::uint64_t>(seam / battery.report_period_ms)) *
             battery.report_period_ms;
    } else {
      seam = opt.horizon_ms;
    }
    obs::power::PowerMeter meter(battery);
    if (s > 0 && !meter.restore(carry)) restore_ok = false;
    obs::RingRecorder ring(ring_capacity);
    meter.set_sink(&ring);
    for (const auto& rec : merged) {
      if (rec.sim_time_ms > prev_seam && rec.sim_time_ms <= seam) {
        meter.record(rec);
      }
    }
    meter.finish(seam);
    carry.str(std::string());
    carry.clear();
    meter.checkpoint(carry);
    segmented += reports_jsonl(ring);
    prev_seam = seam;
  }

  DepletionResult result;
  result.capacity_mj = battery.capacity_mj;
  result.valid = report.total_valid();
  result.sent = report.total_sent();
  result.min_soc = straight.min_soc();
  result.depleted = straight.depleted_count();
  result.reports = straight.reports_emitted();
  result.checkpoint_match =
      restore_ok && segmented == reports_jsonl(straight_ring);

  ts::AlertConfig alert_config;
  alert_config.window_ms = 500.0;
  alert_config.device_count = kDevices;
  ts::AlertEngine engine(alert_config);
  engine.replay(straight_ring.snapshot(), opt.horizon_ms + 1000.0);
  for (const auto& alert : engine.alerts()) {
    if (alert.rule == "power.battery_depletion") ++result.depletion_alerts;
  }

  if (print_reports) {
    std::fputs(reports_jsonl(straight_ring).c_str(), stdout);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      opt.threads =
          static_cast<std::size_t>(std::strtoull(arg + 10, nullptr, 10));
      continue;
    }
    if (std::strncmp(arg, "--horizon=", 10) == 0) {
      opt.horizon_ms = std::strtod(arg + 10, nullptr);
      continue;
    }
    if (std::strncmp(arg, "--segments=", 11) == 0) {
      opt.segments =
          static_cast<std::size_t>(std::strtoull(arg + 11, nullptr, 10));
      continue;
    }
    if (std::strncmp(arg, "--json=", 7) == 0) {
      opt.json_path = arg + 7;
      continue;
    }
    if (std::strcmp(arg, "--report") == 0) {
      opt.report = true;
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [--threads=N] [--horizon=MS] [--segments=N] "
                 "[--json=BENCH_power.json] [--report]\n",
                 argv[0]);
    return 2;
  }
  if (opt.threads == 0 || opt.segments == 0 || opt.horizon_ms <= 0.0) {
    std::fprintf(stderr,
                 "--threads/--segments must be nonzero, --horizon > 0\n");
    return 2;
  }

  int rc = 0;
  std::printf(
      "=== power witness gate: %zu devices, %zu shards, %.0f ms ===\n\n",
      kDevices, kShards, opt.horizon_ms);
  const WitnessResult witness = run_witness(opt);
  std::printf("  clean rounds graded:   %llu (false positives: %llu)\n",
              static_cast<unsigned long long>(witness.rounds_graded),
              static_cast<unsigned long long>(witness.false_positives));
  std::printf("  tampered rounds:       %llu (detected: %llu = %.2f%%)\n",
              static_cast<unsigned long long>(witness.tampered_rounds),
              static_cast<unsigned long long>(witness.detections),
              witness.detection_pct());
  std::printf("  envelope alerts:       %llu tampered, %llu clean\n",
              static_cast<unsigned long long>(witness.violation_alerts),
              static_cast<unsigned long long>(witness.clean_alerts));
  if (witness.rounds_graded == 0) {
    std::fprintf(stderr, "GATE: the fleet graded no rounds\n");
    rc = 1;
  }
  if (witness.false_positives != 0) {
    std::fprintf(stderr, "GATE: %llu clean rounds flagged (want 0)\n",
                 static_cast<unsigned long long>(witness.false_positives));
    rc = 1;
  }
  if (witness.detection_pct() < kDetectionGate) {
    std::fprintf(stderr, "GATE: detection %.2f%% < %.0f%%\n",
                 witness.detection_pct(), kDetectionGate);
    rc = 1;
  }
  if (witness.violation_alerts == 0 || witness.clean_alerts != 0) {
    std::fprintf(stderr,
                 "GATE: alert replay (tampered %llu, want >0; clean %llu, "
                 "want 0)\n",
                 static_cast<unsigned long long>(witness.violation_alerts),
                 static_cast<unsigned long long>(witness.clean_alerts));
    rc = 1;
  }

  std::printf("\n=== battery depletion gate: %zu-segment checkpointed "
              "replay ===\n\n", opt.segments);
  std::printf("  %-10s %12s %11s %8s %9s %8s %7s %6s\n", "scheme",
              "capacity mJ", "valid/sent", "min SoC", "depleted", "reports",
              "alerts", "match");
  std::map<std::string, DepletionResult> depletion;
  for (const attest::FreshnessScheme scheme :
       {attest::FreshnessScheme::kNonce, attest::FreshnessScheme::kCounter,
        attest::FreshnessScheme::kTimestamp}) {
    const std::string name = attest::to_string(scheme);
    const DepletionResult result = run_depletion(
        opt, scheme,
        opt.report && scheme == attest::FreshnessScheme::kCounter);
    depletion[name] = result;
    std::printf("  %-10s %12.4f %5llu/%-5llu %8.4f %9llu %8llu %7llu %6s\n",
                name.c_str(), result.capacity_mj,
                static_cast<unsigned long long>(result.valid),
                static_cast<unsigned long long>(result.sent),
                result.min_soc,
                static_cast<unsigned long long>(result.depleted),
                static_cast<unsigned long long>(result.reports),
                static_cast<unsigned long long>(result.depletion_alerts),
                result.checkpoint_match ? "ok" : "FAIL");
    if (!result.checkpoint_match) {
      std::fprintf(stderr,
                   "GATE: %s segmented replay diverged from the straight "
                   "run\n", name.c_str());
      rc = 1;
    }
    if (result.depletion_alerts == 0) {
      std::fprintf(stderr, "GATE: %s raised no power.battery_depletion\n",
                   name.c_str());
      rc = 1;
    }
    if (result.valid == 0 || result.valid * 2 < result.sent) {
      std::fprintf(stderr,
                   "GATE: %s fleet mostly rejecting (%llu/%llu valid) — "
                   "the depletion numbers would be meaningless\n",
                   name.c_str(),
                   static_cast<unsigned long long>(result.valid),
                   static_cast<unsigned long long>(result.sent));
      rc = 1;
    }
  }

  if (!opt.json_path.empty()) {
    std::ofstream json(opt.json_path, std::ios::binary);
    if (!json) {
      std::fprintf(stderr, "cannot open json file: %s\n",
                   opt.json_path.c_str());
      return 2;
    }
    std::ostringstream out;
    out << "{\n  \"bench\": \"bench_power_trace\",\n";
    out << "  \"devices\": " << kDevices << ",\n";
    out << "  \"shards\": " << kShards << ",\n";
    out << "  \"horizon_ms\": " << opt.horizon_ms << ",\n";
    out << "  \"segments\": " << opt.segments << ",\n";
    out << "  \"witness\": {\n";
    out << "    \"rounds_graded\": " << witness.rounds_graded << ",\n";
    out << "    \"false_positives\": " << witness.false_positives << ",\n";
    out << "    \"tampered_rounds\": " << witness.tampered_rounds << ",\n";
    out << "    \"detections\": " << witness.detections << ",\n";
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.2f", witness.detection_pct());
    out << "    \"detection_pct\": " << pct << ",\n";
    out << "    \"violation_alerts\": " << witness.violation_alerts << "\n";
    out << "  },\n  \"battery\": {\n";
    std::size_t i = 0;
    for (const auto& [name, result] : depletion) {
      char capacity[32];
      char min_soc[32];
      std::snprintf(capacity, sizeof(capacity), "%.6f", result.capacity_mj);
      std::snprintf(min_soc, sizeof(min_soc), "%.6f", result.min_soc);
      out << "    \"" << name << "\": {\"capacity_mj\": " << capacity
          << ", \"min_soc\": " << min_soc
          << ", \"valid\": " << result.valid
          << ", \"sent\": " << result.sent
          << ", \"depleted\": " << result.depleted
          << ", \"reports\": " << result.reports
          << ", \"depletion_alerts\": " << result.depletion_alerts
          << ", \"checkpoint_match\": "
          << (result.checkpoint_match ? "true" : "false") << "}"
          << (++i < depletion.size() ? "," : "") << "\n";
    }
    out << "  }\n}\n";
    json << out.str();
  }

  std::printf("\n  %s\n", rc == 0 ? "all power gates passed" :
                                    "POWER GATE FAILURE");
  return rc;
}
