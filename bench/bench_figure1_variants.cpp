// Figure 1 reproduction: the two mitigation architectures, exercised
// end-to-end on the simulated MCU.
//   (a) base version — K_Attest and counter_R accessible only by
//       Code_Attest; wide hardware clock; EA-MPU locked by secure boot.
//   (b) advanced version — SW-clock: Clock_LSB wrap -> interrupt ->
//       Code_Clock increments Clock_MSB; IDT and interrupt mask locked.
// For each variant: boot, run genuine attestation rounds, verify the
// clock tracks ground truth across many LSB wraps, and probe every
// protected asset from malware to show the denials.
#include <cstdio>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::AttestOutcome;
using attest::AttestStatus;
using attest::ClockDesign;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;
using crypto::Bytes;

Bytes key() { return crypto::from_hex("101112131415161718191a1b1c1d1e1f"); }

bool run_variant(const char* title, ClockDesign design) {
  // Requests must be spaced beyond the clock resolution ("sufficiently
  // inter-spaced genuine attestation requests", Sec. 4.2): the 32-bit
  // divided clock ticks every ~43.7 ms.
  const double round_spacing_ms =
      (design == ClockDesign::kHw32Div) ? 100.0 : 20.0;
  std::printf("--- %s ---\n", title);
  ProverConfig config;
  config.scheme = FreshnessScheme::kTimestamp;
  config.clock = design;
  config.measured_bytes = 4096;
  config.timestamp_window_ticks = 24'000'000;  // 1 s at 24 MHz
  config.timestamp_skew_ticks = 70'000;        // > one 16-bit LSB wrap
  ProverDevice prover(config, key(), crypto::from_string("fig1-app"));
  std::printf("  secure boot: %s; EA-MPU locked: %s; active rules: %zu\n",
              hw::to_string(prover.boot_status()).c_str(),
              prover.mcu().mpu().locked() ? "yes" : "no",
              prover.mcu().mpu().active_rules());

  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kTimestamp;
  vc.clock = [&prover] { return prover.ground_truth_ticks(); };
  Verifier verifier(key(), vc, crypto::from_string("fig1-vrf"));
  verifier.set_reference_memory(prover.reference_memory());

  // Run rounds spread over enough time for many Clock_LSB wraps
  // (16-bit LSB at 24 MHz wraps every ~2.73 ms).
  bool ok = true;
  for (int round = 0; round < 5; ++round) {
    prover.idle_ms(round_spacing_ms);
    const auto req = verifier.make_request();
    const AttestOutcome out = prover.handle(req);
    const bool valid = out.status == AttestStatus::kOk &&
                       verifier.check_response(req, out.response);
    ok = ok && valid;
    std::printf(
        "  round %d: status=%s, device cost %.3f ms, response %s\n", round,
        attest::to_string(out.status).c_str(), out.device_ms,
        valid ? "valid" : "INVALID");
  }

  const auto clock = prover.prover_clock_ticks();
  const std::uint64_t truth = prover.ground_truth_ticks();
  std::printf("  prover clock: %llu ticks; ground truth: %llu (drift %lld)\n",
              static_cast<unsigned long long>(clock.value_or(0)),
              static_cast<unsigned long long>(truth),
              static_cast<long long>(clock.value_or(0) - truth));

  // Malware probes every protected asset.
  hw::SoftwareComponent malware(prover.mcu(), "malware",
                                prover.surface().malware_region);
  const auto probe = [&](const char* what, hw::BusStatus status) {
    std::printf("  malware %-28s -> %s\n", what,
                hw::to_string(status).c_str());
    return status != hw::BusStatus::kOk;
  };
  std::uint8_t byte = 0;
  bool denials = true;
  denials &= probe("read K_Attest", malware.read8(prover.surface().key_addr,
                                                  byte));
  denials &= probe("write counter_R",
                   malware.write64(prover.surface().counter_addr, 0));
  if (design == ClockDesign::kSwClock) {
    denials &= probe("write Clock_MSB",
                     malware.write32(prover.surface().clock_msb_addr, 0));
    denials &= probe("write IDT entry",
                     malware.write32(prover.surface().idt_base, 0xbad));
    denials &= probe("write interrupt mask",
                     malware.write32(prover.surface().irq_mask_addr, ~0u));
  } else {
    denials &= probe("write clock register",
                     prover.mcu().bus().write64(
                         malware.ctx(), prover.surface().clock_port_addr, 0));
  }
  denials &= probe("write EA-MPU config",
                   prover.mcu().bus().write8(
                       malware.ctx(), prover.mcu().layout().mpu_port_base, 0));
  std::printf("\n");
  return ok && denials;
}

}  // namespace

int main() {
  std::printf("=== Figure 1: Adv_roam mitigation architectures ===\n\n");
  bool ok = true;
  ok &= run_variant(
      "Variant (a): EA-MPU-protected K_Attest/counter_R + 64-bit HW clock",
      ClockDesign::kHw64);
  ok &= run_variant(
      "Variant (a'): 32-bit HW clock with 2^20 divider (cheaper register)",
      ClockDesign::kHw32Div);
  ok &= run_variant(
      "Variant (b): SW-clock (Clock_LSB wrap IRQ -> Code_Clock -> "
      "Clock_MSB)",
      ClockDesign::kSwClock);
  std::printf("%s\n", ok ? "All variants: genuine attestation works and "
                           "every malware probe is denied."
                         : "FAILURE: see output above.");
  return ok ? 0 : 1;
}
