// Extension experiment X1 (motivated by Sec. 1/3.1, not plotted in the
// paper): quantitative DoS impact of malicious attestation requests on
// the prover's primary duty and battery, as a function of attack rate,
// for three prover configurations:
//   * unprotected   — no request authentication (Sec. 3.1 baseline),
//   * counter       — authenticated requests + monotonic counter,
//   * timestamp     — authenticated requests + timestamps + HW clock.
// The attacker replays one recorded genuine request at the given rate.
#include <cstdio>
#include <memory>

#include "ratt/adv/adv_ext.hpp"
#include "ratt/sim/dos.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::AttestRequest;
using attest::ClockDesign;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;
using crypto::Bytes;

Bytes key() { return crypto::from_hex("202122232425262728292a2b2c2d2e2f"); }

struct Setup {
  std::unique_ptr<ProverDevice> prover;
  AttestRequest recorded;  // what the attacker replays
};

Setup make_setup(FreshnessScheme scheme, bool authenticate,
                 std::uint32_t rate_limit = 0) {
  ProverConfig config;
  config.scheme = scheme;
  config.authenticate_requests = authenticate;
  config.rate_limit_max = rate_limit;
  config.rate_limit_window_ms = 1000.0;
  config.measured_bytes = 64 * 1024;  // ~94.6 ms per attestation
  if (scheme == FreshnessScheme::kTimestamp) {
    config.clock = ClockDesign::kHw64;
    config.timestamp_window_ticks = 2'400'000;  // 100 ms window
  }
  Setup s;
  s.prover = std::make_unique<ProverDevice>(
      config, key(), crypto::from_string("dos-impact-app"));

  Verifier::Config vc;
  vc.scheme = scheme;
  vc.authenticate_requests = authenticate;
  ProverDevice* prover_ptr = s.prover.get();
  vc.clock = [prover_ptr] { return prover_ptr->ground_truth_ticks(); };
  Verifier verifier(key(), vc, crypto::from_string("dos-impact-vrf"));

  // Phase I: the attacker records one genuine request (delivered).
  s.prover->idle_ms(1.0);
  s.recorded = verifier.make_request();
  (void)s.prover->handle(s.recorded);
  return s;
}

void run_series(const char* name, FreshnessScheme scheme,
                bool authenticate, std::uint32_t rate_limit = 0) {
  std::printf("  %s:\n", name);
  std::printf("    %-10s %-12s %-14s %-14s %-11s %-10s\n", "rate(/s)",
              "miss-rate", "attest-ms", "energy(mJ)", "performed",
              "wdt-resets");
  for (double rate : {0.0, 1.0, 2.0, 5.0, 10.0}) {
    Setup s = make_setup(scheme, authenticate, rate_limit);
    sim::TaskProfile task{10.0, 2.0};
    // A 30 ms watchdog (typical for a 10 ms control loop) with a 50 ms
    // reboot penalty: starvation now costs resets, not just misses.
    sim::WatchdogProfile wdt{30.0, 50.0};
    sim::DosSimulator simulator(*s.prover, task, timing::EnergyModel(),
                                timing::Battery(), wdt);
    const auto arrivals = sim::uniform_arrivals(rate, 5000.0);
    const AttestRequest replayed = s.recorded;
    const sim::DosReport report = simulator.run(
        arrivals, [&replayed](double) { return replayed; }, 5000.0);
    std::printf("    %-10.1f %-12.3f %-14.1f %-14.3f %-11llu %-10llu\n",
                rate, report.miss_rate(), report.attest_busy_ms,
                report.energy_mj,
                static_cast<unsigned long long>(
                    report.attestations_performed),
                static_cast<unsigned long long>(report.watchdog_resets));
  }
}

}  // namespace

int main() {
  std::printf(
      "=== X1: DoS impact of replayed attestation requests ===\n"
      "(5 s horizon; primary task: 2 ms every 10 ms; replay flood at "
      "varying rate)\n\n");
  run_series("unprotected (no request auth, no freshness)",
             FreshnessScheme::kNone, false);
  run_series("counter (auth + monotonic counter)", FreshnessScheme::kCounter,
             true);
  run_series("timestamp (auth + timestamp, HW clock)",
             FreshnessScheme::kTimestamp, true);
  run_series("no freshness + rate limiter (2 attest/s budget, extension)",
             FreshnessScheme::kNone, false, 2);
  std::printf(
      "\n  Expected shape: the unprotected prover performs every replayed\n"
      "  attestation (~94.6 ms each) -> task misses and energy grow with "
      "rate;\n  counter/timestamp provers reject replays after one "
      "0.432 ms MAC check\n  -> miss rate stays ~0 and energy stays flat."
      "\n");
  return 0;
}
