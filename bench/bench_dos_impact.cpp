// Extension experiment X1 (motivated by Sec. 1/3.1, not plotted in the
// paper): quantitative DoS impact of malicious attestation requests on
// the prover's primary duty and battery, as a function of attack rate,
// for three prover configurations:
//   * unprotected   — no request authentication (Sec. 3.1 baseline),
//   * counter       — authenticated requests + monotonic counter,
//   * timestamp     — authenticated requests + timestamps + HW clock.
// The attacker replays one recorded genuine request at the given rate.
//
// Observability: every delivered request is recorded as a "dos.request"
// span (JSONL, --trace=FILE or bench_dos_impact.jsonl by default; the
// same spans also export as Perfetto/Chrome trace_event JSON via
// --perfetto=FILE) and filed on a DoS scoreboard under
// "<config>:<outcome>", so the attacker-vs-prover time/energy asymmetry
// is printed per request class instead of being folded into the
// aggregate table. Each run additionally streams through an
// obs::ts::AlertEngine; the `detect` column is the online time-to-detect
// (first fired alert) for that attack scenario — "-" for the rate-0
// baseline, which must stay alert-free (zero false positives).
// A second mode, --link=PROFILE (clean | lossy10 | bursty | hostile),
// measures X1b: the DoS amplification a lossy link itself inflicts on a
// hardened prover. Every verifier retry is a FRESH authenticated request
// the prover must fully serve, so link loss converts directly into extra
// full-memory MACs: the "MACs/round" column is the amplification factor
// (1.0 on a clean link, > 1.0 whenever retransmissions fire). Stdout is
// deterministic — fixed seeds, no wall-clock.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ratt/adv/adv_ext.hpp"
#include "ratt/net/link.hpp"
#include "ratt/obs/perfetto.hpp"
#include "ratt/obs/scoreboard.hpp"
#include "ratt/obs/trace.hpp"
#include "ratt/obs/ts/alert.hpp"
#include "ratt/sim/dos.hpp"
#include "ratt/sim/session.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::AttestRequest;
using attest::ClockDesign;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;
using crypto::Bytes;

constexpr double kHorizonMs = 5000.0;

Bytes key() { return crypto::from_hex("202122232425262728292a2b2c2d2e2f"); }

// Attacker-side cost of one replayed request: its wire time on an
// IEEE 802.15.4-class 250 kbit/s link. The attacker spends airtime; the
// unprotected prover spends a full uninterruptible measurement.
double wire_ms(const AttestRequest& request) {
  return static_cast<double>(request.to_bytes().size()) * 8.0 / 250.0;
}

struct Setup {
  std::unique_ptr<ProverDevice> prover;
  AttestRequest recorded;  // what the attacker replays
};

Setup make_setup(FreshnessScheme scheme, bool authenticate,
                 std::uint32_t rate_limit = 0) {
  ProverConfig config;
  config.scheme = scheme;
  config.authenticate_requests = authenticate;
  config.rate_limit_max = rate_limit;
  config.rate_limit_window_ms = 1000.0;
  config.measured_bytes = 64 * 1024;  // ~94.6 ms per attestation
  if (scheme == FreshnessScheme::kTimestamp) {
    config.clock = ClockDesign::kHw64;
    config.timestamp_window_ticks = 2'400'000;  // 100 ms window
  }
  Setup s;
  s.prover = std::make_unique<ProverDevice>(
      config, key(), crypto::from_string("dos-impact-app"));

  Verifier::Config vc;
  vc.scheme = scheme;
  vc.authenticate_requests = authenticate;
  ProverDevice* prover_ptr = s.prover.get();
  vc.clock = [prover_ptr] { return prover_ptr->ground_truth_ticks(); };
  Verifier verifier(key(), vc, crypto::from_string("dos-impact-vrf"));

  // Phase I: the attacker records one genuine request (delivered).
  s.prover->idle_ms(1.0);
  s.recorded = verifier.make_request();
  (void)s.prover->handle(s.recorded);
  return s;
}

void run_series(const char* name, const char* label, FreshnessScheme scheme,
                obs::DosScoreboard& scoreboard, obs::TraceSink& sink,
                std::vector<obs::ts::AlertEvent>& all_alerts,
                std::uint64_t& run_id, bool authenticate,
                std::uint32_t rate_limit = 0) {
  std::printf("  %s:\n", name);
  std::printf("    %-10s %-12s %-14s %-14s %-11s %-10s %s\n", "rate(/s)",
              "miss-rate", "attest-ms", "energy(mJ)", "performed",
              "wdt-resets", "detect");
  for (double rate : {0.0, 1.0, 2.0, 5.0, 10.0}) {
    Setup s = make_setup(scheme, authenticate, rate_limit);
    sim::TaskProfile task{10.0, 2.0};
    // A 30 ms watchdog (typical for a 10 ms control loop) with a 50 ms
    // reboot penalty: starvation now costs resets, not just misses.
    sim::WatchdogProfile wdt{30.0, 50.0};
    sim::DosSimulator simulator(*s.prover, task, timing::EnergyModel(),
                                timing::Battery(), wdt);
    // Each (config, rate) run gets its own device id so the Perfetto
    // export lays scenarios out on separate tracks, and its own alert
    // engine so the detect column is the per-scenario time-to-detect.
    obs::ts::AlertConfig alert_config;
    alert_config.device_count = static_cast<std::size_t>(run_id) + 1;
    obs::ts::AlertEngine alerts(alert_config);
    obs::TeeSink tee(sink, alerts);
    sim::DosSimulator::Observer observer;
    observer.scoreboard = &scoreboard;
    observer.sink = &tee;
    observer.attack_label = label;
    observer.attacker_cost_ms = wire_ms(s.recorded);
    observer.device_id = run_id;
    simulator.set_observer(observer);
    const auto arrivals = sim::uniform_arrivals(rate, kHorizonMs);
    const AttestRequest replayed = s.recorded;
    const sim::DosReport report = simulator.run(
        arrivals, [&replayed](double) { return replayed; }, kHorizonMs);
    alerts.finish(kHorizonMs);
    char detect[48];
    if (const obs::ts::AlertEvent* first = alerts.first_alert()) {
      std::snprintf(detect, sizeof(detect), "%.0f ms (%s)",
                    first->sim_time_ms, first->rule.c_str());
    } else {
      std::snprintf(detect, sizeof(detect), "-");
    }
    for (const auto& event : alerts.alerts()) all_alerts.push_back(event);
    ++run_id;
    std::printf("    %-10.1f %-12.3f %-14.1f %-14.3f %-11llu %-10llu %s\n",
                rate, report.miss_rate(), report.attest_busy_ms,
                report.energy_mj,
                static_cast<unsigned long long>(
                    report.attestations_performed),
                static_cast<unsigned long long>(report.watchdog_resets),
                detect);
  }
}

// ---------------------------------------------------------------------
// X1b: --link=PROFILE — retransmission-driven amplification on a faulty
// link. One hardened (auth + counter) prover, reliable rounds, 40 rounds
// over 10 s. MACs/round = attestations_performed / rounds completed: the
// factor by which the lossy wire inflates the prover's per-round cost.

struct LinkRow {
  net::LinkStats link;
  sim::AttestationSession::Stats stats;
  std::uint64_t macs = 0;
  double prover_ms = 0.0;
};

LinkRow run_link(const net::LinkProfile& profile) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.authenticate_requests = true;
  config.measured_bytes = 16 * 1024;  // ~24 ms per served attestation
  ProverDevice prover(config, key(), crypto::from_string("link-bench-app"));

  Verifier::Config vc;
  vc.scheme = config.scheme;
  vc.authenticate_requests = true;
  Verifier verifier(key(), vc, crypto::from_string("link-bench-vrf"));
  verifier.set_reference_memory(prover.reference_memory());

  sim::EventQueue queue;
  sim::Channel channel(queue, /*latency_ms=*/2.0);
  net::FaultyLink link(profile, crypto::from_string("link-bench-seed"));
  channel.set_tap(&link);
  sim::AttestationSession session(queue, channel, prover, verifier);

  net::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_timeout_ms = 0.0;  // derived from the timing model + RTT
  policy.jitter_ms = 5.0;
  session.enable_reliable(policy, crypto::from_string("link-bench-jitter"));

  session.schedule_rounds(/*period_ms=*/250.0, /*horizon_ms=*/10'000.0);
  queue.run_all();

  LinkRow row;
  row.link = link.stats();
  row.stats = session.stats();
  row.macs = prover.anchor().attestations_performed();
  row.prover_ms = row.stats.prover_attest_ms;
  return row;
}

int run_link_mode(const std::string& name) {
  const auto profile = net::link_profile_by_name(name);
  if (!profile.has_value()) {
    std::fprintf(stderr, "unknown link profile '%s' (try: ", name.c_str());
    for (const auto& p : net::all_link_profiles()) {
      std::fprintf(stderr, "%s ", p.name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }
  std::printf(
      "=== X1b: link-loss DoS amplification (reliable rounds, hardened "
      "prover) ===\n(40 rounds over 10 s; every retry is a fresh "
      "authenticated request the prover\n fully serves -> MACs/round > 1.0 "
      "is work the lossy wire extracted for free)\n\n");
  std::printf("  %-9s %-7s %-7s %-8s %-7s %-6s %-6s %-6s %-7s %-10s %s\n",
              "profile", "rounds", "valid", "unreach", "sent", "rtx",
              "t/o", "dup", "macs", "MACs/round", "prover-ms");
  for (const bool baseline : {true, false}) {
    if (baseline && profile->is_clean()) continue;
    const net::LinkProfile run_profile =
        baseline ? net::clean_link() : *profile;
    const LinkRow row = run_link(run_profile);
    const std::uint64_t completed = row.stats.responses_valid;
    const double amplification =
        completed == 0 ? 0.0
                       : static_cast<double>(row.macs) /
                             static_cast<double>(completed);
    std::printf(
        "  %-9s %-7llu %-7llu %-8llu %-7llu %-6llu %-6llu %-6llu %-7llu "
        "%-10.2f %.1f\n",
        run_profile.name.c_str(),
        static_cast<unsigned long long>(row.stats.rounds_started),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(row.stats.rounds_unreachable),
        static_cast<unsigned long long>(row.stats.requests_sent),
        static_cast<unsigned long long>(row.stats.retransmits),
        static_cast<unsigned long long>(row.stats.timeouts),
        static_cast<unsigned long long>(row.stats.duplicate_responses),
        static_cast<unsigned long long>(row.macs), amplification,
        row.prover_ms);
  }
  std::printf(
      "\n  Reading: the clean row pins the 1.00 baseline (one MAC buys one "
      "round).\n  On a faulty link every timeout re-MACs a fresh request; "
      "the prover serves\n  each one, so MACs/round is the battery cost "
      "multiplier of the link alone —\n  no adversary needed. Duplicated "
      "deliveries bounce off the freshness policy\n  and never double-"
      "count (see tests/net/property_test.cpp).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = "bench_dos_impact.jsonl";
  const char* perfetto_path = "bench_dos_impact.perfetto.json";
  std::string link_name;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
    if (std::strncmp(argv[i], "--perfetto=", 11) == 0) {
      perfetto_path = argv[i] + 11;
    }
    if (std::strncmp(argv[i], "--link=", 7) == 0) link_name = argv[i] + 7;
    if (std::strcmp(argv[i], "--link") == 0 && i + 1 < argc) {
      link_name = argv[++i];
    }
  }
  if (!link_name.empty()) return run_link_mode(link_name);
  obs::RingRecorder ring(8192);
  obs::DosScoreboard scoreboard;  // default 7.2 mW prover power model
  std::vector<obs::ts::AlertEvent> all_alerts;
  std::uint64_t run_id = 0;

  std::printf(
      "=== X1: DoS impact of replayed attestation requests ===\n"
      "(5 s horizon; primary task: 2 ms every 10 ms; replay flood at "
      "varying rate;\n detect = online time-to-detect: first obs::ts "
      "alert, '-' = none fired)\n\n");
  run_series("unprotected (no request auth, no freshness)", "unprotected",
             FreshnessScheme::kNone, scoreboard, ring, all_alerts, run_id,
             false);
  run_series("counter (auth + monotonic counter)", "counter",
             FreshnessScheme::kCounter, scoreboard, ring, all_alerts,
             run_id, true);
  run_series("timestamp (auth + timestamp, HW clock)", "timestamp",
             FreshnessScheme::kTimestamp, scoreboard, ring, all_alerts,
             run_id, true);
  run_series("no freshness + rate limiter (2 attest/s budget, extension)",
             "rate-limited", FreshnessScheme::kNone, scoreboard, ring,
             all_alerts, run_id, false, 2);
  std::printf(
      "\n  Expected shape: the unprotected prover performs every replayed\n"
      "  attestation (~94.6 ms each) -> task misses and energy grow with "
      "rate;\n  counter/timestamp provers reject replays after one "
      "0.432 ms MAC check\n  -> miss rate stays ~0 and energy stays flat."
      "\n  Detection: the unprotected prover trips dos.energy_burn / "
      "dos.duty_cycle\n  (it performs the work), hardened provers trip "
      "dos.reject_ratio (cheap, many\n  rejects) and fast floods trip "
      "dos.rate_spike; rate-0 baselines fire nothing.\n");

  std::printf(
      "\n=== DoS scoreboard: attacker-spent vs prover-spent per request "
      "class ===\n(attacker cost = 250 kbit/s airtime per replay; all "
      "rates pooled)\n\n");
  scoreboard.print(stdout);

  std::ofstream trace(trace_path);
  if (trace) {
    obs::write_jsonl(trace, ring.snapshot());
    std::printf(
        "\n  Wrote %llu trace spans to %s (JSONL; %llu dropped by ring)\n",
        static_cast<unsigned long long>(ring.snapshot().size()), trace_path,
        static_cast<unsigned long long>(ring.dropped()));
  } else {
    std::printf("\n  Could not open %s for the JSONL trace\n", trace_path);
  }
  std::ofstream perfetto(perfetto_path);
  if (perfetto) {
    obs::write_perfetto(perfetto, ring.snapshot(), all_alerts);
    std::printf(
        "  Wrote Perfetto trace (%llu spans + %llu alert markers) to %s\n"
        "  (open in ui.perfetto.dev or chrome://tracing; one track per "
        "scenario)\n",
        static_cast<unsigned long long>(ring.snapshot().size()),
        static_cast<unsigned long long>(all_alerts.size()), perfetto_path);
  } else {
    std::printf("  Could not open %s for the Perfetto trace\n",
                perfetto_path);
  }
  return 0;
}
