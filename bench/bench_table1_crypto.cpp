// Table 1 reproduction: performance of cryptographic primitives.
//
// Two layers, matching DESIGN.md's substitution note:
//  1. The calibrated device model reprints the paper's milliseconds at
//     24 MHz (Siskiyou Peak) — exact reproduction of Table 1 plus the
//     Sec. 4.1 request-authentication costs.
//  2. google-benchmark measures OUR implementations on the host; absolute
//     numbers differ from a 24 MHz MCU, but the *shape* — Speck < AES <
//     HMAC << ECC — must match, which validates the paper's argument.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ratt/crypto/aes128.hpp"
#include "ratt/crypto/ecdsa.hpp"
#include "ratt/crypto/hmac.hpp"
#include "ratt/crypto/sha1.hpp"
#include "ratt/crypto/speck.hpp"
#include "ratt/timing/timing.hpp"

namespace {

using namespace ratt;           // NOLINT
using crypto::Bytes;

void print_device_model_table() {
  const timing::DeviceTimingModel model;  // 24 MHz reference
  std::printf(
      "=== Table 1: crypto primitive performance (ms) on Intel Siskiyou "
      "Peak @ 24 MHz ===\n"
      "(device timing model, calibrated with the paper's constants)\n\n");
  std::printf("  SHA1-HMAC:      fix %.3f   per 64B block %.3f\n",
              timing::Table1::kHmacFixMs, timing::Table1::kHmacPerBlockMs);
  std::printf(
      "  AES-128 (CBC):  key exp. %.3f   enc/block %.3f   dec/block %.3f\n",
      timing::Table1::kAesKeyExpMs, timing::Table1::kAesEncPerBlockMs,
      timing::Table1::kAesDecPerBlockMs);
  std::printf(
      "  Speck 64/128:   key exp. %.3f   enc/block %.3f   dec/block %.3f\n",
      timing::Table1::kSpeckKeyExpMs, timing::Table1::kSpeckEncPerBlockMs,
      timing::Table1::kSpeckDecPerBlockMs);
  std::printf("  ECC secp160r1:  sign %.3f   verify %.3f\n\n",
              timing::Table1::kEccSignMs, timing::Table1::kEccVerifyMs);

  std::printf(
      "=== Sec. 4.1: cost of authenticating one attestation request ===\n");
  std::printf("  HMAC-SHA1 validate:   %.3f ms   (paper quotes 0.430)\n",
              model.request_auth_ms(crypto::MacAlgorithm::kHmacSha1));
  std::printf("  AES-CBC-MAC validate: %.3f ms\n",
              model.request_auth_ms(crypto::MacAlgorithm::kAesCbcMac));
  std::printf(
      "  Speck-CBC-MAC validate: %.3f ms (paper quotes 0.015, its per-"
      "block decrypt figure)\n",
      model.request_auth_ms(crypto::MacAlgorithm::kSpeckCbcMac));
  std::printf(
      "  ECDSA verify:         %.3f ms  -> ~%.0fx an HMAC validation: "
      "public-key request auth is itself DoS\n\n",
      model.ecdsa_verify_ms(),
      model.ecdsa_verify_ms() /
          model.request_auth_ms(crypto::MacAlgorithm::kHmacSha1));

  std::printf(
      "=== Host measurements of this library's implementations follow "
      "===\n(expect Speck < AES < HMAC << ECDSA — the paper's shape)\n\n");
}

const Bytes& key16() {
  static const Bytes key =
      crypto::from_hex("000102030405060708090a0b0c0d0e0f");
  return key;
}

void BM_HmacSha1_OneBlock(benchmark::State& state) {
  const Bytes msg(64, 0xab);
  crypto::Hmac<crypto::Sha1> hmac(key16());
  for (auto _ : state) {
    hmac.reset();
    hmac.update(msg);
    benchmark::DoNotOptimize(hmac.finish());
  }
}
BENCHMARK(BM_HmacSha1_OneBlock);

void BM_Aes128_KeyExpansion(benchmark::State& state) {
  for (auto _ : state) {
    crypto::Aes128 aes(key16());
    benchmark::DoNotOptimize(&aes);
  }
}
BENCHMARK(BM_Aes128_KeyExpansion);

void BM_Aes128_EncryptBlock(benchmark::State& state) {
  const crypto::Aes128 aes(key16());
  crypto::Aes128::Block block{};
  for (auto _ : state) {
    block = aes.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_Aes128_EncryptBlock);

void BM_Aes128_DecryptBlock(benchmark::State& state) {
  const crypto::Aes128 aes(key16());
  crypto::Aes128::Block block{};
  for (auto _ : state) {
    block = aes.decrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_Aes128_DecryptBlock);

void BM_Speck_KeyExpansion(benchmark::State& state) {
  for (auto _ : state) {
    crypto::Speck64_128 speck(key16());
    benchmark::DoNotOptimize(&speck);
  }
}
BENCHMARK(BM_Speck_KeyExpansion);

void BM_Speck_EncryptBlock(benchmark::State& state) {
  const crypto::Speck64_128 speck(key16());
  crypto::Speck64_128::Block block{};
  for (auto _ : state) {
    block = speck.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_Speck_EncryptBlock);

void BM_Speck_DecryptBlock(benchmark::State& state) {
  const crypto::Speck64_128 speck(key16());
  crypto::Speck64_128::Block block{};
  for (auto _ : state) {
    block = speck.decrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_Speck_DecryptBlock);

void BM_Ecdsa_Sign(benchmark::State& state) {
  const auto kp = crypto::ecdsa_generate_key(crypto::from_string("bench"));
  Bytes msg = crypto::from_string("attestation request");
  for (auto _ : state) {
    msg[0] = static_cast<std::uint8_t>(msg[0] + 1);  // vary the message
    benchmark::DoNotOptimize(crypto::ecdsa_sign(kp.private_key, msg));
  }
}
BENCHMARK(BM_Ecdsa_Sign)->Unit(benchmark::kMillisecond);

void BM_Ecdsa_Verify(benchmark::State& state) {
  const auto kp = crypto::ecdsa_generate_key(crypto::from_string("bench"));
  const Bytes msg = crypto::from_string("attestation request");
  const auto sig = crypto::ecdsa_sign(kp.private_key, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ecdsa_verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_Ecdsa_Verify)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_device_model_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
