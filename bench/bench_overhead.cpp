// Sec. 6.3 reproduction: overhead of each Adv_roam countermeasure over
// the baseline attestation-capable system, plus the clock wrap-around /
// resolution arithmetic the paper uses to size the counter register.
// A final section measures the host-side cost of the ratt::obs
// instrumentation itself (observed vs. bare prover, wall clock) — the
// hooks must stay a small fraction of a round or they distort the
// experiments they report on (budget: 10% of the post-SHA-NI round).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"
#include "ratt/cost/cost.hpp"
#include "ratt/obs/observer.hpp"
#include "ratt/obs/prof/profile.hpp"

namespace {

bool near(double a, double b, double tol) { return std::fabs(a - b) < tol; }

struct ObsOverhead {
  double bare_ms = 0.0;
  double observed_ms = 0.0;  // registry + trace ring
  double profiled_ms = 0.0;  // registry + trace ring + phase profiler
  double observed_pct() const {
    return bare_ms <= 0.0 ? 0.0
                          : 100.0 * (observed_ms - bare_ms) / bare_ms;
  }
  double profiled_pct() const {
    return bare_ms <= 0.0 ? 0.0
                          : 100.0 * (profiled_ms - bare_ms) / bare_ms;
  }
};

// Wall-clock cost of serving genuine requests with vs. without the
// ratt::obs hooks: one bare prover, one with metrics + tracing, and one
// additionally feeding the prof phase profiler (the full causal-tracing
// configuration, round context included). All three run identical crypto
// work in alternating small batches, so slow drift on a shared host
// (frequency scaling, noisy neighbors) hits every side equally.
ObsOverhead instrumentation_overhead() {
  using namespace ratt;  // NOLINT
  using clock = std::chrono::steady_clock;
  attest::ProverConfig config;
  config.scheme = attest::FreshnessScheme::kCounter;
  config.measured_bytes = 1024;
  const crypto::Bytes key =
      crypto::from_hex("000102030405060708090a0b0c0d0e0f");
  const attest::Verifier::Config vc{config.mac_alg, config.scheme,
                                    config.authenticate_requests,
                                    {}};
  attest::ProverDevice bare(config, key, crypto::from_string("overhead-app"));
  attest::Verifier bare_vrf(key, vc, crypto::from_string("overhead-vrf"));
  attest::ProverDevice watched(config, key,
                               crypto::from_string("overhead-app"));
  attest::Verifier watched_vrf(key, vc, crypto::from_string("overhead-vrf"));
  attest::ProverDevice profiled(config, key,
                                crypto::from_string("overhead-app"));
  attest::Verifier profiled_vrf(key, vc,
                                crypto::from_string("overhead-vrf"));
  obs::Registry registry;
  obs::RingRecorder ring(256);
  obs::Observer o;
  o.registry = &registry;
  o.sink = &ring;
  watched.set_observer(o);
  obs::Registry prof_registry;
  obs::RingRecorder prof_ring(256);
  obs::prof::ShardProfile profile;
  obs::Observer po;
  po.registry = &prof_registry;
  po.sink = &prof_ring;
  po.profile = &profile;
  profiled.set_observer(po);

  constexpr std::size_t kBatches = 40;
  constexpr std::size_t kBatchRequests = 50;
  // Warm all paths once before timing.
  for (std::size_t i = 0; i < kBatchRequests; ++i) {
    (void)bare.handle(bare_vrf.make_request());
    (void)watched.handle(watched_vrf.make_request());
    (void)profiled.handle(profiled_vrf.make_request(),
                          obs::RoundContext{obs::prof::make_round_id(0, i),
                                            1});
  }
  std::vector<double> bare_ms(kBatches);
  std::vector<double> observed_ms(kBatches);
  std::vector<double> profiled_ms(kBatches);
  std::uint64_t seq = kBatchRequests;
  for (std::size_t b = 0; b < kBatches; ++b) {
    auto t0 = clock::now();
    for (std::size_t i = 0; i < kBatchRequests; ++i) {
      (void)bare.handle(bare_vrf.make_request());
    }
    auto t1 = clock::now();
    for (std::size_t i = 0; i < kBatchRequests; ++i) {
      (void)watched.handle(watched_vrf.make_request());
    }
    auto t2 = clock::now();
    for (std::size_t i = 0; i < kBatchRequests; ++i) {
      (void)profiled.handle(
          profiled_vrf.make_request(),
          obs::RoundContext{obs::prof::make_round_id(0, seq++), 1});
    }
    auto t3 = clock::now();
    bare_ms[b] = std::chrono::duration<double, std::milli>(t1 - t0).count();
    observed_ms[b] =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    profiled_ms[b] =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
  }
  // Each batch triple ran back to back, so taking the median of per-batch
  // ratios cancels host drift and resists stolen scheduler slices.
  std::vector<double> obs_ratio(kBatches);
  std::vector<double> prof_ratio(kBatches);
  for (std::size_t b = 0; b < kBatches; ++b) {
    obs_ratio[b] = bare_ms[b] <= 0.0 ? 1.0 : observed_ms[b] / bare_ms[b];
    prof_ratio[b] = bare_ms[b] <= 0.0 ? 1.0 : profiled_ms[b] / bare_ms[b];
  }
  std::sort(obs_ratio.begin(), obs_ratio.end());
  std::sort(prof_ratio.begin(), prof_ratio.end());
  std::sort(bare_ms.begin(), bare_ms.end());
  ObsOverhead result;
  result.bare_ms = bare_ms[kBatches / 2] * static_cast<double>(kBatches);
  result.observed_ms = result.bare_ms * obs_ratio[kBatches / 2];
  result.profiled_ms = result.bare_ms * prof_ratio[kBatches / 2];
  return result;
}

}  // namespace

int main() {
  using namespace ratt::cost;  // NOLINT

  const SystemCost base = baseline();
  std::printf(
      "=== Sec. 6.3: overhead of prover-protection mechanisms ===\n\n");
  std::printf(
      "  Baseline (EA-MPU w/ lockdown + K_Attest rules): %u registers, "
      "%u LUTs\n\n",
      base.registers, base.luts);
  std::printf("  %-24s %-12s %-10s %-12s %-10s\n", "mechanism", "+registers",
              "(+%)", "+LUTs", "(+%)");

  struct Row {
    SystemCost sys;
    double paper_reg_pct;
    double paper_lut_pct;
  };
  const Row rows[] = {
      {with_clock_64bit(), 2.98, 1.62},
      {with_clock_32bit(), 2.45, 1.41},
      {with_sw_clock(), 5.76, 3.61},
  };
  bool all_match = true;
  for (const auto& row : rows) {
    const Overhead o = overhead_vs(row.sys, base);
    const bool match = near(o.register_pct, row.paper_reg_pct, 0.01) &&
                       near(o.lut_pct, row.paper_lut_pct, 0.01);
    all_match = all_match && match;
    std::printf("  %-24s %-12u %-10.2f %-12u %-10.2f %s\n",
                row.sys.name.c_str(), o.extra_registers, o.register_pct,
                o.extra_luts, o.lut_pct,
                match ? "(= paper)" : "(MISMATCH vs paper)");
  }

  std::printf(
      "\n=== Clock sizing arithmetic (Sec. 6.3) ===\n\n"
      "  %-34s %-18s %-14s\n",
      "design", "wrap-around", "resolution");
  const struct {
    const char* name;
    unsigned bits;
    std::uint64_t divider;
  } clocks[] = {
      {"64-bit, divider 1", 64, 1},
      {"32-bit, divider 1", 32, 1},
      {"32-bit, divider 2^20", 32, std::uint64_t{1} << 20},
  };
  for (const auto& clk : clocks) {
    const double wrap_s = wraparound_seconds(clk.bits, 24e6, clk.divider);
    const double years = seconds_to_years(wrap_s);
    char wrap[64];
    if (years >= 1.0) {
      std::snprintf(wrap, sizeof(wrap), "%.1f years", years);
    } else {
      std::snprintf(wrap, sizeof(wrap), "%.1f minutes", wrap_s / 60.0);
    }
    std::printf("  %-34s %-18s %.4f ms\n", clk.name, wrap,
                resolution_ms(24e6, clk.divider));
  }
  std::printf(
      "\n  Paper: 64-bit wraps after 24,372.6 years; 32-bit after ~3 "
      "minutes;\n  divided by 2^20 -> ~6 years at '42 ms' resolution "
      "(exact: 43.7 ms).\n");
  std::printf("\n  %s\n", all_match
                              ? "All overhead percentages match Sec. 6.3."
                              : "MISMATCH against Sec. 6.3!");

  // The budget is relative to the bare round cost, and that denominator
  // shrank ~1.5x when hardware SHA dispatch landed (PERFORMANCE.md §5):
  // the same ~0.1 µs/request of absolute hook cost that measured ~3%
  // against the portable kernels now measures ~6-9%. 10% keeps the gate
  // meaningful (a real hook regression still trips it) without failing
  // on the crypto getting faster.
  constexpr double kObsBudgetPct = 10.0;
  const ObsOverhead obs = instrumentation_overhead();
  std::printf(
      "\n=== ratt::obs instrumentation overhead (host wall clock) ===\n\n"
      "  bare prover: %.2f ms for 2000 genuine requests\n"
      "  %-28s %10s %10s\n", obs.bare_ms, "configuration", "ms",
      "overhead");
  std::printf("  %-28s %10.2f %+9.2f%% %s\n", "metrics + tracing",
              obs.observed_ms, obs.observed_pct(),
              obs.observed_pct() < kObsBudgetPct ? "(< 10% budget)"
                                                 : "(OVER 10% BUDGET)");
  std::printf("  %-28s %10.2f %+9.2f%% %s\n",
              "metrics + tracing + profiler", obs.profiled_ms,
              obs.profiled_pct(),
              obs.profiled_pct() < kObsBudgetPct ? "(< 10% budget)"
                                                 : "(OVER 10% BUDGET)");
  const bool obs_ok = obs.observed_pct() < kObsBudgetPct &&
                      obs.profiled_pct() < kObsBudgetPct;
  return all_match && obs_ok ? 0 : 1;
}
