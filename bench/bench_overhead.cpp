// Sec. 6.3 reproduction: overhead of each Adv_roam countermeasure over
// the baseline attestation-capable system, plus the clock wrap-around /
// resolution arithmetic the paper uses to size the counter register.
#include <cmath>
#include <cstdio>

#include "ratt/cost/cost.hpp"

namespace {

bool near(double a, double b, double tol) { return std::fabs(a - b) < tol; }

}  // namespace

int main() {
  using namespace ratt::cost;  // NOLINT

  const SystemCost base = baseline();
  std::printf(
      "=== Sec. 6.3: overhead of prover-protection mechanisms ===\n\n");
  std::printf(
      "  Baseline (EA-MPU w/ lockdown + K_Attest rules): %u registers, "
      "%u LUTs\n\n",
      base.registers, base.luts);
  std::printf("  %-24s %-12s %-10s %-12s %-10s\n", "mechanism", "+registers",
              "(+%)", "+LUTs", "(+%)");

  struct Row {
    SystemCost sys;
    double paper_reg_pct;
    double paper_lut_pct;
  };
  const Row rows[] = {
      {with_clock_64bit(), 2.98, 1.62},
      {with_clock_32bit(), 2.45, 1.41},
      {with_sw_clock(), 5.76, 3.61},
  };
  bool all_match = true;
  for (const auto& row : rows) {
    const Overhead o = overhead_vs(row.sys, base);
    const bool match = near(o.register_pct, row.paper_reg_pct, 0.01) &&
                       near(o.lut_pct, row.paper_lut_pct, 0.01);
    all_match = all_match && match;
    std::printf("  %-24s %-12u %-10.2f %-12u %-10.2f %s\n",
                row.sys.name.c_str(), o.extra_registers, o.register_pct,
                o.extra_luts, o.lut_pct,
                match ? "(= paper)" : "(MISMATCH vs paper)");
  }

  std::printf(
      "\n=== Clock sizing arithmetic (Sec. 6.3) ===\n\n"
      "  %-34s %-18s %-14s\n",
      "design", "wrap-around", "resolution");
  const struct {
    const char* name;
    unsigned bits;
    std::uint64_t divider;
  } clocks[] = {
      {"64-bit, divider 1", 64, 1},
      {"32-bit, divider 1", 32, 1},
      {"32-bit, divider 2^20", 32, std::uint64_t{1} << 20},
  };
  for (const auto& clk : clocks) {
    const double wrap_s = wraparound_seconds(clk.bits, 24e6, clk.divider);
    const double years = seconds_to_years(wrap_s);
    char wrap[64];
    if (years >= 1.0) {
      std::snprintf(wrap, sizeof(wrap), "%.1f years", years);
    } else {
      std::snprintf(wrap, sizeof(wrap), "%.1f minutes", wrap_s / 60.0);
    }
    std::printf("  %-34s %-18s %.4f ms\n", clk.name, wrap,
                resolution_ms(24e6, clk.divider));
  }
  std::printf(
      "\n  Paper: 64-bit wraps after 24,372.6 years; 32-bit after ~3 "
      "minutes;\n  divided by 2^20 -> ~6 years at '42 ms' resolution "
      "(exact: 43.7 ms).\n");
  std::printf("\n  %s\n", all_match
                              ? "All overhead percentages match Sec. 6.3."
                              : "MISMATCH against Sec. 6.3!");
  return all_match ? 0 : 1;
}
