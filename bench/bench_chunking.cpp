// Ablation X4: the uninterruptibility assumption (Sec. 3.1).
//
// "Current low-end device attestation techniques assume that attestation
// runs without interruption. Thus, gratuitous invocation of attestation
// can be detrimental to the execution of prover's main (even critical)
// functions." — this bench quantifies exactly that, then shows what
// chunked (preemptible) measurement buys and what it costs:
//   * miss rate collapses once the chunk fits inside the task period,
//   * total attestation work and energy are unchanged,
//   * and atomicity is lost — the TOCTOU exposure of footnote 1 returns,
//     because measured-early memory can change before the pass ends.
#include <cstdio>
#include <memory>

#include "ratt/sim/dos.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::AttestRequest;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;

std::unique_ptr<ProverDevice> make_prover() {
  ProverConfig config;
  config.scheme = FreshnessScheme::kNone;
  config.authenticate_requests = false;  // worst case: every request runs
  config.measured_bytes = 64 * 1024;     // ~94.6 ms per attestation
  return std::make_unique<ProverDevice>(
      config, crypto::from_hex("00112233445566778899aabbccddeeff"),
      crypto::from_string("chunking-app"));
}

AttestRequest bogus(double) {
  AttestRequest req;
  req.scheme = FreshnessScheme::kNone;
  req.mac_alg = crypto::MacAlgorithm::kHmacSha1;
  return req;
}

}  // namespace

int main() {
  std::printf(
      "=== X4: chunked vs. uninterruptible attestation (Sec. 3.1 "
      "ablation) ===\n"
      "(2 ms control task every 10 ms; 5 bogus attestations/s of ~94.6 ms "
      "each; 5 s horizon)\n\n");
  std::printf("  %-22s %-12s %-12s %-14s %-30s\n", "measurement mode",
              "miss-rate", "attest-ms", "energy(mJ)",
              "TOCTOU window per pass");
  for (const double chunk : {0.0, 50.0, 20.0, 10.0, 4.0, 1.0}) {
    auto prover = make_prover();
    sim::TaskProfile task{10.0, 2.0};
    sim::DosSimulator sim(*prover, task, timing::EnergyModel(),
                          timing::Battery());
    const sim::DosReport report = sim.run_preemptive(
        sim::uniform_arrivals(5.0, 5000.0), bogus, 5000.0, chunk);
    char mode[32];
    if (chunk <= 0.0) {
      std::snprintf(mode, sizeof(mode), "uninterruptible");
    } else {
      std::snprintf(mode, sizeof(mode), "chunked %.0f ms", chunk);
    }
    char toctou[48];
    if (chunk <= 0.0) {
      std::snprintf(toctou, sizeof(toctou), "none (atomic)");
    } else {
      // A pass of ~94.6 ms with preemption every chunk can be stretched
      // across many task slots; everything measured before a preemption
      // is stale by the time the pass ends.
      std::snprintf(toctou, sizeof(toctou), "up to the full pass (>%.0f ms)",
                    94.6 - chunk);
    }
    std::printf("  %-22s %-12.3f %-12.1f %-14.3f %-30s\n", mode,
                report.miss_rate(), report.attest_busy_ms, report.energy_mj,
                toctou);
  }
  std::printf(
      "\n  Chunking rescues the control task (miss rate -> 0 once chunk + "
      "task <= period)\n  without reducing the stolen compute/energy — and "
      "it surrenders the atomic-\n  measurement property, re-opening the "
      "TOCTOU attacks of footnote 1 [16]. This is\n  why the paper treats "
      "request filtering (Sec. 4) as the primary defense rather\n  than "
      "making attestation preemptible.\n");
  return 0;
}
