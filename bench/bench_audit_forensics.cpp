// Extension experiment X6: after-the-fact detection of the Sec. 5
// counter-rollback attack via the hash-chained audit log.
//
// The paper: "resetting the counter allows Adv_roam to bring the prover
// back to its expected state ... the DoS attack is undetectable after
// the fact." With a protected audit log, the attack still succeeds at
// the protocol level but the evidence survives: the same counter value
// appears accepted twice in a chain the adversary cannot rewrite.
#include <cstdio>
#include <memory>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::AttestRequest;
using attest::AttestStatus;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;

crypto::Bytes key() {
  return crypto::from_hex("606162636465666768696a6b6c6d6e6f");
}

void run(bool with_audit_log) {
  std::printf("--- prover with unprotected counter, audit log %s ---\n",
              with_audit_log ? "ENABLED (EA-MPU-protected)" : "disabled");
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.protect_counter = false;  // the Sec. 5 attack premise
  config.enable_audit_log = with_audit_log;
  config.measured_bytes = 1024;
  ProverDevice prover(config, key(), crypto::from_string("forensics-app"));

  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kCounter;
  Verifier verifier(key(), vc, crypto::from_string("forensics-vrf"));
  verifier.set_reference_memory(prover.reference_memory());

  // Phases I-III of the paper's attack.
  const AttestRequest recorded = verifier.make_request();
  (void)prover.handle(recorded);
  hw::SoftwareComponent malware(prover.mcu(), "malware",
                                prover.surface().malware_region);
  (void)malware.write64(prover.surface().counter_addr,
                        recorded.freshness - 1);
  if (with_audit_log) {
    const auto scrub =
        malware.write64(prover.surface().audit_log_addr, 0);
    std::printf("  malware scrubs the log    -> %s\n",
                hw::to_string(scrub).c_str());
  }
  prover.idle_ms(500.0);
  const auto replayed = prover.handle(recorded);
  std::printf("  replayed attreq(i=%llu)    -> %s (protocol-level DoS %s)\n",
              static_cast<unsigned long long>(recorded.freshness),
              attest::to_string(replayed.status).c_str(),
              replayed.status == AttestStatus::kOk ? "succeeds" : "fails");

  // The after-the-fact audit.
  const AttestRequest probe = verifier.make_request();
  const auto after = prover.handle(probe);
  const bool clean = after.status == AttestStatus::kOk &&
                     verifier.check_response(probe, after.response);
  std::printf("  protocol-level audit      -> %s\n",
              clean ? "clean (the paper's 'undetectable after the fact')"
                    : "anomalous");
  if (with_audit_log) {
    const auto records = prover.audit_log()->records().value();
    const bool chain_ok =
        attest::verify_chain(records, prover.audit_log()->head().value());
    const auto duplicates = attest::duplicate_accepted_freshness(records);
    std::printf("  audit-log chain verifies  -> %s (%zu records)\n",
                chain_ok ? "yes" : "NO", records.size());
    std::printf("  duplicate accepted values -> ");
    if (duplicates.empty()) {
      std::printf("none\n");
    } else {
      for (auto v : duplicates) {
        std::printf("%llu ", static_cast<unsigned long long>(v));
      }
      std::printf("<-- ROLLBACK DETECTED\n");
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "=== X6: forensic detection of the 'undetectable' rollback DoS "
      "===\n\n");
  run(/*with_audit_log=*/false);
  run(/*with_audit_log=*/true);
  std::printf(
      "Without the log the attack leaves no trace, exactly as Sec. 5 "
      "says. With the\nhash-chained, EA-MPU-protected log (1 extra rule + "
      "~0.8 KB RAM for 32 records),\nthe accepted-twice counter value "
      "survives as evidence the adversary cannot erase.\n");
  return 0;
}
