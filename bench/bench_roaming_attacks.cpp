// Sec. 5 reproduction: the roaming adversary's attacks, each run against
// an unprotected prover (must succeed) and an EA-MPU-protected prover
// (must fail). Also reports the paper's stealth observations: counter
// rollback is undetectable after the fact; a reset clock "remains behind".
#include <cstdio>
#include <vector>

#include "ratt/adv/adv_roam.hpp"

int main() {
  using namespace ratt;  // NOLINT
  using adv::RoamAttack;
  using adv::RoamScenarioConfig;
  using attest::ClockDesign;
  using attest::FreshnessScheme;

  std::printf(
      "=== Sec. 5: roaming adversary (Adv_roam) attack suite ===\n"
      "(three-phase attacks: record -> compromise & erase -> replay)\n\n");

  struct Case {
    RoamAttack attack;
    RoamScenarioConfig config;
    const char* note;
  };
  std::vector<Case> cases;
  {
    RoamScenarioConfig counter;
    counter.scheme = FreshnessScheme::kCounter;
    cases.push_back({RoamAttack::kCounterRollback, counter,
                     "counter i -> i-1, replay attreq(i)"});
    cases.push_back({RoamAttack::kKeyExtraction, counter,
                     "read K_Attest, forge fresh authentic requests"});
    RoamScenarioConfig ram_key = counter;
    ram_key.key_in_rom = false;
    cases.push_back({RoamAttack::kKeyOverwrite, ram_key,
                     "overwrite RAM-resident K_Attest"});
    RoamScenarioConfig ts;
    ts.scheme = FreshnessScheme::kTimestamp;
    ts.clock = ClockDesign::kWritable;
    ts.window_ms = 50.0;
    cases.push_back({RoamAttack::kClockReset, ts,
                     "clock -> t_i - delta, replay attreq(t_i)"});
    RoamScenarioConfig sw = ts;
    sw.clock = ClockDesign::kSwClock;
    cases.push_back({RoamAttack::kIdtClobber, sw,
                     "overwrite IDT entry, SW-clock stops"});
    cases.push_back({RoamAttack::kIrqMaskDisable, sw,
                     "mask timer interrupt, SW-clock stops"});
  }

  std::printf("  %-18s %-13s %-13s %-9s %-10s\n", "attack",
              "unprotected", "protected", "stealthy", "clock-trace");
  bool all_as_expected = true;
  for (auto& c : cases) {
    const adv::RoamComparison cmp =
        adv::compare_roam_attack(c.attack, c.config);
    const bool expected = cmp.unprotected.dos_succeeded &&
                          !cmp.protected_.dos_succeeded;
    all_as_expected = all_as_expected && expected;
    std::printf("  %-18s %-13s %-13s %-9s %-10s   %s\n",
                adv::to_string(c.attack).c_str(),
                cmp.unprotected.dos_succeeded ? "DoS succeeds" : "blocked(!)",
                cmp.protected_.dos_succeeded ? "DoS succeeds(!)" : "blocked",
                cmp.unprotected.stealthy ? "yes" : "no",
                cmp.unprotected.stealthy ? "none" : "clock behind",
                c.note);
  }

  // Sec. 3.2 phase II study: transient infection of *measured* memory.
  RoamScenarioConfig infection_config;
  infection_config.scheme = FreshnessScheme::kCounter;
  const adv::TransientInfectionResult infection =
      adv::run_transient_infection(infection_config);
  std::printf(
      "\n  Transient infection of measured memory (Sec. 3.2, phase II):\n"
      "    while resident:  attestation %s the compromise\n"
      "    after self-erase: attestation %s — \"not detectable by "
      "subsequent attestation\"\n",
      infection.detected_while_infected ? "DETECTS" : "misses(!)",
      infection.undetected_after_erase ? "validates cleanly" : "fails(!)");

  std::printf(
      "\n  Paper's Sec. 5 claims:\n"
      "   * every attack defeats the plain counter/timestamp mitigations "
      "(unprotected column),\n"
      "   * EA-MPU protection of K_Attest / counter_R / clock blocks all "
      "of them (protected column),\n"
      "   * counter rollback is undetectable after the fact; clock reset "
      "leaves the clock behind.\n");
  std::printf("\n  %s\n", all_as_expected
                              ? "All attacks behave exactly as the paper "
                                "describes."
                              : "MISMATCH with the paper (see '(!)').");
  const bool infection_ok = infection.detected_while_infected &&
                            infection.undetected_after_erase;
  return (all_as_expected && infection_ok) ? 0 : 1;
}
