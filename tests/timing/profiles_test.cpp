// Device profiles: cross-platform scaling of every timing-derived claim.
#include <gtest/gtest.h>

#include "ratt/timing/profiles.hpp"

namespace ratt::timing {
namespace {

using crypto::MacAlgorithm;

TEST(Profiles, PaperPlatformMatchesTable1) {
  const DeviceProfile peak = siskiyou_peak();
  EXPECT_DOUBLE_EQ(peak.clock_hz, 24e6);
  EXPECT_EQ(peak.ram_bytes, 512u * 1024u);
  const auto model = peak.timing_model();
  EXPECT_NEAR(model.memory_attestation_ms(MacAlgorithm::kHmacSha1,
                                          peak.ram_bytes),
              754.004, 1e-6);
}

TEST(Profiles, Msp430FullRamMacIsCheaperDespiteSlowerClock) {
  // 16 KB at 8 MHz: fewer blocks more than compensate the 3x slower
  // clock — full-RAM attestation is ~71 ms, not 754.
  const DeviceProfile msp = msp430_class();
  const auto model = msp.timing_model();
  const double ms =
      model.memory_attestation_ms(MacAlgorithm::kHmacSha1, msp.ram_bytes);
  EXPECT_NEAR(ms, 3.0 * (0.340 + 256 * 0.092), 1e-6);  // 71.7 ms
  EXPECT_LT(ms, 100.0);
}

TEST(Profiles, CostsScaleInverselyWithClock) {
  const auto peak = siskiyou_peak().timing_model();
  const auto m0 = cortex_m0_class().timing_model();
  // 48 MHz = 2x the reference: everything halves.
  EXPECT_NEAR(m0.request_auth_ms(MacAlgorithm::kHmacSha1) * 2.0,
              peak.request_auth_ms(MacAlgorithm::kHmacSha1), 1e-12);
  EXPECT_NEAR(m0.ecdsa_verify_ms() * 2.0, peak.ecdsa_verify_ms(), 1e-12);
}

TEST(Profiles, AsymmetryHoldsOnEveryPlatform) {
  // The paper's core claim — full-RAM MAC >> request MAC — is platform-
  // independent: verify the ratio stays large across all profiles.
  for (const auto& profile : all_profiles()) {
    const auto model = profile.timing_model();
    const double full = model.memory_attestation_ms(
        MacAlgorithm::kHmacSha1, profile.ram_bytes);
    const double request = model.request_auth_ms(MacAlgorithm::kHmacSha1);
    EXPECT_GT(full / request, 50.0) << profile.name;
  }
}

TEST(Profiles, EnergyModelsScaleWithPower) {
  EXPECT_GT(cortex_m0_class().energy_model().active_mj(100.0),
            msp430_class().energy_model().active_mj(100.0));
}

TEST(Profiles, AllProfilesEnumerated) {
  const auto profiles = all_profiles();
  ASSERT_EQ(profiles.size(), 3u);
  for (const auto& p : profiles) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.clock_hz, 0.0);
    EXPECT_GT(p.ram_bytes, 0u);
  }
}

}  // namespace
}  // namespace ratt::timing
