// Device timing model: reproduces the paper's in-text numbers from the
// Table 1 constants, plus scaling and energy accounting.
#include <gtest/gtest.h>

#include "ratt/timing/timing.hpp"

namespace ratt::timing {
namespace {

using crypto::MacAlgorithm;

TEST(DeviceTimingModel, RequestAuthHmacMatchesSec41) {
  // Sec. 4.1: "a SHA-1-based HMAC can be validated in 0.430 ms" — the
  // constants give 0.340 + 0.092 = 0.432 ms (paper rounds down).
  const DeviceTimingModel model;
  EXPECT_NEAR(model.request_auth_ms(MacAlgorithm::kHmacSha1), 0.432, 1e-9);
}

TEST(DeviceTimingModel, RequestAuthSpeckIsCheapest) {
  // Sec. 4.1: Speck reduces the cost to ~0.015 ms with the key schedule
  // precomputed (we charge the 0.017 ms encrypt figure).
  const DeviceTimingModel model;
  const double speck = model.request_auth_ms(MacAlgorithm::kSpeckCbcMac);
  const double aes = model.request_auth_ms(MacAlgorithm::kAesCbcMac);
  const double hmac = model.request_auth_ms(MacAlgorithm::kHmacSha1);
  EXPECT_NEAR(speck, 0.017, 1e-9);
  EXPECT_NEAR(aes, 0.288, 1e-9);
  EXPECT_LT(speck, aes);
  EXPECT_LT(aes, hmac);
}

TEST(DeviceTimingModel, EcdsaRequestAuthIsItselfDoS) {
  // Sec. 4.1's paradox: authenticating a request with ECC costs ~170 ms —
  // about 400x the HMAC validation and itself a DoS vector.
  const DeviceTimingModel model;
  EXPECT_NEAR(model.ecdsa_verify_ms(), 170.907, 1e-9);
  EXPECT_NEAR(model.ecdsa_sign_ms(), 183.464, 1e-9);
  EXPECT_GT(model.ecdsa_verify_ms() /
                model.request_auth_ms(MacAlgorithm::kHmacSha1),
            300.0);
}

TEST(DeviceTimingModel, FullMemoryMacMatchesSec31) {
  // Sec. 3.1: hashing 512 KB of RAM = (512 KB / 64 B) * 0.092 + 0.340
  // = 754.004 ms. (The paper prints 754.032 via a typo'd formula.)
  const DeviceTimingModel model;
  const double ms =
      model.memory_attestation_ms(MacAlgorithm::kHmacSha1, 512 * 1024);
  EXPECT_NEAR(ms, 754.004, 1e-6);
}

TEST(DeviceTimingModel, MemoryMacScalesLinearly) {
  const DeviceTimingModel model;
  const double m64k =
      model.memory_attestation_ms(MacAlgorithm::kHmacSha1, 64 * 1024);
  const double m128k =
      model.memory_attestation_ms(MacAlgorithm::kHmacSha1, 128 * 1024);
  // Subtracting the fixed cost, doubling the memory doubles the time.
  EXPECT_NEAR((m128k - Table1::kHmacFixMs) / (m64k - Table1::kHmacFixMs),
              2.0, 1e-9);
}

TEST(DeviceTimingModel, PartialBlocksRoundUp) {
  const DeviceTimingModel model;
  EXPECT_DOUBLE_EQ(model.mac_ms(MacAlgorithm::kHmacSha1, 1),
                   model.mac_ms(MacAlgorithm::kHmacSha1, 64));
  EXPECT_DOUBLE_EQ(model.mac_ms(MacAlgorithm::kSpeckCbcMac, 9),
                   model.mac_ms(MacAlgorithm::kSpeckCbcMac, 16));
  EXPECT_LT(model.mac_ms(MacAlgorithm::kSpeckCbcMac, 8),
            model.mac_ms(MacAlgorithm::kSpeckCbcMac, 9));
}

TEST(DeviceTimingModel, SetupTogglesKeyExpansion) {
  const DeviceTimingModel model;
  const double with = model.mac_ms(MacAlgorithm::kAesCbcMac, 16, true);
  const double without = model.mac_ms(MacAlgorithm::kAesCbcMac, 16, false);
  EXPECT_NEAR(with - without, Table1::kAesKeyExpMs, 1e-12);
}

TEST(DeviceTimingModel, TimesScaleInverselyWithClock) {
  const DeviceTimingModel fast(48e6);  // 2x the reference clock
  const DeviceTimingModel ref;
  EXPECT_NEAR(fast.ecdsa_verify_ms() * 2.0, ref.ecdsa_verify_ms(), 1e-9);
  EXPECT_NEAR(fast.request_auth_ms(MacAlgorithm::kHmacSha1) * 2.0,
              ref.request_auth_ms(MacAlgorithm::kHmacSha1), 1e-9);
}

TEST(DeviceTimingModel, CyclesConversion) {
  const DeviceTimingModel model;  // 24 MHz
  EXPECT_EQ(model.cycles(1.0), 24'000u);
  EXPECT_EQ(model.cycles(0.0), 0u);
}

TEST(DeviceTimingModel, RejectsBadClock) {
  EXPECT_THROW(DeviceTimingModel(0.0), std::invalid_argument);
  EXPECT_THROW(DeviceTimingModel(-1.0), std::invalid_argument);
}

TEST(EnergyModel, ActiveEnergyAccounting) {
  const EnergyModel energy(10.0, 0.01);  // 10 mW active
  EXPECT_NEAR(energy.active_mj(1000.0), 10.0, 1e-12);  // 1 s -> 10 mJ
  EXPECT_NEAR(energy.sleep_mj(1000.0), 0.01, 1e-12);
  EXPECT_GT(energy.active_mj(754.0), 700.0 * energy.sleep_mj(754.0));
}

TEST(Battery, DrainsAndClamps) {
  Battery battery(100.0);
  EXPECT_DOUBLE_EQ(battery.remaining_fraction(), 1.0);
  battery.drain(30.0);
  EXPECT_DOUBLE_EQ(battery.remaining_mj(), 70.0);
  EXPECT_FALSE(battery.depleted());
  battery.drain(100.0);
  EXPECT_DOUBLE_EQ(battery.remaining_mj(), 0.0);
  EXPECT_TRUE(battery.depleted());
}

TEST(Battery, DoSDepletesRealisticBattery) {
  // One full 512 KB attestation at 7.2 mW costs ~5.4 mJ; a CR2032 holds
  // ~2.43e6 mJ, so ~450k gratuitous attestations kill the battery —
  // about 4 days at one request per second.
  const DeviceTimingModel model;
  const EnergyModel energy;
  Battery battery;
  const double per_attest_mj = energy.active_mj(
      model.memory_attestation_ms(crypto::MacAlgorithm::kHmacSha1,
                                  512 * 1024));
  const double attests_to_kill = battery.capacity_mj() / per_attest_mj;
  EXPECT_GT(attests_to_kill, 1e5);
  EXPECT_LT(attests_to_kill, 1e6);
}

}  // namespace
}  // namespace ratt::timing
