// IoT fleet (future-work item 1): multi-device attestation, per-device
// keys, and cross-device attack containment.
#include <gtest/gtest.h>

#include "ratt/sim/swarm.hpp"

namespace ratt::sim {
namespace {

using attest::FreshnessScheme;

SwarmConfig small_fleet() {
  SwarmConfig config;
  config.device_count = 5;
  config.prover.scheme = FreshnessScheme::kCounter;
  config.prover.measured_bytes = 512;
  config.attest_period_ms = 100.0;
  return config;
}

TEST(Swarm, AllDevicesAttestOnSchedule) {
  Swarm swarm(small_fleet(), crypto::from_string("fleet-seed"));
  const SwarmReport report = swarm.run(1000.0);
  ASSERT_EQ(report.devices.size(), 5u);
  for (const auto& d : report.devices) {
    // Stagger shifts later devices' schedules: device i's rounds land on
    // fmod(37*i, period) + k*period, so every device fits
    // floor((horizon - offset)/period) >= 8 rounds inside the horizon.
    EXPECT_GE(d.stats.requests_sent, 8u) << "device " << d.device;
    EXPECT_EQ(d.stats.responses_valid, d.stats.requests_sent)
        << "device " << d.device;
    EXPECT_EQ(d.stats.prover_rejects, 0u);
    EXPECT_GT(d.attest_device_ms, 0.0);
  }
  EXPECT_EQ(report.total_valid(), report.total_sent());
}

TEST(Swarm, PerDeviceKeysAreDistinct) {
  Swarm swarm(small_fleet(), crypto::from_string("fleet-seed"));
  for (std::size_t i = 0; i < swarm.size(); ++i) {
    for (std::size_t j = i + 1; j < swarm.size(); ++j) {
      EXPECT_NE(swarm.device_key(i), swarm.device_key(j));
    }
  }
}

TEST(Swarm, DeterministicAcrossRuns) {
  Swarm a(small_fleet(), crypto::from_string("fleet-seed"));
  Swarm b(small_fleet(), crypto::from_string("fleet-seed"));
  EXPECT_EQ(a.device_key(0), b.device_key(0));
  EXPECT_EQ(a.device_key(4), b.device_key(4));
  Swarm c(small_fleet(), crypto::from_string("other-seed"));
  EXPECT_NE(a.device_key(0), c.device_key(0));
}

TEST(Swarm, CrossDeviceReplayFailsAuthentication) {
  // A request recorded on device 0's link replayed against device 1:
  // wrong K_Attest, rejected at the MAC check — compromise containment.
  Swarm swarm(small_fleet(), crypto::from_string("fleet-seed"));
  RecordingTap tap;
  swarm.channel(0).set_tap(&tap);
  swarm.session(0).send_request();
  swarm.queue().run_all();
  ASSERT_EQ(tap.recorded_to_prover().size(), 1u);

  const auto before = swarm.prover(1).anchor().attestations_performed();
  swarm.channel(1).inject_to_prover(tap.recorded_to_prover()[0].payload,
                                    1.0);
  swarm.queue().run_all();
  EXPECT_EQ(swarm.prover(1).anchor().attestations_performed(), before);
  EXPECT_EQ(swarm.session(1).stats().prover_rejects, 1u);
}

TEST(Swarm, FloodOnOneDeviceDoesNotAffectOthers) {
  // Replay-flood device 2's link; devices 0/1/3/4 are unaffected and
  // device 2 (counter scheme) rejects everything cheaply.
  Swarm swarm(small_fleet(), crypto::from_string("fleet-seed"));
  RecordingTap tap;
  swarm.channel(2).set_tap(&tap);
  swarm.session(2).send_request();
  swarm.queue().run_all();
  ASSERT_FALSE(tap.recorded_to_prover().empty());
  const crypto::Bytes recorded = tap.recorded_to_prover()[0].payload;
  for (int i = 0; i < 50; ++i) {
    swarm.channel(2).inject_to_prover(recorded, 10.0 + i);
  }
  const SwarmReport report = swarm.run(1000.0);
  EXPECT_GE(report.devices[2].stats.prover_rejects, 50u);
  for (std::size_t i : {0u, 1u, 3u, 4u}) {
    EXPECT_EQ(report.devices[i].stats.responses_valid,
              report.devices[i].stats.requests_sent)
        << "device " << i;
  }
}

TEST(Swarm, UnprotectedFleetBleedsTime) {
  // The aggregate DoS picture: an unauthenticated fleet performs every
  // injected bogus attestation; the hardened fleet does not.
  SwarmConfig open_config = small_fleet();
  open_config.prover.scheme = FreshnessScheme::kNone;
  open_config.prover.authenticate_requests = false;
  open_config.prover.measured_bytes = 16 * 1024;
  open_config.attest_period_ms = 10'000.0;  // no genuine rounds: isolate
                                            // the attacker-extracted time
  SwarmConfig hard_config = small_fleet();
  hard_config.prover.measured_bytes = 16 * 1024;
  hard_config.attest_period_ms = 10'000.0;

  for (const bool hardened : {false, true}) {
    Swarm swarm(hardened ? hard_config : open_config,
                crypto::from_string("fleet-seed"));
    // Attacker floods every device with forged requests.
    for (std::size_t i = 0; i < swarm.size(); ++i) {
      attest::AttestRequest forged;
      forged.scheme = hardened ? FreshnessScheme::kCounter
                               : FreshnessScheme::kNone;
      forged.mac_alg = crypto::MacAlgorithm::kHmacSha1;
      forged.freshness = 1;
      forged.mac = crypto::Bytes(20, 0);
      for (int k = 0; k < 10; ++k) {
        swarm.channel(i).inject_to_prover(forged.to_bytes(),
                                          5.0 + 20.0 * k);
      }
    }
    const SwarmReport report = swarm.run(500.0);
    if (hardened) {
      // 50 forged requests x 0.432 ms MAC checks.
      EXPECT_LT(report.total_attest_ms(), 100.0);
    } else {
      // 50 forged requests x ~24 ms (16 KB at 24 MHz).
      EXPECT_GT(report.total_attest_ms(), 800.0);
    }
  }
}

}  // namespace
}  // namespace ratt::sim
