// Structure-of-arrays shard blocks: the ComponentSlab/DeviceArena
// storage plan behind SwarmConfig::soa_blocks. The slab must keep
// constructed elements at stable addresses while growing, destroy them
// in reverse order, and report its chunk bytes; at the swarm level the
// SoA toggle must be invisible in reports and merged traces while the
// resident report stays an honest audit of lazy materialization.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "ratt/sim/shard_block.hpp"
#include "ratt/sim/swarm.hpp"

namespace ratt::sim {
namespace {

using attest::FreshnessScheme;

struct Probe {
  static std::vector<int>* destroyed;
  int id;
  explicit Probe(int id_in) : id(id_in) {}
  ~Probe() {
    if (destroyed != nullptr) destroyed->push_back(id);
  }
};
std::vector<int>* Probe::destroyed = nullptr;

TEST(ComponentSlab, PointersStableAcrossChunkGrowth) {
  ComponentSlab<Probe> slab;
  std::vector<Probe*> ptrs;
  const int n = static_cast<int>(ComponentSlab<Probe>::kChunk * 3 + 5);
  for (int i = 0; i < n; ++i) {
    ptrs.push_back(slab.emplace(i));
  }
  EXPECT_EQ(slab.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(ptrs[i]->id, i) << "element moved or corrupted at " << i;
  }
  // Four chunks were needed for 3*kChunk+5 elements.
  EXPECT_EQ(slab.slab_bytes(),
            4 * sizeof(Probe) * ComponentSlab<Probe>::kChunk);
}

TEST(ComponentSlab, DestroysInReverseConstructionOrder) {
  std::vector<int> order;
  Probe::destroyed = &order;
  {
    ComponentSlab<Probe> slab;
    for (int i = 0; i < 10; ++i) slab.emplace(i);
  }
  Probe::destroyed = nullptr;
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], 9 - i);
  }
}

SwarmConfig fleet(std::size_t devices) {
  SwarmConfig config;
  config.device_count = devices;
  config.shard_count = 4;
  config.prover.scheme = FreshnessScheme::kCounter;
  config.prover.authenticate_requests = true;
  config.prover.measured_bytes = 256;
  config.attest_period_ms = 100.0;
  config.stagger_ms = 7.0;
  return config;
}

SwarmReport run_fleet(const SwarmConfig& config, std::string* jsonl) {
  Swarm swarm(config, crypto::from_string("soa-seed"));
  obs::Registry registry;
  swarm.attach_sharded_observer(&registry);
  const SwarmReport report = swarm.run_parallel(400.0, 2);
  if (jsonl != nullptr) {
    std::ostringstream out;
    obs::write_jsonl(out, swarm.merged_trace());
    *jsonl = out.str();
  }
  return report;
}

TEST(ShardBlock, SoaToggleInvisibleInReportsAndTraces) {
  SwarmConfig soa = fleet(8);
  soa.soa_blocks = true;
  SwarmConfig heap = fleet(8);
  heap.soa_blocks = false;
  std::string soa_jsonl;
  std::string heap_jsonl;
  const SwarmReport soa_report = run_fleet(soa, &soa_jsonl);
  const SwarmReport heap_report = run_fleet(heap, &heap_jsonl);
  EXPECT_EQ(soa_report, heap_report);
  EXPECT_FALSE(soa_jsonl.empty());
  EXPECT_EQ(soa_jsonl, heap_jsonl);
}

TEST(ShardBlock, MacBatchToggleInvisibleInReportsAndTraces) {
  SwarmConfig batched = fleet(8);
  batched.mac_batch = true;
  SwarmConfig scalar = fleet(8);
  scalar.mac_batch = false;
  std::string batched_jsonl;
  std::string scalar_jsonl;
  const SwarmReport batched_report = run_fleet(batched, &batched_jsonl);
  const SwarmReport scalar_report = run_fleet(scalar, &scalar_jsonl);
  EXPECT_EQ(batched_report, scalar_report);
  EXPECT_FALSE(batched_jsonl.empty());
  EXPECT_EQ(batched_jsonl, scalar_jsonl);
}

TEST(ShardBlock, ResidentReportAuditsLazyMaterialization) {
  for (const bool soa : {true, false}) {
    SwarmConfig config = fleet(16);
    config.soa_blocks = soa;
    Swarm swarm(config, crypto::from_string("soa-seed"));
    // Nothing materialized: the fleet costs nothing yet.
    Swarm::ResidentReport empty = swarm.resident();
    EXPECT_EQ(empty.devices, 0u) << "soa=" << soa;
    EXPECT_EQ(empty.total_bytes(), 0u) << "soa=" << soa;
    // Touch three devices; only they may appear in the report.
    swarm.prover(0);
    swarm.prover(5);
    swarm.prover(11);
    Swarm::ResidentReport three = swarm.resident();
    EXPECT_EQ(three.devices, 3u) << "soa=" << soa;
    EXPECT_GT(three.arena_bytes, 0u) << "soa=" << soa;
    EXPECT_GT(three.bus_bytes, 0u) << "soa=" << soa;
    EXPECT_GT(three.table_bytes, 0u) << "soa=" << soa;
    // Re-touching a materialized device is free.
    swarm.prover(5);
    Swarm::ResidentReport retouch = swarm.resident();
    EXPECT_EQ(retouch.devices, 3u) << "soa=" << soa;
    EXPECT_EQ(retouch.total_bytes(), three.total_bytes()) << "soa=" << soa;
    // Materializing the rest grows the report device by device.
    for (std::size_t i = 0; i < swarm.size(); ++i) swarm.prover(i);
    Swarm::ResidentReport full = swarm.resident();
    EXPECT_EQ(full.devices, 16u) << "soa=" << soa;
    EXPECT_GT(full.total_bytes(), three.total_bytes()) << "soa=" << soa;
    EXPECT_GT(full.per_device_bytes(), 0.0) << "soa=" << soa;
  }
}

TEST(ShardBlock, SharedImageFleetStaysUnderFootprintBudget) {
  // The ISSUE gate, scaled down: a shared-image fleet (the bench
  // configuration) must materialize at <= 16 KB per device, with the
  // template's boot pages counted once in shared_bytes rather than once
  // per device. 64 devices per shard fills the component chunks exactly,
  // so the slab granularity doesn't distort the per-device figure.
  SwarmConfig config = fleet(256);
  config.share_app_image = true;
  config.prover.measured_bytes = 64;
  Swarm swarm(config, crypto::from_string("soa-seed"));
  for (std::size_t i = 0; i < swarm.size(); ++i) swarm.prover(i);
  const Swarm::ResidentReport r = swarm.resident();
  EXPECT_EQ(r.devices, 256u);
  EXPECT_GT(r.shared_bytes, 0u);
  EXPECT_LE(r.per_device_bytes(), 16.0 * 1024.0);
}

TEST(ShardBlock, ReliableAndIncrementalAreMutuallyExclusive) {
  // Satellite regression: the retransmitter owns reliable round state
  // and the incremental path owns its own — combining them silently
  // produced wire-level divergence, so the ctor now refuses, in both
  // flag orders.
  SwarmConfig config = fleet(4);
  config.reliable = true;
  config.prover.enable_incremental = true;
  EXPECT_THROW(Swarm(config, crypto::from_string("soa-seed")),
               std::invalid_argument);
  // Either flag alone is fine.
  SwarmConfig only_reliable = fleet(4);
  only_reliable.reliable = true;
  EXPECT_NO_THROW(Swarm(only_reliable, crypto::from_string("soa-seed")));
  SwarmConfig only_incremental = fleet(4);
  only_incremental.prover.enable_incremental = true;
  EXPECT_NO_THROW(Swarm(only_incremental, crypto::from_string("soa-seed")));
}

}  // namespace
}  // namespace ratt::sim
