// Channel-integrated protocol runs: honest operation and wire attacks
// through the AttestationSession driver.
#include <gtest/gtest.h>

#include "ratt/sim/session.hpp"

namespace ratt::sim {
namespace {

using attest::ClockDesign;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;

crypto::Bytes key() {
  return crypto::from_hex("909192939495969798999a9b9c9d9e9f");
}

class SessionFixture : public ::testing::Test {
 protected:
  SessionFixture() {
    ProverConfig config;
    config.scheme = FreshnessScheme::kCounter;
    config.measured_bytes = 1024;
    prover_ = std::make_unique<ProverDevice>(
        config, key(), crypto::from_string("session-app"));

    Verifier::Config vc;
    vc.scheme = FreshnessScheme::kCounter;
    verifier_ = std::make_unique<Verifier>(key(), vc,
                                           crypto::from_string("session-v"));
    verifier_->set_reference_memory(prover_->reference_memory());

    channel_ = std::make_unique<Channel>(queue_, /*latency_ms=*/2.0);
    session_ = std::make_unique<AttestationSession>(queue_, *channel_,
                                                    *prover_, *verifier_);
  }

  EventQueue queue_;
  std::unique_ptr<ProverDevice> prover_;
  std::unique_ptr<Verifier> verifier_;
  std::unique_ptr<Channel> channel_;
  std::unique_ptr<AttestationSession> session_;
};

TEST_F(SessionFixture, PeriodicRoundsAllValidate) {
  session_->schedule_rounds(100.0, 1000.0);
  queue_.run_all();
  const auto& stats = session_->stats();
  EXPECT_EQ(stats.requests_sent, 10u);
  EXPECT_EQ(stats.requests_delivered, 10u);
  EXPECT_EQ(stats.responses_valid, 10u);
  EXPECT_EQ(stats.responses_invalid, 0u);
  EXPECT_EQ(stats.prover_rejects, 0u);
  EXPECT_EQ(prover_->anchor().attestations_performed(), 10u);
}

TEST_F(SessionFixture, DeviceTimeTracksSimulationTime) {
  session_->schedule_rounds(100.0, 500.0);
  queue_.run_all();
  // The prover's clock advanced roughly to the simulation horizon (plus
  // device compute time).
  EXPECT_GE(prover_->mcu().now_ms(), 500.0);
  EXPECT_LT(prover_->mcu().now_ms(), 600.0);
}

TEST_F(SessionFixture, AdversaryDropsRequests) {
  RecordingTap tap;
  int seen = 0;
  tap.set_to_prover_script([&seen](const TappedMessage&) {
    // Drop every other request (ids are shared across directions, so
    // count to-prover messages explicitly).
    ChannelTap::Disposition d;
    d.deliver = (seen++ % 2) == 0;
    return d;
  });
  channel_->set_tap(&tap);
  session_->schedule_rounds(100.0, 1000.0);
  queue_.run_all();
  const auto& stats = session_->stats();
  EXPECT_EQ(stats.requests_sent, 10u);
  EXPECT_LT(stats.requests_delivered, 10u);
  // Dropped requests simply never complete; delivered ones validate.
  EXPECT_EQ(stats.responses_valid, stats.requests_delivered);
}

TEST_F(SessionFixture, AdversaryReplaysViaInjection) {
  RecordingTap tap;
  channel_->set_tap(&tap);
  session_->schedule_rounds(100.0, 300.0);
  queue_.run_all();
  ASSERT_GE(tap.recorded_to_prover().size(), 1u);

  // Replay the first recorded request; the prover rejects it.
  const auto before = prover_->anchor().attestations_performed();
  channel_->inject_to_prover(tap.recorded_to_prover()[0].payload, 10.0);
  queue_.run_all();
  EXPECT_EQ(prover_->anchor().attestations_performed(), before);
  EXPECT_EQ(session_->stats().prover_rejects, 1u);
}

TEST_F(SessionFixture, AdversaryInjectsGarbage) {
  session_->schedule_rounds(100.0, 200.0);
  channel_->inject_to_prover(crypto::from_string("not a request"), 50.0);
  queue_.run_all();
  // Garbage is dropped at parse; honest rounds unaffected.
  EXPECT_EQ(session_->stats().responses_valid, 2u);
}

TEST_F(SessionFixture, DelayedResponseStillValidates) {
  RecordingTap tap;
  tap.set_to_verifier_script([](const TappedMessage&) {
    ChannelTap::Disposition d;
    d.extra_delay_ms = 500.0;  // slow the response
    return d;
  });
  channel_->set_tap(&tap);
  session_->send_request();
  queue_.run_all();
  EXPECT_EQ(session_->stats().responses_valid, 1u);
}

TEST_F(SessionFixture, TimeoutsDetectDroppedRequests) {
  RecordingTap tap;
  tap.set_to_prover_script([](const TappedMessage&) {
    ChannelTap::Disposition d;
    d.deliver = false;
    return d;
  });
  channel_->set_tap(&tap);
  session_->send_request();
  session_->send_request();
  queue_.run_all();
  // Nothing came back; before the timeout nothing is missing yet.
  EXPECT_EQ(session_->check_timeouts(1000.0), 0u);
  queue_.schedule_in(2000.0, [] {});
  queue_.run_all();
  EXPECT_EQ(session_->check_timeouts(1000.0), 2u);
  EXPECT_EQ(session_->stats().responses_missing, 2u);
  // Idempotent: already-expired requests are gone.
  EXPECT_EQ(session_->check_timeouts(1000.0), 0u);
}

TEST_F(SessionFixture, TimeoutsSpareInFlightRequests) {
  session_->send_request();
  EXPECT_EQ(session_->check_timeouts(1000.0), 0u);
  queue_.run_all();  // response arrives normally
  EXPECT_EQ(session_->stats().responses_valid, 1u);
  queue_.schedule_in(5000.0, [] {});
  queue_.run_all();
  EXPECT_EQ(session_->check_timeouts(1000.0), 0u);  // nothing pending
  EXPECT_EQ(session_->stats().responses_missing, 0u);
}

}  // namespace
}  // namespace ratt::sim
