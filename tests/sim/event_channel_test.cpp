// Discrete-event queue and Dolev-Yao channel.
#include <gtest/gtest.h>

#include <stdexcept>

#include "ratt/sim/channel.hpp"
#include "ratt/sim/event.hpp"

namespace ratt::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now_ms(), 3.0);
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(5.0, [&] {
    q.schedule_in(2.0, [&] { fired_at = q.now_ms(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  q.schedule_at(3.0, [&] { ++count; });
  q.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(q.now_ms(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, CascadeGuardReportsLeftover) {
  EventQueue q;
  std::function<void()> rearm = [&] { q.schedule_in(1.0, rearm); };
  q.schedule_in(1.0, rearm);
  // The runaway guard stops after the budget and reports the stranded
  // backlog instead of throwing it away.
  EXPECT_EQ(q.run_all(100), 1u);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now_ms(), 100.0);
}

TEST(EventQueue, ThrowingActionLeavesQueueConsistent) {
  // run_next commits queue state (event popped, clock advanced, gauges
  // published) before invoking the action, so a throwing action cannot
  // leave the event half-run or the clock behind.
  EventQueue q;
  obs::Registry registry;
  q.set_observer(&registry);
  std::vector<int> ran;
  q.schedule_at(1.0, [] { throw std::runtime_error("boom"); });
  q.schedule_at(2.0, [&] { ran.push_back(2); });
  EXPECT_THROW(q.run_next(), std::runtime_error);
  // The throwing event is gone and time moved to it.
  EXPECT_DOUBLE_EQ(q.now_ms(), 1.0);
  EXPECT_EQ(q.pending(), 1u);
  const obs::Gauge* backlog = registry.find_gauge("queue.backlog");
  ASSERT_NE(backlog, nullptr);
  EXPECT_DOUBLE_EQ(backlog->value(), 1.0);  // published pre-action
  // The queue keeps running normally afterwards.
  EXPECT_TRUE(q.run_next());
  EXPECT_EQ(ran, (std::vector<int>{2}));
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunAllReturnsZeroWhenDrained) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  EXPECT_EQ(q.run_all(), 0u);
  EXPECT_EQ(count, 2);
}

TEST(Channel, DeliversWithLatency) {
  EventQueue q;
  Channel ch(q, 2.0);
  std::vector<double> deliveries;
  ch.set_prover_sink([&](const Bytes&) { deliveries.push_back(q.now_ms()); });
  ch.verifier_send(Bytes{1, 2, 3});
  q.run_all();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(deliveries[0], 2.0);
  EXPECT_EQ(ch.messages_to_prover(), 1u);
}

TEST(Channel, TapObservesAndRecords) {
  EventQueue q;
  Channel ch(q, 1.0);
  RecordingTap tap;
  ch.set_tap(&tap);
  int delivered = 0;
  ch.set_prover_sink([&](const Bytes&) { ++delivered; });
  ch.verifier_send(Bytes{0xaa});
  ch.verifier_send(Bytes{0xbb});
  q.run_all();
  EXPECT_EQ(delivered, 2);
  ASSERT_EQ(tap.recorded_to_prover().size(), 2u);
  EXPECT_EQ(tap.recorded_to_prover()[0].payload, Bytes{0xaa});
  EXPECT_EQ(tap.recorded_to_prover()[1].id, 1u);
}

TEST(Channel, TapCanDropMessages) {
  EventQueue q;
  Channel ch(q, 1.0);
  RecordingTap tap;
  tap.set_to_prover_script([](const TappedMessage&) {
    ChannelTap::Disposition d;
    d.deliver = false;
    return d;
  });
  ch.set_tap(&tap);
  int delivered = 0;
  ch.set_prover_sink([&](const Bytes&) { ++delivered; });
  ch.verifier_send(Bytes{0xaa});
  q.run_all();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(tap.recorded_to_prover().size(), 1u);  // still observed
}

TEST(Channel, TapCanDelayMessages) {
  EventQueue q;
  Channel ch(q, 1.0);
  RecordingTap tap;
  tap.set_to_prover_script([](const TappedMessage&) {
    ChannelTap::Disposition d;
    d.extra_delay_ms = 10.0;
    return d;
  });
  ch.set_tap(&tap);
  double delivered_at = -1.0;
  ch.set_prover_sink([&](const Bytes&) { delivered_at = q.now_ms(); });
  ch.verifier_send(Bytes{0xaa});
  q.run_all();
  EXPECT_DOUBLE_EQ(delivered_at, 11.0);
}

TEST(Channel, InjectionBypassesTap) {
  EventQueue q;
  Channel ch(q, 1.0);
  RecordingTap tap;
  ch.set_tap(&tap);
  Bytes received;
  ch.set_prover_sink([&](const Bytes& b) { received = b; });
  ch.inject_to_prover(Bytes{0x66}, 0.5);
  q.run_all();
  EXPECT_EQ(received, Bytes{0x66});
  EXPECT_TRUE(tap.recorded_to_prover().empty());  // adversary's own traffic
}

TEST(Channel, ReplayViaRecordAndInject) {
  // The canonical Adv_ext flow: observe a genuine message, then inject a
  // copy later.
  EventQueue q;
  Channel ch(q, 1.0);
  RecordingTap tap;
  ch.set_tap(&tap);
  std::vector<Bytes> prover_got;
  ch.set_prover_sink([&](const Bytes& b) { prover_got.push_back(b); });
  ch.verifier_send(Bytes{0x01, 0x02});
  q.run_all();
  ASSERT_EQ(tap.recorded_to_prover().size(), 1u);
  ch.inject_to_prover(tap.recorded_to_prover()[0].payload, 100.0);
  q.run_all();
  ASSERT_EQ(prover_got.size(), 2u);
  EXPECT_EQ(prover_got[0], prover_got[1]);
}

TEST(Channel, ProverToVerifierDirection) {
  EventQueue q;
  Channel ch(q, 1.0);
  RecordingTap tap;
  ch.set_tap(&tap);
  int got = 0;
  ch.set_verifier_sink([&](const Bytes&) { ++got; });
  ch.prover_send(Bytes{0x11});
  q.run_all();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(tap.recorded_to_verifier().size(), 1u);
}

TEST(Channel, InFlightDeliveryKeepsItsSinkAcrossReset) {
  // Regression: deliver() used to capture the sink member by reference,
  // so resetting the sink (or destroying the channel) between send and
  // delivery made the queued event call through a dangling/empty
  // std::function. The event must own a copy of the sink as it was at
  // send time.
  EventQueue q;
  Channel ch(q, 1.0);
  int old_sink_hits = 0;
  ch.set_prover_sink([&](const Bytes&) { ++old_sink_hits; });
  ch.verifier_send(Bytes{0x01});
  int new_sink_hits = 0;
  ch.set_prover_sink([&](const Bytes&) { ++new_sink_hits; });
  q.run_all();
  EXPECT_EQ(old_sink_hits, 1);  // the in-flight message uses the old sink
  EXPECT_EQ(new_sink_hits, 0);
}

TEST(Channel, InFlightDeliverySurvivesChannelDestruction) {
  // Same dangling-capture regression, harder variant: the channel object
  // dies while its delivery event is still queued. The event's owned
  // sink copy must keep the delivery safe.
  EventQueue q;
  int delivered = 0;
  {
    Channel ch(q, 1.0);
    ch.set_prover_sink([&](const Bytes&) { ++delivered; });
    ch.verifier_send(Bytes{0x2a});
  }
  q.run_all();
  EXPECT_EQ(delivered, 1);
}

TEST(Channel, NegativeTapDelayIsClampedNotThrown) {
  // Regression: a tap returning extra_delay_ms < -latency used to make
  // the channel schedule into the past, which the queue rejects with
  // std::invalid_argument. Negative total delays now clamp to "now".
  EventQueue q;
  q.schedule_at(50.0, [] {});
  q.run_all();  // advance the clock so the past exists
  Channel ch(q, 1.0);
  RecordingTap tap;
  tap.set_to_prover_script([](const TappedMessage&) {
    ChannelTap::Disposition d;
    d.extra_delay_ms = -100.0;
    return d;
  });
  ch.set_tap(&tap);
  double delivered_at = -1.0;
  ch.set_prover_sink([&](const Bytes&) { delivered_at = q.now_ms(); });
  ch.verifier_send(Bytes{0x01});
  q.run_all();
  EXPECT_DOUBLE_EQ(delivered_at, 50.0);  // clamped to send time
}

TEST(Channel, DuplicateCopiesEachCountAsDeliveries) {
  // messages_to_* counts deliveries scheduled, not sends: a duplicated
  // message contributes one per copy, each at its own arrival time.
  EventQueue q;
  Channel ch(q, 1.0);
  RecordingTap tap;
  tap.set_to_prover_script([](const TappedMessage&) {
    ChannelTap::Disposition d;
    d.duplicate_delays_ms = {5.0, 9.0};
    return d;
  });
  ch.set_tap(&tap);
  std::vector<double> arrivals;
  ch.set_prover_sink([&](const Bytes&) { arrivals.push_back(q.now_ms()); });
  ch.verifier_send(Bytes{0x07});
  q.run_all();
  EXPECT_EQ(arrivals, (std::vector<double>{1.0, 6.0, 10.0}));
  EXPECT_EQ(ch.messages_to_prover(), 3u);
}

TEST(Channel, MutatedPayloadReplacesEveryCopy) {
  EventQueue q;
  Channel ch(q, 1.0);
  RecordingTap tap;
  tap.set_to_prover_script([](const TappedMessage&) {
    ChannelTap::Disposition d;
    d.mutated = Bytes{0xee};
    d.duplicate_delays_ms = {3.0};
    return d;
  });
  ch.set_tap(&tap);
  std::vector<Bytes> got;
  ch.set_prover_sink([&](const Bytes& b) { got.push_back(b); });
  ch.verifier_send(Bytes{0x01, 0x02});
  q.run_all();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], Bytes{0xee});  // corruption applies to the original...
  EXPECT_EQ(got[1], Bytes{0xee});  // ...and to the duplicate copy
}

}  // namespace
}  // namespace ratt::sim
