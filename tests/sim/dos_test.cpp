// DoS impact simulator: request floods steal task slots and battery.
#include <gtest/gtest.h>

#include "ratt/sim/dos.hpp"

namespace ratt::sim {
namespace {

using attest::AttestRequest;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;

class DosFixture : public ::testing::Test {
 protected:
  std::unique_ptr<ProverDevice> make_prover(bool authenticated) {
    ProverConfig config;
    config.scheme = FreshnessScheme::kNone;
    config.authenticate_requests = authenticated;
    config.measured_bytes = 64 * 1024;  // ~94 ms per attestation
    return std::make_unique<ProverDevice>(
        config, crypto::from_hex("00112233445566778899aabbccddeeff"),
        crypto::from_string("dos-app"));
  }

  static AttestRequest bogus_request(double) {
    AttestRequest req;
    req.scheme = FreshnessScheme::kNone;
    req.mac_alg = crypto::MacAlgorithm::kHmacSha1;
    req.challenge = 0x41;
    req.mac = crypto::Bytes(20, 0);  // forged
    return req;
  }

  TaskProfile task_{10.0, 2.0};  // 2 ms of work every 10 ms
  timing::EnergyModel energy_;
};

TEST_F(DosFixture, NoAttackNoMisses) {
  auto prover = make_prover(true);
  DosSimulator sim(*prover, task_, energy_, timing::Battery());
  const DosReport report = sim.run({}, bogus_request, 1000.0);
  EXPECT_EQ(report.tasks_released, 100u);
  EXPECT_EQ(report.tasks_missed, 0u);
  EXPECT_EQ(report.tasks_completed, 100u);
  EXPECT_DOUBLE_EQ(report.miss_rate(), 0.0);
}

TEST_F(DosFixture, UnauthenticatedFloodCausesMisses) {
  // Each bogus request costs ~94 ms of uninterruptible attestation, so at
  // 5 req/s roughly half the 10 ms task slots are blocked.
  auto prover = make_prover(false);
  DosSimulator sim(*prover, task_, energy_, timing::Battery());
  const DosReport report =
      sim.run(uniform_arrivals(5.0, 1000.0), bogus_request, 1000.0);
  EXPECT_EQ(report.attestations_performed, 5u);
  EXPECT_GT(report.tasks_missed, 20u);
  EXPECT_GT(report.miss_rate(), 0.2);
  EXPECT_GT(report.attest_busy_ms, 400.0);
}

TEST_F(DosFixture, AuthenticationReducesImpactDramatically) {
  auto unprotected = make_prover(false);
  auto hardened = make_prover(true);
  DosSimulator sim_u(*unprotected, task_, energy_, timing::Battery());
  DosSimulator sim_h(*hardened, task_, energy_, timing::Battery());
  const auto arrivals = uniform_arrivals(5.0, 1000.0);
  const DosReport attacked = sim_u.run(arrivals, bogus_request, 1000.0);
  const DosReport defended = sim_h.run(arrivals, bogus_request, 1000.0);
  // Hardened prover rejects every forged request after one cheap MAC
  // check (0.432 ms each).
  EXPECT_EQ(defended.attestations_performed, 0u);
  EXPECT_EQ(defended.requests_rejected, 5u);
  EXPECT_EQ(defended.tasks_missed, 0u);
  EXPECT_LT(defended.attest_busy_ms, 3.0);
  EXPECT_GT(attacked.attest_busy_ms / std::max(defended.attest_busy_ms, 1e-9),
            100.0);
  // And burns noticeably less energy (the baseline task load is common
  // to both runs, so the ratio is bounded by it).
  EXPECT_LT(defended.energy_mj, attacked.energy_mj / 2.0);
}

TEST_F(DosFixture, HigherRateMoreDamage) {
  double previous_miss_rate = -1.0;
  for (double rate : {1.0, 3.0, 8.0}) {
    auto prover = make_prover(false);
    DosSimulator sim(*prover, task_, energy_, timing::Battery());
    const DosReport report =
        sim.run(uniform_arrivals(rate, 1000.0), bogus_request, 1000.0);
    EXPECT_GT(report.miss_rate(), previous_miss_rate) << "rate " << rate;
    previous_miss_rate = report.miss_rate();
  }
}

TEST_F(DosFixture, EnergyAccountingIsPositiveAndBounded) {
  auto prover = make_prover(false);
  timing::Battery battery(1000.0);  // small battery
  DosSimulator sim(*prover, task_, energy_, battery);
  const DosReport report =
      sim.run(uniform_arrivals(5.0, 1000.0), bogus_request, 1000.0);
  EXPECT_GT(report.energy_mj, 0.0);
  EXPECT_LE(report.battery_fraction_used, 1.0);
  EXPECT_GT(report.battery_fraction_used, 0.0);
}

TEST(UniformArrivals, SpacingAndCount) {
  const auto times = uniform_arrivals(10.0, 1000.0);  // every 100 ms
  ASSERT_EQ(times.size(), 10u);
  EXPECT_DOUBLE_EQ(times[0], 50.0);
  EXPECT_DOUBLE_EQ(times[1] - times[0], 100.0);
  EXPECT_TRUE(uniform_arrivals(0.0, 1000.0).empty());
  EXPECT_TRUE(uniform_arrivals(-1.0, 1000.0).empty());
}

}  // namespace
}  // namespace ratt::sim
