// EventQueue scheduling-structure differential suite: the hierarchical
// timing wheel (default) against the reference binary heap. Execution
// order must be identical — globally sorted by (at_ms, seq), FIFO among
// same-time events — on both structures, for directed edge cases
// (same-tick bursts, far-future overflow, multi-level cascades,
// insert-after-peek) and for fuzzed self-scheduling workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ratt/sim/event.hpp"

namespace ratt::sim {
namespace {

/// One (event id, execution time) entry per run_next, in execution order.
using Log = std::vector<std::pair<int, double>>;

EventQueue make_queue(bool wheel) {
  EventQueue q;
  q.set_wheel_enabled(wheel);
  return q;
}

TEST(EventWheel, RejectsNonFiniteTimes) {
  for (const bool wheel : {true, false}) {
    EventQueue q = make_queue(wheel);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(q.schedule_at(nan, [] {}), std::invalid_argument);
    EXPECT_THROW(q.schedule_at(inf, [] {}), std::invalid_argument);
    EXPECT_THROW(q.schedule_at(-inf, [] {}), std::invalid_argument);
    EXPECT_THROW(q.schedule_in(nan, [] {}), std::invalid_argument);
    // The queue stays fully usable after the rejections.
    EXPECT_TRUE(q.empty());
    int runs = 0;
    q.schedule_at(1.0, [&runs] { ++runs; });
    q.run_all();
    EXPECT_EQ(runs, 1);
  }
}

TEST(EventWheel, SwitchingStructuresRequiresAnEmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.wheel_enabled());
  q.schedule_at(5.0, [] {});
  EXPECT_THROW(q.set_wheel_enabled(false), std::logic_error);
  q.run_all();
  q.set_wheel_enabled(false);
  EXPECT_FALSE(q.wheel_enabled());
  q.schedule_at(5.0, [] {});
  EXPECT_THROW(q.set_wheel_enabled(true), std::logic_error);
}

TEST(EventWheel, SameTickEventsRunFifo) {
  // A burst inside one 1 ms tick: the wheel's bucket alone cannot order
  // these — the current mini-heap must fall back to (at_ms, seq).
  for (const bool wheel : {true, false}) {
    EventQueue q = make_queue(wheel);
    Log log;
    q.schedule_at(10.5, [&] { log.emplace_back(2, q.now_ms()); });
    q.schedule_at(10.25, [&] { log.emplace_back(1, q.now_ms()); });
    q.schedule_at(10.25, [&] { log.emplace_back(3, q.now_ms()); });
    q.schedule_at(10.0, [&] { log.emplace_back(0, q.now_ms()); });
    q.schedule_at(10.5, [&] { log.emplace_back(4, q.now_ms()); });
    q.run_all();
    const Log expected{{0, 10.0}, {1, 10.25}, {3, 10.25}, {2, 10.5},
                       {4, 10.5}};
    EXPECT_EQ(log, expected) << (wheel ? "wheel" : "heap");
  }
}

TEST(EventWheel, FarFutureEventsCrossTheOverflowBoundary) {
  // The wheel spans 2^24 ticks (~16.8e6 ms); events beyond it park in
  // the overflow heap and must still interleave correctly with near
  // events — including one scheduled mid-run once the cursor has moved.
  Log logs[2];
  int which = 0;
  for (const bool wheel : {true, false}) {
    EventQueue q = make_queue(wheel);
    Log& log = logs[which++];
    q.schedule_at(20.0e6, [&] { log.emplace_back(3, q.now_ms()); });
    q.schedule_at(5.0, [&] {
      log.emplace_back(0, q.now_ms());
      // From t=5 the overflow boundary sits at ~16.8e6 + 5; 17e6 is
      // beyond it, 16e6 is within the span.
      q.schedule_at(17.0e6, [&] { log.emplace_back(2, q.now_ms()); });
      q.schedule_at(16.0e6, [&] { log.emplace_back(1, q.now_ms()); });
    });
    q.schedule_at(30.0e6, [&] { log.emplace_back(4, q.now_ms()); });
    q.run_all();
    const Log expected{{0, 5.0},
                       {1, 16.0e6},
                       {2, 17.0e6},
                       {3, 20.0e6},
                       {4, 30.0e6}};
    EXPECT_EQ(log, expected) << (wheel ? "wheel" : "heap");
  }
  EXPECT_EQ(logs[0], logs[1]);
}

TEST(EventWheel, CascadeThroughOuterLevels) {
  // Distances covering every level: L0 (< 64 ticks), L1 (< 64^2),
  // L2 (< 64^3), L3 (< 64^4). Outer-level slots must redistribute down
  // the hierarchy as the cursor lands on them, and events placed into an
  // already-passed coordinate (same tick as the cursor) still run.
  for (const bool wheel : {true, false}) {
    EventQueue q = make_queue(wheel);
    Log log;
    const double times[] = {3.0, 70.0, 4100.0, 262200.0, 1.7e7};
    for (int i = 0; i < 5; ++i) {
      const int id = i;
      q.schedule_at(times[i], [&, id] { log.emplace_back(id, q.now_ms()); });
    }
    // Mid-run insertion from inside an event: the child lands two levels
    // out (distance 4096 ticks) relative to the moving cursor and must
    // cascade back down before firing.
    q.schedule_at(100.0, [&] {
      log.emplace_back(5, q.now_ms());
      q.schedule_at(100.0 + 4096.0, [&] { log.emplace_back(6, q.now_ms()); });
    });
    q.run_all();
    const Log expected{{0, 3.0},      {1, 70.0},     {5, 100.0},
                       {2, 4100.0},   {6, 4196.0},   {3, 262200.0},
                       {4, 1.7e7}};
    EXPECT_EQ(log, expected) << (wheel ? "wheel" : "heap");
  }
}

TEST(EventWheel, InsertAfterPeekKeepsExactOrder) {
  // run_until() peeks next_time(), which may pull a tick into the
  // wheel's current mini-heap; events scheduled afterwards at or before
  // that tick must still sort exactly.
  for (const bool wheel : {true, false}) {
    EventQueue q = make_queue(wheel);
    Log log;
    q.schedule_at(100.25, [&] { log.emplace_back(1, q.now_ms()); });
    q.run_until(50.0);  // peeks 100.25, runs nothing
    EXPECT_EQ(q.now_ms(), 50.0);
    q.schedule_at(100.5, [&] { log.emplace_back(2, q.now_ms()); });
    q.schedule_at(100.125, [&] { log.emplace_back(0, q.now_ms()); });
    q.run_all();
    const Log expected{{0, 100.125}, {1, 100.25}, {2, 100.5}};
    EXPECT_EQ(log, expected) << (wheel ? "wheel" : "heap");
  }
}

TEST(EventWheel, LazyChainRoundMillionLandsExactly) {
  // The Swarm's lazy periodic chain computes round k's time
  // multiplicatively (offset + k * period) on every re-arm. With an
  // inexact period (0.1 has no finite binary representation), additive
  // accumulation would drift by ~1e-9 ms over 10^6 rounds; the
  // multiplicative form rounds once and lands exactly.
  EventQueue q;
  const double offset = 0.7;
  const double period = 0.1;
  const std::uint64_t last = 1'000'000;
  std::uint64_t fired = 0;
  const std::function<void(std::uint64_t)> arm = [&](std::uint64_t k) {
    if (k > last) return;
    q.schedule_at(offset + static_cast<double>(k) * period, [&, k] {
      ++fired;
      arm(k + 1);
    });
  };
  arm(1);
  q.run_all(last + 1);
  EXPECT_EQ(fired, last);
  EXPECT_EQ(q.now_ms(), offset + static_cast<double>(last) * period);
}

// --- Fuzzed lockstep: identical self-scheduling workloads on wheel and
// heap must produce identical execution logs. ---

struct Lcg {
  std::uint64_t state;
  std::uint32_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  }
};

/// Delay for child c of event `id`: derived from (seed, id, c) alone, so
/// it cannot depend on execution interleaving. Mixed scales hit every
/// wheel level plus the overflow heap.
double child_delay(std::uint64_t seed, int id, int c) {
  Lcg rng{seed ^ (static_cast<std::uint64_t>(id) * 0x9e3779b97f4a7c15ull) ^
          (static_cast<std::uint64_t>(c) << 48)};
  (void)rng.next();
  const double scales[] = {0.25, 1.0, 63.0, 700.0, 40'000.0,
                           3.0e6, 2.0e7};
  const double scale = scales[rng.next() % 7];
  return scale * (1.0 + (rng.next() % 1000) / 1000.0);
}

Log run_workload(bool wheel, std::uint64_t seed) {
  EventQueue q = make_queue(wheel);
  Log log;
  int next_id = 0;
  // Each event logs itself and spawns 0-2 children until the id budget
  // is spent — insertion happens mid-drain at every wheel level.
  const std::function<void(int)> fire = [&](int id) {
    log.emplace_back(id, q.now_ms());
    Lcg rng{seed ^ static_cast<std::uint64_t>(id)};
    const int children = static_cast<int>(rng.next() % 3);
    for (int c = 0; c < children && next_id < 400; ++c) {
      const int child = next_id++;
      q.schedule_in(child_delay(seed, id, c), [&, child] { fire(child); });
    }
  };
  for (int i = 0; i < 60; ++i) {
    const int id = next_id++;
    q.schedule_at(child_delay(seed, -1 - i, 0), [&, id] { fire(id); });
  }
  // Half the seeds drain in run_until slices (exercising the peek path),
  // half in one run_all.
  if (seed % 2 == 0) {
    double t = 0.0;
    while (!q.empty()) {
      t += 123'456.789;
      q.run_until(t);
    }
  } else {
    q.run_all(std::numeric_limits<std::size_t>::max());
  }
  return log;
}

TEST(EventWheel, FuzzedWorkloadsMatchHeapLockstep) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Log wheel_log = run_workload(/*wheel=*/true, seed);
    const Log heap_log = run_workload(/*wheel=*/false, seed);
    ASSERT_FALSE(wheel_log.empty()) << "seed " << seed;
    EXPECT_EQ(wheel_log, heap_log) << "seed " << seed;
  }
}

TEST(EventWheel, BacklogInstrumentsMatchHeap) {
  // The queue instruments see the same pending counts and latencies on
  // both structures for the same workload.
  obs::Registry reg[2];
  int which = 0;
  for (const bool wheel : {true, false}) {
    EventQueue q = make_queue(wheel);
    q.set_observer(&reg[which++]);
    int runs = 0;
    for (int i = 0; i < 40; ++i) {
      q.schedule_at(child_delay(99, -1 - i, 0), [&runs] { ++runs; });
    }
    q.run_all();
    EXPECT_EQ(runs, 40);
  }
  EXPECT_EQ(reg[0].to_text(), reg[1].to_text());
}

}  // namespace
}  // namespace ratt::sim
