// Fleet health classification from session statistics.
#include <gtest/gtest.h>

#include "ratt/sim/fleet_health.hpp"

namespace ratt::sim {
namespace {

AttestationSession::Stats stats(std::uint64_t sent, std::uint64_t valid,
                                std::uint64_t invalid) {
  AttestationSession::Stats s;
  s.requests_sent = sent;
  s.responses_valid = valid;
  s.responses_invalid = invalid;
  return s;
}

TEST(FleetHealth, HealthyDevice) {
  const auto v = assess_device(0, stats(10, 10, 0));
  EXPECT_EQ(v.health, DeviceHealth::kHealthy);
  EXPECT_DOUBLE_EQ(v.loss_fraction, 0.0);
}

TEST(FleetHealth, SilentDevice) {
  const auto v = assess_device(1, stats(10, 2, 0));
  EXPECT_EQ(v.health, DeviceHealth::kSilent);
  EXPECT_DOUBLE_EQ(v.loss_fraction, 0.8);
}

TEST(FleetHealth, CompromisedBeatsSilent) {
  // Even a mostly-silent device with one invalid response is classified
  // compromised: an invalid measurement is the stronger signal.
  const auto v = assess_device(2, stats(10, 1, 1));
  EXPECT_EQ(v.health, DeviceHealth::kCompromised);
  EXPECT_EQ(v.invalid_responses, 1u);
}

TEST(FleetHealth, SuspectBand) {
  const auto v = assess_device(3, stats(10, 8, 0));  // 20% loss
  EXPECT_EQ(v.health, DeviceHealth::kSuspect);
}

TEST(FleetHealth, NoTrafficIsHealthy) {
  const auto v = assess_device(4, stats(0, 0, 0));
  EXPECT_EQ(v.health, DeviceHealth::kHealthy);
  EXPECT_DOUBLE_EQ(v.loss_fraction, 0.0);
}

TEST(FleetHealth, PolicyThresholdsRespected) {
  HealthPolicy lax;
  lax.silent_threshold = 0.95;
  lax.suspect_threshold = 0.9;
  EXPECT_EQ(assess_device(0, stats(10, 2, 0), lax).health,
            DeviceHealth::kHealthy);  // 80% loss, below both thresholds
  HealthPolicy tolerant_of_invalid;
  tolerant_of_invalid.invalid_is_compromise = false;
  EXPECT_EQ(assess_device(0, stats(10, 9, 1), tolerant_of_invalid).health,
            DeviceHealth::kHealthy);
}

TEST(FleetHealth, FleetAssessmentAndQuarantine) {
  SwarmReport report;
  report.devices.push_back({0, stats(10, 10, 0), 1.0});
  report.devices.push_back({1, stats(10, 1, 0), 1.0});   // silent
  report.devices.push_back({2, stats(10, 9, 1), 1.0});   // compromised
  report.devices.push_back({3, stats(10, 8, 0), 1.0});   // suspect
  const auto verdicts = assess_fleet(report);
  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_EQ(verdicts[0].health, DeviceHealth::kHealthy);
  EXPECT_EQ(verdicts[1].health, DeviceHealth::kSilent);
  EXPECT_EQ(verdicts[2].health, DeviceHealth::kCompromised);
  EXPECT_EQ(verdicts[3].health, DeviceHealth::kSuspect);
  EXPECT_EQ(quarantine_list(verdicts), (std::vector<std::size_t>{1, 2}));
}

TEST(FleetHealth, DegradedDevice) {
  // Responses validate and nothing is lost, but attestation is consuming
  // a third of the device's life — its real-time duty is starving.
  const auto v = assess_device(5, stats(10, 10, 0), HealthPolicy{}, 0.33);
  EXPECT_EQ(v.health, DeviceHealth::kDegraded);
  EXPECT_DOUBLE_EQ(v.duty_fraction, 0.33);
}

TEST(FleetHealth, DegradedThresholdRespected) {
  HealthPolicy policy;
  policy.degraded_duty_threshold = 0.5;
  EXPECT_EQ(assess_device(0, stats(10, 10, 0), policy, 0.4).health,
            DeviceHealth::kHealthy);
  EXPECT_EQ(assess_device(0, stats(10, 10, 0), policy, 0.6).health,
            DeviceHealth::kDegraded);
  // Stronger signals still win over duty starvation.
  EXPECT_EQ(assess_device(0, stats(10, 9, 1), policy, 0.9).health,
            DeviceHealth::kCompromised);
  EXPECT_EQ(assess_device(0, stats(10, 1, 0), policy, 0.9).health,
            DeviceHealth::kSilent);
}

TEST(FleetHealth, DegradedViaFleetDutyFraction) {
  SwarmReport report;
  report.horizon_ms = 1000.0;
  report.devices.push_back({0, stats(10, 10, 0), 400.0, 0.4});  // degraded
  report.devices.push_back({1, stats(10, 10, 0), 10.0, 0.01});  // healthy
  const auto verdicts = assess_fleet(report);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].health, DeviceHealth::kDegraded);
  EXPECT_EQ(verdicts[1].health, DeviceHealth::kHealthy);
  // Degraded devices are starved, not compromised: no quarantine.
  EXPECT_TRUE(quarantine_list(verdicts).empty());
}

TEST(FleetHealth, Names) {
  EXPECT_EQ(to_string(DeviceHealth::kHealthy), "healthy");
  EXPECT_EQ(to_string(DeviceHealth::kSilent), "silent");
  EXPECT_EQ(to_string(DeviceHealth::kCompromised), "compromised");
  EXPECT_EQ(to_string(DeviceHealth::kDegraded), "degraded");
  EXPECT_EQ(to_string(DeviceHealth::kSuspect), "suspect");
}

// End-to-end: a fleet with one tampered device gets flagged.
TEST(FleetHealth, DetectsTamperedDeviceInLiveFleet) {
  SwarmConfig config;
  config.device_count = 3;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.measured_bytes = 512;
  config.attest_period_ms = 100.0;
  Swarm swarm(config, crypto::from_string("health-fleet"));

  // Resident malware flips a byte in device 1's measured memory.
  attest::ProverDevice& victim = swarm.prover(1);
  hw::SoftwareComponent malware(victim.mcu(), "malware",
                                victim.surface().malware_region);
  std::uint8_t b = 0;
  ASSERT_EQ(malware.read8(victim.surface().measured_memory.begin, b),
            hw::BusStatus::kOk);
  ASSERT_EQ(malware.write8(victim.surface().measured_memory.begin,
                           static_cast<std::uint8_t>(b ^ 0xff)),
            hw::BusStatus::kOk);

  const SwarmReport report = swarm.run(500.0);
  const auto verdicts = assess_fleet(report);
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts[0].health, DeviceHealth::kHealthy);
  EXPECT_EQ(verdicts[1].health, DeviceHealth::kCompromised);
  EXPECT_EQ(verdicts[2].health, DeviceHealth::kHealthy);
  EXPECT_EQ(quarantine_list(verdicts), (std::vector<std::size_t>{1}));
}

}  // namespace
}  // namespace ratt::sim
